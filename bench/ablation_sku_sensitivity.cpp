// Ablation: why one static workload per CPU family is not enough
// (Sec. III-A: "this static approach of using an SKU-optimized workload
// does not necessarily work for other SKUs of the same family and model: a
// different number of cores and different core frequencies significantly
// influence how off-core components can be used without introducing
// stalls").
//
// We build three hypothetical Zen 2 SKUs sharing the microarchitecture but
// differing in core count (the paper's EPYC 7502 sibling SKUs), tune a
// workload for each with NSGA-II, and cross-evaluate — the Fig. 12
// experiment along the core-count axis instead of the frequency axis.

#include <cstdio>
#include <iostream>
#include <vector>

#include "firestarter/backends.hpp"
#include "tuning/nsga2.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

namespace {

sim::MachineConfig sku(int cores_per_socket) {
  sim::MachineConfig cfg = sim::MachineConfig::zen2_epyc7502_2s();
  cfg.cores_per_socket = cores_per_socket;
  cfg.name = strings::format("2x Zen2 %dc", cores_per_socket);
  // Same DRAM subsystem for every SKU: that is exactly what makes the
  // per-core memory budget differ.
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== Ablation: SKU sensitivity of the optimized workload (Sec. III-A) ===\n\n");

  const int core_counts[] = {8, 32, 64};
  const auto caches = arch::CacheHierarchy::zen2();
  const auto& mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;

  // Tune per SKU (common seed: landscape differences only).
  std::vector<payload::InstructionGroups> optimized;
  for (int cores : core_counts) {
    sim::SimulatedSystem system(sku(cores));
    sim::RunConditions cond;
    cond.freq_mhz = 2200;
    firestarter::SimBackend backend(system, mix, caches, cond, 10.0, 0xAB1A7E);
    backend.preheat();
    tuning::GroupsProblem problem(backend);
    tuning::Nsga2Config config;
    config.individuals = 24;
    config.generations = 12;
    config.seed = 0xAB1A7E;
    tuning::Nsga2 optimizer(config);
    const auto population = optimizer.run(problem);
    const auto& best = tuning::Nsga2::best_by_objective(population, 0);
    optimized.push_back(tuning::GroupsProblem::to_groups(best.genome));
    // RAM pressure of the genome: accesses per pass.
    std::uint32_t ram = 0;
    for (const auto& group : optimized.back().groups())
      if (group.kind.level == payload::MemoryLevel::kRam) ram += group.count;
    std::printf("omega_%dc:  RAM groups %u / %u total   M=%s\n", cores, ram,
                optimized.back().total(), optimized.back().to_string().c_str());
  }
  std::printf("\n");

  // Cross-evaluate: power on each SKU for each optimized workload.
  Table table({"workload \\ tested on", "8c/socket [W]", "32c/socket [W]", "64c/socket [W]"});
  double matrix[3][3];
  for (std::size_t row = 0; row < 3; ++row) {
    const auto stats = payload::analyze_payload(mix, optimized[row], caches);
    std::vector<std::string> cells = {strings::format("opt-%dc", core_counts[row])};
    for (std::size_t col = 0; col < 3; ++col) {
      const sim::Simulator simulator(sku(core_counts[col]));
      sim::RunConditions cond;
      cond.freq_mhz = 2200;
      matrix[row][col] = simulator.run(stats, cond).power_w;
      cells.push_back(strings::format("%.1f", matrix[row][col]));
    }
    table.add_row(cells);
  }
  table.print(std::cout);

  bool diagonal_max = true;
  for (int col = 0; col < 3; ++col)
    for (int row = 0; row < 3; ++row)
      if (matrix[row][col] > matrix[col][col] + 1e-9) diagonal_max = false;
  std::printf("\nworkload tuned for an SKU draws the most power on that SKU: %s\n",
              diagonal_max ? "yes" : "no (differences within optimizer noise)");
  std::printf("takeaway: the per-core memory-access budget shrinks as core count grows, so\n"
              "a single omega per family/model (the 1.x approach) leaves power on the table\n"
              "-- the motivation for FIRESTARTER 2's runtime generation + self-tuning.\n");
  return 0;
}
