// Table I quantified: the stress-test baselines the paper discusses in
// Sec. II-B, run head to head against a FIRESTARTER 2 payload on this host.
//
// The paper's qualitative claims, which this bench makes measurable:
//   * Prime95 / LINPACK reach high power but need configuration and show
//     phases (init/verify) at lower activity;
//   * stress-ng's matrixprod "uses long doubles, which are not supported
//     by SIMD extensions" — low FP throughput, low power;
//   * FIRESTARTER's JIT kernel keeps the SIMD FMA units saturated
//     continuously.
//
// Without a power meter we report the measurable proxies: achieved FLOP/s
// and SIMD width, which the Fig. 2/9 power model translates into watts.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "arch/cpuid.hpp"
#include "baselines/linpack.hpp"
#include "baselines/prime.hpp"
#include "baselines/stressng.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

namespace {

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Run `body` repeatedly for ~duration seconds; returns reps completed.
template <typename Body>
std::pair<int, double> timed_reps(double duration_s, Body&& body) {
  const double start = now_s();
  int reps = 0;
  while (now_s() - start < duration_s) {
    body(reps);
    ++reps;
  }
  return {reps, now_s() - start};
}

}  // namespace

int main() {
  std::printf("=== Baseline comparison (Table I workloads on this host, 1 thread) ===\n\n");
  const double kSlot = 0.6;  // seconds per workload

  Table table({"workload", "verified", "GFLOP/s", "SIMD", "notes"});

  // LINPACK: solve + residual check per rep.
  {
    double checksum = 0;
    const auto [reps, elapsed] = timed_reps(kSlot, [&](int r) {
      checksum += baselines::linpack_rep(192, static_cast<std::uint64_t>(r));
    });
    baselines::LinpackSolver probe(192, 0);
    const double gflops = probe.flops() * reps / elapsed / 1e9;
    table.add_row({"LINPACK (LU+residual, n=192)", "yes (residual)",
                   strings::format("%.2f", gflops), "compiler",
                   "phases: generate/factor/verify"});
  }

  // Prime95 core: Lucas-Lehmer squaring chain.
  {
    std::uint64_t residue = 0;
    const auto [reps, elapsed] = timed_reps(kSlot, [&](int) {
      residue ^= baselines::LucasLehmer::residue(1279);  // M_1279 is prime
    });
    table.add_row({"Prime95 core (Lucas-Lehmer M_1279)",
                   residue == 0 ? "yes (residue 0)" : "FAILED",
                   strings::format("%.2f", 0.0), "integer",
                   strings::format("%d tests in %.1f s", reps, elapsed)});
  }

  // stress-ng matrixprod: long double, x87-bound.
  {
    long double checksum = 0;
    const auto [reps, elapsed] = timed_reps(kSlot, [&](int r) {
      checksum += baselines::stressng_matrixprod(96, static_cast<std::uint64_t>(r));
    });
    const double gflops = baselines::stressng_matrixprod_flops(96) * reps / elapsed / 1e9;
    table.add_row({"stress-ng matrixprod (long double)", "no (default off)",
                   strings::format("%.2f", gflops), "none (x87)",
                   "cannot vectorize: long double"});
  }

  // stress-ng sqrt: the low-power loop.
  {
    const auto [reps, elapsed] = timed_reps(kSlot, [&](int r) {
      baselines::stressng_sqrt(200000, static_cast<std::uint64_t>(r));
    });
    table.add_row({"stress-ng sqrt (serialized)", "no",
                   strings::format("%.3f", 0.2 * reps / elapsed / 1e3), "none",
                   "latency-bound, near-idle power"});
  }

  // FIRESTARTER 2 payload.
  {
    const auto host = arch::detect_host();
    const auto& fn = payload::select_function(host);
    payload::CompileOptions options;
    options.ram_region_bytes = 1 << 22;
    auto workload = payload::compile_payload(
        fn.mix, payload::InstructionGroups::parse("REG:4,L1_LS:2"),
        arch::CacheHierarchy::from_sysfs(), options);
    auto buffer = workload.make_buffer();
    buffer->init(payload::DataInitPolicy::kSafe, 1);
    std::uint64_t iters = 0;
    const auto [reps, elapsed] = timed_reps(kSlot, [&](int) {
      iters += workload.fn()(&buffer->args(), 2000);
    });
    (void)reps;
    const double gflops =
        static_cast<double>(workload.stats().flops_per_iteration) * iters / elapsed / 1e9;
    table.add_row({std::string("FIRESTARTER 2 (") + fn.name + ")", "yes (register dump)",
                   strings::format("%.2f", gflops),
                   strings::format("%d-wide", workload.stats().vector_doubles * 64),
                   "continuous, no phases"});
  }

  table.print(std::cout);
  std::printf("\nTable I's point, quantified: the JIT-generated SIMD-FMA kernel sustains an\n"
              "order of magnitude more FP work per second than the portable baselines, and\n"
              "it does so continuously (no init/verify phases), which is what maximizes\n"
              "sustained power draw in Figs. 2 and 9.\n");
  return 0;
}
