// Figure 1: cumulative distribution of node power consumption for 612
// Haswell nodes of the Taurus HPC system over a production year.
//
// Paper (measured on the real fleet): a steep incline between 50 W and
// 100 W created by idle power, a long tail, and a maximum of 359.9 W.
//
// Substitution: we have no production telemetry, so a synthetic fleet of
// 612 simulated Haswell nodes runs a Markov workload mixture (idle /
// interactive / partial / full HPC / stress) through the Fig. 2 power
// model, sampled as 60 s means like the paper's aggregation.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

namespace {

enum class NodeState { kIdle, kInteractive, kPartialLoad, kFullLoad, kStress };
constexpr int kStates = 5;

// Row-stochastic transition matrix per 60 s step: states are sticky (HPC
// jobs run for hours), with occasional bursts.
constexpr double kTransitions[kStates][kStates] = {
    {0.970, 0.015, 0.010, 0.004, 0.001},  // idle
    {0.050, 0.920, 0.020, 0.009, 0.001},  // interactive
    {0.015, 0.010, 0.950, 0.024, 0.001},  // partial load
    {0.008, 0.004, 0.020, 0.966, 0.002},  // full load
    {0.050, 0.010, 0.020, 0.020, 0.900},  // stress test
};

NodeState step(NodeState state, Xoshiro256& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (int next = 0; next < kStates; ++next) {
    acc += kTransitions[static_cast<int>(state)][next];
    if (u < acc) return static_cast<NodeState>(next);
  }
  return state;
}

}  // namespace

int main() {
  std::printf("=== Figure 1: power CDF of 612 Haswell nodes (synthetic fleet) ===\n\n");

  const sim::Simulator simulator(sim::MachineConfig::haswell_e5_2680v3_2s(0));
  const auto caches = arch::CacheHierarchy::haswell_ep();
  const auto& mix = payload::find_function("FUNC_FMA_256_HASWELL").mix;

  // Representative operating points per state (threads scale occupancy).
  auto payload_power = [&](const char* groups, int threads) {
    const auto stats =
        payload::analyze_payload(mix, payload::InstructionGroups::parse(groups), caches);
    sim::RunConditions cond;
    cond.freq_mhz = 2500;
    cond.threads = threads;
    return simulator.run(stats, cond).power_w;
  };
  const double state_power[kStates] = {
      simulator.idle().power_w,
      simulator.low_power_loop(2500).power_w,
      payload_power("L1_LS:8,REG:8", 12),
      payload_power("RAM_L:1,L3_LS:2,L2_LS:5,L1_LS:25,REG:12", 48),
      payload_power("RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12", 48),
  };

  // 612 nodes x 6 simulated days of 60 s means (scaled down from the
  // paper's year to keep the bench fast; the distribution shape converges
  // long before a year).
  constexpr int kNodes = 612;
  constexpr int kSteps = 6 * 24 * 60;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(kNodes) * kSteps);
  Xoshiro256 rng(0xF16001);
  for (int node = 0; node < kNodes; ++node) {
    auto state = static_cast<NodeState>(rng.below(kStates));
    for (int t = 0; t < kSteps; ++t) {
      state = step(state, rng);
      samples.push_back(state_power[static_cast<int>(state)] * (1.0 + 0.03 * rng.normal()));
    }
  }

  const auto cdf = stats::cumulative_distribution(samples, 0.1);  // paper: 0.1 W bins
  Table table({"power [W]", "proportion <="});
  for (double threshold : {50.0, 75.0, 100.0, 150.0, 200.0, 250.0, 300.0, 340.0, 360.0}) {
    const auto idx = std::min(static_cast<std::size_t>(threshold / 0.1), cdf.size() - 1);
    table.add_row({strings::format("%.0f", threshold),
                   strings::format("%.3f", cdf[idx].proportion)});
  }
  table.print(std::cout);

  const double max_power = stats::max(samples);
  const auto at = [&](double watts) {
    const auto idx = std::min(static_cast<std::size_t>(watts / 0.1), cdf.size() - 1);
    return cdf[idx].proportion;
  };
  std::printf("\nshape checks vs paper:\n");
  std::printf("  steep idle incline 50-100 W: proportion rises %.2f -> %.2f  (paper: steep)\n",
              at(50), at(100));
  std::printf("  maximum node power: %.1f W                       (paper: 359.9 W)\n",
              max_power);
  std::printf("  samples: %zu node-minutes across %d nodes\n", samples.size(), kNodes);
  return 0;
}
