// Figure 2: FIRESTARTER 2 optimized for maximum power with different cache
// accesses on two systems with 2x Intel Xeon E5-2680 v3 (at 2000 MHz to
// avoid AVX-frequency throttling), one with 4x NVIDIA K80.
//
// Paper bars (plain node, bottom to top): Idle (C-states) < low-power loop
// (sqrtsd) < no cache accesses < L1+L2 < L1+L2+L3 < L1+L2+L3+mem; on the
// GPU node the full stack plus GPU stress lands at 1100-1200 W. Each GPU
// adds 29 W (idle) to 156 W (stress).

#include <cstdio>
#include <iostream>

#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

namespace {

struct Bar {
  const char* label;
  const char* groups;  // nullptr = special workload
};

double stress_power(const sim::Simulator& simulator, const char* groups, bool gpu_stress) {
  const auto caches = arch::CacheHierarchy::haswell_ep();
  const auto& mix = payload::find_function("FUNC_FMA_256_HASWELL").mix;
  const auto stats =
      payload::analyze_payload(mix, payload::InstructionGroups::parse(groups), caches);
  sim::RunConditions cond;
  cond.freq_mhz = 2000.0;  // paper: pinned below AVX frequencies
  cond.gpu_stress = gpu_stress;
  return simulator.run(stats, cond).power_w;
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 2: component contribution to node power, 2x E5-2680 v3 @ 2000 MHz ===\n\n");

  const Bar bars[] = {
      {"Idle (C-states enabled)", nullptr},
      {"Low power loop (sqrtsd)", nullptr},
      {"FIRESTARTER, no cache accesses", "REG:1"},
      {"FIRESTARTER, L1+L2 accesses", "L2_LS:3,L1_LS:12,REG:6"},
      {"FIRESTARTER, L1+L2+L3 accesses", "L3_LS:1,L2_LS:3,L1_LS:12,REG:6"},
      {"FIRESTARTER, L1+L2+L3+mem accesses", "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12"},
  };

  const sim::Simulator plain(sim::MachineConfig::haswell_e5_2680v3_2s(0));
  const sim::Simulator gpu_node(sim::MachineConfig::haswell_e5_2680v3_2s(4));

  Table table({"workload", "plain node [W]", "GPU node, GPUs idle [W]"});
  double plain_full = 0.0;
  for (const Bar& bar : bars) {
    double p_plain, p_gpu;
    if (bar.groups == nullptr && std::string(bar.label).find("Idle") != std::string::npos) {
      p_plain = plain.idle().power_w;
      p_gpu = gpu_node.idle().power_w;
    } else if (bar.groups == nullptr) {
      p_plain = plain.low_power_loop(2000).power_w;
      p_gpu = gpu_node.low_power_loop(2000).power_w;
    } else {
      p_plain = stress_power(plain, bar.groups, false);
      p_gpu = stress_power(gpu_node, bar.groups, false);
      plain_full = p_plain;
    }
    table.add_row({bar.label, strings::format("%.1f", p_plain), strings::format("%.1f", p_gpu)});
  }
  const double gpu_full =
      stress_power(gpu_node, "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12", /*gpu_stress=*/true);
  table.add_row({"FIRESTARTER, L1+L2+L3+mem+GPGPU", "-", strings::format("%.1f", gpu_full)});
  table.print(std::cout);

  std::printf("\nshape checks vs paper:\n");
  std::printf("  each memory level adds power (column is monotone top to bottom)\n");
  std::printf("  full node stress: %.1f W            (paper CDF max: 359.9 W)\n", plain_full);
  std::printf("  GPU stress adds %.0f W per GPU       (paper: 29 W idle -> 156 W stress)\n",
              (156.0 - 29.0));
  std::printf("  GPU node full stack: %.1f W         (paper: ~1100-1200 W)\n", gpu_full);
  return 0;
}
