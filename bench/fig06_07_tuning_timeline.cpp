// Figures 6 & 7: the tuning-loop timeline before and after online workload
// generation.
//
// Paper: the FIRESTARTER 1.x prototype (Fig. 6) recompiles between
// candidates — power collapses to near idle during code generation,
// compiling and linking, and every candidate needs minutes of measurement
// to ride out the resulting thermal transients. FIRESTARTER 2 (Fig. 7)
// preheats once for 240 s, then switches candidates via the JIT with no
// visible power dip and only 10 s per test.
//
// We replay both loop designs against the simulated Table II system and
// compare dip depth, time per candidate, and candidates per hour.

#include <cstdio>
#include <vector>

#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace fs2;

namespace {

struct Timeline {
  std::vector<double> power;  // 1 Sa/s
  double seconds_per_candidate = 0.0;
};

// Phase durations (seconds), FIRESTARTER 1.x prototype (Fig. 6 shows
// pre/post editing, code generation + compile + link, then a long
// measurement to cancel the thermal disturbance).
constexpr double kV1Edit = 10.0;
constexpr double kV1Compile = 25.0;
constexpr double kV1Measure = 180.0;
// FIRESTARTER 2 (Fig. 7): 10 s per candidate after a single 240 s preheat.
constexpr double kV2Preheat = 240.0;
constexpr double kV2Measure = 10.0;

void append(std::vector<double>& out, const std::vector<double>& trace) {
  out.insert(out.end(), trace.begin(), trace.end());
}

}  // namespace

int main() {
  std::printf("=== Figures 6/7: tuning-loop timeline, v1.x recompile vs v2 JIT ===\n\n");

  const sim::Simulator simulator(sim::MachineConfig::zen2_epyc7502_2s());
  const auto caches = arch::CacheHierarchy::zen2();
  const auto& mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;

  // A handful of candidate workloads the optimizer would test.
  const char* candidates[] = {
      "REG:1", "L1_LS:4,REG:2", "L2_LS:2,L1_LS:8,REG:4",
      "L3_LS:1,L2_LS:3,L1_LS:12,REG:6", "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12",
  };
  sim::RunConditions cond;
  cond.freq_mhz = 1500;

  auto point_of = [&](const char* groups) {
    return simulator.run(
        payload::analyze_payload(mix, payload::InstructionGroups::parse(groups), caches), cond);
  };
  const sim::WorkloadPoint near_idle = simulator.low_power_loop(1500);

  // ---- v1.x: edit -> compile (near idle) -> long measurement, per candidate.
  Timeline v1;
  std::uint64_t seed = 1;
  for (const char* groups : candidates) {
    append(v1.power, simulator.power_trace(near_idle, kV1Edit + kV1Compile, 1.0, seed++));
    // Cold-ish start every time: the package cooled during compilation.
    append(v1.power, simulator.power_trace(point_of(groups), kV1Measure, 1.0, seed++,
                                           /*warm_start_s=*/0.0));
  }
  v1.seconds_per_candidate = kV1Edit + kV1Compile + kV1Measure;

  // ---- v2: one preheat, then dip-free 10 s candidates.
  Timeline v2;
  append(v2.power, simulator.power_trace(point_of("L1_LS:2,REG:1"), kV2Preheat, 1.0, seed++));
  for (const char* groups : candidates)
    append(v2.power, simulator.power_trace(point_of(groups), kV2Measure, 1.0, seed++,
                                           /*warm_start_s=*/kV2Preheat));
  v2.seconds_per_candidate = kV2Measure;

  const double v1_min = stats::min(v1.power);
  const double v1_max = stats::max(v1.power);
  // v2 minimum, excluding the preheat ramp (Fig. 7 shades only candidates).
  const std::vector<double> v2_candidates(v2.power.begin() + static_cast<long>(kV2Preheat),
                                          v2.power.end());
  const double v2_min = stats::min(v2_candidates);
  const double v2_max = stats::max(v2_candidates);

  std::printf("%-34s %12s %12s\n", "", "v1.x (Fig.6)", "v2 (Fig.7)");
  std::printf("%-34s %9.0f s %9.0f s\n", "time per candidate", v1.seconds_per_candidate,
              v2.seconds_per_candidate);
  std::printf("%-34s %12.1f %12.1f\n", "candidates per hour",
              3600.0 / v1.seconds_per_candidate, 3600.0 / v2.seconds_per_candidate);
  std::printf("%-34s %9.1f W %9.1f W\n", "min power during tuning", v1_min, v2_min);
  std::printf("%-34s %9.1f W %9.1f W\n", "max power during tuning", v1_max, v2_max);
  std::printf("%-34s %9.1f W %9.1f W\n", "dip depth (max - min)", v1_max - v1_min,
              v2_max - v2_min);

  std::printf("\nshape checks vs paper:\n");
  std::printf("  v1.x dips to near idle between candidates (%.0f W), v2 never leaves the\n"
              "  high-power regime during candidate switches (min %.0f W) -- Fig. 7:\n"
              "  'no visible drop in power consumption between candidates'\n",
              v1_min, v2_min);
  std::printf("  v2 measures a candidate in %.0f s instead of %.0f s (%.0fx speedup)\n",
              v2.seconds_per_candidate, v1.seconds_per_candidate,
              v1.seconds_per_candidate / v2.seconds_per_candidate);
  return 0;
}
