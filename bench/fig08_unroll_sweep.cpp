// Figure 8: power consumption and instruction throughput for different
// unroll factors and P-states (L1_L:1 workload so memory references are
// present but not limiting).
//
// Paper shape: power steps up once the loop no longer fits the op cache
// (u ~ 1000) and again when instructions stream from L2 (u ~ 2000); IPC
// stays roughly flat; at nominal 2500 MHz the L2-resident case triggers
// frequency throttling (2.5 -> 2.4 GHz) and power *drops* relative to the
// unthrottled L1-I point.

#include <cstdio>
#include <iostream>

#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

int main() {
  std::printf("=== Figure 8: unroll factor u vs power/IPC at 1500/2200/2500 MHz ===\n\n");

  const sim::Simulator simulator(sim::MachineConfig::zen2_epyc7502_2s());
  const auto caches = arch::CacheHierarchy::zen2();
  const auto& mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;
  const auto groups = payload::InstructionGroups::parse("L1_L:1");  // footnote 11

  const unsigned unrolls[] = {64, 128, 256, 512, 1024, 1536, 2048, 4096, 8192, 16384};
  const double freqs[] = {1500, 2200, 2500};

  for (double freq : freqs) {
    Table table({"u", "loop [B]", "fetch from", "power [W]", "IPC/core", "achieved MHz"});
    for (unsigned u : unrolls) {
      payload::CompileOptions options;
      options.unroll = u;
      const auto stats = payload::analyze_payload(mix, groups, caches, options);
      sim::RunConditions cond;
      cond.freq_mhz = freq;
      const auto point = simulator.run(stats, cond);
      table.add_row({std::to_string(u), std::to_string(stats.loop_bytes),
                     sim::to_string(point.fetch_source),
                     strings::format("%.1f", point.power_w),
                     strings::format("%.2f", point.ipc_per_core),
                     strings::format("%.0f%s", point.achieved_mhz,
                                     point.throttled ? " (throttled)" : "")});
    }
    std::printf("-- core frequency %.0f MHz --\n", freq);
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("shape checks vs paper:\n");
  std::printf("  power increases op-cache -> L1-I (u~1000) -> L2 (u~2000) at 1500/2200 MHz\n");
  std::printf("  IPC stays roughly constant across fetch sources\n");
  std::printf("  at 2500 MHz only the L2-resident loop throttles (paper: 2.5 -> 2.4 GHz)\n");
  std::printf("  validated in tests/test_sim.cpp (SimFrontend.*)\n");
  return 0;
}
