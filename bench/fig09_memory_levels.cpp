// Figure 9: power, instruction throughput, and data-cache access rate of
// FIRESTARTER optimized for accesses up to each level of the hierarchy
// (Table II system at 1500 MHz to avoid throttling).
//
// Paper: power rises from 235 W (no accesses) to 437 W (+86 %) with every
// added level; IPC drops only to ~3.4 at the highest-power point.
//
// Like the paper, the best ratio per level is found by sweeping the ratio
// of register computation to memory accesses (a small grid search per
// level; the full NSGA-II run is Fig. 11's job).

#include <cstdio>
#include <iostream>
#include <vector>

#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

namespace {

struct LevelResult {
  std::string label;
  std::string groups;
  sim::WorkloadPoint point;
};

}  // namespace

int main() {
  std::printf("=== Figure 9: power/IPC/D-cache rate per accessed memory level @1500 MHz ===\n\n");

  const sim::Simulator simulator(sim::MachineConfig::zen2_epyc7502_2s());
  const auto caches = arch::CacheHierarchy::zen2();
  const auto& mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;

  auto evaluate = [&](const std::string& groups) {
    sim::RunConditions cond;
    cond.freq_mhz = 1500;
    return simulator.run(
        payload::analyze_payload(mix, payload::InstructionGroups::parse(groups), caches), cond);
  };

  // Ratio sweep per level: vary the share of register sets and the density
  // of the deepest level's accesses, keep the best power (paper: "to get
  // the ratio with the highest power consumption, we vary the ratio of
  // register calculations and memory accesses").
  auto best_of = [&](const std::vector<std::string>& candidates) {
    std::string best_groups;
    sim::WorkloadPoint best;
    for (const auto& groups : candidates) {
      const auto point = evaluate(groups);
      if (best_groups.empty() || point.power_w > best.power_w) {
        best = point;
        best_groups = groups;
      }
    }
    return LevelResult{"", best_groups, best};
  };

  std::vector<LevelResult> results;
  results.push_back({"No access", "REG:1", evaluate("REG:1")});

  results.push_back(best_of({"L1_LS:1,REG:2", "L1_LS:1,REG:1", "L1_LS:2,REG:1", "L1_LS:4,REG:1",
                             "L1_2LS:2,L1_LS:2,REG:2"}));
  results.back().label = "Level 1";

  results.push_back(best_of({"L2_LS:1,L1_LS:6,REG:3", "L2_LS:3,L1_LS:12,REG:6",
                             "L2_LS:2,L1_LS:6,REG:3", "L2_LS:4,L1_LS:10,REG:4"}));
  results.back().label = "Level 2";

  results.push_back(best_of({"L3_LS:1,L2_LS:3,L1_LS:12,REG:6", "L3_LS:2,L2_LS:4,L1_LS:16,REG:8",
                             "L3_LS:1,L2_LS:4,L1_LS:16,REG:6", "L3_LS:3,L2_LS:6,L1_LS:20,REG:8"}));
  results.back().label = "Level 3";

  results.push_back(best_of({"RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37",
                             "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12",
                             "RAM_L:2,L3_LS:3,L2_LS:8,L1_LS:40,REG:20",
                             "RAM_LS:2,L3_LS:3,L2_LS:8,L1_LS:40,REG:18"}));
  results.back().label = "Main memory";

  Table table({"access up to", "power [W]", "IPC/core", "D-cache rate", "best M"});
  for (const auto& result : results)
    table.add_row({result.label, strings::format("%.1f", result.point.power_w),
                   strings::format("%.2f", result.point.ipc_per_core),
                   strings::format("%.2f", result.point.dcache_rate), result.groups});
  table.print(std::cout);

  const double none = results.front().point.power_w;
  const double full = results.back().point.power_w;
  std::printf("\nshape checks vs paper:\n");
  std::printf("  no access:   %6.1f W   (paper: 235 W)\n", none);
  std::printf("  main memory: %6.1f W   (paper: 437 W)\n", full);
  std::printf("  increase:    %+6.1f %%  (paper: +86 %%)\n", (full / none - 1.0) * 100.0);
  std::printf("  IPC at the highest-power point: %.2f (paper: ~3.4)\n",
              results.back().point.ipc_per_core);
  return 0;
}
