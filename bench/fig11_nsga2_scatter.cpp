// Figure 11: power and instruction throughput for all evaluated individuals
// of an NSGA-II optimization at 1500 MHz (Sec. IV-E parameters:
// --individuals=40 --generations=20 --nsga2-m=0.35, objectives power+IPC).
//
// Paper: a cloud of individuals converging toward the Pareto front; later
// individuals (darker) still explore inside the hypervolume; the selected
// optimum omega_opt-1500MHz sits at very high power (438.2 W, 3.39 IPC in
// Fig. 12's first column).
//
// Also includes the ablation DESIGN.md calls out: a power-only
// (single-objective) run, demonstrating why the paper keeps IPC as a second
// objective.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "firestarter/backends.hpp"
#include "tuning/nsga2.hpp"
#include "tuning/pareto.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

namespace {

/// Wraps the two-objective backend, exposing only power (the ablation).
class PowerOnlyProblem : public tuning::Problem {
 public:
  explicit PowerOnlyProblem(tuning::GroupsProblem& inner) : inner_(inner) {}
  std::size_t genome_length() const override { return inner_.genome_length(); }
  std::uint32_t gene_max(std::size_t i) const override { return inner_.gene_max(i); }
  std::size_t num_objectives() const override { return 1; }
  std::string objective_name(std::size_t) const override { return "power-W"; }
  std::vector<double> evaluate(const tuning::Genome& genome) override {
    last_full = inner_.evaluate(genome);
    return {last_full[0]};
  }
  std::vector<double> last_full;

 private:
  tuning::GroupsProblem& inner_;
};

}  // namespace

int main() {
  std::printf("=== Figure 11: NSGA-II individuals at 1500 MHz (40 x 20, m=0.35) ===\n\n");

  sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
  sim::RunConditions cond;
  cond.freq_mhz = 1500;
  firestarter::SimBackend backend(system, payload::find_function("FUNC_FMA_256_ZEN2").mix,
                                  arch::CacheHierarchy::zen2(), cond,
                                  /*candidate_duration_s=*/10.0, /*seed=*/0xF16011);
  backend.preheat();
  tuning::GroupsProblem problem(backend);

  tuning::Nsga2Config config;  // paper parameters are the defaults
  config.seed = 0xF16011;
  tuning::History history;
  tuning::Nsga2 optimizer(config);
  const auto population = optimizer.run(problem, &history);

  // Scatter summary: per-generation envelope of the evaluated individuals.
  Table table({"generation", "evals", "power min", "power max", "ipc min", "ipc max",
               "front hypervolume"});
  std::vector<std::vector<double>> seen;
  for (std::size_t gen = 0; gen <= config.generations; gen += 4) {
    double pmin = 1e12, pmax = 0, imin = 1e12, imax = 0;
    std::size_t count = 0;
    for (const auto& e : history.evaluations()) {
      if (e.generation > gen) continue;
      ++count;
      pmin = std::min(pmin, e.objectives[0]);
      pmax = std::max(pmax, e.objectives[0]);
      imin = std::min(imin, e.objectives[1]);
      imax = std::max(imax, e.objectives[1]);
    }
    seen.clear();
    for (const auto& e : history.evaluations())
      if (e.generation <= gen) seen.push_back(e.objectives);
    std::vector<std::vector<double>> front;
    for (std::size_t i : tuning::pareto_front(seen)) front.push_back(seen[i]);
    table.add_row({std::to_string(gen), std::to_string(count), strings::format("%.1f", pmin),
                   strings::format("%.1f", pmax), strings::format("%.2f", imin),
                   strings::format("%.2f", imax),
                   strings::format("%.0f", tuning::hypervolume_2d(front, {0.0, 0.0}))});
  }
  table.print(std::cout);

  const auto& best = tuning::Nsga2::best_by_objective(population, 0);
  std::printf("\nselected optimum omega_opt-1500MHz:\n  M = %s\n  %.1f W at %.2f IPC/core"
              "   (paper: 438.2 W, 3.39 IPC)\n",
              tuning::GroupsProblem::to_groups(best.genome).to_string().c_str(),
              best.objectives[0], best.objectives[1]);

  // First front (the paper prints the best individuals after the last
  // generation).
  std::printf("\nfinal Pareto front (first 8 by power):\n");
  std::vector<const tuning::Individual*> front;
  for (const auto& ind : population)
    if (ind.rank == 0) front.push_back(&ind);
  std::sort(front.begin(), front.end(), [](const auto* a, const auto* b) {
    return a->objectives[0] > b->objectives[0];
  });
  for (std::size_t i = 0; i < front.size() && i < 8; ++i)
    std::printf("  %7.1f W  %5.2f IPC  %s\n", front[i]->objectives[0], front[i]->objectives[1],
                tuning::GroupsProblem::to_groups(front[i]->genome).to_string().c_str());

  // ---- ablation: drop the IPC objective ------------------------------------
  PowerOnlyProblem power_only(problem);
  tuning::Nsga2Config ablation_config = config;
  ablation_config.seed = 0xF16012;
  tuning::Nsga2 ablation(ablation_config);
  const auto single_pop = ablation.run(power_only);
  const auto& single_best = tuning::Nsga2::best_by_objective(single_pop, 0);
  power_only.evaluate(single_best.genome);  // refresh last_full
  std::printf("\nablation (power as the only objective):\n");
  std::printf("  best: %.1f W at %.2f IPC/core  (multi-objective: %.1f W at %.2f IPC)\n",
              power_only.last_full[0], power_only.last_full[1], best.objectives[0],
              best.objectives[1]);
  std::printf("  Sec. III-C: ignoring throughput favours workloads whose extra memory\n"
              "  accesses would stall higher-frequency/higher-core-count SKUs.\n");
  return 0;
}
