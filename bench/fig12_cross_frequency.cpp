// Figure 12: power (a), instruction throughput (b), and achieved core
// frequency (c) for the three frequency-optimized workloads, each tested at
// all three P-states of the Table II system.
//
// Paper matrices (rows = optimized for 1500/2200/2500 MHz, columns =
// tested at 1500/2200/2500 MHz):
//   (a) power [W]:  438.2 506.7 506.3 / 435.7 512.2 512.4 / 428.0 493.6 514.4
//   (b) IPC:         3.39  2.55  2.61 /  3.60  2.77  2.69 /  3.42  2.50  2.39
//   (c) freq [MHz]:  1492  2157  2140 /  1492  2164  2191 /  1492  2188  2304
// Key shape: in (a) the diagonal holds the column maximum (each workload is
// best at its training frequency); (c) shows throttling at 2200/2500.

#include <cstdio>
#include <iostream>
#include <vector>

#include "firestarter/backends.hpp"
#include "tuning/nsga2.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fs2;

namespace {

struct OptimizedWorkload {
  double train_mhz;
  payload::InstructionGroups groups;
};

}  // namespace

int main() {
  std::printf("=== Figure 12: cross-frequency evaluation of optimized workloads ===\n\n");

  const auto caches = arch::CacheHierarchy::zen2();
  const auto& mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;
  const sim::Simulator simulator(sim::MachineConfig::zen2_epyc7502_2s());
  const double freqs[] = {1500, 2200, 2500};

  // Train one workload per P-state. Smaller populations than Sec. IV-E keep
  // the bench quick; the optimum is stable well before 40x20 on the
  // simulator.
  std::vector<OptimizedWorkload> optimized;
  for (double train : freqs) {
    sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
    sim::RunConditions cond;
    cond.freq_mhz = train;
    firestarter::SimBackend backend(system, mix, caches, cond, 10.0, 0xF16012);
    backend.preheat();
    tuning::GroupsProblem problem(backend);
    tuning::Nsga2Config config;
    config.individuals = 24;
    config.generations = 12;
    // Identical seed for all three trainings: the initial populations are
    // the same, so differences between the optimized workloads reflect the
    // objective landscape at each frequency, not sampling noise.
    config.seed = 0xF16012;
    tuning::Nsga2 optimizer(config);
    const auto population = optimizer.run(problem);
    const auto& best = tuning::Nsga2::best_by_objective(population, 0);
    optimized.push_back({train, tuning::GroupsProblem::to_groups(best.genome)});
    std::printf("omega_opt-%.0fMHz: %s\n", train,
                optimized.back().groups.to_string().c_str());
  }
  std::printf("\n");

  // Evaluate the 3x3 matrix.
  sim::WorkloadPoint matrix[3][3];
  for (int row = 0; row < 3; ++row) {
    const auto stats = payload::analyze_payload(mix, optimized[row].groups, caches);
    for (int col = 0; col < 3; ++col) {
      sim::RunConditions cond;
      cond.freq_mhz = freqs[col];
      matrix[row][col] = simulator.run(stats, cond);
    }
  }

  const char* row_labels[] = {"opt-1500", "opt-2200", "opt-2500"};
  auto print_matrix = [&](const char* title, auto getter, const char* fmt) {
    Table table({title, "@1500", "@2200", "@2500"});
    for (int row = 0; row < 3; ++row)
      table.add_row({row_labels[row], strings::format(fmt, getter(matrix[row][0])),
                     strings::format(fmt, getter(matrix[row][1])),
                     strings::format(fmt, getter(matrix[row][2]))});
    table.print(std::cout);
    std::printf("\n");
  };
  print_matrix("(a) power [W]", [](const sim::WorkloadPoint& p) { return p.power_w; }, "%.1f");
  print_matrix("(b) IPC/core", [](const sim::WorkloadPoint& p) { return p.ipc_per_core; },
               "%.2f");
  print_matrix("(c) achieved [MHz]",
               [](const sim::WorkloadPoint& p) { return p.achieved_mhz; }, "%.0f");

  // Shape check: diagonal dominance per column of (a).
  bool diagonal_max = true;
  for (int col = 0; col < 3; ++col)
    for (int row = 0; row < 3; ++row)
      if (matrix[row][col].power_w > matrix[col][col].power_w + 1e-9) diagonal_max = false;
  std::printf("shape checks vs paper:\n");
  std::printf("  diagonal holds the column maximum in (a): %s (paper: yes)\n",
              diagonal_max ? "yes" : "no");
  std::printf("  throttling at 2200/2500 MHz (c): %s (paper: all workloads throttle there)\n",
              (matrix[0][1].throttled || matrix[0][2].throttled) ? "yes" : "no");
  std::printf("  paper (a): 438.2/506.7/506.3 | 435.7/512.2/512.4 | 428.0/493.6/514.4\n");
  std::printf("  paper (b): 3.39/2.55/2.61 | 3.60/2.77/2.69 | 3.42/2.50/2.39\n");
  std::printf("  paper (c): 1492/2157/2140 | 1492/2164/2191 | 1492/2188/2304\n");
  return 0;
}
