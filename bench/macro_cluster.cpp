// Macro benchmark for the cluster data plane — the repo's first recorded
// perf trajectory (BENCH_cluster.json, emitted by scripts/bench_report.sh).
//
// Three numbers, each covering one layer of the fleet sample path:
//
//   data_plane_samples_per_s   end-to-end samples/sec through the product
//                              pipeline: TelemetryBus::publish -> RemoteSink
//                              batching -> wire encode -> loopback TCP ->
//                              frame decode -> ClusterBus merge (per-node
//                              summary replay + cluster aggregates)
//   transport_frames_per_s     one-way small-frame throughput of the framed
//                              transport (budget-report-sized messages) —
//                              the protocol's per-frame overhead floor
//   fleet                      wall seconds for full loopback fleet runs
//                              (coordinator + N in-process sim agents over
//                              real TCP, global power budget) at increasing
//                              fleet sizes — the scaling curve
//
// Standalone driver (not google-benchmark): the product pipeline needs
// threads and sockets per iteration, and the output has to be merged into a
// JSON artifact; a fixed workload with a wall clock is the honest measure.

#include <sys/socket.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_bus.hpp"
#include "cluster/fault_injection.hpp"
#include "cluster/messages.hpp"
#include "cluster/remote_sink.hpp"
#include "cluster/transport.hpp"
#include "firestarter/config.hpp"
#include "firestarter/firestarter.hpp"
#include "telemetry/bus.hpp"
#include "trace/tracer.hpp"
#include "util/strings.hpp"

using namespace fs2;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One coordinator-side consumer: drains frames from `conn` into a
/// single-node ClusterBus exactly the way Coordinator::handle_frame does,
/// until the sender's shutdown sentinel arrives.
void drain_into_bus(cluster::Connection& conn, cluster::ClusterBus& bus) {
  cluster::Frame frame;
  cluster::SampleBatchMsg batch;
  for (;;) {
    if (!conn.recv_into(frame, /*timeout_s=*/-1.0)) return;
    cluster::WireReader reader(frame.payload);
    switch (frame.type) {
      case cluster::MessageType::kChannel:
        bus.on_channel(0, cluster::ChannelMsg::decode(reader));
        break;
      case cluster::MessageType::kSampleBatch:
        cluster::SampleBatchMsg::decode_into(reader, batch);
        bus.on_samples(0, batch);
        break;
      case cluster::MessageType::kPhaseBracket:
        bus.on_bracket(0, cluster::PhaseBracketMsg::decode(reader));
        break;
      case cluster::MessageType::kNodeSummary:
        bus.on_summary(0, cluster::NodeSummaryMsg::decode(reader));
        break;
      case cluster::MessageType::kShutdown:
        return;
      default:
        return;
    }
  }
}

/// The data-plane workload: an open-loop fleet campaign phase on a sim
/// agent — wall power (cluster-aggregated into cluster-power), IPC, and
/// the achieved load level at a 500 Sa/s virtual meter rate, with the
/// campaign's clamped trim deltas on every phase bracket. The signal is
/// pre-generated outside the timed region so the measurement covers the
/// pipeline, not the synthetic sine generator.
struct DataPlaneWorkload {
  std::size_t phases;
  double phase_s;
  std::size_t per_phase;
  /// One phase's publish chunks (phase-local timestamps repeat each phase),
  /// per channel, in publish order.
  std::vector<std::vector<telemetry::Sample>> power, ipc, load;

  DataPlaneWorkload(std::size_t phases_, double phase_s_, double sample_hz)
      : phases(phases_),
        phase_s(phase_s_),
        per_phase(static_cast<std::size_t>(phase_s_ * sample_hz)) {
    constexpr std::size_t kChunk = 1024;
    for (std::size_t at = 0; at < per_phase; at += kChunk) {
      const std::size_t n = std::min(kChunk, per_phase - at);
      std::vector<telemetry::Sample> cp, ci, cl;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(at + i) / sample_hz;
        const double level = 0.5 + 0.4 * std::sin(t * 0.7);
        cp.push_back({t, 220.0 + 180.0 * level});
        ci.push_back({t, 1.8 * level});
        cl.push_back({t, level});
      }
      power.push_back(std::move(cp));
      ipc.push_back(std::move(ci));
      load.push_back(std::move(cl));
    }
  }

  std::size_t total_samples() const { return phases * per_phase * 3; }
};

/// samples/sec through publish -> RemoteSink -> wire -> ClusterBus: the
/// coordinator side replays into per-node summaries and the cluster
/// aggregate exactly the way Coordinator::handle_frame does. `merge=false`
/// drops the ClusterBus consumer in favor of a decode-and-discard drain,
/// isolating the data-plane proper (batching, framing, transport, decode)
/// from the O(samples) summary statistics it feeds.
double bench_data_plane(const DataPlaneWorkload& wl, bool merge) {
  cluster::Listener listener(0, /*loopback_only=*/true);
  cluster::Connection agent_conn = cluster::Connection::connect(
      strings::format("127.0.0.1:%u", listener.port()));
  cluster::Connection coord_conn = listener.accept(/*timeout_s=*/5.0);

  cluster::ClusterBus bus({"n0"});
  std::size_t drained = 0;
  std::thread consumer([&] {
    if (merge) {
      drain_into_bus(coord_conn, bus);
      return;
    }
    cluster::Frame frame;
    cluster::SampleBatchMsg batch;
    for (;;) {
      if (!coord_conn.recv_into(frame, /*timeout_s=*/-1.0)) return;
      if (frame.type == cluster::MessageType::kShutdown) return;
      if (frame.type != cluster::MessageType::kSampleBatch) continue;
      cluster::WireReader reader(frame.payload);
      cluster::SampleBatchMsg::decode_into(reader, batch);
      drained += batch.samples.size();
    }
  });

  telemetry::TelemetryBus tb;
  cluster::RemoteSink sink(&agent_conn, Clock::now());
  tb.attach(&sink);
  const telemetry::ChannelId power = tb.channel("sim-wall-power", "W");
  const telemetry::ChannelId ipc = tb.channel("sim-perf-ipc", "instructions/cycle");
  const telemetry::ChannelId load = tb.channel("load-level", "fraction");

  const auto t0 = Clock::now();
  for (std::size_t p = 0; p < wl.phases; ++p) {
    tb.begin_phase(strings::format("p%zu", p), wl.phase_s, /*start_delta_s=*/2.5,
                   /*stop_delta_s=*/1.0);
    for (std::size_t chunk = 0; chunk < wl.power.size(); ++chunk) {
      tb.publish_batch(power, wl.power[chunk]);
      tb.publish_batch(ipc, wl.ipc[chunk]);
      tb.publish_batch(load, wl.load[chunk]);
    }
    tb.end_phase();
  }
  tb.finish();
  agent_conn.send(cluster::ShutdownMsg{}.encode());
  consumer.join();
  const double wall_s = seconds_since(t0);
  // Only the cluster-aggregate channel (wall power) crosses as raw sample
  // batches under the edge-summarized protocol; the other channels arrive
  // as per-phase rows.
  if (!merge && drained != wl.phases * wl.per_phase)
    std::fprintf(stderr, "data-plane bench lost samples!\n");
  return static_cast<double>(wl.total_samples()) / wall_s;
}

/// Coordinator ingest capacity: samples/sec the coordinator can ABSORB.
/// The agent-side stream is pre-staged — the workload runs once through
/// the real TelemetryBus + RemoteSink data plane and every emitted frame
/// is captured into one contiguous byte buffer — then the timed pass pumps
/// those bytes over loopback TCP while the coordinator side does its real
/// work (frame parse, decode, ClusterBus merge). The producer cost in the
/// timed region is a dumb write(2) loop, so the wall clock measures the
/// coordinator, which is the component that bounds fleet size ("hundreds
/// of agents at 500 Sa/s each").
double bench_coordinator_capacity(const DataPlaneWorkload& wl,
                                  std::size_t* frames_out = nullptr) {
  // ---- stage: capture the agent's wire stream --------------------------
  std::vector<std::uint8_t> staged;
  std::size_t staged_frames = 0;
  {
    cluster::Listener listener(0, /*loopback_only=*/true);
    cluster::Connection agent_conn = cluster::Connection::connect(
        strings::format("127.0.0.1:%u", listener.port()));
    cluster::Connection capture_conn = listener.accept(/*timeout_s=*/5.0);
    std::thread capture([&] {
      cluster::Frame frame;
      cluster::WireWriter bytes;
      for (;;) {
        if (!capture_conn.recv_into(frame, /*timeout_s=*/-1.0)) break;
        bytes.u32(static_cast<std::uint32_t>(frame.payload.size() + 1));
        bytes.u8(static_cast<std::uint8_t>(frame.type));
        bytes.raw(frame.payload.data(), frame.payload.size());
        ++staged_frames;
        if (frame.type == cluster::MessageType::kShutdown) break;
      }
      staged = bytes.take();
    });
    telemetry::TelemetryBus tb;
    cluster::RemoteSink sink(&agent_conn, Clock::now());
    tb.attach(&sink);
    const telemetry::ChannelId power = tb.channel("sim-wall-power", "W");
    const telemetry::ChannelId ipc = tb.channel("sim-perf-ipc", "instructions/cycle");
    const telemetry::ChannelId load = tb.channel("load-level", "fraction");
    for (std::size_t p = 0; p < wl.phases; ++p) {
      tb.begin_phase(strings::format("p%zu", p), wl.phase_s, 2.5, 1.0);
      for (std::size_t chunk = 0; chunk < wl.power.size(); ++chunk) {
        tb.publish_batch(power, wl.power[chunk]);
        tb.publish_batch(ipc, wl.ipc[chunk]);
        tb.publish_batch(load, wl.load[chunk]);
      }
      tb.end_phase();
    }
    tb.finish();
    agent_conn.send(cluster::ShutdownMsg{}.encode());
    capture.join();
  }

  // ---- timed: pump the staged bytes, merge on the coordinator side -----
  cluster::Listener listener(0, /*loopback_only=*/true);
  cluster::Connection pump_conn = cluster::Connection::connect(
      strings::format("127.0.0.1:%u", listener.port()));
  cluster::Connection coord_conn = listener.accept(/*timeout_s=*/5.0);
  cluster::ClusterBus bus({"n0"});
  const auto t0 = Clock::now();
  std::thread pump([&] {
    const std::uint8_t* data = staged.data();
    std::size_t left = staged.size();
    while (left > 0) {
      const ssize_t n = ::send(pump_conn.fd(), data, std::min<std::size_t>(left, 262144),
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      data += n;
      left -= static_cast<std::size_t>(n);
    }
  });
  drain_into_bus(coord_conn, bus);
  pump.join();
  const double wall_s = seconds_since(t0);
  if (frames_out != nullptr) *frames_out = staged_frames;
  return static_cast<double>(wl.total_samples()) / wall_s;
}

/// One-way frames/sec for budget-report-sized messages.
double bench_transport_frames(std::size_t frames,
                              cluster::LinkFaults* faults = nullptr) {
  cluster::Listener listener(0, /*loopback_only=*/true);
  cluster::Connection tx = cluster::Connection::connect(
      strings::format("127.0.0.1:%u", listener.port()));
  cluster::Connection rx = listener.accept(/*timeout_s=*/5.0);
  if (faults != nullptr) tx.set_faults(faults);

  std::size_t received = 0;
  std::thread consumer([&] {
    for (;;) {
      const auto frame = rx.recv(/*timeout_s=*/-1.0);
      if (!frame || frame->type == cluster::MessageType::kShutdown) return;
      ++received;
    }
  });

  const auto t0 = Clock::now();
  cluster::BudgetReportMsg report;
  for (std::size_t i = 0; i < frames; ++i) {
    report.seq = static_cast<std::uint32_t>(i);
    report.achieved_w = 240.0 + static_cast<double>(i % 16);
    report.setpoint_w = 250.0;
    report.level = 0.6;
    tx.send(report.encode());
  }
  tx.send(cluster::ShutdownMsg{}.encode());
  consumer.join();
  const double wall_s = seconds_since(t0);
  if (received != frames) std::fprintf(stderr, "transport bench lost frames!\n");
  return static_cast<double>(frames) / wall_s;
}

/// Wall seconds for a full loopback fleet campaign under a global power
/// budget: half zen2 @ 1500 MHz, half haswell @ 2000 MHz, 250 W per node —
/// the heterogeneous pair of the 2-node acceptance test scaled up.
double bench_fleet(std::size_t nodes) {
  const std::string campaign_path = "/tmp/fs2_bench_fleet.campaign";
  {
    std::ofstream out(campaign_path);
    out << "phase name=ramp duration=6\n"
        << "phase name=hold duration=8\n";
  }
  std::string spec;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (!spec.empty()) spec += ",";
    spec += (i % 2 == 0) ? "zen2@1500" : "haswell@2000";
  }
  firestarter::Config cfg;
  cfg.coordinator = true;
  cfg.loopback_nodes = spec;
  cfg.campaign_file = campaign_path;
  cfg.target_spec = strings::format("cluster-power=%zuW", nodes * 250);
  cfg.log_level = "error";
  std::ostringstream out;
  const auto t0 = Clock::now();
  firestarter::Firestarter app(cfg, out);
  const int code = app.run();
  const double wall_s = seconds_since(t0);
  if (code != 0) std::fprintf(stderr, "fleet bench (%zu nodes) exited %d\n", nodes, code);
  return wall_s;
}

/// ns per TRACE_SPAN site with tracing off — what the instrumented ingest
/// path pays in production (one relaxed atomic load and a branch).
double bench_disabled_site_ns() {
  constexpr std::size_t kIterations = 20'000'000;
  trace::Tracer::set_enabled(false);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kIterations; ++i) {
    TRACE_SPAN("bench.site");
  }
  return seconds_since(t0) * 1e9 / static_cast<double>(kIterations);
}

/// The <1% gate's inputs: run the coordinator ingest once with tracing
/// ENABLED to count how many TRACE_SPAN sites the workload actually
/// executes (every recorded-or-dropped span is one site execution), then
/// price those executions at the measured disabled-site cost against the
/// disabled run's wall clock. This analytic model is machine-stable where a
/// direct disabled-vs-stripped comparison would drown in run-to-run noise
/// (the per-site cost is ~1 ns against a multi-second wall).
struct TraceOverhead {
  double traced_samples_per_s = 0.0;   ///< ingest rate with tracing enabled
  std::uint64_t ingest_trace_sites = 0;///< span sites executed by the workload
  double disabled_site_ns = 0.0;
  double disabled_overhead_pct = 0.0;  ///< sites x cost vs the untraced wall
};

TraceOverhead bench_trace_overhead(const DataPlaneWorkload& wl,
                                   double untraced_samples_per_s) {
  TraceOverhead result;
  result.disabled_site_ns = bench_disabled_site_ns();

  trace::Tracer::reset();
  trace::Tracer::set_enabled(true);
  result.traced_samples_per_s = bench_coordinator_capacity(wl);
  trace::Tracer::set_enabled(false);
  std::vector<trace::SpanEvent> events;
  const std::size_t recorded = trace::Tracer::drain(events);
  result.ingest_trace_sites = recorded + trace::Tracer::dropped();
  trace::Tracer::reset();

  const double untraced_wall_ns =
      static_cast<double>(wl.total_samples()) / untraced_samples_per_s * 1e9;
  result.disabled_overhead_pct = static_cast<double>(result.ingest_trace_sites) *
                                 result.disabled_site_ns / untraced_wall_ns * 100.0;
  return result;
}

/// ns per Connection::send for the fault-injection wrapper when no --chaos
/// plan is armed (faults_ == nullptr): one pointer load and a branch, the
/// same shape as a disabled TRACE_SPAN site. The slot is volatile so the
/// check is reloaded and re-taken every iteration, as send() does.
double bench_chaos_disabled_site_ns() {
  constexpr std::size_t kIterations = 200'000'000;
  cluster::LinkFaults* volatile slot = nullptr;
  std::size_t armed = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kIterations; ++i) {
    if (slot != nullptr) ++armed;
  }
  const double wall_s = seconds_since(t0);
  if (armed != 0) std::fprintf(stderr, "chaos site bench: impossible arm\n");
  return wall_s * 1e9 / static_cast<double>(kIterations);
}

/// The chaos <1% gate's inputs, following the tracing methodology: every
/// frame the coordinator ingests crossed exactly one send-side wrapper
/// check on its way in, so the disabled-path overhead is (frames x measured
/// site cost) against the ingest wall clock. quiet_frames_per_s prices the
/// other end of the spectrum — a LinkFaults injector ARMED with all-zero
/// rates — as an empirical ceiling on what arming chaos costs the
/// transport.
struct ChaosOverhead {
  double disabled_site_ns = 0.0;
  std::uint64_t ingest_send_sites = 0;  ///< frames the ingest workload sends
  double disabled_overhead_pct = 0.0;
  double quiet_frames_per_s = 0.0;
};

ChaosOverhead bench_chaos_overhead(const DataPlaneWorkload& wl,
                                   std::size_t ingest_frames,
                                   double untouched_samples_per_s) {
  ChaosOverhead result;
  result.disabled_site_ns = bench_chaos_disabled_site_ns();
  result.ingest_send_sites = ingest_frames;
  const double wall_ns =
      static_cast<double>(wl.total_samples()) / untouched_samples_per_s * 1e9;
  result.disabled_overhead_pct = static_cast<double>(ingest_frames) *
                                 result.disabled_site_ns / wall_ns * 100.0;
  cluster::LinkFaults quiet(/*drop=*/0.0, /*corrupt=*/0.0, /*truncate=*/0.0,
                            /*delay_s=*/0.0, /*delay_jitter_s=*/0.0, /*seed=*/7);
  result.quiet_frames_per_s = bench_transport_frames(/*frames=*/200000, &quiet);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional single argument caps the largest fleet size (CI time budget).
  std::size_t max_fleet = 32;
  if (argc > 1) max_fleet = static_cast<std::size_t>(std::stoul(argv[1]));

  const DataPlaneWorkload workload(/*phases=*/8, /*phase_s=*/120.0, /*sample_hz=*/500.0);
  std::size_t ingest_frames = 0;
  const double coordinator = bench_coordinator_capacity(workload, &ingest_frames);
  const TraceOverhead overhead = bench_trace_overhead(workload, coordinator);
  const ChaosOverhead chaos = bench_chaos_overhead(workload, ingest_frames, coordinator);
  const double path = bench_data_plane(workload, /*merge=*/false);
  const double merged = bench_data_plane(workload, /*merge=*/true);
  const double frames = bench_transport_frames(/*frames=*/200000);

  std::vector<std::size_t> fleet_sizes;
  for (std::size_t n = 2; n <= max_fleet; n *= 4) fleet_sizes.push_back(n);

  std::printf("{\n");
  std::printf("  \"coordinator_samples_per_s\": %.0f,\n", coordinator);
  std::printf("  \"coordinator_traced_samples_per_s\": %.0f,\n",
              overhead.traced_samples_per_s);
  std::printf("  \"trace_disabled_site_ns\": %.3f,\n", overhead.disabled_site_ns);
  std::printf("  \"ingest_trace_sites\": %llu,\n",
              static_cast<unsigned long long>(overhead.ingest_trace_sites));
  std::printf("  \"tracing_disabled_overhead_pct\": %.4f,\n",
              overhead.disabled_overhead_pct);
  std::printf("  \"chaos_disabled_site_ns\": %.3f,\n", chaos.disabled_site_ns);
  std::printf("  \"ingest_chaos_sites\": %llu,\n",
              static_cast<unsigned long long>(chaos.ingest_send_sites));
  std::printf("  \"chaos_disabled_overhead_pct\": %.4f,\n",
              chaos.disabled_overhead_pct);
  std::printf("  \"chaos_quiet_frames_per_s\": %.0f,\n", chaos.quiet_frames_per_s);
  std::printf("  \"data_plane_samples_per_s\": %.0f,\n", path);
  std::printf("  \"merged_samples_per_s\": %.0f,\n", merged);
  std::printf("  \"transport_frames_per_s\": %.0f,\n", frames);
  std::printf("  \"fleet\": [");
  for (std::size_t i = 0; i < fleet_sizes.size(); ++i) {
    const double wall_s = bench_fleet(fleet_sizes[i]);
    std::printf("%s{\"nodes\": %zu, \"wall_s\": %.2f}", i > 0 ? ", " : "",
                fleet_sizes[i], wall_s);
    std::fflush(stdout);
  }
  std::printf("]\n}\n");
  return 0;
}
