// Micro-benchmarks for the closed-loop control subsystem. The controller
// runs on the orchestrator thread at the --target tick interval (default
// 4 Hz), so its absolute cost barely matters — what does matter is the
// ControlledProfile read on the worker side: every worker samples the
// commanded level once per modulation window and, for live profiles, once
// per ~5 ms kernel chunk. That read must stay at nanoseconds or fast PWM
// periods would burn their budget on control instead of stress (same budget
// argument as bench/micro_sched.cpp).

#include <benchmark/benchmark.h>

#include "control/controlled_profile.hpp"
#include "control/feedback_loop.hpp"
#include "control/pid.hpp"
#include "control/setpoint.hpp"
#include "sim/machine_config.hpp"
#include "sim/plant.hpp"

using namespace fs2;

namespace {

void BM_ControlledProfileLoadAt(benchmark::State& state) {
  const control::ControlledProfile profile(0.5);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.load_at(t));
    t += 0.005;
  }
}
BENCHMARK(BM_ControlledProfileLoadAt);

void BM_ControlledProfileSetLevel(benchmark::State& state) {
  control::ControlledProfile profile(0.5);
  double level = 0.0;
  for (auto _ : state) {
    profile.set_level(level);
    level = level < 1.0 ? level + 0.001 : 0.0;
  }
}
BENCHMARK(BM_ControlledProfileSetLevel);

void BM_PidUpdate(benchmark::State& state) {
  control::PidConfig cfg;
  cfg.gains = control::PidGains{0.5, 2.0, 0.1};
  cfg.derivative_tau_s = 1.0;
  control::PidController pid(cfg);
  double measurement = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pid.update(0.8, measurement, 0.25));
    measurement = measurement < 1.0 ? measurement + 0.001 : 0.0;
  }
}
BENCHMARK(BM_PidUpdate);

void BM_FeedbackLoopTick(benchmark::State& state) {
  // tick() pushes telemetry into a bounded ring (no reallocation once
  // warm), so one loop can run for millions of benchmark iterations at a
  // steady per-tick cost and constant memory.
  auto profile = std::make_shared<control::ControlledProfile>(0.5);
  const control::Setpoint sp = control::Setpoint::parse("power=250W");
  control::FeedbackLoop loop(sp, profile, 300.0, 0.5);
  double t = 0.0, measurement = 240.0;
  for (auto _ : state) {
    t += 0.25;
    benchmark::DoNotOptimize(loop.tick(t, measurement));
    measurement = measurement < 260.0 ? measurement + 0.1 : 240.0;
  }
}
BENCHMARK(BM_FeedbackLoopTick);

void BM_SetpointParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        control::Setpoint::parse("power=150W,kp=0.4,ki=1.5,interval=0.5,band=2"));
}
BENCHMARK(BM_SetpointParse);

void BM_PlantStep(benchmark::State& state) {
  const sim::Simulator sim(sim::MachineConfig::zen2_epyc7502_2s());
  sim::WorkloadPoint point;
  point.power_w = 420.0;
  sim::PowerPlant plant(sim, point, /*seed=*/7);
  double level = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plant.step(level, 0.25));
    level = level < 1.0 ? level + 0.001 : 0.0;
  }
}
BENCHMARK(BM_PlantStep);

}  // namespace
