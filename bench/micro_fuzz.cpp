// Micro-benchmarks for the payload pattern fuzzer's hot paths. A fuzz run
// burns most of its time in simulated phase evaluation, but generation,
// signature distillation, and corpus maintenance run once per candidate —
// at fleet scale (thousands of candidates per sweep) they must stay in the
// microsecond range or the bookkeeping starts rivaling the measurement.

#include <benchmark/benchmark.h>

#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/pattern.hpp"
#include "fuzz/signature.hpp"
#include "metrics/measurement.hpp"

using namespace fs2;

namespace {

void BM_GeneratorRandom(benchmark::State& state) {
  fuzz::PatternGenerator generator(42);
  for (auto _ : state) benchmark::DoNotOptimize(generator.random());
}
BENCHMARK(BM_GeneratorRandom);

void BM_GeneratorMutate(benchmark::State& state) {
  fuzz::PatternGenerator generator(42);
  fuzz::PatternSpec parent = generator.random();
  for (auto _ : state) {
    parent = generator.mutate(parent);
    benchmark::DoNotOptimize(parent);
  }
}
BENCHMARK(BM_GeneratorMutate);

void BM_SpecRoundTrip(benchmark::State& state) {
  fuzz::PatternGenerator generator(42);
  const fuzz::PatternSpec spec = generator.random();
  for (auto _ : state)
    benchmark::DoNotOptimize(fuzz::PatternSpec::parse(spec.to_string()));
}
BENCHMARK(BM_SpecRoundTrip);

std::vector<metrics::Summary> sample_rows() {
  std::vector<metrics::Summary> rows;
  const char* names[] = {"sim-wall-power", "sim-perf-ipc", "sim-package-temp",
                         "load-level"};
  for (int phase = 0; phase < 8; ++phase)
    for (const char* name : names) {
      metrics::Summary row;
      row.name = name;
      row.phase = "r" + std::to_string(phase);
      row.mean = 300.0 + phase;
      row.min = 120.0;
      row.max = 470.0 + phase;
      row.samples = 60;
      rows.push_back(row);
    }
  return rows;
}

void BM_SignatureFromRows(benchmark::State& state) {
  const std::vector<metrics::Summary> rows = sample_rows();
  for (auto _ : state)
    benchmark::DoNotOptimize(fuzz::signature_from_rows(rows, "r5", 6.0));
}
BENCHMARK(BM_SignatureFromRows);

void BM_DedupeKey(benchmark::State& state) {
  const fuzz::ResponseSignature signature =
      fuzz::signature_from_rows(sample_rows(), "r5", 6.0);
  for (auto _ : state) benchmark::DoNotOptimize(fuzz::dedupe_key(signature));
}
BENCHMARK(BM_DedupeKey);

/// Corpus add under sustained pressure: every candidate of a sweep is
/// offered, most are pruned — the bound on retained entries is what keeps
/// this O(cap) no matter how long the run.
void BM_CorpusAddPruned(benchmark::State& state) {
  fuzz::PatternGenerator generator(7);
  fuzz::Corpus corpus(8);
  std::uint64_t tick = 0;
  for (auto _ : state) {
    fuzz::CorpusEntry entry;
    entry.spec = generator.random();
    entry.signature.mean_power_w = 200.0 + static_cast<double>(tick % 512);
    entry.signature.max_power_w = 300.0 + static_cast<double>(tick % 512);
    entry.signature.min_power_w = 120.0;
    entry.signature.power_swing_w = entry.signature.max_power_w - 120.0;
    entry.signature.ipc = 2.0 + static_cast<double>(tick % 97) / 100.0;
    entry.signature.thermal_slope_c_per_s = 0.3 + static_cast<double>(tick % 53) / 100.0;
    entry.signature.samples = 60;
    ++tick;
    benchmark::DoNotOptimize(corpus.add(std::move(entry)));
  }
}
BENCHMARK(BM_CorpusAddPruned);

void BM_CorpusRanked(benchmark::State& state) {
  fuzz::PatternGenerator generator(7);
  fuzz::Corpus corpus(8);
  for (int i = 0; i < 256; ++i) {
    fuzz::CorpusEntry entry;
    entry.spec = generator.random();
    entry.signature.max_power_w = 300.0 + i;
    entry.signature.power_swing_w = 200.0 + (i * 37) % 256;
    entry.signature.thermal_slope_c_per_s = 0.2 + ((i * 11) % 64) / 100.0;
    entry.signature.mean_power_w = 250.0;
    entry.signature.min_power_w = 120.0;
    entry.signature.ipc = 2.0;
    entry.signature.samples = 60;
    corpus.add(std::move(entry));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(corpus.ranked(fuzz::Objective::kPowerSwing));
}
BENCHMARK(BM_CorpusRanked);

}  // namespace

BENCHMARK_MAIN();
