// Micro-benchmarks for the JIT substrate: how fast can FIRESTARTER 2
// generate a workload? This is the quantitative backing for the Fig. 6->7
// improvement — runtime code generation takes microseconds to
// milliseconds, versus the ~25 s compile-and-link cycle of the 1.x
// template flow.

#include <benchmark/benchmark.h>

#include "arch/cache.hpp"
#include "arch/cpuid.hpp"
#include "jit/assembler.hpp"
#include "jit/exec_memory.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"

using namespace fs2;

namespace {

void BM_EncodeFmaSet(benchmark::State& state) {
  // One instruction set of the Haswell mix: 2 FMA + xor + shift.
  for (auto _ : state) {
    jit::Assembler a;
    a.vfmadd231pd(jit::Ymm::ymm0, jit::Ymm::ymm14, jit::Ymm::ymm12);
    a.vfmadd231pd(jit::Ymm::ymm5, jit::Ymm::ymm14, jit::Ymm::ymm13);
    a.xor_(jit::Gp::rdx, jit::Gp::rsi);
    a.shl(jit::Gp::r11, 1);
    benchmark::DoNotOptimize(a.finalize());
  }
}
BENCHMARK(BM_EncodeFmaSet);

void BM_CompileWorkload(benchmark::State& state) {
  // Full workload compilation (the Fig. 5 "generate" arrow): sequence
  // construction, codegen for `u` sets, label fixups, W^X mapping.
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  const auto groups = payload::InstructionGroups::parse(fn.default_groups);
  const auto caches = arch::CacheHierarchy::zen2();
  payload::CompileOptions options;
  options.unroll = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto payload = payload::compile_payload(fn.mix, groups, caches, options);
    benchmark::DoNotOptimize(payload.fn());
  }
  state.SetLabel("u=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CompileWorkload)->Arg(128)->Arg(1024)->Arg(8192);

void BM_AnalyzeWorkload(benchmark::State& state) {
  // Static analysis only (what the simulator backend does per candidate).
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  const auto groups = payload::InstructionGroups::parse(fn.default_groups);
  const auto caches = arch::CacheHierarchy::zen2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(payload::analyze_payload(fn.mix, groups, caches));
  }
}
BENCHMARK(BM_AnalyzeWorkload);

void BM_ExecutableBufferRoundTrip(benchmark::State& state) {
  jit::Assembler a;
  a.mov(jit::Gp::rax, std::uint64_t{42});
  a.ret();
  const auto code = a.finalize();
  for (auto _ : state) {
    jit::ExecutableBuffer buffer{std::span<const std::uint8_t>(code)};
    benchmark::DoNotOptimize(buffer.as<std::uint64_t (*)()>()());
  }
}
BENCHMARK(BM_ExecutableBufferRoundTrip);

void BM_KernelIteration(benchmark::State& state) {
  // Cost of one executed loop iteration of the compiled stress kernel
  // (REG-only so the measurement is not memory-bound).
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  if (!arch::host_identity().features.covers(fn.mix.required)) {
    state.SkipWithError("host lacks AVX2+FMA");
    return;
  }
  payload::CompileOptions options;
  options.unroll = 256;
  options.ram_region_bytes = 1 << 20;
  auto payload = payload::compile_payload(fn.mix, payload::InstructionGroups::parse("REG:1"),
                                          arch::CacheHierarchy::zen2(), options);
  auto buffer = payload.make_buffer();
  buffer->init(payload::DataInitPolicy::kSafe, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(payload.fn()(&buffer->args(), 100));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_KernelIteration);

}  // namespace
