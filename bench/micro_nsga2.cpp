// Micro-benchmarks for the NSGA-II implementation, including the O(M N^2)
// complexity claim of the fast non-dominated sort (Deb et al. 2002,
// Sec. III-C: "runtime complexity of only O(M N^2)").

#include <benchmark/benchmark.h>

#include "tuning/nsga2.hpp"
#include "util/rng.hpp"

using namespace fs2;

namespace {

std::vector<tuning::Individual> random_population(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<tuning::Individual> population(n);
  for (auto& ind : population) ind.objectives = {rng.uniform(0, 500), rng.uniform(0, 5)};
  return population;
}

void BM_FastNonDominatedSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto population = random_population(n, 42);
  for (auto _ : state) {
    auto copy = population;
    benchmark::DoNotOptimize(tuning::fast_non_dominated_sort(copy));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastNonDominatedSort)->RangeMultiplier(2)->Range(32, 512)->Complexity(
    benchmark::oNSquared);

void BM_CrowdingDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto population = random_population(n, 7);
  std::vector<std::size_t> front(n);
  for (std::size_t i = 0; i < n; ++i) front[i] = i;
  for (auto _ : state) {
    tuning::assign_crowding_distance(population, front);
    benchmark::DoNotOptimize(population.data());
  }
}
BENCHMARK(BM_CrowdingDistance)->Arg(64)->Arg(512);

/// Cheap analytic problem so the benchmark isolates optimizer overhead.
class AnalyticProblem : public tuning::Problem {
 public:
  std::size_t genome_length() const override { return 16; }
  std::uint32_t gene_max(std::size_t) const override { return 100; }
  std::size_t num_objectives() const override { return 2; }
  std::string objective_name(std::size_t i) const override { return i ? "b" : "a"; }
  std::vector<double> evaluate(const tuning::Genome& genome) override {
    double sum = 0;
    for (auto g : genome) sum += g;
    return {sum, 1600.0 - sum};
  }
};

void BM_Nsga2FullRun(benchmark::State& state) {
  for (auto _ : state) {
    AnalyticProblem problem;
    tuning::Nsga2Config config;
    config.individuals = static_cast<std::size_t>(state.range(0));
    config.generations = 10;
    tuning::Nsga2 optimizer(config);
    benchmark::DoNotOptimize(optimizer.run(problem));
  }
  state.SetLabel(std::to_string(state.range(0)) + " individuals x 10 generations");
}
BENCHMARK(BM_Nsga2FullRun)->Arg(20)->Arg(40);

}  // namespace
