// Micro-benchmarks for the payload model: grammar parsing, the
// even-distribution sequence builder (with the naive block-distribution
// ablation DESIGN.md calls out), and work-buffer initialization.

#include <benchmark/benchmark.h>

#include "arch/cache.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "payload/sequence.hpp"

using namespace fs2;

namespace {

const char* kGroups = "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37";

void BM_ParseGroups(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(payload::InstructionGroups::parse(kGroups));
}
BENCHMARK(BM_ParseGroups);

void BM_BaseSequence(benchmark::State& state) {
  const auto groups = payload::InstructionGroups::parse(kGroups);
  for (auto _ : state) benchmark::DoNotOptimize(payload::base_sequence(groups));
}
BENCHMARK(BM_BaseSequence);

/// Ablation: naive block distribution (all REG sets, then all L1 sets, ...)
/// instead of ideal-position interleaving. Same cost class, but the
/// resulting sequence clusters same-kind accesses — the paper's Sec. III
/// requires spreading so the L1 accesses sit sets apart. The fig09 power
/// results rely on the interleaved form; this measures the builder cost
/// delta only.
std::vector<payload::AccessKind> block_sequence(const payload::InstructionGroups& groups) {
  std::vector<payload::AccessKind> sequence;
  sequence.reserve(groups.total());
  for (const auto& group : groups.groups())
    for (std::uint32_t i = 0; i < group.count; ++i) sequence.push_back(group.kind);
  return sequence;
}

void BM_BaseSequence_BlockAblation(benchmark::State& state) {
  const auto groups = payload::InstructionGroups::parse(kGroups);
  for (auto _ : state) benchmark::DoNotOptimize(block_sequence(groups));
}
BENCHMARK(BM_BaseSequence_BlockAblation);

void BM_UnrollSequence(benchmark::State& state) {
  const auto base = payload::base_sequence(payload::InstructionGroups::parse(kGroups));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        payload::unroll_sequence(base, static_cast<std::uint32_t>(state.range(0))));
}
BENCHMARK(BM_UnrollSequence)->Arg(1024)->Arg(8192);

void BM_WorkBufferInit(benchmark::State& state) {
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  payload::CompileOptions options;
  options.unroll = 256;
  options.ram_region_bytes = static_cast<std::size_t>(state.range(0)) << 20;
  const auto stats = payload::analyze_payload(
      fn.mix, payload::InstructionGroups::parse(kGroups), arch::CacheHierarchy::zen2(), options);
  payload::WorkBuffer buffer(stats.regions, stats.sequence);
  for (auto _ : state) {
    buffer.init(payload::DataInitPolicy::kSafe, 42);
    benchmark::DoNotOptimize(buffer.args().ram);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buffer.allocated_bytes()));
  state.SetLabel(std::to_string(state.range(0)) + " MiB RAM region");
}
BENCHMARK(BM_WorkBufferInit)->Arg(1)->Arg(16);

}  // namespace
