// Micro-benchmarks for the load-profile scheduler. Workers consult
// LoadProfile::load_at once per modulation window (default every 100 ms,
// down to tens of microseconds for the paper's VR-stress oscillations), so
// a scheduling decision must cost nanoseconds — far below one kernel chunk
// — or fast PWM periods would spend their budget deciding instead of
// stressing. parse_profile/Campaign::parse run once per run; they are
// benchmarked for the campaign-validation path (hundreds of phases).

#include <benchmark/benchmark.h>

#include <sstream>

#include "sched/campaign.hpp"
#include "sched/load_profile.hpp"
#include "sched/phase_clock.hpp"

using namespace fs2;

namespace {

void BM_ConstantLoadAt(benchmark::State& state) {
  const sched::ConstantProfile profile(0.5);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.load_at(t));
    t += 0.1;
  }
}
BENCHMARK(BM_ConstantLoadAt);

void BM_SquareLoadAt(benchmark::State& state) {
  const sched::SquareProfile profile(0.0, 1.0, 2.0, 0.5);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.load_at(t));
    t += 0.1;
  }
}
BENCHMARK(BM_SquareLoadAt);

void BM_SineLoadAt(benchmark::State& state) {
  const sched::SineProfile profile(0.1, 0.9, 5.0);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.load_at(t));
    t += 0.1;
  }
}
BENCHMARK(BM_SineLoadAt);

void BM_BurstLoadAt(benchmark::State& state) {
  const sched::BurstProfile profile(0.2, 1.0, 1.0, 0.25, 42);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.load_at(t));
    t += 0.1;
  }
}
BENCHMARK(BM_BurstLoadAt);

void BM_TraceLoadAt(benchmark::State& state) {
  // Binary search over `breakpoints` rows (64 .. 4096: a day of rack load
  // at one sample per 20 s).
  std::vector<sched::TraceProfile::Breakpoint> points;
  const auto breakpoints = static_cast<std::size_t>(state.range(0));
  points.reserve(breakpoints);
  for (std::size_t i = 0; i < breakpoints; ++i)
    points.push_back({static_cast<double>(i), (i % 10) / 10.0});
  const sched::TraceProfile profile(std::move(points), /*loop=*/true);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.load_at(t));
    t += 0.7;
  }
}
BENCHMARK(BM_TraceLoadAt)->Range(64, 4096);

void BM_WindowIndex(benchmark::State& state) {
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::PhaseClock::window_index(t, 0.1));
    t += 0.013;
  }
}
BENCHMARK(BM_WindowIndex);

void BM_PhaseClockElapsed(benchmark::State& state) {
  const sched::PhaseClock clock;
  for (auto _ : state) benchmark::DoNotOptimize(clock.elapsed());
}
BENCHMARK(BM_PhaseClockElapsed);

void BM_ParseProfileSpec(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::parse_profile("sine:low=10,high=90,period=2", 1.0, 0.1));
}
BENCHMARK(BM_ParseProfileSpec);

void BM_CampaignParse(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < state.range(0); ++i)
    text += "phase name=p" + std::to_string(i) +
            " duration=10 profile=sine:low=10,high=90,period=5\n";
  for (auto _ : state) {
    std::istringstream in(text);
    benchmark::DoNotOptimize(sched::Campaign::parse(in, "<bench>"));
  }
}
BENCHMARK(BM_CampaignParse)->Range(4, 256);

}  // namespace
