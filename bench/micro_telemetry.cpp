// Micro-benchmarks for the streaming telemetry layer. The aggregator sits
// on every sample the measurement path takes — the host loop publishes a
// handful of channels at 20 Hz (cheap), but the simulator's virtual-time
// campaigns push millions of samples per second of wall time, and the CI
// bounded-memory smoke cranks --sim-sample-hz further. Ingest therefore has
// to stay at tens of nanoseconds per sample, and the bus fan-out must not
// add more than pointer-chasing on top.

#include <benchmark/benchmark.h>

#include "telemetry/bus.hpp"
#include "telemetry/ring_buffer.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/streaming_aggregator.hpp"
#include "util/rng.hpp"

using namespace fs2;

namespace {

void BM_StreamingMomentsAdd(benchmark::State& state) {
  telemetry::StreamingMoments moments;
  Xoshiro256 rng(7);
  double value = 300.0;
  for (auto _ : state) {
    moments.add(value);
    value = 300.0 + 25.0 * rng.normal();
  }
  benchmark::DoNotOptimize(moments.mean());
}
BENCHMARK(BM_StreamingMomentsAdd);

void BM_P2QuantileAdd(benchmark::State& state) {
  telemetry::P2Quantile p99(0.99);
  Xoshiro256 rng(11);
  for (auto _ : state) p99.add(rng.uniform());
  benchmark::DoNotOptimize(p99.value());
}
BENCHMARK(BM_P2QuantileAdd);

void BM_AggregatorIngest(benchmark::State& state) {
  // The full per-sample path with the paper's 5 s/2 s trim window: Welford
  // + min/max + three P² estimators on both the trimmed and untrimmed
  // aggregates, plus the stop-delta holdback deque at 20 Sa/s.
  telemetry::StreamingAggregator aggregator(5.0, 2.0);
  Xoshiro256 rng(13);
  double t = 0.0;
  for (auto _ : state) {
    aggregator.add(t, 300.0 + 25.0 * rng.normal());
    t += 0.05;
  }
  benchmark::DoNotOptimize(aggregator.summarize());
}
BENCHMARK(BM_AggregatorIngest);

void BM_RingBufferPush(benchmark::State& state) {
  telemetry::RingBuffer<telemetry::Sample> ring(1024);
  double t = 0.0;
  for (auto _ : state) {
    ring.push(telemetry::Sample{t, 1.0});
    t += 0.05;
  }
  benchmark::DoNotOptimize(ring.size());
}
BENCHMARK(BM_RingBufferPush);

void BM_BusPublishFanout(benchmark::State& state) {
  // One publish through the bus into the summary sink — the hot path of a
  // simulated campaign (per sample, per channel).
  telemetry::TelemetryBus bus;
  telemetry::SummarySink summary;
  bus.attach(&summary);
  const telemetry::ChannelId ch = bus.channel("sim-wall-power", "W");
  bus.begin_phase("bench", 1e12, 5.0, 2.0);
  Xoshiro256 rng(17);
  double t = 0.0;
  for (auto _ : state) {
    bus.publish(ch, t, 300.0 + 25.0 * rng.normal());
    t += 0.05;
  }
  bus.finish();
}
BENCHMARK(BM_BusPublishFanout);

}  // namespace
