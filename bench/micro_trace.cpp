// Micro benchmark for the span tracer and the metrics plane — the numbers
// behind the <1% gates in scripts/bench_report.sh (see
// docs/observability.md).
//
//   span_disabled_ns    cost of one TRACE_SPAN site with tracing off: a
//                       relaxed atomic load and a branch. This is what every
//                       instrumented hot path pays in production.
//   span_enabled_ns     cost of one recorded span: two clock reads plus the
//                       ring push (two value stores and a release publish).
//   drain_spans_per_s   consumer throughput of Tracer::drain — how fast the
//                       coordinator can pull a fleet's buffered spans off
//                       the rings.
//   counter_add_ns      one Counter::add: a relaxed fetch_add.
//   histogram_record_ns one Histogram::record: frexp + one relaxed
//                       fetch_add on the bucket (+ best-effort sum/max).
//                       Gated at <= 2x counter_add_ns — histograms must be
//                       cheap enough to sit on the same hot paths.
//   metric_update_fold_ns  one full shipping cycle for an agent-sized
//                       registry: MetricDeltaTracker::collect -> encode ->
//                       decode -> MetricStore::fold. What the coordinator
//                       pays per node per --metrics-interval.
//
// Standalone driver (not google-benchmark): the output merges into
// BENCH_cluster.json via scripts/bench_report.sh, which needs plain JSON.

#include <chrono>
#include <cstdio>
#include <vector>

#include "cluster/messages.hpp"
#include "cluster/metrics_plane.hpp"
#include "cluster/wire.hpp"
#include "trace/metric_delta.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"

using Clock = std::chrono::steady_clock;
using fs2::trace::SpanEvent;
using fs2::trace::Tracer;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// ns per TRACE_SPAN site with tracing disabled. The loop body is exactly
/// one instrumented scope; the atomic load inside ScopedSpan's constructor
/// keeps the compiler from deleting it.
double bench_disabled_ns(std::size_t iterations) {
  Tracer::set_enabled(false);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    TRACE_SPAN("bench.disabled");
  }
  return seconds_since(t0) * 1e9 / static_cast<double>(iterations);
}

/// ns per recorded span, draining the ring before it can overflow so every
/// iteration takes the full record path (a dropped span skips the stores).
double bench_enabled_ns(std::size_t iterations) {
  Tracer::reset();
  Tracer::set_enabled(true);
  std::vector<SpanEvent> sink;
  sink.reserve(Tracer::kRingCapacity);
  const std::size_t drain_every = Tracer::kRingCapacity / 2;
  double drain_s = 0.0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    TRACE_SPAN("bench.enabled");
    if (i % drain_every == drain_every - 1) {
      const auto d0 = Clock::now();
      sink.clear();
      Tracer::drain(sink);
      drain_s += seconds_since(d0);
    }
  }
  const double total_s = seconds_since(t0);
  Tracer::set_enabled(false);
  if (Tracer::dropped() > 0)
    std::fprintf(stderr, "micro_trace: enabled bench overflowed the ring!\n");
  Tracer::reset();
  return (total_s - drain_s) * 1e9 / static_cast<double>(iterations);
}

/// Spans/sec through Tracer::drain with full rings — the off-hot-path
/// consumer the coordinator runs at end of campaign.
double bench_drain_rate(std::size_t rounds) {
  Tracer::reset();
  Tracer::set_enabled(true);
  std::vector<SpanEvent> sink;
  sink.reserve(Tracer::kRingCapacity);
  std::size_t drained = 0;
  double drain_s = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < Tracer::kRingCapacity; ++i)
      Tracer::record("bench.drain", 1.0, 2.0);
    const auto t0 = Clock::now();
    sink.clear();
    drained += Tracer::drain(sink);
    drain_s += seconds_since(t0);
  }
  Tracer::set_enabled(false);
  Tracer::reset();
  return static_cast<double>(drained) / drain_s;
}

/// ns per Counter::add — the yardstick histogram_record_ns is gated against.
double bench_counter_add_ns(std::size_t iterations) {
  fs2::trace::Registry reg;
  fs2::trace::Counter& counter = reg.counter("bench.counter");
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) counter.add();
  const double ns = seconds_since(t0) * 1e9 / static_cast<double>(iterations);
  if (counter.value() != iterations) std::fprintf(stderr, "counter bench lost adds\n");
  return ns;
}

/// ns per Histogram::record over a spread of realistic magnitudes (latencies
/// through frame sizes), so the frexp path sees varied exponents instead of
/// one branch-predicted bucket.
double bench_histogram_record_ns(std::size_t iterations) {
  fs2::trace::Registry reg;
  fs2::trace::Histogram& hist = reg.histogram("bench.hist");
  std::vector<double> values(1024);
  double v = 3.1e-7;
  for (double& out : values) {
    out = v;
    v *= 1.37;
    if (v > 2.0e6) v = 3.1e-7;
  }
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) hist.record(values[i & 1023]);
  const double ns = seconds_since(t0) * 1e9 / static_cast<double>(iterations);
  if (hist.snapshot("x").count != iterations)
    std::fprintf(stderr, "histogram bench lost records\n");
  return ns;
}

/// ns per full kMetricUpdate shipping cycle for one agent-sized registry
/// (the mix a SimAgent actually carries: a few counters, gauges, and two
/// histograms): collect the delta, encode it, decode it, fold it into the
/// coordinator's MetricStore. Multiplied by fleet size over the shipping
/// interval, this is the coordinator-side cost of the live metrics plane.
double bench_metric_update_fold_ns(std::size_t cycles) {
  fs2::trace::Registry reg;
  fs2::trace::Counter& exchanges = reg.counter("agent.budget_exchanges");
  fs2::trace::Gauge& achieved = reg.gauge("agent.achieved_w");
  fs2::trace::Gauge& setpoint = reg.gauge("agent.setpoint_w");
  fs2::trace::Gauge& level = reg.gauge("agent.level");
  fs2::trace::Gauge& phase = reg.gauge("agent.phase");
  fs2::trace::Histogram& error = reg.histogram("agent.ctl_error_w");
  fs2::trace::Histogram& poll = reg.histogram("reactor.poll_wait_s");
  fs2::trace::MetricDeltaTracker tracker(reg);
  fs2::cluster::MetricStore store;
  store.resize(1);

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < cycles; ++i) {
    // An interval's worth of registry movement (a couple of control ticks).
    exchanges.add(2);
    achieved.set(250.0 + static_cast<double>(i % 16));
    setpoint.set(250.0);
    level.set(0.6);
    phase.set(static_cast<double>(i % 8));
    error.record(0.4 + 0.01 * static_cast<double>(i % 32));
    error.record(1.9);
    poll.record(2.5e-4);
    poll.record(9.0e-4);

    fs2::cluster::MetricUpdateMsg msg;
    msg.seq = static_cast<std::uint32_t>(i);
    msg.t_agent_s = 0.001 * static_cast<double>(i);
    msg.delta = tracker.collect();
    const fs2::cluster::Frame frame = msg.encode();
    fs2::cluster::WireReader reader(frame.payload);
    store.fold(0, fs2::cluster::MetricUpdateMsg::decode(reader),
               /*now_s=*/msg.t_agent_s);
  }
  const double ns = seconds_since(t0) * 1e9 / static_cast<double>(cycles);
  if (store.nodes()[0].updates != cycles)
    std::fprintf(stderr, "fold bench lost updates\n");
  return ns;
}

}  // namespace

int main() {
  constexpr std::size_t kIterations = 20'000'000;
  // Warm up once so the thread ring exists before anything is timed.
  { TRACE_SPAN("bench.warmup"); }

  const double disabled_ns = bench_disabled_ns(kIterations);
  const double enabled_ns = bench_enabled_ns(kIterations / 10);
  const double drain_rate = bench_drain_rate(/*rounds=*/64);
  const double counter_ns = bench_counter_add_ns(kIterations);
  const double histogram_ns = bench_histogram_record_ns(kIterations);
  const double fold_ns = bench_metric_update_fold_ns(/*cycles=*/200'000);

  std::printf("{\n");
  std::printf("  \"span_disabled_ns\": %.3f,\n", disabled_ns);
  std::printf("  \"span_enabled_ns\": %.2f,\n", enabled_ns);
  std::printf("  \"drain_spans_per_s\": %.0f,\n", drain_rate);
  std::printf("  \"counter_add_ns\": %.3f,\n", counter_ns);
  std::printf("  \"histogram_record_ns\": %.3f,\n", histogram_ns);
  std::printf("  \"metric_update_fold_ns\": %.1f\n", fold_ns);
  std::printf("}\n");
  return 0;
}
