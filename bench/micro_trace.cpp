// Micro benchmark for the span tracer — the numbers behind the <1% gate on
// disabled-tracing overhead (see docs/observability.md).
//
//   span_disabled_ns    cost of one TRACE_SPAN site with tracing off: a
//                       relaxed atomic load and a branch. This is what every
//                       instrumented hot path pays in production.
//   span_enabled_ns     cost of one recorded span: two clock reads plus the
//                       ring push (two value stores and a release publish).
//   drain_spans_per_s   consumer throughput of Tracer::drain — how fast the
//                       coordinator can pull a fleet's buffered spans off
//                       the rings.
//
// Standalone driver (not google-benchmark): the output merges into
// BENCH_cluster.json via scripts/bench_report.sh, which needs plain JSON.

#include <chrono>
#include <cstdio>
#include <vector>

#include "trace/tracer.hpp"

using Clock = std::chrono::steady_clock;
using fs2::trace::SpanEvent;
using fs2::trace::Tracer;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// ns per TRACE_SPAN site with tracing disabled. The loop body is exactly
/// one instrumented scope; the atomic load inside ScopedSpan's constructor
/// keeps the compiler from deleting it.
double bench_disabled_ns(std::size_t iterations) {
  Tracer::set_enabled(false);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    TRACE_SPAN("bench.disabled");
  }
  return seconds_since(t0) * 1e9 / static_cast<double>(iterations);
}

/// ns per recorded span, draining the ring before it can overflow so every
/// iteration takes the full record path (a dropped span skips the stores).
double bench_enabled_ns(std::size_t iterations) {
  Tracer::reset();
  Tracer::set_enabled(true);
  std::vector<SpanEvent> sink;
  sink.reserve(Tracer::kRingCapacity);
  const std::size_t drain_every = Tracer::kRingCapacity / 2;
  double drain_s = 0.0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    TRACE_SPAN("bench.enabled");
    if (i % drain_every == drain_every - 1) {
      const auto d0 = Clock::now();
      sink.clear();
      Tracer::drain(sink);
      drain_s += seconds_since(d0);
    }
  }
  const double total_s = seconds_since(t0);
  Tracer::set_enabled(false);
  if (Tracer::dropped() > 0)
    std::fprintf(stderr, "micro_trace: enabled bench overflowed the ring!\n");
  Tracer::reset();
  return (total_s - drain_s) * 1e9 / static_cast<double>(iterations);
}

/// Spans/sec through Tracer::drain with full rings — the off-hot-path
/// consumer the coordinator runs at end of campaign.
double bench_drain_rate(std::size_t rounds) {
  Tracer::reset();
  Tracer::set_enabled(true);
  std::vector<SpanEvent> sink;
  sink.reserve(Tracer::kRingCapacity);
  std::size_t drained = 0;
  double drain_s = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < Tracer::kRingCapacity; ++i)
      Tracer::record("bench.drain", 1.0, 2.0);
    const auto t0 = Clock::now();
    sink.clear();
    drained += Tracer::drain(sink);
    drain_s += seconds_since(t0);
  }
  Tracer::set_enabled(false);
  Tracer::reset();
  return static_cast<double>(drained) / drain_s;
}

}  // namespace

int main() {
  constexpr std::size_t kIterations = 20'000'000;
  // Warm up once so the thread ring exists before anything is timed.
  { TRACE_SPAN("bench.warmup"); }

  const double disabled_ns = bench_disabled_ns(kIterations);
  const double enabled_ns = bench_enabled_ns(kIterations / 10);
  const double drain_rate = bench_drain_rate(/*rounds=*/64);

  std::printf("{\n");
  std::printf("  \"span_disabled_ns\": %.3f,\n", disabled_ns);
  std::printf("  \"span_enabled_ns\": %.2f,\n", enabled_ns);
  std::printf("  \"drain_spans_per_s\": %.0f\n", drain_rate);
  std::printf("}\n");
  return 0;
}
