// Section III-D: data-dependent FMA power and the v1.7.4 infinity bug.
//
// Paper: running without memory references at nominal frequency on the
// Table II system, version 2.0 (safe operands) draws 314.1 W while 1.7.4
// (registers accumulate to +-inf, FMA clock-gates on trivial operands,
// Hickmann patent US 9,323,500) draws only 305.6 W.
//
// Two parts: (1) the power comparison on the simulated testbed, and
// (2) a live demonstration on the host CPU that the buggy operand
// initialization really does drive the JIT kernel's registers to infinity
// while the safe one keeps them bounded.

#include <cmath>
#include <cstdio>

#include "arch/cpuid.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"

using namespace fs2;

int main() {
  std::printf("=== Sec. III-D: operand-dependent power (v1.7.4 infinity bug) ===\n\n");

  // Part 1: simulated Table II system at nominal frequency, REG-only.
  const sim::Simulator simulator(sim::MachineConfig::zen2_epyc7502_2s());
  const auto caches = arch::CacheHierarchy::zen2();
  const auto& mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;
  const auto stats =
      payload::analyze_payload(mix, payload::InstructionGroups::parse("REG:1"), caches);

  sim::RunConditions safe;
  safe.freq_mhz = 2500;
  sim::RunConditions buggy = safe;
  buggy.policy = payload::DataInitPolicy::kV174InfinityBug;

  const double p_safe = simulator.run(stats, safe).power_w;
  const double p_bug = simulator.run(stats, buggy).power_w;
  std::printf("power without memory references at nominal 2500 MHz:\n");
  std::printf("  v2.0   (safe operands):        %6.1f W   (paper: 314.1 W)\n", p_safe);
  std::printf("  v1.7.4 (operands reach +inf):  %6.1f W   (paper: 305.6 W)\n", p_bug);
  std::printf("  delta:                         %6.1f W   (paper:   8.5 W)\n\n", p_safe - p_bug);

  // Part 2: live register check on this host.
  if (!arch::host_identity().features.covers(mix.required)) {
    std::printf("host lacks AVX2+FMA; skipping the live register demonstration\n");
    return 0;
  }
  payload::CompileOptions options;
  options.unroll = 64;
  options.ram_region_bytes = 1 << 20;
  options.dump_registers = true;
  auto payload = payload::compile_payload(mix, payload::InstructionGroups::parse("REG:1"),
                                          caches, options);
  auto check = [&](payload::DataInitPolicy policy) {
    auto buffer = payload.make_buffer();
    buffer->init(policy, 42);
    payload.fn()(&buffer->args(), 20000);
    int finite = 0, infinite = 0;
    for (int reg = 0; reg < 11; ++reg)
      for (int lane = 0; lane < 4; ++lane) {
        const double v = buffer->dump()[reg * 8 + lane];
        if (std::isinf(v)) ++infinite;
        else if (std::isfinite(v)) ++finite;
      }
    return std::make_pair(finite, infinite);
  };
  const auto [safe_finite, safe_inf] = check(payload::DataInitPolicy::kSafe);
  const auto [bug_finite, bug_inf] = check(payload::DataInitPolicy::kV174InfinityBug);
  std::printf("live JIT kernel on %s, 20000 iterations x 64 sets:\n",
              arch::host_identity().brand.c_str());
  std::printf("  safe init:  %2d/44 accumulator lanes finite, %2d at +-inf\n", safe_finite,
              safe_inf);
  std::printf("  buggy init: %2d/44 accumulator lanes finite, %2d at +-inf\n", bug_finite,
              bug_inf);
  std::printf("  (paper: the bug makes register contents accumulate to +-inf)\n");
  return 0;
}
