// Table I: overview of stress tests for Linux. A qualitative comparison —
// reproduced from a data-driven registry so the claims stay greppable and
// the FIRESTARTER 2 row reflects what this codebase actually implements.

#include <iostream>

#include "util/table.hpp"

using namespace fs2;

namespace {

struct ToolRow {
  const char* name;
  const char* workload;
  const char* processor;
  const char* memory;
  const char* gpu;
  const char* network;
  const char* error_check;
  const char* new_algorithms;
  const char* compiler_independent;
};

constexpr ToolRow kTools[] = {
    {"FIRESTARTER 1", "artificial workloads", "yes", "yes", "yes", "no", "no",
     "yes (template)", "yes"},
    {"Prime95", "Mersenne prime hunting", "yes", "yes", "no", "no", "yes", "no", "yes"},
    {"Linpack", "linear algebra", "yes", "yes", "no", "via MPI (HPL)", "yes", "no",
     "library-dependent (BLAS/LAPACK)"},
    {"stress-ng", "various (e.g. search, sort)", "yes", "yes", "no", "no",
     "some workloads", "yes (source code)", "no"},
    {"eeMark", "artificial workloads", "yes", "yes", "no", "yes",
     "no bit-flip check", "yes (template)", "no"},
    {"FIRESTARTER 2", "artificial workloads", "yes", "yes", "yes", "no", "no",
     "yes (runtime)", "yes"},
};

}  // namespace

int main() {
  std::cout << "=== Table I: overview of stress tests for Linux ===\n\n";
  Table table({"benchmark", "workload", "CPU", "memory", "GPU", "network", "error check",
               "define new algorithms", "compiler independent"});
  for (const ToolRow& tool : kTools)
    table.add_row({tool.name, tool.workload, tool.processor, tool.memory, tool.gpu,
                   tool.network, tool.error_check, tool.new_algorithms,
                   tool.compiler_independent});
  table.print(std::cout);
  std::cout << "\nkey difference of FIRESTARTER 2 (this repo): new workloads are defined at\n"
               "runtime (--run-instruction-groups / --set-line-count, JIT-compiled), not via\n"
               "build-time templates, and tuned automatically with NSGA-II (--optimize).\n";
  return 0;
}
