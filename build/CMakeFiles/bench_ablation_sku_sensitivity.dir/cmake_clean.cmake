file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sku_sensitivity.dir/bench/ablation_sku_sensitivity.cpp.o"
  "CMakeFiles/bench_ablation_sku_sensitivity.dir/bench/ablation_sku_sensitivity.cpp.o.d"
  "bench_ablation_sku_sensitivity"
  "bench_ablation_sku_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sku_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
