# Empty dependencies file for bench_ablation_sku_sensitivity.
# This may be replaced when dependencies are built.
