file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_power_cdf.dir/bench/fig01_power_cdf.cpp.o"
  "CMakeFiles/bench_fig01_power_cdf.dir/bench/fig01_power_cdf.cpp.o.d"
  "bench_fig01_power_cdf"
  "bench_fig01_power_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_power_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
