# Empty dependencies file for bench_fig01_power_cdf.
# This may be replaced when dependencies are built.
