file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cache_levels.dir/bench/fig02_cache_levels.cpp.o"
  "CMakeFiles/bench_fig02_cache_levels.dir/bench/fig02_cache_levels.cpp.o.d"
  "bench_fig02_cache_levels"
  "bench_fig02_cache_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cache_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
