# Empty dependencies file for bench_fig02_cache_levels.
# This may be replaced when dependencies are built.
