file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_07_tuning_timeline.dir/bench/fig06_07_tuning_timeline.cpp.o"
  "CMakeFiles/bench_fig06_07_tuning_timeline.dir/bench/fig06_07_tuning_timeline.cpp.o.d"
  "bench_fig06_07_tuning_timeline"
  "bench_fig06_07_tuning_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_07_tuning_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
