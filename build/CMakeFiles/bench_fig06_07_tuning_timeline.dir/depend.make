# Empty dependencies file for bench_fig06_07_tuning_timeline.
# This may be replaced when dependencies are built.
