file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_unroll_sweep.dir/bench/fig08_unroll_sweep.cpp.o"
  "CMakeFiles/bench_fig08_unroll_sweep.dir/bench/fig08_unroll_sweep.cpp.o.d"
  "bench_fig08_unroll_sweep"
  "bench_fig08_unroll_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_unroll_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
