# Empty dependencies file for bench_fig08_unroll_sweep.
# This may be replaced when dependencies are built.
