file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_memory_levels.dir/bench/fig09_memory_levels.cpp.o"
  "CMakeFiles/bench_fig09_memory_levels.dir/bench/fig09_memory_levels.cpp.o.d"
  "bench_fig09_memory_levels"
  "bench_fig09_memory_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_memory_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
