# Empty dependencies file for bench_fig09_memory_levels.
# This may be replaced when dependencies are built.
