file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_nsga2_scatter.dir/bench/fig11_nsga2_scatter.cpp.o"
  "CMakeFiles/bench_fig11_nsga2_scatter.dir/bench/fig11_nsga2_scatter.cpp.o.d"
  "bench_fig11_nsga2_scatter"
  "bench_fig11_nsga2_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_nsga2_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
