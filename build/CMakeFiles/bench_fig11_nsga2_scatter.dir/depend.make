# Empty dependencies file for bench_fig11_nsga2_scatter.
# This may be replaced when dependencies are built.
