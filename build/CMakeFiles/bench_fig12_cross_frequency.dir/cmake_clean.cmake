file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cross_frequency.dir/bench/fig12_cross_frequency.cpp.o"
  "CMakeFiles/bench_fig12_cross_frequency.dir/bench/fig12_cross_frequency.cpp.o.d"
  "bench_fig12_cross_frequency"
  "bench_fig12_cross_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cross_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
