# Empty dependencies file for bench_fig12_cross_frequency.
# This may be replaced when dependencies are built.
