file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_jit.dir/bench/micro_jit.cpp.o"
  "CMakeFiles/bench_micro_jit.dir/bench/micro_jit.cpp.o.d"
  "bench_micro_jit"
  "bench_micro_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
