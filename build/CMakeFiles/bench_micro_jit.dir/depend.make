# Empty dependencies file for bench_micro_jit.
# This may be replaced when dependencies are built.
