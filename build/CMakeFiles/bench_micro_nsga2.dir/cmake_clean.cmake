file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_nsga2.dir/bench/micro_nsga2.cpp.o"
  "CMakeFiles/bench_micro_nsga2.dir/bench/micro_nsga2.cpp.o.d"
  "bench_micro_nsga2"
  "bench_micro_nsga2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_nsga2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
