# Empty dependencies file for bench_micro_nsga2.
# This may be replaced when dependencies are built.
