file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_payload.dir/bench/micro_payload.cpp.o"
  "CMakeFiles/bench_micro_payload.dir/bench/micro_payload.cpp.o.d"
  "bench_micro_payload"
  "bench_micro_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
