# Empty dependencies file for bench_micro_payload.
# This may be replaced when dependencies are built.
