file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3d_infinity_bug.dir/bench/sec3d_infinity_bug.cpp.o"
  "CMakeFiles/bench_sec3d_infinity_bug.dir/bench/sec3d_infinity_bug.cpp.o.d"
  "bench_sec3d_infinity_bug"
  "bench_sec3d_infinity_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3d_infinity_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
