# Empty dependencies file for bench_sec3d_infinity_bug.
# This may be replaced when dependencies are built.
