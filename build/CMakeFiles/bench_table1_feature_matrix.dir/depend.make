# Empty dependencies file for bench_table1_feature_matrix.
# This may be replaced when dependencies are built.
