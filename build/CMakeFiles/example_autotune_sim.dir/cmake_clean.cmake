file(REMOVE_RECURSE
  "CMakeFiles/example_autotune_sim.dir/examples/autotune_sim.cpp.o"
  "CMakeFiles/example_autotune_sim.dir/examples/autotune_sim.cpp.o.d"
  "example_autotune_sim"
  "example_autotune_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autotune_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
