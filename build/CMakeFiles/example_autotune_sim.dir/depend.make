# Empty dependencies file for example_autotune_sim.
# This may be replaced when dependencies are built.
