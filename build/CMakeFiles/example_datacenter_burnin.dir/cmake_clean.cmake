file(REMOVE_RECURSE
  "CMakeFiles/example_datacenter_burnin.dir/examples/datacenter_burnin.cpp.o"
  "CMakeFiles/example_datacenter_burnin.dir/examples/datacenter_burnin.cpp.o.d"
  "example_datacenter_burnin"
  "example_datacenter_burnin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datacenter_burnin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
