# Empty dependencies file for example_datacenter_burnin.
# This may be replaced when dependencies are built.
