file(REMOVE_RECURSE
  "CMakeFiles/example_load_profiles.dir/examples/load_profiles.cpp.o"
  "CMakeFiles/example_load_profiles.dir/examples/load_profiles.cpp.o.d"
  "example_load_profiles"
  "example_load_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_load_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
