# Empty dependencies file for example_load_profiles.
# This may be replaced when dependencies are built.
