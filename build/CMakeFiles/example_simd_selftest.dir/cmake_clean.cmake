file(REMOVE_RECURSE
  "CMakeFiles/example_simd_selftest.dir/examples/simd_selftest.cpp.o"
  "CMakeFiles/example_simd_selftest.dir/examples/simd_selftest.cpp.o.d"
  "example_simd_selftest"
  "example_simd_selftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_simd_selftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
