# Empty dependencies file for example_simd_selftest.
# This may be replaced when dependencies are built.
