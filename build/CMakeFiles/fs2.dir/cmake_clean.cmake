file(REMOVE_RECURSE
  "CMakeFiles/fs2.dir/src/firestarter/main.cpp.o"
  "CMakeFiles/fs2.dir/src/firestarter/main.cpp.o.d"
  "fs2"
  "fs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
