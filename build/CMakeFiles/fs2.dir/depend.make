# Empty dependencies file for fs2.
# This may be replaced when dependencies are built.
