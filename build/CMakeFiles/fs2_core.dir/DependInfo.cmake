
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cache.cpp" "CMakeFiles/fs2_core.dir/src/arch/cache.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/arch/cache.cpp.o.d"
  "/root/repo/src/arch/cpuid.cpp" "CMakeFiles/fs2_core.dir/src/arch/cpuid.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/arch/cpuid.cpp.o.d"
  "/root/repo/src/arch/processor.cpp" "CMakeFiles/fs2_core.dir/src/arch/processor.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/arch/processor.cpp.o.d"
  "/root/repo/src/arch/topology.cpp" "CMakeFiles/fs2_core.dir/src/arch/topology.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/arch/topology.cpp.o.d"
  "/root/repo/src/baselines/linpack.cpp" "CMakeFiles/fs2_core.dir/src/baselines/linpack.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/baselines/linpack.cpp.o.d"
  "/root/repo/src/baselines/prime.cpp" "CMakeFiles/fs2_core.dir/src/baselines/prime.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/baselines/prime.cpp.o.d"
  "/root/repo/src/baselines/stressng.cpp" "CMakeFiles/fs2_core.dir/src/baselines/stressng.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/baselines/stressng.cpp.o.d"
  "/root/repo/src/firestarter/backends.cpp" "CMakeFiles/fs2_core.dir/src/firestarter/backends.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/firestarter/backends.cpp.o.d"
  "/root/repo/src/firestarter/config.cpp" "CMakeFiles/fs2_core.dir/src/firestarter/config.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/firestarter/config.cpp.o.d"
  "/root/repo/src/firestarter/firestarter.cpp" "CMakeFiles/fs2_core.dir/src/firestarter/firestarter.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/firestarter/firestarter.cpp.o.d"
  "/root/repo/src/gpu/dgemm_stress.cpp" "CMakeFiles/fs2_core.dir/src/gpu/dgemm_stress.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/gpu/dgemm_stress.cpp.o.d"
  "/root/repo/src/jit/assembler.cpp" "CMakeFiles/fs2_core.dir/src/jit/assembler.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/jit/assembler.cpp.o.d"
  "/root/repo/src/jit/disassembler.cpp" "CMakeFiles/fs2_core.dir/src/jit/disassembler.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/jit/disassembler.cpp.o.d"
  "/root/repo/src/jit/exec_memory.cpp" "CMakeFiles/fs2_core.dir/src/jit/exec_memory.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/jit/exec_memory.cpp.o.d"
  "/root/repo/src/kernel/register_dump.cpp" "CMakeFiles/fs2_core.dir/src/kernel/register_dump.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/kernel/register_dump.cpp.o.d"
  "/root/repo/src/kernel/selftest.cpp" "CMakeFiles/fs2_core.dir/src/kernel/selftest.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/kernel/selftest.cpp.o.d"
  "/root/repo/src/kernel/thread_manager.cpp" "CMakeFiles/fs2_core.dir/src/kernel/thread_manager.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/kernel/thread_manager.cpp.o.d"
  "/root/repo/src/kernel/watchdog.cpp" "CMakeFiles/fs2_core.dir/src/kernel/watchdog.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/kernel/watchdog.cpp.o.d"
  "/root/repo/src/metrics/external.cpp" "CMakeFiles/fs2_core.dir/src/metrics/external.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/metrics/external.cpp.o.d"
  "/root/repo/src/metrics/hw_events.cpp" "CMakeFiles/fs2_core.dir/src/metrics/hw_events.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/metrics/hw_events.cpp.o.d"
  "/root/repo/src/metrics/ipc_estimate.cpp" "CMakeFiles/fs2_core.dir/src/metrics/ipc_estimate.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/metrics/ipc_estimate.cpp.o.d"
  "/root/repo/src/metrics/measurement.cpp" "CMakeFiles/fs2_core.dir/src/metrics/measurement.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/metrics/measurement.cpp.o.d"
  "/root/repo/src/metrics/perf_ipc.cpp" "CMakeFiles/fs2_core.dir/src/metrics/perf_ipc.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/metrics/perf_ipc.cpp.o.d"
  "/root/repo/src/metrics/rapl.cpp" "CMakeFiles/fs2_core.dir/src/metrics/rapl.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/metrics/rapl.cpp.o.d"
  "/root/repo/src/payload/access.cpp" "CMakeFiles/fs2_core.dir/src/payload/access.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/payload/access.cpp.o.d"
  "/root/repo/src/payload/compiler.cpp" "CMakeFiles/fs2_core.dir/src/payload/compiler.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/payload/compiler.cpp.o.d"
  "/root/repo/src/payload/data.cpp" "CMakeFiles/fs2_core.dir/src/payload/data.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/payload/data.cpp.o.d"
  "/root/repo/src/payload/groups.cpp" "CMakeFiles/fs2_core.dir/src/payload/groups.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/payload/groups.cpp.o.d"
  "/root/repo/src/payload/mix.cpp" "CMakeFiles/fs2_core.dir/src/payload/mix.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/payload/mix.cpp.o.d"
  "/root/repo/src/payload/sequence.cpp" "CMakeFiles/fs2_core.dir/src/payload/sequence.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/payload/sequence.cpp.o.d"
  "/root/repo/src/sched/campaign.cpp" "CMakeFiles/fs2_core.dir/src/sched/campaign.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/sched/campaign.cpp.o.d"
  "/root/repo/src/sched/load_profile.cpp" "CMakeFiles/fs2_core.dir/src/sched/load_profile.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/sched/load_profile.cpp.o.d"
  "/root/repo/src/sched/phase_clock.cpp" "CMakeFiles/fs2_core.dir/src/sched/phase_clock.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/sched/phase_clock.cpp.o.d"
  "/root/repo/src/sim/machine_config.cpp" "CMakeFiles/fs2_core.dir/src/sim/machine_config.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/sim/machine_config.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/fs2_core.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/tuning/groups_problem.cpp" "CMakeFiles/fs2_core.dir/src/tuning/groups_problem.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/tuning/groups_problem.cpp.o.d"
  "/root/repo/src/tuning/history.cpp" "CMakeFiles/fs2_core.dir/src/tuning/history.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/tuning/history.cpp.o.d"
  "/root/repo/src/tuning/nsga2.cpp" "CMakeFiles/fs2_core.dir/src/tuning/nsga2.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/tuning/nsga2.cpp.o.d"
  "/root/repo/src/tuning/pareto.cpp" "CMakeFiles/fs2_core.dir/src/tuning/pareto.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/tuning/pareto.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/fs2_core.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/fs2_core.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/fs2_core.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/fs2_core.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/fs2_core.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/fs2_core.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
