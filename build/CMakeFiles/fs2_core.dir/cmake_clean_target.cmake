file(REMOVE_RECURSE
  "libfs2_core.a"
)
