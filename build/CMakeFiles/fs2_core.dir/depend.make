# Empty dependencies file for fs2_core.
# This may be replaced when dependencies are built.
