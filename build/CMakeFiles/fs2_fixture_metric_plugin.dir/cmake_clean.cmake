file(REMOVE_RECURSE
  "CMakeFiles/fs2_fixture_metric_plugin.dir/tests/fixture_metric_plugin.cpp.o"
  "CMakeFiles/fs2_fixture_metric_plugin.dir/tests/fixture_metric_plugin.cpp.o.d"
  "libfs2_fixture_metric_plugin.pdb"
  "libfs2_fixture_metric_plugin.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs2_fixture_metric_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
