# Empty dependencies file for fs2_fixture_metric_plugin.
# This may be replaced when dependencies are built.
