file(REMOVE_RECURSE
  "CMakeFiles/test_disassembler.dir/tests/test_disassembler.cpp.o"
  "CMakeFiles/test_disassembler.dir/tests/test_disassembler.cpp.o.d"
  "test_disassembler"
  "test_disassembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disassembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
