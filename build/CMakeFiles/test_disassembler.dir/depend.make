# Empty dependencies file for test_disassembler.
# This may be replaced when dependencies are built.
