file(REMOVE_RECURSE
  "CMakeFiles/test_firestarter.dir/tests/test_firestarter.cpp.o"
  "CMakeFiles/test_firestarter.dir/tests/test_firestarter.cpp.o.d"
  "test_firestarter"
  "test_firestarter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firestarter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
