# Empty dependencies file for test_firestarter.
# This may be replaced when dependencies are built.
