file(REMOVE_RECURSE
  "CMakeFiles/test_jit.dir/tests/test_jit.cpp.o"
  "CMakeFiles/test_jit.dir/tests/test_jit.cpp.o.d"
  "test_jit"
  "test_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
