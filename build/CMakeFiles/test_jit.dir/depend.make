# Empty dependencies file for test_jit.
# This may be replaced when dependencies are built.
