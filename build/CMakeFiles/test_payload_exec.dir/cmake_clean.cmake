file(REMOVE_RECURSE
  "CMakeFiles/test_payload_exec.dir/tests/test_payload_exec.cpp.o"
  "CMakeFiles/test_payload_exec.dir/tests/test_payload_exec.cpp.o.d"
  "test_payload_exec"
  "test_payload_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payload_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
