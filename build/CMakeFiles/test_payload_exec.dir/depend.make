# Empty dependencies file for test_payload_exec.
# This may be replaced when dependencies are built.
