// Autotuning walkthrough on the simulated Table II testbed (2x EPYC 7502):
// reproduces the Sec. IV-E workflow in a few seconds of wall time.
//
//   1. build a SimulatedSystem (the LMG95 + MetricQ stand-in),
//   2. wrap it in an evaluation backend (power + IPC objectives),
//   3. run NSGA-II over the instruction-group genome,
//   4. inspect the Pareto front and pick the operating point you care
//      about (max power for burn-in, max IPC x power for efficiency work).
//
// Run: ./build/examples/example_autotune_sim [freq_mhz]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "firestarter/backends.hpp"
#include "tuning/nsga2.hpp"
#include "tuning/pareto.hpp"

int main(int argc, char** argv) {
  using namespace fs2;

  const double freq = argc > 1 ? std::atof(argv[1]) : 1500.0;

  // 1. The system under test: fully simulated, so candidate evaluation is
  //    instantaneous and deterministic.
  sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
  std::printf("system under test: %s at %.0f MHz\n", system.simulator().config().name.c_str(),
              freq);

  // 2. Backend: 10 s (virtual) per candidate, objectives (power, IPC).
  sim::RunConditions cond;
  cond.freq_mhz = freq;
  firestarter::SimBackend backend(system, payload::find_function("FUNC_FMA_256_ZEN2").mix,
                                  arch::CacheHierarchy::zen2(), cond,
                                  /*candidate_duration_s=*/10.0, /*seed=*/2024);
  backend.preheat();

  // 3. Optimize with the paper's parameters.
  tuning::GroupsProblem problem(backend);
  tuning::Nsga2Config config;  // 40 individuals, 20 generations, m = 0.35
  config.seed = 2024;
  tuning::History history;
  tuning::Nsga2 optimizer(config);
  const auto population = optimizer.run(problem, &history);
  std::printf("evaluated %zu candidates\n", history.size());

  // 4. Walk the Pareto front.
  std::printf("\nPareto front (power-W, IPC, M):\n");
  std::vector<const tuning::Individual*> front;
  for (const auto& ind : population)
    if (ind.rank == 0) front.push_back(&ind);
  for (const auto* ind : front)
    std::printf("  %7.1f  %5.2f  %s\n", ind->objectives[0], ind->objectives[1],
                tuning::GroupsProblem::to_groups(ind->genome).to_string().c_str());

  const auto& burn_in = tuning::Nsga2::best_by_objective(population, 0);
  std::printf("\nburn-in choice (max power): %.1f W -- pass this M to fs2:\n",
              burn_in.objectives[0]);
  std::printf("  fs2 --simulate=zen2 --freq %.0f --run-instruction-groups=%s\n", freq,
              tuning::GroupsProblem::to_groups(burn_in.genome).to_string().c_str());
  return 0;
}
