// Data-center burn-in planning (the Fig. 1 / Fig. 2 use case): before
// accepting a rack of nodes, an operator wants to know the worst-case
// electrical load FIRESTARTER-class stress will put on the PDUs — and how
// far above the production distribution that worst case sits.
//
// This example sizes a 32-node Haswell rack:
//   1. worst-case per-node power for increasingly deep workloads,
//   2. rack-level draw with staggered vs synchronized stress starts,
//   3. comparison against a synthetic production power distribution.
//
// Run: ./build/examples/example_datacenter_burnin

#include <algorithm>
#include <cstdio>
#include <vector>

#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fs2;

  constexpr int kNodes = 32;
  const sim::Simulator node(sim::MachineConfig::haswell_e5_2680v3_2s(0));
  const auto caches = arch::CacheHierarchy::haswell_ep();
  const auto& mix = payload::find_function("FUNC_FMA_256_HASWELL").mix;

  std::printf("burn-in planning for %d x %s\n\n", kNodes, node.config().name.c_str());

  // 1. Worst-case node power per workload depth.
  struct Row {
    const char* label;
    const char* groups;
  };
  const Row rows[] = {
      {"idle", nullptr},
      {"compute only (REG)", "REG:1"},
      {"caches (L1+L2+L3)", "L3_LS:1,L2_LS:3,L1_LS:12,REG:6"},
      {"full stress (+mem)", "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12"},
  };
  double worst_node = 0.0;
  std::printf("%-24s %10s %10s\n", "workload", "node [W]", "rack [kW]");
  for (const Row& row : rows) {
    double watts;
    if (row.groups == nullptr) {
      watts = node.idle().power_w;
    } else {
      sim::RunConditions cond;
      cond.freq_mhz = 2000;
      watts = node.run(payload::analyze_payload(
                           mix, payload::InstructionGroups::parse(row.groups), caches),
                       cond)
                  .power_w;
    }
    worst_node = std::max(worst_node, watts);
    std::printf("%-24s %10.1f %10.2f\n", row.label, watts, watts * kNodes / 1000.0);
  }

  // 2. Synchronized vs staggered start: the thermal ramp means a
  //    synchronized fleet peaks together ~3 % above the staggered case's
  //    plateau crossing point. Model both with power traces.
  const auto stress = payload::analyze_payload(
      mix, payload::InstructionGroups::parse("RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12"), caches);
  sim::RunConditions cond;
  cond.freq_mhz = 2000;
  const auto point = node.run(stress, cond);
  std::vector<double> rack_sync(600, 0.0), rack_staggered(600, 0.0);
  for (int n = 0; n < kNodes; ++n) {
    const auto trace = node.power_trace(point, 600.0, 1.0, 77 + static_cast<unsigned>(n));
    const std::size_t offset = static_cast<std::size_t>(n) * 10;  // 10 s stagger
    for (std::size_t t = 0; t < trace.size(); ++t) {
      rack_sync[t] += trace[t];
      const std::size_t staggered_index = t + offset;
      if (staggered_index < rack_staggered.size()) rack_staggered[staggered_index] += trace[t];
    }
  }
  // Compare the steady tail (all nodes active in both scenarios).
  const std::vector<double> sync_tail(rack_sync.end() - 120, rack_sync.end());
  const std::vector<double> stag_tail(rack_staggered.end() - 120, rack_staggered.end());
  std::printf("\nrack draw, all %d nodes stressing (last 2 min of a 10 min burn-in):\n", kNodes);
  std::printf("  synchronized start: %7.2f kW peak\n", stats::max(sync_tail) / 1000.0);
  std::printf("  staggered start:    %7.2f kW peak\n", stats::max(stag_tail) / 1000.0);

  // 3. Headroom over production: a production-like mixture of node states.
  Xoshiro256 rng(4242);
  std::vector<double> production;
  const double idle_w = node.idle().power_w;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    double base;
    if (u < 0.45) base = idle_w;
    else if (u < 0.75) base = idle_w * 1.8;
    else base = point.power_w * rng.uniform(0.55, 0.92);
    production.push_back(base * (1.0 + 0.03 * rng.normal()));
  }
  const double p99 = stats::percentile(production, 99.0);
  std::printf("\nproduction p99 node power: %.1f W; burn-in worst case: %.1f W (%.0f%% above)\n",
              p99, worst_node, (worst_node / p99 - 1.0) * 100.0);
  std::printf("=> provision PDUs for the burn-in case, not the production distribution\n"
              "   (the Fig. 1 lesson: production never reaches the stress-test envelope).\n");
  return 0;
}
