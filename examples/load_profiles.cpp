// Tour of the load-profile scheduler: build every profile kind from its CLI
// spec, chart the resulting load(t) shapes, and parse a campaign — all
// without touching the JIT or the host CPU, so this runs anywhere.
//
// Build: cmake --build build --target example_load_profiles
// Run:   ./build/example_load_profiles

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "sched/campaign.hpp"
#include "sched/load_profile.hpp"
#include "sched/phase_clock.hpp"

int main() {
  using namespace fs2;

  // 1. One of each profile kind, straight from --load-profile spec strings.
  const std::vector<std::string> specs = {
      "constant:60",
      "square:low=10,high=90,period=8",
      "sine:low=0,high=100,period=16",
      "ramp:from=0,to=100,duration=24",
      "bursts:base=20,peak=100,window=2,prob=30,seed=7",
  };

  constexpr double kHorizonS = 32.0;
  constexpr int kColumns = 64;
  for (const std::string& spec : specs) {
    const sched::ProfilePtr profile =
        sched::parse_profile(spec, /*default_load=*/1.0, /*default_period_s=*/0.1);
    std::printf("%-52s |", profile->describe().c_str());
    for (int column = 0; column < kColumns; ++column) {
      const double t = kHorizonS * column / kColumns;
      static const char* kShades[] = {" ", ".", ":", "-", "=", "#"};
      const int shade = static_cast<int>(profile->load_at(t) * 5.0 + 0.5);
      std::fputs(kShades[shade], stdout);
    }
    std::printf("|\n");
  }

  // 2. The shared phase clock: every worker quantizes the same elapsed time
  //    into the same modulation windows, so duty cycles stay in lockstep.
  const double period_s = 0.1;
  std::printf("\nmodulation windows (period %.0f ms): t=0.234 s -> window %lld, start %.1f s\n",
              period_s * 1e3,
              static_cast<long long>(sched::PhaseClock::window_index(0.234, period_s)),
              sched::PhaseClock::window_start(0.234, period_s));

  // 3. A campaign is just an ordered list of (name, duration, profile,
  //    function) phases; fs2 --campaign runs them in one process.
  std::istringstream campaign_text(
      "phase name=warmup duration=10 profile=constant:30\n"
      "phase name=swing  duration=20 profile=sine:low=10,high=90,period=5\n"
      "phase name=peak   duration=10 profile=square:low=0,high=100,period=2\n");
  const sched::Campaign campaign = sched::Campaign::parse(campaign_text, "<inline>");
  std::printf("\ncampaign: %zu phases, %.0f s total\n", campaign.size(),
              campaign.total_duration_s());
  for (const sched::CampaignPhase& phase : campaign.phases()) {
    const sched::ProfilePtr profile = sched::parse_profile(phase.profile_spec, 1.0, 0.1);
    std::printf("  %-8s %4.0f s  %s\n", phase.name.c_str(), phase.duration_s,
                profile->describe().c_str());
  }
  return 0;
}
