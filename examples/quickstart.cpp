// Quickstart: the smallest end-to-end use of the fs2 public API on the
// machine you are sitting at.
//
//   1. detect the host CPU and pick the matching instruction mix,
//   2. JIT-compile the stress workload (instruction set I, unroll u,
//      memory accesses M),
//   3. run it on a few worker threads for two seconds,
//   4. report loop throughput and the estimated IPC.
//
// Build: cmake --build build --target example_quickstart
// Run:   ./build/examples/example_quickstart

#include <chrono>
#include <cstdio>
#include <thread>

#include "arch/processor.hpp"
#include "arch/topology.hpp"
#include "kernel/thread_manager.hpp"
#include "metrics/ipc_estimate.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"

int main() {
  using namespace fs2;

  // 1. Who are we running on?
  const arch::ProcessorModel cpu = arch::detect_host();
  std::printf("host: %s\n", cpu.describe().c_str());

  const payload::FunctionDef& fn = payload::select_function(cpu);
  std::printf("selected stress function: %s (%s)\n", fn.name.c_str(),
              fn.mix.description.c_str());

  // 2. Compile omega = (I, u, M). M comes from the function's tuned default;
  //    pass your own InstructionGroups to experiment (see --avail).
  const auto caches = arch::CacheHierarchy::from_sysfs();
  const auto groups = payload::InstructionGroups::parse(fn.default_groups);
  const auto workload = payload::compile_payload(fn.mix, groups, caches);
  std::printf("compiled: u=%u, %u B loop, %u instructions/iteration\n",
              workload.stats().unroll, workload.stats().loop_bytes,
              workload.stats().instructions_per_iteration);

  // 3. Stress four logical CPUs for two seconds.
  const arch::Topology topology = arch::Topology::from_sysfs();
  kernel::RunOptions options;
  options.cpus = topology.worker_cpus(/*one_per_core=*/false);
  if (options.cpus.size() > 4) options.cpus.resize(4);
  kernel::ThreadManager manager(workload, options);

  metrics::IpcEstimateMetric ipc([&manager] { return manager.total_iterations(); },
                                 workload.stats().instructions_per_iteration,
                                 /*assumed_mhz=*/2000.0,
                                 static_cast<int>(options.cpus.size()));
  manager.start();
  ipc.begin();
  std::this_thread::sleep_for(std::chrono::seconds(2));
  const double estimated_ipc = ipc.sample();
  manager.stop();

  // 4. Report.
  std::printf("executed %llu loop iterations on %zu workers in 2 s\n",
              static_cast<unsigned long long>(manager.total_iterations()),
              manager.num_workers());
  std::printf("estimated IPC (at an assumed 2000 MHz): %.2f per core\n", estimated_ipc);
  std::printf("\nnext steps: ./build/src/firestarter/fs2 --help\n");
  return 0;
}
