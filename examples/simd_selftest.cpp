// SIMD self-test via register dumps (Sec. III-D): "the possibility to flush
// register contents in regular intervals to a file ... enables users to
// check whether their SIMD units still work correctly when processors are
// used out of their regular specifications (e.g., in overclocked
// environments)".
//
// The check: two runs with identical seeds must produce bit-identical
// accumulator registers. Any divergence means an execution unit computed a
// different result — on an overclocked machine, a failed self-test is the
// signal to back off. We also show the sanity screen for non-finite or
// denormal values (the v1.7.4 failure mode).
//
// Run: ./build/examples/example_simd_selftest

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "arch/cpuid.hpp"
#include "kernel/register_dump.hpp"
#include "kernel/thread_manager.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"

int main() {
  using namespace fs2;

  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  if (!arch::host_identity().features.covers(fn.mix.required)) {
    std::printf("host lacks AVX2+FMA; the FMA self-test needs them\n");
    return 0;
  }

  payload::CompileOptions options;
  options.unroll = 256;
  options.ram_region_bytes = 1 << 20;
  options.dump_registers = true;
  const auto workload =
      payload::compile_payload(fn.mix, payload::InstructionGroups::parse("REG:4,L1_LS:2"),
                               arch::CacheHierarchy::from_sysfs(), options);

  // One deterministic burst: a fixed iteration count, not wall time, so the
  // register contents are a pure function of the seed.
  auto burst = [&](std::uint64_t seed) {
    auto buffer = workload.make_buffer();
    buffer->init(payload::DataInitPolicy::kSafe, seed);
    workload.fn()(&buffer->args(), 2'000'000);
    kernel::RegisterSnapshot snapshot;
    snapshot.values.emplace_back(buffer->dump(), buffer->dump() + 11 * 4);
    return snapshot;
  };

  std::printf("running two 2M-iteration bursts with identical seeds...\n");
  const auto first = burst(1234);
  const auto second = burst(1234);

  const auto diverging = kernel::diverging_values(first, second);
  if (diverging.empty()) {
    std::printf("PASS: all 44 accumulator lanes bit-identical across runs\n");
  } else {
    std::printf("FAIL: %zu lanes diverged -- the SIMD units are not computing "
                "reproducibly (back off the overclock!)\n",
                diverging.size());
  }

  if (kernel::has_invalid_values(first)) {
    std::printf("FAIL: non-finite or denormal register values detected\n");
  } else {
    std::printf("PASS: all register values finite and normal\n");
  }

  // Show what a dump looks like (first worker, first registers).
  std::printf("\nregister dump excerpt:\n");
  kernel::write_dump(std::cout, first);
  return 0;
}
