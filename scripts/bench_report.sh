#!/usr/bin/env bash
# Cluster data-plane perf trajectory: run bench_macro_cluster against the
# current tree, merge with the committed pre-PR baseline
# (scripts/bench_baseline_cluster.json), and emit BENCH_cluster.json at the
# repo root with per-metric speedups.
#
# The headline metric is coordinator_samples_per_s — samples/sec one
# coordinator ingests through the RemoteSink -> ClusterBus path — because
# coordinator capacity is what bounds fleet size. The committed numbers
# (baseline and current measured on the same machine) show the real ratio.
#
# The gate compares a fresh measurement against a baseline RECORDED ON A
# DIFFERENT MACHINE, so it is an absolute-throughput floor, not a true
# relative regression test: the default (1.0x = "at least match the
# pre-PR dev-machine baseline", ~11x headroom against the committed
# current number) only trips on order-of-magnitude regressions or
# pathologically slow runners. Developers benchmarking on the reference
# machine should export BENCH_MIN_SPEEDUP=5 or higher.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BENCH_BIN:-build/bench_macro_cluster}"
TRACE_BIN="${BENCH_TRACE_BIN:-build/bench_micro_trace}"
MAX_FLEET="${BENCH_MAX_FLEET:-512}"
MIN_SPEEDUP="${BENCH_MIN_SPEEDUP:-1.0}"
# Tracing compiled in but DISABLED must stay under this share of coordinator
# ingest wall time (the observability PR's acceptance gate).
MAX_TRACE_OVERHEAD_PCT="${BENCH_MAX_TRACE_OVERHEAD_PCT:-1.0}"
# Fault injection compiled in but DISARMED (no --chaos plan) must stay under
# this share of coordinator ingest wall time (the chaos PR's acceptance
# gate: production fleets pay for the wrapper on every send).
MAX_CHAOS_OVERHEAD_PCT="${BENCH_MAX_CHAOS_OVERHEAD_PCT:-1.0}"
# Live metrics plane gates: Histogram::record must stay within this multiple
# of Counter::add (it shares hot paths with counters), and shipping one
# kMetricUpdate per node per second at MAX_FLEET nodes must cost the
# coordinator less than this share of wall time.
MAX_HIST_COUNTER_RATIO="${BENCH_MAX_HIST_COUNTER_RATIO:-2.0}"
MAX_METRICS_OVERHEAD_PCT="${BENCH_MAX_METRICS_OVERHEAD_PCT:-1.0}"

if [[ ! -x "$BIN" ]]; then
  echo "bench_report: $BIN not built (cmake --build build --target bench_macro_cluster)" >&2
  exit 1
fi

current_json="$("$BIN" "$MAX_FLEET")"
trace_json="{}"
if [[ -x "$TRACE_BIN" ]]; then
  trace_json="$("$TRACE_BIN")"
else
  echo "bench_report: $TRACE_BIN not built; skipping tracer micro numbers" >&2
fi

CURRENT_JSON="$current_json" TRACE_JSON="$trace_json" MIN_SPEEDUP="$MIN_SPEEDUP" \
MAX_TRACE_OVERHEAD_PCT="$MAX_TRACE_OVERHEAD_PCT" MAX_FLEET="$MAX_FLEET" \
MAX_HIST_COUNTER_RATIO="$MAX_HIST_COUNTER_RATIO" \
MAX_METRICS_OVERHEAD_PCT="$MAX_METRICS_OVERHEAD_PCT" \
MAX_CHAOS_OVERHEAD_PCT="$MAX_CHAOS_OVERHEAD_PCT" python3 - <<'PYEOF'
import json, os, sys

current = json.loads(os.environ["CURRENT_JSON"])
micro_trace = json.loads(os.environ["TRACE_JSON"])
with open("scripts/bench_baseline_cluster.json") as f:
    baseline = json.load(f)

metrics = [
    "coordinator_samples_per_s",
    "data_plane_samples_per_s",
    "merged_samples_per_s",
    "transport_frames_per_s",
]
speedup = {
    m: round(current[m] / baseline[m], 2)
    for m in metrics
    if baseline.get(m)
}

report = {
    "benchmark": "bench/macro_cluster.cpp (see docs/performance.md for methodology)",
    "headline": ("coordinator_samples_per_s: samples/sec through the "
                 "RemoteSink -> ClusterBus path (the stream is produced by "
                 "the real RemoteSink data plane, then replayed so the "
                 "timed region measures the coordinator side, which is "
                 "what bounds fleet size); merged_samples_per_s is the "
                 "same pipeline with producer+consumer timed together on "
                 "one core, floored by the bit-identical P2/Welford "
                 "statistics kernel"),
    "workload": ("open-loop fleet campaign mix: 3 channels (wall power -> "
                 "cluster-power aggregate, IPC, load level) at 500 Sa/s, "
                 "8 phases x 120 s, campaign trim deltas 2.5 s / 1.0 s"),
    "baseline": baseline,
    "current": current,
    "speedup": speedup,
    "trace": {
        "methodology": ("tracing_disabled_overhead_pct prices the ingest "
                        "path's TRACE_SPAN sites (counted by running the "
                        "same workload traced) at the measured disabled-site "
                        "cost against the untraced wall clock; micro_trace "
                        "holds the per-op numbers from bench/micro_trace.cpp"),
        "micro_trace": micro_trace,
    },
}
for key in ("coordinator_traced_samples_per_s", "trace_disabled_site_ns",
            "ingest_trace_sites", "tracing_disabled_overhead_pct"):
    if key in current:
        report["trace"][key] = current[key]
report["chaos"] = {
    "methodology": ("chaos_disabled_overhead_pct prices the send-side "
                    "fault-injection check (one pointer load + branch, "
                    "taken once per frame) at its measured disabled-site "
                    "cost against the coordinator ingest wall clock; "
                    "chaos_quiet_frames_per_s is the transport with a "
                    "zero-rate LinkFaults injector ARMED — the empirical "
                    "ceiling on what --chaos costs when every fault rate "
                    "is zero"),
}
for key in ("chaos_disabled_site_ns", "ingest_chaos_sites",
            "chaos_disabled_overhead_pct", "chaos_quiet_frames_per_s"):
    if key in current:
        report["chaos"][key] = current[key]
with open("BENCH_cluster.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

headline = speedup.get("coordinator_samples_per_s", 0.0)
print(f"bench_report: coordinator ingest {current['coordinator_samples_per_s']:,.0f} "
      f"samples/s ({headline}x baseline); merged pipeline "
      f"{speedup.get('merged_samples_per_s', 0.0)}x; wrote BENCH_cluster.json")

minimum = float(os.environ["MIN_SPEEDUP"])
if headline < minimum:
    print(f"bench_report: coordinator speedup {headline}x below the {minimum}x gate",
          file=sys.stderr)
    sys.exit(1)

overhead = current.get("tracing_disabled_overhead_pct")
ceiling = float(os.environ["MAX_TRACE_OVERHEAD_PCT"])
if overhead is None:
    print("bench_report: macro bench emitted no tracing_disabled_overhead_pct",
          file=sys.stderr)
    sys.exit(1)
print(f"bench_report: disabled-tracing ingest overhead {overhead:.4f}% "
      f"(gate <{ceiling}%)")
if overhead >= ceiling:
    print(f"bench_report: disabled-tracing overhead {overhead:.4f}% breaches the "
          f"{ceiling}% gate", file=sys.stderr)
    sys.exit(1)

chaos_overhead = current.get("chaos_disabled_overhead_pct")
chaos_ceiling = float(os.environ["MAX_CHAOS_OVERHEAD_PCT"])
if chaos_overhead is None:
    print("bench_report: macro bench emitted no chaos_disabled_overhead_pct",
          file=sys.stderr)
    sys.exit(1)
print(f"bench_report: disarmed fault-injection ingest overhead "
      f"{chaos_overhead:.4f}% (gate <{chaos_ceiling}%)")
if chaos_overhead >= chaos_ceiling:
    print(f"bench_report: disarmed fault-injection overhead {chaos_overhead:.4f}% "
          f"breaches the {chaos_ceiling}% gate", file=sys.stderr)
    sys.exit(1)

# Metrics-plane gates (skipped when micro_trace wasn't built).
counter_ns = micro_trace.get("counter_add_ns")
hist_ns = micro_trace.get("histogram_record_ns")
fold_ns = micro_trace.get("metric_update_fold_ns")
if counter_ns and hist_ns:
    ratio = hist_ns / counter_ns
    ratio_gate = float(os.environ["MAX_HIST_COUNTER_RATIO"])
    print(f"bench_report: histogram record {hist_ns:.1f} ns = {ratio:.2f}x counter "
          f"add (gate <={ratio_gate}x)")
    if ratio > ratio_gate:
        print(f"bench_report: histogram record {ratio:.2f}x counter add breaches "
              f"the {ratio_gate}x gate", file=sys.stderr)
        sys.exit(1)
if fold_ns:
    fleet = int(os.environ["MAX_FLEET"])
    # One collect->encode->decode->fold cycle per node per 1 s shipping
    # interval, as a share of the coordinator's wall clock.
    ship_pct = fleet * fold_ns * 1e-9 * 100.0
    ship_gate = float(os.environ["MAX_METRICS_OVERHEAD_PCT"])
    report["trace"]["metrics_plane_ship_pct"] = round(ship_pct, 4)
    with open("BENCH_cluster.json", "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"bench_report: 1 s metric shipping at {fleet} nodes costs "
          f"{ship_pct:.4f}% of coordinator wall time (gate <{ship_gate}%)")
    if ship_pct >= ship_gate:
        print(f"bench_report: metric shipping {ship_pct:.4f}% breaches the "
              f"{ship_gate}% gate", file=sys.stderr)
        sys.exit(1)
PYEOF
