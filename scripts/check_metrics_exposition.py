#!/usr/bin/env python3
"""Validate a Prometheus plaintext exposition payload from the fs2
coordinator's /metrics endpoint (text format 0.0.4).

Reads the payload from stdin and checks:
  - every non-comment line parses as `name{labels} value`
  - every sample family has a matching `# TYPE` declaration
  - the fleet identity series are present (fs2_fleet_nodes,
    fs2_fleet_healthy, fs2_fleet_alerts_total)
  - at least one per-node gauge carries a {node="..."} label
  - at least one histogram summary exposes quantile series with _sum/_count

Usage: curl -s localhost:PORT/metrics | check_metrics_exposition.py [NODES]
With NODES given, fs2_fleet_nodes must equal it exactly.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|nan|inf|\+inf|-inf))$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>counter|gauge|summary)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def family(name: str) -> str:
    """Base family of a sample name (summaries expose name_sum/name_count)."""
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main() -> int:
    expected_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else None
    text = sys.stdin.read()
    if not text.strip():
        print("check_metrics_exposition: empty payload", file=sys.stderr)
        return 1

    types: dict[str, str] = {}
    samples: list[tuple[str, str, float]] = []  # (name, labels, value)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if line.startswith("# TYPE") and not m:
                print(f"line {lineno}: malformed TYPE line: {line!r}", file=sys.stderr)
                return 1
            if m:
                types[m.group("name")] = m.group("type")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            print(f"line {lineno}: unparseable sample: {line!r}", file=sys.stderr)
            return 1
        labels = m.group("labels") or ""
        if labels:
            for pair in labels[1:-1].split(","):
                if not LABEL_RE.match(pair):
                    print(f"line {lineno}: bad label {pair!r}", file=sys.stderr)
                    return 1
        samples.append((m.group("name"), labels, float(m.group("value"))))

    undeclared = sorted(
        {family(name) for name, _, _ in samples}
        - set(types)
    )
    if undeclared:
        print(f"samples without a TYPE declaration: {undeclared}", file=sys.stderr)
        return 1

    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))

    for required in ("fs2_fleet_nodes", "fs2_fleet_healthy", "fs2_fleet_alerts_total"):
        if required not in by_name:
            print(f"missing required series {required}", file=sys.stderr)
            return 1

    fleet_nodes = by_name["fs2_fleet_nodes"][0][1]
    if expected_nodes is not None and fleet_nodes != expected_nodes:
        print(
            f"fs2_fleet_nodes = {fleet_nodes:g}, expected {expected_nodes}",
            file=sys.stderr,
        )
        return 1

    node_labelled = [
        (name, labels)
        for name, labels, _ in samples
        if 'node="' in labels
    ]
    if not node_labelled:
        print("no per-node series with a node label", file=sys.stderr)
        return 1

    quantile_families = {
        family(name)
        for name, labels, _ in samples
        if 'quantile="' in labels
    }
    if not quantile_families:
        print("no histogram quantile series", file=sys.stderr)
        return 1
    for fam in quantile_families:
        if types.get(fam) != "summary":
            print(f"{fam} has quantiles but TYPE {types.get(fam)}", file=sys.stderr)
            return 1
        if f"{fam}_sum" not in by_name or f"{fam}_count" not in by_name:
            print(f"{fam} summary missing _sum/_count", file=sys.stderr)
            return 1

    print(
        f"exposition OK: {len(samples)} samples, {len(types)} families, "
        f"{int(fleet_nodes)} nodes, {len(quantile_families)} summaries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
