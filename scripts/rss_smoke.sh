#!/usr/bin/env bash
# Bounded-memory smoke: telemetry must be O(sinks + window), never
# O(run length). Runs the same deterministic simulated campaign at 1x and
# 10x duration with a high virtual-meter sampling rate and asserts that
# peak RSS stays flat (and under an absolute budget). Before the streaming
# telemetry refactor the 10x run grew by the retained sample series and
# this check fails.
#
# Usage: scripts/rss_smoke.sh [path-to-fs2]   (default ./build/fs2)
set -euo pipefail
cd "$(dirname "$0")/.."

FS2="${1:-./build/fs2}"

# Peak-RSS measurement: GNU time when present, else getrusage(CHILDREN)
# via python3 (ru_maxrss is the child's high-water mark in kB on Linux).
TIME_BIN="${TIME_BIN:-/usr/bin/time}"
have_gnu_time=0
if "$TIME_BIN" -v true > /dev/null 2>&1; then
  have_gnu_time=1
elif ! command -v python3 > /dev/null 2>&1; then
  echo "rss_smoke: neither GNU time nor python3 available; skipping" >&2
  exit 0
fi

# 60 s vs 600 s of virtual time at 500 Sa/s: 30k vs 300k samples per
# channel. The sine profile keeps the load channel busy too.
make_campaign() { # $1 = phase duration seconds
  local f
  f="$(mktemp)"
  cat > "$f" <<EOF
phase name=warm  duration=$1 profile=constant:60
phase name=swing duration=$1 profile=sine:low=10,high=90,period=5
phase name=hold  duration=$1 target=power=250W
EOF
  echo "$f"
}

peak_rss_kb() { # $1 = campaign file
  local args=(--simulate=zen2 --freq 1500 --campaign "$1" --sim-sample-hz 500
              --record-trace /dev/null --control-log /dev/null --log-level warn)
  if [ "$have_gnu_time" = 1 ]; then
    local log
    log="$(mktemp)"
    "$TIME_BIN" -v "$FS2" "${args[@]}" > /dev/null 2> "$log"
    awk '/Maximum resident set size/ {print $NF}' "$log"
    rm -f "$log"
  else
    FS2_BIN="$FS2" python3 - "${args[@]}" <<'PY'
import os, resource, subprocess, sys
subprocess.run([os.environ["FS2_BIN"], *sys.argv[1:]], check=True,
               stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
print(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
PY
  fi
}

short_campaign="$(make_campaign 20)"   # 3 x 20 s  = 60 s total
long_campaign="$(make_campaign 200)"   # 3 x 200 s = 600 s total (10x)
trap 'rm -f "$short_campaign" "$long_campaign"' EXIT

rss_short_kb="$(peak_rss_kb "$short_campaign")"
rss_long_kb="$(peak_rss_kb "$long_campaign")"
echo "rss_smoke: peak RSS ${rss_short_kb} kB (60 s) vs ${rss_long_kb} kB (600 s, 10x)"

# Flatness: the 10x run may exceed the 1x run by at most 8 MB of noise
# (allocator jitter), nowhere near the tens of MB retained series cost.
growth_kb=$((rss_long_kb - rss_short_kb))
if [ "$growth_kb" -gt 8192 ]; then
  echo "rss_smoke: FAIL — 10x duration grew peak RSS by ${growth_kb} kB (> 8192 kB)" >&2
  exit 1
fi

# Absolute budget: the whole process (payload compiler, simulator, telemetry)
# fits comfortably in 192 MB.
if [ "$rss_long_kb" -gt 196608 ]; then
  echo "rss_smoke: FAIL — peak RSS ${rss_long_kb} kB exceeds the 192 MB budget" >&2
  exit 1
fi

echo "rss_smoke: OK (growth ${growth_kb} kB)"
