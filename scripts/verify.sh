#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the test suite, then smoke-run
# the scheduler subsystem end to end on the simulated Zen 2 target.
# Mirrors .github/workflows/ci.yml so local runs and CI agree.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# Scheduler smoke: a dynamic profile and a three-phase campaign, both in
# virtual time (no host stress, safe on shared CI runners).
./build/fs2 --simulate=zen2 --freq 1500 -t 30 \
    --load-profile=sine:low=10,high=90,period=5 \
    --measurement --start-delta=2000 --stop-delta=1000

campaign="$(mktemp)"
trap 'rm -f "$campaign"' EXIT
cat > "$campaign" <<'EOF'
phase name=warmup duration=10 profile=constant:30
phase name=swing  duration=20 profile=sine:low=10,high=90,period=5
phase name=peak   duration=10 profile=square:low=0,high=100,period=2
EOF
./build/fs2 --simulate=zen2 --freq 1500 --campaign "$campaign"

# Closed-loop smoke: the setpoint-stepping campaign must converge on every
# phase, and the recorded duty-cycle trace must replay open-loop.
trace="$(mktemp)"
trap 'rm -f "$campaign" "$trace"' EXIT
./build/fs2 --simulate=zen2 --freq 1500 \
    --campaign examples/setpoint_steps.campaign \
    --require-convergence --record-trace "$trace"
./build/fs2 --simulate=zen2 --freq 1500 -t 30 --load-profile "trace:file=$trace"

# Cluster smoke: a coordinator plus two heterogeneous in-process sim agents
# over loopback TCP, holding a 500 W global budget — must converge on every
# phase, in lockstep, with the merged per-node + cluster-aggregate CSV.
# --trace-out exercises the fleet tracer end to end: agents ship spans, the
# coordinator rebases them through clock sync and writes trace_event JSON.
fleet_trace="$(mktemp)"
trap 'rm -f "$campaign" "$trace" "$fleet_trace"' EXIT
./build/fs2 --loopback zen2@1500,haswell@2000 \
    --campaign examples/cluster_acceptance.campaign \
    --target cluster-power=500W --require-convergence --log-level warn \
    --trace-out "$fleet_trace"
# The exported timeline must be valid JSON with one process per node plus
# the coordinator, and clock-rebased per-node phase spans.
FLEET_TRACE="$fleet_trace" python3 - <<'PYEOF'
import json, os
with open(os.environ["FLEET_TRACE"]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
names = {e["args"]["name"] for e in events if e.get("ph") == "M"}
assert {"coordinator", "n0-zen2", "n1-haswell"} <= names, names
spans = [e for e in events if e.get("ph") == "X"]
assert any(e["name"].startswith("phase:") for e in spans), "no phase spans"
assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in spans), "negative ts/dur"
print(f"fleet trace OK: {len(spans)} spans across {len(names)} processes")
PYEOF

# Live metrics plane: the same loopback fleet with the exposition endpoint
# pinned (--listen under --loopback), scraped over real HTTP mid-run. The
# epoch delay keeps the run alive long enough for the scrape; the checker
# validates the payload's exposition grammar, fleet rollups, per-node
# labels, and histogram summaries. --flight-out arms the crash recorder
# (empty after a clean run — it only dumps on alerts or abnormal exit).
metrics_port=7391
flight_dump="flight_dump.txt"
scrape="$(mktemp)"
trap 'rm -f "$campaign" "$trace" "$fleet_trace" "$scrape"' EXIT
timeout 60 ./build/fs2 --loopback zen2@1500,haswell@2000 \
    --campaign examples/cluster_acceptance.campaign \
    --target cluster-power=500W --require-convergence --log-level warn \
    --listen "$metrics_port" --metrics-interval 0.25 \
    --cluster-start-delay 4 --flight-out "$flight_dump" > /dev/null &
metrics_pid=$!
scraped=0
for _ in $(seq 1 100); do
  if curl -s --max-time 2 "http://127.0.0.1:$metrics_port/metrics" > "$scrape" \
      && grep -q 'fs2_node_up{node="n0-zen2"} 1' "$scrape"; then
    scraped=1
    break
  fi
  sleep 0.1
done
[ "$scraped" -eq 1 ] || { echo "verify: no mid-run /metrics scrape landed" >&2; exit 1; }
python3 scripts/check_metrics_exposition.py 2 < "$scrape"
curl -s --max-time 2 "http://127.0.0.1:$metrics_port/healthz" | grep -qx "ok" \
    || { echo "verify: /healthz did not answer ok" >&2; exit 1; }
wait "$metrics_pid"

# Fleet scale: 512 in-process agents on one event loop, global budget held
# on every phase, in lockstep — the whole run must stay inside CI's time
# budget (it takes a few seconds; the 60 s timeout is pure safety margin).
timeout 60 ./build/fs2 --loopback zen2@1500x256,haswell@2000x256 \
    --campaign examples/cluster_scale.campaign \
    --target cluster-power=96000W --require-convergence \
    --cluster-start-delay 2 --log-level warn > /dev/null

# Chaos smoke: the same fleet machinery under deterministic fault
# injection — 1% frame drop, 2 ms delay jitter, and one node crashed at
# the phase-1 barrier. The replacement must reconnect with backoff,
# rejoin mid-campaign, and contribute to the final phase; the run is
# still REQUIRED to converge on every phase. The seeded schedule makes a
# failure replayable bit-for-bit; the flight dump is kept on failure.
chaos_log="$(mktemp)"
trap 'rm -f "$campaign" "$trace" "$fleet_trace" "$scrape" "$chaos_log"' EXIT
if ! timeout 120 ./build/fs2 --loopback zen2@1500x64 \
    --campaign examples/cluster_chaos.campaign \
    --target cluster-power=16000W --require-convergence \
    --chaos "seed=7,drop=1%,delay=2ms,kill=node5@phase1" \
    --flight-out chaos_flight_dump.txt --log-level warn > "$chaos_log"; then
  echo "verify: chaos smoke failed — log follows (flight dump in chaos_flight_dump.txt)" >&2
  cat "$chaos_log" >&2
  exit 1
fi
grep -q "REJOINED at phase" "$chaos_log" \
    || { echo "verify: chaos smoke converged but no rejoin happened" >&2; exit 1; }
grep -q "'cool': start spread.*across 64 nodes" "$chaos_log" \
    || { echo "verify: rejoined node missing from the final phase" >&2; exit 1; }

# Fuzz smoke: a deterministic seeded discovery sweep over a small loopback
# fleet must produce a non-empty ranked corpus (non-zero exit otherwise)
# and a report whose spec column round-trips through the campaign grammar.
fuzz_report="$(mktemp)"
trap 'rm -f "$campaign" "$trace" "$fleet_trace" "$fuzz_report"' EXIT
./build/fs2 --fuzz --loopback zen2@2000x4 \
    --fuzz-population 8 --fuzz-generations 1 --fuzz-seed 7 \
    --fuzz-duration 3 --cluster-start-delay 0.1 \
    --fuzz-report "$fuzz_report" --log-level warn | grep -q "ranked corpus"
head -1 "$fuzz_report" | grep -q "spec" || { echo "fuzz report missing header" >&2; exit 1; }
[ "$(wc -l < "$fuzz_report")" -gt 1 ] || { echo "fuzz report has no rows" >&2; exit 1; }
# The discovered-pattern replay campaign must parse and run end to end.
./build/fs2 --simulate=zen2 --freq 2000 \
    --campaign examples/fuzz_discovery.campaign > /dev/null

# Perf trajectory: regenerate BENCH_cluster.json against the committed
# pre-PR baseline and gate on the coordinator-ingest speedup.
./scripts/bench_report.sh

echo "verify: OK"
