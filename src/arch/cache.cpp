#include "arch/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::arch {

const char* to_string(CacheType type) {
  switch (type) {
    case CacheType::kData: return "Data";
    case CacheType::kInstruction: return "Instruction";
    case CacheType::kUnified: return "Unified";
  }
  return "?";
}

namespace {

std::string read_line(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}

/// Parse sysfs cache sizes like "32K", "512K", "16384K", "16M".
std::size_t parse_size(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t multiplier = 1;
  std::string digits = text;
  switch (text.back()) {
    case 'K': multiplier = 1024; digits.pop_back(); break;
    case 'M': multiplier = 1024 * 1024; digits.pop_back(); break;
    case 'G': multiplier = 1024ull * 1024 * 1024; digits.pop_back(); break;
    default: break;
  }
  try {
    return static_cast<std::size_t>(std::stoull(digits)) * multiplier;
  } catch (...) {
    return 0;
  }
}

/// Count CPUs in a shared_cpu_list like "0,64" or "0-3,64-67".
int parse_cpu_list_count(const std::string& text) {
  if (text.empty()) return 1;
  int count = 0;
  for (const auto& part : fs2::strings::split(text, ',')) {
    const auto dash = part.find('-');
    if (dash == std::string::npos) {
      ++count;
    } else {
      try {
        count += std::stoi(part.substr(dash + 1)) - std::stoi(part.substr(0, dash)) + 1;
      } catch (...) {
        ++count;
      }
    }
  }
  return std::max(count, 1);
}

}  // namespace

CacheHierarchy CacheHierarchy::from_sysfs(int cpu, const std::string& sysfs_root) {
  namespace fs = std::filesystem;
  CacheHierarchy hierarchy;
  const fs::path base = fs::path(sysfs_root) / "devices" / "system" / "cpu" /
                        ("cpu" + std::to_string(cpu)) / "cache";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(base, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, 5, "index") != 0) continue;
    CacheLevel level;
    try {
      level.level = std::stoi(read_line(entry.path() / "level"));
    } catch (...) {
      continue;
    }
    const std::string type = read_line(entry.path() / "type");
    if (type == "Data") level.type = CacheType::kData;
    else if (type == "Instruction") level.type = CacheType::kInstruction;
    else level.type = CacheType::kUnified;
    level.size_bytes = parse_size(read_line(entry.path() / "size"));
    const std::string line = read_line(entry.path() / "coherency_line_size");
    if (!line.empty()) level.line_bytes = parse_size(line);
    level.sharing = parse_cpu_list_count(read_line(entry.path() / "shared_cpu_list"));
    hierarchy.levels_.push_back(level);
  }
  if (hierarchy.levels_.empty()) {
    log::warn() << "no sysfs cache info for cpu" << cpu << "; assuming Zen 2 hierarchy";
    return zen2();
  }
  std::sort(hierarchy.levels_.begin(), hierarchy.levels_.end(),
            [](const CacheLevel& a, const CacheLevel& b) { return a.level < b.level; });
  return hierarchy;
}

CacheHierarchy CacheHierarchy::zen2() {
  CacheHierarchy h;
  h.add({1, CacheType::kInstruction, 32 * 1024, 64, 2});
  h.add({1, CacheType::kData, 32 * 1024, 64, 2});
  h.add({2, CacheType::kUnified, 512 * 1024, 64, 2});
  h.add({3, CacheType::kUnified, 16 * 1024 * 1024, 64, 8});  // per CCX (4 cores x SMT2)
  return h;
}

CacheHierarchy CacheHierarchy::haswell_ep() {
  CacheHierarchy h;
  h.add({1, CacheType::kInstruction, 32 * 1024, 64, 2});
  h.add({1, CacheType::kData, 32 * 1024, 64, 2});
  h.add({2, CacheType::kUnified, 256 * 1024, 64, 2});
  h.add({3, CacheType::kUnified, 30 * 1024 * 1024, 64, 24});  // 12 cores x SMT2
  return h;
}

std::size_t CacheHierarchy::data_cache_size(int level) const {
  for (const auto& c : levels_)
    if (c.level == level && c.type != CacheType::kInstruction) return c.size_bytes;
  return 0;
}

std::size_t CacheHierarchy::l1i_size() const {
  for (const auto& c : levels_)
    if (c.level == 1 && c.type != CacheType::kData) return c.size_bytes;
  return 0;
}

}  // namespace fs2::arch
