#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fs2::arch {

enum class CacheType { kData, kInstruction, kUnified };

const char* to_string(CacheType type);

/// One cache level as seen by one core.
struct CacheLevel {
  int level = 0;                  ///< 1, 2, 3
  CacheType type = CacheType::kUnified;
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 64;
  int sharing = 1;                ///< logical CPUs sharing this cache
};

/// Per-core cache hierarchy. The payload compiler sizes its load/store
/// buffers from this (e.g. L1 buffer = 2/3 of L1-D as in FIRESTARTER).
class CacheHierarchy {
 public:
  static CacheHierarchy from_sysfs(int cpu = 0, const std::string& sysfs_root = "/sys");

  /// The Table II hierarchy: 32 KiB L1-I + 32 KiB L1-D, 512 KiB L2,
  /// 16 MiB L3 shared by 4 cores (one CCX).
  static CacheHierarchy zen2();

  /// The Fig. 2 hierarchy: 32 KiB L1, 256 KiB L2, 30 MiB L3 shared by 12.
  static CacheHierarchy haswell_ep();

  const std::vector<CacheLevel>& levels() const { return levels_; }

  /// Size of the data cache at `level` (1-3); 0 if the level is absent.
  std::size_t data_cache_size(int level) const;

  /// Size of the instruction cache feeding the front-end (L1-I).
  std::size_t l1i_size() const;

  void add(CacheLevel level) { levels_.push_back(level); }

 private:
  std::vector<CacheLevel> levels_;
};

}  // namespace fs2::arch
