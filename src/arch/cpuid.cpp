#include "arch/cpuid.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace fs2::arch {

CpuidRegs cpuid(std::uint32_t leaf, std::uint32_t subleaf) {
  CpuidRegs regs;
#if defined(__x86_64__) || defined(__i386__)
  __cpuid_count(leaf, subleaf, regs.eax, regs.ebx, regs.ecx, regs.edx);
#else
  (void)leaf;
  (void)subleaf;
#endif
  return regs;
}

std::string FeatureSet::to_string() const {
  std::string out;
  auto append = [&out](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  append(sse2, "sse2");
  append(avx, "avx");
  append(fma, "fma");
  append(avx2, "avx2");
  append(avx512f, "avx512f");
  return out.empty() ? "none" : out;
}

namespace {

CpuIdentity detect_identity() {
  CpuIdentity id;
  const CpuidRegs leaf0 = cpuid(0);
  if (leaf0.eax == 0 && leaf0.ebx == 0) return id;  // non-x86 or CPUID unavailable

  char vendor[13] = {};
  auto put = [&vendor](std::uint32_t reg, int offset) {
    for (int i = 0; i < 4; ++i) vendor[offset + i] = static_cast<char>((reg >> (8 * i)) & 0xff);
  };
  put(leaf0.ebx, 0);
  put(leaf0.edx, 4);
  put(leaf0.ecx, 8);
  id.vendor = vendor;

  const CpuidRegs leaf1 = cpuid(1);
  const unsigned base_family = (leaf1.eax >> 8) & 0xf;
  const unsigned base_model = (leaf1.eax >> 4) & 0xf;
  const unsigned ext_family = (leaf1.eax >> 20) & 0xff;
  const unsigned ext_model = (leaf1.eax >> 16) & 0xf;
  id.stepping = leaf1.eax & 0xf;
  id.family = base_family == 0xf ? base_family + ext_family : base_family;
  id.model = (base_family == 0xf || base_family == 0x6) ? (ext_model << 4) + base_model : base_model;

  id.features.sse2 = (leaf1.edx >> 26) & 1;
  id.features.avx = (leaf1.ecx >> 28) & 1;
  id.features.fma = (leaf1.ecx >> 12) & 1;

  if (leaf0.eax >= 7) {
    const CpuidRegs leaf7 = cpuid(7);
    id.features.avx2 = (leaf7.ebx >> 5) & 1;
    id.features.avx512f = (leaf7.ebx >> 16) & 1;
  }

  const CpuidRegs ext0 = cpuid(0x80000000u);
  if (ext0.eax >= 0x80000004u) {
    char brand[49] = {};
    for (std::uint32_t leaf = 0; leaf < 3; ++leaf) {
      const CpuidRegs r = cpuid(0x80000002u + leaf);
      const std::uint32_t regs[4] = {r.eax, r.ebx, r.ecx, r.edx};
      for (int w = 0; w < 4; ++w)
        for (int i = 0; i < 4; ++i)
          brand[leaf * 16 + static_cast<std::uint32_t>(w) * 4 + static_cast<std::uint32_t>(i)] =
              static_cast<char>((regs[w] >> (8 * i)) & 0xff);
    }
    id.brand = brand;
    // Trim leading spaces some CPUs pad with.
    const auto first = id.brand.find_first_not_of(' ');
    id.brand = first == std::string::npos ? "" : id.brand.substr(first);
  }
  return id;
}

}  // namespace

const CpuIdentity& host_identity() {
  static const CpuIdentity identity = detect_identity();
  return identity;
}

}  // namespace fs2::arch
