#pragma once

#include <cstdint>
#include <string>

namespace fs2::arch {

/// Raw result of one CPUID invocation.
struct CpuidRegs {
  std::uint32_t eax = 0;
  std::uint32_t ebx = 0;
  std::uint32_t ecx = 0;
  std::uint32_t edx = 0;
};

/// Execute CPUID with the given leaf/subleaf. On non-x86 builds this
/// returns all-zero registers, which downstream code treats as "no
/// features" and falls back to portable paths.
CpuidRegs cpuid(std::uint32_t leaf, std::uint32_t subleaf = 0);

/// ISA feature flags relevant to stress-payload selection. Mirrors the
/// dispatch set used by FIRESTARTER (SSE2 baseline up to AVX-512).
struct FeatureSet {
  bool sse2 = false;
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;

  /// True if `other`'s requirements are satisfied by this feature set.
  bool covers(const FeatureSet& other) const {
    return (!other.sse2 || sse2) && (!other.avx || avx) && (!other.fma || fma) &&
           (!other.avx2 || avx2) && (!other.avx512f || avx512f);
  }

  std::string to_string() const;
};

/// Identification of the running processor as reported by CPUID.
struct CpuIdentity {
  std::string vendor;       ///< "GenuineIntel", "AuthenticAMD", or "" off-x86
  std::string brand;        ///< brand string (leaf 0x80000002..4), may be ""
  unsigned family = 0;      ///< display family (incl. extended family)
  unsigned model = 0;       ///< display model (incl. extended model)
  unsigned stepping = 0;
  FeatureSet features;
};

/// Query CPUID once and cache the result for the process lifetime.
const CpuIdentity& host_identity();

}  // namespace fs2::arch
