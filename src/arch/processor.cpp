#include "arch/processor.hpp"

#include "util/strings.hpp"

namespace fs2::arch {

const char* to_string(Microarch arch) {
  switch (arch) {
    case Microarch::kGeneric: return "generic";
    case Microarch::kIntelNehalem: return "intel-nehalem";
    case Microarch::kIntelSandyBridge: return "intel-sandybridge";
    case Microarch::kIntelHaswell: return "intel-haswell";
    case Microarch::kIntelSkylakeSp: return "intel-skylake-sp";
    case Microarch::kAmdBulldozer: return "amd-bulldozer";
    case Microarch::kAmdZen: return "amd-zen";
    case Microarch::kAmdZen2: return "amd-zen2";
  }
  return "unknown";
}

std::string ProcessorModel::describe() const {
  return strings::format("%s family %u model %u (%s, features: %s)",
                         brand.empty() ? vendor.c_str() : brand.c_str(), family, model,
                         to_string(microarch), features.to_string().c_str());
}

Microarch classify(const std::string& vendor, unsigned family, unsigned model) {
  if (vendor == "GenuineIntel" && family == 6) {
    switch (model) {
      case 0x1a: case 0x1e: case 0x1f: case 0x2e:  // Nehalem
      case 0x25: case 0x2c: case 0x2f:             // Westmere (same mix)
        return Microarch::kIntelNehalem;
      case 0x2a: case 0x2d:                        // Sandy Bridge
      case 0x3a: case 0x3e:                        // Ivy Bridge
        return Microarch::kIntelSandyBridge;
      case 0x3c: case 0x3f: case 0x45: case 0x46:  // Haswell
      case 0x3d: case 0x47: case 0x4f: case 0x56:  // Broadwell (same mix)
        return Microarch::kIntelHaswell;
      case 0x55:                                   // Skylake-SP / Cascade Lake
        return Microarch::kIntelSkylakeSp;
      default:
        return Microarch::kGeneric;
    }
  }
  if (vendor == "AuthenticAMD") {
    if (family == 0x15) return Microarch::kAmdBulldozer;
    if (family == 0x17) {
      // Zen/Zen+ models are < 0x30; Zen 2 (Rome/Matisse) are 0x30..0x7f.
      return model >= 0x30 ? Microarch::kAmdZen2 : Microarch::kAmdZen;
    }
    if (family == 0x19) return Microarch::kAmdZen2;  // Zen 3 reuses the Zen 2 mix here
  }
  return Microarch::kGeneric;
}

ProcessorModel detect_host() {
  const CpuIdentity& id = host_identity();
  ProcessorModel m;
  m.vendor = id.vendor;
  m.brand = id.brand;
  m.family = id.family;
  m.model = id.model;
  m.features = id.features;
  m.microarch = classify(id.vendor, id.family, id.model);
  return m;
}

ProcessorModel epyc_7502_model() {
  ProcessorModel m;
  m.vendor = "AuthenticAMD";
  m.brand = "AMD EPYC 7502 32-Core Processor";
  m.family = 0x17;
  m.model = 0x31;  // Rome
  m.microarch = Microarch::kAmdZen2;
  m.features = FeatureSet{.sse2 = true, .avx = true, .fma = true, .avx2 = true, .avx512f = false};
  return m;
}

ProcessorModel xeon_e5_2680v3_model() {
  ProcessorModel m;
  m.vendor = "GenuineIntel";
  m.brand = "Intel(R) Xeon(R) CPU E5-2680 v3 @ 2.50GHz";
  m.family = 6;
  m.model = 0x3f;  // Haswell-EP
  m.microarch = Microarch::kIntelHaswell;
  m.features = FeatureSet{.sse2 = true, .avx = true, .fma = true, .avx2 = true, .avx512f = false};
  return m;
}

}  // namespace fs2::arch
