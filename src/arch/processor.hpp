#pragma once

#include <string>

#include "arch/cpuid.hpp"

namespace fs2::arch {

/// Microarchitecture families FIRESTARTER ships tuned instruction mixes
/// for. `kGeneric` selects the widest payload the host's feature set
/// supports (the FIRESTARTER 2 fallback behaviour).
enum class Microarch {
  kGeneric,
  kIntelNehalem,
  kIntelSandyBridge,
  kIntelHaswell,
  kIntelSkylakeSp,
  kAmdBulldozer,
  kAmdZen,
  kAmdZen2,
};

const char* to_string(Microarch arch);

/// Processor description used for payload dispatch: vendor/family/model
/// mapped onto a known microarchitecture, plus the ISA feature set.
struct ProcessorModel {
  std::string vendor;
  std::string brand;
  unsigned family = 0;
  unsigned model = 0;
  Microarch microarch = Microarch::kGeneric;
  FeatureSet features;

  std::string describe() const;
};

/// Map vendor/family/model to a microarchitecture, mirroring the dispatch
/// table FIRESTARTER uses (vendor + family + model check, Sec. III-A).
Microarch classify(const std::string& vendor, unsigned family, unsigned model);

/// Detect the host processor via CPUID.
ProcessorModel detect_host();

/// Construct the processor model for one of the paper's two testbeds;
/// used when running against the simulator substrate.
ProcessorModel epyc_7502_model();       ///< Table II system (Zen 2, family 23 model 49)
ProcessorModel xeon_e5_2680v3_model();  ///< Fig. 2 system (Haswell, family 6 model 63)

}  // namespace fs2::arch
