#include "arch/topology.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "util/logging.hpp"

namespace fs2::arch {

namespace {

/// Read an integer from a sysfs file; returns `fallback` if unreadable.
int read_int_file(const std::filesystem::path& path, int fallback) {
  std::ifstream in(path);
  int value = fallback;
  if (in && (in >> value)) return value;
  return fallback;
}

}  // namespace

Topology Topology::from_sysfs(const std::string& sysfs_root) {
  namespace fs = std::filesystem;
  Topology topo;
  const fs::path cpu_dir = fs::path(sysfs_root) / "devices" / "system" / "cpu";

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cpu_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.compare(0, 3, "cpu") != 0) continue;
    if (!std::all_of(name.begin() + 3, name.end(), [](char c) { return c >= '0' && c <= '9'; }))
      continue;
    const int os_id = std::stoi(name.substr(3));
    const fs::path topo_dir = entry.path() / "topology";
    if (!fs::exists(topo_dir)) continue;  // offline CPU
    LogicalCpu cpu;
    cpu.os_id = os_id;
    cpu.core_id = read_int_file(topo_dir / "core_id", os_id);
    cpu.package_id = read_int_file(topo_dir / "physical_package_id", 0);
    topo.cpus_.push_back(cpu);
  }

  if (topo.cpus_.empty()) {
    // Fallback for stripped containers: assume flat topology of N cores.
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    log::warn() << "no sysfs topology under " << cpu_dir.string() << "; assuming " << n
                << " independent cores";
    for (unsigned i = 0; i < n; ++i)
      topo.cpus_.push_back(LogicalCpu{static_cast<int>(i), static_cast<int>(i), 0, false});
  }

  topo.finalize();
  return topo;
}

Topology Topology::synthetic(int packages, int cores_per_package, int threads_per_core) {
  Topology topo;
  int os_id = 0;
  // Linux enumerates thread 0 of every core first, then SMT siblings —
  // replicate that so worker pinning matches real machines.
  for (int t = 0; t < threads_per_core; ++t)
    for (int p = 0; p < packages; ++p)
      for (int c = 0; c < cores_per_package; ++c)
        topo.cpus_.push_back(LogicalCpu{os_id++, c, p, t > 0});
  topo.finalize();
  return topo;
}

void Topology::finalize() {
  std::sort(cpus_.begin(), cpus_.end(),
            [](const LogicalCpu& a, const LogicalCpu& b) { return a.os_id < b.os_id; });
  std::set<std::pair<int, int>> cores;
  std::set<int> packages;
  for (auto& cpu : cpus_) {
    const auto key = std::make_pair(cpu.package_id, cpu.core_id);
    cpu.smt_sibling = !cores.insert(key).second;
    packages.insert(cpu.package_id);
  }
  num_cores_ = cores.size();
  num_packages_ = packages.size();
}

std::vector<int> Topology::worker_cpus(bool one_per_core) const {
  std::vector<int> ids;
  for (const auto& cpu : cpus_)
    if (!one_per_core || !cpu.smt_sibling) ids.push_back(cpu.os_id);
  return ids;
}

}  // namespace fs2::arch
