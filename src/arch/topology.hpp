#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fs2::arch {

/// One logical CPU as seen by the OS scheduler.
struct LogicalCpu {
  int os_id = 0;       ///< index in /sys/devices/system/cpu/cpuN
  int core_id = 0;     ///< physical core within the package
  int package_id = 0;  ///< socket
  bool smt_sibling = false;  ///< true if another logical CPU shares the core with a lower os_id
};

/// System topology: which logical CPUs exist and how they group into cores
/// and packages. FIRESTARTER pins one worker thread per logical CPU (or per
/// core when SMT is disabled via `--threads`).
class Topology {
 public:
  /// Read the topology from a sysfs tree. `sysfs_root` defaults to "/sys"
  /// and is injectable so tests can run against fixture trees.
  static Topology from_sysfs(const std::string& sysfs_root = "/sys");

  /// Synthetic topology: `packages` sockets × `cores` cores × `threads` SMT.
  /// Used for simulator-backed runs describing machines we do not run on.
  static Topology synthetic(int packages, int cores_per_package, int threads_per_core);

  const std::vector<LogicalCpu>& cpus() const { return cpus_; }
  std::size_t num_logical() const { return cpus_.size(); }
  std::size_t num_cores() const { return num_cores_; }
  std::size_t num_packages() const { return num_packages_; }
  bool smt_enabled() const { return num_logical() > num_cores(); }

  /// Logical CPUs to pin workers to: all of them, or one per physical core.
  std::vector<int> worker_cpus(bool one_per_core) const;

 private:
  std::vector<LogicalCpu> cpus_;
  std::size_t num_cores_ = 0;
  std::size_t num_packages_ = 0;

  void finalize();
};

}  // namespace fs2::arch
