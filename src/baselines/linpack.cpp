#include "baselines/linpack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fs2::baselines {

LinpackSolver::LinpackSolver(std::size_t n, std::uint64_t seed)
    : n_(n), a_(n * n), b_(n), x_(n), pivots_(n) {
  if (n == 0) throw Error("LinpackSolver: dimension must be positive");
  Xoshiro256 rng(seed);
  for (double& v : a_) v = rng.uniform(-0.5, 0.5);
  // Diagonal dominance keeps the system well conditioned so the residual
  // check isolates hardware errors rather than conditioning noise.
  for (std::size_t i = 0; i < n_; ++i) a_[i * n_ + i] += static_cast<double>(n_);
  for (double& v : b_) v = rng.uniform(-1.0, 1.0);
  a_copy_ = a_;
  b_copy_ = b_;
}

void LinpackSolver::factor() {
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting.
    std::size_t pivot = k;
    double best = std::abs(a_[k * n_ + k]);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double candidate = std::abs(a_[i * n_ + k]);
      if (candidate > best) {
        best = candidate;
        pivot = i;
      }
    }
    if (best == 0.0) throw Error("LinpackSolver: singular matrix");
    pivots_[k] = static_cast<int>(pivot);
    if (pivot != k)
      for (std::size_t j = 0; j < n_; ++j) std::swap(a_[k * n_ + j], a_[pivot * n_ + j]);

    const double inv = 1.0 / a_[k * n_ + k];
    for (std::size_t i = k + 1; i < n_; ++i) a_[i * n_ + k] *= inv;

    // Rank-1 trailing update — the vectorizable hot loop.
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double lik = a_[i * n_ + k];
      const double* row_k = &a_[k * n_];
      double* row_i = &a_[i * n_];
      for (std::size_t j = k + 1; j < n_; ++j) row_i[j] -= lik * row_k[j];
    }
  }
}

void LinpackSolver::back_substitute() {
  x_ = b_;
  // Apply the row exchanges and L (unit lower triangular).
  for (std::size_t k = 0; k < n_; ++k) {
    std::swap(x_[k], x_[static_cast<std::size_t>(pivots_[k])]);
    for (std::size_t i = k + 1; i < n_; ++i) x_[i] -= a_[i * n_ + k] * x_[k];
  }
  // Solve U x = y.
  for (std::size_t k = n_; k-- > 0;) {
    for (std::size_t j = k + 1; j < n_; ++j) x_[k] -= a_[k * n_ + j] * x_[j];
    x_[k] /= a_[k * n_ + k];
  }
}

double LinpackSolver::solve() {
  factor();
  back_substitute();

  // Residual check (HPL-style normalization).
  double residual = 0.0, norm_a = 0.0, norm_x = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    double row_sum = 0.0, ax = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      row_sum += std::abs(a_copy_[i * n_ + j]);
      ax += a_copy_[i * n_ + j] * x_[j];
    }
    norm_a = std::max(norm_a, row_sum);
    residual = std::max(residual, std::abs(ax - b_copy_[i]));
    norm_x = std::max(norm_x, std::abs(x_[i]));
  }
  const double eps = std::numeric_limits<double>::epsilon();
  return residual / (norm_a * norm_x * static_cast<double>(n_) * eps);
}

double LinpackSolver::flops() const {
  const double n = static_cast<double>(n_);
  return 2.0 / 3.0 * n * n * n + 2.0 * n * n;
}

double linpack_rep(std::size_t n, std::uint64_t seed) {
  LinpackSolver solver(n, seed);
  const double check = solver.solve();
  if (check > 16.0)
    throw Error(strings::format("LINPACK residual check failed: %.1f (limit 16)", check));
  return check;
}

}  // namespace fs2::baselines
