#pragma once

#include <cstdint>
#include <vector>

namespace fs2::baselines {

/// The LINPACK benchmark core (Table I baseline): solve a dense linear
/// system A x = b via LU factorization with partial pivoting, then verify
/// the residual — LINPACK "checks whether the result of the computation is
/// correct" (Sec. II-B).
///
/// Implemented with a blocked right-looking factorization so the compiler
/// can vectorize the update (LINPACK's power profile depends on the BLAS
/// quality, which Table I flags as its portability weakness).
class LinpackSolver {
 public:
  /// Build a diagonally dominant random system of dimension n.
  LinpackSolver(std::size_t n, std::uint64_t seed);

  /// Factor and solve; returns the normalized residual
  /// ||A x - b||_inf / (||A||_inf * ||x||_inf * n * eps).
  /// LINPACK accepts results with a residual check value < O(10).
  double solve();

  const std::vector<double>& solution() const { return x_; }
  std::size_t dimension() const { return n_; }

  /// FLOPs of one solve: 2/3 n^3 + 2 n^2 (the standard LINPACK count).
  double flops() const;

 private:
  std::size_t n_;
  std::vector<double> a_;        ///< row-major n x n (factored in place)
  std::vector<double> a_copy_;   ///< pristine copy for the residual check
  std::vector<double> b_;
  std::vector<double> b_copy_;
  std::vector<double> x_;
  std::vector<int> pivots_;

  void factor();
  void back_substitute();
};

/// One rep of the LINPACK stress loop: build (cheap), solve, verify.
/// Returns the residual check value. Throws fs2::Error if the residual
/// check fails — the error-detection behaviour Table I credits LINPACK
/// with.
double linpack_rep(std::size_t n, std::uint64_t seed);

}  // namespace fs2::baselines
