#include "baselines/prime.hpp"

#include "util/error.hpp"

namespace fs2::baselines {

BigUint::BigUint(std::uint64_t value) {
  limbs_.push_back(static_cast<std::uint32_t>(value));
  limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  normalize();
}

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::mersenne(unsigned p) {
  BigUint out;
  out.limbs_.assign((p + 31) / 32, 0xFFFFFFFFu);
  const unsigned top_bits = p % 32;
  if (top_bits != 0) out.limbs_.back() = (1u << top_bits) - 1;
  return out;
}

BigUint BigUint::multiply(const BigUint& other) const {
  if (limbs_.empty() || other.limbs_.empty()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigUint BigUint::subtract_small(std::uint64_t value) const {
  BigUint out = *this;
  std::uint64_t borrow = value;
  for (std::size_t i = 0; i < out.limbs_.size() && borrow != 0; ++i) {
    const std::uint64_t limb = out.limbs_[i];
    const std::uint64_t take = borrow & 0xFFFFFFFFull;
    if (limb >= take) {
      out.limbs_[i] = static_cast<std::uint32_t>(limb - take);
      borrow >>= 32;
    } else {
      out.limbs_[i] = static_cast<std::uint32_t>(limb + 0x100000000ull - take);
      borrow = (borrow >> 32) + 1;
    }
  }
  if (borrow != 0) throw Error("BigUint::subtract_small: underflow");
  out.normalize();
  return out;
}

BigUint BigUint::shift_right_bits(unsigned bits) const {
  const unsigned limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
      out.limbs_[i] >>= bit_shift;
      if (i + 1 < out.limbs_.size())
        out.limbs_[i] |= out.limbs_[i + 1] << (32 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

BigUint BigUint::mask_low_bits(unsigned bits) const {
  BigUint out;
  const std::size_t keep = (bits + 31) / 32;
  out.limbs_.assign(limbs_.begin(),
                    limbs_.begin() + static_cast<long>(std::min(keep, limbs_.size())));
  const unsigned top_bits = bits % 32;
  if (top_bits != 0 && out.limbs_.size() == keep)
    out.limbs_.back() &= (1u << top_bits) - 1;
  out.normalize();
  return out;
}

BigUint BigUint::add(const BigUint& other) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const std::uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const std::uint64_t cur = a + b + carry;
    out.limbs_[i] = static_cast<std::uint32_t>(cur);
    carry = cur >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.normalize();
  return out;
}

BigUint BigUint::mod_mersenne(unsigned p) const {
  const BigUint m = mersenne(p);
  BigUint value = *this;
  while (value.bit_length() > p)
    value = value.shift_right_bits(p).add(value.mask_low_bits(p));
  if (value.equals(m)) return BigUint();  // 2^p - 1 == 0 (mod M_p)
  return value;
}

bool BigUint::is_zero() const { return limbs_.empty(); }

bool BigUint::equals(const BigUint& other) const { return limbs_ == other.limbs_; }

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = limbs_.size() * 32;
  for (std::uint32_t probe = 0x80000000u; probe != 0 && (top & probe) == 0; probe >>= 1) --bits;
  return bits;
}

bool LucasLehmer::is_mersenne_prime(unsigned p) {
  if (p == 2) return true;  // M_2 = 3
  if (p < 3 || p > 4096) throw Error("LucasLehmer: exponent out of supported range");
  BigUint s(4);
  for (unsigned i = 0; i < p - 2; ++i)
    s = s.multiply(s).subtract_small(2).mod_mersenne(p);
  return s.is_zero();
}

std::uint64_t LucasLehmer::residue(unsigned p) {
  if (p < 3 || p > 4096) throw Error("LucasLehmer: exponent out of supported range");
  BigUint s(4);
  for (unsigned i = 0; i < p - 2; ++i)
    s = s.multiply(s).subtract_small(2).mod_mersenne(p);
  std::uint64_t low = 0;
  for (int limb = 1; limb >= 0; --limb) {
    low <<= 32;
    if (static_cast<std::size_t>(limb) < s.limbs_.size()) low |= s.limbs_[limb];
  }
  return low;
}

}  // namespace fs2::baselines
