#pragma once

#include <cstdint>
#include <vector>

namespace fs2::baselines {

/// Fixed-width little-endian big unsigned integer used by the
/// Lucas-Lehmer test. Limbs are 32-bit digits stored in 64-bit lanes so
/// schoolbook multiplication never overflows.
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  static BigUint mersenne(unsigned p);  ///< 2^p - 1

  BigUint multiply(const BigUint& other) const;
  BigUint subtract_small(std::uint64_t value) const;  ///< this - value (this >= value)

  /// Reduce modulo the Mersenne number 2^p - 1 using the shift-and-add
  /// identity (x mod 2^p - 1 == (x >> p) + (x & (2^p - 1)), iterated) —
  /// the trick that makes Mersenne arithmetic fast (and Prime95 viable).
  BigUint mod_mersenne(unsigned p) const;

  bool is_zero() const;
  bool equals(const BigUint& other) const;
  std::size_t bit_length() const;

 private:
  std::vector<std::uint32_t> limbs_;  // base 2^32, little endian, normalized

  void normalize();
  BigUint shift_right_bits(unsigned bits) const;
  BigUint mask_low_bits(unsigned bits) const;
  BigUint add(const BigUint& other) const;
  friend class LucasLehmer;
};

/// The Lucas-Lehmer primality test for Mersenne numbers M_p = 2^p - 1 —
/// the Prime95/GIMPS workload of Table I: s_0 = 4,
/// s_{i+1} = (s_i^2 - 2) mod M_p; M_p is prime iff s_{p-2} == 0.
/// The squaring chain is exactly the computation whose residues GIMPS
/// double-checks for hardware-error detection (Table I: "error check").
class LucasLehmer {
 public:
  /// Test M_p for primality. p must be an odd prime >= 3 (p <= ~4096 keeps
  /// the schoolbook multiply reasonable).
  static bool is_mersenne_prime(unsigned p);

  /// Run the full iteration chain and return a 64-bit residue of the final
  /// s value — the GIMPS-style verification artifact (identical across
  /// correct runs, diverges on any hardware miscomputation).
  static std::uint64_t residue(unsigned p);
};

}  // namespace fs2::baselines
