#include "baselines/stressng.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace fs2::baselines {

long double stressng_matrixprod(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<long double> a(n * n), b(n * n), c(n * n, 0.0L);
  for (auto& v : a) v = static_cast<long double>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<long double>(rng.uniform(-1.0, 1.0));
  // Deliberately the naive x87-bound triple loop stress-ng uses: the inner
  // accumulation over `long double` cannot map onto SSE/AVX units.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      long double sum = 0.0L;
      for (std::size_t k = 0; k < n; ++k) sum += a[i * n + k] * b[k * n + j];
      c[i * n + j] = sum;
    }
  long double checksum = 0.0L;
  for (const long double v : c) checksum += v;
  return checksum;
}

double stressng_sqrt(std::size_t iterations, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  double value = 1e12 * (1.0 + rng.uniform());
  double checksum = 0.0;
  for (std::size_t i = 0; i < iterations; ++i) {
    // Serialized: each sqrt depends on the previous result, so the FP
    // pipeline drains between operations (the "low power loop" profile).
    value = std::sqrt(value) * 1e6 + 1.0;
    checksum += value * 1e-6;
  }
  return checksum;
}

double stressng_matrixprod_flops(std::size_t n) {
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn * dn;
}

}  // namespace fs2::baselines
