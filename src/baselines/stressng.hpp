#pragma once

#include <cstddef>
#include <cstdint>

namespace fs2::baselines {

/// stress-ng's matrixprod-style workload (Table I baseline): a matrix
/// product over `long double` operands. The paper points out exactly this
/// weakness: "it currently uses long doubles, which are not supported by
/// SIMD extensions. The code is also written in C, and the compiler would
/// need to vectorize it automatically" — so its power draw stays far below
/// a SIMD-dense stress kernel. Returns a checksum of the product.
long double stressng_matrixprod(std::size_t n, std::uint64_t seed);

/// stress-ng's "sqrt" CPU method: serialized square roots over an array —
/// the low-power active loop class of Fig. 2. Returns a checksum.
double stressng_sqrt(std::size_t iterations, std::uint64_t seed);

/// FLOP count of one matrixprod rep (2 n^3, in long-double operations).
double stressng_matrixprod_flops(std::size_t n);

}  // namespace fs2::baselines
