#include "cluster/agent.hpp"

#include <thread>

#include "cluster/fault_injection.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::cluster {

AgentSession::AgentSession(const Options& options)
    : options_(options),
      conn_(Connection::connect(options.endpoint, options.connect_timeout_s)),
      metrics_tracker_(trace::Registry::instance()) {
  HelloMsg hello;
  hello.node_name = options.node_name;
  hello.sku = options.sku;
  conn_.send(hello.encode());

  // Handshake loop: answer sync probes until the campaign arrives, then
  // take the epoch. The coordinator owns the sequencing; the agent only
  // reacts.
  bool have_campaign = false;
  bool have_epoch = false;
  while (!have_campaign || !have_epoch) {
    const auto frame = conn_.recv(/*timeout_s=*/30.0);
    if (!frame) throw WireError("agent: coordinator went silent during handshake");
    WireReader reader(frame->payload);
    switch (frame->type) {
      case MessageType::kSyncProbe: {
        const SyncProbeMsg probe = SyncProbeMsg::decode(reader);
        SyncReplyMsg reply;
        reply.seq = probe.seq;
        reply.t_coord_s = probe.t_coord_s;
        reply.t_agent_s = local_clock_s();
        conn_.send(reply.encode());
        break;
      }
      case MessageType::kCampaign:
        campaign_ = CampaignMsg::decode(reader);
        current_setpoint_w_ = campaign_.initial_setpoint_w;
        // The coordinator decides fleet-wide whether spans are recorded;
        // the flag arrives before the epoch, so phase 0 is covered.
        if (campaign_.trace_enabled != 0) trace::Tracer::set_enabled(true);
        have_campaign = true;
        break;
      case MessageType::kEpoch:
        epoch_ = EpochMsg::decode(reader);
        epoch_time_ = to_time_point(epoch_.t0_agent_s);
        have_epoch = true;
        break;
      default:
        throw WireError(std::string("agent: unexpected ") + to_string(frame->type) +
                        " during handshake");
    }
  }
  sink_ = std::make_unique<RemoteSink>(&conn_, epoch_time_);
  next_metrics_s_ = campaign_.metrics_interval_s;
  log::info() << "agent: joined cluster " << log::kv("node", options.node_name) << ' '
              << log::kv("endpoint", options.endpoint) << ' '
              << log::kv("offset_us", strings::format("%.1f", epoch_.offset_s * 1e6))
              << ' ' << log::kv("rtt_us", strings::format("%.1f", epoch_.rtt_s * 1e6))
              << ' ' << log::kv("metrics_interval_s", campaign_.metrics_interval_s);
}

double AgentSession::epoch_elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_time_)
      .count();
}

void AgentSession::wait_for_start() const {
  std::this_thread::sleep_until(epoch_time_);
}

Frame AgentSession::expect(MessageType type, double timeout_s) {
  const auto frame = conn_.recv(timeout_s);
  if (!frame)
    throw WireError(strings::format("agent: no %s from the coordinator within %.0f s",
                                    to_string(type), timeout_s));
  if (frame->type == MessageType::kShutdown && type != MessageType::kShutdown)
    throw WireError("agent: coordinator shut the run down early");
  if (frame->type != type)
    throw WireError(std::string("agent: expected ") + to_string(type) + ", got " +
                    to_string(frame->type));
  return *frame;
}

void AgentSession::begin_phase(std::uint32_t phase_index) {
  TRACE_SPAN("agent.phase_barrier");
  next_budget_s_ = campaign_.budget_interval_s;
  if (phase_index == 0) return;  // phase 0's barrier is the epoch itself
  const Frame frame = expect(MessageType::kPhaseGo, /*timeout_s=*/600.0);
  WireReader reader(frame.payload);
  const PhaseGoMsg go = PhaseGoMsg::decode(reader);
  if (go.phase_index != phase_index)
    throw WireError(strings::format("agent: phase-go for %u while entering %u",
                                    go.phase_index, phase_index));
}

bool AgentSession::budget_due(double t_s) const {
  return has_budget() && t_s >= next_budget_s_ - 1e-9;
}

bool AgentSession::metrics_due() const {
  return campaign_.metrics_interval_s > 0.0 && epoch_elapsed_s() >= next_metrics_s_;
}

void AgentSession::ship_metrics() {
  // Re-arm on the fixed grid so a late ship doesn't drift the cadence;
  // skip the wire entirely when nothing moved since the last delta.
  const double interval = campaign_.metrics_interval_s;
  while (next_metrics_s_ <= epoch_elapsed_s()) next_metrics_s_ += interval;
  trace::MetricDelta delta = metrics_tracker_.collect();
  if (delta.empty()) return;
  MetricUpdateMsg msg;
  msg.seq = metrics_seq_++;
  msg.t_agent_s = epoch_elapsed_s();
  msg.delta = std::move(delta);
  conn_.send(msg.encode());
}

void AgentSession::ship_flight_record(const std::string& reason) {
  try {
    if (!conn_.valid()) return;
    FlightRecordMsg msg;
    msg.reason = reason;
    msg.dump = trace::FlightRecorder::instance().serialize();
    conn_.send(msg.encode());
  } catch (const Error&) {
    // Already dying; the dump on local disk (--flight-out) is the backup.
  }
}

void AgentSession::budget_exchange(double t_s, control::FeedbackLoop& loop) {
  TRACE_SPAN("agent.budget_exchange");
  next_budget_s_ += campaign_.budget_interval_s;
  BudgetReportMsg report;
  report.seq = budget_seq_++;
  report.achieved_w = loop.trailing_mean(campaign_.budget_interval_s);
  report.setpoint_w = loop.setpoint().value;
  report.level = loop.profile().level();
  conn_.send(report.encode());

  const Frame frame = expect(MessageType::kBudgetAssign, /*timeout_s=*/60.0);
  WireReader reader(frame.payload);
  const BudgetAssignMsg assign = BudgetAssignMsg::decode(reader);
  if (assign.seq != report.seq)
    throw WireError(strings::format("agent: budget assign seq %u for report %u",
                                    assign.seq, report.seq));
  current_setpoint_w_ = assign.setpoint_w;
  loop.set_target(assign.setpoint_w);
  (void)t_s;
}

std::uint32_t AgentSession::rejoin(std::uint32_t phases_ended) {
  conn_.close();
  // Jitter seeded from the campaign id + node identity: reproducible per
  // run, and a whole fleet knocked over at once fans its redials out
  // instead of stampeding the listener in lockstep.
  Backoff::Options opts;
  std::uint64_t seed = campaign_.campaign_id + phases_ended;
  for (const char c : options_.node_name) seed = seed * 31 + static_cast<std::uint8_t>(c);
  opts.seed = seed;
  Backoff backoff(opts);
  const auto give_up_at =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.rejoin_timeout_s));
  bool refused = false;
  for (;;) {
    try {
      Connection fresh = Connection::connect(options_.endpoint, /*retry_for_s=*/1.0);
      RejoinMsg msg;
      msg.node_name = options_.node_name;
      msg.campaign_id = campaign_.campaign_id;
      msg.phases_ended = phases_ended;
      fresh.send(msg.encode());
      const auto reply = fresh.recv(/*timeout_s=*/10.0);
      if (!reply || reply->type != MessageType::kRejoinAck)
        throw WireError("agent: no rejoin ack from the coordinator");
      WireReader ack_reader(reply->payload);
      const RejoinAckMsg ack = RejoinAckMsg::decode(ack_reader);
      if (ack.accepted == 0) {
        // Authoritative: the window expired, the campaign id is stale, or
        // the verdict is already in. Retrying cannot change the answer.
        refused = true;
        throw Error("agent: rejoin refused: " + ack.detail);
      }

      // Re-run the admission sequence on the fresh socket: sync probes,
      // then the campaign and the ORIGINAL epoch re-expressed through the
      // new clock offset. A phase-go replay may already be queued behind
      // them; it stays buffered for the next begin_phase.
      bool have_campaign = false;
      bool have_epoch = false;
      while (!have_campaign || !have_epoch) {
        const auto frame = fresh.recv(/*timeout_s=*/30.0);
        if (!frame) throw WireError("agent: coordinator went silent during rejoin");
        WireReader reader(frame->payload);
        switch (frame->type) {
          case MessageType::kSyncProbe: {
            const SyncProbeMsg probe = SyncProbeMsg::decode(reader);
            SyncReplyMsg sync_reply;
            sync_reply.seq = probe.seq;
            sync_reply.t_coord_s = probe.t_coord_s;
            sync_reply.t_agent_s = local_clock_s();
            fresh.send(sync_reply.encode());
            break;
          }
          case MessageType::kCampaign:
            campaign_ = CampaignMsg::decode(reader);
            current_setpoint_w_ = campaign_.initial_setpoint_w;
            have_campaign = true;
            break;
          case MessageType::kEpoch:
            epoch_ = EpochMsg::decode(reader);
            epoch_time_ = to_time_point(epoch_.t0_agent_s);
            have_epoch = true;
            break;
          default:
            throw WireError(std::string("agent: unexpected ") +
                            to_string(frame->type) + " during rejoin");
        }
      }
      // conn_ is a member, so its address — which the RemoteSink holds —
      // survives the swap; the sink keeps streaming on the new socket with
      // its channel registrations intact (the coordinator kept the node's
      // registration state across the outage).
      conn_ = std::move(fresh);
      next_metrics_s_ = campaign_.metrics_interval_s > 0.0
                            ? epoch_elapsed_s() + campaign_.metrics_interval_s
                            : 0.0;
      log::info() << "agent: rejoined cluster " << log::kv("node", options_.node_name)
                  << ' ' << log::kv("resume_phase", ack.resume_phase) << ' '
                  << log::kv("attempts", backoff.attempts() + 1);
      trace::FlightRecorder::instance().note_event(
          strings::format("rejoined coordinator, resuming phase %u", ack.resume_phase));
      return ack.resume_phase;
    } catch (const Error& e) {
      if (refused) throw;
      if (std::chrono::steady_clock::now() >= give_up_at)
        throw Error(strings::format("agent: rejoin failed for %.0f s: %s",
                                    options_.rejoin_timeout_s, e.what()));
      const double delay = backoff.next_s();
      log::warn() << "agent: rejoin attempt failed (" << e.what() << "); retrying in "
                  << strings::format("%.0f ms", delay * 1e3);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
}

void AgentSession::add_span(std::string name, double begin_s, double end_s) {
  if (campaign_.trace_enabled == 0) return;
  extra_spans_.push_back(trace::Span{std::move(name), begin_s, end_s});
}

void AgentSession::finish(bool converged, const std::string& detail) {
  // Trace shipment precedes the verdict: the verdict is the coordinator's
  // "node done" signal, so everything observability must already be on the
  // wire when it lands. The last metric delta ships first so the
  // coordinator's folded series equal the node's final registry totals.
  if (campaign_.metrics_interval_s > 0.0) ship_metrics();
  if (campaign_.trace_enabled != 0) {
    std::vector<trace::SpanEvent> events;
    trace::Tracer::drain(events);
    TraceSpansMsg spans;
    spans.spans.reserve(events.size() + extra_spans_.size());
    for (const trace::SpanEvent& e : events)
      spans.spans.push_back(trace::Span{e.name, e.begin_s, e.end_s});
    for (trace::Span& span : extra_spans_) spans.spans.push_back(std::move(span));
    extra_spans_.clear();
    spans.dropped = trace::Tracer::dropped();
    conn_.send(spans.encode());

    CounterSnapshotMsg counters;
    counters.counters = trace::Registry::instance().snapshot();
    conn_.send(counters.encode());
  }
  VerdictMsg verdict;
  verdict.converged = converged ? 1 : 0;
  verdict.detail = detail;
  conn_.send(verdict.encode());
  expect(MessageType::kShutdown, /*timeout_s=*/600.0);
  conn_.close();
}

}  // namespace fs2::cluster
