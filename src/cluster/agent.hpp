#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "cluster/clock_sync.hpp"
#include "cluster/remote_sink.hpp"
#include "cluster/transport.hpp"
#include "control/feedback_loop.hpp"
#include "trace/metric_delta.hpp"

namespace fs2::cluster {

/// One node's side of a coordinated run: dials the coordinator, identifies
/// itself, answers the clock-sync probes, and receives the campaign and the
/// shared epoch. The campaign runner then drives the session — waiting for
/// the epoch, bracketing phases (the coordinator's per-phase barrier), and
/// exchanging budget reports for reassigned power setpoints — while the
/// session's RemoteSink streams the node's telemetry bus to the wire.
///
/// Everything runs on the agent's single campaign thread; incoming traffic
/// (phase-go, budget assigns, shutdown) is strictly solicited, so blocking
/// receives at the protocol's wait points are safe.
class AgentSession {
 public:
  struct Options {
    std::string endpoint;     ///< coordinator HOST:PORT
    std::string node_name;
    std::string sku;          ///< e.g. "sim-zen2@1500MHz"
    double connect_timeout_s = 15.0;
    /// Overall budget for one reconnect/rejoin recovery (dial + handshake,
    /// across backoff attempts) after a lost link.
    double rejoin_timeout_s = 30.0;
  };

  /// Connects and completes the whole handshake: hello, sync replies until
  /// the campaign arrives, then the epoch. Throws on protocol errors.
  explicit AgentSession(const Options& options);

  const CampaignMsg& campaign() const { return campaign_; }
  bool has_budget() const { return campaign_.has_budget != 0; }
  /// The node's power setpoint right now (initial share until the first
  /// budget assign moves it).
  double current_setpoint_w() const { return current_setpoint_w_; }

  /// The shared campaign start in this node's clock.
  std::chrono::steady_clock::time_point epoch_time() const { return epoch_time_; }
  double epoch_elapsed_s() const;
  /// Block until the shared epoch arrives (no-op when already past).
  void wait_for_start() const;

  /// The sink to attach to the node's TelemetryBus.
  RemoteSink& sink() { return *sink_; }

  /// Phase barrier: phase 0 starts at the epoch; later phases block here
  /// until the coordinator has seen every node finish the previous one and
  /// broadcasts phase-go. Also resets the budget-report cadence to the new
  /// phase's local time base.
  void begin_phase(std::uint32_t phase_index);

  /// True when phase-local time `t_s` has crossed the next budget-report
  /// deadline (budget mode only; always false otherwise).
  bool budget_due(double t_s) const;

  /// True when epoch-elapsed time has crossed the next kMetricUpdate
  /// deadline (always false when the coordinator disabled the plane).
  bool metrics_due() const;

  /// Ship one incremental registry delta (kMetricUpdate) from the global
  /// registry. Cheap no-op when nothing moved since the last ship.
  void ship_metrics();

  /// Ship the flight-recorder dump (kFlightRecord) — called from the agent
  /// error path so the coordinator's post-mortem has the node's last view.
  /// Best effort: never throws.
  void ship_flight_record(const std::string& reason);

  /// One budget round: report the loop's trailing achieved watts and
  /// commanded level, block for the coordinator's reassignment, and retune
  /// the loop to it.
  void budget_exchange(double t_s, control::FeedbackLoop& loop);

  /// Append a named span to the buffer shipped with finish() — for spans
  /// whose names are built at runtime (e.g. "phase:<name>"), which the
  /// literal-only global Tracer ring cannot carry. No-op when the
  /// coordinator didn't enable tracing.
  void add_span(std::string name, double begin_s, double end_s);

  /// End of campaign: send the node's convergence verdict and block for
  /// the coordinator's shutdown.
  void finish(bool converged, const std::string& detail);

  /// Recover a lost link: dial the coordinator again with exponential
  /// backoff + jitter, present the rejoin handshake (node name, campaign
  /// id, `phases_ended` completed phases), and on acceptance re-run clock
  /// sync and re-take the campaign and epoch on the fresh socket. Returns
  /// the coordinator-assigned resume phase: the phase to run next (equal to
  /// the campaign's phase count means every phase is done — go straight to
  /// finish()). Throws fs2::Error when the coordinator refuses the rejoin
  /// (authoritative — no retry) or when Options::rejoin_timeout_s of
  /// attempts all fail.
  std::uint32_t rejoin(std::uint32_t phases_ended);

 private:
  Frame expect(MessageType type, double timeout_s);

  Options options_;
  Connection conn_;
  CampaignMsg campaign_;
  EpochMsg epoch_;
  std::chrono::steady_clock::time_point epoch_time_;
  std::unique_ptr<RemoteSink> sink_;
  std::vector<trace::Span> extra_spans_;
  trace::MetricDeltaTracker metrics_tracker_;
  double current_setpoint_w_ = 0.0;
  double next_budget_s_ = 0.0;
  double next_metrics_s_ = 0.0;
  std::uint32_t budget_seq_ = 0;
  std::uint32_t metrics_seq_ = 0;
};

}  // namespace fs2::cluster
