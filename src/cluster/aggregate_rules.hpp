#pragma once

#include <string_view>

namespace fs2::cluster {

/// Which node channels fold into which cluster aggregate. Wall power sums
/// (facility draw); package temperature maxes (hottest node). Both the sim
/// channels and their host-metric equivalents participate, so a mixed
/// sim/host fleet still merges.
///
/// Shared by BOTH ends of the wire: the coordinator's ClusterBus builds
/// its aggregate streams from it, and the agent's RemoteSink consults it
/// to decide which channels must cross as raw sample batches at all —
/// everything else is summarized at the edge and ships as per-phase rows,
/// which is what keeps coordinator ingest cost (and wire bandwidth)
/// proportional to the aggregate streams, not to the fleet's full
/// telemetry volume.
struct AggregateRule {
  const char* source;        ///< node channel name
  const char* cluster_name;  ///< derived cluster stream
  const char* unit;
  bool is_sum;               ///< false = max
};

inline constexpr AggregateRule kAggregateRules[] = {
    {"sim-wall-power", "cluster-power", "W", true},
    {"sysfs-powercap-rapl", "cluster-power", "W", true},
    {"sim-package-temp", "cluster-temp-max", "degC", false},
    {"hwmon-coretemp", "cluster-temp-max", "degC", false},
};

inline const AggregateRule* aggregate_rule_for(std::string_view channel_name) {
  for (const AggregateRule& rule : kAggregateRules)
    if (channel_name == rule.source) return &rule;
  return nullptr;
}

}  // namespace fs2::cluster
