#include "cluster/clock_sync.hpp"

#include <limits>

#include "util/strings.hpp"

namespace fs2::cluster {

double local_clock_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::chrono::steady_clock::time_point to_time_point(double clock_s) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(clock_s)));
}

ClockSyncResult run_clock_sync(Connection& conn, int rounds) {
  ClockSyncResult best;
  best.rtt_s = std::numeric_limits<double>::infinity();
  for (int i = 0; i < rounds; ++i) {
    SyncProbeMsg probe;
    probe.seq = static_cast<std::uint32_t>(i);
    probe.t_coord_s = local_clock_s();
    conn.send(probe.encode());

    const auto frame = conn.recv(/*timeout_s=*/5.0);
    const double t_recv = local_clock_s();
    if (!frame) throw WireError("clock sync: agent did not reply within 5 s");
    if (frame->type != MessageType::kSyncReply)
      throw WireError(std::string("clock sync: expected sync-reply, got ") +
                      to_string(frame->type));
    WireReader reader(frame->payload);
    const SyncReplyMsg reply = SyncReplyMsg::decode(reader);
    if (reply.seq != probe.seq)
      throw WireError(strings::format("clock sync: reply seq %u for probe %u", reply.seq,
                                      probe.seq));

    const double rtt = t_recv - reply.t_coord_s;
    if (rtt < best.rtt_s) {
      best.rtt_s = rtt;
      // The agent stamped its reply somewhere inside our round trip; the
      // midpoint assumption cancels symmetric network delay exactly.
      best.offset_s = reply.t_agent_s - (reply.t_coord_s + t_recv) / 2.0;
    }
    ++best.rounds;
  }
  return best;
}

}  // namespace fs2::cluster
