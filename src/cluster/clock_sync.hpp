#pragma once

#include <chrono>

#include "cluster/transport.hpp"

namespace fs2::cluster {

/// Steady-clock seconds since this process's (arbitrary) clock epoch — the
/// time representation both sync messages and the epoch handoff use. Each
/// machine's value is meaningless to the other; only differences and the
/// estimated offset between them are.
double local_clock_s();

/// Convert a local-clock seconds value back to a time point (for
/// sleep_until and PhaseClock epoch injection).
std::chrono::steady_clock::time_point to_time_point(double clock_s);

/// Result of the RTT-compensated offset estimation between the coordinator
/// and one agent.
struct ClockSyncResult {
  /// agent_clock - coordinator_clock, in seconds: the agent's clock reads
  /// `coordinator_now + offset_s` right now. Accurate to about rtt_s / 2
  /// under asymmetric routing; exact under symmetric delays.
  double offset_s = 0.0;
  double rtt_s = 0.0;  ///< round-trip of the best (minimum-RTT) sample
  int rounds = 0;
};

/// Coordinator side: run `rounds` probe/reply exchanges on `conn` and
/// estimate the agent's clock offset NTP-style — the reply's remote
/// timestamp is assumed to sit midway through the round trip, and the
/// minimum-RTT round wins because queueing delay only ever adds (never
/// subtracts) from the apparent offset error. The agent must be in its
/// handshake loop answering kSyncProbe with kSyncReply.
ClockSyncResult run_clock_sync(Connection& conn, int rounds = 8);

}  // namespace fs2::cluster
