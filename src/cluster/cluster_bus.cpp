#include "cluster/cluster_bus.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "cluster/aggregate_rules.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::cluster {

namespace {

/// Process-wide skew gauge: every ClusterBus mirrors its alignment-queue
/// depth here (one live bus per process in practice). Resolved once — the
/// registry lookup takes a mutex, the gauge store does not.
trace::Gauge& queued_gauge() {
  static trace::Gauge& g = trace::Registry::instance().gauge("cluster.bus.queued_samples");
  return g;
}

trace::Counter& batch_counter() {
  static trace::Counter& c = trace::Registry::instance().counter("cluster.bus.sample_batches");
  return c;
}

/// Wall time spent aligning and draining completed sample groups — the bus's
/// dominant per-batch cost, so its tail quantiles are the first thing to read
/// when coordinator ingest falls behind.
trace::Histogram& drain_hist() {
  static trace::Histogram& h = trace::Registry::instance().histogram("cluster.bus.drain_s");
  return h;
}

/// Per-node phase-begin lag behind the earliest beginner of the same phase.
/// The CSV's phase-begin-spread row keeps only min/max; the histogram keeps
/// the distribution across all nodes and phases.
trace::Histogram& spread_hist() {
  static trace::Histogram& h =
      trace::Registry::instance().histogram("cluster.phase_begin_spread_s");
  return h;
}

}  // namespace

ClusterBus::ClusterBus(std::vector<std::string> node_names) {
  nodes_.resize(node_names.size());
  for (std::size_t i = 0; i < node_names.size(); ++i)
    nodes_[i].name = std::move(node_names[i]);
}

void ClusterBus::on_channel(std::size_t node, const ChannelMsg& msg) {
  Node& n = nodes_.at(node);
  if (n.registered.size() <= msg.channel_id) {
    n.registered.resize(msg.channel_id + 1, 0);
    n.aggregate_of.resize(msg.channel_id + 1, kNoAggregate);
  }
  n.registered[msg.channel_id] = 1;

  if (const AggregateRule* rule = aggregate_rule_for(msg.name)) {
    std::size_t index = aggregates_.size();
    for (std::size_t i = 0; i < aggregates_.size(); ++i)
      if (aggregates_[i].name == rule->cluster_name) index = i;
    if (index == aggregates_.size()) {
      AggregateStream stream;
      stream.name = rule->cluster_name;
      stream.unit = rule->unit;
      stream.is_sum = rule->is_sum;
      stream.participating.assign(nodes_.size(), 0);
      stream.queues.resize(nodes_.size());
      aggregates_.push_back(std::move(stream));
    }
    if (!aggregates_[index].participating[node]) {
      aggregates_[index].participating[node] = 1;
      ++aggregates_[index].participants;
    }
    n.aggregate_of[msg.channel_id] = index;
    // Host agents register metric channels from inside the first phase
    // (sensors spin up after the begin bracket is on the wire), so a
    // stream born mid-phase must get its aggregator NOW — otherwise the
    // phase's samples would queue un-drained, emit no cluster row, and
    // contaminate the next phase. Samples published by earlier-registered
    // nodes before this one joined have already drained as smaller groups;
    // the overlap is bounded by one registration round trip.
    if (agg_phase_open_ && aggregates_[index].agg == nullptr)
      aggregates_[index].agg = std::make_unique<telemetry::StreamingAggregator>(
          agg_phase_.start_delta_s, agg_phase_.stop_delta_s);
  }
}

void ClusterBus::on_bracket(std::size_t node, const PhaseBracketMsg& msg) {
  Node& n = nodes_.at(node);
  if (msg.is_begin) {
    if (msg.phase_index != n.phases_begun)
      throw WireError(strings::format("node %s began phase %u out of order (expected %u)",
                                      n.name.c_str(), msg.phase_index, n.phases_begun));
    ++n.phases_begun;

    // A rejoined node's re-begin of its interrupted phase arrives seconds
    // after the fleet's — recovery lateness, not a lockstep straggle.
    const bool sync_exempt = msg.phase_index == n.sync_exempt_phase;
    if (sync_exempt) n.sync_exempt_phase = kNoSyncExempt;

    if (sync_.size() <= msg.phase_index) {
      PhaseSync sync;
      sync.name = msg.phase_name;
      sync.min_begin_s = sync.max_begin_s = msg.epoch_elapsed_s;
      sync.min_node = sync.max_node = n.name;
      sync.nodes = 1;
      sync_.push_back(sync);
      phase_names_.push_back(msg.phase_name);
    } else if (sync_exempt) {
      // Keep the entry's stats untouched; the re-begin still opens the
      // aggregate phase below.
    } else {
      PhaseSync& sync = sync_[msg.phase_index];
      if (msg.epoch_elapsed_s < sync.min_begin_s) {
        sync.min_begin_s = msg.epoch_elapsed_s;
        sync.min_node = n.name;
      }
      if (msg.epoch_elapsed_s > sync.max_begin_s) {
        sync.max_begin_s = msg.epoch_elapsed_s;
        sync.max_node = n.name;
      }
      ++sync.nodes;
      spread_hist().record(std::max(0.0, msg.epoch_elapsed_s - sync.min_begin_s));
    }

    if (!agg_phase_open_ && msg.phase_index == agg_phase_index_) {
      agg_phase_.name = msg.phase_name;
      agg_phase_.duration_s = msg.duration_s;
      agg_phase_.start_delta_s = msg.start_delta_s;
      agg_phase_.stop_delta_s = msg.stop_delta_s;
      agg_phase_open_ = true;
      for (AggregateStream& stream : aggregates_)
        stream.agg = std::make_unique<telemetry::StreamingAggregator>(msg.start_delta_s,
                                                                      msg.stop_delta_s);
    }
  } else {
    ++n.phases_ended;
    close_completed_phases();
  }
}

void ClusterBus::close_completed_phases() {
  while (agg_phase_open_) {
    bool all_ended = true;
    bool any = false;
    for (const Node& other : nodes_) {
      if (other.lost) continue;
      any = true;
      all_ended &= other.phases_ended > agg_phase_index_;
    }
    if (!any || !all_ended) return;
    close_aggregate_phase();
  }
}

void ClusterBus::on_node_lost(std::size_t node) {
  Node& n = nodes_.at(node);
  if (n.lost) return;
  n.lost = true;
  for (AggregateStream& stream : aggregates_) {
    if (stream.participating[node]) {
      stream.participating[node] = 0;
      --stream.participants;
    }
    queued_ -= stream.queues[node].size();
    stream.queues[node].clear();
    // Groups that were only waiting on the dead node can complete now.
    drain_aligned(stream);
  }
  queued_gauge().set(static_cast<double>(queued_));
  close_completed_phases();
}

void ClusterBus::on_node_rejoin(std::size_t node, std::uint32_t resume) {
  Node& n = nodes_.at(node);
  n.lost = false;
  n.phases_begun = resume;
  n.phases_ended = resume;
  // The re-begin of the interrupted phase (if the fleet already began it)
  // is late by the whole outage; exempt it from the lockstep spread.
  if (resume < sync_.size()) n.sync_exempt_phase = resume;
  // The dead incarnation's queued samples must not align with the fresh
  // run — a restarted agent re-publishes its interrupted phase from the top.
  for (AggregateStream& stream : aggregates_) {
    queued_ -= stream.queues[node].size();
    stream.queues[node].clear();
  }
  // Restore aggregate participation for channels the node had registered.
  // A restarted sim agent re-registers (on_channel would heal this), but a
  // surviving real agent keeps its sink and never re-sends kChannel.
  for (std::size_t ch = 0; ch < n.aggregate_of.size(); ++ch) {
    const std::size_t agg = n.aggregate_of[ch];
    if (agg == kNoAggregate || n.registered[ch] == 0) continue;
    AggregateStream& stream = aggregates_[agg];
    if (!stream.participating[node]) {
      stream.participating[node] = 1;
      ++stream.participants;
    }
  }
  queued_gauge().set(static_cast<double>(queued_));
  close_completed_phases();
}

void ClusterBus::on_samples(std::size_t node, const SampleBatchMsg& msg) {
  Node& n = nodes_.at(node);
  batch_counter().add();
  // Resolve channel and aggregate stream ONCE per batch from the flat
  // tables; the per-sample loops below are straight-line array walks.
  if (msg.channel_id >= n.registered.size() || !n.registered[msg.channel_id])
    throw WireError(strings::format("node %s sent samples on unregistered channel %u",
                                    n.name.c_str(), msg.channel_id));
  const std::size_t agg = n.aggregate_of[msg.channel_id];
  // Edge-summarized channels have no per-sample consumer here; tolerating
  // (and dropping) their batches keeps the bus usable with senders that
  // stream everything.
  if (agg == kNoAggregate) return;
  AggregateStream& stream = aggregates_[agg];
  // Single-participant stream: every group is this node's own sample, so
  // the alignment queue is a round trip to nowhere — feed the aggregator
  // directly (identical values and order; sum-of-one and max-of-one are
  // both the sample itself). Anything queued from before the phase opened
  // drains first so arrival order is preserved.
  if (stream.agg != nullptr && stream.participants == 1 && stream.participating[node]) {
    if (!stream.queues[node].empty()) drain_aligned(stream);
    stream.agg->add_batch(msg.samples.data(), msg.samples.size());
    return;
  }
  std::deque<telemetry::Sample>& queue = stream.queues[node];
  for (const telemetry::Sample& sample : msg.samples) {
    if (queue.size() >= kMaxLagSamples) {
      if (!stream.warned_lag) {
        log::warn() << "cluster: node " << n.name << " is more than " << kMaxLagSamples
                    << " samples ahead on " << stream.name
                    << "; dropping its oldest unmatched samples";
        stream.warned_lag = true;
      }
      queue.pop_front();
      --queued_;
    }
    queue.push_back(sample);
    ++queued_;
  }
  drain_aligned(stream);
  queued_gauge().set(static_cast<double>(queued_));
}

void ClusterBus::on_summary(std::size_t node, const NodeSummaryMsg& msg) {
  Node& n = nodes_.at(node);
  if (msg.phase_index >= phase_names_.size())
    throw WireError(strings::format("node %s sent a summary row for unknown phase %u",
                                    n.name.c_str(), msg.phase_index));
  metrics::Summary row;
  row.name = msg.name;
  row.unit = msg.unit;
  row.samples = msg.samples;
  row.mean = msg.mean;
  row.stddev = msg.stddev;
  row.min = msg.min;
  row.max = msg.max;
  row.p50 = msg.p50;
  row.p95 = msg.p95;
  row.p99 = msg.p99;
  row.phase = phase_names_[msg.phase_index];
  n.rows.push_back(std::move(row));
}

void ClusterBus::drain_aligned(AggregateStream& stream) {
  if (stream.agg == nullptr) return;
  TRACE_SPAN("cluster.bus.drain");
  const auto drain_begin = std::chrono::steady_clock::now();
  struct DrainTimer {
    std::chrono::steady_clock::time_point begin;
    ~DrainTimer() {
      drain_hist().record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count());
    }
  } timer{drain_begin};
  // Completed groups collect into a scratch batch and hit the aggregator
  // once — the P² updates run over a contiguous span instead of a call per
  // group.
  drain_scratch_.clear();
  for (;;) {
    // A group is complete when every PARTICIPATING node (one that
    // registered a source channel for this stream) has an unconsumed
    // sample. Non-participants (e.g. a host node without RAPL) are skipped
    // rather than stalling the whole aggregate.
    double sum = 0.0;
    double max_value = 0.0;
    double time_s = 0.0;
    bool first = true;
    bool complete = true;
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
      if (!stream.participating[node]) continue;
      if (stream.queues[node].empty()) {
        complete = false;  // group incomplete
        break;
      }
      const telemetry::Sample& sample = stream.queues[node].front();
      sum += sample.value;
      max_value = first ? sample.value : std::max(max_value, sample.value);
      time_s = first ? sample.time_s : std::max(time_s, sample.time_s);
      first = false;
    }
    if (!complete || first) break;  // incomplete, or no participants yet
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
      if (!stream.participating[node]) continue;
      stream.queues[node].pop_front();
      --queued_;
    }
    drain_scratch_.push_back(telemetry::Sample{time_s, stream.is_sum ? sum : max_value});
  }
  if (!drain_scratch_.empty())
    stream.agg->add_batch(drain_scratch_.data(), drain_scratch_.size());
}

void ClusterBus::close_aggregate_phase() {
  if (!agg_phase_open_) return;
  for (AggregateStream& stream : aggregates_) {
    drain_aligned(stream);
    // Leftover unmatched samples (count skew between nodes) are discarded
    // UNCONDITIONALLY: the next phase's alignment must not pair one
    // phase's tail with another's head.
    for (auto& queue : stream.queues) {
      queued_ -= queue.size();
      queue.clear();
    }
    queued_gauge().set(static_cast<double>(queued_));
    if (stream.agg == nullptr) continue;
    if (stream.agg->total_samples() > 0) {
      const telemetry::StreamingSummary summary = stream.agg->summarize();
      metrics::Summary row;
      row.name = stream.name;
      row.unit = stream.unit;
      row.mean = summary.mean;
      row.stddev = summary.stddev;
      row.min = summary.min;
      row.max = summary.max;
      row.p50 = summary.p50;
      row.p95 = summary.p95;
      row.p99 = summary.p99;
      row.samples = summary.samples;
      row.phase = agg_phase_.name;
      stream.rows.push_back(std::move(row));
    }
    stream.agg.reset();
  }
  agg_phase_open_ = false;
  ++agg_phase_index_;
}

void ClusterBus::finish() { close_aggregate_phase(); }

std::vector<ClusterBus::Row> ClusterBus::merged_rows() const {
  std::vector<Row> rows;
  // Phase-major grouping: campaign phase names are unique (the parser
  // rejects duplicates), so grouping per-node rows by phase name is exact.
  for (std::size_t p = 0; p < phase_names_.size(); ++p) {
    const std::string& phase = phase_names_[p];
    for (const Node& node : nodes_)
      for (const metrics::Summary& summary : node.rows)
        if (summary.phase == phase) rows.push_back(Row{summary, node.name});
    for (const AggregateStream& stream : aggregates_)
      for (const metrics::Summary& summary : stream.rows)
        if (summary.phase == phase) rows.push_back(Row{summary, "cluster"});
    // Lockstep evidence rides in the CSV: min/max are the earliest/latest
    // begin offsets since the epoch, everything else is the spread itself.
    if (p < sync_.size()) {
      const PhaseSync& sync = sync_[p];
      metrics::Summary row;
      row.name = "phase-begin-spread";
      row.unit = "s";
      row.samples = sync.nodes;
      row.mean = sync.spread_s();
      row.stddev = 0.0;
      row.min = sync.min_begin_s;
      row.max = sync.max_begin_s;
      row.p50 = row.p95 = row.p99 = sync.spread_s();
      row.phase = phase;
      rows.push_back(Row{std::move(row), "cluster"});
    }
  }
  return rows;
}

void ClusterBus::write_csv(std::ostream& out, const std::vector<Row>& rows) {
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"metric", "unit", "samples", "mean", "stddev", "min",
                                   "max", "p50", "p95", "p99", "phase", "node"});
  for (const Row& row : rows) {
    const metrics::Summary& s = row.summary;
    csv.row(std::vector<std::string>{s.name, s.unit, std::to_string(s.samples),
                                     strings::format("%.4f", s.mean),
                                     strings::format("%.4f", s.stddev),
                                     strings::format("%.4f", s.min),
                                     strings::format("%.4f", s.max),
                                     strings::format("%.4f", s.p50),
                                     strings::format("%.4f", s.p95),
                                     strings::format("%.4f", s.p99), s.phase, row.node});
  }
}

}  // namespace fs2::cluster
