#include "cluster/cluster_bus.hpp"

#include <algorithm>
#include <ostream>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::cluster {

namespace {

/// Which node channels fold into which cluster aggregate. Wall power sums
/// (facility draw); package temperature maxes (hottest node). Both the sim
/// channels and their host-metric equivalents participate, so a mixed
/// sim/host fleet still merges.
struct AggregateRule {
  const char* source;
  const char* cluster_name;
  const char* unit;
  bool is_sum;
};

constexpr AggregateRule kRules[] = {
    {"sim-wall-power", "cluster-power", "W", true},
    {"sysfs-powercap-rapl", "cluster-power", "W", true},
    {"sim-package-temp", "cluster-temp-max", "degC", false},
    {"hwmon-coretemp", "cluster-temp-max", "degC", false},
};

const AggregateRule* rule_for(const std::string& channel_name) {
  for (const AggregateRule& rule : kRules)
    if (channel_name == rule.source) return &rule;
  return nullptr;
}

}  // namespace

ClusterBus::ClusterBus(std::vector<std::string> node_names) {
  nodes_.resize(node_names.size());
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    nodes_[i].name = std::move(node_names[i]);
    nodes_[i].bus.attach(&nodes_[i].summary);
  }
}

void ClusterBus::on_channel(std::size_t node, const ChannelMsg& msg) {
  Node& n = nodes_.at(node);
  const telemetry::ChannelInfo info{
      msg.name, msg.unit,
      msg.trim_phase ? telemetry::TrimMode::kPhase : telemetry::TrimMode::kNone,
      msg.summarize != 0};
  n.channels[msg.channel_id] = n.bus.channel(info);

  if (const AggregateRule* rule = rule_for(msg.name)) {
    std::size_t index = aggregates_.size();
    for (std::size_t i = 0; i < aggregates_.size(); ++i)
      if (aggregates_[i].name == rule->cluster_name) index = i;
    if (index == aggregates_.size()) {
      AggregateStream stream;
      stream.name = rule->cluster_name;
      stream.unit = rule->unit;
      stream.is_sum = rule->is_sum;
      stream.participating.assign(nodes_.size(), 0);
      stream.queues.resize(nodes_.size());
      aggregates_.push_back(std::move(stream));
    }
    aggregates_[index].participating[node] = 1;
    n.aggregate_of[msg.channel_id] = index;
    // Host agents register metric channels from inside the first phase
    // (sensors spin up after the begin bracket is on the wire), so a
    // stream born mid-phase must get its aggregator NOW — otherwise the
    // phase's samples would queue un-drained, emit no cluster row, and
    // contaminate the next phase. Samples published by earlier-registered
    // nodes before this one joined have already drained as smaller groups;
    // the overlap is bounded by one registration round trip.
    if (agg_phase_open_ && aggregates_[index].agg == nullptr)
      aggregates_[index].agg = std::make_unique<telemetry::StreamingAggregator>(
          agg_phase_.start_delta_s, agg_phase_.stop_delta_s);
  }
}

void ClusterBus::on_bracket(std::size_t node, const PhaseBracketMsg& msg) {
  Node& n = nodes_.at(node);
  if (msg.is_begin) {
    if (msg.phase_index != n.phases_begun)
      throw WireError(strings::format("node %s began phase %u out of order (expected %u)",
                                      n.name.c_str(), msg.phase_index, n.phases_begun));
    ++n.phases_begun;
    n.bus.begin_phase(msg.phase_name, msg.duration_s, msg.start_delta_s, msg.stop_delta_s);

    if (sync_.size() <= msg.phase_index) {
      PhaseSync sync;
      sync.name = msg.phase_name;
      sync.min_begin_s = sync.max_begin_s = msg.epoch_elapsed_s;
      sync.nodes = 1;
      sync_.push_back(sync);
      phase_names_.push_back(msg.phase_name);
    } else {
      PhaseSync& sync = sync_[msg.phase_index];
      sync.min_begin_s = std::min(sync.min_begin_s, msg.epoch_elapsed_s);
      sync.max_begin_s = std::max(sync.max_begin_s, msg.epoch_elapsed_s);
      ++sync.nodes;
    }

    if (!agg_phase_open_ && msg.phase_index == agg_phase_index_) {
      agg_phase_.name = msg.phase_name;
      agg_phase_.duration_s = msg.duration_s;
      agg_phase_.start_delta_s = msg.start_delta_s;
      agg_phase_.stop_delta_s = msg.stop_delta_s;
      agg_phase_open_ = true;
      for (AggregateStream& stream : aggregates_)
        stream.agg = std::make_unique<telemetry::StreamingAggregator>(msg.start_delta_s,
                                                                      msg.stop_delta_s);
    }
  } else {
    n.bus.end_phase();
    ++n.phases_ended;
    bool all_ended = true;
    for (const Node& other : nodes_) all_ended &= other.phases_ended > agg_phase_index_;
    if (all_ended) close_aggregate_phase();
  }
}

void ClusterBus::on_samples(std::size_t node, const SampleBatchMsg& msg) {
  Node& n = nodes_.at(node);
  const auto channel = n.channels.find(msg.channel_id);
  if (channel == n.channels.end())
    throw WireError(strings::format("node %s sent samples on unregistered channel %u",
                                    n.name.c_str(), msg.channel_id));
  for (std::size_t i = 0; i < msg.times_s.size(); ++i)
    n.bus.publish(channel->second, msg.times_s[i], msg.values[i]);

  const auto agg = n.aggregate_of.find(msg.channel_id);
  if (agg == n.aggregate_of.end()) return;
  AggregateStream& stream = aggregates_[agg->second];
  std::deque<telemetry::Sample>& queue = stream.queues[node];
  for (std::size_t i = 0; i < msg.times_s.size(); ++i) {
    if (queue.size() >= kMaxLagSamples) {
      if (!stream.warned_lag) {
        log::warn() << "cluster: node " << n.name << " is more than " << kMaxLagSamples
                    << " samples ahead on " << stream.name
                    << "; dropping its oldest unmatched samples";
        stream.warned_lag = true;
      }
      queue.pop_front();
    }
    queue.push_back(telemetry::Sample{msg.times_s[i], msg.values[i]});
  }
  drain_aligned(stream);
}

void ClusterBus::drain_aligned(AggregateStream& stream) {
  if (stream.agg == nullptr) return;
  for (;;) {
    // A group is complete when every PARTICIPATING node (one that
    // registered a source channel for this stream) has an unconsumed
    // sample. Non-participants (e.g. a host node without RAPL) are skipped
    // rather than stalling the whole aggregate.
    double sum = 0.0;
    double max_value = 0.0;
    double time_s = 0.0;
    bool first = true;
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
      if (!stream.participating[node]) continue;
      if (stream.queues[node].empty()) return;  // group incomplete
      const telemetry::Sample& sample = stream.queues[node].front();
      sum += sample.value;
      max_value = first ? sample.value : std::max(max_value, sample.value);
      time_s = first ? sample.time_s : std::max(time_s, sample.time_s);
      first = false;
    }
    if (first) return;  // no participants yet
    for (std::size_t node = 0; node < nodes_.size(); ++node)
      if (stream.participating[node]) stream.queues[node].pop_front();
    stream.agg->add(time_s, stream.is_sum ? sum : max_value);
  }
}

void ClusterBus::close_aggregate_phase() {
  if (!agg_phase_open_) return;
  for (AggregateStream& stream : aggregates_) {
    drain_aligned(stream);
    // Leftover unmatched samples (count skew between nodes) are discarded
    // UNCONDITIONALLY: the next phase's alignment must not pair one
    // phase's tail with another's head.
    for (auto& queue : stream.queues) queue.clear();
    if (stream.agg == nullptr) continue;
    if (stream.agg->total_samples() > 0) {
      const telemetry::StreamingSummary summary = stream.agg->summarize();
      metrics::Summary row;
      row.name = stream.name;
      row.unit = stream.unit;
      row.mean = summary.mean;
      row.stddev = summary.stddev;
      row.min = summary.min;
      row.max = summary.max;
      row.p50 = summary.p50;
      row.p95 = summary.p95;
      row.p99 = summary.p99;
      row.samples = summary.samples;
      row.phase = agg_phase_.name;
      stream.rows.push_back(std::move(row));
    }
    stream.agg.reset();
  }
  agg_phase_open_ = false;
  ++agg_phase_index_;
}

void ClusterBus::finish() {
  close_aggregate_phase();
  for (Node& node : nodes_) node.bus.finish();
}

std::vector<ClusterBus::Row> ClusterBus::merged_rows() const {
  std::vector<Row> rows;
  // Phase-major grouping: campaign phase names are unique (the parser
  // rejects duplicates), so grouping per-node rows by phase name is exact.
  for (const std::string& phase : phase_names_) {
    for (const Node& node : nodes_)
      for (const metrics::Summary& summary : node.summary.rows())
        if (summary.phase == phase) rows.push_back(Row{summary, node.name});
    for (const AggregateStream& stream : aggregates_)
      for (const metrics::Summary& summary : stream.rows)
        if (summary.phase == phase) rows.push_back(Row{summary, "cluster"});
  }
  return rows;
}

void ClusterBus::write_csv(std::ostream& out, const std::vector<Row>& rows) {
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"metric", "unit", "samples", "mean", "stddev", "min",
                                   "max", "p50", "p95", "p99", "phase", "node"});
  for (const Row& row : rows) {
    const metrics::Summary& s = row.summary;
    csv.row(std::vector<std::string>{s.name, s.unit, std::to_string(s.samples),
                                     strings::format("%.4f", s.mean),
                                     strings::format("%.4f", s.stddev),
                                     strings::format("%.4f", s.min),
                                     strings::format("%.4f", s.max),
                                     strings::format("%.4f", s.p50),
                                     strings::format("%.4f", s.p95),
                                     strings::format("%.4f", s.p99), s.phase, row.node});
  }
}

}  // namespace fs2::cluster
