#pragma once

#include <deque>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/messages.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/sinks.hpp"

namespace fs2::cluster {

/// Coordinator-side merge hub. Per-node summary rows are aggregated at the
/// EDGE (the agent runs the same SummarySink a local run uses — identical
/// values) and arrive as kNodeSummary rows, stored verbatim; the
/// coordinator's own per-sample work is limited to the cluster-aggregate
/// streams:
///
///   cluster-power    (W)    per-sample SUM across nodes of the node's wall
///                           power channel — the facility-level draw whose
///                           p99 is what trips breakers, not any one node's
///   cluster-temp-max (degC) per-sample MAX across nodes — the hottest
///                           package anywhere in the fleet
///
/// Only channels feeding those streams (aggregate_rules.hpp) cross the
/// wire as sample batches, so coordinator ingest cost is O(aggregate
/// samples + rows), not O(fleet telemetry) — the property that lets one
/// coordinator hold hundreds of 500 Sa/s agents.
///
/// Aggregate samples align by per-phase sample index: deterministic sim
/// agents produce identical counts and timestamps per phase, and real
/// agents sample on the same cadence; the group's timestamp is the max of
/// its members'. Per-node queues are bounded — a node running far ahead
/// drops its oldest unmatched samples (warned once) rather than growing
/// without limit, keeping coordinator memory O(nodes x window).
///
/// Phase sequencing across nodes is the coordinator's barrier protocol;
/// the bus only requires that all nodes eventually bracket the same phase
/// indices in the same order.
class ClusterBus {
 public:
  /// One merged summary row: a per-node aggregate (node = node name) or a
  /// cluster aggregate (node = "cluster").
  struct Row {
    metrics::Summary summary;
    std::string node;
  };

  /// Cross-node lockstep evidence for one phase: the spread of wall-clock
  /// begin offsets (seconds since the shared epoch) across nodes, plus WHO
  /// sits at each end — tolerance failures name the straggler, not just the
  /// aggregate number.
  struct PhaseSync {
    std::string name;
    double min_begin_s = 0.0;
    double max_begin_s = 0.0;
    std::string min_node;  ///< earliest beginner
    std::string max_node;  ///< latest beginner (the straggler)
    std::size_t nodes = 0;
    double spread_s() const { return max_begin_s - min_begin_s; }
  };

  explicit ClusterBus(std::vector<std::string> node_names);

  void on_channel(std::size_t node, const ChannelMsg& msg);
  void on_bracket(std::size_t node, const PhaseBracketMsg& msg);
  void on_samples(std::size_t node, const SampleBatchMsg& msg);
  void on_summary(std::size_t node, const NodeSummaryMsg& msg);

  /// The coordinator gave up on a lost node: drop it from every aggregate
  /// (its queued samples are discarded, its participation no longer gates
  /// group completion) and close any phase that was only waiting on it.
  void on_node_lost(std::size_t node);

  /// The node rejoined and will resume at phase `resume`: rewind its
  /// bracket expectations (a restarted agent re-begins its interrupted
  /// phase; completed-but-unreported phases are credited by the
  /// coordinator), discard the dead incarnation's queued samples, and
  /// re-check aggregate close for any phase its credited ends complete.
  void on_node_rejoin(std::size_t node, std::uint32_t resume);

  /// Close the aggregate stream (after the last bracket has arrived).
  void finish();

  /// All finished rows, grouped phase-major: for each campaign phase in
  /// order, every node's rows, the cluster-aggregate rows, then one
  /// `phase-begin-spread` row (node = "cluster", min/max = begin offsets,
  /// mean/p* = the spread) promoting the PhaseSync lockstep evidence into
  /// the merged CSV. Call after finish().
  std::vector<Row> merged_rows() const;

  /// Per-phase begin-offset spreads, phase order.
  const std::vector<PhaseSync>& phase_sync() const { return sync_; }

  /// The merged measurement CSV: the standard summary columns plus a
  /// trailing `node` column.
  static void write_csv(std::ostream& out, const std::vector<Row>& rows);

  /// Queue depth cap per (node, aggregate stream): at the default 20 Sa/s
  /// this is ~7 minutes of skew between the fastest and slowest node.
  static constexpr std::size_t kMaxLagSamples = 8192;

  /// Samples currently queued across every aggregate stream and node,
  /// awaiting index alignment — bounded by nodes x streams x kMaxLagSamples
  /// (tests assert the bound). O(1): maintained incrementally and mirrored
  /// to the "cluster.bus.queued_samples" registry gauge, so the status
  /// plane reads it without touching the bus.
  std::size_t queued_samples() const { return queued_; }

 private:
  struct AggregateStream;

  /// Sentinel for the flat per-channel resolution table below.
  static constexpr std::size_t kNoAggregate = static_cast<std::size_t>(-1);

  struct Node {
    std::string name;
    /// remote channel id -> registered flag (sample batches on unknown ids
    /// are protocol errors).
    std::vector<char> registered;
    /// remote channel id -> aggregate stream index (kNoAggregate = none),
    /// flat — resolved once per batch, no associative lookups per sample.
    std::vector<std::size_t> aggregate_of;
    /// Edge-aggregated summary rows, arrival order (the agent's own
    /// SummarySink order, which is what the merged CSV preserves).
    std::vector<metrics::Summary> rows;
    std::uint32_t phases_begun = 0;
    std::uint32_t phases_ended = 0;
    bool lost = false;  ///< given up on — excluded from aggregate close
    /// One phase whose begin bracket is exempt from the lockstep spread
    /// stats: a rejoined node re-begins its interrupted phase seconds after
    /// everyone else, and that lateness is recovery, not a straggle.
    std::uint32_t sync_exempt_phase = kNoSyncExempt;
  };

  /// Sentinel: no sync-exempt phase pending.
  static constexpr std::uint32_t kNoSyncExempt =
      static_cast<std::uint32_t>(-1);

  void drain_aligned(AggregateStream& stream);
  void close_aggregate_phase();
  /// Close every aggregate phase whose gating set (non-lost nodes) has
  /// fully ended it — called when loss or rejoin changes that set.
  void close_completed_phases();

  /// One cluster-wide derived stream (sum or max across nodes).
  struct AggregateStream {
    std::string name;
    std::string unit;
    bool is_sum = true;  ///< false = max
    std::vector<char> participating;  ///< per node: registered a source channel
    std::size_t participants = 0;     ///< how many nodes participate
    std::vector<std::deque<telemetry::Sample>> queues;  ///< per node
    std::unique_ptr<telemetry::StreamingAggregator> agg; ///< current phase
    bool warned_lag = false;
    std::vector<metrics::Summary> rows;  ///< finished phase rows
  };

  std::vector<Node> nodes_;
  std::vector<AggregateStream> aggregates_;
  std::size_t queued_ = 0;  ///< sum of all alignment-queue depths
  std::vector<telemetry::Sample> drain_scratch_;  ///< completed-group batch
  std::vector<PhaseSync> sync_;
  std::vector<std::string> phase_names_;   ///< by phase index
  /// Trim deltas + duration of the currently aggregating phase (from the
  /// first begin bracket of that phase).
  telemetry::PhaseInfo agg_phase_;
  std::uint32_t agg_phase_index_ = 0;
  bool agg_phase_open_ = false;
};

}  // namespace fs2::cluster
