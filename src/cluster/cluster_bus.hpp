#pragma once

#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/messages.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/sinks.hpp"

namespace fs2::cluster {

/// Coordinator-side merge hub: replays each node's streamed telemetry
/// (channel registrations, phase brackets, sample batches) into a per-node
/// TelemetryBus + SummarySink — the exact aggregation a local run would do
/// — and additionally builds cluster-aggregate streams:
///
///   cluster-power    (W)    per-sample SUM across nodes of the node's wall
///                           power channel — the facility-level draw whose
///                           p99 is what trips breakers, not any one node's
///   cluster-temp-max (degC) per-sample MAX across nodes — the hottest
///                           package anywhere in the fleet
///
/// Aggregate samples align by per-phase sample index: deterministic sim
/// agents produce identical counts and timestamps per phase, and real
/// agents sample on the same cadence; the group's timestamp is the max of
/// its members'. Per-node queues are bounded — a node running far ahead
/// drops its oldest unmatched samples (warned once) rather than growing
/// without limit, keeping coordinator memory O(nodes x window).
///
/// Phase sequencing across nodes is the coordinator's barrier protocol;
/// the bus only requires that all nodes eventually bracket the same phase
/// indices in the same order.
class ClusterBus {
 public:
  /// One merged summary row: a per-node aggregate (node = node name) or a
  /// cluster aggregate (node = "cluster").
  struct Row {
    metrics::Summary summary;
    std::string node;
  };

  /// Cross-node lockstep evidence for one phase: the spread of wall-clock
  /// begin offsets (seconds since the shared epoch) across nodes.
  struct PhaseSync {
    std::string name;
    double min_begin_s = 0.0;
    double max_begin_s = 0.0;
    std::size_t nodes = 0;
    double spread_s() const { return max_begin_s - min_begin_s; }
  };

  explicit ClusterBus(std::vector<std::string> node_names);

  void on_channel(std::size_t node, const ChannelMsg& msg);
  void on_bracket(std::size_t node, const PhaseBracketMsg& msg);
  void on_samples(std::size_t node, const SampleBatchMsg& msg);

  /// Close every per-node bus and the aggregate stream (after the last
  /// bracket has arrived).
  void finish();

  /// All finished rows, grouped phase-major: for each campaign phase in
  /// order, every node's rows, then the cluster-aggregate rows. Call after
  /// finish().
  std::vector<Row> merged_rows() const;

  /// Per-phase begin-offset spreads, phase order.
  const std::vector<PhaseSync>& phase_sync() const { return sync_; }

  /// The merged measurement CSV: the standard summary columns plus a
  /// trailing `node` column.
  static void write_csv(std::ostream& out, const std::vector<Row>& rows);

  /// Queue depth cap per (node, aggregate stream): at the default 20 Sa/s
  /// this is ~7 minutes of skew between the fastest and slowest node.
  static constexpr std::size_t kMaxLagSamples = 8192;

 private:
  struct AggregateStream;

  struct Node {
    std::string name;
    telemetry::TelemetryBus bus;
    telemetry::SummarySink summary;
    /// remote channel id -> local bus channel id
    std::map<std::uint32_t, telemetry::ChannelId> channels;
    /// remote channel id -> aggregate stream index (nullopt = not aggregated)
    std::map<std::uint32_t, std::size_t> aggregate_of;
    std::uint32_t phases_begun = 0;
    std::uint32_t phases_ended = 0;
  };

  void drain_aligned(AggregateStream& stream);
  void close_aggregate_phase();

  /// One cluster-wide derived stream (sum or max across nodes).
  struct AggregateStream {
    std::string name;
    std::string unit;
    bool is_sum = true;  ///< false = max
    std::vector<char> participating;  ///< per node: registered a source channel
    std::vector<std::deque<telemetry::Sample>> queues;  ///< per node
    std::unique_ptr<telemetry::StreamingAggregator> agg; ///< current phase
    bool warned_lag = false;
    std::vector<metrics::Summary> rows;  ///< finished phase rows
  };

  std::vector<Node> nodes_;
  std::vector<AggregateStream> aggregates_;
  std::vector<PhaseSync> sync_;
  std::vector<std::string> phase_names_;   ///< by phase index
  /// Trim deltas + duration of the currently aggregating phase (from the
  /// first begin bracket of that phase).
  telemetry::PhaseInfo agg_phase_;
  std::uint32_t agg_phase_index_ = 0;
  bool agg_phase_open_ = false;
};

}  // namespace fs2::cluster
