#include "cluster/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>

#include "cluster/clock_sync.hpp"
#include "cluster/exposition.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fs2::cluster {

Coordinator::Coordinator(Options options)
    : options_(std::move(options)),
      listener_(options_.port, options_.loopback_only),
      phase_end_counts_(options_.phase_count, 0),
      phase_released_(options_.phase_count, 0),
      phase_barrier_open_s_(options_.phase_count, 0.0) {
  if (options_.nodes == 0) throw ConfigError("--coordinator: --nodes must be >= 1");
  if (options_.phase_count == 0)
    throw ConfigError("--coordinator: the campaign has no phases");
  if (!options_.per_node_campaigns.empty() &&
      options_.per_node_campaigns.size() != options_.nodes)
    throw ConfigError(
        strings::format("coordinator: %zu per-node campaigns for %zu nodes",
                        options_.per_node_campaigns.size(), options_.nodes));
  if (options_.budget) {
    if (options_.budget->variable != control::ControlVariable::kClusterPower)
      throw ConfigError("--coordinator: --target must be cluster-power=WATTS");
    apportioner_ = std::make_unique<control::BudgetApportioner>(options_.budget->value,
                                                                options_.nodes);
  }
  // Run-unique campaign id: the seed alone would collide across repeated
  // runs of the same spec, which is exactly when a zombie agent from the
  // previous run might still be retrying its rejoin.
  std::uint64_t id_state =
      options_.seed ^ static_cast<std::uint64_t>(local_clock_s() * 1e6);
  campaign_id_ = splitmix64(id_state);
}

void Coordinator::accept_and_handshake(std::ostream& log) {
  nodes_.reserve(options_.nodes);
  // Sockets accepted but not yet past hello. The old loop did one blocking
  // 10 s recv per accepted socket, so a single silent client stalled the
  // whole fleet's admission behind it (head-of-line). Now the listener and
  // every pending socket are polled together: a slow, silent, or garbage
  // client burns only its own hello window while agents behind it are
  // admitted; when its window expires the socket is dropped, not the run.
  struct PendingConn {
    Connection conn;
    double deadline_s = 0.0;
  };
  constexpr double kHelloWindowS = 10.0;
  std::vector<PendingConn> pending;
  // Progress-based overall deadline, matching the old per-accept semantics:
  // a coordinator told to expect N nodes fails loudly when the NEXT agent
  // never dials in, not after N quiet windows stack up.
  double accept_deadline_s = local_clock_s() + options_.accept_timeout_s;
  while (nodes_.size() < options_.nodes) {
    std::vector<pollfd> fds;
    fds.reserve(pending.size() + 1);
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    for (const PendingConn& p : pending) fds.push_back(pollfd{p.conn.fd(), POLLIN, 0});
    double wait_s = accept_deadline_s - local_clock_s();
    for (const PendingConn& p : pending)
      wait_s = std::min(wait_s, p.deadline_s - local_clock_s());
    const int timeout_ms =
        static_cast<int>(std::clamp(wait_s, 0.0, 600.0) * 1000.0) + 1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error("cluster: poll failed during handshake");
    }
    const double now = local_clock_s();
    if (fds[0].revents & POLLIN)
      pending.push_back(PendingConn{listener_.accept(1.0), now + kHelloWindowS});

    std::size_t fd_index = 1;  // fds[0] is the listener
    for (std::size_t p = 0; p < pending.size() && nodes_.size() < options_.nodes;) {
      // fds[fd_index] pairs with the pending entry in pre-poll order;
      // erasing consumes the slot, so the index advances once per visited
      // entry either way. Sockets admitted by the accept above sit past the
      // end of fds (no pollfd yet) and simply wait a turn.
      const bool readable =
          fd_index < fds.size() && (fds[fd_index].revents & (POLLIN | POLLHUP | POLLERR));
      ++fd_index;
      if (!readable) {
        if (now < pending[p].deadline_s) {
          ++p;
          continue;
        }
        log::warn() << "cluster: dropping connection that never said hello within "
                    << kHelloWindowS << " s";
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(p));
        continue;
      }
      Connection conn = std::move(pending[p].conn);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(p));
      try {
        const std::size_t i = nodes_.size();
        // An HTTP scraper may probe while the fleet is still assembling; its
        // "GET " would parse as an absurd frame length and kill the accept
        // loop. Route it off before framing, like the mid-run listener path.
        if (peek_is_http_get(conn.fd(), /*timeout_s=*/1.0)) {
          serve_http_client(std::move(conn), render_exposition(),
                            detector_.fleet_healthy());
          continue;
        }
        const auto frame = conn.recv(/*timeout_s=*/2.0);
        if (!frame || frame->type != MessageType::kHello) {
          // Status probes may land while the fleet is still assembling;
          // answer with what is known so far and keep waiting for real
          // agents — the probe must not consume a --nodes slot.
          if (frame && frame->type == MessageType::kStatusRequest) {
            serve_status_client(std::move(conn), /*accepting=*/true);
            continue;
          }
          throw WireError("first frame was not a hello");
        }
        WireReader reader(frame->payload);
        const HelloMsg hello = HelloMsg::decode(reader);
        if (hello.version != kProtocolVersion)
          throw WireError(strings::format("node '%s' speaks protocol %u, need %u",
                                          hello.node_name.c_str(), hello.version,
                                          kProtocolVersion));
        Node node;
        node.conn = std::move(conn);
        node.info.name = hello.node_name.empty() ? strings::format("node-%zu", i)
                                                 : hello.node_name;
        // Names key the merged CSV's node column; make collisions unambiguous.
        for (const Node& other : nodes_)
          if (other.info.name == node.info.name)
            node.info.name += strings::format("#%zu", i);
        node.info.sku = hello.sku;

        const ClockSyncResult sync = run_clock_sync(node.conn);
        node.info.clock_offset_s = sync.offset_s;
        node.info.rtt_s = sync.rtt_s;
        log << strings::format("node %s (%s): clock offset %+.1f us, rtt %.1f us\n",
                               node.info.name.c_str(), node.info.sku.c_str(),
                               sync.offset_s * 1e6, sync.rtt_s * 1e6);
        log::debug() << "cluster: handshake " << log::kv("node", node.info.name) << ' '
                     << log::kv("sku", node.info.sku) << ' '
                     << log::kv("offset_us", sync.offset_s * 1e6) << ' '
                     << log::kv("rtt_us", sync.rtt_s * 1e6);
        nodes_.push_back(std::move(node));
        accept_deadline_s = local_clock_s() + options_.accept_timeout_s;
      } catch (const WireError& e) {
        // A malformed or wrong-version client costs itself the socket, never
        // the fleet: real agents keep being admitted around it.
        log::warn() << "cluster: dropping bad handshake connection: " << e.what();
      }
    }
    if (nodes_.size() < options_.nodes && local_clock_s() >= accept_deadline_s)
      throw Error(strings::format(
          "cluster: accepted %zu of %zu nodes, none arrived for %.0f s",
          nodes_.size(), options_.nodes, options_.accept_timeout_s));
  }

  std::vector<std::string> names;
  for (const Node& node : nodes_) names.push_back(node.info.name);
  bus_ = std::make_unique<ClusterBus>(std::move(names));

  AnomalyDetector::Options detect;
  detect.metrics_interval_s = options_.metrics_interval_s;
  detect.sync_tolerance_s = options_.sync_tolerance_s;
  if (options_.budget)
    detect.divergence_band = std::max(0.05, 2.0 * options_.budget->band);
  detector_ = AnomalyDetector(detect, nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    detector_.set_node_name(i, nodes_[i].info.name);
  metrics_.resize(nodes_.size());
}

void Coordinator::distribute_campaign() {
  CampaignMsg msg;
  msg.campaign_id = campaign_id_;
  msg.has_budget = apportioner_ ? 1 : 0;
  msg.initial_setpoint_w = apportioner_ ? apportioner_->initial_share_w() : 0.0;
  msg.ctl_interval_s = options_.ctl_interval_s;
  msg.budget_interval_s = options_.budget ? options_.budget->interval_s : 0.5;
  msg.budget_band = options_.budget ? options_.budget->band : 0.02;
  msg.trace_enabled = options_.trace ? 1 : 0;
  msg.metrics_interval_s = options_.metrics_interval_s;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    msg.campaign_text = options_.per_node_campaigns.empty()
                            ? options_.campaign_text
                            : options_.per_node_campaigns[i];
    nodes_[i].conn.send(msg.encode());
  }
}

void Coordinator::announce_epoch(std::ostream& log) {
  const double t0_coord = local_clock_s() + options_.start_delay_s;
  for (Node& node : nodes_) {
    EpochMsg epoch;
    epoch.t0_agent_s = t0_coord + node.info.clock_offset_s;
    epoch.offset_s = node.info.clock_offset_s;
    epoch.rtt_s = node.info.rtt_s;
    node.conn.send(epoch.encode());
  }
  epoch_local_s_ = t0_coord;
  log << strings::format("epoch: T0 in %.2f s, %zu nodes in lockstep\n",
                         options_.start_delay_s, nodes_.size());
  log::info() << "cluster: epoch announced " << log::kv("nodes", nodes_.size()) << ' '
              << log::kv("start_delay_s", options_.start_delay_s);
  trace::FlightRecorder::instance().note_event(
      strings::format("epoch announced: %zu nodes, start delay %.2fs", nodes_.size(),
                      options_.start_delay_s));
}

std::size_t Coordinator::alive_nodes() const {
  std::size_t alive = 0;
  for (const Node& node : nodes_)
    if (!node.lost) ++alive;
  return alive;
}

std::size_t Coordinator::voting_nodes() const {
  std::size_t voting = 0;
  for (const Node& node : nodes_)
    if (!node.given_up) ++voting;
  return voting;
}

double Coordinator::epoch_elapsed_s() const {
  return epoch_local_s_ > 0.0 ? local_clock_s() - epoch_local_s_ : 0.0;
}

void Coordinator::record_budget_phase(std::uint32_t phase_index) {
  if (!apportioner_) return;
  PhaseBudgetVerdict verdict;
  verdict.phase = phase_index < bus_->phase_sync().size()
                      ? bus_->phase_sync()[phase_index].name
                      : strings::format("phase%u", phase_index + 1);
  verdict.trailing_total_w = apportioner_->trailing_total_w();
  verdict.converged = apportioner_->converged(options_.budget->band);
  result_.budget_converged &= verdict.converged;
  result_.budget_phases.push_back(std::move(verdict));
  apportioner_->begin_window();
}

void Coordinator::handle_frame(std::size_t index, const Frame& frame, std::ostream& log) {
  Node& node = nodes_[index];
  WireReader reader(frame.payload);
  switch (frame.type) {
    case MessageType::kChannel:
      bus_->on_channel(index, ChannelMsg::decode(reader));
      break;
    case MessageType::kSampleBatch:
      // Scratch message: the sample vector's capacity survives across
      // batches, so steady-state decode is a bounds check plus one memcpy.
      SampleBatchMsg::decode_into(reader, batch_scratch_);
      bus_->on_samples(index, batch_scratch_);
      break;
    case MessageType::kNodeSummary:
      bus_->on_summary(index, NodeSummaryMsg::decode(reader));
      break;
    case MessageType::kPhaseBracket: {
      const PhaseBracketMsg bracket = PhaseBracketMsg::decode(reader);
      bus_->on_bracket(index, bracket);
      if (bracket.is_begin) {
        ++node.phases_begun;
      } else {
        ++node.phases_ended;
        if (bracket.phase_index >= phase_end_counts_.size())
          throw WireError(strings::format("node %s ended unknown phase %u",
                                          node.info.name.c_str(), bracket.phase_index));
        // The barrier span opens when the first node finishes the phase and
        // closes when the straggler arrives and the fleet is released — its
        // width IS the coordinator-side wait.
        if (phase_end_counts_[bracket.phase_index] == 0)
          phase_barrier_open_s_[bracket.phase_index] = local_clock_s();
        ++phase_end_counts_[bracket.phase_index];
        maybe_release_phase(bracket.phase_index, log);
      }
      break;
    }
    case MessageType::kBudgetReport: {
      TRACE_SPAN("cluster.budget_exchange");
      const BudgetReportMsg report = BudgetReportMsg::decode(reader);
      if (!apportioner_)
        throw WireError("cluster: budget report without a cluster-power target");
      BudgetAssignMsg assign;
      assign.seq = report.seq;
      assign.setpoint_w = apportioner_->on_report(index, report.achieved_w);
      node.conn.send(assign.encode());
      node.achieved_w = report.achieved_w;
      node.setpoint_w = assign.setpoint_w;
      node.level = report.level;
      detector_.on_budget_report(index, report.achieved_w, report.setpoint_w,
                                 epoch_elapsed_s());
      break;
    }
    case MessageType::kMetricUpdate: {
      const MetricUpdateMsg msg = MetricUpdateMsg::decode(reader);
      const double now = epoch_elapsed_s();
      metrics_.fold(index, msg, now);
      detector_.on_metric_update(index, now);
      break;
    }
    case MessageType::kFlightRecord: {
      const FlightRecordMsg msg = FlightRecordMsg::decode(reader);
      log::warn() << "cluster: flight record received "
                  << log::kv("node", node.info.name) << ' '
                  << log::kv("reason", msg.reason);
      log << strings::format("node %s shipped a flight record (%s)\n",
                             node.info.name.c_str(), msg.reason.c_str());
      trace::FlightRecorder::instance().note_event(
          "flight record from node " + node.info.name + " (" + msg.reason + "):\n" +
          msg.dump);
      trace::FlightRecorder::instance().dump("node " + node.info.name +
                                             " abnormal exit: " + msg.reason);
      break;
    }
    case MessageType::kTraceSpans: {
      TraceSpansMsg msg = TraceSpansMsg::decode(reader);
      if (msg.dropped > 0)
        log::warn() << "trace: node " << node.info.name << " dropped " << msg.dropped
                    << " spans on a full ring";
      trace_.add_node(node.info.name, node.info.clock_offset_s);
      trace_.add_spans(node.info.name, std::move(msg.spans));
      break;
    }
    case MessageType::kCounterSnapshot: {
      CounterSnapshotMsg msg = CounterSnapshotMsg::decode(reader);
      trace_.add_node(node.info.name, node.info.clock_offset_s);
      trace_.add_counters(node.info.name, std::move(msg.counters));
      break;
    }
    case MessageType::kVerdict: {
      const VerdictMsg verdict = VerdictMsg::decode(reader);
      node.info.converged = verdict.converged != 0;
      node.info.verdict_detail = verdict.detail;
      if (!node.verdict_received) {
        node.verdict_received = true;
        ++verdicts_;
        detector_.on_node_done(index);
      }
      result_.nodes_converged &= node.info.converged;
      log << "node " << node.info.name << ": "
          << (node.info.converged ? "converged" : "NOT converged");
      if (!verdict.detail.empty()) log << " (" << verdict.detail << ")";
      log << "\n";
      break;
    }
    default:
      throw WireError(strings::format("cluster: unexpected %s from node %s",
                                      to_string(frame.type), node.info.name.c_str()));
  }
}

void Coordinator::maybe_release_phase(std::uint32_t phase_index, std::ostream& log) {
  if (phase_index >= phase_released_.size() || phase_released_[phase_index]) return;
  // Barrier condition: every VOTING node has ended the phase. A lost node
  // inside its rejoin grace window still votes — the fleet holds for a node
  // that may come back, so a rejoined node contributes to every remaining
  // phase. Only a given-up node's vote is waived. If nobody ended the phase
  // yet there is nothing to release (0 == 0 must not fire before the phase
  // even ran).
  if (phase_end_counts_[phase_index] == 0) return;
  if (phase_end_counts_[phase_index] < voting_nodes()) return;
  phase_released_[phase_index] = 1;
  if (trace::Tracer::enabled())
    trace::Tracer::record("cluster.phase_barrier", phase_barrier_open_s_[phase_index],
                          local_clock_s());
  // Straggler check at barrier close, while the spread is fresh.
  if (bus_ && phase_index < bus_->phase_sync().size()) {
    const ClusterBus::PhaseSync& sync = bus_->phase_sync()[phase_index];
    if (sync.nodes >= 2)
      detector_.on_phase_spread(sync.name, sync.max_node, sync.spread_s(),
                                epoch_elapsed_s());
  }
  process_new_alerts(log);
  // The fleet finished this phase: close the budget window and, unless it
  // was the last phase, release the next one.
  record_budget_phase(phase_index);
  if (phase_index + 1 < options_.phase_count) {
    PhaseGoMsg go;
    go.phase_index = phase_index + 1;
    for (Node& n : nodes_)
      if (!n.lost && n.conn.valid()) n.conn.send(go.encode());
  }
}

void Coordinator::mark_node_lost(std::size_t index, const std::string& why,
                                 std::ostream& log) {
  Node& node = nodes_[index];
  if (node.lost) return;
  node.lost = true;
  node.lost_since_s = local_clock_s();
  node.lost_why = why;
  node.conn.close();
  log << strings::format("node %s LOST mid-campaign (%s) — rejoin window %.1fs open\n",
                         node.info.name.c_str(), why.c_str(), options_.rejoin_grace_s);
  log::warn() << "cluster: node lost " << log::kv("node", node.info.name) << ' '
              << log::kv("phase", node.phases_ended) << ' '
              << log::kv("reason", why);
  detector_.on_node_lost(index, why, epoch_elapsed_s());
  // The dead node's budget share flows to the survivors NOW, not at the
  // next phase boundary: its stale achieved sample stops counting and
  // every survivor's next report sees the smaller denominator. The
  // convergence window restarts too — the phase is judged on the fleet
  // composition it ends with, not on totals that straddle the loss.
  if (apportioner_) {
    apportioner_->on_node_lost(index);
    apportioner_->begin_window();
  }
  trace::FlightRecorder::instance().note_event(
      strings::format("node %s lost at t=%.2fs: %s", node.info.name.c_str(),
                      epoch_elapsed_s(), why.c_str()));
  process_new_alerts(log);
  if (options_.rejoin_grace_s <= 0.0) give_up_node(index, log);
}

void Coordinator::give_up_node(std::size_t index, std::ostream& log) {
  Node& node = nodes_[index];
  if (node.given_up) return;
  node.given_up = true;
  node.info.converged = false;
  node.info.verdict_detail = "node lost: " + node.lost_why;
  result_.nodes_converged = false;
  if (!node.verdict_received) {
    node.verdict_received = true;
    ++verdicts_;
  }
  log << strings::format("node %s given up (%s) — continuing with %zu nodes\n",
                         node.info.name.c_str(), node.lost_why.c_str(), voting_nodes());
  log::warn() << "cluster: node given up " << log::kv("node", node.info.name) << ' '
              << log::kv("reason", node.lost_why);
  // A given-up node can no longer vote: drop it from the aggregate gate and
  // re-check every pending barrier so the survivors aren't wedged waiting
  // for its end brackets.
  if (bus_) bus_->on_node_lost(index);
  for (std::uint32_t p = 0; p < phase_end_counts_.size(); ++p)
    maybe_release_phase(p, log);
  trace::FlightRecorder::instance().dump("node " + node.info.name +
                                         " lost: " + node.lost_why);
}

void Coordinator::sweep_rejoin_grace(std::ostream& log) {
  const double now = local_clock_s();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.lost && !node.given_up &&
        now - node.lost_since_s >= options_.rejoin_grace_s)
      give_up_node(i, log);
  }
}

void Coordinator::handle_rejoin(Connection client, const RejoinMsg& msg,
                                std::ostream& log) {
  const auto refuse = [&](const std::string& why) {
    log::warn() << "cluster: rejoin refused " << log::kv("node", msg.node_name) << ' '
                << log::kv("why", why);
    RejoinAckMsg ack;
    ack.accepted = 0;
    ack.detail = why;
    client.send(ack.encode());
  };
  if (msg.version != kProtocolVersion) {
    refuse(strings::format("protocol %u, need %u", msg.version, kProtocolVersion));
    return;
  }
  if (msg.campaign_id != campaign_id_) {
    refuse("campaign id mismatch (agent from another run?)");
    return;
  }
  std::size_t index = nodes_.size();
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].info.name == msg.node_name) index = i;
  if (index == nodes_.size()) {
    refuse("unknown node name");
    return;
  }
  Node& node = nodes_[index];
  if (node.given_up) {
    refuse(strings::format("rejoin window (%.1fs) expired", options_.rejoin_grace_s));
    return;
  }
  if (node.verdict_received) {
    refuse("verdict already recorded");
    return;
  }
  if (!node.lost) {
    // Double-rejoin: a fresh socket for a node we still believe connected
    // means the old connection is dead on the agent's side (half-open TCP).
    // Latest wins — drop the stale socket so exactly one stays live.
    log::warn() << "cluster: node " << node.info.name
                << " rejoined over a live connection; replacing the stale socket";
    node.conn.close();
  }
  // The agent may have completed phases whose end brackets never survived
  // the wire; its own count is proof of completion, so credit the missing
  // barrier votes rather than making it re-run work the fleet would then
  // double-count.
  const std::uint32_t prev_ended = node.phases_ended;
  const std::uint32_t resume =
      std::min(static_cast<std::uint32_t>(options_.phase_count),
               std::max(prev_ended, msg.phases_ended));

  // Replay the admission sequence on the fresh socket BEFORE flipping any
  // coordinator state: if the rejoiner dies mid-handshake the node simply
  // stays lost, with its grace window still ticking.
  RejoinAckMsg ack;
  ack.accepted = 1;
  ack.resume_phase = resume;
  client.send(ack.encode());
  const ClockSyncResult sync = run_clock_sync(client);
  CampaignMsg campaign;
  campaign.campaign_id = campaign_id_;
  campaign.has_budget = apportioner_ ? 1 : 0;
  // The node is still marked lost here (it holds no share); on admission the
  // whole live set is re-seeded equal, so the equal share IS its setpoint.
  campaign.initial_setpoint_w = apportioner_ ? apportioner_->initial_share_w() : 0.0;
  campaign.ctl_interval_s = options_.ctl_interval_s;
  campaign.budget_interval_s = options_.budget ? options_.budget->interval_s : 0.5;
  campaign.budget_band = options_.budget ? options_.budget->band : 0.02;
  campaign.trace_enabled = options_.trace ? 1 : 0;
  campaign.metrics_interval_s = options_.metrics_interval_s;
  campaign.campaign_text = options_.per_node_campaigns.empty()
                               ? options_.campaign_text
                               : options_.per_node_campaigns[index];
  client.send(campaign.encode());
  // The ORIGINAL epoch re-expressed through the fresh clock sync: the
  // rejoined node lands on the same shared timeline as everyone else.
  EpochMsg epoch;
  epoch.t0_agent_s = epoch_local_s_ + sync.offset_s;
  epoch.offset_s = sync.offset_s;
  epoch.rtt_s = sync.rtt_s;
  client.send(epoch.encode());
  // If the go for its resume phase fired while it was away, replay it —
  // the node would otherwise wait for a broadcast that already happened.
  if (resume > 0 && resume < options_.phase_count && phase_released_[resume - 1]) {
    PhaseGoMsg go;
    go.phase_index = resume;
    client.send(go.encode());
  }

  // Wire sequence survived — flip the node back to alive.
  node.conn = std::move(client);
  node.lost = false;
  node.lost_why.clear();
  node.phases_begun = resume;
  node.phases_ended = resume;
  node.info.clock_offset_s = sync.offset_s;
  node.info.rtt_s = sync.rtt_s;
  ++node.info.rejoins;
  fds_stale_ = true;
  for (std::uint32_t p = prev_ended; p < resume; ++p) {
    if (phase_end_counts_[p] == 0) phase_barrier_open_s_[p] = local_clock_s();
    ++phase_end_counts_[p];
  }
  bus_->on_node_rejoin(index, resume);
  // Re-seed shares equal across the grown fleet and restart the window:
  // budget convergence is judged on the composition the phase ends with.
  if (apportioner_) {
    apportioner_->on_node_rejoin(index);
    apportioner_->begin_window();
  }
  detector_.on_node_recovered(index, epoch_elapsed_s());
  trace::Registry::instance().counter("coordinator.rejoins").add();
  log << strings::format("node %s REJOINED at phase %u (rejoin #%u)\n",
                         node.info.name.c_str(), resume, node.info.rejoins);
  log::info() << "cluster: node rejoined " << log::kv("node", node.info.name) << ' '
              << log::kv("resume_phase", resume) << ' '
              << log::kv("rejoins", node.info.rejoins) << ' '
              << log::kv("offset_us", sync.offset_s * 1e6);
  trace::FlightRecorder::instance().note_event(
      strings::format("node %s rejoined at t=%.2fs, resuming phase %u",
                      node.info.name.c_str(), epoch_elapsed_s(), resume));
  process_new_alerts(log);
  // Credited end brackets may have completed pending barriers.
  for (std::uint32_t p = prev_ended; p < resume; ++p) maybe_release_phase(p, log);
}

void Coordinator::process_new_alerts(std::ostream& log) {
  for (Alert& alert : detector_.take_new()) {
    log << strings::format("ALERT [%s] node=%s %s\n", alert.kind.c_str(),
                           alert.node.empty() ? "-" : alert.node.c_str(),
                           alert.detail.c_str());
    log::warn() << "cluster: alert " << log::kv("kind", alert.kind) << ' '
                << log::kv("node", alert.node) << ' '
                << log::kv("t_s", alert.t_s) << ' ' << alert.detail;
    trace::FlightRecorder::instance().note_alert(
        strings::format("t=%.2fs [%s] node=%s %s", alert.t_s, alert.kind.c_str(),
                        alert.node.c_str(), alert.detail.c_str()));
    if (options_.trace) {
      // Zero-width span in the merged timeline at the moment the detector
      // fired — alerts land between the spans they explain.
      const double t = epoch_local_s_ + alert.t_s;
      trace_.add_span("coordinator",
                      trace::Span{"alert:" + alert.kind + ":" + alert.node, t, t});
    }
    result_.alerts.push_back(std::move(alert));
  }
}

std::string Coordinator::render_exposition() const {
  std::vector<ExpositionNode> rows;
  rows.reserve(nodes_.size());
  const double now = epoch_elapsed_s();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    ExpositionNode row;
    row.name = node.info.name;
    row.lost = node.lost;
    row.phases_begun = node.phases_begun;
    row.phases_ended = node.phases_ended;
    row.clock_offset_s = node.info.clock_offset_s;
    row.clock_rtt_s = node.info.rtt_s;
    row.achieved_w = node.achieved_w;
    row.setpoint_w = node.setpoint_w;
    row.level = node.level;
    row.metrics_age_s = metrics_.age_s(i, now);
    row.rejoins = node.info.rejoins;
    rows.push_back(std::move(row));
  }
  return render_metrics(trace::Registry::instance().snapshot(),
                        trace::Registry::instance().histogram_snapshots(), metrics_,
                        rows, detector_.alerts().size(), detector_.fleet_healthy());
}

void Coordinator::serve_listener_client(std::ostream& log) {
  try {
    Connection client = listener_.accept(/*timeout_s=*/1.0);
    // Route by the first bytes: an HTTP scraper starts with "GET ", a
    // framed client with a length prefix. Peeking consumes nothing, so
    // the framed path below still reads a whole frame.
    if (peek_is_http_get(client.fd(), /*timeout_s=*/2.0)) {
      trace::Registry::instance().counter("coordinator.http_requests").add();
      serve_http_client(std::move(client), render_exposition(),
                        detector_.fleet_healthy());
      return;
    }
    const auto request = client.recv(/*timeout_s=*/2.0);
    if (request && request->type == MessageType::kStatusRequest) {
      serve_status_client(std::move(client), /*accepting=*/false);
    } else if (request && request->type == MessageType::kRejoin) {
      WireReader reader(request->payload);
      handle_rejoin(std::move(client), RejoinMsg::decode(reader), log);
    }
  } catch (const Error&) {
    // Broken probes, scrapers, and half-dead rejoiners never take the
    // campaign down.
  }
}

StatusReplyMsg Coordinator::build_status(bool accepting) const {
  StatusReplyMsg reply;
  reply.accepting = accepting ? 1 : 0;
  reply.nodes_expected = static_cast<std::uint32_t>(options_.nodes);
  reply.phase_count = static_cast<std::uint32_t>(options_.phase_count);
  reply.queued_samples = bus_ ? bus_->queued_samples() : 0;
  reply.budget_w = options_.budget ? options_.budget->value : 0.0;
  reply.fleet_healthy = detector_.fleet_healthy() ? 1 : 0;
  const double now = epoch_elapsed_s();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    StatusNodeRec rec;
    rec.name = node.info.name;
    rec.sku = node.info.sku;
    rec.connected = node.conn.valid() ? 1 : 0;
    rec.phases_begun = node.phases_begun;
    rec.phases_ended = node.phases_ended;
    rec.clock_offset_s = node.info.clock_offset_s;
    rec.clock_rtt_s = node.info.rtt_s;
    rec.achieved_w = node.achieved_w;
    rec.setpoint_w = node.setpoint_w;
    rec.level = node.level;
    rec.lost = node.lost ? 1 : 0;
    rec.last_metrics_age_s = metrics_.age_s(i, now);
    rec.rejoins = node.info.rejoins;
    reply.nodes.push_back(std::move(rec));
  }
  if (bus_) {
    for (const ClusterBus::PhaseSync& sync : bus_->phase_sync()) {
      StatusSpreadRec rec;
      rec.phase = sync.name;
      rec.min_node = sync.min_node;
      rec.max_node = sync.max_node;
      rec.min_begin_s = sync.min_begin_s;
      rec.max_begin_s = sync.max_begin_s;
      rec.nodes = static_cast<std::uint32_t>(sync.nodes);
      reply.spreads.push_back(std::move(rec));
    }
  }
  reply.counters = trace::Registry::instance().snapshot();
  for (const Alert& alert : detector_.alerts()) {
    StatusAlertRec rec;
    rec.kind = alert.kind;
    rec.node = alert.node;
    rec.detail = alert.detail;
    rec.t_s = alert.t_s;
    reply.alerts.push_back(std::move(rec));
  }
  return reply;
}

void Coordinator::serve_status_client(Connection conn, bool accepting) {
  try {
    conn.send(build_status(accepting).encode());
  } catch (const Error&) {
    // A probe that vanishes mid-reply is its own problem.
  }
  conn.close();
}

void Coordinator::event_loop(std::ostream& log) {
  // The pollfd set is sized after the handshake, built once and reused; a
  // LOST node's slot is parked at fd -1, which poll(2) ignores, and a
  // REJOIN swaps in a fresh socket (fds_stale_ forces a rebuild). One
  // scratch frame serves every receive — the loop allocates nothing per
  // frame. The last slot watches the listener: status clients, HTTP
  // scrapers, and rejoining agents connect mid-campaign.
  std::vector<pollfd> fds;
  const auto rebuild_fds = [&] {
    fds.clear();
    fds.reserve(nodes_.size() + 1);
    for (const Node& node : nodes_)
      fds.push_back(pollfd{node.lost ? -1 : node.conn.fd(), POLLIN, 0});
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    fds_stale_ = false;
  };
  rebuild_fds();
  Frame frame;
  trace::Registry& registry = trace::Registry::instance();
  trace::Counter& frames = registry.counter("coordinator.frames");
  trace::Counter& wakeups = registry.counter("coordinator.poll_wakeups");
  trace::Counter& probes = registry.counter("coordinator.status_probes");
  trace::Counter& metric_updates = registry.counter("coordinator.metric_updates");
  trace::Histogram& rx_bytes = registry.histogram("coordinator.rx_frame_bytes");

  // Poll tick: half the metrics interval so flat-line detection reacts
  // within one interval of the deadline, bounded below so an aggressive
  // interval doesn't busy-spin the loop. 600 s stays the hard stall guard
  // when the metrics plane is off.
  const bool live_metrics = options_.metrics_interval_s > 0.0;
  const int tick_ms =
      live_metrics
          ? std::clamp(static_cast<int>(options_.metrics_interval_s * 500.0), 50, 600000)
          : 600000;
  double last_traffic_s = local_clock_s();
  double last_sweep_s = local_clock_s();

  while (verdicts_ < nodes_.size()) {
    if (fds_stale_) rebuild_fds();
    // A lost node's grace window must expire on time even when the metrics
    // plane is off (tick_ms = 600 s): bound the wait while any window is
    // open.
    int timeout_ms = tick_ms;
    for (const Node& node : nodes_)
      if (node.lost && !node.given_up) timeout_ms = std::min(timeout_ms, 50);
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error("cluster: poll failed");
    }
    const double now = local_clock_s();
    sweep_rejoin_grace(log);
    if (ready == 0 && now - last_traffic_s > 600.0) {
      // A generous stall guard, not a pacing interval: agents push traffic
      // continuously while phases run. Preserve the evidence before dying.
      trace::FlightRecorder::instance().dump("fleet stalled: no traffic for 600 s");
      throw Error("cluster: no agent traffic for 600 s — fleet stalled");
    }
    if (ready > 0) {
      last_traffic_s = now;
      wakeups.add();
      TRACE_SPAN("coordinator.wakeup");
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].lost || !(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        fds[i].revents = 0;
        // Drain everything this node has ready before re-polling: a
        // streaming agent delivers many frames per wakeup, and poll() per
        // frame would make the syscall, not the merge, the bottleneck. A
        // node whose socket dies mid-drain is marked lost and the campaign
        // continues with the survivors — a crash is an observable outcome
        // now, not a fleet-wide abort.
        try {
          if (!nodes_[i].conn.recv_into(frame, /*timeout_s=*/10.0))
            throw WireError("stalled mid-frame");
          rx_bytes.record(static_cast<double>(frame.payload.size()));
          if (frame.type == MessageType::kMetricUpdate) metric_updates.add();
          handle_frame(i, frame, log);
          frames.add();
          while (nodes_[i].conn.recv_into(frame, /*timeout_s=*/0.0)) {
            rx_bytes.record(static_cast<double>(frame.payload.size()));
            if (frame.type == MessageType::kMetricUpdate) metric_updates.add();
            handle_frame(i, frame, log);
            frames.add();
          }
        } catch (const WireError& e) {
          mark_node_lost(i, e.what(), log);
          fds[i].fd = -1;
        }
      }
      if (fds.back().revents & POLLIN) {
        fds.back().revents = 0;
        probes.add();
        serve_listener_client(log);
      }
    }
    // Periodic detector sweep + flight-recorder heartbeat, paced by the
    // tick whether traffic is flowing or not.
    if (live_metrics && now - last_sweep_s >= options_.metrics_interval_s * 0.5) {
      last_sweep_s = now;
      detector_.sweep(epoch_elapsed_s());
      process_new_alerts(log);
      trace::FlightRecorder::instance().note_metrics(strings::format(
          "t=%.2fs frames=%llu metric_updates=%llu alive=%zu verdicts=%zu",
          epoch_elapsed_s(), static_cast<unsigned long long>(frames.value()),
          static_cast<unsigned long long>(metric_updates.value()), alive_nodes(),
          verdicts_));
    }
  }
  ShutdownMsg shutdown;
  shutdown.ok = 1;
  for (Node& node : nodes_)
    if (!node.lost && node.conn.valid()) node.conn.send(shutdown.encode());
  // Every verdict is in: stop listening. Anything still in the accept
  // backlog (a rejoiner that arrived after its node was given up) gets a
  // reset instead of an eternal unanswered handshake.
  listener_.close();
}

Coordinator::Result Coordinator::run(std::ostream& log) {
  if (options_.trace) trace::Tracer::set_enabled(true);
  accept_and_handshake(log);
  // Register the fleet up front so Perfetto pids follow accept order, with
  // the coordinator first — independent of which node ships spans first.
  if (options_.trace) {
    trace_.add_node("coordinator", 0.0);
    for (const Node& node : nodes_) trace_.add_node(node.info.name, node.info.clock_offset_s);
  }
  distribute_campaign();
  announce_epoch(log);
  if (apportioner_) apportioner_->begin_window();
  event_loop(log);

  bus_->finish();
  result_.rows = bus_->merged_rows();
  result_.sync = bus_->phase_sync();
  for (const Node& node : nodes_) result_.nodes.push_back(node.info);

  for (const ClusterBus::PhaseSync& sync : result_.sync) {
    const bool ok = sync.spread_s() <= options_.sync_tolerance_s;
    result_.sync_ok &= ok;
    if (ok || sync.nodes < 2) {
      log << strings::format("phase '%s': start spread %.2f ms across %zu nodes%s\n",
                             sync.name.c_str(), sync.spread_s() * 1e3, sync.nodes,
                             ok ? "" : "  [exceeds tolerance]");
    } else {
      // Name the offenders: the straggler (and who it trailed) is what an
      // operator chases, not the aggregate number.
      log << strings::format(
          "phase '%s': start spread %.2f ms across %zu nodes exceeds tolerance %.2f ms — "
          "node %s began %.2f ms after node %s\n",
          sync.name.c_str(), sync.spread_s() * 1e3, sync.nodes,
          options_.sync_tolerance_s * 1e3, sync.max_node.c_str(), sync.spread_s() * 1e3,
          sync.min_node.c_str());
    }
  }
  for (const PhaseBudgetVerdict& verdict : result_.budget_phases)
    log << strings::format("phase '%s': cluster power %.1f W trailing (budget %g W) %s\n",
                           verdict.phase.c_str(), verdict.trailing_total_w,
                           options_.budget->value,
                           verdict.converged ? "converged" : "NOT converged");

  for (const Alert& alert : result_.alerts)
    log << strings::format("alert recap [%s] node=%s t=%.2fs %s\n", alert.kind.c_str(),
                           alert.node.empty() ? "-" : alert.node.c_str(), alert.t_s,
                           alert.detail.c_str());
  if (!result_.alerts.empty())
    trace::FlightRecorder::instance().dump(
        strings::format("campaign finished with %zu alerts", result_.alerts.size()));

  // Fold the coordinator's own rings and counters into the fleet timeline
  // (offset 0 — its clock IS the merged time base) and hand it over.
  if (options_.trace) {
    std::vector<trace::SpanEvent> events;
    trace::Tracer::drain(events);
    for (const trace::SpanEvent& e : events)
      trace_.add_span("coordinator", trace::Span{e.name, e.begin_s, e.end_s});
    trace_.add_counters("coordinator", trace::Registry::instance().snapshot());
    result_.trace = std::move(trace_);
  }
  return result_;
}

}  // namespace fs2::cluster
