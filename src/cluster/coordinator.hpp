#pragma once

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "cluster/cluster_bus.hpp"
#include "cluster/metrics_plane.hpp"
#include "cluster/transport.hpp"
#include "control/budget.hpp"
#include "control/setpoint.hpp"
#include "trace/trace_event.hpp"

namespace fs2::cluster {

/// The fleet conductor: accepts N agents, clock-syncs each (RTT-compensated
/// offset estimation), hands out the campaign and a shared epoch, then runs
/// the event loop — merging streamed telemetry through a ClusterBus,
/// barriering phase transitions, answering budget reports with reapportioned
/// per-node setpoints, and collecting end-of-campaign verdicts.
class Coordinator {
 public:
  struct Options {
    std::uint16_t port = 0;         ///< 0 = ephemeral (loopback tests)
    bool loopback_only = false;     ///< bind 127.0.0.1 instead of all interfaces
    std::size_t nodes = 0;
    std::string campaign_text;
    /// Per-node campaign texts, indexed by ACCEPT order (empty = every node
    /// gets `campaign_text`). The fuzz sweep's fan-out hook: each agent
    /// runs a different candidate per phase while phase names, durations,
    /// and count stay identical across nodes — so barriers, phase-major
    /// row merging, and sync verdicts work unchanged. When set, its size
    /// must equal `nodes`.
    std::vector<std::string> per_node_campaigns;
    std::size_t phase_count = 0;
    /// The global power budget (--target cluster-power=NNNW); nullopt runs
    /// the fleet open-loop (profiles/targets straight from the campaign).
    std::optional<control::Setpoint> budget;
    double ctl_interval_s = 0.25;   ///< per-node controller tick under budget
    double start_delay_s = 0.5;     ///< epoch lead time after the last handshake
    double sync_tolerance_s = 0.25; ///< max allowed phase-begin spread
    double accept_timeout_s = 60.0;
    std::uint64_t seed = 0;         ///< echoed into logs only
    /// Fleet tracing (--trace-out): agents record spans and ship them with
    /// a counter snapshot before their verdict; the coordinator rebases
    /// every buffer through the clock-sync offsets into Result.trace.
    bool trace = false;
    /// kMetricUpdate cadence handed to every agent (--metrics-interval);
    /// 0 disables the live metrics plane (and flat-line detection with it).
    double metrics_interval_s = 1.0;
    /// How long a lost node may take to reconnect and rejoin before the
    /// coordinator gives up on it (waives its barrier votes, records a NOT
    /// converged verdict). While the window is open the fleet HOLDS at the
    /// node's next barrier — a rejoined node must contribute to every
    /// remaining phase, not limp in after the campaign moved on. 0 gives up
    /// immediately (the pre-rejoin behavior).
    double rejoin_grace_s = 2.0;
  };

  struct NodeInfo {
    std::string name;
    std::string sku;
    double clock_offset_s = 0.0;
    double rtt_s = 0.0;
    bool converged = true;
    std::string verdict_detail;
    std::uint32_t rejoins = 0;  ///< accepted kRejoin handshakes for this node
  };

  struct PhaseBudgetVerdict {
    std::string phase;
    double trailing_total_w = 0.0;
    bool converged = false;
  };

  struct Result {
    std::vector<ClusterBus::Row> rows;            ///< merged summary rows
    std::vector<ClusterBus::PhaseSync> sync;      ///< per-phase begin spreads
    std::vector<NodeInfo> nodes;
    std::vector<PhaseBudgetVerdict> budget_phases;
    /// Merged fleet timeline (Options::trace): every node's spans rebased
    /// into the coordinator clock, ready for trace_event JSON export.
    trace::TraceCollector trace;
    /// Anomaly log, oldest first (flat-lines, divergence, stragglers,
    /// node losses) — also folded into `trace` as zero-width alert spans.
    std::vector<Alert> alerts;
    bool nodes_converged = true;   ///< every node verdict (controlled phases)
    bool budget_converged = true;  ///< every phase's trailing total in band
    bool sync_ok = true;           ///< every spread within tolerance
    bool converged() const { return nodes_converged && budget_converged && sync_ok; }
  };

  /// Binds the listener immediately so port() is valid before agents spawn.
  explicit Coordinator(Options options);

  std::uint16_t port() const { return listener_.port(); }

  /// Accept + handshake + campaign distribution + event loop, start to
  /// shutdown. `log` receives human-readable progress lines. Throws on
  /// node failures and protocol errors.
  Result run(std::ostream& log);

 private:
  struct Node {
    Connection conn;
    NodeInfo info;
    std::uint32_t phases_begun = 0;
    std::uint32_t phases_ended = 0;
    bool verdict_received = false;
    /// Connection dropped mid-campaign. Loss opens a rejoin grace window
    /// (Options::rejoin_grace_s): the node's budget share flows to the
    /// survivors immediately, but its barrier votes still count — the fleet
    /// holds for a node that may come back. If the window expires the node
    /// is GIVEN UP: votes waived, verdict recorded as NOT converged, and
    /// the campaign runs on with the survivors.
    bool lost = false;
    bool given_up = false;        ///< grace expired; no rejoin accepted
    double lost_since_s = 0.0;    ///< local clock at loss (grace bookkeeping)
    std::string lost_why;         ///< first loss reason, for the give-up verdict
    // Latest budget exchange, surfaced on the status plane.
    double achieved_w = 0.0;
    double setpoint_w = 0.0;
    double level = 0.0;
  };

  void accept_and_handshake(std::ostream& log);
  void distribute_campaign();
  void announce_epoch(std::ostream& log);
  void event_loop(std::ostream& log);
  void handle_frame(std::size_t node, const Frame& frame, std::ostream& log);
  void record_budget_phase(std::uint32_t phase_index);
  /// Fleet health snapshot for the status plane. `accepting` = still inside
  /// the handshake window (campaign not yet started).
  StatusReplyMsg build_status(bool accepting) const;
  /// Answer one status client: read its request, reply, close. Never
  /// throws — a broken probe must not take the campaign down.
  void serve_status_client(Connection conn, bool accepting);
  /// Accept one mid-run listener connection and route it: HTTP scrapers
  /// get /metrics of /healthz, framed clients get a status reply.
  void serve_listener_client(std::ostream& log);

  std::size_t alive_nodes() const;
  /// Nodes whose barrier votes still count: everyone not given up —
  /// including lost nodes inside their rejoin grace window.
  std::size_t voting_nodes() const;
  double epoch_elapsed_s() const;
  /// Release the phase barrier once every VOTING node has ended the phase —
  /// re-checked on end brackets, on give-up (so a crashed node cannot wedge
  /// the survivors forever), and on rejoin (credited end brackets).
  void maybe_release_phase(std::uint32_t phase_index, std::ostream& log);
  void mark_node_lost(std::size_t index, const std::string& why, std::ostream& log);
  /// The rejoin grace window expired: waive the node's barrier votes and
  /// record its NOT-converged verdict. Loss with rejoin_grace_s == 0 lands
  /// here immediately.
  void give_up_node(std::size_t index, std::ostream& log);
  /// Expire grace windows of lost nodes that never came back.
  void sweep_rejoin_grace(std::ostream& log);
  /// A fresh socket presented kRejoin: validate it (version, campaign id,
  /// node name, window still open), replay the admission sequence on the
  /// new connection (ack, clock re-sync, campaign, epoch, any missed
  /// PhaseGo), and flip the node back to alive. Refusals answer with
  /// accepted=0 and never disturb the campaign.
  void handle_rejoin(Connection client, const RejoinMsg& msg, std::ostream& log);
  /// Drain newly raised detector alerts into the log, the trace timeline,
  /// the flight recorder, and Result.alerts.
  void process_new_alerts(std::ostream& log);
  /// The /metrics payload rendered from live state.
  std::string render_exposition() const;

  Options options_;
  Listener listener_;
  std::vector<Node> nodes_;
  SampleBatchMsg batch_scratch_;  ///< reused decode target for sample batches
  std::unique_ptr<ClusterBus> bus_;
  std::unique_ptr<control::BudgetApportioner> apportioner_;
  Result result_;
  std::vector<std::uint32_t> phase_end_counts_;
  std::vector<std::uint8_t> phase_released_;  ///< barrier already opened
  /// Local clock when the FIRST node ended each phase — the open edge of
  /// the barrier span recorded when the LAST node arrives.
  std::vector<double> phase_barrier_open_s_;
  trace::TraceCollector trace_;
  std::size_t verdicts_ = 0;
  // Live metrics plane: per-node folds of the kMetricUpdate stream plus
  // the rolling-window anomaly detector over them.
  MetricStore metrics_;
  AnomalyDetector detector_;
  double epoch_local_s_ = 0.0;  ///< coordinator clock at the shared epoch
  /// Run-unique id stamped into the campaign and echoed by every kRejoin:
  /// an agent from yesterday's run (or someone else's coordinator) cannot
  /// splice itself into this campaign.
  std::uint64_t campaign_id_ = 0;
  /// A rejoin swapped a node's socket: the event loop's pollfd set must be
  /// rebuilt before the next poll.
  bool fds_stale_ = false;
};

}  // namespace fs2::cluster
