#include "cluster/exposition.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace fs2::cluster {

namespace {

constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
constexpr const char* kQuantileLabels[] = {"0.5", "0.95", "0.99"};

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_label(std::string& out, const char* key, const std::string& value) {
  out += '{';
  out += key;
  out += "=\"";
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  out += "\"}";
}

void append_type(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// One histogram as a Prometheus summary: quantile series + _sum + _count.
void append_summary(std::string& out, const std::string& name,
                    const trace::HistogramSnapshot& hist) {
  append_type(out, name, "summary");
  for (std::size_t q = 0; q < 3; ++q) {
    out += name;
    append_label(out, "quantile", kQuantileLabels[q]);
    out += ' ';
    append_number(out, hist.quantile(kQuantiles[q]));
    out += '\n';
  }
  out += name + "_sum ";
  append_number(out, hist.sum);
  out += '\n';
  out += name + "_count " + std::to_string(hist.count) + '\n';
}

}  // namespace

std::string exposition_name(const std::string& name) {
  std::string out = "fs2_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_metrics(const std::vector<trace::MetricSnapshot>& local,
                           const std::vector<trace::HistogramSnapshot>& local_hists,
                           const MetricStore& store,
                           const std::vector<ExpositionNode>& nodes,
                           std::size_t alert_count, bool fleet_healthy) {
  std::string out;
  out.reserve(4096);

  // Fleet identity and health first — what a dashboard keys its panels on.
  append_type(out, "fs2_fleet_nodes", "gauge");
  out += "fs2_fleet_nodes " + std::to_string(nodes.size()) + '\n';
  append_type(out, "fs2_fleet_healthy", "gauge");
  out += std::string("fs2_fleet_healthy ") + (fleet_healthy ? "1" : "0") + '\n';
  append_type(out, "fs2_fleet_alerts_total", "counter");
  out += "fs2_fleet_alerts_total " + std::to_string(alert_count) + '\n';

  // Coordinator-local registry (counters and gauges).
  for (const trace::MetricSnapshot& m : local) {
    const std::string name = exposition_name(m.name);
    append_type(out, name, m.is_counter ? "counter" : "gauge");
    out += name + ' ';
    append_number(out, m.value);
    out += '\n';
  }
  // Coordinator-local histograms as quantile summaries.
  for (const trace::HistogramSnapshot& h : local_hists)
    append_summary(out, exposition_name(h.name), h);

  // Fleet rollups folded from the kMetricUpdate stream.
  const MetricStore::Rollup rollup = store.rollup();
  for (const auto& [name, total] : rollup.counters) {
    const std::string prom = exposition_name("fleet." + name);
    append_type(out, prom, "counter");
    out += prom + ' ' + std::to_string(total) + '\n';
  }
  for (const trace::HistogramSnapshot& h : rollup.hists)
    append_summary(out, exposition_name("fleet." + h.name), h);

  // Per-node gauges, one labelled series per node.
  struct NodeGauge {
    const char* metric;
    double (*value)(const ExpositionNode&);
  };
  static const NodeGauge kNodeGauges[] = {
      {"fs2_node_up", [](const ExpositionNode& n) { return n.lost ? 0.0 : 1.0; }},
      {"fs2_node_phases_begun",
       [](const ExpositionNode& n) { return static_cast<double>(n.phases_begun); }},
      {"fs2_node_phases_ended",
       [](const ExpositionNode& n) { return static_cast<double>(n.phases_ended); }},
      {"fs2_node_clock_offset_seconds",
       [](const ExpositionNode& n) { return n.clock_offset_s; }},
      {"fs2_node_clock_rtt_seconds",
       [](const ExpositionNode& n) { return n.clock_rtt_s; }},
      {"fs2_node_achieved_watts", [](const ExpositionNode& n) { return n.achieved_w; }},
      {"fs2_node_setpoint_watts", [](const ExpositionNode& n) { return n.setpoint_w; }},
      {"fs2_node_level", [](const ExpositionNode& n) { return n.level; }},
      {"fs2_node_metrics_age_seconds",
       [](const ExpositionNode& n) { return n.metrics_age_s; }},
      {"fs2_node_rejoins",
       [](const ExpositionNode& n) { return static_cast<double>(n.rejoins); }},
  };
  for (const NodeGauge& g : kNodeGauges) {
    append_type(out, g.metric, "gauge");
    for (const ExpositionNode& n : nodes) {
      out += g.metric;
      append_label(out, "node", n.name);
      out += ' ';
      append_number(out, g.value(n));
      out += '\n';
    }
  }

  // Per-node gauges shipped through the metrics plane (agent-side registry
  // gauges — e.g. a SimAgent's private "agent.*" series).
  const std::vector<MetricStore::NodeSeries>& series = store.nodes();
  for (std::size_t node = 0; node < series.size() && node < nodes.size(); ++node) {
    for (std::size_t id = 0; id < series[node].defs.size(); ++id) {
      const trace::MetricDefRec& def = series[node].defs[id];
      if (def.name.empty() || def.kind != trace::MetricKind::kGauge) continue;
      const std::string prom = exposition_name(def.name);
      out += prom;
      append_label(out, "node", nodes[node].name);
      out += ' ';
      append_number(out, series[node].gauges[id]);
      out += '\n';
    }
  }

  return out;
}

bool peek_is_http_get(int fd, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  char head[4];
  for (;;) {
    const ssize_t n = ::recv(fd, head, sizeof(head), MSG_PEEK | MSG_DONTWAIT);
    if (n >= 4) return std::memcmp(head, "GET ", 4) == 0;
    if (n == 0) return false;  // EOF before any request
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return false;
    // 1-3 bytes peeked: "GET" is still arriving — or a framed client whose
    // 4-byte length prefix landed short. Wait for the fourth byte either way.
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    struct pollfd pfd{fd, POLLIN, 0};
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    ::poll(&pfd, 1, static_cast<int>(std::max<long long>(1, left.count())));
    if (n >= 1) {
      // Already have bytes and they can't be "GET " unless they prefix it.
      if (std::memcmp(head, "GET ", static_cast<std::size_t>(n)) != 0) return false;
    }
  }
}

void serve_http_client(Connection conn, const std::string& metrics_body,
                       bool fleet_healthy) {
  // Read the request head (we only need the request line; drain what's
  // buffered, stop at end-of-headers or 4 KiB).
  std::string request;
  char buf[1024];
  while (request.size() < 4096 && request.find("\r\n") == std::string::npos) {
    const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  std::string path = "/";
  const std::size_t sp1 = request.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  }

  const char* status = "200 OK";
  std::string body;
  if (path == "/metrics") {
    body = metrics_body;
  } else if (path == "/healthz") {
    status = fleet_healthy ? "200 OK" : "503 Service Unavailable";
    body = fleet_healthy ? "ok\n" : "unhealthy\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }

  std::string response = "HTTP/1.1 ";
  response += status;
  response += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;

  std::size_t off = 0;
  while (off < response.size()) {
    const ssize_t n =
        ::send(conn.fd(), response.data() + off, response.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  conn.close();
}

}  // namespace fs2::cluster
