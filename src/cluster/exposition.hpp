#pragma once

#include <string>
#include <vector>

#include "cluster/metrics_plane.hpp"
#include "cluster/transport.hpp"
#include "trace/registry.hpp"

namespace fs2::cluster {

/// One node's identity row for the exposition endpoint (per-node gauges:
/// phase progress, clock quality, budget tracking, update freshness).
struct ExpositionNode {
  std::string name;
  bool lost = false;
  std::uint32_t phases_begun = 0;
  std::uint32_t phases_ended = 0;
  double clock_offset_s = 0.0;
  double clock_rtt_s = 0.0;
  double achieved_w = 0.0;
  double setpoint_w = 0.0;
  double level = 0.0;
  double metrics_age_s = -1.0;  ///< -1 = no update yet
  std::uint32_t rejoins = 0;    ///< accepted rejoin handshakes
};

/// Sanitize a dotted metric name into a Prometheus identifier:
/// "cluster.bus.queued_samples" -> "fs2_cluster_bus_queued_samples".
std::string exposition_name(const std::string& name);

/// Render the full /metrics payload in Prometheus plaintext exposition
/// format (version 0.0.4): coordinator-local counters/gauges, fleet-rollup
/// counters and histogram quantiles (summaries), and per-node gauges with
/// {node="..."} labels.
std::string render_metrics(const std::vector<trace::MetricSnapshot>& local,
                           const std::vector<trace::HistogramSnapshot>& local_hists,
                           const MetricStore& store,
                           const std::vector<ExpositionNode>& nodes,
                           std::size_t alert_count, bool fleet_healthy);

/// True when the next bytes on `fd` look like an HTTP GET ("GET " peeked
/// without consuming), waiting up to `timeout_s` for them to arrive. False
/// on timeout, EOF, or a framed-protocol client — the caller falls through
/// to the kStatusRequest path.
bool peek_is_http_get(int fd, double timeout_s);

/// Serve one HTTP request on an accepted connection and close it:
/// GET /metrics -> 200 with `metrics_body`; GET /healthz -> 200 "ok" when
/// healthy, 503 otherwise; anything else -> 404. Never throws — a broken
/// scraper must not take the campaign down.
void serve_http_client(Connection conn, const std::string& metrics_body,
                       bool fleet_healthy);

}  // namespace fs2::cluster
