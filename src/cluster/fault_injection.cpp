#include "cluster/fault_injection.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "util/strings.hpp"

namespace fs2::cluster {

namespace {

/// FNV-1a 64 over the node name: stable across platforms (std::hash is
/// not), which is what makes per-link schedules reproducible everywhere.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

[[noreturn]] void bad_token(const std::string& token, const std::string& why) {
  throw ConfigError("--chaos: bad token '" + token + "' (" + why + ")");
}

/// "1%" -> 0.01, "0.5%" -> 0.005, "0.01" -> 0.01.
double parse_probability(const std::string& token, const std::string& value) {
  std::string text = value;
  bool percent = false;
  if (!text.empty() && text.back() == '%') {
    percent = true;
    text.pop_back();
  }
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') bad_token(token, "expected a probability");
  const double p = percent ? parsed / 100.0 : parsed;
  if (!(p >= 0.0 && p <= 1.0)) bad_token(token, "probability out of [0, 100%]");
  return p;
}

/// "5ms" -> 0.005, "12s" -> 12, "250us" -> 0.00025. `rest` gets the suffix
/// after the unit (for "12s:2s"-style compounds).
double parse_duration(const std::string& token, const std::string& value,
                      std::string* rest = nullptr) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str()) bad_token(token, "expected a duration");
  double scale = 0.0;
  if (std::strncmp(end, "us", 2) == 0) {
    scale = 1e-6;
    end += 2;
  } else if (std::strncmp(end, "ms", 2) == 0) {
    scale = 1e-3;
    end += 2;
  } else if (*end == 's') {
    scale = 1.0;
    end += 1;
  } else {
    bad_token(token, "duration needs a unit (us/ms/s)");
  }
  if (rest != nullptr)
    *rest = end;
  else if (*end != '\0')
    bad_token(token, "trailing text after duration");
  if (!(parsed >= 0.0)) bad_token(token, "duration must be >= 0");
  return parsed * scale;
}

/// "NODE@phase2" / "NODE@t30s" -> kill cue; "NODE@t12s[:2s]" -> stall cue.
std::pair<std::string, std::string> split_at(const std::string& token,
                                             const std::string& value) {
  const auto at = value.find('@');
  if (at == std::string::npos || at == 0 || at + 1 == value.size())
    bad_token(token, "expected NODE@...");
  return {value.substr(0, at), value.substr(at + 1)};
}

}  // namespace

// ---- LinkFaults -------------------------------------------------------------

bool LinkFaults::expendable(MessageType type) {
  switch (type) {
    case MessageType::kSampleBatch:
    case MessageType::kNodeSummary:
    case MessageType::kMetricUpdate:
    case MessageType::kTraceSpans:
    case MessageType::kCounterSnapshot:
    case MessageType::kFlightRecord:
      return true;
    default:
      return false;
  }
}

LinkFaults::Verdict LinkFaults::on_send(MessageType type, std::size_t payload_size) {
  Verdict verdict;
  // Fixed draw order per armed fault keeps the stream reproducible: the
  // k-th frame of a given eligibility class always consumes the same draws.
  if (expendable(type)) {
    if (drop_ > 0.0 && rng_.chance(drop_)) verdict.drop = true;
    if (corrupt_ > 0.0 && rng_.chance(corrupt_) && payload_size > 0)
      verdict.corrupt_bit = rng_.below(payload_size * 8);
    if (truncate_ > 0.0 && rng_.chance(truncate_) && payload_size > 0)
      verdict.truncate_to = rng_.below(payload_size);
  }
  if (delay_s_ > 0.0) {
    double delay = delay_s_;
    if (delay_jitter_s_ > 0.0) delay += rng_.uniform(-delay_jitter_s_, delay_jitter_s_);
    if (delay > 0.0) verdict.delay_s = delay;
  }
  return verdict;
}

// ---- FaultPlan --------------------------------------------------------------

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string token = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) continue;

    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size())
      bad_token(token, "expected key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "seed") {
      plan.seed = strings::parse_u64(value, "--chaos seed");
    } else if (key == "drop") {
      plan.drop = parse_probability(token, value);
    } else if (key == "corrupt") {
      plan.corrupt = parse_probability(token, value);
    } else if (key == "truncate") {
      plan.truncate = parse_probability(token, value);
    } else if (key == "delay") {
      // "5ms", "5ms±3ms", or the ASCII spelling "5ms+-3ms".
      std::string rest;
      plan.delay_s = parse_duration(token, value, &rest);
      if (!rest.empty()) {
        if (rest.rfind("\xc2\xb1", 0) == 0)
          rest = rest.substr(2);
        else if (rest.rfind("+-", 0) == 0)
          rest = rest.substr(2);
        else
          bad_token(token, "expected ±JITTER after the mean delay");
        plan.delay_jitter_s = parse_duration(token, rest);
      }
    } else if (key == "kill") {
      const auto [node, when] = split_at(token, value);
      KillCue cue;
      cue.node = node;
      if (when.rfind("phase", 0) == 0) {
        cue.phase = static_cast<std::uint32_t>(
            strings::parse_u64(when.substr(5), "--chaos kill phase"));
      } else if (when[0] == 't') {
        cue.t_s = parse_duration(token, when.substr(1));
      } else {
        bad_token(token, "expected @phaseK or @tXs");
      }
      plan.kills.push_back(std::move(cue));
    } else if (key == "stall") {
      const auto [node, when] = split_at(token, value);
      if (when.empty() || when[0] != 't') bad_token(token, "expected @tXs[:DUR]");
      StallCue cue;
      cue.node = node;
      std::string rest;
      cue.t_s = parse_duration(token, when.substr(1), &rest);
      if (!rest.empty()) {
        if (rest[0] != ':') bad_token(token, "expected :DUR after the stall time");
        cue.duration_s = parse_duration(token, rest.substr(1));
      }
      plan.stalls.push_back(std::move(cue));
    } else {
      bad_token(token, "unknown key");
    }
  }
  return plan;
}

LinkFaults FaultPlan::link(const std::string& node_name) const {
  return LinkFaults(drop, corrupt, truncate, delay_s, delay_jitter_s,
                    seed ^ fnv1a(node_name));
}

bool FaultPlan::node_matches(const std::string& cue, const std::string& node_name) {
  if (cue == node_name) return true;
  std::size_t digits = 0;
  if (cue.rfind("node", 0) == 0)
    digits = 4;
  else if (cue.rfind("n", 0) == 0)
    digits = 1;
  else
    return false;
  const std::string index = cue.substr(digits);
  if (index.empty()) return false;
  for (const char c : index)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  // "n5"/"node5" match the loopback names "n5" and "n5-zen2".
  const std::string prefix = "n" + index;
  return node_name == prefix || node_name.rfind(prefix + "-", 0) == 0;
}

const KillCue* FaultPlan::kill_for(const std::string& node_name) const {
  for (const KillCue& cue : kills)
    if (node_matches(cue.node, node_name)) return &cue;
  return nullptr;
}

const StallCue* FaultPlan::stall_for(const std::string& node_name) const {
  for (const StallCue& cue : stalls)
    if (node_matches(cue.node, node_name)) return &cue;
  return nullptr;
}

std::string FaultPlan::describe() const {
  std::string out = strings::format("seed=%llu", static_cast<unsigned long long>(seed));
  if (drop > 0.0) out += strings::format(",drop=%g%%", drop * 100.0);
  if (corrupt > 0.0) out += strings::format(",corrupt=%g%%", corrupt * 100.0);
  if (truncate > 0.0) out += strings::format(",truncate=%g%%", truncate * 100.0);
  if (delay_s > 0.0) {
    out += strings::format(",delay=%gms", delay_s * 1e3);
    if (delay_jitter_s > 0.0) out += strings::format("+-%gms", delay_jitter_s * 1e3);
  }
  for (const KillCue& cue : kills) {
    if (cue.phase)
      out += strings::format(",kill=%s@phase%u", cue.node.c_str(), *cue.phase);
    else
      out += strings::format(",kill=%s@t%gs", cue.node.c_str(), *cue.t_s);
  }
  for (const StallCue& cue : stalls)
    out += strings::format(",stall=%s@t%gs:%gs", cue.node.c_str(), cue.t_s,
                           cue.duration_s);
  return out;
}

}  // namespace fs2::cluster
