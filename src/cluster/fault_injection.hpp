#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/messages.hpp"
#include "util/rng.hpp"

namespace fs2::cluster {

/// Deterministic exponential backoff with seeded jitter. Reconnecting
/// agents draw their retry delays from one of these; the schedule is a pure
/// function of (options, seed, attempt count), so tests can replay it
/// against a fake clock and two agents with different seeds never
/// synchronize their reconnect storms.
class Backoff {
 public:
  struct Options {
    double base_s = 0.05;   ///< first retry delay
    double factor = 2.0;    ///< growth per attempt
    double max_s = 2.0;     ///< ceiling on the nominal delay
    double jitter = 0.2;    ///< ± fraction of the nominal delay
    std::uint64_t seed = 1;
  };

  Backoff() : Backoff(Options()) {}
  explicit Backoff(Options options) : options_(options), rng_(options.seed) {}

  /// Delay to wait before the next attempt; advances the schedule. One RNG
  /// draw per call, so the sequence is reproducible from the seed alone.
  double next_s() {
    double nominal = options_.base_s;
    for (std::uint32_t i = 0; i < attempt_ && nominal < options_.max_s; ++i)
      nominal *= options_.factor;
    if (nominal > options_.max_s) nominal = options_.max_s;
    ++attempt_;
    const double spread = nominal * options_.jitter;
    const double delay = nominal + rng_.uniform(-spread, spread);
    return delay > 0.0 ? delay : options_.base_s;
  }

  void reset() { attempt_ = 0; }
  std::uint32_t attempts() const { return attempt_; }

 private:
  Options options_;
  Xoshiro256 rng_;
  std::uint32_t attempt_ = 0;
};

/// Kill an agent when it reaches a phase (`node7@phase2`) or an
/// epoch-elapsed time (`node7@t30s`). The agent drops its connection
/// without ceremony — mid-frame as far as the coordinator can tell — and
/// comes back through the reconnect/rejoin path. Fires once per run.
struct KillCue {
  std::string node;
  std::optional<std::uint32_t> phase;  ///< fire when this phase begins
  std::optional<double> t_s;           ///< or at this epoch-elapsed time
};

/// Freeze an agent for a window (`node3@t12s` or `node3@t12s:2s`): it stops
/// reading and writing its socket but keeps the connection open — a hung
/// peer, the failure mode deadlines exist for.
struct StallCue {
  std::string node;
  double t_s = 0.0;
  double duration_s = 1.0;
};

/// Per-connection fault injector, consulted by Connection::send. Each link
/// gets its own RNG stream seeded from plan seed ^ hash(node name), so one
/// node's fault schedule does not depend on how many frames its neighbours
/// sent — the same seed reproduces the same per-link schedule at any fleet
/// size.
class LinkFaults {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Verdict {
    bool drop = false;
    std::size_t corrupt_bit = kNone;   ///< payload bit to flip (kNone = don't)
    std::size_t truncate_to = kNone;   ///< new payload size (kNone = don't)
    double delay_s = 0.0;              ///< hold the frame this long
  };

  LinkFaults(double drop, double corrupt, double truncate, double delay_s,
             double delay_jitter_s, std::uint64_t seed)
      : drop_(drop),
        corrupt_(corrupt),
        truncate_(truncate),
        delay_s_(delay_s),
        delay_jitter_s_(delay_jitter_s),
        rng_(seed) {}

  /// Decide this frame's fate. Drop/corrupt/truncate only ever hit
  /// expendable telemetry frames — losing control-plane frames (phase-go,
  /// budget exchange, brackets) would model a fault the protocol is not
  /// meant to absorb silently; control-path failure is modelled at the
  /// connection level (stall/kill) where deadlines and rejoin recover it.
  /// Delay applies to everything: ordering is preserved, so a slow link is
  /// survivable by design.
  Verdict on_send(MessageType type, std::size_t payload_size);

  /// True for frames the protocol can lose without corrupting the verdict:
  /// telemetry, summaries, metric deltas, trace spans, flight records.
  static bool expendable(MessageType type);

 private:
  double drop_, corrupt_, truncate_;
  double delay_s_, delay_jitter_s_;
  Xoshiro256 rng_;
};

/// A parsed --chaos specification: seeded probabilities for the link-level
/// faults plus the kill/stall cue list. Example:
///
///   --chaos "seed=7,drop=1%,delay=5ms±3ms,corrupt=0.1%,stall=node3@t12s,kill=node7@phase2"
///
/// The plan is recorded verbatim in the flight dump (describe()), so a
/// failing chaos run can be replayed bit-for-bit from its black box.
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop = 0.0;      ///< P(drop) per expendable frame
  double corrupt = 0.0;   ///< P(flip one payload bit)
  double truncate = 0.0;  ///< P(shorten the frame; the decoder must object)
  double delay_s = 0.0;   ///< mean added latency, all frames
  double delay_jitter_s = 0.0;
  std::vector<KillCue> kills;
  std::vector<StallCue> stalls;

  /// Parse the comma-separated spec; throws ConfigError with the offending
  /// token on any grammar violation.
  static FaultPlan parse(const std::string& spec);

  /// True when any per-frame fault is armed (kill/stall cues alone leave
  /// the transport untouched).
  bool link_faults_enabled() const {
    return drop > 0.0 || corrupt > 0.0 || truncate > 0.0 || delay_s > 0.0;
  }

  /// The injector for one agent->coordinator link.
  LinkFaults link(const std::string& node_name) const;

  const KillCue* kill_for(const std::string& node_name) const;
  const StallCue* stall_for(const std::string& node_name) const;

  /// Canonical one-line spec (round-trips through parse) for logs and the
  /// flight dump.
  std::string describe() const;

  /// Cue-to-node matching: "node5" and "n5" both select the loopback agent
  /// "n5-zen2"; a full name matches exactly.
  static bool node_matches(const std::string& cue, const std::string& node_name);
};

}  // namespace fs2::cluster
