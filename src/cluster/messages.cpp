#include "cluster/messages.hpp"

#include <bit>
#include <cstring>

namespace fs2::cluster {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "hello";
    case MessageType::kSyncProbe: return "sync-probe";
    case MessageType::kSyncReply: return "sync-reply";
    case MessageType::kCampaign: return "campaign";
    case MessageType::kEpoch: return "epoch";
    case MessageType::kChannel: return "channel";
    case MessageType::kPhaseBracket: return "phase-bracket";
    case MessageType::kSampleBatch: return "sample-batch";
    case MessageType::kPhaseGo: return "phase-go";
    case MessageType::kBudgetReport: return "budget-report";
    case MessageType::kBudgetAssign: return "budget-assign";
    case MessageType::kVerdict: return "verdict";
    case MessageType::kShutdown: return "shutdown";
    case MessageType::kNodeSummary: return "node-summary";
    case MessageType::kTraceSpans: return "trace-spans";
    case MessageType::kCounterSnapshot: return "counter-snapshot";
    case MessageType::kStatusRequest: return "status-request";
    case MessageType::kStatusReply: return "status-reply";
    case MessageType::kMetricUpdate: return "metric-update";
    case MessageType::kFlightRecord: return "flight-record";
    case MessageType::kRejoin: return "rejoin";
    case MessageType::kRejoinAck: return "rejoin-ack";
  }
  return "?";
}

namespace {

Frame make_frame(MessageType type, WireWriter&& w) {
  return Frame{type, w.take()};
}

}  // namespace

Frame HelloMsg::encode() const {
  WireWriter w;
  w.u32(version);
  w.str(node_name);
  w.str(sku);
  return make_frame(MessageType::kHello, std::move(w));
}

HelloMsg HelloMsg::decode(WireReader& in) {
  HelloMsg m;
  m.version = in.u32();
  m.node_name = in.str();
  m.sku = in.str();
  return m;
}

Frame SyncProbeMsg::encode() const {
  WireWriter w;
  w.u32(seq);
  w.f64(t_coord_s);
  return make_frame(MessageType::kSyncProbe, std::move(w));
}

SyncProbeMsg SyncProbeMsg::decode(WireReader& in) {
  SyncProbeMsg m;
  m.seq = in.u32();
  m.t_coord_s = in.f64();
  return m;
}

Frame SyncReplyMsg::encode() const {
  WireWriter w;
  w.u32(seq);
  w.f64(t_coord_s);
  w.f64(t_agent_s);
  return make_frame(MessageType::kSyncReply, std::move(w));
}

SyncReplyMsg SyncReplyMsg::decode(WireReader& in) {
  SyncReplyMsg m;
  m.seq = in.u32();
  m.t_coord_s = in.f64();
  m.t_agent_s = in.f64();
  return m;
}

Frame CampaignMsg::encode() const {
  WireWriter w;
  w.str(campaign_text);
  w.u8(has_budget);
  w.f64(initial_setpoint_w);
  w.f64(ctl_interval_s);
  w.f64(budget_interval_s);
  w.f64(budget_band);
  w.u8(trace_enabled);
  w.f64(metrics_interval_s);
  w.u64(campaign_id);
  return make_frame(MessageType::kCampaign, std::move(w));
}

CampaignMsg CampaignMsg::decode(WireReader& in) {
  CampaignMsg m;
  m.campaign_text = in.str();
  m.has_budget = in.u8();
  m.initial_setpoint_w = in.f64();
  m.ctl_interval_s = in.f64();
  m.budget_interval_s = in.f64();
  m.budget_band = in.f64();
  m.trace_enabled = in.u8();
  m.metrics_interval_s = in.f64();
  m.campaign_id = in.u64();
  return m;
}

Frame EpochMsg::encode() const {
  WireWriter w;
  w.f64(t0_agent_s);
  w.f64(offset_s);
  w.f64(rtt_s);
  return make_frame(MessageType::kEpoch, std::move(w));
}

EpochMsg EpochMsg::decode(WireReader& in) {
  EpochMsg m;
  m.t0_agent_s = in.f64();
  m.offset_s = in.f64();
  m.rtt_s = in.f64();
  return m;
}

Frame ChannelMsg::encode() const {
  WireWriter w;
  w.u32(channel_id);
  w.str(name);
  w.str(unit);
  w.u8(trim_phase);
  w.u8(summarize);
  return make_frame(MessageType::kChannel, std::move(w));
}

ChannelMsg ChannelMsg::decode(WireReader& in) {
  ChannelMsg m;
  m.channel_id = in.u32();
  m.name = in.str();
  m.unit = in.str();
  m.trim_phase = in.u8();
  m.summarize = in.u8();
  return m;
}

Frame PhaseBracketMsg::encode() const {
  WireWriter w;
  w.u8(is_begin);
  w.u32(phase_index);
  w.str(phase_name);
  w.f64(duration_s);
  w.f64(time_offset_s);
  w.f64(start_delta_s);
  w.f64(stop_delta_s);
  w.f64(epoch_elapsed_s);
  return make_frame(MessageType::kPhaseBracket, std::move(w));
}

PhaseBracketMsg PhaseBracketMsg::decode(WireReader& in) {
  PhaseBracketMsg m;
  m.is_begin = in.u8();
  m.phase_index = in.u32();
  m.phase_name = in.str();
  m.duration_s = in.f64();
  m.time_offset_s = in.f64();
  m.start_delta_s = in.f64();
  m.stop_delta_s = in.f64();
  m.epoch_elapsed_s = in.f64();
  return m;
}

// The wire layout of one sample is two packed little-endian IEEE doubles —
// identical to telemetry::Sample's in-memory layout on little-endian hosts,
// which is what makes the memcpy fast paths below exact.
static_assert(sizeof(telemetry::Sample) == 16);

void SampleBatchMsg::encode_into(WireWriter& w, std::uint32_t channel_id,
                                 const telemetry::Sample* samples, std::size_t count) {
  w.clear();
  w.reserve(8 + count * sizeof(telemetry::Sample));
  w.u32(channel_id);
  w.u32(static_cast<std::uint32_t>(count));
  if constexpr (std::endian::native == std::endian::little) {
    w.raw(samples, count * sizeof(telemetry::Sample));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      w.f64(samples[i].time_s);
      w.f64(samples[i].value);
    }
  }
}

void SampleBatchMsg::decode_into(WireReader& in, SampleBatchMsg& out) {
  out.channel_id = in.u32();
  const std::uint32_t n = in.u32();
  // Truncation check before resizing: a hostile length field must not
  // drive a multi-gigabyte allocation.
  if (in.remaining() < static_cast<std::size_t>(n) * sizeof(telemetry::Sample))
    throw WireError("cluster wire: sample batch shorter than its count");
  out.samples.resize(n);
  if (n == 0) return;  // data() may be null on an empty vector; memcpy(null) is UB
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.samples.data(), in.raw(n * sizeof(telemetry::Sample)),
                n * sizeof(telemetry::Sample));
  } else {
    for (std::uint32_t i = 0; i < n; ++i) {
      out.samples[i].time_s = in.f64();
      out.samples[i].value = in.f64();
    }
  }
}

Frame SampleBatchMsg::encode() const {
  WireWriter w;
  encode_into(w, channel_id, samples.data(), samples.size());
  return make_frame(MessageType::kSampleBatch, std::move(w));
}

SampleBatchMsg SampleBatchMsg::decode(WireReader& in) {
  SampleBatchMsg m;
  decode_into(in, m);
  return m;
}

Frame NodeSummaryMsg::encode() const {
  WireWriter w;
  w.u32(phase_index);
  w.str(name);
  w.str(unit);
  w.u64(samples);
  w.f64(mean);
  w.f64(stddev);
  w.f64(min);
  w.f64(max);
  w.f64(p50);
  w.f64(p95);
  w.f64(p99);
  return make_frame(MessageType::kNodeSummary, std::move(w));
}

NodeSummaryMsg NodeSummaryMsg::decode(WireReader& in) {
  NodeSummaryMsg m;
  m.phase_index = in.u32();
  m.name = in.str();
  m.unit = in.str();
  m.samples = in.u64();
  m.mean = in.f64();
  m.stddev = in.f64();
  m.min = in.f64();
  m.max = in.f64();
  m.p50 = in.f64();
  m.p95 = in.f64();
  m.p99 = in.f64();
  return m;
}

Frame PhaseGoMsg::encode() const {
  WireWriter w;
  w.u32(phase_index);
  return make_frame(MessageType::kPhaseGo, std::move(w));
}

PhaseGoMsg PhaseGoMsg::decode(WireReader& in) {
  PhaseGoMsg m;
  m.phase_index = in.u32();
  return m;
}

Frame BudgetReportMsg::encode() const {
  WireWriter w;
  w.u32(seq);
  w.f64(achieved_w);
  w.f64(setpoint_w);
  w.f64(level);
  return make_frame(MessageType::kBudgetReport, std::move(w));
}

BudgetReportMsg BudgetReportMsg::decode(WireReader& in) {
  BudgetReportMsg m;
  m.seq = in.u32();
  m.achieved_w = in.f64();
  m.setpoint_w = in.f64();
  m.level = in.f64();
  return m;
}

Frame BudgetAssignMsg::encode() const {
  WireWriter w;
  w.u32(seq);
  w.f64(setpoint_w);
  return make_frame(MessageType::kBudgetAssign, std::move(w));
}

BudgetAssignMsg BudgetAssignMsg::decode(WireReader& in) {
  BudgetAssignMsg m;
  m.seq = in.u32();
  m.setpoint_w = in.f64();
  return m;
}

Frame VerdictMsg::encode() const {
  WireWriter w;
  w.u8(converged);
  w.str(detail);
  return make_frame(MessageType::kVerdict, std::move(w));
}

VerdictMsg VerdictMsg::decode(WireReader& in) {
  VerdictMsg m;
  m.converged = in.u8();
  m.detail = in.str();
  return m;
}

Frame ShutdownMsg::encode() const {
  WireWriter w;
  w.u8(ok);
  return make_frame(MessageType::kShutdown, std::move(w));
}

ShutdownMsg ShutdownMsg::decode(WireReader& in) {
  ShutdownMsg m;
  m.ok = in.u8();
  return m;
}

Frame TraceSpansMsg::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(spans.size()));
  for (const trace::Span& s : spans) {
    w.str(s.name);
    w.f64(s.begin_s);
    w.f64(s.end_s);
  }
  w.u64(dropped);
  return make_frame(MessageType::kTraceSpans, std::move(w));
}

TraceSpansMsg TraceSpansMsg::decode(WireReader& in) {
  TraceSpansMsg m;
  const std::uint32_t n = in.u32();
  // Each span is at least 20 wire bytes; reject counts the payload cannot hold.
  if (in.remaining() < static_cast<std::size_t>(n) * 20)
    throw WireError("cluster wire: trace span buffer shorter than its count");
  m.spans.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    trace::Span s;
    s.name = in.str();
    s.begin_s = in.f64();
    s.end_s = in.f64();
    m.spans.push_back(std::move(s));
  }
  m.dropped = in.u64();
  return m;
}

Frame CounterSnapshotMsg::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const trace::MetricSnapshot& c : counters) {
    w.str(c.name);
    w.f64(c.value);
    w.u8(c.is_counter ? 1 : 0);
  }
  return make_frame(MessageType::kCounterSnapshot, std::move(w));
}

CounterSnapshotMsg CounterSnapshotMsg::decode(WireReader& in) {
  CounterSnapshotMsg m;
  const std::uint32_t n = in.u32();
  if (in.remaining() < static_cast<std::size_t>(n) * 13)
    throw WireError("cluster wire: counter snapshot shorter than its count");
  m.counters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    trace::MetricSnapshot c;
    c.name = in.str();
    c.value = in.f64();
    c.is_counter = in.u8() != 0;
    m.counters.push_back(std::move(c));
  }
  return m;
}

Frame MetricUpdateMsg::encode() const {
  WireWriter w;
  w.u32(seq);
  w.f64(t_agent_s);
  w.u32(static_cast<std::uint32_t>(delta.defs.size()));
  for (const trace::MetricDefRec& d : delta.defs) {
    w.u32(d.id);
    w.str(d.name);
    w.u8(static_cast<std::uint8_t>(d.kind));
  }
  w.u32(static_cast<std::uint32_t>(delta.counters.size()));
  for (const trace::CounterDeltaRec& c : delta.counters) {
    w.u32(c.id);
    w.u64(c.delta);
  }
  w.u32(static_cast<std::uint32_t>(delta.gauges.size()));
  for (const trace::GaugeValueRec& g : delta.gauges) {
    w.u32(g.id);
    w.f64(g.value);
  }
  w.u32(static_cast<std::uint32_t>(delta.hists.size()));
  for (const trace::HistogramDeltaRec& h : delta.hists) {
    w.u32(h.id);
    w.u64(h.count_delta);
    w.f64(h.sum_delta);
    w.f64(h.max);
    w.u32(static_cast<std::uint32_t>(h.buckets.size()));
    for (const auto& [bucket, count] : h.buckets) {
      w.u32(bucket);
      w.u64(count);
    }
  }
  return make_frame(MessageType::kMetricUpdate, std::move(w));
}

MetricUpdateMsg MetricUpdateMsg::decode(WireReader& in) {
  MetricUpdateMsg m;
  m.seq = in.u32();
  m.t_agent_s = in.f64();
  const std::uint32_t def_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(def_count) * 9)
    throw WireError("cluster wire: metric update shorter than its def count");
  m.delta.defs.reserve(def_count);
  for (std::uint32_t i = 0; i < def_count; ++i) {
    trace::MetricDefRec d;
    d.id = in.u32();
    d.name = in.str();
    d.kind = static_cast<trace::MetricKind>(in.u8());
    m.delta.defs.push_back(std::move(d));
  }
  const std::uint32_t counter_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(counter_count) * 12)
    throw WireError("cluster wire: metric update shorter than its counter count");
  m.delta.counters.reserve(counter_count);
  for (std::uint32_t i = 0; i < counter_count; ++i) {
    trace::CounterDeltaRec c;
    c.id = in.u32();
    c.delta = in.u64();
    m.delta.counters.push_back(c);
  }
  const std::uint32_t gauge_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(gauge_count) * 12)
    throw WireError("cluster wire: metric update shorter than its gauge count");
  m.delta.gauges.reserve(gauge_count);
  for (std::uint32_t i = 0; i < gauge_count; ++i) {
    trace::GaugeValueRec g;
    g.id = in.u32();
    g.value = in.f64();
    m.delta.gauges.push_back(g);
  }
  const std::uint32_t hist_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(hist_count) * 32)
    throw WireError("cluster wire: metric update shorter than its histogram count");
  m.delta.hists.reserve(hist_count);
  for (std::uint32_t i = 0; i < hist_count; ++i) {
    trace::HistogramDeltaRec h;
    h.id = in.u32();
    h.count_delta = in.u64();
    h.sum_delta = in.f64();
    h.max = in.f64();
    const std::uint32_t bucket_count = in.u32();
    if (in.remaining() < static_cast<std::size_t>(bucket_count) * 12)
      throw WireError("cluster wire: metric update shorter than its bucket count");
    h.buckets.reserve(bucket_count);
    for (std::uint32_t b = 0; b < bucket_count; ++b) {
      const std::uint32_t index = in.u32();
      const std::uint64_t count = in.u64();
      h.buckets.emplace_back(index, count);
    }
    m.delta.hists.push_back(std::move(h));
  }
  return m;
}

Frame FlightRecordMsg::encode() const {
  WireWriter w;
  w.str(reason);
  w.str(dump);
  return make_frame(MessageType::kFlightRecord, std::move(w));
}

FlightRecordMsg FlightRecordMsg::decode(WireReader& in) {
  FlightRecordMsg m;
  m.reason = in.str();
  m.dump = in.str();
  return m;
}

Frame RejoinMsg::encode() const {
  WireWriter w;
  w.u32(version);
  w.str(node_name);
  w.u64(campaign_id);
  w.u32(phases_ended);
  return make_frame(MessageType::kRejoin, std::move(w));
}

RejoinMsg RejoinMsg::decode(WireReader& in) {
  RejoinMsg m;
  m.version = in.u32();
  m.node_name = in.str();
  m.campaign_id = in.u64();
  m.phases_ended = in.u32();
  return m;
}

Frame RejoinAckMsg::encode() const {
  WireWriter w;
  w.u8(accepted);
  w.u32(resume_phase);
  w.str(detail);
  return make_frame(MessageType::kRejoinAck, std::move(w));
}

RejoinAckMsg RejoinAckMsg::decode(WireReader& in) {
  RejoinAckMsg m;
  m.accepted = in.u8();
  m.resume_phase = in.u32();
  m.detail = in.str();
  return m;
}

Frame StatusRequestMsg::encode() const {
  WireWriter w;
  w.u32(version);
  return make_frame(MessageType::kStatusRequest, std::move(w));
}

StatusRequestMsg StatusRequestMsg::decode(WireReader& in) {
  StatusRequestMsg m;
  m.version = in.u32();
  return m;
}

Frame StatusReplyMsg::encode() const {
  WireWriter w;
  w.u8(accepting);
  w.u32(nodes_expected);
  w.u32(phase_count);
  w.u64(queued_samples);
  w.f64(budget_w);
  w.u8(fleet_healthy);
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const StatusNodeRec& n : nodes) {
    w.str(n.name);
    w.str(n.sku);
    w.u8(n.connected);
    w.u32(n.phases_begun);
    w.u32(n.phases_ended);
    w.f64(n.clock_offset_s);
    w.f64(n.clock_rtt_s);
    w.f64(n.achieved_w);
    w.f64(n.setpoint_w);
    w.f64(n.level);
    w.u8(n.lost);
    w.f64(n.last_metrics_age_s);
    w.u32(n.rejoins);
  }
  w.u32(static_cast<std::uint32_t>(spreads.size()));
  for (const StatusSpreadRec& s : spreads) {
    w.str(s.phase);
    w.str(s.min_node);
    w.str(s.max_node);
    w.f64(s.min_begin_s);
    w.f64(s.max_begin_s);
    w.u32(s.nodes);
  }
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const trace::MetricSnapshot& c : counters) {
    w.str(c.name);
    w.f64(c.value);
    w.u8(c.is_counter ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(alerts.size()));
  for (const StatusAlertRec& a : alerts) {
    w.str(a.kind);
    w.str(a.node);
    w.str(a.detail);
    w.f64(a.t_s);
  }
  return make_frame(MessageType::kStatusReply, std::move(w));
}

StatusReplyMsg StatusReplyMsg::decode(WireReader& in) {
  StatusReplyMsg m;
  m.accepting = in.u8();
  m.nodes_expected = in.u32();
  m.phase_count = in.u32();
  m.queued_samples = in.u64();
  m.budget_w = in.f64();
  m.fleet_healthy = in.u8();
  const std::uint32_t node_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(node_count) * 70)
    throw WireError("cluster wire: status reply shorter than its node count");
  m.nodes.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    StatusNodeRec n;
    n.name = in.str();
    n.sku = in.str();
    n.connected = in.u8();
    n.phases_begun = in.u32();
    n.phases_ended = in.u32();
    n.clock_offset_s = in.f64();
    n.clock_rtt_s = in.f64();
    n.achieved_w = in.f64();
    n.setpoint_w = in.f64();
    n.level = in.f64();
    n.lost = in.u8();
    n.last_metrics_age_s = in.f64();
    n.rejoins = in.u32();
    m.nodes.push_back(std::move(n));
  }
  const std::uint32_t spread_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(spread_count) * 32)
    throw WireError("cluster wire: status reply shorter than its spread count");
  m.spreads.reserve(spread_count);
  for (std::uint32_t i = 0; i < spread_count; ++i) {
    StatusSpreadRec s;
    s.phase = in.str();
    s.min_node = in.str();
    s.max_node = in.str();
    s.min_begin_s = in.f64();
    s.max_begin_s = in.f64();
    s.nodes = in.u32();
    m.spreads.push_back(std::move(s));
  }
  const std::uint32_t counter_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(counter_count) * 13)
    throw WireError("cluster wire: status reply shorter than its counter count");
  m.counters.reserve(counter_count);
  for (std::uint32_t i = 0; i < counter_count; ++i) {
    trace::MetricSnapshot c;
    c.name = in.str();
    c.value = in.f64();
    c.is_counter = in.u8() != 0;
    m.counters.push_back(std::move(c));
  }
  const std::uint32_t alert_count = in.u32();
  if (in.remaining() < static_cast<std::size_t>(alert_count) * 20)
    throw WireError("cluster wire: status reply shorter than its alert count");
  m.alerts.reserve(alert_count);
  for (std::uint32_t i = 0; i < alert_count; ++i) {
    StatusAlertRec a;
    a.kind = in.str();
    a.node = in.str();
    a.detail = in.str();
    a.t_s = in.f64();
    m.alerts.push_back(std::move(a));
  }
  return m;
}

}  // namespace fs2::cluster
