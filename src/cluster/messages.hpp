#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/wire.hpp"
#include "telemetry/sample.hpp"
#include "trace/metric_delta.hpp"
#include "trace/registry.hpp"
#include "trace/trace_event.hpp"

namespace fs2::cluster {

/// Protocol version: bumped on any wire-incompatible change. The hello
/// exchange rejects mismatches up front instead of failing mysteriously
/// mid-campaign. v2: per-node summaries are computed at the edge and ship
/// as kNodeSummary rows; sample batches cross the wire only for channels
/// that feed cluster aggregates. v3: observability — trace span buffers and
/// counter snapshots ship after the campaign (kTraceSpans/kCounterSnapshot,
/// CampaignMsg.trace_enabled), and the status plane adds the
/// kStatusRequest/kStatusReply introspection pair. v4: live metrics plane —
/// agents stream incremental registry deltas mid-run (kMetricUpdate,
/// CampaignMsg.metrics_interval_s) and ship a flight-recorder dump on
/// abnormal exit (kFlightRecord); status replies carry per-node health
/// (lost flag, metric-update age) plus the coordinator's alert log. v5:
/// chaos hardening — campaigns carry a run-unique campaign id, lost agents
/// reconnect and present a kRejoin/kRejoinAck handshake (node name +
/// campaign id + last completed phase), and status node rows count rejoins.
constexpr std::uint32_t kProtocolVersion = 5;

/// One framed message on the coordinator<->agent TCP stream. The transport
/// prefixes `u32 length` (payload size + 1 for the type byte); the first
/// payload byte is the MessageType.
enum class MessageType : std::uint8_t {
  kHello = 1,        ///< agent -> coordinator: identity + protocol version
  kSyncProbe = 2,    ///< coordinator -> agent: clock-sync ping
  kSyncReply = 3,    ///< agent -> coordinator: ping echo + agent clock
  kCampaign = 4,     ///< coordinator -> agent: campaign text + run options
  kEpoch = 5,        ///< coordinator -> agent: shared start time (agent clock)
  kChannel = 6,      ///< agent -> coordinator: telemetry channel registration
  kPhaseBracket = 7, ///< agent -> coordinator: phase begin/end marker
  kSampleBatch = 8,  ///< agent -> coordinator: batched telemetry samples
  kPhaseGo = 9,      ///< coordinator -> agent: all nodes ready, start phase k
  kBudgetReport = 10,///< agent -> coordinator: achieved watts this interval
  kBudgetAssign = 11,///< coordinator -> agent: new per-node power setpoint
  kVerdict = 12,     ///< agent -> coordinator: end-of-campaign convergence
  kShutdown = 13,    ///< coordinator -> agent: run over, disconnect
  kNodeSummary = 14, ///< agent -> coordinator: one edge-aggregated summary row
  kTraceSpans = 15,  ///< agent -> coordinator: node-local trace span buffer
  kCounterSnapshot = 16, ///< agent -> coordinator: counter/gauge registry snapshot
  kStatusRequest = 17,   ///< any client -> coordinator: live fleet health probe
  kStatusReply = 18,     ///< coordinator -> client: fleet health snapshot
  kMetricUpdate = 19,    ///< agent -> coordinator: incremental registry delta
  kFlightRecord = 20,    ///< agent -> coordinator: flight-recorder dump (abnormal exit)
  kRejoin = 21,          ///< agent -> coordinator: reconnect handshake after a loss
  kRejoinAck = 22,       ///< coordinator -> agent: rejoin verdict + resume phase
};

const char* to_string(MessageType type);

struct Frame {
  MessageType type = MessageType::kShutdown;
  std::vector<std::uint8_t> payload;
};

// ---- message structs --------------------------------------------------------
//
// Each struct encodes itself into a Frame and decodes from a WireReader
// positioned after the type byte. Field order on the wire is declaration
// order here; docs/cluster.md mirrors this table.

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::string node_name;
  std::string sku;  ///< e.g. "sim-zen2@1500MHz" or "host"
  Frame encode() const;
  static HelloMsg decode(WireReader& in);
};

struct SyncProbeMsg {
  std::uint32_t seq = 0;
  double t_coord_s = 0.0;  ///< coordinator steady-clock seconds at send
  Frame encode() const;
  static SyncProbeMsg decode(WireReader& in);
};

struct SyncReplyMsg {
  std::uint32_t seq = 0;
  double t_coord_s = 0.0;  ///< echoed from the probe
  double t_agent_s = 0.0;  ///< agent steady-clock seconds at reply
  Frame encode() const;
  static SyncReplyMsg decode(WireReader& in);
};

struct CampaignMsg {
  std::string campaign_text;      ///< the campaign file, verbatim
  std::uint8_t has_budget = 0;    ///< 1 = run every phase under budget control
  double initial_setpoint_w = 0;  ///< this node's starting power share
  double ctl_interval_s = 0.25;   ///< per-node controller tick period
  double budget_interval_s = 0.5; ///< report/assign exchange cadence
  double budget_band = 0.02;      ///< convergence band (informational)
  std::uint8_t trace_enabled = 0; ///< 1 = record spans, ship kTraceSpans at end
  /// kMetricUpdate cadence in seconds; 0 disables in-run metric shipping.
  double metrics_interval_s = 1.0;
  /// Run-unique id (derived from the coordinator's seed + start time). A
  /// rejoining agent echoes it so the coordinator can tell "my agent coming
  /// back" from "an agent of some other run dialing the wrong port".
  std::uint64_t campaign_id = 0;
  Frame encode() const;
  static CampaignMsg decode(WireReader& in);
};

struct EpochMsg {
  double t0_agent_s = 0.0;  ///< campaign start, in the AGENT's steady clock
  double offset_s = 0.0;    ///< estimated agent-minus-coordinator clock offset
  double rtt_s = 0.0;       ///< round-trip time of the best sync sample
  Frame encode() const;
  static EpochMsg decode(WireReader& in);
};

struct ChannelMsg {
  std::uint32_t channel_id = 0;  ///< agent-local TelemetryBus channel id
  std::string name;
  std::string unit;
  std::uint8_t trim_phase = 1;   ///< telemetry::TrimMode::kPhase
  std::uint8_t summarize = 1;
  Frame encode() const;
  static ChannelMsg decode(WireReader& in);
};

struct PhaseBracketMsg {
  std::uint8_t is_begin = 1;
  std::uint32_t phase_index = 0;
  std::string phase_name;
  double duration_s = 0.0;
  double time_offset_s = 0.0;   ///< campaign time of the phase start
  double start_delta_s = 0.0;   ///< trim deltas (begin only)
  double stop_delta_s = 0.0;
  /// Wall-clock seconds since the shared epoch at the moment the bracket
  /// was emitted — what the coordinator compares across nodes to verify
  /// lockstep (begin brackets) and report phase wall durations (end).
  double epoch_elapsed_s = 0.0;
  Frame encode() const;
  static PhaseBracketMsg decode(WireReader& in);
};

/// The hot message: every telemetry sample of every node crosses the wire
/// inside one of these. The payload is `u32 channel | u32 count | count x
/// (f64 time, f64 value)` — i.e. exactly a telemetry::Sample array in
/// little-endian, so on little-endian hosts encode and decode are single
/// memcpys. Senders and the coordinator use the *_into variants with
/// reused scratch buffers; the allocating encode()/decode() remain for
/// cold paths and tests.
struct SampleBatchMsg {
  std::uint32_t channel_id = 0;
  std::vector<telemetry::Sample> samples;  ///< phase-local timestamps

  Frame encode() const;
  static SampleBatchMsg decode(WireReader& in);

  /// Encode straight from a sample array into a reused writer (cleared
  /// here) — no intermediate message object, no allocation once the writer
  /// has warmed up.
  static void encode_into(WireWriter& w, std::uint32_t channel_id,
                          const telemetry::Sample* samples, std::size_t count);
  /// Decode reusing `out`'s sample-vector capacity.
  static void decode_into(WireReader& in, SampleBatchMsg& out);
};

/// One per-phase, per-channel summary row aggregated ON THE NODE (the same
/// SummarySink a local run uses, so values are identical to what the
/// coordinator's replay used to produce) and shipped at phase end, before
/// the end bracket. The coordinator stores rows verbatim instead of
/// re-deriving them from sample batches — O(rows) per phase instead of
/// O(samples), which is what lets one coordinator hold hundreds of
/// streaming agents.
struct NodeSummaryMsg {
  std::uint32_t phase_index = 0;
  std::string name;
  std::string unit;
  std::uint64_t samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  Frame encode() const;
  static NodeSummaryMsg decode(WireReader& in);
};

struct PhaseGoMsg {
  std::uint32_t phase_index = 0;
  Frame encode() const;
  static PhaseGoMsg decode(WireReader& in);
};

struct BudgetReportMsg {
  std::uint32_t seq = 0;         ///< per-node report counter
  double achieved_w = 0.0;       ///< trailing-mean measured power
  double setpoint_w = 0.0;       ///< the node's current setpoint
  double level = 0.0;            ///< commanded load level (saturation signal)
  Frame encode() const;
  static BudgetReportMsg decode(WireReader& in);
};

struct BudgetAssignMsg {
  std::uint32_t seq = 0;         ///< echoes the report
  double setpoint_w = 0.0;
  Frame encode() const;
  static BudgetAssignMsg decode(WireReader& in);
};

struct VerdictMsg {
  std::uint8_t converged = 1;
  std::string detail;            ///< human-readable one-liner for the log
  Frame encode() const;
  static VerdictMsg decode(WireReader& in);
};

struct ShutdownMsg {
  std::uint8_t ok = 1;
  Frame encode() const;
  static ShutdownMsg decode(WireReader& in);
};

/// A node's buffered trace spans, shipped once after the last phase (before
/// the verdict). Timestamps stay in the AGENT's steady clock — the
/// coordinator rebases them through the handshake's clock-sync offset when
/// it merges the fleet timeline.
struct TraceSpansMsg {
  std::vector<trace::Span> spans;
  std::uint64_t dropped = 0;  ///< ring overflow count (0 = lossless)
  Frame encode() const;
  static TraceSpansMsg decode(WireReader& in);
};

/// End-of-run counter/gauge registry snapshot (one entry per metric).
struct CounterSnapshotMsg {
  std::vector<trace::MetricSnapshot> counters;
  Frame encode() const;
  static CounterSnapshotMsg decode(WireReader& in);
};

/// Incremental registry delta, shipped every CampaignMsg.metrics_interval_s
/// seconds while a campaign runs. Counter deltas and histogram bucket
/// increments are associative sums the coordinator folds into per-node and
/// fleet-rollup series; gauges are last-write-wins. Metric definitions
/// (id -> name/kind) ship once, the first interval each metric exists.
struct MetricUpdateMsg {
  std::uint32_t seq = 0;      ///< per-connection update counter
  double t_agent_s = 0.0;     ///< epoch-elapsed seconds on the agent clock
  trace::MetricDelta delta;
  Frame encode() const;
  static MetricUpdateMsg decode(WireReader& in);
};

/// A node's flight-recorder dump, shipped on abnormal exit so the
/// coordinator's post-mortem does not depend on reaching the node's disk.
struct FlightRecordMsg {
  std::string reason;  ///< one-liner: what killed the node
  std::string dump;    ///< FlightRecorder::serialize() text
  Frame encode() const;
  static FlightRecordMsg decode(WireReader& in);
};

/// Reconnect handshake: a previously-admitted agent dialing back in after
/// losing its connection. Sent instead of kHello on the fresh socket; the
/// coordinator validates the (name, campaign id) pair against its node
/// table, answers kRejoinAck, re-runs clock sync, and re-ships the
/// campaign + epoch so the agent can resume at the acked phase.
struct RejoinMsg {
  std::uint32_t version = kProtocolVersion;
  std::string node_name;
  std::uint64_t campaign_id = 0;
  std::uint32_t phases_ended = 0;  ///< last completed phase count on the agent
  Frame encode() const;
  static RejoinMsg decode(WireReader& in);
};

/// The coordinator's rejoin verdict. `resume_phase` is the phase the agent
/// must run next — the coordinator's released-barrier prefix, which may be
/// ahead of the agent's own count when phase-gos were lost with the
/// connection. On resume_phase == phase count the agent goes straight to
/// its verdict. `accepted == 0` means the handshake was refused (unknown
/// node, wrong campaign, stale protocol); `detail` says why.
struct RejoinAckMsg {
  std::uint8_t accepted = 0;
  std::uint32_t resume_phase = 0;
  std::string detail;
  Frame encode() const;
  static RejoinAckMsg decode(WireReader& in);
};

/// Live health probe. Any TCP client may connect to the coordinator port,
/// send one of these, and read back a single kStatusReply — the connection
/// is closed afterwards and never counts against --nodes.
struct StatusRequestMsg {
  std::uint32_t version = kProtocolVersion;
  Frame encode() const;
  static StatusRequestMsg decode(WireReader& in);
};

/// One node's health row inside a status reply.
struct StatusNodeRec {
  std::string name;
  std::string sku;
  std::uint8_t connected = 1;
  std::uint32_t phases_begun = 0;
  std::uint32_t phases_ended = 0;
  double clock_offset_s = 0.0;  ///< agent minus coordinator
  double clock_rtt_s = 0.0;
  double achieved_w = 0.0;      ///< latest budget report (0 until one lands)
  double setpoint_w = 0.0;
  double level = 0.0;
  std::uint8_t lost = 0;        ///< connection dropped mid-campaign
  /// Seconds since the node's last kMetricUpdate (-1 = none yet / disabled).
  double last_metrics_age_s = -1.0;
  std::uint32_t rejoins = 0;    ///< successful reconnect handshakes
};

/// One phase's begin-spread row inside a status reply.
struct StatusSpreadRec {
  std::string phase;
  std::string min_node;  ///< earliest beginner
  std::string max_node;  ///< latest beginner (the straggler)
  double min_begin_s = 0.0;
  double max_begin_s = 0.0;
  std::uint32_t nodes = 0;
};

/// One anomaly-detector alert inside a status reply.
struct StatusAlertRec {
  std::string kind;    ///< "flatline" | "divergence" | "straggler" | "node-lost"
  std::string node;    ///< offending node ("" = fleet-wide)
  std::string detail;
  double t_s = 0.0;    ///< coordinator epoch-elapsed seconds
};

/// Fleet health snapshot: what `firestarter --status host:port` prints.
struct StatusReplyMsg {
  std::uint8_t accepting = 0;      ///< 1 = handshake window, campaign not started
  std::uint32_t nodes_expected = 0;
  std::uint32_t phase_count = 0;
  std::uint64_t queued_samples = 0;  ///< coordinator-side aggregate lag
  double budget_w = 0.0;             ///< global power budget (0 = none)
  /// 0 when any node is unhealthy (lost, flat-lined, diverged, straggling) —
  /// `firestarter --status` exits nonzero on this, so scripts can gate on
  /// fleet health without parsing the table.
  std::uint8_t fleet_healthy = 1;
  std::vector<StatusNodeRec> nodes;
  std::vector<StatusSpreadRec> spreads;
  std::vector<trace::MetricSnapshot> counters;  ///< coordinator registry
  std::vector<StatusAlertRec> alerts;           ///< anomaly log, oldest first
  Frame encode() const;
  static StatusReplyMsg decode(WireReader& in);
};

}  // namespace fs2::cluster
