#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/wire.hpp"

namespace fs2::cluster {

/// Protocol version: bumped on any wire-incompatible change. The hello
/// exchange rejects mismatches up front instead of failing mysteriously
/// mid-campaign.
constexpr std::uint32_t kProtocolVersion = 1;

/// One framed message on the coordinator<->agent TCP stream. The transport
/// prefixes `u32 length` (payload size + 1 for the type byte); the first
/// payload byte is the MessageType.
enum class MessageType : std::uint8_t {
  kHello = 1,        ///< agent -> coordinator: identity + protocol version
  kSyncProbe = 2,    ///< coordinator -> agent: clock-sync ping
  kSyncReply = 3,    ///< agent -> coordinator: ping echo + agent clock
  kCampaign = 4,     ///< coordinator -> agent: campaign text + run options
  kEpoch = 5,        ///< coordinator -> agent: shared start time (agent clock)
  kChannel = 6,      ///< agent -> coordinator: telemetry channel registration
  kPhaseBracket = 7, ///< agent -> coordinator: phase begin/end marker
  kSampleBatch = 8,  ///< agent -> coordinator: batched telemetry samples
  kPhaseGo = 9,      ///< coordinator -> agent: all nodes ready, start phase k
  kBudgetReport = 10,///< agent -> coordinator: achieved watts this interval
  kBudgetAssign = 11,///< coordinator -> agent: new per-node power setpoint
  kVerdict = 12,     ///< agent -> coordinator: end-of-campaign convergence
  kShutdown = 13,    ///< coordinator -> agent: run over, disconnect
};

const char* to_string(MessageType type);

struct Frame {
  MessageType type = MessageType::kShutdown;
  std::vector<std::uint8_t> payload;
};

// ---- message structs --------------------------------------------------------
//
// Each struct encodes itself into a Frame and decodes from a WireReader
// positioned after the type byte. Field order on the wire is declaration
// order here; docs/cluster.md mirrors this table.

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::string node_name;
  std::string sku;  ///< e.g. "sim-zen2@1500MHz" or "host"
  Frame encode() const;
  static HelloMsg decode(WireReader& in);
};

struct SyncProbeMsg {
  std::uint32_t seq = 0;
  double t_coord_s = 0.0;  ///< coordinator steady-clock seconds at send
  Frame encode() const;
  static SyncProbeMsg decode(WireReader& in);
};

struct SyncReplyMsg {
  std::uint32_t seq = 0;
  double t_coord_s = 0.0;  ///< echoed from the probe
  double t_agent_s = 0.0;  ///< agent steady-clock seconds at reply
  Frame encode() const;
  static SyncReplyMsg decode(WireReader& in);
};

struct CampaignMsg {
  std::string campaign_text;      ///< the campaign file, verbatim
  std::uint8_t has_budget = 0;    ///< 1 = run every phase under budget control
  double initial_setpoint_w = 0;  ///< this node's starting power share
  double ctl_interval_s = 0.25;   ///< per-node controller tick period
  double budget_interval_s = 0.5; ///< report/assign exchange cadence
  double budget_band = 0.02;      ///< convergence band (informational)
  Frame encode() const;
  static CampaignMsg decode(WireReader& in);
};

struct EpochMsg {
  double t0_agent_s = 0.0;  ///< campaign start, in the AGENT's steady clock
  double offset_s = 0.0;    ///< estimated agent-minus-coordinator clock offset
  double rtt_s = 0.0;       ///< round-trip time of the best sync sample
  Frame encode() const;
  static EpochMsg decode(WireReader& in);
};

struct ChannelMsg {
  std::uint32_t channel_id = 0;  ///< agent-local TelemetryBus channel id
  std::string name;
  std::string unit;
  std::uint8_t trim_phase = 1;   ///< telemetry::TrimMode::kPhase
  std::uint8_t summarize = 1;
  Frame encode() const;
  static ChannelMsg decode(WireReader& in);
};

struct PhaseBracketMsg {
  std::uint8_t is_begin = 1;
  std::uint32_t phase_index = 0;
  std::string phase_name;
  double duration_s = 0.0;
  double time_offset_s = 0.0;   ///< campaign time of the phase start
  double start_delta_s = 0.0;   ///< trim deltas (begin only)
  double stop_delta_s = 0.0;
  /// Wall-clock seconds since the shared epoch at the moment the bracket
  /// was emitted — what the coordinator compares across nodes to verify
  /// lockstep (begin brackets) and report phase wall durations (end).
  double epoch_elapsed_s = 0.0;
  Frame encode() const;
  static PhaseBracketMsg decode(WireReader& in);
};

struct SampleBatchMsg {
  std::uint32_t channel_id = 0;
  std::vector<double> times_s;   ///< phase-local, parallel to values
  std::vector<double> values;
  Frame encode() const;
  static SampleBatchMsg decode(WireReader& in);
};

struct PhaseGoMsg {
  std::uint32_t phase_index = 0;
  Frame encode() const;
  static PhaseGoMsg decode(WireReader& in);
};

struct BudgetReportMsg {
  std::uint32_t seq = 0;         ///< per-node report counter
  double achieved_w = 0.0;       ///< trailing-mean measured power
  double setpoint_w = 0.0;       ///< the node's current setpoint
  double level = 0.0;            ///< commanded load level (saturation signal)
  Frame encode() const;
  static BudgetReportMsg decode(WireReader& in);
};

struct BudgetAssignMsg {
  std::uint32_t seq = 0;         ///< echoes the report
  double setpoint_w = 0.0;
  Frame encode() const;
  static BudgetAssignMsg decode(WireReader& in);
};

struct VerdictMsg {
  std::uint8_t converged = 1;
  std::string detail;            ///< human-readable one-liner for the log
  Frame encode() const;
  static VerdictMsg decode(WireReader& in);
};

struct ShutdownMsg {
  std::uint8_t ok = 1;
  Frame encode() const;
  static ShutdownMsg decode(WireReader& in);
};

}  // namespace fs2::cluster
