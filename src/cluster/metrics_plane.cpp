#include "cluster/metrics_plane.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fs2::cluster {

// ---- MetricStore ------------------------------------------------------------

void MetricStore::fold(std::size_t node, const MetricUpdateMsg& msg, double now_s) {
  if (node >= nodes_.size()) nodes_.resize(node + 1);
  NodeSeries& series = nodes_[node];

  for (const trace::MetricDefRec& def : msg.delta.defs) {
    if (def.id >= series.defs.size()) series.defs.resize(def.id + 1);
    series.defs[def.id] = def;
  }
  const std::size_t ids = series.defs.size();
  if (series.counters.size() < ids) series.counters.resize(ids, 0);
  if (series.gauges.size() < ids) series.gauges.resize(ids, 0.0);
  if (series.hists.size() < ids) series.hists.resize(ids);

  for (const trace::CounterDeltaRec& c : msg.delta.counters) {
    if (c.id >= series.counters.size()) series.counters.resize(c.id + 1, 0);
    series.counters[c.id] += c.delta;
  }
  for (const trace::GaugeValueRec& g : msg.delta.gauges) {
    if (g.id >= series.gauges.size()) series.gauges.resize(g.id + 1, 0.0);
    series.gauges[g.id] = g.value;
  }
  for (const trace::HistogramDeltaRec& h : msg.delta.hists) {
    if (h.id >= series.hists.size()) series.hists.resize(h.id + 1);
    trace::HistogramSnapshot& target = series.hists[h.id];
    target.count += h.count_delta;
    target.sum += h.sum_delta;
    target.max = std::max(target.max, h.max);
    for (const auto& [bucket, delta] : h.buckets) {
      if (bucket >= target.buckets.size()) target.buckets.resize(bucket + 1, 0);
      target.buckets[bucket] += delta;
    }
  }

  // Clamp pre-epoch folds to 0 so the -1 "never" sentinel stays unambiguous.
  series.last_update_s = std::max(now_s, 0.0);
  series.last_agent_t_s = msg.t_agent_s;
  ++series.updates;
}

MetricStore::Rollup MetricStore::rollup() const {
  Rollup out;
  for (const NodeSeries& series : nodes_) {
    for (std::size_t id = 0; id < series.defs.size(); ++id) {
      const trace::MetricDefRec& def = series.defs[id];
      if (def.name.empty()) continue;
      switch (def.kind) {
        case trace::MetricKind::kCounter: {
          auto it = std::find_if(out.counters.begin(), out.counters.end(),
                                 [&](const auto& p) { return p.first == def.name; });
          if (it == out.counters.end())
            out.counters.emplace_back(def.name, series.counters[id]);
          else
            it->second += series.counters[id];
          break;
        }
        case trace::MetricKind::kHistogram: {
          auto it = std::find_if(out.hists.begin(), out.hists.end(),
                                 [&](const auto& h) { return h.name == def.name; });
          if (it == out.hists.end()) {
            out.hists.push_back(series.hists[id]);
            out.hists.back().name = def.name;
          } else {
            it->merge(series.hists[id]);
          }
          break;
        }
        case trace::MetricKind::kGauge:
          break;  // gauges don't roll up — they stay per-node
      }
    }
  }
  return out;
}

// ---- AnomalyDetector --------------------------------------------------------

AnomalyDetector::AnomalyDetector(Options options, std::size_t node_count)
    : options_(options), states_(node_count) {}

void AnomalyDetector::set_node_name(std::size_t node, std::string name) {
  if (node >= states_.size()) states_.resize(node + 1);
  states_[node].name = std::move(name);
}

void AnomalyDetector::raise(std::string kind, std::string node, std::string detail,
                            double t_s) {
  alerts_.push_back(Alert{std::move(kind), std::move(node), std::move(detail), t_s});
}

void AnomalyDetector::on_metric_update(std::size_t node, double now_s) {
  if (node >= states_.size()) states_.resize(node + 1);
  NodeState& s = states_[node];
  // Updates can land during the epoch countdown, when epoch-elapsed time is
  // still negative — clamp so a pre-epoch timestamp doesn't collide with
  // the "never updated" sentinel and exempt the node from the sweep.
  s.last_update_s = std::max(now_s, 0.0);
  s.flatlined = false;  // resumed shipping — healthy again (alert log keeps it)
}

void AnomalyDetector::on_budget_report(std::size_t node, double achieved_w,
                                       double setpoint_w, double now_s) {
  if (node >= states_.size()) states_.resize(node + 1);
  NodeState& s = states_[node];
  const double band = options_.divergence_band * std::abs(setpoint_w);
  if (setpoint_w > 0.0 && std::abs(achieved_w - setpoint_w) > band) {
    if (++s.beyond_band == options_.divergence_windows && !s.diverged) {
      s.diverged = true;
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "achieved=%.1fW setpoint=%.1fW band=%.0f%% windows=%d",
                    achieved_w, setpoint_w, options_.divergence_band * 100.0,
                    options_.divergence_windows);
      raise("divergence", s.name, detail, now_s);
    }
  } else {
    s.beyond_band = 0;
    s.diverged = false;
  }
}

void AnomalyDetector::on_phase_spread(const std::string& phase,
                                      const std::string& straggler, double spread_s,
                                      double now_s) {
  if (spread_s <= options_.sync_tolerance_s) return;
  char detail[160];
  std::snprintf(detail, sizeof(detail), "phase=%s spread=%.3fs tolerance=%.3fs",
                phase.c_str(), spread_s, options_.sync_tolerance_s);
  raise("straggler", straggler, detail, now_s);
}

void AnomalyDetector::on_node_lost(std::size_t node, const std::string& why,
                                   double now_s) {
  if (node >= states_.size()) states_.resize(node + 1);
  NodeState& s = states_[node];
  if (s.lost) return;
  s.lost = true;
  raise("node-lost", s.name, why, now_s);
}

void AnomalyDetector::on_node_recovered(std::size_t node, double now_s) {
  if (node >= states_.size()) states_.resize(node + 1);
  NodeState& s = states_[node];
  if (!s.lost) return;
  s.lost = false;
  s.flatlined = false;
  s.diverged = false;
  s.beyond_band = 0;
  s.last_update_s = now_s;  // restart the flat-line clock from the rejoin
  raise("node-recovered", s.name, "rejoined after loss", now_s);
}

void AnomalyDetector::on_node_done(std::size_t node) {
  if (node >= states_.size()) states_.resize(node + 1);
  states_[node].done = true;
}

void AnomalyDetector::sweep(double now_s) {
  if (options_.metrics_interval_s <= 0.0) return;
  const double limit = options_.flatline_intervals * options_.metrics_interval_s;
  for (NodeState& s : states_) {
    if (s.lost || s.done || s.flatlined || s.last_update_s < 0.0) continue;
    const double age = now_s - s.last_update_s;
    if (age <= limit) continue;
    s.flatlined = true;
    char detail[128];
    std::snprintf(detail, sizeof(detail), "no metric update for %.1fs (interval %.1fs)",
                  age, options_.metrics_interval_s);
    raise("flatline", s.name, detail, now_s);
  }
}

std::vector<Alert> AnomalyDetector::take_new() {
  std::vector<Alert> out(alerts_.begin() + static_cast<std::ptrdiff_t>(taken_),
                         alerts_.end());
  taken_ = alerts_.size();
  return out;
}

bool AnomalyDetector::node_healthy(std::size_t node) const {
  if (node >= states_.size()) return true;
  const NodeState& s = states_[node];
  return !s.lost && !s.flatlined && !s.diverged;
}

bool AnomalyDetector::fleet_healthy() const {
  for (std::size_t i = 0; i < states_.size(); ++i)
    if (!node_healthy(i)) return false;
  return true;
}

}  // namespace fs2::cluster
