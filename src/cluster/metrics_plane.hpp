#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/messages.hpp"
#include "trace/metric_delta.hpp"
#include "trace/registry.hpp"

namespace fs2::cluster {

/// Coordinator-side fold target for the kMetricUpdate stream: one series
/// set per node, keyed by the node's stable metric ids, plus fleet rollups
/// computed on demand. Folding is pure association — counter deltas add,
/// gauge values overwrite, histogram buckets add elementwise — so per-node
/// series fold identically whether updates arrive one at a time or batched
/// through a future sub-coordinator tier (same composability argument as
/// aggregate_rules.hpp).
class MetricStore {
 public:
  struct NodeSeries {
    std::vector<trace::MetricDefRec> defs;       ///< by id (empty name = unseen)
    std::vector<std::uint64_t> counters;         ///< folded totals, by id
    std::vector<double> gauges;                  ///< last value, by id
    std::vector<trace::HistogramSnapshot> hists; ///< folded buckets, by id
    double last_update_s = -1.0;  ///< coordinator epoch-elapsed at last fold
    double last_agent_t_s = 0.0;  ///< agent-side stamp of the last update
    std::uint32_t updates = 0;
  };

  /// Fleet-wide rollup: counters summed and histograms merged across nodes
  /// by metric NAME (ids are node-local).
  struct Rollup {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<trace::HistogramSnapshot> hists;
  };

  void resize(std::size_t node_count) { nodes_.resize(node_count); }

  void fold(std::size_t node, const MetricUpdateMsg& msg, double now_s);

  const std::vector<NodeSeries>& nodes() const { return nodes_; }
  Rollup rollup() const;

  /// Seconds since `node` last folded an update (-1 = never).
  double age_s(std::size_t node, double now_s) const {
    if (node >= nodes_.size() || nodes_[node].last_update_s < 0.0) return -1.0;
    return now_s - nodes_[node].last_update_s;
  }

 private:
  std::vector<NodeSeries> nodes_;
};

/// One detected anomaly. `kind` is a closed vocabulary so scripts can match
/// on it: "flatline" | "divergence" | "straggler" | "node-lost" |
/// "node-recovered".
struct Alert {
  std::string kind;
  std::string node;   ///< offending node ("" = fleet-wide)
  std::string detail;
  double t_s = 0.0;   ///< coordinator epoch-elapsed seconds
};

/// Rolling-window anomaly detector over the per-node series. Alerts are
/// edge-triggered (one per entry into a bad state, not one per window) and
/// accumulate in an append-only log; node HEALTH is level-triggered — a
/// node that resumes shipping updates or returns into the budget band goes
/// healthy again, but the alert history keeps the excursion for the
/// post-mortem.
class AnomalyDetector {
 public:
  struct Options {
    double metrics_interval_s = 1.0;  ///< 0 disables flat-line detection
    double sync_tolerance_s = 0.25;
    /// Divergence band as a fraction of the setpoint, and how many
    /// consecutive budget reports must exceed it before alerting.
    double divergence_band = 0.1;
    int divergence_windows = 4;
    /// A node is flat-lined when no update landed for this many intervals.
    double flatline_intervals = 3.0;
  };

  AnomalyDetector() = default;
  AnomalyDetector(Options options, std::size_t node_count);

  void set_node_name(std::size_t node, std::string name);

  void on_metric_update(std::size_t node, double now_s);
  void on_budget_report(std::size_t node, double achieved_w, double setpoint_w,
                        double now_s);
  void on_phase_spread(const std::string& phase, const std::string& straggler,
                       double spread_s, double now_s);
  void on_node_lost(std::size_t node, const std::string& why, double now_s);
  /// The node rejoined after a loss: edge-triggered "node-recovered" alert,
  /// and its health flags reset so the fresh incarnation is judged on its
  /// own behavior (the alert log keeps the excursion).
  void on_node_recovered(std::size_t node, double now_s);
  /// The node delivered its verdict: it legitimately stops shipping updates
  /// now, so the flat-line sweep must leave it alone.
  void on_node_done(std::size_t node);

  /// Periodic scan for nodes that stopped shipping updates (flat-line).
  /// Cheap — called from the coordinator event loop on every poll timeout.
  void sweep(double now_s);

  const std::vector<Alert>& alerts() const { return alerts_; }
  /// Alerts raised since the last call — the coordinator logs these and
  /// appends them to the trace timeline as they happen.
  std::vector<Alert> take_new();

  bool node_healthy(std::size_t node) const;
  bool fleet_healthy() const;

 private:
  struct NodeState {
    std::string name;
    double last_update_s = -1.0;
    int beyond_band = 0;    ///< consecutive out-of-band budget reports
    bool flatlined = false;
    bool diverged = false;
    bool lost = false;
    bool done = false;  ///< verdict received — silence is expected
  };

  void raise(std::string kind, std::string node, std::string detail, double t_s);

  Options options_;
  std::vector<NodeState> states_;
  std::vector<Alert> alerts_;
  std::size_t taken_ = 0;  ///< watermark into alerts_ for take_new()
};

}  // namespace fs2::cluster
