#include "cluster/remote_sink.hpp"

#include <algorithm>

#include "cluster/aggregate_rules.hpp"
#include "trace/registry.hpp"

namespace fs2::cluster {

namespace {

trace::Counter& batch_frame_counter() {
  static trace::Counter& c =
      trace::Registry::instance().counter("remote_sink.sample_batch_frames");
  return c;
}

/// The adaptive flush threshold, observable: a saturated fleet shows the
/// thresholds climbing toward kMaxBatchSamples.
trace::Gauge& batch_threshold_gauge() {
  static trace::Gauge& g = trace::Registry::instance().gauge("remote_sink.batch_threshold");
  return g;
}

/// Encoded frame payload sizes — the live distribution behind the wire
/// protocol's bytes-per-sample claims in docs/cluster.md.
trace::Histogram& tx_bytes_hist() {
  static trace::Histogram& h =
      trace::Registry::instance().histogram("cluster.tx_frame_bytes");
  return h;
}

}  // namespace

RemoteSink::RemoteSink(Connection* conn, std::chrono::steady_clock::time_point epoch)
    : conn_(conn), epoch_(epoch) {
  if (conn_ == nullptr) throw Error("RemoteSink: connection must not be null");
}

double RemoteSink::epoch_elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void RemoteSink::on_channel(telemetry::ChannelId id, const telemetry::ChannelInfo& info) {
  if (batches_.size() <= id) batches_.resize(id + 1);
  batches_[id].ships_samples = aggregate_rule_for(info.name) != nullptr;
  summary_.on_channel(id, info);
  ChannelMsg msg;
  msg.channel_id = static_cast<std::uint32_t>(id);
  msg.name = info.name;
  msg.unit = info.unit;
  msg.trim_phase = info.trim == telemetry::TrimMode::kPhase ? 1 : 0;
  msg.summarize = info.summarize ? 1 : 0;
  if (!muted_) conn_->send(msg.encode());
}

void RemoteSink::on_phase_begin(const telemetry::PhaseInfo& phase) {
  summary_.on_phase_begin(phase);
  PhaseBracketMsg msg;
  msg.is_begin = 1;
  msg.phase_index = phase_count_++;
  msg.phase_name = phase.name;
  msg.duration_s = phase.duration_s;
  msg.time_offset_s = phase.time_offset_s;
  msg.start_delta_s = phase.start_delta_s;
  msg.stop_delta_s = phase.stop_delta_s;
  msg.epoch_elapsed_s = epoch_elapsed_s();
  if (!muted_) conn_->send(msg.encode());
}

void RemoteSink::on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) {
  if (batches_.size() <= id) batches_.resize(id + 1);
  summary_.on_sample(id, sample);
  Batch& batch = batches_[id];
  if (!batch.ships_samples) return;
  batch.samples.push_back(sample);
  if (batch.samples.size() >= batch.threshold) flush(id);
}

void RemoteSink::on_samples(telemetry::ChannelId id, const telemetry::Sample* samples,
                            std::size_t count) {
  if (batches_.size() <= id) batches_.resize(id + 1);
  summary_.on_samples(id, samples, count);
  Batch& batch = batches_[id];
  if (!batch.ships_samples) return;
  batch.samples.insert(batch.samples.end(), samples, samples + count);
  if (batch.samples.size() >= batch.threshold) flush(id);
}

void RemoteSink::send_new_summary_rows() {
  const std::vector<metrics::Summary>& rows = summary_.rows();
  for (; summary_rows_sent_ < rows.size(); ++summary_rows_sent_) {
    const metrics::Summary& row = rows[summary_rows_sent_];
    NodeSummaryMsg msg;
    msg.phase_index = phase_count_ - 1;
    msg.name = row.name;
    msg.unit = row.unit;
    msg.samples = row.samples;
    msg.mean = row.mean;
    msg.stddev = row.stddev;
    msg.min = row.min;
    msg.max = row.max;
    msg.p50 = row.p50;
    msg.p95 = row.p95;
    msg.p99 = row.p99;
    // Muted, the watermark still advances: a partial phase's rows are
    // dropped for good, not deferred past the rejoin.
    if (!muted_) conn_->send(msg.encode());
  }
}

void RemoteSink::on_phase_end(const telemetry::PhaseInfo& phase) {
  // Samples and summary rows first: the end bracket doubles as the
  // coordinator's "node finished phase k" barrier signal, so the phase's
  // complete telemetry must already be on the wire when it arrives.
  flush_all();
  summary_.on_phase_end(phase);
  send_new_summary_rows();
  PhaseBracketMsg msg;
  msg.is_begin = 0;
  msg.phase_index = phase_count_ - 1;
  msg.phase_name = phase.name;
  msg.duration_s = phase.duration_s;
  msg.time_offset_s = phase.time_offset_s;
  msg.epoch_elapsed_s = epoch_elapsed_s();
  if (!muted_) conn_->send(msg.encode());
}

void RemoteSink::on_finish() {
  flush_all();
  summary_.on_finish();
}

void RemoteSink::flush(telemetry::ChannelId id) {
  Batch& batch = batches_[id];
  if (batch.samples.empty()) return;
  if (muted_) {
    batch.samples.clear();  // partial-phase samples die with the mute
    return;
  }
  SampleBatchMsg::encode_into(scratch_, static_cast<std::uint32_t>(id),
                              batch.samples.data(), batch.samples.size());
  conn_->send(MessageType::kSampleBatch, scratch_);
  batch_frame_counter().add();
  tx_bytes_hist().record(static_cast<double>(scratch_.bytes().size()));

  // Re-target the flush threshold from this batch's observed rate so one
  // frame carries ~kTargetBatchSeconds of stream regardless of sample rate.
  // Phase-boundary flushes of partial batches skip the update — their span
  // reflects the cut, not the rate.
  if (batch.samples.size() >= batch.threshold) {
    const double span_s = batch.samples.back().time_s - batch.samples.front().time_s;
    if (span_s > 0.0) {
      const double rate = static_cast<double>(batch.samples.size() - 1) / span_s;
      const auto target = static_cast<std::size_t>(rate * kTargetBatchSeconds);
      batch.threshold = std::clamp(target, kMinBatchSamples, kMaxBatchSamples);
      batch_threshold_gauge().set(static_cast<double>(batch.threshold));
    }
  }
  batch.samples.clear();  // keep capacity — the flush path never reallocates
}

void RemoteSink::flush_all() {
  for (telemetry::ChannelId id = 0; id < batches_.size(); ++id) flush(id);
}

}  // namespace fs2::cluster
