#include "cluster/remote_sink.hpp"

namespace fs2::cluster {

RemoteSink::RemoteSink(Connection* conn, std::chrono::steady_clock::time_point epoch)
    : conn_(conn), epoch_(epoch) {
  if (conn_ == nullptr) throw Error("RemoteSink: connection must not be null");
}

double RemoteSink::epoch_elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void RemoteSink::on_channel(telemetry::ChannelId id, const telemetry::ChannelInfo& info) {
  if (batches_.size() <= id) batches_.resize(id + 1);
  ChannelMsg msg;
  msg.channel_id = static_cast<std::uint32_t>(id);
  msg.name = info.name;
  msg.unit = info.unit;
  msg.trim_phase = info.trim == telemetry::TrimMode::kPhase ? 1 : 0;
  msg.summarize = info.summarize ? 1 : 0;
  conn_->send(msg.encode());
}

void RemoteSink::on_phase_begin(const telemetry::PhaseInfo& phase) {
  PhaseBracketMsg msg;
  msg.is_begin = 1;
  msg.phase_index = phase_count_++;
  msg.phase_name = phase.name;
  msg.duration_s = phase.duration_s;
  msg.time_offset_s = phase.time_offset_s;
  msg.start_delta_s = phase.start_delta_s;
  msg.stop_delta_s = phase.stop_delta_s;
  msg.epoch_elapsed_s = epoch_elapsed_s();
  conn_->send(msg.encode());
}

void RemoteSink::on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) {
  if (batches_.size() <= id) batches_.resize(id + 1);
  Batch& batch = batches_[id];
  batch.times_s.push_back(sample.time_s);
  batch.values.push_back(sample.value);
  if (batch.times_s.size() >= kBatchSamples) flush(id);
}

void RemoteSink::on_phase_end(const telemetry::PhaseInfo& phase) {
  // Samples first: the end bracket doubles as the coordinator's
  // "node finished phase k" barrier signal, so every sample of the phase
  // must already be on the wire when it arrives.
  flush_all();
  PhaseBracketMsg msg;
  msg.is_begin = 0;
  msg.phase_index = phase_count_ - 1;
  msg.phase_name = phase.name;
  msg.duration_s = phase.duration_s;
  msg.time_offset_s = phase.time_offset_s;
  msg.epoch_elapsed_s = epoch_elapsed_s();
  conn_->send(msg.encode());
}

void RemoteSink::on_finish() { flush_all(); }

void RemoteSink::flush(telemetry::ChannelId id) {
  Batch& batch = batches_[id];
  if (batch.times_s.empty()) return;
  SampleBatchMsg msg;
  msg.channel_id = static_cast<std::uint32_t>(id);
  msg.times_s = std::move(batch.times_s);
  msg.values = std::move(batch.values);
  conn_->send(msg.encode());
  batch = Batch{};
}

void RemoteSink::flush_all() {
  for (telemetry::ChannelId id = 0; id < batches_.size(); ++id) flush(id);
}

}  // namespace fs2::cluster
