#pragma once

#include <chrono>
#include <vector>

#include "cluster/transport.hpp"
#include "telemetry/sample_sink.hpp"

namespace fs2::cluster {

/// Telemetry sink that streams a node's bus traffic to the coordinator:
/// channel registrations become kChannel frames, phase boundaries become
/// kPhaseBracket frames (stamped with wall time since the shared epoch so
/// the coordinator can verify cross-node lockstep), and samples batch into
/// kSampleBatch frames.
///
/// Batching bounds the frame rate without unbounding memory: a per-channel
/// buffer flushes at kBatchSamples or at the next phase boundary, whichever
/// comes first, so the sink retains O(channels x batch) samples. Everything
/// runs on the agent's publishing thread; the connection is the agent's
/// single campaign-thread socket.
class RemoteSink : public telemetry::SampleSink {
 public:
  static constexpr std::size_t kBatchSamples = 256;

  /// `conn` must outlive the sink. `epoch` is the shared campaign start
  /// (agent clock) the phase brackets are stamped against.
  RemoteSink(Connection* conn, std::chrono::steady_clock::time_point epoch);

  void on_channel(telemetry::ChannelId id, const telemetry::ChannelInfo& info) override;
  void on_phase_begin(const telemetry::PhaseInfo& phase) override;
  void on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) override;
  void on_phase_end(const telemetry::PhaseInfo& phase) override;
  void on_finish() override;

  /// Phases streamed so far (== the index the NEXT on_phase_begin gets).
  std::uint32_t phases_begun() const { return phase_count_; }

 private:
  void flush(telemetry::ChannelId id);
  void flush_all();
  double epoch_elapsed_s() const;

  struct Batch {
    std::vector<double> times_s;
    std::vector<double> values;
  };

  Connection* conn_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Batch> batches_;  ///< index = ChannelId
  std::uint32_t phase_count_ = 0;
};

}  // namespace fs2::cluster
