#pragma once

#include <chrono>
#include <vector>

#include "cluster/transport.hpp"
#include "telemetry/sample_sink.hpp"
#include "telemetry/sinks.hpp"

namespace fs2::cluster {

/// Telemetry sink that streams a node's bus traffic to the coordinator:
/// channel registrations become kChannel frames, phase boundaries become
/// kPhaseBracket frames (stamped with wall time since the shared epoch so
/// the coordinator can verify cross-node lockstep), and samples batch into
/// kSampleBatch frames.
///
/// Summarization happens at the EDGE: the sink runs the same SummarySink a
/// local run uses and ships the finished per-phase rows (kNodeSummary)
/// just before each end bracket, so the coordinator stores rows instead of
/// re-aggregating every sample. Raw sample batches cross the wire only for
/// channels that feed a cluster aggregate (aggregate_rules.hpp) — the
/// coordinator needs those per-sample for index-aligned fleet sums/maxes.
/// Everything else stays on the node, cutting both coordinator ingest work
/// and wire bandwidth to the aggregate streams' share of the telemetry.
///
/// Batching bounds the frame rate without unbounding memory: a per-channel
/// buffer flushes at its batch threshold or at the next phase boundary,
/// whichever comes first, so the sink retains O(channels x batch) samples.
/// The threshold adapts to the channel's observed sample rate — each flush
/// re-targets kTargetBatchSeconds' worth of samples per frame (clamped to
/// [kMinBatchSamples, kMaxBatchSamples]) — so a 20 Sa/s host metric ships
/// with bounded latency while a 500 Sa/s sim meter amortizes its syscalls
/// over thousands of samples. The flush path is allocation-free: batches
/// keep their capacity and the frame is encoded into a reused scratch
/// writer, sent with a single send(2).
///
/// Everything runs on the agent's publishing thread; the connection is the
/// agent's single campaign-thread socket.
class RemoteSink : public telemetry::SampleSink {
 public:
  /// Initial flush threshold (the pre-adaptive fixed batch size).
  static constexpr std::size_t kBatchSamples = 256;
  static constexpr std::size_t kMinBatchSamples = 16;
  static constexpr std::size_t kMaxBatchSamples = 4096;
  /// How much stream time one frame should carry once the rate is known.
  /// Two seconds keeps a fast channel's frames big (a 500 Sa/s meter ships
  /// 1000-sample frames instead of 4/second at the old fixed 256) while
  /// staying far inside the coordinator's per-node alignment window
  /// (kMaxLagSamples) — and phase-end flushes bound the latency of slow
  /// channels regardless.
  static constexpr double kTargetBatchSeconds = 2.0;

  /// `conn` must outlive the sink. `epoch` is the shared campaign start
  /// (agent clock) the phase brackets are stamped against.
  RemoteSink(Connection* conn, std::chrono::steady_clock::time_point epoch);

  void on_channel(telemetry::ChannelId id, const telemetry::ChannelInfo& info) override;
  void on_phase_begin(const telemetry::PhaseInfo& phase) override;
  void on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) override;
  void on_samples(telemetry::ChannelId id, const telemetry::Sample* samples,
                  std::size_t count) override;
  void on_phase_end(const telemetry::PhaseInfo& phase) override;
  void on_finish() override;

  /// Phases streamed so far (== the index the NEXT on_phase_begin gets).
  std::uint32_t phases_begun() const { return phase_count_; }

  /// Muted, the sink keeps all its local bookkeeping (summary aggregation,
  /// batch buffers, phase counting) but writes nothing to the wire. The
  /// rejoin path mutes the sink while it aborts a half-run phase — the
  /// implicit end bracket and the partial phase's buffered samples must not
  /// reach the coordinator, which has already reset this node to the resume
  /// phase.
  void mute(bool muted) { muted_ = muted; }

  /// Reset the phase counter so the next on_phase_begin is stamped
  /// `next_phase_index` — after a rejoin, the re-run of the interrupted
  /// phase must carry the coordinator-assigned resume index, not the
  /// counter this sink reached before the crash.
  void rewind_phase(std::uint32_t next_phase_index) { phase_count_ = next_phase_index; }

  /// Current flush threshold of a channel (tests/introspection).
  std::size_t batch_threshold(telemetry::ChannelId id) const {
    return id < batches_.size() ? batches_[id].threshold : kBatchSamples;
  }

  /// Whether a channel's raw samples cross the wire (it feeds a cluster
  /// aggregate) or stay on the node as edge-summarized rows.
  bool ships_samples(telemetry::ChannelId id) const {
    return id < batches_.size() && batches_[id].ships_samples;
  }

 private:
  void flush(telemetry::ChannelId id);
  void flush_all();
  void send_new_summary_rows();
  double epoch_elapsed_s() const;

  struct Batch {
    std::vector<telemetry::Sample> samples;
    std::size_t threshold = kBatchSamples;
    bool ships_samples = false;
  };

  Connection* conn_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Batch> batches_;  ///< index = ChannelId
  WireWriter scratch_;          ///< reused frame-payload encoder
  telemetry::SummarySink summary_;    ///< edge aggregation (same rows as local runs)
  std::size_t summary_rows_sent_ = 0; ///< watermark into summary_.rows()
  std::uint32_t phase_count_ = 0;
  bool muted_ = false;  ///< drop wire writes, keep local bookkeeping
};

}  // namespace fs2::cluster
