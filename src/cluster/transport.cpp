#include "cluster/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/strings.hpp"

namespace fs2::cluster {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Disable Nagle: the protocol is many small request/response frames
/// (sync probes, budget exchanges) whose latency IS the product — clock
/// sync quality and budget reaction time both degrade with batching delay.
void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// ---- Connection -------------------------------------------------------------

Connection::Connection(int fd) : fd_(fd) {
  if (fd_ >= 0) set_nodelay(fd_);
}

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(other.fd_), send_buf_(std::move(other.send_buf_)) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    send_buf_ = std::move(other.send_buf_);
    other.fd_ = -1;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Connection Connection::connect(const std::string& endpoint, double retry_for_s) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == endpoint.size())
    throw ConfigError("--agent: endpoint '" + endpoint + "' is not HOST:PORT");
  const std::string host = endpoint.substr(0, colon);
  const std::string port = endpoint.substr(colon + 1);
  const std::uint64_t port_num = strings::parse_u64(port, "--agent port");
  if (port_num == 0 || port_num > 65535)
    throw ConfigError("--agent: port must be within [1, 65535]");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &result) != 0 || result == nullptr)
    throw Error("cluster: cannot resolve '" + host + "'");

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(retry_for_s);
  std::string last_error;
  do {
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        ::freeaddrinfo(result);
        return Connection(fd);
      }
      last_error = errno_text();
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  } while (std::chrono::steady_clock::now() < deadline);
  ::freeaddrinfo(result);
  throw Error("cluster: cannot connect to " + endpoint + " (" + last_error + ")");
}

void Connection::write_all(const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError("cluster: send failed (" + errno_text() + ")");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool Connection::read_all(std::uint8_t* data, std::size_t size, bool eof_ok) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError("cluster: recv failed (" + errno_text() + ")");
    }
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw WireError("cluster: peer disconnected mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Connection::send(MessageType type, const std::uint8_t* payload, std::size_t size) {
  if (fd_ < 0) throw WireError("cluster: send on a closed connection");
  // One contiguous buffer, one send(2). Copying the payload into the
  // scratch costs nanoseconds; the second syscall (and the Nagle-less
  // two-segment wakeup it causes on the peer) costs microseconds. No
  // clear() first: resize only value-initializes *growth*, and every byte
  // of [0, 5 + size) is overwritten below — clearing would re-zero the
  // whole buffer on each frame.
  const std::uint32_t length = static_cast<std::uint32_t>(size + 1);
  send_buf_.resize(5 + size);
  for (int i = 0; i < 4; ++i)
    send_buf_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(length >> (8 * i));
  send_buf_[4] = static_cast<std::uint8_t>(type);
  if (size > 0) std::memcpy(send_buf_.data() + 5, payload, size);
  write_all(send_buf_.data(), send_buf_.size());
}

void Connection::send(const Frame& frame) {
  send(frame.type, frame.payload.data(), frame.payload.size());
}

bool Connection::recv_into(Frame& frame, double timeout_s) {
  if (fd_ < 0) throw WireError("cluster: recv on a closed connection");
  if (timeout_s >= 0.0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1000.0));
    if (ready < 0) throw WireError("cluster: poll failed (" + errno_text() + ")");
    if (ready == 0) return false;
  }
  std::uint8_t header[5];
  if (!read_all(header, sizeof header, /*eof_ok=*/true))
    throw WireError("cluster: peer closed the connection");
  WireReader reader(header, sizeof header);
  const std::uint32_t length = reader.u32();
  if (length == 0 || length > kMaxFrameBytes)
    throw WireError(strings::format("cluster: bad frame length %u", length));
  frame.type = static_cast<MessageType>(header[4]);
  frame.payload.resize(length - 1);
  if (!frame.payload.empty())
    read_all(frame.payload.data(), frame.payload.size(), /*eof_ok=*/false);
  return true;
}

std::optional<Frame> Connection::recv(double timeout_s) {
  Frame frame;
  if (!recv_into(frame, timeout_s)) return std::nullopt;
  return frame;
}

// ---- Listener ---------------------------------------------------------------

Listener::Listener(std::uint16_t port, bool loopback_only) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("cluster: cannot create listen socket (" + errno_text() + ")");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string reason = errno_text();
    ::close(fd_);
    fd_ = -1;
    throw Error(strings::format("cluster: cannot bind port %u (%s)", port, reason.c_str()));
  }
  // Big-fleet loopback runs dial in hundreds of agents before the
  // coordinator's sequential accept loop gets to them; the backlog must
  // hold the whole burst or late connectors see ECONNREFUSED.
  if (::listen(fd_, 1024) != 0) {
    const std::string reason = errno_text();
    ::close(fd_);
    fd_ = -1;
    throw Error("cluster: listen failed (" + reason + ")");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

Connection Listener::accept(double timeout_s) {
  if (timeout_s >= 0.0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1000.0));
    if (ready < 0) throw Error("cluster: poll failed (" + errno_text() + ")");
    if (ready == 0)
      throw Error(strings::format(
          "cluster: no agent connected within %.0f s (expected more nodes)", timeout_s));
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw Error("cluster: accept failed (" + errno_text() + ")");
  return Connection(fd);
}

}  // namespace fs2::cluster
