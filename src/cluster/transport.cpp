#include "cluster/transport.hpp"

#include "cluster/fault_injection.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/strings.hpp"

namespace fs2::cluster {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Disable Nagle: the protocol is many small request/response frames
/// (sync probes, budget exchanges) whose latency IS the product — clock
/// sync quality and budget reaction time both degrade with batching delay.
void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Bound every blocking send: a peer that stops reading (stalled agent,
/// dead network) must surface as a WireError within the deadline instead
/// of wedging the sender forever once the socket buffer fills.
void set_send_deadline(int fd) {
  timeval tv{};
  tv.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

double mono_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---- Connection -------------------------------------------------------------

Connection::Connection(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    set_nodelay(fd_);
    set_send_deadline(fd_);
  }
}

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(other.fd_),
      send_buf_(std::move(other.send_buf_)),
      faults_(other.faults_),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
  other.faults_ = nullptr;
  other.pending_.clear();
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    send_buf_ = std::move(other.send_buf_);
    faults_ = other.faults_;
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
    other.faults_ = nullptr;
    other.pending_.clear();
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

Connection Connection::connect(const std::string& endpoint, double retry_for_s) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == endpoint.size())
    throw ConfigError("--agent: endpoint '" + endpoint + "' is not HOST:PORT");
  const std::string host = endpoint.substr(0, colon);
  const std::string port = endpoint.substr(colon + 1);
  const std::uint64_t port_num = strings::parse_u64(port, "--agent port");
  if (port_num == 0 || port_num > 65535)
    throw ConfigError("--agent: port must be within [1, 65535]");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &result) != 0 || result == nullptr)
    throw Error("cluster: cannot resolve '" + host + "'");

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(retry_for_s);
  std::string last_error;
  do {
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        ::freeaddrinfo(result);
        return Connection(fd);
      }
      last_error = errno_text();
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  } while (std::chrono::steady_clock::now() < deadline);
  ::freeaddrinfo(result);
  throw Error("cluster: cannot connect to " + endpoint + " (" + last_error + ")");
}

void Connection::write_all(const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw WireError("cluster: send timed out (peer stopped reading)");
      throw WireError("cluster: send failed (" + errno_text() + ")");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool Connection::read_all(std::uint8_t* data, std::size_t size, bool eof_ok) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError("cluster: recv failed (" + errno_text() + ")");
    }
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw WireError("cluster: peer disconnected mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Connection::send(MessageType type, const std::uint8_t* payload, std::size_t size) {
  if (fd_ < 0) throw WireError("cluster: send on a closed connection");
  double delay_s = 0.0;
  if (faults_ != nullptr) {
    const LinkFaults::Verdict verdict = faults_->on_send(type, size);
    if (verdict.drop) return;
    if (verdict.truncate_to != LinkFaults::kNone && verdict.truncate_to < size)
      // Frame-level truncation: the length prefix matches the bytes
      // actually sent, so the stream never desyncs — the DECODER sees a
      // short payload and must throw cleanly (what the hardening corpus
      // asserts), while the transport keeps framing.
      size = verdict.truncate_to;
    delay_s = verdict.delay_s;
    if (verdict.corrupt_bit != LinkFaults::kNone && verdict.corrupt_bit < size * 8) {
      assemble(type, payload, size);
      send_buf_[5 + verdict.corrupt_bit / 8] ^=
          static_cast<std::uint8_t>(1u << (verdict.corrupt_bit % 8));
      enqueue_or_write(delay_s);
      return;
    }
  }
  assemble(type, payload, size);
  enqueue_or_write(delay_s);
}

void Connection::assemble(MessageType type, const std::uint8_t* payload,
                          std::size_t size) {
  // One contiguous buffer, one send(2). Copying the payload into the
  // scratch costs nanoseconds; the second syscall (and the Nagle-less
  // two-segment wakeup it causes on the peer) costs microseconds. No
  // clear() first: resize only value-initializes *growth*, and every byte
  // of [0, 5 + size) is overwritten below — clearing would re-zero the
  // whole buffer on each frame.
  const std::uint32_t length = static_cast<std::uint32_t>(size + 1);
  send_buf_.resize(5 + size);
  for (int i = 0; i < 4; ++i)
    send_buf_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(length >> (8 * i));
  send_buf_[4] = static_cast<std::uint8_t>(type);
  if (size > 0) std::memcpy(send_buf_.data() + 5, payload, size);
}

void Connection::enqueue_or_write(double delay_s) {
  // FIFO past any held frame: delays slow the stream but never reorder it
  // (due times are monotonic along the queue).
  if (delay_s <= 0.0 && pending_.empty()) {
    write_all(send_buf_.data(), send_buf_.size());
    return;
  }
  flush_pending();
  double due = mono_s() + delay_s;
  if (!pending_.empty() && pending_.back().due_s > due) due = pending_.back().due_s;
  if (pending_.empty() && delay_s <= 0.0) {
    write_all(send_buf_.data(), send_buf_.size());
    return;
  }
  pending_.push_back({due, send_buf_});
}

double Connection::flush_pending() {
  while (!pending_.empty()) {
    const double now = mono_s();
    if (pending_.front().due_s > now) return pending_.front().due_s - now;
    const PendingFrame frame = std::move(pending_.front());
    pending_.pop_front();
    write_all(frame.bytes.data(), frame.bytes.size());
  }
  return 0.0;
}

void Connection::send(const Frame& frame) {
  send(frame.type, frame.payload.data(), frame.payload.size());
}

bool Connection::recv_into(Frame& frame, double timeout_s) {
  if (fd_ < 0) throw WireError("cluster: recv on a closed connection");
  if (timeout_s >= 0.0 || !pending_.empty()) {
    // Bound each poll by the next delayed frame's due time so chaos-held
    // sends still drain while this side blocks waiting for the peer — the
    // peer may be waiting on exactly the frame we are holding.
    const double deadline = timeout_s >= 0.0 ? mono_s() + timeout_s : -1.0;
    for (;;) {
      double wait_s = deadline < 0.0 ? -1.0 : std::max(0.0, deadline - mono_s());
      if (!pending_.empty()) {
        const double until_due = flush_pending();
        if (until_due > 0.0 && (wait_s < 0.0 || until_due < wait_s)) wait_s = until_due;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, wait_s < 0.0 ? -1 : static_cast<int>(wait_s * 1000.0));
      if (ready < 0) throw WireError("cluster: poll failed (" + errno_text() + ")");
      if (ready > 0) break;
      if (!pending_.empty()) flush_pending();
      if (deadline >= 0.0 && mono_s() >= deadline) return false;
    }
  }
  std::uint8_t header[5];
  if (!read_all(header, sizeof header, /*eof_ok=*/true))
    throw WireError("cluster: peer closed the connection");
  WireReader reader(header, sizeof header);
  const std::uint32_t length = reader.u32();
  if (length == 0 || length > kMaxFrameBytes)
    throw WireError(strings::format("cluster: bad frame length %u", length));
  frame.type = static_cast<MessageType>(header[4]);
  frame.payload.resize(length - 1);
  if (!frame.payload.empty())
    read_all(frame.payload.data(), frame.payload.size(), /*eof_ok=*/false);
  return true;
}

std::optional<Frame> Connection::recv(double timeout_s) {
  Frame frame;
  if (!recv_into(frame, timeout_s)) return std::nullopt;
  return frame;
}

// ---- Listener ---------------------------------------------------------------

Listener::Listener(std::uint16_t port, bool loopback_only) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("cluster: cannot create listen socket (" + errno_text() + ")");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string reason = errno_text();
    ::close(fd_);
    fd_ = -1;
    throw Error(strings::format("cluster: cannot bind port %u (%s)", port, reason.c_str()));
  }
  // Big-fleet loopback runs dial in hundreds of agents before the
  // coordinator's sequential accept loop gets to them; the backlog must
  // hold the whole burst or late connectors see ECONNREFUSED.
  if (::listen(fd_, 1024) != 0) {
    const std::string reason = errno_text();
    ::close(fd_);
    fd_ = -1;
    throw Error("cluster: listen failed (" + reason + ")");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

void Listener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Connection Listener::accept(double timeout_s) {
  if (timeout_s >= 0.0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1000.0));
    if (ready < 0) throw Error("cluster: poll failed (" + errno_text() + ")");
    if (ready == 0)
      throw Error(strings::format(
          "cluster: no agent connected within %.0f s (expected more nodes)", timeout_s));
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw Error("cluster: accept failed (" + errno_text() + ")");
  return Connection(fd);
}

}  // namespace fs2::cluster
