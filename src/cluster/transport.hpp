#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "cluster/messages.hpp"

namespace fs2::cluster {

class LinkFaults;

/// One framed, blocking TCP connection between coordinator and agent.
/// Frames are `u32 length | u8 type | payload` with the length covering
/// type + payload. Send and receive are whole-frame operations; partial
/// socket reads/writes are looped internally. Not thread-safe — each side
/// of the protocol drives its connection from a single thread (the
/// coordinator's event loop, the agent's campaign thread).
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd);
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connect to "host:port" (numeric IPv4 or a resolvable name), retrying
  /// for up to `retry_for_s` seconds — an agent routinely starts before its
  /// coordinator finishes binding. Throws fs2::Error on final failure.
  static Connection connect(const std::string& endpoint, double retry_for_s = 5.0);

  void send(const Frame& frame);

  /// Send one frame from raw payload bytes. The length prefix, type byte,
  /// and payload are assembled in a reused scratch buffer and written with
  /// a single send(2): the hot path (telemetry sample batches) costs one
  /// syscall and zero allocations per frame instead of two writes plus a
  /// fresh header vector.
  void send(MessageType type, const std::uint8_t* payload, std::size_t size);
  /// Send a payload encoded in a (typically reused) WireWriter.
  void send(MessageType type, const WireWriter& payload) {
    send(type, payload.bytes().data(), payload.bytes().size());
  }

  /// Receive the next frame, blocking. `timeout_s` < 0 blocks forever; on
  /// timeout returns std::nullopt. Throws WireError on disconnect or a
  /// frame exceeding kMaxFrameBytes.
  std::optional<Frame> recv(double timeout_s = -1.0);

  /// Receive into a caller-owned scratch frame, reusing its payload
  /// capacity across calls — the coordinator's event loop drains thousands
  /// of frames per second and must not allocate per frame. Returns false on
  /// timeout (`frame` untouched).
  bool recv_into(Frame& frame, double timeout_s = -1.0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Attach a chaos injector (nullptr = disabled, the production path: one
  /// pointer compare per send). The injector is consulted on every outgoing
  /// frame; delayed frames are held in a FIFO so chaos never reorders the
  /// stream, only slows it.
  void set_faults(LinkFaults* faults) { faults_ = faults; }

  /// Frames held back by a delay fault and not yet written.
  bool has_pending() const { return !pending_.empty(); }

  /// Write every held frame whose due time has arrived. Returns seconds
  /// until the next held frame is due, or 0 when none remain — cooperative
  /// reactors (SimFleet) call this each iteration so delayed frames drain
  /// even while the owning agent is idle.
  double flush_pending();

  /// Upper bound on a frame (type + payload). A sample batch of 4096
  /// samples is ~64 KiB; anything near this limit indicates a corrupt or
  /// hostile length prefix, not real traffic.
  static constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

 private:
  struct PendingFrame {
    double due_s = 0.0;  ///< monotonic seconds when the frame may be written
    std::vector<std::uint8_t> bytes;
  };

  void write_all(const std::uint8_t* data, std::size_t size);
  /// False = clean EOF before any byte (peer closed between frames).
  bool read_all(std::uint8_t* data, std::size_t size, bool eof_ok);
  /// Build header + payload in send_buf_.
  void assemble(MessageType type, const std::uint8_t* payload, std::size_t size);
  /// Write send_buf_ now, or queue it behind delayed frames.
  void enqueue_or_write(double delay_s);

  int fd_ = -1;
  std::vector<std::uint8_t> send_buf_;  ///< header+payload assembly scratch
  LinkFaults* faults_ = nullptr;        ///< chaos injector; null in production
  std::deque<PendingFrame> pending_;    ///< delay-faulted frames, FIFO
};

/// Listening TCP socket for the coordinator. Binds immediately (port 0
/// selects an ephemeral port — loopback tests read the chosen one back via
/// port()).
class Listener {
 public:
  /// `loopback_only` binds 127.0.0.1 instead of all interfaces.
  explicit Listener(std::uint16_t port, bool loopback_only = false);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one connection, waiting up to `timeout_s` (< 0 = forever).
  /// Throws fs2::Error on timeout — a coordinator told to expect N nodes
  /// must fail loudly when one never dials in, not hang the campaign.
  Connection accept(double timeout_s);

  std::uint16_t port() const { return port_; }
  /// Raw socket for poll(2) — the coordinator's event loop watches the
  /// listener alongside agent connections to serve status clients mid-run.
  int fd() const { return fd_; }

  /// Stop listening (idempotent). Connections still sitting in the accept
  /// backlog are reset, so a late rejoiner fails fast instead of waiting on
  /// a socket nobody will ever serve.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace fs2::cluster
