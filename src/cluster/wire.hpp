#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace fs2::cluster {

/// Raised on malformed frames, protocol violations, and peer disconnects —
/// the cluster layer's I/O failure type, distinct from ConfigError (bad
/// user input) so the coordinator can attribute a mid-run failure to a
/// node, not to the operator.
class WireError : public Error {
 public:
  explicit WireError(const std::string& message) : Error(message) {}
};

/// Little-endian byte-stream writer for message payloads. Fixed-width
/// integers and IEEE doubles only — both ends of the wire are this binary,
/// but explicit widths keep the format stable across compilers and make the
/// protocol documentable (docs/cluster.md lists every field).
///
/// Reusable: clear() drops the content but keeps the capacity, so a sender
/// encoding thousands of frames (RemoteSink's sample batches) touches the
/// allocator once, not per frame.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    std::uint8_t raw[4];
    for (int i = 0; i < 4; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(raw, sizeof raw);
  }
  void u64(std::uint64_t v) {
    std::uint8_t raw[8];
    for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(raw, sizeof raw);
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Length-prefixed UTF-8/ASCII string (u32 length, no terminator).
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  /// Raw byte append — bulk encodes (sample arrays) that already are in
  /// wire byte order.
  void raw(const void* data, std::size_t size) {
    append(static_cast<const std::uint8_t*>(data), size);
  }

  void clear() { bytes_.clear(); }
  void reserve(std::size_t capacity) { bytes_.reserve(capacity); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  void append(const std::uint8_t* data, std::size_t size) {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + size);
    std::memcpy(bytes_.data() + at, data, size);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a received payload. Every accessor throws
/// WireError on truncation instead of reading past the end — a malformed or
/// hostile peer must not crash the coordinator.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  /// Bounds-checked view of the next `n` raw bytes (and advance past them)
  /// — bulk decodes that can consume wire byte order directly.
  const std::uint8_t* raw(std::size_t n) {
    need(n);
    const std::uint8_t* at = data_ + pos_;
    pos_ += n;
    return at;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw WireError("cluster wire: truncated message payload");
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fs2::cluster
