#include "control/budget.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fs2::control {

namespace {

/// Window capacity: enough total snapshots to cover the trailing quarter
/// of a long phase at a fast report cadence without growing with run
/// length.
constexpr std::size_t kWindowCapacity = 4096;

}  // namespace

BudgetApportioner::BudgetApportioner(double target_w, std::size_t nodes)
    : target_w_(target_w),
      nodes_(nodes),
      achieved_w_(nodes, target_w / std::max<std::size_t>(nodes, 1)),
      active_(nodes, 1),
      active_count_(nodes),
      totals_(kWindowCapacity) {
  if (!(target_w > 0.0)) throw Error("BudgetApportioner: target must be > 0 W");
  if (nodes == 0) throw Error("BudgetApportioner: need at least one node");
}

double BudgetApportioner::on_report(std::size_t node, double achieved_w) {
  if (node >= nodes_) throw Error("BudgetApportioner: node index out of range");
  achieved_w_[node] = std::max(achieved_w, 0.0);
  if (!active_[node]) {
    // A report from a node we marked lost means the loss was one-sided (the
    // send path died, the recv path limped on). Treat the report as proof of
    // life rather than dropping live watts on the floor.
    active_[node] = 1;
    ++active_count_;
  }
  const double total = total_achieved_w();
  totals_.push(total);
  return share_w(node);
}

void BudgetApportioner::on_node_lost(std::size_t node) {
  if (node >= nodes_ || !active_[node]) return;
  active_[node] = 0;
  --active_count_;
  // Snapshot the post-loss total so the convergence window immediately
  // reflects the smaller fleet instead of averaging in the dead node's
  // stale watts.
  totals_.push(total_achieved_w());
}

void BudgetApportioner::on_node_rejoin(std::size_t node) {
  if (node >= nodes_ || active_[node]) return;
  active_[node] = 1;
  ++active_count_;
  // Equal re-seed across the whole live set, not just the returner: the
  // proportional update only rescales ratios, so seeding the rejoiner into
  // the survivors' inflated distribution would freeze it at a squeezed
  // share and settle the fleet multiplicatively — too slow to re-converge
  // within the interrupted phase.
  for (std::size_t i = 0; i < nodes_; ++i)
    if (active_[i]) achieved_w_[i] = initial_share_w();
  totals_.push(total_achieved_w());
}

double BudgetApportioner::share_w(std::size_t node) const {
  if (node >= nodes_) throw Error("BudgetApportioner: node index out of range");
  if (!active_[node]) return 0.0;  // lost nodes hold no share until rejoin
  const double total = total_achieved_w();
  // Proportional reallocation. A node with no meaningful reading yet (cold
  // meter, ramp-in) keeps its equal share — the proportional formula would
  // assign it ~0 and a power loop cannot prove itself from a 0 W target.
  double next = achieved_w_[node] > 1.0 && total > 1e-6
                    ? achieved_w_[node] * target_w_ / total
                    : initial_share_w();
  return std::clamp(next, 1.0, target_w_);
}

double BudgetApportioner::total_achieved_w() const {
  double total = 0.0;
  for (std::size_t i = 0; i < nodes_; ++i)
    if (active_[i]) total += achieved_w_[i];
  return total;
}

void BudgetApportioner::begin_window() { totals_.clear(); }

double BudgetApportioner::trailing_total_w() const {
  if (totals_.empty()) return 0.0;
  const std::size_t window = std::max<std::size_t>(4, totals_.size() / 4);
  const std::size_t count = std::min(window, totals_.size());
  double sum = 0.0;
  for (std::size_t i = totals_.size() - count; i < totals_.size(); ++i) sum += totals_[i];
  return sum / static_cast<double>(count);
}

bool BudgetApportioner::converged(double band) const {
  if (totals_.size() < 4) return false;
  return std::abs(trailing_total_w() - target_w_) <= band * target_w_;
}

}  // namespace fs2::control
