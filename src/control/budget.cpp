#include "control/budget.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fs2::control {

namespace {

/// Window capacity: enough total snapshots to cover the trailing quarter
/// of a long phase at a fast report cadence without growing with run
/// length.
constexpr std::size_t kWindowCapacity = 4096;

}  // namespace

BudgetApportioner::BudgetApportioner(double target_w, std::size_t nodes)
    : target_w_(target_w),
      nodes_(nodes),
      achieved_w_(nodes, target_w / std::max<std::size_t>(nodes, 1)),
      totals_(kWindowCapacity) {
  if (!(target_w > 0.0)) throw Error("BudgetApportioner: target must be > 0 W");
  if (nodes == 0) throw Error("BudgetApportioner: need at least one node");
}

double BudgetApportioner::on_report(std::size_t node, double achieved_w) {
  if (node >= nodes_) throw Error("BudgetApportioner: node index out of range");
  achieved_w_[node] = std::max(achieved_w, 0.0);
  const double total = total_achieved_w();
  totals_.push(total);
  // Proportional reallocation. A node with no meaningful reading yet (cold
  // meter, ramp-in) keeps its equal share — the proportional formula would
  // assign it ~0 and a power loop cannot prove itself from a 0 W target.
  double next = achieved_w_[node] > 1.0 && total > 1e-6
                    ? achieved_w_[node] * target_w_ / total
                    : initial_share_w();
  next = std::clamp(next, 1.0, target_w_);
  return next;
}

double BudgetApportioner::total_achieved_w() const {
  double total = 0.0;
  for (double a : achieved_w_) total += a;
  return total;
}

void BudgetApportioner::begin_window() { totals_.clear(); }

double BudgetApportioner::trailing_total_w() const {
  if (totals_.empty()) return 0.0;
  const std::size_t window = std::max<std::size_t>(4, totals_.size() / 4);
  const std::size_t count = std::min(window, totals_.size());
  double sum = 0.0;
  for (std::size_t i = totals_.size() - count; i < totals_.size(); ++i) sum += totals_[i];
  return sum / static_cast<double>(count);
}

bool BudgetApportioner::converged(double band) const {
  if (totals_.size() < 4) return false;
  return std::abs(trailing_total_w() - target_w_) <= band * target_w_;
}

}  // namespace fs2::control
