#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/ring_buffer.hpp"

namespace fs2::control {

/// Cluster-mode counterpart of the per-node FeedbackLoop: holds one global
/// power budget (the coordinator's `--target cluster-power=NNNW`) and
/// splits it into per-node power setpoints from each node's reported
/// achieved watts.
///
/// The update is proportional reallocation: on a report from node i with
/// achieved a_i, the node's next setpoint is
///
///     w_i = a_i * W / total          total = sum of latest achieved
///
/// i.e. each assignment is the node's share of the budget as if the whole
/// fleet were rescaled onto W against the latest achieved snapshot. Nodes
/// that deliver more watts are asked to carry more of the budget (a big
/// SKU naturally absorbs the share a small one cannot), and a saturated
/// node's shortfall flows to whoever has headroom. Outstanding assignments
/// can transiently disagree with W — only the reporting node is retuned,
/// the others still hold setpoints from older snapshots, and per-node
/// clamps apply — but at the fixed point (every a_i tracking its w_i) the
/// cluster total settles on W. Reports are handled one at a time, as they
/// arrive — no cross-node barrier, so a slow node never stalls the
/// others' control.
///
/// Nodes that have not reported yet are assumed at their initial equal
/// share, which keeps the first assignments sane during ramp-in.
class BudgetApportioner {
 public:
  /// `target_w` is the cluster budget; `nodes` the fleet size.
  BudgetApportioner(double target_w, std::size_t nodes);

  double target_w() const { return target_w_; }
  double initial_share_w() const { return target_w_ / static_cast<double>(nodes_); }

  /// Fold in one node's report and return its next setpoint (clamped to
  /// [1 W, budget]).
  double on_report(std::size_t node, double achieved_w);

  /// The node's connection died: drop it from the live set at the MOMENT of
  /// loss. Its stale achieved sample stops counting toward the cluster
  /// total immediately, so the next report from every survivor sees a
  /// smaller denominator and absorbs the dead node's share of the budget —
  /// no waiting for a phase boundary.
  void on_node_lost(std::size_t node);

  /// The node rejoined: back into the live set, and EVERY live node is
  /// re-seeded at the initial equal share. Proportional reallocation only
  /// rescales the existing distribution — rejoining into a fleet whose
  /// survivors absorbed the freed watts would trap the returner at the
  /// squeezed ratio of its cold ramp-in and chase the whole fleet down a
  /// slow multiplicative settle. Equal re-seeding jumps straight to the
  /// homogeneous fixed point and lets capacity differences re-emerge from
  /// real reports.
  void on_node_rejoin(std::size_t node);

  bool active(std::size_t node) const { return node < active_.size() && active_[node]; }
  std::size_t active_count() const { return active_count_; }

  /// The setpoint the current snapshot implies for `node` — same formula as
  /// on_report but without folding a new sample. The coordinator uses this
  /// to push fresh assignments to survivors at the moment a node is lost
  /// instead of waiting for their next reports. A lost node holds no share
  /// (0 W) until it rejoins.
  double share_w(std::size_t node) const;

  /// Sum of the latest achieved watts across LIVE nodes (unreported nodes
  /// count as their initial share; lost nodes count as nothing).
  double total_achieved_w() const;

  /// Reset the convergence window (call at campaign phase boundaries so a
  /// phase is judged on its own plateau, not the previous phase's tail).
  void begin_window();

  /// Budget convergence over the trailing quarter of the window's total
  /// snapshots (at least 4): their mean within `band` (fraction) of the
  /// target. Mirrors FeedbackLoop::converged's trailing-window semantics.
  bool converged(double band) const;

  /// Mean cluster total over the same trailing window (0 when empty).
  double trailing_total_w() const;

 private:
  double target_w_;
  std::size_t nodes_;
  /// Latest achieved watts per node; seeded with the equal share so nodes
  /// that have not reported yet count as it.
  std::vector<double> achieved_w_;
  /// Live mask: lost nodes are excluded from the total until they rejoin.
  std::vector<char> active_;
  std::size_t active_count_;
  telemetry::RingBuffer<double> totals_;  ///< window of total snapshots
};

}  // namespace fs2::control
