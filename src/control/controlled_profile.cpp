#include "control/controlled_profile.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace fs2::control {

ControlledProfile::ControlledProfile(double initial_level)
    : level_(std::clamp(initial_level, 0.0, 1.0)) {}

void ControlledProfile::set_level(double level) {
  level_.store(std::clamp(level, 0.0, 1.0), std::memory_order_relaxed);
}

std::string ControlledProfile::describe() const {
  return strings::format("controlled: closed-loop commanded level (now %.0f %%)",
                         level() * 100.0);
}

}  // namespace fs2::control
