#pragma once

#include <atomic>
#include <string>

#include "sched/load_profile.hpp"

namespace fs2::control {

/// The actuator end of the feedback loop: a LoadProfile whose level is a
/// shared atomic written by the controller and read by every worker.
///
/// This deliberately breaks LoadProfile's "pure function of time" contract
/// (and reports `live() == true` so callers know): the commanded level is
/// whatever the controller last wrote, regardless of `t`. Workers still
/// quantize time into modulation windows off the shared PhaseClock epoch, so
/// all cores apply a new command in lockstep at the next window boundary —
/// and, because the profile is live, mid-window too.
class ControlledProfile final : public sched::LoadProfile {
 public:
  explicit ControlledProfile(double initial_level);

  double load_at(double) const override {
    return level_.load(std::memory_order_relaxed);
  }
  const char* kind() const override { return "controlled"; }
  std::string describe() const override;
  bool live() const override { return true; }

  /// Publish a new commanded level (clamped to [0, 1]). Called by the
  /// feedback loop; safe against concurrent load_at readers.
  void set_level(double level);
  double level() const { return level_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> level_;
};

}  // namespace fs2::control
