#include "control/feedback_loop.hpp"

#include <cmath>

#include "metrics/metric.hpp"
#include "util/error.hpp"

namespace fs2::control {

namespace {

PidConfig make_pid_config(const Setpoint& sp) {
  PidConfig cfg;
  cfg.gains = FeedbackLoop::default_gains(sp.variable);
  if (sp.kp) cfg.gains.kp = *sp.kp;
  if (sp.ki) cfg.gains.ki = *sp.ki;
  if (sp.kd) cfg.gains.kd = *sp.kd;
  cfg.out_min = 0.0;
  cfg.out_max = 1.0;
  // Filter the derivative over ~4 ticks; harmless when kd == 0.
  cfg.derivative_tau_s = 4.0 * sp.interval_s;
  return cfg;
}

}  // namespace

PidGains FeedbackLoop::default_gains(ControlVariable variable) {
  switch (variable) {
    case ControlVariable::kPower:
      // The plant settles within one tick (duty cycle -> power is immediate),
      // so the loop can be aggressive: half the residual error per tick from
      // P alone, the rest integrated out within ~2 intervals.
      return PidGains{0.5, 2.0, 0.0};
    case ControlVariable::kTemperature:
      // Temperature lags by the package thermal time constant (tens of
      // seconds). A strong P pushes through the lag, the slow I removes the
      // offset, and D brakes against overshoot as the reading ramps.
      return PidGains{4.0, 0.25, 4.0};
  }
  return PidGains{};
}

double FeedbackLoop::default_scale(ControlVariable variable) {
  switch (variable) {
    case ControlVariable::kPower: return 100.0;       // typical package span, W
    case ControlVariable::kTemperature: return 40.0;  // idle->full-load rise, degC
  }
  return 1.0;
}

FeedbackLoop::FeedbackLoop(Setpoint setpoint, std::shared_ptr<ControlledProfile> profile,
                           double plant_scale, double initial_level)
    : setpoint_(setpoint),
      profile_(std::move(profile)),
      scale_(plant_scale > 0.0 ? plant_scale : default_scale(setpoint.variable)),
      pid_(make_pid_config(setpoint)) {
  if (!profile_) throw Error("FeedbackLoop: profile must not be null");
  profile_->set_level(initial_level);
  pid_.reset(profile_->level());
}

bool FeedbackLoop::due(double t_s) const {
  // A hair under the nominal interval so a sampling loop whose period divides
  // interval_s doesn't skip every other tick to float rounding.
  return !ticked_ || t_s - last_tick_s_ >= 0.999 * setpoint_.interval_s;
}

double FeedbackLoop::tick(double t_s, double measurement) {
  const double dt = ticked_ ? t_s - last_tick_s_ : setpoint_.interval_s;
  if (!(dt > 0.0)) throw Error("FeedbackLoop: tick times must be strictly increasing");
  const double level =
      pid_.update(setpoint_.value / scale_, measurement / scale_, dt);
  profile_->set_level(level);
  ticks_.push_back(ControlTick{t_s, setpoint_.value, measurement,
                               setpoint_.value - measurement, level});
  last_tick_s_ = t_s;
  ticked_ = true;
  return level;
}

double FeedbackLoop::poll(double t_s, metrics::Metric& metric) {
  return tick(t_s, metric.sample());
}

FeedbackLoop::TrailingStats FeedbackLoop::trailing_stats(double window_s) const {
  TrailingStats stats;
  if (ticks_.empty()) return stats;
  const double cutoff = ticks_.back().time_s - window_s;
  double sum = 0.0;
  for (auto it = ticks_.rbegin(); it != ticks_.rend() && it->time_s >= cutoff; ++it) {
    sum += it->measurement;
    ++stats.samples;
  }
  if (stats.samples > 0) stats.mean = sum / static_cast<double>(stats.samples);
  return stats;
}

double FeedbackLoop::trailing_mean(double window_s) const {
  return trailing_stats(window_s).mean;
}

bool FeedbackLoop::converged(double window_s) const {
  const TrailingStats stats = trailing_stats(window_s);
  if (stats.samples < 2) return false;
  return std::abs(stats.mean - setpoint_.value) <= setpoint_.band * setpoint_.value;
}

}  // namespace fs2::control
