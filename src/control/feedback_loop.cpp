#include "control/feedback_loop.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/metric.hpp"
#include "trace/registry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::control {

namespace {

PidConfig make_pid_config(const Setpoint& sp) {
  PidConfig cfg;
  cfg.gains = FeedbackLoop::default_gains(sp.variable);
  if (sp.kp) cfg.gains.kp = *sp.kp;
  if (sp.ki) cfg.gains.ki = *sp.ki;
  if (sp.kd) cfg.gains.kd = *sp.kd;
  cfg.out_min = 0.0;
  cfg.out_max = 1.0;
  // Filter the derivative over ~4 ticks; harmless when kd == 0.
  cfg.derivative_tau_s = 4.0 * sp.interval_s;
  return cfg;
}

/// Ring capacity covering the maximum convergence window at this tick
/// interval, with headroom — bounded above so a pathological interval
/// cannot ask for millions of slots.
std::size_t ring_capacity(double interval_s) {
  const double ticks = 1.25 * FeedbackLoop::kMaxConvergenceWindowS / std::max(interval_s, 1e-3);
  return std::clamp<std::size_t>(static_cast<std::size_t>(ticks), 64, 65536);
}

}  // namespace

PidGains FeedbackLoop::default_gains(ControlVariable variable) {
  switch (variable) {
    case ControlVariable::kClusterPower:  // per-node share behaves like power
    case ControlVariable::kPower:
      // The plant settles within one tick (duty cycle -> power is immediate),
      // so the loop can be aggressive: half the residual error per tick from
      // P alone, the rest integrated out within ~2 intervals.
      return PidGains{0.5, 2.0, 0.0};
    case ControlVariable::kTemperature:
      // Temperature lags by the package thermal time constant (tens of
      // seconds). A strong P pushes through the lag, the slow I removes the
      // offset, and D brakes against overshoot as the reading ramps.
      return PidGains{4.0, 0.25, 4.0};
  }
  return PidGains{};
}

double FeedbackLoop::default_scale(ControlVariable variable) {
  switch (variable) {
    case ControlVariable::kClusterPower:
    case ControlVariable::kPower: return 100.0;       // typical package span, W
    case ControlVariable::kTemperature: return 40.0;  // idle->full-load rise, degC
  }
  return 1.0;
}

FeedbackLoop::FeedbackLoop(Setpoint setpoint, std::shared_ptr<ControlledProfile> profile,
                           double plant_scale, double initial_level)
    : setpoint_(setpoint),
      profile_(std::move(profile)),
      scale_(plant_scale > 0.0 ? plant_scale : default_scale(setpoint.variable)),
      pid_(make_pid_config(setpoint)),
      ticks_(ring_capacity(setpoint.interval_s)) {
  if (!profile_) throw Error("FeedbackLoop: profile must not be null");
  profile_->set_level(initial_level);
  pid_.reset(profile_->level());
}

void FeedbackLoop::attach_bus(telemetry::TelemetryBus* bus) {
  if (bus == nullptr) throw Error("FeedbackLoop::attach_bus: bus must not be null");
  bus_ = bus;
  const char* unit = unit_of(setpoint_.variable);
  ch_setpoint_ = bus_->channel("ctl-setpoint", unit);
  ch_measurement_ = bus_->channel("ctl-measurement", unit);
  ch_error_ = bus_->channel("ctl-error", unit);
  ch_output_ = bus_->channel("ctl-output", "fraction");
}

bool FeedbackLoop::due(double t_s) const {
  // A hair under the nominal interval so a sampling loop whose period divides
  // interval_s doesn't skip every other tick to float rounding.
  return !ticked_ || t_s - last_tick_s_ >= 0.999 * setpoint_.interval_s;
}

double FeedbackLoop::tick(double t_s, double measurement) {
  const double dt = ticked_ ? t_s - last_tick_s_ : setpoint_.interval_s;
  if (!(dt > 0.0)) throw Error("FeedbackLoop: tick times must be strictly increasing");
  const double level =
      pid_.update(setpoint_.value / scale_, measurement / scale_, dt);
  profile_->set_level(level);
  const ControlTick tick{t_s, setpoint_.value, measurement, setpoint_.value - measurement,
                         level};
  // |error| distribution across every tick — the quantiles behind the
  // convergence story (a converged loop shows p95 collapsing into the
  // setpoint band; a limit-cycling one shows a fat flat tail).
  static trace::Histogram& error_hist =
      trace::Registry::instance().histogram("control.pid_abs_error_w");
  error_hist.record(std::abs(tick.error));
  ticks_.push(tick);
  if (bus_ != nullptr) {
    bus_->publish(ch_setpoint_, t_s, tick.setpoint);
    bus_->publish(ch_measurement_, t_s, tick.measurement);
    bus_->publish(ch_error_, t_s, tick.error);
    bus_->publish(ch_output_, t_s, tick.output);
  }
  last_tick_s_ = t_s;
  ticked_ = true;
  return level;
}

double FeedbackLoop::poll(double t_s, metrics::Metric& metric) {
  return tick(t_s, metric.sample());
}

void FeedbackLoop::set_target(double value) {
  if (!(value > 0.0)) throw Error("FeedbackLoop::set_target: value must be > 0");
  // Mid-run retunes (the coordinator's budget reassignments) are the rare
  // path worth counting: a stalled apportioner shows up as this counter
  // flatlining while the budget is off target.
  static trace::Counter& retunes = trace::Registry::instance().counter("control.pid_retunes");
  if (setpoint_.value != value) retunes.add();
  setpoint_.value = value;
}

FeedbackLoop::TrailingStats FeedbackLoop::trailing_stats(double window_s) const {
  TrailingStats stats;
  if (ticks_.empty()) return stats;
  const double cutoff = ticks_.back().time_s - window_s;
  double sum = 0.0;
  for (std::size_t i = ticks_.size(); i-- > 0 && ticks_[i].time_s >= cutoff;) {
    sum += ticks_[i].measurement;
    ++stats.samples;
  }
  if (stats.samples > 0) stats.mean = sum / static_cast<double>(stats.samples);
  return stats;
}

double FeedbackLoop::trailing_mean(double window_s) const {
  return trailing_stats(window_s).mean;
}

bool FeedbackLoop::converged(double window_s) const {
  // Judge each tick against the target it was asked to hold. The apportioner
  // re-tunes the share every budget round, so tiny in-band drift must NOT
  // split segments — only a material step (loss/rejoin reapportion) does.
  // Walk segments newest-first: a segment that had a full window and still
  // sits off-band is a failed loop; a segment too fresh to have settled
  // (the re-tune landed near phase end) defers to the previous target,
  // which the loop did have time to track.
  std::size_t end = ticks_.size();
  while (end > 0) {
    const double target = ticks_[end - 1].setpoint;
    const double tol = setpoint_.band * target;
    std::size_t begin = end;
    while (begin > 0 && std::abs(ticks_[begin - 1].setpoint - target) <= tol) --begin;
    const double cutoff = ticks_[end - 1].time_s - window_s;
    double sum = 0.0;
    std::size_t samples = 0;
    for (std::size_t i = end; i-- > begin && ticks_[i].time_s >= cutoff;) {
      sum += ticks_[i].measurement;
      ++samples;
    }
    if (samples >= 2) {
      const double mean = sum / static_cast<double>(samples);
      if (std::abs(mean - target) <= tol) return true;
      // Off-band with the whole window behind it: the loop failed to track.
      if (ticks_[begin].time_s <= cutoff) return false;
    }
    end = begin;  // segment was partial (or too short) and off-band: defer
  }
  return false;
}

// ---- ControlLogSink ---------------------------------------------------------

void ControlLogSink::on_channel(telemetry::ChannelId id,
                                const telemetry::ChannelInfo& info) {
  if (roles_.size() <= id) roles_.resize(id + 1, Role::kNone);
  if (info.name == "ctl-setpoint") roles_[id] = Role::kSetpoint;
  else if (info.name == "ctl-measurement") roles_[id] = Role::kMeasurement;
  else if (info.name == "ctl-error") roles_[id] = Role::kError;
  else if (info.name == "ctl-output") roles_[id] = Role::kOutput;
}

void ControlLogSink::on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) {
  if (id >= roles_.size()) return;
  switch (roles_[id]) {
    case Role::kNone: return;
    case Role::kSetpoint: row_.setpoint = sample.value; break;
    case Role::kMeasurement: row_.measurement = sample.value; break;
    case Role::kError: row_.error = sample.value; break;
    case Role::kOutput: {
      // Output is published last, completing the tick's row. Fixed-point
      // timestamps: %g's significant-digit rounding collapses adjacent
      // 0.25 s ticks once a burn-in campaign passes a few hours.
      row_.output = sample.value;
      out_ << strings::format("%.6f,%.6g,%.6g,%.6g,%.6g,%s\n",
                              phase_.time_offset_s + sample.time_s, row_.setpoint,
                              row_.measurement, row_.error, row_.output,
                              phase_.name.c_str());
      out_.flush();  // survive a mid-run kill
      break;
    }
  }
}

}  // namespace fs2::control
