#pragma once

#include <memory>
#include <ostream>
#include <vector>

#include "control/controlled_profile.hpp"
#include "control/pid.hpp"
#include "control/setpoint.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/ring_buffer.hpp"

namespace fs2::metrics {
class Metric;
}

namespace fs2::control {

/// One controller tick of telemetry: what the loop saw and what it did.
/// Published on the telemetry bus as the four ctl-* channels (summary CSV
/// rows and the per-tick --control-log both hang off the bus).
struct ControlTick {
  double time_s = 0.0;
  double setpoint = 0.0;     ///< W or degC
  double measurement = 0.0;  ///< same unit
  double error = 0.0;        ///< setpoint - measurement
  double output = 0.0;       ///< commanded load level in [0, 1]
};

/// Closed-loop regulator: polls a process measurement (RAPL package power,
/// coretemp temperature, or the simulator's power plant) at the setpoint's
/// tick interval and actuates the commanded load level through a
/// ControlledProfile that all workers read.
///
/// The loop normalizes the error by `plant_scale` — the measured-unit change
/// a full 0→1 load swing produces — so the PID gains are dimensionless and
/// one default tuning works across SKUs: on the simulator the span is known
/// exactly; on hosts it is the setpoint's `scale=` hint (or a conservative
/// default).
///
/// The loop is driven, not driving: the orchestrator owns the clock (real
/// 50 ms sampling loop, or the simulator's virtual-time steps) and calls
/// tick()/poll() — which is what makes the whole subsystem testable in
/// deterministic virtual time.
///
/// Telemetry is bounded: each tick is pushed to a ring sized to cover the
/// convergence window and, when a bus is attached, published on the ctl-*
/// channels — the loop itself retains O(window), never O(run length).
class FeedbackLoop {
 public:
  /// Convergence verdicts never look further back than this, so the
  /// telemetry ring can be sized to cover it (a week-long hold judges its
  /// trailing minutes, not the whole week).
  static constexpr double kMaxConvergenceWindowS = 300.0;

  /// `profile` receives every commanded level and must outlive the loop.
  /// `initial_level` seeds both the profile and the controller's integral
  /// (bumpless start from a feed-forward guess). `plant_scale` <= 0 selects
  /// the variable's default span.
  FeedbackLoop(Setpoint setpoint, std::shared_ptr<ControlledProfile> profile,
               double plant_scale, double initial_level);

  /// Register the ctl-setpoint/-measurement/-error/-output channels on
  /// `bus` (in that order — registration order is summary-row order) and
  /// publish every subsequent tick. The bus must outlive the loop.
  void attach_bus(telemetry::TelemetryBus* bus);

  /// One controller update at elapsed time `t_s` with a fresh measurement.
  /// Returns (and publishes) the commanded load level. Call at intervals of
  /// roughly interval_s(); the loop uses the actual time delta.
  double tick(double t_s, double measurement);

  /// Convenience for host runs: sample `metric` and tick.
  double poll(double t_s, metrics::Metric& metric);

  /// True when `t_s` is at least one tick interval past the previous tick —
  /// lets a faster sampling loop drive the controller at its own rate.
  bool due(double t_s) const;

  /// Retune the regulated value mid-run — the cluster mode: a coordinator
  /// apportioning a global power budget reassigns each node's setpoint
  /// every budget interval, and the node's loop tracks the moving target
  /// (the PID state carries over, so a small reassignment is absorbed
  /// without a transient). Also shifts the convergence band's center, so
  /// verdicts judge against the latest target.
  void set_target(double value);

  const Setpoint& setpoint() const { return setpoint_; }
  const ControlledProfile& profile() const { return *profile_; }
  /// Recent ticks, oldest first — a bounded window (sized from the tick
  /// interval to cover kMaxConvergenceWindowS), not the whole run.
  const telemetry::RingBuffer<ControlTick>& telemetry() const { return ticks_; }

  /// Converged = the mean measurement over the trailing `window_s` seconds
  /// of telemetry is within the setpoint's band (default +-2 %). False until
  /// the window has at least two ticks.
  ///
  /// Ticks are judged against the target they were asked to hold, not
  /// blindly against the latest one: a material mid-window retune (the
  /// coordinator reapportioning the budget when a node is lost or rejoins)
  /// starts a new segment, and a segment too fresh to have settled defers
  /// the verdict to the previous target's segment instead of poisoning the
  /// mean with samples that were tracking the old value.
  bool converged(double window_s) const;

  /// Mean measurement over the trailing `window_s` of telemetry (0 when no
  /// ticks landed in the window) — the "achieved plateau" a phase summary
  /// reports next to the setpoint.
  double trailing_mean(double window_s) const;

  /// Default dimensionless gains per variable: power plants react within one
  /// tick, so the loop is tuned fast; temperature lags by the thermal time
  /// constant and gets a slower integral plus a derivative brake.
  static PidGains default_gains(ControlVariable variable);

  /// Default plant span when neither the simulator nor a `scale=` hint
  /// provides one (host power span in W; temperature span in degC).
  static double default_scale(ControlVariable variable);

 private:
  struct TrailingStats {
    double mean = 0.0;
    std::size_t samples = 0;
  };
  TrailingStats trailing_stats(double window_s) const;

  Setpoint setpoint_;
  std::shared_ptr<ControlledProfile> profile_;
  double scale_;
  PidController pid_;
  telemetry::RingBuffer<ControlTick> ticks_;
  telemetry::TelemetryBus* bus_ = nullptr;
  telemetry::ChannelId ch_setpoint_ = 0, ch_measurement_ = 0, ch_error_ = 0, ch_output_ = 0;
  double last_tick_s_ = 0.0;
  bool ticked_ = false;
};

/// Bus sink writing the per-tick --control-log CSV
/// ("time_s,setpoint,measurement,error,level,phase"). Assembles one row
/// from the four ctl-* channel samples of a tick (the loop publishes them
/// in order, output last) and flushes immediately, so a run killed mid-way
/// keeps its log up to the last tick. Callers own the stream and its
/// header line.
class ControlLogSink : public telemetry::SampleSink {
 public:
  explicit ControlLogSink(std::ostream& out) : out_(out) {}

  void on_channel(telemetry::ChannelId id, const telemetry::ChannelInfo& info) override;
  void on_phase_begin(const telemetry::PhaseInfo& phase) override { phase_ = phase; }
  void on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) override;

 private:
  /// What a channel contributes to the row. Keyed by name, not unit: a
  /// campaign mixing power and temperature setpoints registers two
  /// ctl-setpoint channels (W and degC) and both feed the same column.
  enum class Role { kNone, kSetpoint, kMeasurement, kError, kOutput };

  std::ostream& out_;
  telemetry::PhaseInfo phase_;
  std::vector<Role> roles_;  ///< index = ChannelId
  ControlTick row_;
};

}  // namespace fs2::control
