#include "control/pid.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fs2::control {

PidController::PidController(PidConfig config) : cfg_(config) {
  if (!(cfg_.out_min < cfg_.out_max))
    throw ConfigError("PidController: output range must satisfy out_min < out_max");
  if (!(cfg_.derivative_tau_s >= 0.0))
    throw ConfigError("PidController: derivative filter time constant must be >= 0");
}

void PidController::reset(double output_bias) {
  integral_ = std::clamp(output_bias, cfg_.out_min, cfg_.out_max);
  prev_measurement_ = 0.0;
  derivative_ = 0.0;
  primed_ = false;
  saturated_ = false;
}

double PidController::update(double setpoint, double measurement, double dt_s) {
  if (!(dt_s > 0.0)) throw Error("PidController: dt must be > 0");
  const double error = setpoint - measurement;

  // Derivative on measurement (negated: a rising measurement should push the
  // output down), through a first-order low-pass.
  const double raw = primed_ ? -(measurement - prev_measurement_) / dt_s : 0.0;
  const double alpha =
      cfg_.derivative_tau_s > 0.0 ? dt_s / (cfg_.derivative_tau_s + dt_s) : 1.0;
  derivative_ += alpha * (raw - derivative_);
  prev_measurement_ = measurement;
  primed_ = true;

  const double p_term = cfg_.gains.kp * error;
  const double d_term = cfg_.gains.kd * derivative_;
  const double i_candidate = integral_ + cfg_.gains.ki * error * dt_s;

  double unclamped = p_term + i_candidate + d_term;
  const bool winds_up = (unclamped > cfg_.out_max && error > 0.0) ||
                        (unclamped < cfg_.out_min && error < 0.0);
  if (!winds_up)
    integral_ = i_candidate;
  else
    unclamped = p_term + integral_ + d_term;  // hold the integral where it was

  const double output = std::clamp(unclamped, cfg_.out_min, cfg_.out_max);
  saturated_ = output != unclamped;
  return output;
}

}  // namespace fs2::control
