#pragma once

namespace fs2::control {

/// PID gains. The feedback loop normalizes the process error by the plant's
/// full-scale span before it reaches the controller, so gains are
/// dimensionless: kp is output (load fraction) per unit of normalized error,
/// ki per unit-error-second, kd per unit-error/second.
struct PidGains {
  double kp = 0.0;
  double ki = 0.0;
  double kd = 0.0;
};

/// Controller parameters beyond the gains.
struct PidConfig {
  PidGains gains;
  double out_min = 0.0;  ///< actuator floor (idle)
  double out_max = 1.0;  ///< actuator ceiling (full load)
  /// First-order low-pass time constant for the derivative term. The raw
  /// derivative of a noisy power reading is useless (0.4 % meter noise at
  /// 4 Hz swamps any trend); 0 disables filtering.
  double derivative_tau_s = 0.0;
};

/// Discrete PID controller with output clamping, conditional-integration
/// anti-windup, and derivative-on-measurement filtering.
///
/// Design notes:
///  - The derivative acts on the measurement, not the error, so setpoint
///    steps (campaign `target=` transitions) do not kick the actuator.
///  - Anti-windup: the integral is frozen whenever the unclamped output is
///    saturated *and* the error would push it further out. Under an
///    unreachable setpoint the integral therefore stays bounded and the
///    loop recovers in one or two ticks once the setpoint drops back.
///  - The integral state stores the accumulated I *term* (already scaled by
///    ki), so `reset(bias)` gives a bumpless start from a feed-forward
///    guess: the first output equals `bias` when the error is zero.
class PidController {
 public:
  explicit PidController(PidConfig config);

  /// One controller tick: returns the clamped actuator command for the
  /// given setpoint/measurement pair. `dt_s` is the time since the previous
  /// update and must be > 0.
  double update(double setpoint, double measurement, double dt_s);

  /// Clear dynamic state; preload the integral so the next output starts at
  /// `output_bias` (clamped into [out_min, out_max]) for zero error.
  void reset(double output_bias = 0.0);

  /// Accumulated integral term (post-ki). Bounded under saturation.
  double integral() const { return integral_; }

  /// True when the previous update clamped its output.
  bool saturated() const { return saturated_; }

  const PidConfig& config() const { return cfg_; }

 private:
  PidConfig cfg_;
  double integral_ = 0.0;
  double prev_measurement_ = 0.0;
  double derivative_ = 0.0;  ///< filtered d(measurement)/dt, sign-flipped
  bool primed_ = false;      ///< prev_measurement_ holds a real sample
  bool saturated_ = false;
};

}  // namespace fs2::control
