#include "control/setpoint.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::control {

const char* to_string(ControlVariable variable) {
  switch (variable) {
    case ControlVariable::kPower: return "power";
    case ControlVariable::kTemperature: return "temperature";
    case ControlVariable::kClusterPower: return "cluster-power";
  }
  return "?";
}

const char* unit_of(ControlVariable variable) {
  switch (variable) {
    case ControlVariable::kPower: return "W";
    case ControlVariable::kTemperature: return "degC";
    case ControlVariable::kClusterPower: return "W";
  }
  return "?";
}

namespace {

/// PID gain override: finite and non-negative (the derivative term is
/// sign-flipped internally, so all gains are positive in this formulation;
/// NaN would poison the whole loop through std::clamp).
double parse_gain(const std::string& value, const std::string& key) {
  const double gain = strings::parse_double(value, "--target " + key);
  if (!(gain >= 0.0 && gain <= 1000.0))
    throw ConfigError("--target: " + key + " must be a finite gain within [0, 1000]");
  return gain;
}

/// Numeric value with an optional unit suffix ("150W", "85C", "85c").
double parse_valued(const std::string& text, char unit, const std::string& context) {
  std::string number = text;
  if (!number.empty()) {
    const char last = number.back();
    if (last == unit || last == static_cast<char>(unit + ('a' - 'A')))
      number.pop_back();
  }
  return strings::parse_double(strings::trim(number), context);
}

}  // namespace

Setpoint Setpoint::parse(const std::string& spec) {
  const std::string_view trimmed = strings::trim(spec);
  if (trimmed.empty()) throw ConfigError("--target: empty setpoint spec");

  Setpoint sp;
  std::map<std::string, std::string> seen;
  bool first = true;
  for (const std::string& token : strings::split(trimmed, ',')) {
    const std::string_view entry = strings::trim(token);
    if (entry.empty()) throw ConfigError("--target: empty parameter in '" + spec + "'");
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos)
      throw ConfigError("--target: parameter '" + std::string(entry) + "' is not key=value");
    const std::string key = strings::to_lower(strings::trim(entry.substr(0, eq)));
    const std::string value(strings::trim(entry.substr(eq + 1)));
    if (value.empty()) throw ConfigError("--target: key '" + key + "' has an empty value");
    if (!seen.emplace(key, value).second)
      throw ConfigError("--target: duplicate key '" + key + "'");

    if (first) {
      if (key == "power") {
        sp.variable = ControlVariable::kPower;
        sp.value = parse_valued(value, 'W', "--target power");
        if (!(sp.value > 0.0 && sp.value <= 100000.0))
          throw ConfigError("--target: power setpoint must be within (0, 100000] watts");
      } else if (key == "temp" || key == "temperature") {
        sp.variable = ControlVariable::kTemperature;
        sp.value = parse_valued(value, 'C', "--target temp");
        if (!(sp.value > 0.0 && sp.value <= 150.0))
          throw ConfigError("--target: temperature setpoint must be within (0, 150] degC");
      } else if (key == "cluster-power") {
        sp.variable = ControlVariable::kClusterPower;
        sp.value = parse_valued(value, 'W', "--target cluster-power");
        if (!(sp.value > 0.0 && sp.value <= 10000000.0))
          throw ConfigError(
              "--target: cluster-power budget must be within (0, 1e7] watts");
        // Budget rounds pay a network round trip each; default to a slower
        // cadence than the per-node PID tick (interval= still overrides).
        sp.interval_s = 0.5;
      } else {
        throw ConfigError("--target: spec must start with power=WATTS or temp=DEGC, got '" +
                          key + "'");
      }
      first = false;
      continue;
    }

    if (key == "kp") sp.kp = parse_gain(value, "kp");
    else if (key == "ki") sp.ki = parse_gain(value, "ki");
    else if (key == "kd") sp.kd = parse_gain(value, "kd");
    else if (key == "interval") {
      sp.interval_s = strings::parse_double(value, "--target interval");
      // Floor at 10 ms: RAPL updates at ~1 kHz and the sim tick loop runs
      // duration/interval iterations — a microsecond interval would spin a
      // "virtual time" run for hours and accumulate telemetry unbounded.
      if (!(sp.interval_s >= 0.01 && sp.interval_s <= 60.0))
        throw ConfigError("--target: interval must be within [0.01, 60] seconds");
    } else if (key == "band") {
      const double pct = strings::parse_double(value, "--target band");
      if (!(pct > 0.0 && pct <= 50.0))
        throw ConfigError("--target: band must be within (0, 50] percent");
      sp.band = pct / 100.0;
    } else if (key == "scale") {
      sp.scale = strings::parse_double(value, "--target scale");
      // Finite too: scale=inf would normalize every error to zero and
      // silently freeze the controller at its initial level.
      if (!std::isfinite(*sp.scale) || !(*sp.scale > 0.0))
        throw ConfigError(
            "--target: scale must be a finite value > 0 measured units per unit load");
    } else {
      throw ConfigError("--target: unknown key '" + key +
                        "' (power, temp, kp, ki, kd, interval, band, scale)");
    }
  }
  return sp;
}

void Setpoint::validate_duration(double duration_s, const std::string& what) const {
  // Two ticks minimum: one tick cannot yield a convergence verdict
  // (converged() needs >= 2 samples), so anything shorter would fail
  // --require-convergence vacuously instead of erroring up front.
  if (duration_s < 2.0 * interval_s)
    throw ConfigError(strings::format(
        "%s of %g s is shorter than two controller intervals of %g s (lower "
        "interval= in the target spec or lengthen it)",
        what.c_str(), duration_s, interval_s));
}

std::string Setpoint::describe() const {
  return strings::format("%s setpoint %g %s (tick %g s, band %g %%)", to_string(variable),
                         value, unit_of(variable), interval_s, band * 100.0);
}

}  // namespace fs2::control
