#pragma once

#include <optional>
#include <string>

#include "control/pid.hpp"

namespace fs2::control {

/// Which process variable the feedback loop regulates.
enum class ControlVariable {
  kPower,        ///< package/wall power in watts (RAPL or the sim meter)
  kTemperature,  ///< package temperature in degrees Celsius (coretemp/k10temp)
  /// Sum of node powers across a coordinated fleet, in watts. Only valid on
  /// a cluster coordinator (`--coordinator --target cluster-power=2000W`):
  /// the BudgetApportioner splits it into per-node kPower setpoints that
  /// the agents' FeedbackLoops track.
  kClusterPower,
};

const char* to_string(ControlVariable variable);
const char* unit_of(ControlVariable variable);

/// A parsed `--target` / campaign `target=` specification: the regulated
/// variable, its setpoint, and optional loop-tuning overrides.
///
/// Grammar (comma-separated key=value, first entry picks the variable):
///
///   power=WATTS[W]   e.g. power=150W
///   temp=DEGC[C]     e.g. temp=85C (also: temperature=)
///
/// optionally followed by any of
///
///   kp=G  ki=G  kd=G    dimensionless PID gain overrides (see PidGains)
///   interval=SEC        controller tick period (default 0.25)
///   band=PCT            convergence band as percent of setpoint (default 2)
///   scale=UNITS         plant span hint: measured units per unit load swing
///                       (host runs only; simulated plants know their span)
///
/// Example: `--target power=150W,kp=0.4,ki=1.5,interval=0.5`.
struct Setpoint {
  ControlVariable variable = ControlVariable::kPower;
  double value = 0.0;       ///< watts or degrees Celsius
  double interval_s = 0.25; ///< controller tick period
  double band = 0.02;       ///< convergence band, fraction of the setpoint

  // Per-gain overrides; unset entries fall back to the variable's defaults
  // (FeedbackLoop::default_gains).
  std::optional<double> kp, ki, kd;

  /// Plant span hint for host runs, in measured units per unit load swing.
  std::optional<double> scale;

  /// Parse a spec string. Throws fs2::ConfigError on unknown variables,
  /// malformed or duplicate keys, and out-of-range values.
  static Setpoint parse(const std::string& spec);

  /// Throw fs2::ConfigError when a run/phase of `duration_s` seconds cannot
  /// fit at least two controller ticks — fewer cannot yield a convergence
  /// verdict, so the run would fail --require-convergence vacuously instead
  /// of erroring up front. `what` names the offender in the message
  /// ("closed-loop run", "campaign phase 'x'").
  void validate_duration(double duration_s, const std::string& what) const;

  /// One-liner for logs, e.g. "power setpoint 150 W (tick 0.25 s, band 2 %)".
  std::string describe() const;
};

}  // namespace fs2::control
