#include "firestarter/backends.hpp"

#include <chrono>
#include <thread>

#include "kernel/thread_manager.hpp"
#include "metrics/measurement.hpp"
#include "metrics/sim_metrics.hpp"
#include "payload/compiler.hpp"
#include "util/logging.hpp"

namespace fs2::firestarter {

SimBackend::SimBackend(sim::SimulatedSystem& system, payload::InstructionMix mix,
                       arch::CacheHierarchy caches, sim::RunConditions conditions,
                       double candidate_duration_s, std::uint64_t seed)
    : system_(system),
      mix_(std::move(mix)),
      caches_(std::move(caches)),
      conditions_(conditions),
      duration_s_(candidate_duration_s),
      seed_(seed) {}

void SimBackend::preheat() {
  const auto stats = payload::analyze_payload(
      mix_, payload::InstructionGroups::parse("L1_LS:2,REG:1"), caches_);
  system_.set_point(system_.simulator().run(stats, conditions_));
}

std::vector<double> SimBackend::evaluate(const payload::InstructionGroups& groups) {
  const auto stats = payload::analyze_payload(mix_, groups, caches_);
  system_.set_point(system_.simulator().run(stats, conditions_));

  // "Measure" through the same Metric interface a real run uses: the
  // simulated LMG95 at 20 Sa/s plus the simulated IPC counter, aggregated
  // over the candidate window with a short start trim (the trim window
  // binds when the streaming measurement window opens).
  metrics::SimPowerMetric power(&system_, seed_ + ++evaluations_);
  metrics::SimIpcMetric ipc(&system_);
  const double start_trim = std::min(1.0, duration_s_ * 0.1);
  metrics::TimeSeries power_series(power.name(), power.unit(), start_trim, 0.0);
  metrics::TimeSeries ipc_series(ipc.name(), ipc.unit(), start_trim, 0.0);
  const double sample_hz = 20.0;
  const auto samples = static_cast<std::size_t>(duration_s_ * sample_hz);
  power.begin();
  ipc.begin();
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sample_hz;  // virtual time
    power_series.add(t, power.sample());
    ipc_series.add(t, ipc.sample());
  }
  return {power_series.summarize().mean, ipc_series.summarize().mean};
}

HostBackend::HostBackend(payload::InstructionMix mix, arch::CacheHierarchy caches,
                         std::vector<int> worker_cpus, std::vector<std::string> names,
                         std::vector<MetricFactory> factories, double candidate_duration_s,
                         std::uint64_t seed)
    : mix_(std::move(mix)),
      caches_(std::move(caches)),
      cpus_(std::move(worker_cpus)),
      names_(std::move(names)),
      factories_(std::move(factories)),
      duration_s_(candidate_duration_s),
      seed_(seed) {}

std::vector<double> HostBackend::evaluate(const payload::InstructionGroups& groups) {
  payload::CompileOptions options;
  auto payload = payload::compile_payload(mix_, groups, caches_, options);

  kernel::RunOptions run;
  run.cpus = cpus_;
  run.seed = seed_;
  kernel::ThreadManager manager(payload, run);

  std::vector<metrics::MetricPtr> metric_list;
  std::vector<metrics::TimeSeries> series;
  const int workers = static_cast<int>(cpus_.size());
  const auto counter = [&manager] { return manager.total_iterations(); };
  const double start_trim = std::min(1.0, duration_s_ * 0.1);
  for (const MetricFactory& factory : factories_) {
    metric_list.push_back(factory(payload.stats(), workers, counter));
    series.emplace_back(metric_list.back()->name(), metric_list.back()->unit(), start_trim,
                        0.0);
  }

  manager.start();
  for (auto& metric : metric_list) metric->begin();

  const double sample_period_s = 0.05;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < duration_s_) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sample_period_s));
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    for (std::size_t m = 0; m < metric_list.size(); ++m)
      series[m].add(elapsed, metric_list[m]->sample());
  }
  manager.stop();

  std::vector<double> objectives;
  for (const auto& s : series) objectives.push_back(s.summarize().mean);
  return objectives;
}

}  // namespace fs2::firestarter
