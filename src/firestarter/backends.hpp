#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/cache.hpp"
#include "arch/topology.hpp"
#include "metrics/metric.hpp"
#include "payload/mix.hpp"
#include "sim/sim_system.hpp"
#include "tuning/groups_problem.hpp"

namespace fs2::firestarter {

/// Evaluation backend against the testbed simulator: candidates are
/// analyzed statically, run through the machine model, and "measured" by
/// the simulated power meter and IPC counter over a virtual window.
/// Evaluations are instantaneous in wall time — the property that makes
/// Fig. 7's dip-free candidate switching visible end to end.
class SimBackend : public tuning::EvaluationBackend {
 public:
  SimBackend(sim::SimulatedSystem& system, payload::InstructionMix mix,
             arch::CacheHierarchy caches, sim::RunConditions conditions,
             double candidate_duration_s, std::uint64_t seed);

  std::vector<std::string> objective_names() const override { return {"power-W", "ipc"}; }
  std::vector<double> evaluate(const payload::InstructionGroups& groups) override;

  /// Virtual preheat: publishes a default workload point so the thermal
  /// state is "warm" (Fig. 7's first 240 s).
  void preheat();

 private:
  sim::SimulatedSystem& system_;
  payload::InstructionMix mix_;
  arch::CacheHierarchy caches_;
  sim::RunConditions conditions_;
  double duration_s_;
  std::uint64_t seed_;
  std::uint64_t evaluations_ = 0;
};

/// Evaluation backend on the real host: each candidate is JIT-compiled,
/// executed by pinned worker threads for the candidate duration, and
/// scored by the supplied metrics (RAPL power, perf IPC, estimated IPC,
/// plugins). This is the Fig. 10 loop with the measurement device replaced
/// by whatever the host offers.
class HostBackend : public tuning::EvaluationBackend {
 public:
  /// `metric_factories` build fresh metric instances per evaluation (the
  /// estimate metric needs the current payload's instruction count and the
  /// worker iteration counter, so factories receive all three).
  using IterationCounter = std::function<std::uint64_t()>;
  using MetricFactory = std::function<metrics::MetricPtr(
      const payload::PayloadStats& stats, int workers, IterationCounter counter)>;

  HostBackend(payload::InstructionMix mix, arch::CacheHierarchy caches,
              std::vector<int> worker_cpus, std::vector<std::string> names,
              std::vector<MetricFactory> factories, double candidate_duration_s,
              std::uint64_t seed);

  std::vector<std::string> objective_names() const override { return names_; }
  std::vector<double> evaluate(const payload::InstructionGroups& groups) override;

 private:
  payload::InstructionMix mix_;
  arch::CacheHierarchy caches_;
  std::vector<int> cpus_;
  std::vector<std::string> names_;
  std::vector<MetricFactory> factories_;
  double duration_s_;
  std::uint64_t seed_;
};

}  // namespace fs2::firestarter
