#include "firestarter/config.hpp"

#include <functional>
#include <map>

#include "control/setpoint.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::firestarter {

const char* to_string(TargetSystem target) {
  switch (target) {
    case TargetSystem::kHost: return "host";
    case TargetSystem::kSimZen2: return "sim-zen2";
    case TargetSystem::kSimHaswell: return "sim-haswell";
    case TargetSystem::kSimHaswellGpu: return "sim-haswell-gpu";
  }
  return "?";
}

TargetSystem parse_sim_target(const std::string& name) {
  if (name == "zen2") return TargetSystem::kSimZen2;
  if (name == "haswell") return TargetSystem::kSimHaswell;
  if (name == "haswell-gpu") return TargetSystem::kSimHaswellGpu;
  throw ConfigError("unknown simulation target '" + name + "'");
}

namespace {

/// Argument cursor with checked value access.
class Args {
 public:
  Args(int argc, const char* const* argv) : argc_(argc), argv_(argv) {}
  bool done() const { return index_ >= argc_; }
  std::string next() { return argv_[index_++]; }
  std::string value(const std::string& flag) {
    if (index_ >= argc_) throw ConfigError("flag " + flag + " expects a value");
    return argv_[index_++];
  }

 private:
  int argc_;
  const char* const* argv_;
  int index_ = 1;
};

/// Split "--flag=value" into flag and inline value.
std::pair<std::string, std::optional<std::string>> split_flag(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) return {arg, std::nullopt};
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

}  // namespace

Config parse_args(int argc, const char* const* argv) {
  Config cfg;
  Args args(argc, argv);

  auto take = [&](const std::optional<std::string>& inline_value, Args& a,
                  const std::string& flag) {
    return inline_value ? *inline_value : a.value(flag);
  };

  while (!args.done()) {
    const std::string raw = args.next();
    const auto [flag, inline_value] = split_flag(raw);

    if (flag == "-h" || flag == "--help") cfg.show_help = true;
    else if (flag == "--version") cfg.show_version = true;
    else if (flag == "-a" || flag == "--avail") cfg.list_functions = true;
    else if (flag == "--list-metrics") cfg.list_metrics = true;
    else if (flag == "-i" || flag == "--function") {
      const std::string value = take(inline_value, args, flag);
      try {
        cfg.function_id = std::stoi(value);
      } catch (...) {
        cfg.function_name = value;
      }
    } else if (flag == "--run-instruction-groups") {
      cfg.instruction_groups = take(inline_value, args, flag);
    } else if (flag == "--set-line-count") {
      cfg.line_count =
          static_cast<unsigned>(strings::parse_u64(take(inline_value, args, flag), flag));
    } else if (flag == "-t" || flag == "--timeout") {
      cfg.timeout_s = strings::parse_double(take(inline_value, args, flag), flag);
      cfg.candidate_duration_s = cfg.timeout_s > 0 ? cfg.timeout_s : cfg.candidate_duration_s;
    } else if (flag == "-l" || flag == "--load") {
      const double pct = strings::parse_double(take(inline_value, args, flag), flag);
      if (pct < 0.0 || pct > 100.0) throw ConfigError("--load must be within [0, 100]");
      cfg.load = pct / 100.0;
    } else if (flag == "-p" || flag == "--period") {
      // Microseconds, matching the original tool's -p (the paper's
      // oscillation experiments use periods down to tens of us).
      const double us = strings::parse_double(take(inline_value, args, flag), flag);
      if (!(us > 0.0)) throw ConfigError("--period must be > 0 microseconds");
      cfg.period_s = us / 1e6;
    } else if (flag == "--load-profile") {
      cfg.load_profile = take(inline_value, args, flag);
    } else if (flag == "--phase-offset") {
      const double us = strings::parse_double(take(inline_value, args, flag), flag);
      if (!(us >= 0.0)) throw ConfigError("--phase-offset must be >= 0 microseconds");
      cfg.phase_offset_s = us / 1e6;
    } else if (flag == "--campaign") {
      cfg.campaign_file = take(inline_value, args, flag);
    } else if (flag == "--record-trace") {
      cfg.record_trace = take(inline_value, args, flag);
    } else if (flag == "--target") {
      cfg.target_spec = take(inline_value, args, flag);
      control::Setpoint::parse(*cfg.target_spec);  // reject malformed specs here
    } else if (flag == "--control-log") {
      cfg.control_log = take(inline_value, args, flag);
    } else if (flag == "--require-convergence") {
      cfg.require_convergence = true;
    } else if (flag == "--coordinator") {
      cfg.coordinator = true;
    } else if (flag == "--listen") {
      const std::uint64_t port = strings::parse_u64(take(inline_value, args, flag), flag);
      if (port > 65535) throw ConfigError("--listen: port must be within [0, 65535]");
      cfg.listen_port = static_cast<std::uint16_t>(port);
      cfg.listen_port_explicit = true;
    } else if (flag == "--nodes") {
      const std::uint64_t n = strings::parse_u64(take(inline_value, args, flag), flag);
      if (n == 0 || n > 4096) throw ConfigError("--nodes must be within [1, 4096]");
      cfg.cluster_nodes = static_cast<int>(n);
    } else if (flag == "--agent") {
      cfg.agent_endpoint = take(inline_value, args, flag);
    } else if (flag == "--node-name") {
      cfg.node_name = take(inline_value, args, flag);
    } else if (flag == "--loopback") {
      cfg.loopback_nodes = take(inline_value, args, flag);
      cfg.coordinator = true;
    } else if (flag == "--cluster-start-delay") {
      cfg.cluster_start_delay_s =
          strings::parse_double(take(inline_value, args, flag), flag);
      if (!(cfg.cluster_start_delay_s >= 0.05 && cfg.cluster_start_delay_s <= 600.0))
        throw ConfigError("--cluster-start-delay must be within [0.05, 600] seconds");
    } else if (flag == "--sync-tolerance") {
      cfg.sync_tolerance_s = strings::parse_double(take(inline_value, args, flag), flag);
      if (!(cfg.sync_tolerance_s > 0.0))
        throw ConfigError("--sync-tolerance must be > 0 seconds");
    } else if (flag == "--trace-out") {
      cfg.trace_out = take(inline_value, args, flag);
      if (cfg.trace_out->empty()) throw ConfigError("--trace-out: file path must not be empty");
    } else if (flag == "--status") {
      cfg.status_endpoint = take(inline_value, args, flag);
      if (cfg.status_endpoint->find(':') == std::string::npos)
        throw ConfigError("--status expects HOST:PORT");
    } else if (flag == "--metrics-interval") {
      cfg.metrics_interval_s = strings::parse_double(take(inline_value, args, flag), flag);
      if (!(cfg.metrics_interval_s >= 0.0 && cfg.metrics_interval_s <= 600.0))
        throw ConfigError("--metrics-interval must be within [0, 600] seconds (0 disables)");
    } else if (flag == "--flight-out") {
      cfg.flight_out = take(inline_value, args, flag);
      if (cfg.flight_out->empty())
        throw ConfigError("--flight-out: file path must not be empty");
    } else if (flag == "--chaos") {
      cfg.chaos_spec = take(inline_value, args, flag);
      if (cfg.chaos_spec->empty())
        throw ConfigError("--chaos: spec must not be empty");
    } else if (flag == "--rejoin-grace") {
      cfg.rejoin_grace_s = strings::parse_double(take(inline_value, args, flag), flag);
      if (!(cfg.rejoin_grace_s >= 0.0 && cfg.rejoin_grace_s <= 600.0))
        throw ConfigError("--rejoin-grace must be within [0, 600] seconds");
    } else if (flag == "--fuzz") {
      cfg.fuzz = true;
    } else if (flag == "--fuzz-seed") {
      cfg.fuzz_seed = strings::parse_u64(take(inline_value, args, flag), flag);
    } else if (flag == "--fuzz-population") {
      cfg.fuzz_population = strings::parse_u64(take(inline_value, args, flag), flag);
      if (cfg.fuzz_population == 0 || cfg.fuzz_population > 4096)
        throw ConfigError("--fuzz-population must be within [1, 4096]");
    } else if (flag == "--fuzz-generations") {
      cfg.fuzz_generations = strings::parse_u64(take(inline_value, args, flag), flag);
      if (cfg.fuzz_generations == 0 || cfg.fuzz_generations > 1000)
        throw ConfigError("--fuzz-generations must be within [1, 1000]");
    } else if (flag == "--fuzz-corpus") {
      cfg.fuzz_corpus = strings::parse_u64(take(inline_value, args, flag), flag);
      if (cfg.fuzz_corpus == 0 || cfg.fuzz_corpus > 256)
        throw ConfigError("--fuzz-corpus must be within [1, 256]");
    } else if (flag == "--fuzz-duration") {
      cfg.fuzz_duration_s = strings::parse_double(take(inline_value, args, flag), flag);
      if (!(cfg.fuzz_duration_s >= 1.0 && cfg.fuzz_duration_s <= 600.0))
        throw ConfigError("--fuzz-duration must be within [1, 600] seconds");
    } else if (flag == "--fuzz-objective") {
      cfg.fuzz_objective = take(inline_value, args, flag);
      if (cfg.fuzz_objective != "all" && cfg.fuzz_objective != "peak-power" &&
          cfg.fuzz_objective != "power-swing" && cfg.fuzz_objective != "thermal")
        throw ConfigError(
            "--fuzz-objective must be peak-power, power-swing, thermal, or all");
    } else if (flag == "--fuzz-report") {
      cfg.fuzz_report = take(inline_value, args, flag);
    } else if (flag == "-n" || flag == "--threads") {
      cfg.threads = static_cast<int>(strings::parse_u64(take(inline_value, args, flag), flag));
    } else if (flag == "--one-thread-per-core") {
      cfg.one_thread_per_core = true;
    } else if (flag == "--seed") {
      cfg.seed = strings::parse_u64(take(inline_value, args, flag), flag);
    } else if (flag == "--allow-infinity-bug") {
      cfg.v174_bug_mode = true;
    } else if (flag == "--dump-asm") {
      cfg.dump_asm = true;
    } else if (flag == "--selftest") {
      cfg.selftest = true;
      if (inline_value)
        cfg.selftest_iterations = strings::parse_u64(*inline_value, flag);
    } else if (flag == "--dump-registers") {
      cfg.dump_registers = true;
      if (inline_value) cfg.dump_interval_s = strings::parse_double(*inline_value, flag);
    } else if (flag == "--dump-path") {
      cfg.dump_path = take(inline_value, args, flag);
    } else if (flag == "--measurement") {
      cfg.measurement = true;
    } else if (flag == "--start-delta") {
      cfg.start_delta_s = strings::parse_double(take(inline_value, args, flag), flag) / 1000.0;
    } else if (flag == "--stop-delta") {
      cfg.stop_delta_s = strings::parse_double(take(inline_value, args, flag), flag) / 1000.0;
    } else if (flag == "--optimize") {
      const std::string algo = strings::to_upper(take(inline_value, args, flag));
      if (algo != "NSGA2")
        throw ConfigError("unknown optimization algorithm '" + algo + "' (supported: NSGA2)");
      cfg.optimize = true;
    } else if (flag == "--individuals") {
      cfg.individuals = strings::parse_u64(take(inline_value, args, flag), flag);
    } else if (flag == "--generations") {
      cfg.generations = strings::parse_u64(take(inline_value, args, flag), flag);
    } else if (flag == "--nsga2-m") {
      cfg.nsga2_m = strings::parse_double(take(inline_value, args, flag), flag);
      if (cfg.nsga2_m < 0.0 || cfg.nsga2_m > 1.0)
        throw ConfigError("--nsga2-m must be within [0, 1]");
    } else if (flag == "--preheat") {
      cfg.preheat_s = strings::parse_double(take(inline_value, args, flag), flag);
    } else if (flag == "--optimization-metric") {
      for (const auto& name : strings::split(take(inline_value, args, flag), ','))
        cfg.optimization_metrics.push_back(std::string(strings::trim(name)));
    } else if (flag == "--metric-path") {
      cfg.metric_path = take(inline_value, args, flag);
    } else if (flag == "--metric-command") {
      cfg.metric_command = take(inline_value, args, flag);
    } else if (flag == "--optimization-log") {
      cfg.optimization_log = take(inline_value, args, flag);
    } else if (flag == "--simulate") {
      cfg.target = parse_sim_target(inline_value ? strings::to_lower(*inline_value) : "zen2");
    } else if (flag == "--freq") {
      cfg.sim_freq_mhz = strings::parse_double(take(inline_value, args, flag), flag);
    } else if (flag == "--sim-sample-hz") {
      cfg.sim_sample_hz = strings::parse_double(take(inline_value, args, flag), flag);
      if (!(cfg.sim_sample_hz > 0.0))
        throw ConfigError("--sim-sample-hz must be > 0");
    } else if (flag == "--gpus") {
      cfg.gpus = static_cast<int>(strings::parse_u64(take(inline_value, args, flag), flag));
    } else if (flag == "--gpu-matrixsize") {
      cfg.gpu_matrix_n = strings::parse_u64(take(inline_value, args, flag), flag);
    } else if (flag == "--log-level") {
      cfg.log_level = take(inline_value, args, flag);
    } else {
      throw ConfigError("unknown flag '" + flag + "' (see --help)");
    }
  }

  if (cfg.optimize && cfg.optimization_metrics.empty()) {
    // Paper default: power + IPC (Sec. III-C).
    cfg.optimization_metrics = {"power", "ipc"};
  }
  return cfg;
}

std::string usage() {
  return R"(fs2 — FIRESTARTER 2 reproduction: dynamic code generation for processor stress tests

General:
  -h, --help                   show this help
  --version                    print version
  -a, --avail                  list available stress functions
  --list-metrics               list metrics available on this system
  --log-level LEVEL            trace|debug|info|warn|error|off

Workload (Sec. III):
  -i, --function ID|NAME       select the instruction set I
  --run-instruction-groups M   memory accesses, e.g. REG:4,L1_L:2,L2_L:1
  --set-line-count U           unroll factor u (default: fill 3/4 of L1-I)
  --allow-infinity-bug         reproduce the v1.7.4 operand bug (Sec. III-D)

Execution:
  -t, --timeout SEC            stop after SEC seconds
  -l, --load PCT               busy fraction per period (default 100)
  -p, --period US              load/idle modulation period in microseconds
                               (default 100000)
  -n, --threads N              worker threads (default: all hardware threads)
  --one-thread-per-core        skip SMT siblings
  --seed N                     operand-initialization seed
  --dump-asm                   print the disassembly of the generated kernel
                               instead of running it
  --selftest[=N]               synchronized SIMD error detection: every worker
                               runs exactly N identical iterations; any register
                               divergence or invalid value fails (exit code 1)
  --dump-registers[=SEC]       flush SIMD registers to --dump-path periodically
  --dump-path FILE             register dump file (default registers.dump)

Load schedule (dynamic load patterns, Sec. III):
  --load-profile SPEC          modulate load over time; SPEC is
                               KIND[:key=value,...] with loads in percent and
                               times in seconds:
                                 constant[:load=P]
                                 square[:low=P,high=P,period=S,duty=F]
                                 sine[:low=P,high=P,period=S]
                                 ramp[:from=P,to=P,duration=S]
                                 bursts[:base=P,peak=P,window=S,prob=P,seed=N]
                                 trace[:file=CSV,loop=0|1,span=S]
                               e.g. --load-profile=sine:low=10,high=90,period=2
  --phase-offset US            shift worker i's schedule by i*US microseconds
                               (rotating-load scenarios; default 0 = lockstep)
  --campaign FILE              run the multi-phase campaign described in FILE
                               ("phase name=X duration=S profile=SPEC
                               [function=F] [target=SPEC] [threads=N]
                               [freq=MHZ]" per line) and print one summary
                               row per phase and metric
  --record-trace FILE          write the achieved load-level series as a
                               trace CSV that --load-profile trace:file=FILE
                               replays (record -> replay)

Closed-loop control (hold a power or temperature setpoint):
  --target SPEC                regulate the duty cycle against a measured
                               setpoint instead of an open-loop profile;
                               SPEC is power=WATTS[W] or temp=DEGC[C],
                               optionally with kp=/ki=/kd= (PID gains),
                               interval=SEC (tick, default 0.25),
                               band=PCT (convergence band, default 2),
                               scale=UNITS (plant span hint, host runs).
                               Feedback: RAPL package power or
                               coretemp/k10temp on hosts, the power plant
                               model under --simulate
  --control-log FILE           per-tick controller CSV
                               (time_s,setpoint,measurement,error,level,phase)
  --require-convergence        exit 1 when a controlled run/phase does not
                               settle inside the setpoint band

Cluster orchestration (coordinator/agent fleet runs):
  --coordinator                run as the fleet coordinator: accept --nodes
                               agents, clock-sync each one (RTT-compensated
                               offset estimation), distribute --campaign,
                               start every node on a shared epoch, merge the
                               streamed telemetry into one CSV with a
                               trailing node column plus cluster-aggregate
                               rows (cluster-power sum, cluster-temp-max)
  --listen PORT                coordinator TCP port (default 7380; 0 picks
                               an ephemeral port; under --loopback an
                               explicit PORT pins the otherwise-ephemeral
                               status/metrics endpoint)
  --nodes N                    number of agents the coordinator waits for
  --agent HOST:PORT            run as an agent: connect to the coordinator,
                               receive the campaign, stream telemetry back
  --node-name NAME             agent identity in the merged CSV
  --loopback SPECS             single-process cluster: spawn in-process sim
                               agents against a 127.0.0.1 coordinator, e.g.
                               --loopback zen2@1500,haswell@2000 (implies
                               --coordinator; deterministic, used by CI).
                               A spec takes an xCOUNT multiplier — e.g.
                               zen2@1500x256,haswell@2000x256 is a 512-node
                               fleet, driven by one shared event loop
                               rather than a thread per agent
  --cluster-start-delay SEC    epoch lead time after the last handshake
                               (default 0.5)
  --sync-tolerance SEC         max allowed cross-node phase-start spread
                               before the run is flagged out of lockstep
                               (default 0.25)
  --target cluster-power=WATTS[,band=PCT,interval=SEC]
                               (coordinator only) hold a global power
                               budget: each interval the coordinator
                               reapportions per-node power setpoints from
                               reported achieved watts so the fleet total
                               tracks the budget
  --trace-out FILE             enable the span tracer and write the run's
                               merged timeline as Chrome trace_event JSON
                               (open in Perfetto / chrome://tracing). On a
                               coordinator, agent spans are rebased through
                               the clock-sync offsets onto the coordinator
                               clock — one fleet-wide timeline
  --status HOST:PORT           probe a live coordinator and print fleet
                               health (per-node connection state, phase
                               progress, begin-spread, queue depth, budget
                               allocation vs achieved watts, alerts), then
                               exit — nonzero when any node is unhealthy
  --metrics-interval SEC       cadence agents ship live metric deltas at
                               (default 1; 0 disables the live metrics
                               plane and flat-line detection). The
                               coordinator also answers HTTP GET /metrics
                               on its cluster port with Prometheus-style
                               exposition text while a run is live
  --flight-out FILE            keep a crash flight recorder: a bounded
                               ring of recent alerts, events, and metric
                               snapshots rewritten to FILE as the run
                               progresses and dumped on SIGTERM/SIGINT
  --chaos SPEC                 deterministic fault injection (coordinator):
                               seeded drop/corrupt/truncate/delay on the
                               fleet's telemetry links plus kill/stall cues,
                               e.g. "seed=7,drop=1%,delay=5ms+-3ms,
                               kill=node5@phase1". Same seed, same schedule;
                               the plan is recorded in the flight dump
  --rejoin-grace SEC           how long a lost node may rejoin before the
                               coordinator gives up on it (default 2;
                               barriers hold during the window)

Payload pattern fuzzer (randomized scenario discovery):
  --fuzz                       randomly compose payload patterns (memory-access
                               mix M + unroll u), evaluate each as a short
                               square-excursion phase on the simulated plant,
                               and keep a bounded ranked corpus of response
                               outliers along three objectives: peak power,
                               power swing (VR stress), thermal ramp rate.
                               Needs --simulate (one candidate at a time) or
                               --loopback (a fleet evaluates one candidate
                               per node per cluster round)
  --fuzz-seed N                seeds candidate generation and the simulated
                               meters; the same seed and the same target spec
                               reproduce the identical corpus (default
                               0x5eedf022)
  --fuzz-population N          candidates per generation (default 32; rounded
                               up to a multiple of the fleet size)
  --fuzz-generations N         generations (default 2; the first is uniform
                               random, later ones mutate corpus elites)
  --fuzz-corpus N              retained outliers per objective (default 8)
  --fuzz-duration SEC          virtual seconds per candidate phase (default 6)
  --fuzz-objective NAME        peak-power | power-swing | thermal | all
                               (default all): which axes the corpus keeps
                               outliers for
  --fuzz-report PATH           write the evaluation log (spec string, response
                               signature, dedupe status, final ranks, seed);
                               a .json extension selects JSON, else CSV

Measurement (Sec. III-D):
  --measurement                print metric CSV after the run
  --start-delta MS             ignore the first MS milliseconds (default 5000)
  --stop-delta MS              ignore the last MS milliseconds (default 2000)

Self-tuning (Sec. III-C / IV-E):
  --optimize=NSGA2             tune M with the multi-objective optimizer
  --individuals N              population size (default 40)
  --generations N              generations (default 20)
  --nsga2-m F                  mutation probability (default 0.35)
  --preheat SEC                warm-up before tuning (default 240)
  --optimization-metric LIST   e.g. power,ipc (or any --list-metrics name)
  --metric-path LIB.so         external metric plugin (C ABI)
  --metric-command CMD         external metric command printing one number
  --optimization-log FILE      per-evaluation CSV log (Fig. 11 data)

Target system:
  --simulate[=zen2|haswell|haswell-gpu]
                               run against the calibrated testbed simulator
                               instead of the host (virtual time)
  --freq MHZ                   simulated core P-state (default: nominal)
  --sim-sample-hz HZ           virtual power-meter sampling rate for
                               simulated open-loop runs (default 20, the
                               paper's LMG95; telemetry streams one-pass,
                               so high rates cost CPU, not memory)
  --gpus N                     stress N GPU stand-ins (DGEMM workers;
                               they duty-cycle against --load-profile and
                               campaign phase schedules like CPU workers)
  --gpu-matrixsize N           DGEMM dimension (default 256)
)";
}

}  // namespace fs2::firestarter
