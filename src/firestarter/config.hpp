#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fs2::firestarter {

/// Which system the stress run targets.
enum class TargetSystem {
  kHost,        ///< the real machine this process runs on
  kSimZen2,     ///< simulated Table II testbed (2x EPYC 7502)
  kSimHaswell,  ///< simulated Fig. 2 testbed (2x E5-2680 v3)
  kSimHaswellGpu,  ///< same, with 4x K80
};

/// Parsed command line. Flag names follow the paper (Sec. III/IV) and the
/// original tool; simulator selection is this reproduction's addition.
struct Config {
  // Mode switches.
  bool show_help = false;
  bool show_version = false;
  bool list_functions = false;     ///< -a / --avail
  bool list_metrics = false;       ///< --list-metrics

  // Workload selection (Sec. III-B).
  std::optional<int> function_id;          ///< -i / --function (by id)
  std::optional<std::string> function_name;
  std::optional<std::string> instruction_groups;  ///< --run-instruction-groups
  std::optional<unsigned> line_count;             ///< --set-line-count (u)

  // Execution.
  double timeout_s = 0.0;          ///< -t (0 = run until interrupted)
  double load = 1.0;               ///< -l / --load (fraction busy)
  double period_s = 0.1;           ///< -p / --period (us on the CLI, paper Sec. III)
  std::optional<int> threads;      ///< --threads / -n
  bool one_thread_per_core = false;
  std::uint64_t seed = 0x5eed;
  bool v174_bug_mode = false;      ///< --allow-infinity-bug (Sec. III-D demo)

  // Load schedule (sched/ subsystem: dynamic load patterns & campaigns).
  std::optional<std::string> load_profile;  ///< --load-profile SPEC
  double phase_offset_s = 0.0;              ///< --phase-offset (us on the CLI)
  std::optional<std::string> campaign_file; ///< --campaign FILE
  /// Achieved-load trace recording (sched/trace_recorder): the replayable
  /// CSV closing the record -> replay loop.
  std::optional<std::string> record_trace;  ///< --record-trace FILE

  // Closed-loop control (control/ subsystem: setpoint regulation).
  std::optional<std::string> target_spec;   ///< --target SPEC (power=W / temp=C /
                                            ///< cluster-power=W on a coordinator)
  std::optional<std::string> control_log;   ///< --control-log FILE (per-tick CSV)
  bool require_convergence = false;         ///< --require-convergence (exit 1 if not)

  // Cluster orchestration (cluster/ subsystem: coordinator/agent fleets).
  bool coordinator = false;                 ///< --coordinator
  std::uint16_t listen_port = 7380;         ///< --listen PORT (0 = ephemeral)
  /// True when --listen was given explicitly. Loopback fleets default to an
  /// ephemeral port (parallel CI runs must not collide), but an explicit
  /// --listen pins it so scrapers can reach /metrics at a known address.
  bool listen_port_explicit = false;
  std::optional<int> cluster_nodes;         ///< --nodes N (coordinator fleet size)
  std::optional<std::string> agent_endpoint;///< --agent HOST:PORT
  std::optional<std::string> node_name;     ///< --node-name (agent identity)
  /// --loopback SPEC,...: spawn in-process sim agents (e.g. "zen2@1500,
  /// haswell@2000") against a 127.0.0.1 coordinator — the deterministic
  /// single-process cluster for tests and CI.
  std::optional<std::string> loopback_nodes;
  double cluster_start_delay_s = 0.5;       ///< --cluster-start-delay SEC
  double sync_tolerance_s = 0.25;           ///< --sync-tolerance SEC
  /// --trace-out FILE: enable the span tracer and export the run's merged
  /// fleet timeline as Chrome trace_event JSON (load in Perfetto). On a
  /// coordinator the timeline covers every node, clock-rebased; on a plain
  /// run it covers this process.
  std::optional<std::string> trace_out;
  /// --status HOST:PORT: don't run anything — probe a live coordinator's
  /// status plane and print fleet health (per-node phase/queue/budget).
  /// Exits nonzero when any node is unhealthy (lost, flat-lined, or
  /// diverged from its setpoint).
  std::optional<std::string> status_endpoint;
  /// --metrics-interval SEC: kMetricUpdate cadence agents ship registry
  /// deltas at (coordinator hands it to the fleet). 0 disables the live
  /// metrics plane — and flat-line detection with it.
  double metrics_interval_s = 1.0;
  /// --flight-out FILE: keep a crash flight recorder — a bounded ring of
  /// recent alerts, lifecycle events, and metric snapshots rewritten to
  /// FILE on every update and dumped (async-signal-safely) on SIGTERM/
  /// SIGINT or a watchdog trip.
  std::optional<std::string> flight_out;
  /// --chaos SPEC: deterministic fault injection on a coordinator run, e.g.
  /// "seed=7,drop=1%,delay=5ms+-3ms,corrupt=0.1%,kill=node5@phase1". The
  /// seeded plan is replayable bit-for-bit and recorded in the flight dump.
  std::optional<std::string> chaos_spec;
  /// --rejoin-grace SEC: how long a lost node may take to rejoin before the
  /// coordinator gives up on it (barriers hold during the window; 0 gives
  /// up immediately).
  double rejoin_grace_s = 2.0;

  // Payload pattern fuzzer (fuzz/ subsystem: randomized scenario discovery
  // over the simulated plant, locally or fanned across a --loopback fleet).
  bool fuzz = false;                        ///< --fuzz
  std::uint64_t fuzz_seed = 0x5eedf022;     ///< --fuzz-seed (candidates + meters)
  std::size_t fuzz_population = 32;         ///< --fuzz-population (per generation)
  std::size_t fuzz_generations = 2;         ///< --fuzz-generations
  std::size_t fuzz_corpus = 8;              ///< --fuzz-corpus (outliers/objective)
  double fuzz_duration_s = 6.0;             ///< --fuzz-duration (per candidate)
  std::string fuzz_objective = "all";       ///< --fuzz-objective
  std::optional<std::string> fuzz_report;   ///< --fuzz-report PATH (.json or CSV)

  // Synchronized SIMD self-test (error detection for overclocked systems).
  bool selftest = false;
  std::uint64_t selftest_iterations = 200000;

  // Disassemble the generated kernel instead of running it.
  bool dump_asm = false;

  // Register dump (Sec. III-D).
  bool dump_registers = false;
  double dump_interval_s = 10.0;
  std::string dump_path = "registers.dump";

  // Measurement (Sec. III-D: CSV after the run).
  bool measurement = false;
  double start_delta_s = 5.0;      ///< --start-delta (ms on the CLI)
  double stop_delta_s = 2.0;       ///< --stop-delta (ms on the CLI)

  // Optimization (Sec. III-C / IV-E).
  bool optimize = false;           ///< --optimize=NSGA2
  std::size_t individuals = 40;
  std::size_t generations = 20;
  double nsga2_m = 0.35;
  double preheat_s = 240.0;
  double candidate_duration_s = 10.0;  ///< -t under --optimize
  std::vector<std::string> optimization_metrics;  ///< --optimization-metric
  std::optional<std::string> metric_path;         ///< --metric-path (plugin .so)
  std::optional<std::string> metric_command;      ///< --metric-command (script)
  std::string optimization_log = "fs2_optimization_log.csv";

  // Target system.
  TargetSystem target = TargetSystem::kHost;
  double sim_freq_mhz = 0.0;       ///< requested P-state on the simulator (0 = nominal)
  /// Virtual-time trace sampling rate for open-loop simulated runs
  /// (--sim-sample-hz; default mirrors the paper's LMG95 at 20 Sa/s).
  /// Telemetry streams one-pass, so cranking this up costs CPU, not memory
  /// — which is exactly what the CI bounded-memory smoke exercises.
  double sim_sample_hz = 20.0;

  // GPU stress (host DGEMM stand-in).
  int gpus = 0;                    ///< --gpus
  std::size_t gpu_matrix_n = 256;  ///< --gpu-matrixsize

  std::string log_level = "info";
};

/// Parse argv. Throws fs2::ConfigError on unknown flags or malformed
/// values; never exits the process (the caller owns that decision).
Config parse_args(int argc, const char* const* argv);

/// Map a --simulate / --loopback target name ("zen2", "haswell",
/// "haswell-gpu") to its TargetSystem. Throws fs2::ConfigError on unknown
/// names.
TargetSystem parse_sim_target(const std::string& name);

/// --help text.
std::string usage();

const char* to_string(TargetSystem target);

}  // namespace fs2::firestarter
