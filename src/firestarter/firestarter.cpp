#include "firestarter/firestarter.hpp"

#include <chrono>
#include <fstream>
#include <thread>

#include "arch/processor.hpp"
#include "arch/topology.hpp"
#include "firestarter/backends.hpp"
#include "gpu/dgemm_stress.hpp"
#include "kernel/register_dump.hpp"
#include "jit/disassembler.hpp"
#include "kernel/selftest.hpp"
#include "kernel/thread_manager.hpp"
#include "kernel/watchdog.hpp"
#include "metrics/external.hpp"
#include "metrics/ipc_estimate.hpp"
#include "metrics/measurement.hpp"
#include "metrics/perf_ipc.hpp"
#include "metrics/rapl.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sched/campaign.hpp"
#include "sched/load_profile.hpp"
#include "sim/sim_system.hpp"
#include "tuning/nsga2.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fs2::firestarter {

namespace {

constexpr const char* kVersion = "fs2 2.0.0 (FIRESTARTER 2 reproduction)";

/// Machine description for the selected target.
struct Target {
  arch::ProcessorModel cpu;
  arch::CacheHierarchy caches;
  sim::MachineConfig sim_config;  // meaningful for simulator targets only
  bool simulated = false;
  bool gpu_stress = false;
};

Target resolve_target(const Config& cfg) {
  Target target;
  switch (cfg.target) {
    case TargetSystem::kHost:
      target.cpu = arch::detect_host();
      target.caches = arch::CacheHierarchy::from_sysfs();
      break;
    case TargetSystem::kSimZen2:
      target.cpu = arch::epyc_7502_model();
      target.caches = arch::CacheHierarchy::zen2();
      target.sim_config = sim::MachineConfig::zen2_epyc7502_2s();
      target.simulated = true;
      break;
    case TargetSystem::kSimHaswell:
    case TargetSystem::kSimHaswellGpu:
      target.cpu = arch::xeon_e5_2680v3_model();
      target.caches = arch::CacheHierarchy::haswell_ep();
      target.sim_config = sim::MachineConfig::haswell_e5_2680v3_2s(
          cfg.target == TargetSystem::kSimHaswellGpu ? 4 : 0);
      target.simulated = true;
      target.gpu_stress = cfg.target == TargetSystem::kSimHaswellGpu;
      break;
  }
  return target;
}

const payload::FunctionDef& resolve_function(const Config& cfg, const Target& target) {
  if (cfg.function_id) return payload::find_function(*cfg.function_id);
  if (cfg.function_name) return payload::find_function(*cfg.function_name);
  return payload::select_function(target.cpu);
}

payload::InstructionGroups resolve_groups(const Config& cfg, const payload::FunctionDef& fn) {
  return payload::InstructionGroups::parse(
      cfg.instruction_groups ? *cfg.instruction_groups : fn.default_groups);
}

payload::CompileOptions compile_options(const Config& cfg) {
  payload::CompileOptions options;
  if (cfg.line_count) options.unroll = *cfg.line_count;
  options.dump_registers = cfg.dump_registers;
  return options;
}

payload::DataInitPolicy policy_of(const Config& cfg) {
  return cfg.v174_bug_mode ? payload::DataInitPolicy::kV174InfinityBug
                           : payload::DataInitPolicy::kSafe;
}

/// The run's load schedule: --load-profile spec, or the classic --load duty
/// cycle as a constant profile.
sched::ProfilePtr resolve_profile(const Config& cfg) {
  if (cfg.load_profile) return sched::parse_profile(*cfg.load_profile, cfg.load, cfg.period_s);
  return std::make_shared<sched::ConstantProfile>(cfg.load);
}

/// Worker CPU list for host runs: the topology's choice, trimmed to
/// --threads when set.
std::vector<int> resolve_worker_cpus(const Config& cfg) {
  std::vector<int> cpus = arch::Topology::from_sysfs().worker_cpus(cfg.one_thread_per_core);
  if (cfg.threads && *cfg.threads > 0 && static_cast<std::size_t>(*cfg.threads) < cpus.size())
    cpus.resize(static_cast<std::size_t>(*cfg.threads));
  return cpus;
}

/// The IPC estimate converts loop counts to instructions/cycle at this
/// assumed clock when the real frequency is unknown (Sec. III-C).
constexpr double kIpcEstimateAssumedMhz = 2000.0;

/// Metric set for a host stress run: RAPL power and perf IPC when available,
/// the loop-count IPC estimate always, plus the --metric-path /
/// --metric-command externals — shared by plain runs and campaign phases so
/// both report through the same sources.
struct HostMetricSet {
  metrics::RaplPowerMetric rapl;
  metrics::PerfIpcMetric perf;
  std::unique_ptr<metrics::IpcEstimateMetric> estimate;
  std::unique_ptr<metrics::PluginMetric> plugin;
  std::unique_ptr<metrics::CommandMetric> command;
  std::vector<metrics::Metric*> active;       ///< metrics that responded as available
  std::vector<metrics::TimeSeries> series;    ///< one per active metric, same order

  void begin_all() {
    for (metrics::Metric* metric : active) metric->begin();
  }
  void sample_all(double elapsed_s) {
    for (std::size_t m = 0; m < active.size(); ++m)
      series[m].add(elapsed_s, active[m]->sample());
  }
};

std::unique_ptr<HostMetricSet> build_host_metrics(const Config& cfg,
                                                  const kernel::ThreadManager& manager,
                                                  double instructions_per_iteration) {
  auto set = std::make_unique<HostMetricSet>();
  set->estimate = std::make_unique<metrics::IpcEstimateMetric>(
      [&manager] { return manager.total_iterations(); }, instructions_per_iteration,
      kIpcEstimateAssumedMhz, static_cast<int>(manager.num_workers()));
  if (cfg.metric_path) set->plugin = std::make_unique<metrics::PluginMetric>(*cfg.metric_path);
  if (cfg.metric_command)
    set->command = std::make_unique<metrics::CommandMetric>(*cfg.metric_command,
                                                            "external-command", "value");
  if (set->rapl.available()) set->active.push_back(&set->rapl);
  if (set->perf.available()) set->active.push_back(&set->perf);
  set->active.push_back(set->estimate.get());
  if (set->plugin && set->plugin->available()) set->active.push_back(set->plugin.get());
  if (set->command && set->command->available()) set->active.push_back(set->command.get());
  for (metrics::Metric* metric : set->active)
    set->series.emplace_back(metric->name(), metric->unit());
  return set;
}

double clamp01(double value) { return std::min(std::max(value, 0.0), 1.0); }

/// Trim deltas for a phase summary: honor the configured --start/--stop
/// deltas but never let them eat a short phase (campaign phases are often a
/// few seconds; the paper's 5 s/2 s defaults assume multi-minute runs).
metrics::Summary summarize_phase(const metrics::TimeSeries& series, double duration_s,
                                 double start_delta_s, double stop_delta_s,
                                 const std::string& phase) {
  metrics::Summary summary = series.summarize(std::min(start_delta_s, 0.25 * duration_s),
                                              std::min(stop_delta_s, 0.25 * duration_s));
  summary.phase = phase;
  return summary;
}

/// Evaluate one simulated stress phase: steady-state operating point plus a
/// load-modulated power/IPC/load trace at the LMG95's 20 Sa/s. The
/// modulation folds the duty cycle into the trace the same way the wall
/// meter would see it — idle floor plus load-weighted dynamic power.
struct SimPhase {
  sim::WorkloadPoint point;
  metrics::TimeSeries power{"sim-wall-power", "W"};
  metrics::TimeSeries ipc{"sim-perf-ipc", "instructions/cycle"};
  metrics::TimeSeries load{"load-level", "fraction"};
};

SimPhase run_sim_phase(const sim::SimulatedSystem& system, const Config& cfg,
                       const payload::PayloadStats& stats, const sched::LoadProfile& profile,
                       double duration_s, std::uint64_t seed, double warm_start_s,
                       bool gpu_stress) {
  sim::RunConditions cond;
  cond.freq_mhz = cfg.sim_freq_mhz;
  cond.policy = policy_of(cfg);
  cond.gpu_stress = gpu_stress;
  if (cfg.threads) cond.threads = *cfg.threads;

  SimPhase phase;
  phase.point = system.simulator().run(stats, cond);
  constexpr double kSampleHz = 20.0;
  const std::vector<double> trace =
      system.simulator().power_trace(phase.point, duration_s, kSampleHz, seed, warm_start_s);
  const double idle_w = system.simulator().idle().power_w;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double t = static_cast<double>(i) / kSampleHz;
    const double level = clamp01(profile.load_at(t));
    phase.power.add(t, idle_w + level * (trace[i] - idle_w));
    phase.ipc.add(t, phase.point.ipc_per_core * level);
    phase.load.add(t, level);
  }
  return phase;
}

/// Execute one campaign phase on the real machine: compile the phase's
/// workload, stress under its profile for `duration_s`, and append one
/// summary row per available metric tagged with the phase name.
void run_host_phase(const Config& cfg, const Target& target, const payload::FunctionDef& fn,
                    const payload::InstructionGroups& groups, sched::ProfilePtr profile,
                    double duration_s, const std::string& phase_name,
                    std::vector<metrics::Summary>* summaries) {
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name + " (needs " +
                           fn.mix.required.to_string() + ")");
  auto payload = payload::compile_payload(fn.mix, groups, target.caches, compile_options(cfg));

  kernel::RunOptions options;
  options.cpus = resolve_worker_cpus(cfg);
  options.policy = policy_of(cfg);
  options.seed = cfg.seed;
  options.load = cfg.load;
  options.period_s = cfg.period_s;
  options.profile = profile;
  options.phase_offset_s = cfg.phase_offset_s;
  kernel::ThreadManager manager(payload, options);

  auto metrics_set = build_host_metrics(cfg, manager, payload.stats().instructions_per_iteration);
  metrics::TimeSeries load_series("load-level", "fraction");

  kernel::Watchdog watchdog;
  std::atomic<bool> done{false};
  watchdog.arm(std::chrono::duration<double>(duration_s), [&done] { done.store(true); });
  manager.start();
  metrics_set->begin_all();
  const auto t0 = std::chrono::steady_clock::now();
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    metrics_set->sample_all(elapsed);
    load_series.add(elapsed, clamp01(profile->load_at(elapsed)));
  }
  manager.stop();

  std::vector<metrics::TimeSeries>& series = metrics_set->series;
  series.push_back(std::move(load_series));
  for (const metrics::TimeSeries& s : series) {
    try {
      summaries->push_back(
          summarize_phase(s, duration_s, cfg.start_delta_s, cfg.stop_delta_s, phase_name));
    } catch (const Error& e) {
      log::warn() << e.what();
    }
  }
}

}  // namespace

Firestarter::Firestarter(Config config, std::ostream& out) : cfg_(std::move(config)), out_(out) {}

int Firestarter::run() {
  log::set_level(log::parse_level(cfg_.log_level));
  if (cfg_.show_help) {
    out_ << usage();
    return 0;
  }
  if (cfg_.show_version) {
    out_ << kVersion << "\n";
    return 0;
  }
  if (cfg_.list_functions) return list_functions();
  if (cfg_.list_metrics) return list_metrics();
  if (cfg_.optimize) return run_optimization();
  if (cfg_.dump_asm) return run_dump_asm();
  if (cfg_.selftest) return run_selftest_mode();
  if (cfg_.campaign_file) return run_campaign();
  if (cfg_.target != TargetSystem::kHost) return run_stress_simulated();
  return run_stress_host();
}

int Firestarter::list_functions() {
  Table table({"id", "name", "isa", "tuned for", "default instruction groups"});
  for (const payload::FunctionDef& fn : payload::available_functions()) {
    std::string tuned;
    for (arch::Microarch arch : fn.tuned_for) {
      if (!tuned.empty()) tuned += ", ";
      tuned += arch::to_string(arch);
    }
    table.add_row({std::to_string(fn.id), fn.name, payload::to_string(fn.mix.isa),
                   tuned.empty() ? "(generic)" : tuned, fn.default_groups});
  }
  table.print(out_);
  return 0;
}

int Firestarter::list_metrics() {
  Table table({"metric", "unit", "available", "notes"});
  metrics::RaplPowerMetric rapl;
  table.add_row({rapl.name(), rapl.unit(), rapl.available() ? "yes" : "no",
                 "Intel RAPL package counters via powercap sysfs"});
  metrics::PerfIpcMetric perf;
  table.add_row({perf.name(), perf.unit(), perf.available() ? "yes" : "no",
                 "perf_event_open hardware counters"});
  table.add_row({"ipc-estimate", "instructions/cycle", "yes",
                 "loop count x instructions/loop at assumed frequency"});
  if (cfg_.metric_path) {
    metrics::PluginMetric plugin(*cfg_.metric_path);
    table.add_row({plugin.name(), plugin.unit(), plugin.available() ? "yes" : "no",
                   "external plugin " + *cfg_.metric_path});
  }
  table.add_row({"sim-wall-power", "W", "yes", "with --simulate targets"});
  table.add_row({"sim-perf-ipc", "instructions/cycle", "yes", "with --simulate targets"});
  table.print(out_);
  return 0;
}

int Firestarter::run_stress_simulated() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  const auto groups = resolve_groups(cfg_, fn);
  const auto stats = payload::analyze_payload(fn.mix, groups, target.caches,
                                              compile_options(cfg_));
  const sched::ProfilePtr profile = resolve_profile(cfg_);

  sim::SimulatedSystem system(target.sim_config);
  const double duration = cfg_.timeout_s > 0 ? cfg_.timeout_s : 240.0;
  SimPhase phase = run_sim_phase(system, cfg_, stats, *profile, duration, cfg_.seed,
                                 /*warm_start_s=*/0.0, target.gpu_stress);
  system.set_point(phase.point);

  out_ << "target: " << target.sim_config.name << "\n"
       << "function: " << fn.name << "  M=" << groups.to_string()
       << "  u=" << stats.unroll << " (" << stats.loop_bytes << " B loop)\n";
  if (!profile->constant()) out_ << "load profile: " << profile->describe() << "\n";
  const sim::WorkloadPoint& point = phase.point;
  out_ << strings::format(
      "steady state: %.1f W, %.2f IPC/core, %.0f MHz%s, %.1f GFLOP/s, fetch from %s\n",
      point.power_w, point.ipc_per_core, point.achieved_mhz,
      point.throttled ? " (throttled)" : "", point.gflops, sim::to_string(point.fetch_source));

  if (cfg_.measurement) {
    // Report the same CSV a real run prints, synthesized in virtual time.
    std::vector<metrics::Summary> summaries = {
        phase.power.summarize(cfg_.start_delta_s, cfg_.stop_delta_s),
        phase.ipc.summarize(0.0, 0.0)};
    if (!profile->constant()) summaries.push_back(phase.load.summarize(0.0, 0.0));
    metrics::print_csv(out_, summaries);
  }
  return 0;
}

int Firestarter::run_campaign() {
  const sched::Campaign campaign = sched::Campaign::load(*cfg_.campaign_file);
  const Target target = resolve_target(cfg_);
  if (cfg_.load_profile)
    log::warn() << "--load-profile is ignored under --campaign (phases define their "
                   "own profiles)";

  // Resolve every phase up front — functions (typos, host feature coverage)
  // and profiles (including trace-file reads) — so a campaign fails before
  // phase 1 starts stressing, never hours in. The cached profiles also mean
  // trace CSVs are read once, not re-opened per phase.
  struct ResolvedPhase {
    const payload::FunctionDef* fn;
    sched::ProfilePtr profile;
  };
  std::vector<ResolvedPhase> resolved;
  resolved.reserve(campaign.size());
  for (const sched::CampaignPhase& spec : campaign.phases()) {
    const payload::FunctionDef& fn = spec.function ? payload::find_function(*spec.function)
                                                   : resolve_function(cfg_, target);
    if (!target.simulated && !target.cpu.features.covers(fn.mix.required))
      throw UnsupportedError("campaign phase '" + spec.name +
                             "': host CPU lacks features for " + fn.name + " (needs " +
                             fn.mix.required.to_string() + ")");
    resolved.push_back(
        {&fn, sched::parse_profile(spec.profile_spec, cfg_.load, cfg_.period_s)});
  }

  out_ << "campaign: " << campaign.size() << " phases, "
       << strings::format("%.0f s total", campaign.total_duration_s()) << " on "
       << (target.simulated ? target.sim_config.name : "host") << "\n";

  // The GPU stand-in runs for the whole campaign (constant backdrop; the
  // load schedule does not modulate it yet — see ROADMAP follow-ups).
  std::unique_ptr<gpu::DgemmStressor> gpu_stress;
  if (!target.simulated && cfg_.gpus > 0) {
    gpu::GpuStressOptions gpu_options;
    gpu_options.devices = cfg_.gpus;
    gpu_options.matrix_n = cfg_.gpu_matrix_n;
    gpu_options.seed = cfg_.seed;
    gpu_stress = std::make_unique<gpu::DgemmStressor>(gpu_options);
    gpu_stress->start();
  }

  sim::SimulatedSystem system(target.sim_config);
  std::vector<metrics::Summary> summaries;
  double warm_start_s = 0.0;  // virtual preheat accumulated by earlier phases
  std::size_t phase_index = 0;
  for (const sched::CampaignPhase& spec : campaign.phases()) {
    const payload::FunctionDef& fn = *resolved[phase_index].fn;
    const auto groups = resolve_groups(cfg_, fn);
    const sched::ProfilePtr& profile = resolved[phase_index].profile;
    out_ << strings::format("phase %zu '%s': %s for %.0f s (%s)\n", phase_index + 1,
                            spec.name.c_str(), fn.name.c_str(), spec.duration_s,
                            profile->describe().c_str());

    if (target.simulated) {
      const auto stats =
          payload::analyze_payload(fn.mix, groups, target.caches, compile_options(cfg_));
      const SimPhase phase =
          run_sim_phase(system, cfg_, stats, *profile, spec.duration_s,
                        cfg_.seed + phase_index, warm_start_s, target.gpu_stress);
      for (const metrics::TimeSeries* series : {&phase.power, &phase.ipc, &phase.load})
        summaries.push_back(summarize_phase(*series, spec.duration_s, cfg_.start_delta_s,
                                            cfg_.stop_delta_s, spec.name));
    } else {
      run_host_phase(cfg_, target, fn, groups, profile, spec.duration_s, spec.name,
                     &summaries);
    }
    warm_start_s += spec.duration_s;
    ++phase_index;
  }

  if (gpu_stress) {
    gpu_stress->stop();
    out_ << strings::format("gpu stand-in: %llu DGEMMs (%.1f GFLOP total)\n",
                            static_cast<unsigned long long>(gpu_stress->total_gemms()),
                            gpu_stress->total_flops() / 1e9);
  }
  metrics::print_csv(out_, summaries);
  return 0;
}

int Firestarter::run_dump_asm() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  const auto groups = resolve_groups(cfg_, fn);
  // Regenerate the raw bytes outside executable memory for listing: the
  // compiler is deterministic, so this is exactly what a run would map.
  payload::CompileOptions options = compile_options(cfg_);
  if (options.unroll == 0) options.unroll = 16;  // keep listings readable by default
  auto payload = payload::compile_payload(fn.mix, groups, target.caches, options);
  out_ << "kernel for " << fn.name << "  M=" << groups.to_string() << "  u="
       << payload.stats().unroll << "  (" << payload.stats().loop_bytes << " B loop, "
       << payload.stats().instructions_per_iteration << " instructions/iteration)\n";
  // Disassemble straight from the mapped buffer (read access is allowed).
  out_ << jit::format_listing(payload.code_bytes());
  return 0;
}

int Firestarter::run_selftest_mode() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name);
  payload::CompileOptions options = compile_options(cfg_);
  options.dump_registers = true;
  auto payload = payload::compile_payload(fn.mix, resolve_groups(cfg_, fn), target.caches,
                                          options);
  const std::vector<int> cpus = resolve_worker_cpus(cfg_);
  out_ << "SIMD self-test: " << fn.name << " on " << cpus.size() << " workers, "
       << cfg_.selftest_iterations << " iterations each\n";
  const kernel::SelftestResult result =
      kernel::run_selftest(payload, cpus, cfg_.selftest_iterations, cfg_.seed);
  out_ << result.describe() << "\n";
  return result.passed ? 0 : 1;
}

int Firestarter::run_stress_host() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name + " (needs " +
                           fn.mix.required.to_string() + ")");
  const auto groups = resolve_groups(cfg_, fn);
  log::info() << "host: " << target.cpu.describe();
  log::info() << "function: " << fn.name << " M=" << groups.to_string();

  auto payload = payload::compile_payload(fn.mix, groups, target.caches, compile_options(cfg_));
  log::info() << "compiled loop: u=" << payload.stats().unroll << ", "
              << payload.stats().loop_bytes << " B, "
              << payload.stats().instructions_per_iteration << " instructions/iteration";

  kernel::RunOptions run_options;
  run_options.cpus = resolve_worker_cpus(cfg_);
  run_options.policy = policy_of(cfg_);
  run_options.seed = cfg_.seed;
  run_options.load = cfg_.load;
  run_options.period_s = cfg_.period_s;
  run_options.profile = resolve_profile(cfg_);
  run_options.phase_offset_s = cfg_.phase_offset_s;
  kernel::ThreadManager manager(payload, run_options);
  if (!run_options.profile->constant())
    log::info() << "load profile: " << run_options.profile->describe();

  // Optional GPU stand-in stress.
  std::unique_ptr<gpu::DgemmStressor> gpu_stress;
  if (cfg_.gpus > 0) {
    gpu::GpuStressOptions gpu_options;
    gpu_options.devices = cfg_.gpus;
    gpu_options.matrix_n = cfg_.gpu_matrix_n;
    gpu_options.seed = cfg_.seed;
    gpu_stress = std::make_unique<gpu::DgemmStressor>(gpu_options);
  }

  // Metrics for --measurement.
  auto metrics_set =
      build_host_metrics(cfg_, manager, payload.stats().instructions_per_iteration);
  metrics::TimeSeries load_series("load-level", "fraction");
  const bool record_load = cfg_.measurement && !run_options.profile->constant();

  kernel::Watchdog watchdog;
  std::atomic<bool> done{false};
  if (cfg_.timeout_s > 0)
    watchdog.arm(std::chrono::duration<double>(cfg_.timeout_s), [&done] { done.store(true); });

  log::info() << "stressing " << run_options.cpus.size() << " CPUs"
              << (cfg_.timeout_s > 0 ? strings::format(" for %.0f s", cfg_.timeout_s)
                                     : std::string(" until interrupted"));
  manager.start();
  if (gpu_stress) gpu_stress->start();
  metrics_set->begin_all();

  const auto t0 = std::chrono::steady_clock::now();
  double last_dump_s = 0.0;
  std::ofstream dump_file;
  if (cfg_.dump_registers) dump_file.open(cfg_.dump_path);
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (cfg_.measurement) metrics_set->sample_all(elapsed);
    if (record_load)
      load_series.add(elapsed, manager.profile().load_at(elapsed));
    if (cfg_.dump_registers && elapsed - last_dump_s >= cfg_.dump_interval_s) {
      kernel::write_dump(dump_file, kernel::capture_registers(manager));
      dump_file.flush();
      last_dump_s = elapsed;
    }
    if (cfg_.timeout_s <= 0 && elapsed >= 1e9) break;  // effectively forever
  }
  manager.stop();
  if (gpu_stress) gpu_stress->stop();
  if (cfg_.dump_registers) {
    kernel::write_dump(dump_file, kernel::capture_registers(manager));
    log::info() << "register dump written to " << cfg_.dump_path;
  }

  out_ << strings::format("executed %llu kernel loop iterations on %zu workers\n",
                          static_cast<unsigned long long>(manager.total_iterations()),
                          manager.num_workers());
  if (gpu_stress)
    out_ << strings::format("gpu stand-in: %llu DGEMMs (%.1f GFLOP total)\n",
                            static_cast<unsigned long long>(gpu_stress->total_gemms()),
                            gpu_stress->total_flops() / 1e9);
  if (cfg_.measurement) {
    std::vector<metrics::TimeSeries>& series = metrics_set->series;
    if (record_load) series.push_back(std::move(load_series));
    std::vector<metrics::Summary> summaries;
    for (const auto& s : series) {
      try {
        summaries.push_back(s.summarize(cfg_.start_delta_s, cfg_.stop_delta_s));
      } catch (const Error& e) {
        log::warn() << e.what();
      }
    }
    metrics::print_csv(out_, summaries);
  }
  return 0;
}

int Firestarter::run_optimization() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);

  std::unique_ptr<tuning::EvaluationBackend> backend;
  std::unique_ptr<sim::SimulatedSystem> system;
  if (target.simulated) {
    system = std::make_unique<sim::SimulatedSystem>(target.sim_config);
    sim::RunConditions cond;
    cond.freq_mhz = cfg_.sim_freq_mhz;
    cond.policy = policy_of(cfg_);
    cond.gpu_stress = target.gpu_stress;
    if (cfg_.threads) cond.threads = *cfg_.threads;
    auto sim_backend =
        std::make_unique<SimBackend>(*system, fn.mix, target.caches, cond,
                                     cfg_.candidate_duration_s, cfg_.seed);
    out_ << "preheat (" << cfg_.preheat_s << " s virtual) ...\n";
    sim_backend->preheat();
    backend = std::move(sim_backend);
  } else {
    const std::vector<int> cpus = resolve_worker_cpus(cfg_);

    // Objective set: power if RAPL (or a plugin/command) is available, IPC
    // via perf or the estimate — mirroring --optimization-metric defaults.
    std::vector<std::string> names;
    std::vector<HostBackend::MetricFactory> factories;
    if (metrics::RaplPowerMetric().available()) {
      names.push_back("rapl-power-W");
      factories.push_back([](const payload::PayloadStats&, int,
                             HostBackend::IterationCounter) -> metrics::MetricPtr {
        auto metric = std::make_unique<metrics::RaplPowerMetric>();
        return metric;
      });
    } else if (cfg_.metric_command) {
      names.push_back("external-power");
      const std::string command = *cfg_.metric_command;
      factories.push_back([command](const payload::PayloadStats&, int,
                                    HostBackend::IterationCounter) -> metrics::MetricPtr {
        return std::make_unique<metrics::CommandMetric>(command, "external-power", "W");
      });
    }
    names.push_back("ipc");
    factories.push_back([](const payload::PayloadStats& stats, int workers,
                           HostBackend::IterationCounter counter) -> metrics::MetricPtr {
      auto perf = std::make_unique<metrics::PerfIpcMetric>();
      if (perf->available()) return perf;
      return std::make_unique<metrics::IpcEstimateMetric>(
          std::move(counter), stats.instructions_per_iteration, 2000.0, workers);
    });
    if (names.size() < 2)
      log::warn() << "only one objective available on this host; NSGA-II degenerates "
                     "to single-objective search";
    out_ << "preheat (" << cfg_.preheat_s << " s) ...\n";
    backend = std::make_unique<HostBackend>(fn.mix, target.caches, cpus, names, factories,
                                            cfg_.candidate_duration_s, cfg_.seed);
    // Real preheat: run the default workload to warm the package.
    if (cfg_.preheat_s > 0) backend->evaluate(resolve_groups(cfg_, fn));
  }

  tuning::GroupsProblem problem(*backend);
  tuning::Nsga2Config nsga2_config;
  nsga2_config.individuals = cfg_.individuals;
  nsga2_config.generations = cfg_.generations;
  nsga2_config.mutation_probability = cfg_.nsga2_m;
  nsga2_config.seed = cfg_.seed;
  tuning::History history;
  tuning::Nsga2 optimizer(nsga2_config);

  out_ << "optimizing " << fn.name << " on " << (target.simulated ? target.sim_config.name : "host")
       << ": " << cfg_.individuals << " individuals x " << cfg_.generations
       << " generations, m=" << cfg_.nsga2_m << "\n";
  const auto population = optimizer.run(problem, &history);

  std::ofstream log_file(cfg_.optimization_log);
  history.write_csv(log_file, backend->objective_names());
  out_ << history.size() << " candidate evaluations logged to " << cfg_.optimization_log << "\n";

  // Print the first front, best power first (the paper prints "the best
  // individuals" after the last generation).
  Table table({"rank", backend->objective_names()[0],
               backend->objective_names().size() > 1 ? backend->objective_names()[1] : "-",
               "instruction groups"});
  int printed = 0;
  for (const auto& ind : population) {
    if (ind.rank != 0 || printed >= 10) continue;
    table.add_row({std::to_string(ind.rank), strings::format("%.2f", ind.objectives[0]),
                   ind.objectives.size() > 1 ? strings::format("%.3f", ind.objectives[1]) : "-",
                   tuning::GroupsProblem::to_groups(ind.genome).to_string()});
    ++printed;
  }
  table.print(out_);

  const auto& best = tuning::Nsga2::best_by_objective(population, 0);
  out_ << "selected optimum: " << tuning::GroupsProblem::to_groups(best.genome).to_string()
       << strings::format("  (%.2f %s)\n", best.objectives[0],
                          backend->objective_names()[0].c_str());
  return 0;
}

}  // namespace fs2::firestarter
