#include "firestarter/firestarter.hpp"

#include <chrono>
#include <fstream>
#include <thread>

#include "arch/processor.hpp"
#include "arch/topology.hpp"
#include "firestarter/backends.hpp"
#include "gpu/dgemm_stress.hpp"
#include "kernel/register_dump.hpp"
#include "jit/disassembler.hpp"
#include "kernel/selftest.hpp"
#include "kernel/thread_manager.hpp"
#include "kernel/watchdog.hpp"
#include "metrics/external.hpp"
#include "metrics/ipc_estimate.hpp"
#include "metrics/measurement.hpp"
#include "metrics/perf_ipc.hpp"
#include "metrics/rapl.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/sim_system.hpp"
#include "tuning/nsga2.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fs2::firestarter {

namespace {

constexpr const char* kVersion = "fs2 2.0.0 (FIRESTARTER 2 reproduction)";

/// Machine description for the selected target.
struct Target {
  arch::ProcessorModel cpu;
  arch::CacheHierarchy caches;
  sim::MachineConfig sim_config;  // meaningful for simulator targets only
  bool simulated = false;
  bool gpu_stress = false;
};

Target resolve_target(const Config& cfg) {
  Target target;
  switch (cfg.target) {
    case TargetSystem::kHost:
      target.cpu = arch::detect_host();
      target.caches = arch::CacheHierarchy::from_sysfs();
      break;
    case TargetSystem::kSimZen2:
      target.cpu = arch::epyc_7502_model();
      target.caches = arch::CacheHierarchy::zen2();
      target.sim_config = sim::MachineConfig::zen2_epyc7502_2s();
      target.simulated = true;
      break;
    case TargetSystem::kSimHaswell:
    case TargetSystem::kSimHaswellGpu:
      target.cpu = arch::xeon_e5_2680v3_model();
      target.caches = arch::CacheHierarchy::haswell_ep();
      target.sim_config = sim::MachineConfig::haswell_e5_2680v3_2s(
          cfg.target == TargetSystem::kSimHaswellGpu ? 4 : 0);
      target.simulated = true;
      target.gpu_stress = cfg.target == TargetSystem::kSimHaswellGpu;
      break;
  }
  return target;
}

const payload::FunctionDef& resolve_function(const Config& cfg, const Target& target) {
  if (cfg.function_id) return payload::find_function(*cfg.function_id);
  if (cfg.function_name) return payload::find_function(*cfg.function_name);
  return payload::select_function(target.cpu);
}

payload::InstructionGroups resolve_groups(const Config& cfg, const payload::FunctionDef& fn) {
  return payload::InstructionGroups::parse(
      cfg.instruction_groups ? *cfg.instruction_groups : fn.default_groups);
}

payload::CompileOptions compile_options(const Config& cfg) {
  payload::CompileOptions options;
  if (cfg.line_count) options.unroll = *cfg.line_count;
  options.dump_registers = cfg.dump_registers;
  return options;
}

payload::DataInitPolicy policy_of(const Config& cfg) {
  return cfg.v174_bug_mode ? payload::DataInitPolicy::kV174InfinityBug
                           : payload::DataInitPolicy::kSafe;
}

}  // namespace

Firestarter::Firestarter(Config config, std::ostream& out) : cfg_(std::move(config)), out_(out) {}

int Firestarter::run() {
  log::set_level(log::parse_level(cfg_.log_level));
  if (cfg_.show_help) {
    out_ << usage();
    return 0;
  }
  if (cfg_.show_version) {
    out_ << kVersion << "\n";
    return 0;
  }
  if (cfg_.list_functions) return list_functions();
  if (cfg_.list_metrics) return list_metrics();
  if (cfg_.optimize) return run_optimization();
  if (cfg_.dump_asm) return run_dump_asm();
  if (cfg_.selftest) return run_selftest_mode();
  if (cfg_.target != TargetSystem::kHost) return run_stress_simulated();
  return run_stress_host();
}

int Firestarter::list_functions() {
  Table table({"id", "name", "isa", "tuned for", "default instruction groups"});
  for (const payload::FunctionDef& fn : payload::available_functions()) {
    std::string tuned;
    for (arch::Microarch arch : fn.tuned_for) {
      if (!tuned.empty()) tuned += ", ";
      tuned += arch::to_string(arch);
    }
    table.add_row({std::to_string(fn.id), fn.name, payload::to_string(fn.mix.isa),
                   tuned.empty() ? "(generic)" : tuned, fn.default_groups});
  }
  table.print(out_);
  return 0;
}

int Firestarter::list_metrics() {
  Table table({"metric", "unit", "available", "notes"});
  metrics::RaplPowerMetric rapl;
  table.add_row({rapl.name(), rapl.unit(), rapl.available() ? "yes" : "no",
                 "Intel RAPL package counters via powercap sysfs"});
  metrics::PerfIpcMetric perf;
  table.add_row({perf.name(), perf.unit(), perf.available() ? "yes" : "no",
                 "perf_event_open hardware counters"});
  table.add_row({"ipc-estimate", "instructions/cycle", "yes",
                 "loop count x instructions/loop at assumed frequency"});
  if (cfg_.metric_path) {
    metrics::PluginMetric plugin(*cfg_.metric_path);
    table.add_row({plugin.name(), plugin.unit(), plugin.available() ? "yes" : "no",
                   "external plugin " + *cfg_.metric_path});
  }
  table.add_row({"sim-wall-power", "W", "yes", "with --simulate targets"});
  table.add_row({"sim-perf-ipc", "instructions/cycle", "yes", "with --simulate targets"});
  table.print(out_);
  return 0;
}

int Firestarter::run_stress_simulated() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  const auto groups = resolve_groups(cfg_, fn);
  const auto stats = payload::analyze_payload(fn.mix, groups, target.caches,
                                              compile_options(cfg_));

  sim::SimulatedSystem system(target.sim_config);
  sim::RunConditions cond;
  cond.freq_mhz = cfg_.sim_freq_mhz;
  cond.policy = policy_of(cfg_);
  cond.gpu_stress = target.gpu_stress;
  if (cfg_.threads) cond.threads = *cfg_.threads;
  const sim::WorkloadPoint point = system.simulator().run(stats, cond);
  system.set_point(point);

  const double duration = cfg_.timeout_s > 0 ? cfg_.timeout_s : 240.0;
  out_ << "target: " << target.sim_config.name << "\n"
       << "function: " << fn.name << "  M=" << groups.to_string()
       << "  u=" << stats.unroll << " (" << stats.loop_bytes << " B loop)\n";
  out_ << strings::format(
      "steady state: %.1f W, %.2f IPC/core, %.0f MHz%s, %.1f GFLOP/s, fetch from %s\n",
      point.power_w, point.ipc_per_core, point.achieved_mhz,
      point.throttled ? " (throttled)" : "", point.gflops, sim::to_string(point.fetch_source));

  if (cfg_.measurement) {
    // Synthesize the measurement window in virtual time and report the same
    // CSV a real run prints.
    const auto trace =
        system.simulator().power_trace(point, duration, 20.0, cfg_.seed, /*warm_start_s=*/0.0);
    metrics::TimeSeries power_series("sim-wall-power", "W");
    for (std::size_t i = 0; i < trace.size(); ++i)
      power_series.add(static_cast<double>(i) / 20.0, trace[i]);
    metrics::TimeSeries ipc_series("sim-perf-ipc", "instructions/cycle");
    ipc_series.add(0.0, point.ipc_per_core);
    ipc_series.add(duration, point.ipc_per_core);
    metrics::print_csv(out_, {power_series.summarize(cfg_.start_delta_s, cfg_.stop_delta_s),
                              ipc_series.summarize(0.0, 0.0)});
  }
  return 0;
}

int Firestarter::run_dump_asm() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  const auto groups = resolve_groups(cfg_, fn);
  // Regenerate the raw bytes outside executable memory for listing: the
  // compiler is deterministic, so this is exactly what a run would map.
  payload::CompileOptions options = compile_options(cfg_);
  if (options.unroll == 0) options.unroll = 16;  // keep listings readable by default
  auto payload = payload::compile_payload(fn.mix, groups, target.caches, options);
  out_ << "kernel for " << fn.name << "  M=" << groups.to_string() << "  u="
       << payload.stats().unroll << "  (" << payload.stats().loop_bytes << " B loop, "
       << payload.stats().instructions_per_iteration << " instructions/iteration)\n";
  // Disassemble straight from the mapped buffer (read access is allowed).
  out_ << jit::format_listing(payload.code_bytes());
  return 0;
}

int Firestarter::run_selftest_mode() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name);
  payload::CompileOptions options = compile_options(cfg_);
  options.dump_registers = true;
  auto payload = payload::compile_payload(fn.mix, resolve_groups(cfg_, fn), target.caches,
                                          options);
  const arch::Topology topology = arch::Topology::from_sysfs();
  std::vector<int> cpus = topology.worker_cpus(cfg_.one_thread_per_core);
  if (cfg_.threads && *cfg_.threads > 0 &&
      static_cast<std::size_t>(*cfg_.threads) < cpus.size())
    cpus.resize(static_cast<std::size_t>(*cfg_.threads));
  out_ << "SIMD self-test: " << fn.name << " on " << cpus.size() << " workers, "
       << cfg_.selftest_iterations << " iterations each\n";
  const kernel::SelftestResult result =
      kernel::run_selftest(payload, cpus, cfg_.selftest_iterations, cfg_.seed);
  out_ << result.describe() << "\n";
  return result.passed ? 0 : 1;
}

int Firestarter::run_stress_host() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name + " (needs " +
                           fn.mix.required.to_string() + ")");
  const auto groups = resolve_groups(cfg_, fn);
  log::info() << "host: " << target.cpu.describe();
  log::info() << "function: " << fn.name << " M=" << groups.to_string();

  auto payload = payload::compile_payload(fn.mix, groups, target.caches, compile_options(cfg_));
  log::info() << "compiled loop: u=" << payload.stats().unroll << ", "
              << payload.stats().loop_bytes << " B, "
              << payload.stats().instructions_per_iteration << " instructions/iteration";

  const arch::Topology topology = arch::Topology::from_sysfs();
  kernel::RunOptions run_options;
  run_options.cpus = topology.worker_cpus(cfg_.one_thread_per_core);
  if (cfg_.threads && *cfg_.threads > 0 &&
      static_cast<std::size_t>(*cfg_.threads) < run_options.cpus.size())
    run_options.cpus.resize(static_cast<std::size_t>(*cfg_.threads));
  run_options.policy = policy_of(cfg_);
  run_options.seed = cfg_.seed;
  run_options.load = cfg_.load;
  kernel::ThreadManager manager(payload, run_options);

  // Optional GPU stand-in stress.
  std::unique_ptr<gpu::DgemmStressor> gpu_stress;
  if (cfg_.gpus > 0) {
    gpu::GpuStressOptions gpu_options;
    gpu_options.devices = cfg_.gpus;
    gpu_options.matrix_n = cfg_.gpu_matrix_n;
    gpu_options.seed = cfg_.seed;
    gpu_stress = std::make_unique<gpu::DgemmStressor>(gpu_options);
  }

  // Metrics for --measurement.
  metrics::RaplPowerMetric rapl;
  metrics::PerfIpcMetric perf;
  metrics::IpcEstimateMetric estimate([&manager] { return manager.total_iterations(); },
                                      payload.stats().instructions_per_iteration,
                                      /*assumed_mhz=*/2000.0,
                                      static_cast<int>(run_options.cpus.size()));
  std::unique_ptr<metrics::PluginMetric> plugin;
  if (cfg_.metric_path) plugin = std::make_unique<metrics::PluginMetric>(*cfg_.metric_path);
  std::unique_ptr<metrics::CommandMetric> command;
  if (cfg_.metric_command)
    command = std::make_unique<metrics::CommandMetric>(*cfg_.metric_command, "external-command",
                                                       "value");

  std::vector<metrics::Metric*> active;
  if (rapl.available()) active.push_back(&rapl);
  if (perf.available()) active.push_back(&perf);
  active.push_back(&estimate);
  if (plugin && plugin->available()) active.push_back(plugin.get());
  if (command && command->available()) active.push_back(command.get());
  std::vector<metrics::TimeSeries> series;
  for (metrics::Metric* metric : active) series.emplace_back(metric->name(), metric->unit());

  kernel::Watchdog watchdog;
  std::atomic<bool> done{false};
  if (cfg_.timeout_s > 0)
    watchdog.arm(std::chrono::duration<double>(cfg_.timeout_s), [&done] { done.store(true); });

  log::info() << "stressing " << run_options.cpus.size() << " CPUs"
              << (cfg_.timeout_s > 0 ? strings::format(" for %.0f s", cfg_.timeout_s)
                                     : std::string(" until interrupted"));
  manager.start();
  if (gpu_stress) gpu_stress->start();
  for (metrics::Metric* metric : active) metric->begin();

  const auto t0 = std::chrono::steady_clock::now();
  double last_dump_s = 0.0;
  std::ofstream dump_file;
  if (cfg_.dump_registers) dump_file.open(cfg_.dump_path);
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (cfg_.measurement)
      for (std::size_t m = 0; m < active.size(); ++m)
        series[m].add(elapsed, active[m]->sample());
    if (cfg_.dump_registers && elapsed - last_dump_s >= cfg_.dump_interval_s) {
      kernel::write_dump(dump_file, kernel::capture_registers(manager));
      dump_file.flush();
      last_dump_s = elapsed;
    }
    if (cfg_.timeout_s <= 0 && elapsed >= 1e9) break;  // effectively forever
  }
  manager.stop();
  if (gpu_stress) gpu_stress->stop();
  if (cfg_.dump_registers) {
    kernel::write_dump(dump_file, kernel::capture_registers(manager));
    log::info() << "register dump written to " << cfg_.dump_path;
  }

  out_ << strings::format("executed %llu kernel loop iterations on %zu workers\n",
                          static_cast<unsigned long long>(manager.total_iterations()),
                          manager.num_workers());
  if (gpu_stress)
    out_ << strings::format("gpu stand-in: %llu DGEMMs (%.1f GFLOP total)\n",
                            static_cast<unsigned long long>(gpu_stress->total_gemms()),
                            gpu_stress->total_flops() / 1e9);
  if (cfg_.measurement) {
    std::vector<metrics::Summary> summaries;
    for (const auto& s : series) {
      try {
        summaries.push_back(s.summarize(cfg_.start_delta_s, cfg_.stop_delta_s));
      } catch (const Error& e) {
        log::warn() << e.what();
      }
    }
    metrics::print_csv(out_, summaries);
  }
  return 0;
}

int Firestarter::run_optimization() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);

  std::unique_ptr<tuning::EvaluationBackend> backend;
  std::unique_ptr<sim::SimulatedSystem> system;
  if (target.simulated) {
    system = std::make_unique<sim::SimulatedSystem>(target.sim_config);
    sim::RunConditions cond;
    cond.freq_mhz = cfg_.sim_freq_mhz;
    cond.policy = policy_of(cfg_);
    cond.gpu_stress = target.gpu_stress;
    if (cfg_.threads) cond.threads = *cfg_.threads;
    auto sim_backend =
        std::make_unique<SimBackend>(*system, fn.mix, target.caches, cond,
                                     cfg_.candidate_duration_s, cfg_.seed);
    out_ << "preheat (" << cfg_.preheat_s << " s virtual) ...\n";
    sim_backend->preheat();
    backend = std::move(sim_backend);
  } else {
    const arch::Topology topology = arch::Topology::from_sysfs();
    std::vector<int> cpus = topology.worker_cpus(cfg_.one_thread_per_core);
    if (cfg_.threads && *cfg_.threads > 0 &&
        static_cast<std::size_t>(*cfg_.threads) < cpus.size())
      cpus.resize(static_cast<std::size_t>(*cfg_.threads));

    // Objective set: power if RAPL (or a plugin/command) is available, IPC
    // via perf or the estimate — mirroring --optimization-metric defaults.
    std::vector<std::string> names;
    std::vector<HostBackend::MetricFactory> factories;
    if (metrics::RaplPowerMetric().available()) {
      names.push_back("rapl-power-W");
      factories.push_back([](const payload::PayloadStats&, int,
                             HostBackend::IterationCounter) -> metrics::MetricPtr {
        auto metric = std::make_unique<metrics::RaplPowerMetric>();
        return metric;
      });
    } else if (cfg_.metric_command) {
      names.push_back("external-power");
      const std::string command = *cfg_.metric_command;
      factories.push_back([command](const payload::PayloadStats&, int,
                                    HostBackend::IterationCounter) -> metrics::MetricPtr {
        return std::make_unique<metrics::CommandMetric>(command, "external-power", "W");
      });
    }
    names.push_back("ipc");
    factories.push_back([](const payload::PayloadStats& stats, int workers,
                           HostBackend::IterationCounter counter) -> metrics::MetricPtr {
      auto perf = std::make_unique<metrics::PerfIpcMetric>();
      if (perf->available()) return perf;
      return std::make_unique<metrics::IpcEstimateMetric>(
          std::move(counter), stats.instructions_per_iteration, 2000.0, workers);
    });
    if (names.size() < 2)
      log::warn() << "only one objective available on this host; NSGA-II degenerates "
                     "to single-objective search";
    out_ << "preheat (" << cfg_.preheat_s << " s) ...\n";
    backend = std::make_unique<HostBackend>(fn.mix, target.caches, cpus, names, factories,
                                            cfg_.candidate_duration_s, cfg_.seed);
    // Real preheat: run the default workload to warm the package.
    if (cfg_.preheat_s > 0) backend->evaluate(resolve_groups(cfg_, fn));
  }

  tuning::GroupsProblem problem(*backend);
  tuning::Nsga2Config nsga2_config;
  nsga2_config.individuals = cfg_.individuals;
  nsga2_config.generations = cfg_.generations;
  nsga2_config.mutation_probability = cfg_.nsga2_m;
  nsga2_config.seed = cfg_.seed;
  tuning::History history;
  tuning::Nsga2 optimizer(nsga2_config);

  out_ << "optimizing " << fn.name << " on " << (target.simulated ? target.sim_config.name : "host")
       << ": " << cfg_.individuals << " individuals x " << cfg_.generations
       << " generations, m=" << cfg_.nsga2_m << "\n";
  const auto population = optimizer.run(problem, &history);

  std::ofstream log_file(cfg_.optimization_log);
  history.write_csv(log_file, backend->objective_names());
  out_ << history.size() << " candidate evaluations logged to " << cfg_.optimization_log << "\n";

  // Print the first front, best power first (the paper prints "the best
  // individuals" after the last generation).
  Table table({"rank", backend->objective_names()[0],
               backend->objective_names().size() > 1 ? backend->objective_names()[1] : "-",
               "instruction groups"});
  int printed = 0;
  for (const auto& ind : population) {
    if (ind.rank != 0 || printed >= 10) continue;
    table.add_row({std::to_string(ind.rank), strings::format("%.2f", ind.objectives[0]),
                   ind.objectives.size() > 1 ? strings::format("%.3f", ind.objectives[1]) : "-",
                   tuning::GroupsProblem::to_groups(ind.genome).to_string()});
    ++printed;
  }
  table.print(out_);

  const auto& best = tuning::Nsga2::best_by_objective(population, 0);
  out_ << "selected optimum: " << tuning::GroupsProblem::to_groups(best.genome).to_string()
       << strings::format("  (%.2f %s)\n", best.objectives[0],
                          backend->objective_names()[0].c_str());
  return 0;
}

}  // namespace fs2::firestarter
