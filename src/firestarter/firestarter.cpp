#include "firestarter/firestarter.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include <sys/resource.h>
#include <unistd.h>

#include "arch/processor.hpp"
#include "arch/topology.hpp"
#include "cluster/agent.hpp"
#include "cluster/coordinator.hpp"
#include "control/controlled_profile.hpp"
#include "control/feedback_loop.hpp"
#include "control/setpoint.hpp"
#include "firestarter/backends.hpp"
#include "firestarter/sim_fleet.hpp"
#include "firestarter/sim_phases.hpp"
#include "fuzz/fuzzer.hpp"
#include "gpu/dgemm_stress.hpp"
#include "kernel/register_dump.hpp"
#include "jit/disassembler.hpp"
#include "kernel/selftest.hpp"
#include "kernel/thread_manager.hpp"
#include "kernel/watchdog.hpp"
#include "metrics/coretemp.hpp"
#include "metrics/external.hpp"
#include "metrics/ipc_estimate.hpp"
#include "metrics/measurement.hpp"
#include "metrics/perf_ipc.hpp"
#include "metrics/rapl.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sched/campaign.hpp"
#include "sched/load_profile.hpp"
#include "sched/trace_recorder.hpp"
#include "sim/plant.hpp"
#include "sim/sim_system.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/sinks.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/registry.hpp"
#include "trace/trace_event.hpp"
#include "trace/tracer.hpp"
#include "tuning/nsga2.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fs2::firestarter {

namespace {

constexpr const char* kVersion = "fs2 2.0.0 (FIRESTARTER 2 reproduction)";

const payload::FunctionDef& resolve_function(const Config& cfg, const Target& target) {
  if (cfg.function_id) return payload::find_function(*cfg.function_id);
  if (cfg.function_name) return payload::find_function(*cfg.function_name);
  return payload::select_function(target.cpu);
}

payload::InstructionGroups resolve_groups(const Config& cfg, const payload::FunctionDef& fn) {
  return payload::InstructionGroups::parse(
      cfg.instruction_groups ? *cfg.instruction_groups : fn.default_groups);
}

/// Per-phase workload resolution: a campaign phase's groups=/unroll= keys
/// outrank the CLI flags, which outrank the function's defaults.
payload::InstructionGroups resolve_phase_groups(const Config& cfg,
                                                const sched::CampaignPhase& spec,
                                                const payload::FunctionDef& fn) {
  if (spec.groups) return payload::InstructionGroups::parse(*spec.groups);
  return resolve_groups(cfg, fn);
}

payload::CompileOptions compile_options(const Config& cfg) {
  payload::CompileOptions options;
  if (cfg.line_count) options.unroll = *cfg.line_count;
  options.dump_registers = cfg.dump_registers;
  return options;
}

/// The run's load schedule: --load-profile spec, or the classic --load duty
/// cycle as a constant profile.
sched::ProfilePtr resolve_profile(const Config& cfg) {
  if (cfg.load_profile) return sched::parse_profile(*cfg.load_profile, cfg.load, cfg.period_s);
  return std::make_shared<sched::ConstantProfile>(cfg.load);
}

/// Worker CPU list for host runs: the topology's choice, trimmed to
/// --threads (or a campaign phase's threads= override) when set.
std::vector<int> resolve_worker_cpus(const Config& cfg,
                                     std::optional<int> threads_override = std::nullopt) {
  std::vector<int> cpus = arch::Topology::from_sysfs().worker_cpus(cfg.one_thread_per_core);
  const std::optional<int> threads = threads_override ? threads_override : cfg.threads;
  if (threads && *threads > 0 && static_cast<std::size_t>(*threads) < cpus.size())
    cpus.resize(static_cast<std::size_t>(*threads));
  return cpus;
}

/// The IPC estimate converts loop counts to instructions/cycle at this
/// assumed clock when the real frequency is unknown (Sec. III-C).
constexpr double kIpcEstimateAssumedMhz = 2000.0;

/// Metric set for a host stress run: RAPL power and perf IPC when available,
/// the loop-count IPC estimate always, plus the --metric-path /
/// --metric-command externals — shared by plain runs and campaign phases so
/// both report through the same sources. Readings go straight onto the
/// telemetry bus; nothing is retained here.
struct HostMetricSet {
  metrics::RaplPowerMetric rapl;
  metrics::PerfIpcMetric perf;
  std::unique_ptr<metrics::IpcEstimateMetric> estimate;
  std::unique_ptr<metrics::PluginMetric> plugin;
  std::unique_ptr<metrics::CommandMetric> command;
  std::vector<metrics::Metric*> active;          ///< metrics that responded as available
  std::vector<telemetry::ChannelId> channels;    ///< one per active metric, same order

  void register_channels(telemetry::TelemetryBus& bus) {
    channels.clear();
    for (metrics::Metric* metric : active)
      channels.push_back(bus.channel(metric->name(), metric->unit()));
  }
  void begin_all() {
    for (metrics::Metric* metric : active) metric->begin();
  }
  void sample_all(telemetry::TelemetryBus& bus, double elapsed_s) {
    for (std::size_t m = 0; m < active.size(); ++m)
      bus.publish(channels[m], elapsed_s, active[m]->sample());
  }
};

/// `skip_plugin` / `skip_command` suppress the --metric-path or
/// --metric-command instance when the control loop already owns exactly that
/// source — instantiating it twice would double-initialize plugin state or
/// double-spawn meter commands (the controller's readings still land in the
/// CSV as ctl-measurement). The source the loop did NOT take keeps its
/// measurement channel.
std::unique_ptr<HostMetricSet> build_host_metrics(const Config& cfg,
                                                  const kernel::ThreadManager& manager,
                                                  double instructions_per_iteration,
                                                  bool skip_plugin = false,
                                                  bool skip_command = false) {
  auto set = std::make_unique<HostMetricSet>();
  set->estimate = std::make_unique<metrics::IpcEstimateMetric>(
      [&manager] { return manager.total_iterations(); }, instructions_per_iteration,
      kIpcEstimateAssumedMhz, static_cast<int>(manager.num_workers()));
  if (cfg.metric_path && !skip_plugin)
    set->plugin = std::make_unique<metrics::PluginMetric>(*cfg.metric_path);
  if (cfg.metric_command && !skip_command)
    set->command = std::make_unique<metrics::CommandMetric>(*cfg.metric_command,
                                                            "external-command", "value");
  if (set->rapl.available()) set->active.push_back(&set->rapl);
  if (set->perf.available()) set->active.push_back(&set->perf);
  set->active.push_back(set->estimate.get());
  if (set->plugin && set->plugin->available()) set->active.push_back(set->plugin.get());
  if (set->command && set->command->available()) set->active.push_back(set->command.get());
  return set;
}

// ---- output files -----------------------------------------------------------

/// Open an output file (--record-trace, --control-log) up front — before
/// any stress runs — so a bad path fails in seconds, not after an
/// hour-long burn-in has produced the data it was meant to keep.
std::ofstream open_output_file(const std::string& path, const char* flag) {
  std::ofstream out(path);
  if (!out)
    throw Error(std::string(flag) + ": cannot open '" + path + "' for writing");
  return out;
}

// ---- tracing ----------------------------------------------------------------

/// Drain the process-wide tracer and registry into a single-node timeline
/// and write it as trace_event JSON — the --trace-out path for every
/// non-coordinator mode (coordinator runs export the merged fleet timeline
/// instead). Node "local" at offset 0: nothing to rebase in one process.
void export_local_trace(const std::string& path, std::ostream& out) {
  trace::TraceCollector collector;
  collector.add_node("local", 0.0);
  std::vector<trace::SpanEvent> events;
  trace::Tracer::drain(events);
  std::vector<trace::Span> spans;
  spans.reserve(events.size());
  for (const trace::SpanEvent& event : events)
    spans.push_back(trace::Span{event.name, event.begin_s, event.end_s});
  collector.add_spans("local", std::move(spans));
  collector.add_counters("local", trace::Registry::instance().snapshot());
  if (trace::Tracer::dropped() > 0)
    log::warn() << "trace ring overflowed: " << trace::Tracer::dropped()
                << " spans dropped (the timeline has gaps)";
  std::ofstream file = open_output_file(path, "--trace-out");
  collector.write_json(file);
  out << "trace written to " << path << " (" << collector.span_count()
      << " spans; load in Perfetto or chrome://tracing)\n";
}

/// Open --control-log with its header when the run actually has a
/// controller to log; otherwise warn and return a closed stream. One place
/// owns the schema so the run modes cannot drift apart.
std::ofstream open_control_log(const std::optional<std::string>& path, bool has_target,
                               const char* ignored_reason) {
  std::ofstream out;
  if (!path) return out;
  if (!has_target) {
    log::warn() << "--control-log is ignored" << ignored_reason;
    return out;
  }
  out = open_output_file(*path, "--control-log");
  out << "time_s,setpoint,measurement,error,level,phase\n";
  return out;
}

/// The sink set every run mode wires onto its bus: summary aggregation
/// (--measurement / campaign CSV), achieved-load trace recording
/// (--record-trace), and the per-tick controller log (--control-log).
/// Construction opens the output files immediately — fail fast — and
/// attaches only the sinks the flags asked for; everything the sinks keep
/// is bounded, so this is what makes run length and telemetry memory
/// independent of each other.
struct RunSinks {
  telemetry::SummarySink summary;
  sched::TraceRecorder trace;
  std::ofstream trace_out;
  std::unique_ptr<sched::TraceSink> trace_sink;
  std::ofstream control_log;
  std::unique_ptr<control::ControlLogSink> log_sink;

  RunSinks(telemetry::TelemetryBus& bus, const Config& cfg, bool want_summary,
           bool has_target, const char* control_log_ignored_reason) {
    if (want_summary) bus.attach(&summary);
    if (cfg.record_trace) {
      trace_out = open_output_file(*cfg.record_trace, "--record-trace");
      sched::TraceRecorder::write_header(trace_out);
      trace_sink = std::make_unique<sched::TraceSink>(kLoadChannel, &trace, &trace_out);
      bus.attach(trace_sink.get());
    }
    control_log = open_control_log(cfg.control_log, has_target, control_log_ignored_reason);
    if (control_log.is_open()) {
      log_sink = std::make_unique<control::ControlLogSink>(control_log);
      bus.attach(log_sink.get());
    }
  }

  /// Post-run notice for --record-trace (rows themselves stream as they
  /// happen so an interrupted run keeps its trace).
  void report_trace(const Config& cfg) {
    if (cfg.record_trace)
      log::info() << "achieved-load trace written to " << *cfg.record_trace;
  }
};

// ---- closed-loop control helpers --------------------------------------------

/// Actuator + sensor + regulator for a closed-loop phase on the real host.
struct HostControl {
  std::shared_ptr<control::ControlledProfile> profile;
  std::unique_ptr<metrics::Metric> sensor;
  std::unique_ptr<control::FeedbackLoop> loop;
  /// Which external source `sensor` is, if any — the measurement set must
  /// not instantiate that same source a second time (double plugin init,
  /// doubled meter-command spawns); the other one keeps its channel.
  bool owns_plugin = false;
  bool owns_command = false;
};

/// Wire a host feedback loop: pick the sensor for the regulated variable
/// (RAPL, else an external plugin/command for power; coretemp for
/// temperature) and start from mid-scale — on an unknown SKU there is no
/// feed-forward model, the integrator finds the level.
HostControl make_host_control(const Config& cfg, const control::Setpoint& sp) {
  HostControl hc;
  if (sp.variable == control::ControlVariable::kPower) {
    // An explicitly requested external meter outranks the implicit RAPL
    // default: a user passing --metric-path/--metric-command wants the loop
    // to regulate *that* reading (e.g. wall power, which differs from RAPL
    // package watts by PSU and fan losses). RAPL is the fallback.
    if (cfg.metric_path) {
      if (auto plugin = std::make_unique<metrics::PluginMetric>(*cfg.metric_path);
          plugin->available()) {
        hc.sensor = std::move(plugin);
        hc.owns_plugin = true;
      } else {
        log::warn() << "--metric-path sensor is unavailable; --target power falls "
                       "back to the next source (which regulates a different reading)";
      }
    }
    if (!hc.sensor && cfg.metric_command) {
      if (auto command = std::make_unique<metrics::CommandMetric>(
              *cfg.metric_command, "external-power", "W");
          command->available()) {
        hc.sensor = std::move(command);
        hc.owns_command = true;
      } else {
        log::warn() << "--metric-command sensor is unavailable; --target power falls "
                       "back to the next source (which regulates a different reading)";
      }
    }
    if (!hc.sensor) {
      if (auto rapl = std::make_unique<metrics::RaplPowerMetric>(); rapl->available())
        hc.sensor = std::move(rapl);
    }
    if (!hc.sensor)
      throw UnsupportedError(
          "--target power needs a power sensor: no RAPL package domain in sysfs and no "
          "working --metric-path/--metric-command fallback");
  } else {
    auto coretemp = std::make_unique<metrics::CoretempMetric>();
    if (!coretemp->available())
      throw UnsupportedError(
          "--target temp needs a temperature sensor: no coretemp/k10temp hwmon chip");
    hc.sensor = std::move(coretemp);
  }
  hc.profile = std::make_shared<control::ControlledProfile>(0.5);
  hc.loop = std::make_unique<control::FeedbackLoop>(
      sp, hc.profile, sp.scale.value_or(0.0), /*initial_level=*/0.5);
  return hc;
}

// ---- host phases ------------------------------------------------------------

/// What a host phase leaves behind beyond the bus traffic: the feedback
/// loop (convergence verdicts) and the actual wall-clock length.
struct HostPhaseOutput {
  std::unique_ptr<control::FeedbackLoop> loop;
  /// Wall-clock phase length — slightly over the nominal duration (the
  /// sampling loop quantizes at 50 ms); campaign time advances by this so
  /// cross-phase timestamps stay monotonic.
  double elapsed_s = 0.0;
};

/// Execute one campaign phase on the real machine: compile the phase's
/// workload, stress for `duration_s` — under its profile, or under the
/// feedback loop when `setpoint` is set — and publish every metric sample,
/// controller tick, and achieved load level on the bus (the caller's
/// begin_phase/end_phase bracket attributes them to the phase).
HostPhaseOutput run_host_phase(const Config& cfg, const Target& target,
                               const payload::FunctionDef& fn,
                               const payload::InstructionGroups& groups,
                               sched::ProfilePtr profile, const control::Setpoint* setpoint,
                               std::optional<int> threads_override, double duration_s,
                               telemetry::TelemetryBus& bus,
                               gpu::DgemmStressor* gpu_stress,
                               cluster::AgentSession* session = nullptr) {
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name + " (needs " +
                           fn.mix.required.to_string() + ")");
  auto payload = payload::compile_payload(fn.mix, groups, target.caches, compile_options(cfg));

  HostPhaseOutput output;
  HostControl hc;
  if (setpoint != nullptr) {
    setpoint->validate_duration(duration_s, "closed-loop phase");
    hc = make_host_control(cfg, *setpoint);
    profile = hc.profile;
    output.loop = std::move(hc.loop);
  }

  kernel::RunOptions options;
  options.cpus = resolve_worker_cpus(cfg, threads_override);
  options.policy = policy_of(cfg);
  options.seed = cfg.seed;
  options.load = cfg.load;
  options.period_s = cfg.period_s;
  options.profile = profile;
  options.phase_offset_s = cfg.phase_offset_s;
  // Cluster runs duty-cycle against the fleet-wide epoch so modulation
  // windows align across machines, not just across this node's workers.
  if (session != nullptr) options.epoch = session->epoch_time();
  kernel::ThreadManager manager(payload, options);

  auto metrics_set = build_host_metrics(cfg, manager, payload.stats().instructions_per_iteration,
                                        hc.owns_plugin, hc.owns_command);
  // Row order per phase: the metric channels, the ctl-* channels, then the
  // achieved load level — matching the measurement CSV layout.
  metrics_set->register_channels(bus);
  if (output.loop) output.loop->attach_bus(&bus);
  const telemetry::ChannelId load_ch = bus.channel(kLoadChannel, "fraction");

  // The GPU stand-in backdrop follows this phase's schedule too (for
  // controlled phases that is the live controller profile).
  if (gpu_stress != nullptr) gpu_stress->set_profile(profile);

  kernel::Watchdog watchdog;
  std::atomic<bool> done{false};
  watchdog.arm(std::chrono::duration<double>(duration_s), [&done] { done.store(true); });
  manager.start();
  metrics_set->begin_all();
  if (hc.sensor) hc.sensor->begin();
  const auto t0 = std::chrono::steady_clock::now();
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    metrics_set->sample_all(bus, elapsed);
    if (output.loop && output.loop->due(elapsed)) output.loop->poll(elapsed, *hc.sensor);
    if (session != nullptr && output.loop && session->budget_due(elapsed))
      session->budget_exchange(elapsed, *output.loop);
    if (session != nullptr && session->metrics_due()) session->ship_metrics();
    bus.publish(load_ch, elapsed, manager.load_at(elapsed));
    output.elapsed_s = elapsed;
  }
  manager.stop();
  return output;
}

}  // namespace

Firestarter::Firestarter(Config config, std::ostream& out) : cfg_(std::move(config)), out_(out) {}

int Firestarter::run() {
  log::set_level(log::parse_level(cfg_.log_level));
  // Arm the crash flight recorder before anything can fail: from here on
  // SIGTERM/SIGINT (and any explicit dump) rewrite the black box to disk.
  if (cfg_.flight_out) trace::FlightRecorder::instance().configure(*cfg_.flight_out);
  if (cfg_.show_help) {
    out_ << usage();
    return 0;
  }
  if (cfg_.show_version) {
    out_ << kVersion << "\n";
    return 0;
  }
  if (cfg_.list_functions) return list_functions();
  if (cfg_.list_metrics) return list_metrics();
  if (cfg_.status_endpoint) return run_status();
  // Before the fuzz/local checks: --loopback implies --coordinator, and a
  // fuzz run owns the fleet (it runs one cluster campaign per batch). The
  // coordinator exports the merged, clock-rebased fleet timeline itself;
  // every other mode gets the single-process --trace-out below.
  if (cfg_.coordinator && !cfg_.fuzz) return run_coordinator();
  if (cfg_.trace_out) trace::Tracer::set_enabled(true);
  const int rc = [&] {
    if (cfg_.fuzz) return run_fuzzer();
    if (cfg_.agent_endpoint) return run_agent();
    if (cfg_.target_spec &&
        control::Setpoint::parse(*cfg_.target_spec).variable ==
            control::ControlVariable::kClusterPower)
      throw ConfigError(
          "--target cluster-power only applies to --coordinator runs (single "
          "nodes hold power=/temp= setpoints)");
    if (cfg_.optimize) return run_optimization();
    if (cfg_.dump_asm) return run_dump_asm();
    if (cfg_.selftest) return run_selftest_mode();
    if (cfg_.campaign_file) return run_campaign();
    if (cfg_.target != TargetSystem::kHost) return run_stress_simulated();
    return run_stress_host();
  }();
  if (cfg_.trace_out) export_local_trace(*cfg_.trace_out, out_);
  return rc;
}

int Firestarter::list_functions() {
  Table table({"id", "name", "isa", "tuned for", "default instruction groups"});
  for (const payload::FunctionDef& fn : payload::available_functions()) {
    std::string tuned;
    for (arch::Microarch arch : fn.tuned_for) {
      if (!tuned.empty()) tuned += ", ";
      tuned += arch::to_string(arch);
    }
    table.add_row({std::to_string(fn.id), fn.name, payload::to_string(fn.mix.isa),
                   tuned.empty() ? "(generic)" : tuned, fn.default_groups});
  }
  table.print(out_);
  return 0;
}

int Firestarter::list_metrics() {
  Table table({"metric", "unit", "available", "notes"});
  metrics::RaplPowerMetric rapl;
  table.add_row({rapl.name(), rapl.unit(), rapl.available() ? "yes" : "no",
                 "Intel RAPL package counters via powercap sysfs"});
  metrics::PerfIpcMetric perf;
  table.add_row({perf.name(), perf.unit(), perf.available() ? "yes" : "no",
                 "perf_event_open hardware counters"});
  metrics::CoretempMetric coretemp;
  table.add_row({coretemp.name(), coretemp.unit(), coretemp.available() ? "yes" : "no",
                 "hottest coretemp/k10temp hwmon sensor (--target temp feedback)"});
  table.add_row({"ipc-estimate", "instructions/cycle", "yes",
                 "loop count x instructions/loop at assumed frequency"});
  if (cfg_.metric_path) {
    metrics::PluginMetric plugin(*cfg_.metric_path);
    table.add_row({plugin.name(), plugin.unit(), plugin.available() ? "yes" : "no",
                   "external plugin " + *cfg_.metric_path});
  }
  table.add_row({"sim-wall-power", "W", "yes", "with --simulate targets"});
  table.add_row({"sim-perf-ipc", "instructions/cycle", "yes", "with --simulate targets"});
  table.print(out_);
  return 0;
}

int Firestarter::run_stress_simulated() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  const auto groups = resolve_groups(cfg_, fn);
  const auto stats = payload::analyze_payload(fn.mix, groups, target.caches,
                                              compile_options(cfg_));

  sim::SimulatedSystem system(target.sim_config);
  const double duration = cfg_.timeout_s > 0 ? cfg_.timeout_s : 240.0;

  telemetry::TelemetryBus bus;
  RunSinks sinks(bus, cfg_, cfg_.measurement, cfg_.target_spec.has_value(),
                 " without --target (no controller ticks to log)");

  out_ << "target: " << target.sim_config.name << "\n"
       << "function: " << fn.name << "  M=" << groups.to_string()
       << "  u=" << stats.unroll << " (" << stats.loop_bytes << " B loop)\n";

  if (cfg_.target_spec) {
    // Closed-loop run against the virtual-time plant.
    if (cfg_.load_profile)
      log::warn() << "--load-profile is ignored under --target (the controller owns "
                     "the duty cycle)";
    const control::Setpoint sp = control::Setpoint::parse(*cfg_.target_spec);
    out_ << "control: " << sp.describe() << "\n";
    const SimChannels ch = register_sim_channels(bus, /*with_temp=*/true,
                                                 /*trimmed_aux=*/true,
                                                 /*summarize_load=*/true);
    const TrimDeltas deltas = phase_deltas(cfg_, duration);
    bus.begin_phase("", duration, deltas.start_s, deltas.stop_s);
    const ControlledSimPhase phase =
        run_sim_controlled_phase(system, cfg_, stats, sp, duration, cfg_.seed,
                                 /*warm_start_s=*/0.0, target.gpu_stress,
                                 std::nullopt, std::nullopt, std::nullopt, bus, ch);
    bus.finish();
    system.set_point(phase.point);
    const bool converged = report_convergence(*phase.loop, duration, "controller");
    const double window = convergence_window_s(*phase.loop, duration);
    out_ << strings::format(
        "closed loop: %.1f %s achieved (setpoint %g), level %.0f %%, %s\n",
        phase.loop->trailing_mean(window), control::unit_of(sp.variable), sp.value,
        phase.profile->level() * 100.0, converged ? "converged" : "NOT converged");

    if (cfg_.measurement) metrics::print_csv(out_, sinks.summary.rows());
    sinks.report_trace(cfg_);
    return cfg_.require_convergence && !converged ? 1 : 0;
  }

  if (cfg_.require_convergence)
    log::warn() << "--require-convergence is ignored without --target "
                   "(nothing is regulated)";
  const sched::ProfilePtr profile = resolve_profile(cfg_);
  // The single-run mode reports IPC and load untrimmed (they are exact in
  // virtual time; only the power trace has a warm-up to trim).
  const SimChannels ch = register_sim_channels(bus, /*with_temp=*/false,
                                               /*trimmed_aux=*/false,
                                               /*summarize_load=*/!profile->constant());
  bus.begin_phase("", duration, cfg_.start_delta_s, cfg_.stop_delta_s);
  const SimPhaseResult result = run_sim_phase(system, cfg_, stats, *profile, duration,
                                              cfg_.seed, /*warm_start_s=*/0.0,
                                              target.gpu_stress, bus, ch);
  bus.finish();
  system.set_point(result.point);

  if (!profile->constant()) out_ << "load profile: " << profile->describe() << "\n";
  const sim::WorkloadPoint& point = result.point;
  out_ << strings::format(
      "steady state: %.1f W, %.2f IPC/core, %.0f MHz%s, %.1f GFLOP/s, fetch from %s\n",
      point.power_w, point.ipc_per_core, point.achieved_mhz,
      point.throttled ? " (throttled)" : "", point.gflops, sim::to_string(point.fetch_source));

  if (cfg_.measurement) metrics::print_csv(out_, sinks.summary.rows());
  sinks.report_trace(cfg_);
  return 0;
}

int Firestarter::run_campaign(cluster::AgentSession* session) {
  const bool budget_mode = session != nullptr && session->has_budget();
  const sched::Campaign campaign = [&] {
    if (session == nullptr) return sched::Campaign::load(*cfg_.campaign_file);
    std::istringstream in(session->campaign().campaign_text);
    return sched::Campaign::parse(in, "(from coordinator)");
  }();
  const Target target = resolve_target(cfg_);
  if (cfg_.load_profile)
    log::warn() << "--load-profile is ignored under --campaign (phases define their "
                   "own profiles)";
  if (cfg_.target_spec)
    log::warn() << "--target is ignored under --campaign (phases define their own "
                   "target= setpoints)";
  if (budget_mode)
    log::info() << "cluster budget mode: every phase runs closed-loop against the "
                   "coordinator's apportioned power share (phase profile=/target= "
                   "keys are overridden)";

  // Resolve every phase up front — functions (typos, host feature coverage),
  // profiles (including trace-file reads), and setpoints — so a campaign
  // fails before phase 1 starts stressing, never hours in. The cached
  // profiles also mean trace CSVs are read once, not re-opened per phase.
  struct ResolvedPhase {
    const payload::FunctionDef* fn;
    sched::ProfilePtr profile;
    std::optional<control::Setpoint> setpoint;
  };
  std::vector<ResolvedPhase> resolved;
  resolved.reserve(campaign.size());
  std::set<control::ControlVariable> probed;  // one sensor probe per variable
  for (const sched::CampaignPhase& spec : campaign.phases()) {
    const payload::FunctionDef& fn = spec.function ? payload::find_function(*spec.function)
                                                   : resolve_function(cfg_, target);
    if (!target.simulated && !target.cpu.features.covers(fn.mix.required))
      throw UnsupportedError("campaign phase '" + spec.name +
                             "': host CPU lacks features for " + fn.name + " (needs " +
                             fn.mix.required.to_string() + ")");
    if (!target.simulated && spec.freq_mhz)
      log::warn() << "campaign phase '" << spec.name
                  << "': freq= only applies to --simulate targets (ignored on host)";
    if (!target.simulated && spec.measure_temp)
      log::warn() << "campaign phase '" << spec.name
                  << "': measure=temp only applies to --simulate targets (host "
                     "temperature comes from coretemp under target=temp)";
    ResolvedPhase phase{&fn,
                        sched::parse_profile(spec.profile_spec, cfg_.load, cfg_.period_s),
                        std::nullopt};
    if (budget_mode) {
      // The coordinator owns every phase's duty cycle: regulate this
      // node's apportioned power share. The setpoint VALUE is re-read at
      // each phase start (assignments move it); resolve only validates
      // feasibility.
      if (spec.profile_explicit || spec.target_spec)
        log::warn() << "campaign phase '" << spec.name
                    << "': profile=/target= overridden by the cluster power budget";
      control::Setpoint sp;
      sp.variable = control::ControlVariable::kPower;
      sp.value = session->current_setpoint_w();
      sp.interval_s = session->campaign().ctl_interval_s;
      sp.band = session->campaign().budget_band;
      sp.validate_duration(spec.duration_s, "campaign phase '" + spec.name + "'");
      phase.setpoint = sp;
      if (!target.simulated && probed.insert(sp.variable).second) {
        try {
          make_host_control(cfg_, sp);
        } catch (const Error& e) {
          throw UnsupportedError("campaign phase '" + spec.name + "': " + e.what());
        }
      }
      resolved.push_back(std::move(phase));
      continue;
    }
    if (spec.target_spec) {
      if (spec.profile_explicit)
        log::warn() << "campaign phase '" << spec.name
                    << "': profile= is ignored under target= (the controller owns "
                       "the duty cycle)";
      try {
        phase.setpoint = control::Setpoint::parse(*spec.target_spec);
      } catch (const Error& e) {
        throw ConfigError("campaign phase '" + spec.name + "': " + e.what());
      }
      phase.setpoint->validate_duration(spec.duration_s,
                                        "campaign phase '" + spec.name + "'");
      // Probe sensor availability now, not when the phase starts: a host
      // campaign with a power/temp target and no matching sensor must fail
      // before phase 1 begins stressing, never hours in. Once per variable —
      // plugin init/fini can have side effects worth not repeating.
      if (!target.simulated && probed.insert(phase.setpoint->variable).second) {
        try {
          make_host_control(cfg_, *phase.setpoint);
        } catch (const Error& e) {
          throw UnsupportedError("campaign phase '" + spec.name + "': " + e.what());
        }
      }
    }
    resolved.push_back(std::move(phase));
  }

  out_ << "campaign: " << campaign.size() << " phases, "
       << strings::format("%.0f s total", campaign.total_duration_s()) << " on "
       << (target.simulated ? target.sim_config.name : "host") << "\n";

  // The GPU stand-in runs for the whole campaign; each phase retargets it
  // onto its own schedule (run_host_phase swaps the profile in).
  std::unique_ptr<gpu::DgemmStressor> gpu_stress;
  if (!target.simulated && cfg_.gpus > 0) {
    gpu::GpuStressOptions gpu_options;
    gpu_options.devices = cfg_.gpus;
    gpu_options.matrix_n = cfg_.gpu_matrix_n;
    gpu_options.seed = cfg_.seed;
    gpu_stress = std::make_unique<gpu::DgemmStressor>(gpu_options);
    gpu_stress->start();
  }

  bool any_target = false;
  for (const ResolvedPhase& phase : resolved) any_target |= phase.setpoint.has_value();
  bool any_temp = false;
  for (const sched::CampaignPhase& spec : campaign.phases()) any_temp |= spec.measure_temp;
  if (cfg_.require_convergence && !any_target)
    log::warn() << "--require-convergence is ignored: no campaign phase has a "
                   "target= setpoint";

  telemetry::TelemetryBus bus;
  // Agents stream raw samples to the coordinator (which owns the merged
  // summary) instead of aggregating locally.
  RunSinks sinks(bus, cfg_, /*want_summary=*/session == nullptr, any_target,
                 ": no campaign phase has a target= setpoint");
  if (session != nullptr) bus.attach(&session->sink());

  sim::SimulatedSystem system(target.sim_config);
  SimChannels sim_channels;
  if (target.simulated)
    sim_channels = register_sim_channels(bus, /*with_temp=*/any_target || any_temp,
                                         /*trimmed_aux=*/true, /*summarize_load=*/true);

  // Cluster runs hold the whole fleet at the shared epoch before phase 1.
  if (session != nullptr) session->wait_for_start();

  bool all_converged = true;
  // Thermal state carried between controlled sim phases so back-to-back
  // holds heat continuously instead of each phase snapping back to the
  // idle-settled temperature. (Open-loop phases advance the carry through a
  // first-order settle toward their mean-power steady state.)
  std::optional<double> carry_temp_c;
  // Fully completed phases — the credential a rejoin presents so the
  // coordinator can credit them instead of re-running the whole campaign.
  std::uint32_t phases_done = 0;
  std::size_t phase_index = 0;
  while (phase_index < campaign.size()) {
    const sched::CampaignPhase& spec = campaign.phases()[phase_index];
    const ResolvedPhase& res = resolved[phase_index];
    try {
      const payload::FunctionDef& fn = *res.fn;
      const auto groups = resolve_phase_groups(cfg_, spec, fn);

      // Fleet barrier: phases after the first wait for the coordinator's
      // phase-go (sent once every node finished the previous phase), so
      // transitions stay in lockstep even when nodes run at different wall
      // speeds. The budget setpoint is re-read AFTER the barrier so the
      // phase starts from the latest apportionment.
      std::optional<control::Setpoint> active_sp = res.setpoint;
      if (session != nullptr) {
        session->begin_phase(static_cast<std::uint32_t>(phase_index));
        if (budget_mode) active_sp->value = session->current_setpoint_w();
      }

      out_ << strings::format("phase %zu '%s': %s for %.0f s (%s)\n", phase_index + 1,
                              spec.name.c_str(), fn.name.c_str(), spec.duration_s,
                              active_sp ? active_sp->describe().c_str()
                                        : res.profile->describe().c_str());

      const TrimDeltas deltas = phase_deltas(cfg_, spec.duration_s);
      // Fleet trace: bracket the phase in local wall time (sim phases run in
      // virtual time, but their wall extent is what aligns across nodes).
      const double phase_span_begin_s = trace::now_s();
      bus.begin_phase(spec.name, spec.duration_s, deltas.start_s, deltas.stop_s);
      // Campaign time of this phase's start — also the virtual preheat the
      // simulator's thermal/leakage models have accumulated.
      const double campaign_time_s = bus.phase().time_offset_s;

      if (target.simulated) {
        payload::CompileOptions options = compile_options(cfg_);
        if (spec.unroll) options.unroll = *spec.unroll;
        const auto stats = payload::analyze_payload(fn.mix, groups, target.caches, options);
        if (active_sp) {
          const ControlledSimPhase phase = run_sim_controlled_phase(
              system, cfg_, stats, *active_sp, spec.duration_s, cfg_.seed + phase_index,
              campaign_time_s, target.gpu_stress, spec.freq_mhz, spec.threads,
              carry_temp_c, bus, sim_channels, session);
          carry_temp_c = phase.final_temp_c;
          all_converged &=
              report_convergence(*phase.loop, spec.duration_s, "phase '" + spec.name + "'");
        } else {
          Config phase_cfg = cfg_;
          if (spec.freq_mhz) phase_cfg.sim_freq_mhz = *spec.freq_mhz;
          if (spec.threads) phase_cfg.threads = *spec.threads;
          const SimPhaseResult result =
              run_sim_phase(system, phase_cfg, stats, *res.profile, spec.duration_s,
                            cfg_.seed + phase_index, campaign_time_s, target.gpu_stress,
                            bus, sim_channels, carry_temp_c);
          // Advance the thermal carry through this open-loop phase too — the
          // exact integrated temperature when the phase published the temp
          // channel, otherwise a first-order settle toward the phase's
          // mean-power steady state — so a later temp-target phase doesn't
          // inherit a stale (or idle-cold) package after e.g. 300 s of load.
          if (result.final_temp_c) {
            carry_temp_c = result.final_temp_c;
          } else if (result.samples > 0) {
            carry_temp_c = advance_thermal_carry(system, spec.duration_s,
                                                 result.mean_power_w, carry_temp_c);
          }
        }
        bus.end_phase();
      } else {
        const HostPhaseOutput output = run_host_phase(
            cfg_, target, fn, groups, res.profile,
            active_sp ? &*active_sp : nullptr, spec.threads, spec.duration_s, bus,
            gpu_stress.get(), session);
        if (output.loop)
          all_converged &= report_convergence(*output.loop, spec.duration_s,
                                              "phase '" + spec.name + "'");
        // Advance by the *actual* phase length: the 50 ms sampling loop
        // overruns the nominal duration slightly, and a nominal offset would
        // make the next phase's first timestamps non-monotonic (the trace
        // recorder would silently drop them).
        bus.end_phase(output.elapsed_s);
      }
      if (session != nullptr)
        session->add_span("phase:" + spec.name, phase_span_begin_s, trace::now_s());
      // Open-loop sim phases run in virtual time with no inner wall loop;
      // the phase edge is their shipping point.
      if (session != nullptr && session->metrics_due()) session->ship_metrics();
      ++phase_index;
      phases_done = static_cast<std::uint32_t>(phase_index);
    } catch (const cluster::WireError& e) {
      if (session == nullptr) throw;
      // Lost the coordinator link mid-campaign: mute the sink while the
      // half-run phase is closed locally (its partial telemetry and the
      // implicit end bracket must not hit the wire), rejoin with backoff,
      // then resume at the coordinator-assigned phase.
      log::warn() << "cluster link lost during phase " << phase_index + 1 << ": "
                  << e.what() << " — rejoining";
      session->sink().mute(true);
      if (bus.in_phase()) bus.end_phase();
      const std::uint32_t resume = session->rejoin(phases_done);
      session->sink().rewind_phase(resume);
      session->sink().mute(false);
      trace::FlightRecorder::instance().note_event(
          strings::format("rejoined; resuming at phase %u", resume));
      phase_index = resume;
      phases_done = resume;
    }
  }

  if (gpu_stress) {
    gpu_stress->stop();
    out_ << strings::format("gpu stand-in: %llu DGEMMs (%.1f GFLOP total)\n",
                            static_cast<unsigned long long>(gpu_stress->total_gemms()),
                            gpu_stress->total_flops() / 1e9);
  }
  bus.finish();
  sinks.report_trace(cfg_);
  if (session != nullptr) {
    // The coordinator owns the merged CSV and the fleet verdict; the agent
    // reports its own convergence and waits for the shutdown.
    session->finish(all_converged,
                    strings::format("%zu phases on %s", campaign.size(),
                                    target.simulated ? target.sim_config.name.c_str()
                                                     : "host"));
    return 0;
  }
  metrics::print_csv(out_, sinks.summary.rows());
  if (cfg_.require_convergence && !all_converged) {
    log::error() << "campaign failed --require-convergence";
    return 1;
  }
  return 0;
}

int Firestarter::run_coordinator() {
  if (!cfg_.campaign_file)
    throw ConfigError(
        "--coordinator requires --campaign FILE (the campaign is distributed to "
        "every agent)");
  // Keep the raw text for distribution; parse a copy locally so a malformed
  // campaign fails here, before any agent is accepted.
  std::ifstream in(*cfg_.campaign_file);
  if (!in) throw ConfigError("campaign: cannot open '" + *cfg_.campaign_file + "'");
  std::ostringstream raw;
  raw << in.rdbuf();
  std::istringstream parse_stream(raw.str());
  const sched::Campaign campaign =
      sched::Campaign::parse(parse_stream, "'" + *cfg_.campaign_file + "'");

  std::optional<control::Setpoint> budget;
  if (cfg_.target_spec) {
    control::Setpoint sp = control::Setpoint::parse(*cfg_.target_spec);
    if (sp.variable != control::ControlVariable::kClusterPower)
      throw ConfigError(
          "--coordinator: --target must be cluster-power=WATTS (per-node power=/"
          "temp= setpoints belong in campaign phases)");
    budget = sp;
  }

  std::vector<LoopbackSpec> loopback;
  if (cfg_.loopback_nodes) loopback = parse_loopback_specs(*cfg_.loopback_nodes);
  const std::size_t nodes = !loopback.empty()
                                ? loopback.size()
                                : (cfg_.cluster_nodes ? static_cast<std::size_t>(
                                                            *cfg_.cluster_nodes)
                                                      : 0);
  if (nodes == 0) throw ConfigError("--coordinator requires --nodes N or --loopback SPECS");
  if (!loopback.empty() && cfg_.cluster_nodes &&
      static_cast<std::size_t>(*cfg_.cluster_nodes) != loopback.size())
    log::warn() << "--nodes is ignored under --loopback (fleet size comes from the "
                   "spec list)";

  // The chaos plan parses before anything binds, and its canonical spec is
  // recorded in the flight dump — a failing chaos run replays bit-for-bit
  // from `--chaos "<recorded spec>"`.
  std::optional<cluster::FaultPlan> chaos;
  if (cfg_.chaos_spec) {
    chaos = cluster::FaultPlan::parse(*cfg_.chaos_spec);
    if (loopback.empty())
      log::warn() << "--chaos drives loopback agents; real remote agents only "
                     "see its effects indirectly (lost links, held barriers)";
    out_ << "chaos: " << chaos->describe() << "\n";
    trace::FlightRecorder::instance().note_event("chaos plan: " + chaos->describe());
  }

  cluster::Coordinator::Options options;
  // Loopback fleets default to an ephemeral port: the agents learn it
  // in-process, and CI runs cannot collide on a fixed one. An explicit
  // --listen overrides that so /metrics scrapers know where to look.
  options.port = loopback.empty() || cfg_.listen_port_explicit ? cfg_.listen_port : 0;
  options.loopback_only = !loopback.empty();
  options.nodes = nodes;
  options.campaign_text = raw.str();
  options.phase_count = campaign.size();
  options.budget = budget;
  options.start_delay_s = cfg_.cluster_start_delay_s;
  options.sync_tolerance_s = cfg_.sync_tolerance_s;
  options.seed = cfg_.seed;
  options.trace = cfg_.trace_out.has_value();
  options.metrics_interval_s = cfg_.metrics_interval_s;
  options.rejoin_grace_s = cfg_.rejoin_grace_s;
  if (budget) {
    // Fail before accepting anyone: every phase must fit the controller
    // tick and the budget cadence the agents will run.
    control::Setpoint probe = *budget;
    probe.interval_s = std::max(options.ctl_interval_s, budget->interval_s);
    for (const sched::CampaignPhase& phase : campaign.phases())
      probe.validate_duration(phase.duration_s, "campaign phase '" + phase.name + "'");
  }
  // Big fleets need an fd per agent on each side of every loopback socket;
  // raise the soft limit toward the hard cap before binding anything.
  if (!loopback.empty()) raise_fd_limit(4 * loopback.size() + 64);

  auto coordinator = std::make_unique<cluster::Coordinator>(options);

  out_ << "coordinator: port " << coordinator->port() << ", " << nodes << " nodes, "
       << campaign.size() << " phases";
  if (budget) out_ << ", " << budget->describe();
  out_ << "\n";

  // In-process loopback agents: one event-loop thread drives the whole
  // fleet of cooperative sim agents over real localhost TCP — the entire
  // protocol exercised inside one deterministic process, at fleet sizes a
  // thread per agent could never reach.
  std::unique_ptr<SimFleet> fleet;
  std::string fleet_error;
  std::thread fleet_thread;
  if (!loopback.empty()) {
    const std::uint16_t port = coordinator->port();
    fleet_thread = std::thread([&, port] {
      try {
        fleet = std::make_unique<SimFleet>(cfg_, loopback, port,
                                           chaos ? &*chaos : nullptr);
        fleet->run();
      } catch (const std::exception& e) {
        fleet_error = e.what();
      }
    });
  }

  cluster::Coordinator::Result result;
  std::string failure;
  try {
    result = coordinator->run(out_);
  } catch (const std::exception& e) {
    failure = e.what();
    // Destroying the coordinator closes every connection, which errors the
    // loopback agents out of their waits — join cannot hang.
    coordinator.reset();
  }
  if (fleet_thread.joinable()) fleet_thread.join();
  if (!fleet_error.empty())
    out_ << "loopback fleet failed to start: " << fleet_error << "\n";
  if (!failure.empty()) throw Error("cluster run failed: " + failure);

  cluster::ClusterBus::write_csv(out_, result.rows);
  if (cfg_.trace_out) {
    std::ofstream trace_file = open_output_file(*cfg_.trace_out, "--trace-out");
    result.trace.write_json(trace_file);
    out_ << "fleet trace written to " << *cfg_.trace_out << " ("
         << result.trace.span_count()
         << " spans, clock-rebased onto the coordinator; load in Perfetto or "
            "chrome://tracing)\n";
  }
  bool agents_ok = fleet_error.empty();
  if (fleet) {
    std::size_t reported = 0;
    for (const SimFleet::Outcome& outcome : fleet->outcomes())
      if (!outcome.ok) {
        agents_ok = false;
        // A fleet-wide failure is usually one cause repeated 512 times;
        // show the first few, count the rest.
        if (reported++ < 5)
          log::error() << "loopback agent " << outcome.name << ": " << outcome.error;
      }
    if (reported > 5)
      log::error() << "... and " << (reported - 5) << " more loopback agent failures";
  }
  if (!agents_ok) return 1;
  if (cfg_.require_convergence && !result.converged()) {
    log::error() << "cluster run failed --require-convergence ("
                 << (result.nodes_converged ? "" : "node setpoints; ")
                 << (result.budget_converged ? "" : "global budget; ")
                 << (result.sync_ok ? "" : "phase lockstep") << ")";
    return 1;
  }
  return 0;
}

int Firestarter::run_agent() {
  if (cfg_.campaign_file)
    log::warn() << "--campaign is ignored under --agent (the coordinator "
                   "distributes the campaign)";
  if (cfg_.target_spec)
    log::warn() << "--target is ignored under --agent (setpoints come from the "
                   "campaign or the coordinator's budget)";
  cluster::AgentSession::Options options;
  options.endpoint = *cfg_.agent_endpoint;
  std::string sku = to_string(cfg_.target);
  if (cfg_.target != TargetSystem::kHost && cfg_.sim_freq_mhz > 0.0)
    sku += strings::format("@%.0fMHz", cfg_.sim_freq_mhz);
  options.sku = sku;
  options.node_name =
      cfg_.node_name ? *cfg_.node_name
                     : strings::format("%s-%d", sku.c_str(), static_cast<int>(::getpid()));
  cluster::AgentSession session(options);
  trace::FlightRecorder::instance().note_event("agent " + options.node_name +
                                               " joined " + options.endpoint);
  try {
    return run_campaign(&session);
  } catch (const std::exception& e) {
    // Abnormal exit: ship the black box to the coordinator (best effort)
    // and write the local dump before the error unwinds the process.
    session.ship_flight_record(e.what());
    trace::FlightRecorder::instance().dump(std::string("agent failed: ") + e.what());
    throw;
  }
}

int Firestarter::run_status() {
  cluster::Connection conn = cluster::Connection::connect(*cfg_.status_endpoint,
                                                          /*retry_for_s=*/5.0);
  conn.send(cluster::StatusRequestMsg{}.encode());
  const std::optional<cluster::Frame> frame = conn.recv(/*timeout_s=*/5.0);
  if (!frame)
    throw Error("--status: no reply from " + *cfg_.status_endpoint +
                " within 5 s (is a coordinator listening there?)");
  if (frame->type != cluster::MessageType::kStatusReply)
    throw Error(std::string("--status: unexpected reply frame '") +
                cluster::to_string(frame->type) + "'");
  cluster::WireReader reader(frame->payload);
  const cluster::StatusReplyMsg status = cluster::StatusReplyMsg::decode(reader);

  out_ << "coordinator " << *cfg_.status_endpoint << ": "
       << (status.accepting ? "accepting agents" : "campaign running") << ", "
       << status.nodes.size() << "/" << status.nodes_expected << " nodes, "
       << status.phase_count << " phases, " << status.queued_samples
       << " samples queued";
  if (status.budget_w > 0.0) out_ << strings::format(", budget %.0f W", status.budget_w);
  out_ << "\n";

  if (!status.nodes.empty()) {
    double total_achieved = 0.0, total_setpoint = 0.0;
    Table table({"node", "sku", "state", "phase", "rejoins", "offset ms", "rtt ms",
                 "setpoint W", "achieved W", "level %", "metrics age"});
    for (const cluster::StatusNodeRec& node : status.nodes) {
      total_achieved += node.achieved_w;
      total_setpoint += node.setpoint_w;
      table.add_row(
          {node.name, node.sku,
           node.lost != 0 ? "lost" : (node.connected ? "connected" : "gone"),
           strings::format("%u/%u", node.phases_ended, status.phase_count),
           node.rejoins > 0 ? std::to_string(node.rejoins) : "-",
           strings::format("%+.2f", node.clock_offset_s * 1e3),
           strings::format("%.2f", node.clock_rtt_s * 1e3),
           node.setpoint_w > 0.0 ? strings::format("%.1f", node.setpoint_w) : "-",
           node.achieved_w > 0.0 ? strings::format("%.1f", node.achieved_w) : "-",
           node.level > 0.0 ? strings::format("%.0f", node.level * 100.0) : "-",
           node.last_metrics_age_s >= 0.0
               ? strings::format("%.1f s", node.last_metrics_age_s)
               : "-"});
    }
    table.print(out_);
    if (status.budget_w > 0.0 && total_setpoint > 0.0)
      out_ << strings::format("budget: %.1f W allocated, %.1f W achieved (target %.0f W)\n",
                              total_setpoint, total_achieved, status.budget_w);
  }

  if (!status.spreads.empty()) {
    Table table({"phase", "begin spread ms", "first node", "last node", "nodes"});
    for (const cluster::StatusSpreadRec& spread : status.spreads)
      table.add_row({spread.phase,
                     strings::format("%.2f", (spread.max_begin_s - spread.min_begin_s) * 1e3),
                     spread.min_node, spread.max_node, std::to_string(spread.nodes)});
    table.print(out_);
  }

  if (!status.counters.empty()) {
    Table table({"metric", "value", "kind"});
    for (const trace::MetricSnapshot& metric : status.counters)
      table.add_row({metric.name,
                     metric.is_counter
                         ? std::to_string(static_cast<unsigned long long>(metric.value))
                         : strings::format("%g", metric.value),
                     metric.is_counter ? "counter" : "gauge"});
    table.print(out_);
  }

  if (!status.alerts.empty()) {
    Table table({"alert", "node", "t", "detail"});
    for (const cluster::StatusAlertRec& alert : status.alerts)
      table.add_row({alert.kind, alert.node, strings::format("%.1f s", alert.t_s),
                     alert.detail});
    table.print(out_);
  }

  // The probe's exit code IS the health check: scripts gate on it without
  // parsing the tables.
  if (status.fleet_healthy == 0) {
    out_ << "fleet UNHEALTHY (" << status.alerts.size() << " alerts)\n";
    return 1;
  }
  out_ << "fleet healthy\n";
  return 0;
}

int Firestarter::run_dump_asm() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  const auto groups = resolve_groups(cfg_, fn);
  // Regenerate the raw bytes outside executable memory for listing: the
  // compiler is deterministic, so this is exactly what a run would map.
  payload::CompileOptions options = compile_options(cfg_);
  if (options.unroll == 0) options.unroll = 16;  // keep listings readable by default
  auto payload = payload::compile_payload(fn.mix, groups, target.caches, options);
  out_ << "kernel for " << fn.name << "  M=" << groups.to_string() << "  u="
       << payload.stats().unroll << "  (" << payload.stats().loop_bytes << " B loop, "
       << payload.stats().instructions_per_iteration << " instructions/iteration)\n";
  // Disassemble straight from the mapped buffer (read access is allowed).
  out_ << jit::format_listing(payload.code_bytes());
  return 0;
}

int Firestarter::run_selftest_mode() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name);
  payload::CompileOptions options = compile_options(cfg_);
  options.dump_registers = true;
  auto payload = payload::compile_payload(fn.mix, resolve_groups(cfg_, fn), target.caches,
                                          options);
  const std::vector<int> cpus = resolve_worker_cpus(cfg_);
  out_ << "SIMD self-test: " << fn.name << " on " << cpus.size() << " workers, "
       << cfg_.selftest_iterations << " iterations each\n";
  const kernel::SelftestResult result =
      kernel::run_selftest(payload, cpus, cfg_.selftest_iterations, cfg_.seed);
  out_ << result.describe() << "\n";
  return result.passed ? 0 : 1;
}

int Firestarter::run_stress_host() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);
  if (!target.cpu.features.covers(fn.mix.required))
    throw UnsupportedError("host CPU lacks features for " + fn.name + " (needs " +
                           fn.mix.required.to_string() + ")");
  const auto groups = resolve_groups(cfg_, fn);
  log::info() << "host: " << target.cpu.describe();
  log::info() << "function: " << fn.name << " M=" << groups.to_string();

  auto payload = payload::compile_payload(fn.mix, groups, target.caches, compile_options(cfg_));
  log::info() << "compiled loop: u=" << payload.stats().unroll << ", "
              << payload.stats().loop_bytes << " B, "
              << payload.stats().instructions_per_iteration << " instructions/iteration";

  // Closed-loop --target: the controller's profile replaces the open-loop
  // schedule as the actuator.
  HostControl hc;
  std::unique_ptr<control::FeedbackLoop> loop;
  if (cfg_.target_spec) {
    if (cfg_.load_profile)
      log::warn() << "--load-profile is ignored under --target (the controller owns "
                     "the duty cycle)";
    const control::Setpoint sp = control::Setpoint::parse(*cfg_.target_spec);
    if (cfg_.timeout_s > 0) sp.validate_duration(cfg_.timeout_s, "closed-loop run");
    hc = make_host_control(cfg_, sp);
    loop = std::move(hc.loop);
    log::info() << "control: " << loop->setpoint().describe() << " via "
                << hc.sensor->name();
  } else if (cfg_.require_convergence) {
    log::warn() << "--require-convergence is ignored without --target "
                   "(nothing is regulated)";
  }

  kernel::RunOptions run_options;
  run_options.cpus = resolve_worker_cpus(cfg_);
  run_options.policy = policy_of(cfg_);
  run_options.seed = cfg_.seed;
  run_options.load = cfg_.load;
  run_options.period_s = cfg_.period_s;
  run_options.profile = loop ? hc.profile : resolve_profile(cfg_);
  run_options.phase_offset_s = cfg_.phase_offset_s;
  kernel::ThreadManager manager(payload, run_options);
  if (!run_options.profile->constant())
    log::info() << "load profile: " << run_options.profile->describe();

  // Optional GPU stand-in stress, duty-cycling against the same schedule
  // (or the controller's live profile) as the CPU workers.
  std::unique_ptr<gpu::DgemmStressor> gpu_stress;
  if (cfg_.gpus > 0) {
    gpu::GpuStressOptions gpu_options;
    gpu_options.devices = cfg_.gpus;
    gpu_options.matrix_n = cfg_.gpu_matrix_n;
    gpu_options.seed = cfg_.seed;
    gpu_options.profile = run_options.profile;
    gpu_stress = std::make_unique<gpu::DgemmStressor>(gpu_options);
  }

  telemetry::TelemetryBus bus;
  RunSinks sinks(bus, cfg_, cfg_.measurement, loop != nullptr,
                 " without --target (no controller ticks to log)");

  // Metrics for --measurement. Row order: metric channels, the achieved
  // load level (summarized only when a schedule modulates it — a controlled
  // profile is never constant(), so --target runs are covered), then ctl-*.
  auto metrics_set =
      build_host_metrics(cfg_, manager, payload.stats().instructions_per_iteration,
                         hc.owns_plugin, hc.owns_command);
  metrics_set->register_channels(bus);
  const bool summarize_load = cfg_.measurement && !run_options.profile->constant();
  const telemetry::ChannelId load_ch =
      bus.channel(kLoadChannel, "fraction", telemetry::TrimMode::kPhase, summarize_load);
  if (loop) loop->attach_bus(&bus);

  const double duration =
      cfg_.timeout_s > 0 ? cfg_.timeout_s : std::numeric_limits<double>::infinity();
  bus.begin_phase("", duration, cfg_.start_delta_s, cfg_.stop_delta_s);

  kernel::Watchdog watchdog;
  std::atomic<bool> done{false};
  if (cfg_.timeout_s > 0)
    watchdog.arm(std::chrono::duration<double>(cfg_.timeout_s), [&done] { done.store(true); });

  log::info() << "stressing " << run_options.cpus.size() << " CPUs"
              << (cfg_.timeout_s > 0 ? strings::format(" for %.0f s", cfg_.timeout_s)
                                     : std::string(" until interrupted"));
  manager.start();
  if (gpu_stress) gpu_stress->start();
  metrics_set->begin_all();
  if (hc.sensor) hc.sensor->begin();

  const auto t0 = std::chrono::steady_clock::now();
  double last_dump_s = 0.0;
  std::ofstream dump_file;
  if (cfg_.dump_registers) dump_file.open(cfg_.dump_path);
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (cfg_.measurement) metrics_set->sample_all(bus, elapsed);
    // Feeds the load summary row and --record-trace's streaming recorder;
    // with neither sink attached the publish is a no-op. Before the
    // controller poll so summary rows order metrics, load, then ctl.
    bus.publish(load_ch, elapsed, manager.load_at(elapsed));
    if (loop && loop->due(elapsed)) loop->poll(elapsed, *hc.sensor);
    if (cfg_.dump_registers && elapsed - last_dump_s >= cfg_.dump_interval_s) {
      kernel::write_dump(dump_file, kernel::capture_registers(manager));
      dump_file.flush();
      last_dump_s = elapsed;
    }
    if (cfg_.timeout_s <= 0 && elapsed >= 1e9) break;  // effectively forever
  }
  manager.stop();
  if (gpu_stress) gpu_stress->stop();
  if (cfg_.dump_registers) {
    kernel::write_dump(dump_file, kernel::capture_registers(manager));
    log::info() << "register dump written to " << cfg_.dump_path;
  }
  bus.finish();

  out_ << strings::format("executed %llu kernel loop iterations on %zu workers\n",
                          static_cast<unsigned long long>(manager.total_iterations()),
                          manager.num_workers());
  if (gpu_stress)
    out_ << strings::format("gpu stand-in: %llu DGEMMs (%.1f GFLOP total)\n",
                            static_cast<unsigned long long>(gpu_stress->total_gemms()),
                            gpu_stress->total_flops() / 1e9);
  bool converged = true;
  if (loop) {
    const double report_duration = cfg_.timeout_s > 0 ? cfg_.timeout_s : 0.0;
    converged = report_convergence(*loop, report_duration, "controller");
  }
  if (cfg_.measurement) metrics::print_csv(out_, sinks.summary.rows());
  sinks.report_trace(cfg_);
  return cfg_.require_convergence && !converged ? 1 : 0;
}

int Firestarter::run_fuzzer() {
  // One seed drives everything random: candidate generation in the fuzzer,
  // meter noise through the evaluator's Config — so the same seed and the
  // same target spec reproduce the identical corpus.
  Config cfg = cfg_;
  cfg.seed = cfg_.fuzz_seed;
  std::unique_ptr<fuzz::Evaluator> evaluator;
  if (cfg.loopback_nodes) {
    evaluator = fuzz::make_fleet_evaluator(cfg, cfg.fuzz_duration_s, out_);
  } else if (cfg.target != TargetSystem::kHost) {
    evaluator = fuzz::make_local_evaluator(cfg, cfg.fuzz_duration_s);
  } else {
    throw ConfigError(
        "--fuzz needs --simulate TARGET (one candidate at a time) or "
        "--loopback SPECS (fleet fan-out) — host sweeps would take hours of "
        "real stress");
  }

  fuzz::FuzzOptions options;
  options.seed = cfg_.fuzz_seed;
  options.population = cfg_.fuzz_population;
  options.generations = cfg_.fuzz_generations;
  options.corpus_cap = cfg_.fuzz_corpus;
  if (cfg_.fuzz_objective != "all")
    options.objectives = {fuzz::parse_objective(cfg_.fuzz_objective)};

  out_ << strings::format(
      "fuzz: %zu generation%s x %zu candidates, %g s phases, objective %s, seed %llu\n",
      cfg_.fuzz_generations, cfg_.fuzz_generations == 1 ? "" : "s",
      cfg_.fuzz_population, cfg_.fuzz_duration_s, cfg_.fuzz_objective.c_str(),
      static_cast<unsigned long long>(cfg_.fuzz_seed));

  const fuzz::FuzzResult result = fuzz::run_fuzz(*evaluator, options, out_);

  // The discovery verdict: for each retained objective, the top pattern
  // against the best default-payload baseline on the same axis.
  Table table({"objective", "rank", "pattern", "score", "node", "vs default"});
  for (fuzz::Objective objective : result.corpus.objectives()) {
    double reference = 0.0;
    for (const fuzz::Evaluation& base : result.baseline)
      reference = std::max(reference, fuzz::objective_score(base.signature, objective));
    const char* unit = objective == fuzz::Objective::kThermal ? "degC/s" : "W";
    for (const fuzz::CorpusEntry* entry : result.corpus.ranked(objective)) {
      const double score = fuzz::objective_score(entry->signature, objective);
      const std::string delta =
          reference > 0.0 ? strings::format("%+.1f%%", (score / reference - 1.0) * 100.0)
                          : "n/a";
      table.add_row({fuzz::to_string(objective),
                     std::to_string(result.corpus.rank_of(entry->spec, objective)),
                     entry->spec.to_string(), strings::format("%.2f %s", score, unit),
                     entry->node, delta});
    }
  }
  out_ << "ranked corpus (" << result.corpus.entries().size() << " patterns, cap "
       << result.corpus.cap() << " per objective):\n";
  table.print(out_);

  if (cfg_.fuzz_report) {
    fuzz::FuzzReport::write_file(*cfg_.fuzz_report, cfg_.fuzz_seed, result.records,
                                 result.corpus);
    out_ << "fuzz report written to " << *cfg_.fuzz_report << " (seed "
         << cfg_.fuzz_seed << " reproduces it)\n";
  }
  if (result.corpus.empty()) {
    log::error() << "fuzz run retained no patterns (every candidate failed to measure)";
    return 1;
  }
  return 0;
}

int Firestarter::run_optimization() {
  const Target target = resolve_target(cfg_);
  const payload::FunctionDef& fn = resolve_function(cfg_, target);

  std::unique_ptr<tuning::EvaluationBackend> backend;
  std::unique_ptr<sim::SimulatedSystem> system;
  if (target.simulated) {
    system = std::make_unique<sim::SimulatedSystem>(target.sim_config);
    sim::RunConditions cond;
    cond.freq_mhz = cfg_.sim_freq_mhz;
    cond.policy = policy_of(cfg_);
    cond.gpu_stress = target.gpu_stress;
    if (cfg_.threads) cond.threads = *cfg_.threads;
    auto sim_backend =
        std::make_unique<SimBackend>(*system, fn.mix, target.caches, cond,
                                     cfg_.candidate_duration_s, cfg_.seed);
    out_ << "preheat (" << cfg_.preheat_s << " s virtual) ...\n";
    sim_backend->preheat();
    backend = std::move(sim_backend);
  } else {
    const std::vector<int> cpus = resolve_worker_cpus(cfg_);

    // Objective set: power if RAPL (or a plugin/command) is available, IPC
    // via perf or the estimate — mirroring --optimization-metric defaults.
    std::vector<std::string> names;
    std::vector<HostBackend::MetricFactory> factories;
    if (metrics::RaplPowerMetric().available()) {
      names.push_back("rapl-power-W");
      factories.push_back([](const payload::PayloadStats&, int,
                             HostBackend::IterationCounter) -> metrics::MetricPtr {
        auto metric = std::make_unique<metrics::RaplPowerMetric>();
        return metric;
      });
    } else if (cfg_.metric_command) {
      names.push_back("external-power");
      const std::string command = *cfg_.metric_command;
      factories.push_back([command](const payload::PayloadStats&, int,
                                    HostBackend::IterationCounter) -> metrics::MetricPtr {
        return std::make_unique<metrics::CommandMetric>(command, "external-power", "W");
      });
    }
    names.push_back("ipc");
    factories.push_back([](const payload::PayloadStats& stats, int workers,
                           HostBackend::IterationCounter counter) -> metrics::MetricPtr {
      auto perf = std::make_unique<metrics::PerfIpcMetric>();
      if (perf->available()) return perf;
      return std::make_unique<metrics::IpcEstimateMetric>(
          std::move(counter), stats.instructions_per_iteration, 2000.0, workers);
    });
    if (names.size() < 2)
      log::warn() << "only one objective available on this host; NSGA-II degenerates "
                     "to single-objective search";
    out_ << "preheat (" << cfg_.preheat_s << " s) ...\n";
    backend = std::make_unique<HostBackend>(fn.mix, target.caches, cpus, names, factories,
                                            cfg_.candidate_duration_s, cfg_.seed);
    // Real preheat: run the default workload to warm the package.
    if (cfg_.preheat_s > 0) backend->evaluate(resolve_groups(cfg_, fn));
  }

  tuning::GroupsProblem problem(*backend);
  tuning::Nsga2Config nsga2_config;
  nsga2_config.individuals = cfg_.individuals;
  nsga2_config.generations = cfg_.generations;
  nsga2_config.mutation_probability = cfg_.nsga2_m;
  nsga2_config.seed = cfg_.seed;
  tuning::History history;
  tuning::Nsga2 optimizer(nsga2_config);

  out_ << "optimizing " << fn.name << " on " << (target.simulated ? target.sim_config.name : "host")
       << ": " << cfg_.individuals << " individuals x " << cfg_.generations
       << " generations, m=" << cfg_.nsga2_m << "\n";
  const auto population = optimizer.run(problem, &history);

  std::ofstream log_file(cfg_.optimization_log);
  history.write_csv(log_file, backend->objective_names());
  out_ << history.size() << " candidate evaluations logged to " << cfg_.optimization_log << "\n";

  // Print the first front, best power first (the paper prints "the best
  // individuals" after the last generation).
  Table table({"rank", backend->objective_names()[0],
               backend->objective_names().size() > 1 ? backend->objective_names()[1] : "-",
               "instruction groups"});
  int printed = 0;
  for (const auto& ind : population) {
    if (ind.rank != 0 || printed >= 10) continue;
    table.add_row({std::to_string(ind.rank), strings::format("%.2f", ind.objectives[0]),
                   ind.objectives.size() > 1 ? strings::format("%.3f", ind.objectives[1]) : "-",
                   tuning::GroupsProblem::to_groups(ind.genome).to_string()});
    ++printed;
  }
  table.print(out_);

  const auto& best = tuning::Nsga2::best_by_objective(population, 0);
  out_ << "selected optimum: " << tuning::GroupsProblem::to_groups(best.genome).to_string()
       << strings::format("  (%.2f %s)\n", best.objectives[0],
                          backend->objective_names()[0].c_str());
  return 0;
}

}  // namespace fs2::firestarter
