#pragma once

#include <ostream>

#include "firestarter/config.hpp"

namespace fs2::cluster {
class AgentSession;
}

namespace fs2::firestarter {

/// Top-level orchestration: wires CPU detection, payload selection and
/// compilation, worker threads, metrics, the watchdog, and the NSGA-II
/// tuning loop according to a parsed Config — the box labelled
/// "FIRESTARTER" in Fig. 10.
class Firestarter {
 public:
  Firestarter(Config config, std::ostream& out);

  /// Execute the configured action. Returns a process exit code.
  int run();

 private:
  int list_functions();
  int list_metrics();
  int run_stress_host();
  int run_selftest_mode();
  int run_dump_asm();
  int run_stress_simulated();
  /// `session` non-null runs the campaign as a cluster agent: telemetry
  /// streams to the coordinator, phase transitions barrier on the fleet,
  /// and (in budget mode) every phase runs closed-loop against the
  /// coordinator's reapportioned per-node power setpoint.
  int run_campaign(cluster::AgentSession* session = nullptr);
  int run_coordinator();
  int run_agent();
  /// --status HOST:PORT: probe a live coordinator's status plane and print
  /// fleet health; runs no workload.
  int run_status();
  int run_optimization();
  /// --fuzz: randomized payload-pattern discovery over the sim plant (or a
  /// loopback fleet), reporting the ranked outlier corpus vs the default
  /// payload's baseline.
  int run_fuzzer();

  Config cfg_;
  std::ostream& out_;
};

}  // namespace fs2::firestarter
