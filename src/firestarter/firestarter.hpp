#pragma once

#include <ostream>

#include "firestarter/config.hpp"

namespace fs2::firestarter {

/// Top-level orchestration: wires CPU detection, payload selection and
/// compilation, worker threads, metrics, the watchdog, and the NSGA-II
/// tuning loop according to a parsed Config — the box labelled
/// "FIRESTARTER" in Fig. 10.
class Firestarter {
 public:
  Firestarter(Config config, std::ostream& out);

  /// Execute the configured action. Returns a process exit code.
  int run();

 private:
  int list_functions();
  int list_metrics();
  int run_stress_host();
  int run_selftest_mode();
  int run_dump_asm();
  int run_stress_simulated();
  int run_campaign();
  int run_optimization();

  Config cfg_;
  std::ostream& out_;
};

}  // namespace fs2::firestarter
