// fs2 — FIRESTARTER 2 reproduction CLI. See --help for the flag set; the
// defaults mirror the paper's tool (maximum load on every hardware thread
// until interrupted).

#include <exception>
#include <iostream>

#include "firestarter/config.hpp"
#include "firestarter/firestarter.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  try {
    fs2::firestarter::Config config = fs2::firestarter::parse_args(argc, argv);
    fs2::firestarter::Firestarter app(std::move(config), std::cout);
    return app.run();
  } catch (const fs2::ConfigError& e) {
    std::cerr << "fs2: " << e.what() << "\n";
    std::cerr << "try 'fs2 --help'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "fs2: " << e.what() << "\n";
    return 1;
  }
}
