#include "firestarter/sim_fleet.hpp"

#include <poll.h>
#include <sys/resource.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <sstream>

#include "cluster/clock_sync.hpp"
#include "payload/groups.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::firestarter {

using Clock = std::chrono::steady_clock;

void raise_fd_limit(std::size_t need) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= need) return;
  rlimit raised = limit;
  raised.rlim_cur = limit.rlim_max == RLIM_INFINITY
                        ? need
                        : std::min<rlim_t>(need, limit.rlim_max);
  if (raised.rlim_cur > limit.rlim_cur) ::setrlimit(RLIMIT_NOFILE, &raised);
}

std::vector<LoopbackSpec> parse_loopback_specs(const std::string& list) {
  std::vector<LoopbackSpec> specs;
  for (const std::string& entry : strings::split(list, ',')) {
    std::string_view trimmed = strings::trim(entry);
    if (trimmed.empty()) throw ConfigError("--loopback: empty node spec in '" + list + "'");

    // Count multiplier: sku[@FREQ]xCOUNT. The 'x' is searched after the
    // '@' (or in the bare sku) so SKU names themselves stay unrestricted.
    std::size_t count = 1;
    const auto at = trimmed.find('@');
    const auto x = trimmed.find('x', at == std::string_view::npos ? 0 : at);
    if (x != std::string_view::npos) {
      const std::string_view count_text = trimmed.substr(x + 1);
      count = static_cast<std::size_t>(
          strings::parse_u64(std::string(count_text), "--loopback count"));
      if (count == 0) throw ConfigError("--loopback: node count must be >= 1");
      trimmed = trimmed.substr(0, x);
    }

    LoopbackSpec spec;
    const auto freq_at = trimmed.find('@');
    const std::string sku = strings::to_lower(trimmed.substr(0, freq_at));
    if (sku == "host")
      throw ConfigError(
          "--loopback: host agents cannot share one process (run a real "
          "fs2 --agent per machine instead); use sim SKUs here");
    spec.target = parse_sim_target(sku);
    spec.name = sku;
    if (freq_at != std::string_view::npos) {
      spec.freq_mhz =
          strings::parse_double(trimmed.substr(freq_at + 1), "--loopback freq");
      if (!(spec.freq_mhz > 0.0)) throw ConfigError("--loopback: freq must be > 0 MHz");
    }
    for (std::size_t i = 0; i < count; ++i) specs.push_back(spec);
    if (specs.size() > kMaxLoopbackNodes)
      throw ConfigError(strings::format("--loopback: fleet larger than %zu nodes",
                                        kMaxLoopbackNodes));
  }
  if (specs.empty()) throw ConfigError("--loopback: no node specs given");
  return specs;
}

// ---- SimAgent ---------------------------------------------------------------

SimAgent::SimAgent(Config cfg, const std::string& endpoint, std::size_t index)
    : cfg_(std::move(cfg)),
      node_name_(cfg_.node_name ? *cfg_.node_name
                                : strings::format("n%zu", index)),
      conn_(cluster::Connection::connect(endpoint, /*retry_for_s=*/30.0)) {
  cluster::HelloMsg hello;
  hello.node_name = node_name_;
  std::string sku = to_string(cfg_.target);
  if (cfg_.target != TargetSystem::kHost && cfg_.sim_freq_mhz > 0.0)
    sku += strings::format("@%.0fMHz", cfg_.sim_freq_mhz);
  hello.sku = sku;
  conn_.send(hello.encode());
}

void SimAgent::fail(const std::string& what) {
  failed_ = true;
  error_ = what;
  state_ = State::kDone;
  wait_ = Wait::kDone;
  // Best-effort black box: ship the flight record so the coordinator's
  // post-mortem has this node's last view even though the process lives on.
  if (conn_.valid()) {
    try {
      cluster::FlightRecordMsg record;
      record.reason = node_name_ + ": " + what;
      record.dump = trace::FlightRecorder::instance().serialize();
      conn_.send(record.encode());
    } catch (const std::exception&) {
      // The socket is the thing that broke; nothing more to do.
    }
  }
  conn_.close();
}

double SimAgent::epoch_elapsed_s() const {
  return std::chrono::duration<double>(Clock::now() - epoch_time_).count();
}

void SimAgent::maybe_ship_metrics(bool force) {
  if (campaign_.metrics_interval_s <= 0.0 || !have_epoch_ || !conn_.valid()) return;
  const double t = epoch_elapsed_s();
  if (!force && t < next_metrics_s_) return;
  // Re-arm on the fixed grid so a late ship doesn't drift the cadence.
  while (next_metrics_s_ <= t) next_metrics_s_ += campaign_.metrics_interval_s;
  trace::MetricDelta delta = metrics_tracker_.collect();
  if (delta.empty()) return;
  cluster::MetricUpdateMsg msg;
  msg.seq = metrics_seq_++;
  msg.t_agent_s = t;
  msg.delta = std::move(delta);
  conn_.send(msg.encode());
}

const payload::PayloadStats& SimAgent::stats_for(const payload::FunctionDef& fn,
                                                 const sched::CampaignPhase& spec) {
  const std::string groups_text =
      spec.groups ? *spec.groups
                  : (cfg_.instruction_groups ? *cfg_.instruction_groups
                                             : fn.default_groups);
  payload::CompileOptions options;
  if (spec.unroll)
    options.unroll = *spec.unroll;
  else if (cfg_.line_count)
    options.unroll = *cfg_.line_count;
  options.dump_registers = cfg_.dump_registers;
  const std::string key =
      fn.name + "|" + groups_text + strings::format("|u=%u", options.unroll);
  auto it = stats_cache_.find(key);
  if (it != stats_cache_.end()) return it->second;
  const payload::PayloadStats stats = payload::analyze_payload(
      fn.mix, payload::InstructionGroups::parse(groups_text), target_.caches, options);
  return stats_cache_.emplace(key, stats).first->second;
}

void SimAgent::prepare_campaign() {
  std::istringstream in(campaign_.campaign_text);
  phases_ = sched::Campaign::parse(in, "(from coordinator)");
  target_ = resolve_target(cfg_);
  system_ = std::make_unique<sim::SimulatedSystem>(target_.sim_config);

  const bool budget_mode = campaign_.has_budget != 0;
  bool any_target = budget_mode;
  bool any_temp = false;
  for (const sched::CampaignPhase& spec : phases_->phases()) any_temp |= spec.measure_temp;
  for (const sched::CampaignPhase& spec : phases_->phases()) {
    ResolvedPhase phase;
    phase.fn = spec.function ? &payload::find_function(*spec.function)
               : cfg_.function_id ? &payload::find_function(*cfg_.function_id)
               : cfg_.function_name ? &payload::find_function(*cfg_.function_name)
                                    : &payload::select_function(target_.cpu);
    phase.profile = sched::parse_profile(spec.profile_spec, cfg_.load, cfg_.period_s);
    if (budget_mode) {
      control::Setpoint sp;
      sp.variable = control::ControlVariable::kPower;
      sp.value = current_setpoint_w_;
      sp.interval_s = campaign_.ctl_interval_s;
      sp.band = campaign_.budget_band;
      sp.validate_duration(spec.duration_s, "campaign phase '" + spec.name + "'");
      phase.setpoint = sp;
    } else if (spec.target_spec) {
      phase.setpoint = control::Setpoint::parse(*spec.target_spec);
      phase.setpoint->validate_duration(spec.duration_s,
                                        "campaign phase '" + spec.name + "'");
      any_target = true;
    }
    resolved_.push_back(std::move(phase));
  }

  sink_ = std::make_unique<cluster::RemoteSink>(&conn_, epoch_time_);
  bus_.attach(sink_.get());
  channels_ = register_sim_channels(bus_, /*with_temp=*/any_target || any_temp,
                                    /*trimmed_aux=*/true, /*summarize_load=*/true);
  next_metrics_s_ = campaign_.metrics_interval_s;
  state_ = State::kWaitStart;
  wait_ = Wait::kUntil;
}

void SimAgent::close_wait_span(const char* name) {
  if (!tracing() || wait_open_s_ <= 0.0) return;
  spans_.push_back(trace::Span{name, wait_open_s_, trace::now_s()});
  wait_open_s_ = 0.0;
}

void SimAgent::begin_phase() {
  const sched::CampaignPhase& spec = phases_->phases()[phase_index_];
  close_wait_span("agent.barrier_wait");
  if (tracing()) phase_open_s_ = trace::now_s();
  // The budget setpoint value is re-read AFTER the barrier so the phase
  // starts from the latest apportionment.
  if (campaign_.has_budget != 0) resolved_[phase_index_].setpoint->value = current_setpoint_w_;
  const TrimDeltas deltas = phase_deltas(cfg_, spec.duration_s);
  // The begin bracket goes on the wire NOW; the phase's virtual-time work
  // waits for advance() so a barrier release reaches the whole fleet
  // before any node starts computing (tight begin spreads at 512 nodes).
  bus_.begin_phase(spec.name, spec.duration_s, deltas.start_s, deltas.stop_s);
  metrics_.gauge("agent.phase").set(static_cast<double>(phase_index_));
  next_budget_s_ = campaign_.budget_interval_s;
  state_ = State::kRunPhase;
  wait_ = Wait::kRun;
}

void SimAgent::send_budget_report() {
  if (tracing()) wait_open_s_ = trace::now_s();
  next_budget_s_ += campaign_.budget_interval_s;
  cluster::BudgetReportMsg report;
  report.seq = budget_seq_++;
  report.achieved_w = run_->loop().trailing_mean(campaign_.budget_interval_s);
  report.setpoint_w = run_->loop().setpoint().value;
  report.level = run_->loop().profile().level();
  metrics_.counter("agent.budget_exchanges").add();
  metrics_.gauge("agent.achieved_w").set(report.achieved_w);
  metrics_.gauge("agent.setpoint_w").set(report.setpoint_w);
  metrics_.gauge("agent.level").set(report.level);
  metrics_.histogram("agent.ctl_error_w")
      .record(std::abs(report.achieved_w - report.setpoint_w));
  conn_.send(report.encode());
  state_ = State::kAwaitAssign;
  wait_ = Wait::kFrame;
}

void SimAgent::advance() {
  if (state_ != State::kRunPhase) return;
  try {
    const sched::CampaignPhase& spec = phases_->phases()[phase_index_];
    const ResolvedPhase& res = resolved_[phase_index_];
    const double campaign_time_s = bus_.phase().time_offset_s;
    const std::uint64_t seed = cfg_.seed + phase_index_;

    if (res.setpoint) {
      if (!run_)
        run_ = std::make_unique<ControlledSimPhaseRun>(
            *system_, cfg_, stats_for(*res.fn, spec), *res.setpoint, spec.duration_s,
            seed, campaign_time_s, target_.gpu_stress, spec.freq_mhz, spec.threads,
            carry_temp_c_, bus_, channels_);
      const bool budget = campaign_.has_budget != 0;
      while (!run_->done()) {
        const double t = run_->step();
        maybe_ship_metrics();
        if (budget && t >= next_budget_s_ - 1e-9) {
          send_budget_report();
          return;  // resume from the coordinator's reassignment
        }
      }
      all_converged_ &= report_convergence(run_->loop(), spec.duration_s,
                                           "phase '" + spec.name + "'", /*quiet=*/true);
      carry_temp_c_ = run_->final_temp_c();
      run_.reset();
    } else {
      Config phase_cfg = cfg_;
      if (spec.freq_mhz) phase_cfg.sim_freq_mhz = *spec.freq_mhz;
      if (spec.threads) phase_cfg.threads = *spec.threads;
      const SimPhaseResult result =
          run_sim_phase(*system_, phase_cfg, stats_for(*res.fn, spec), *res.profile,
                        spec.duration_s, seed, campaign_time_s, target_.gpu_stress,
                        bus_, channels_, carry_temp_c_);
      carry_temp_c_ = result.final_temp_c
                          ? result.final_temp_c
                          : std::make_optional(advance_thermal_carry(
                                *system_, spec.duration_s, result.mean_power_w,
                                carry_temp_c_));
    }
    maybe_ship_metrics();
    finish_phase();
  } catch (const std::exception& e) {
    fail(e.what());
  }
}

void SimAgent::finish_phase() {
  bus_.end_phase();
  if (tracing()) {
    spans_.push_back(trace::Span{"phase:" + phases_->phases()[phase_index_].name,
                                 phase_open_s_, trace::now_s()});
  }
  ++phase_index_;
  if (phase_index_ < phases_->size()) {
    if (tracing()) wait_open_s_ = trace::now_s();
    state_ = State::kAwaitGo;
    wait_ = Wait::kFrame;
    return;
  }
  bus_.finish();
  // The final metric delta ships before the verdict so the coordinator's
  // folded series equal this node's final registry totals.
  maybe_ship_metrics(/*force=*/true);
  // Span shipment precedes the verdict (the coordinator's "node done"
  // signal) so the merged timeline is complete when the run closes.
  if (tracing()) {
    cluster::TraceSpansMsg spans;
    spans.spans = std::move(spans_);
    conn_.send(spans.encode());
  }
  cluster::VerdictMsg verdict;
  verdict.converged = all_converged_ ? 1 : 0;
  verdict.detail = strings::format("%zu phases on %s", phases_->size(),
                                   target_.sim_config.name.c_str());
  conn_.send(verdict.encode());
  state_ = State::kAwaitShutdown;
  wait_ = Wait::kFrame;
}

void SimAgent::handle_frame(const cluster::Frame& frame) {
  cluster::WireReader reader(frame.payload);
  switch (frame.type) {
    case cluster::MessageType::kSyncProbe: {
      const cluster::SyncProbeMsg probe = cluster::SyncProbeMsg::decode(reader);
      cluster::SyncReplyMsg reply;
      reply.seq = probe.seq;
      reply.t_coord_s = probe.t_coord_s;
      reply.t_agent_s = cluster::local_clock_s();
      conn_.send(reply.encode());
      break;
    }
    case cluster::MessageType::kCampaign:
      campaign_ = cluster::CampaignMsg::decode(reader);
      current_setpoint_w_ = campaign_.initial_setpoint_w;
      have_campaign_ = true;
      if (have_campaign_ && have_epoch_) prepare_campaign();
      break;
    case cluster::MessageType::kEpoch: {
      const cluster::EpochMsg epoch = cluster::EpochMsg::decode(reader);
      epoch_time_ = cluster::to_time_point(epoch.t0_agent_s);
      have_epoch_ = true;
      if (have_campaign_ && have_epoch_) prepare_campaign();
      break;
    }
    case cluster::MessageType::kPhaseGo: {
      const cluster::PhaseGoMsg go = cluster::PhaseGoMsg::decode(reader);
      if (state_ != State::kAwaitGo || go.phase_index != phase_index_)
        throw cluster::WireError(strings::format(
            "agent %s: phase-go for %u while at phase %zu", node_name_.c_str(),
            go.phase_index, phase_index_));
      begin_phase();
      break;
    }
    case cluster::MessageType::kBudgetAssign: {
      const cluster::BudgetAssignMsg assign = cluster::BudgetAssignMsg::decode(reader);
      if (state_ != State::kAwaitAssign || assign.seq + 1 != budget_seq_)
        throw cluster::WireError(
            strings::format("agent %s: unexpected budget assign seq %u",
                            node_name_.c_str(), assign.seq));
      close_wait_span("agent.budget_wait");
      current_setpoint_w_ = assign.setpoint_w;
      run_->loop().set_target(assign.setpoint_w);
      state_ = State::kRunPhase;
      wait_ = Wait::kRun;
      break;
    }
    case cluster::MessageType::kShutdown:
      if (state_ != State::kAwaitShutdown)
        throw cluster::WireError("agent " + node_name_ +
                                 ": coordinator shut the run down early");
      conn_.close();
      state_ = State::kDone;
      wait_ = Wait::kDone;
      break;
    default:
      throw cluster::WireError(std::string("agent ") + node_name_ + ": unexpected " +
                               cluster::to_string(frame.type));
  }
}

void SimAgent::on_readable() {
  if (state_ == State::kDone) return;
  try {
    cluster::Frame frame;
    // Drain everything available without blocking; each frame may flip the
    // state machine (including to kDone, which closes the socket).
    while (state_ != State::kDone && conn_.recv_into(frame, /*timeout_s=*/0.0))
      handle_frame(frame);
  } catch (const std::exception& e) {
    fail(e.what());
  }
}

void SimAgent::on_time() {
  if (state_ != State::kWaitStart) return;
  try {
    begin_phase();  // phase 0's barrier is the epoch itself
  } catch (const std::exception& e) {
    fail(e.what());
  }
}

// ---- SimFleet ---------------------------------------------------------------

SimFleet::SimFleet(const Config& base, const std::vector<LoopbackSpec>& specs,
                   std::uint16_t port) {
  const std::string endpoint = strings::format("127.0.0.1:%u", port);
  agents_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Config cfg = base;
    cfg.coordinator = false;
    cfg.loopback_nodes.reset();
    cfg.campaign_file.reset();
    cfg.target_spec.reset();
    cfg.record_trace.reset();
    cfg.control_log.reset();
    cfg.measurement = false;
    cfg.require_convergence = false;
    cfg.target = specs[i].target;
    cfg.sim_freq_mhz = specs[i].freq_mhz;
    cfg.node_name = strings::format("n%zu-%s", i, specs[i].name.c_str());
    cfg.seed = base.seed + i + 1;  // decorrelate the nodes' meter noise
    agents_.push_back(std::make_unique<SimAgent>(std::move(cfg), endpoint, i));
  }
}

void SimFleet::run() {
  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_agents;
  fds.reserve(agents_.size());
  fd_agents.reserve(agents_.size());

  trace::Counter& iterations = trace::Registry::instance().counter("reactor.poll_iterations");
  trace::Histogram& poll_wait =
      trace::Registry::instance().histogram("reactor.poll_wait_s");
  for (;;) {
    iterations.add();
    TRACE_SPAN("reactor.iteration");
    fds.clear();
    fd_agents.clear();
    bool alive = false;
    bool runnable = false;
    bool wake_pending = false;
    Clock::time_point next_wake = Clock::time_point::max();
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      switch (agents_[i]->wait()) {
        case SimAgent::Wait::kDone:
          continue;
        case SimAgent::Wait::kFrame:
          fds.push_back(pollfd{agents_[i]->fd(), POLLIN, 0});
          fd_agents.push_back(i);
          break;
        case SimAgent::Wait::kUntil:
          next_wake = std::min(next_wake, agents_[i]->wake_time());
          wake_pending = true;
          break;
        case SimAgent::Wait::kRun:
          runnable = true;
          break;
      }
      alive = true;
    }
    if (!alive) break;

    int timeout_ms = 600000;  // the coordinator's stall guard, mirrored
    if (runnable) {
      timeout_ms = 0;
    } else if (wake_pending) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_wake - Clock::now());
      timeout_ms = static_cast<int>(std::clamp<long long>(until.count(), 0, 600000));
    }
    const Clock::time_point poll_begin = Clock::now();
    const int ready =
        ::poll(fds.empty() ? nullptr : fds.data(), fds.size(), timeout_ms);
    poll_wait.record(
        std::chrono::duration<double>(Clock::now() - poll_begin).count());
    if (ready < 0) {
      if (errno == EINTR) continue;
      for (auto& agent : agents_)
        if (agent->wait() != SimAgent::Wait::kDone) agent->on_readable();
      break;
    }
    if (ready == 0 && !runnable && !wake_pending) {
      // Nothing runnable, nothing due, and 600 s of silence: mirror the
      // coordinator's stall verdict instead of spinning forever.
      for (std::size_t i = 0; i < agents_.size(); ++i)
        if (agents_[i]->wait() == SimAgent::Wait::kFrame)
          agents_[i]->on_readable();  // surfaces the disconnect, if any
      break;
    }

    // Epoch wakes and barrier releases first — every agent's begin bracket
    // hits the wire before any agent starts its phase compute.
    if (wake_pending) {
      const Clock::time_point now = Clock::now();
      for (auto& agent : agents_)
        if (agent->wait() == SimAgent::Wait::kUntil && now >= agent->wake_time())
          agent->on_time();
    }
    if (ready > 0)
      for (std::size_t k = 0; k < fds.size(); ++k)
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
          agents_[fd_agents[k]]->on_readable();
    for (auto& agent : agents_)
      if (agent->wait() == SimAgent::Wait::kRun) agent->advance();
  }

  outcomes_.clear();
  for (const auto& agent : agents_) {
    Outcome outcome;
    outcome.name = agent->name();
    outcome.ok = !agent->failed() && agent->wait() == SimAgent::Wait::kDone;
    outcome.error = agent->error();
    if (!outcome.ok && outcome.error.empty()) outcome.error = "fleet stalled";
    outcomes_.push_back(std::move(outcome));
  }
}

bool SimFleet::all_ok() const {
  for (const Outcome& outcome : outcomes_) {
    if (!outcome.ok) return false;
  }
  return true;
}

}  // namespace fs2::firestarter
