#include "firestarter/sim_fleet.hpp"

#include <poll.h>
#include <sys/resource.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <sstream>

#include "cluster/clock_sync.hpp"
#include "payload/groups.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::firestarter {

using Clock = std::chrono::steady_clock;

void raise_fd_limit(std::size_t need) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= need) return;
  rlimit raised = limit;
  raised.rlim_cur = limit.rlim_max == RLIM_INFINITY
                        ? need
                        : std::min<rlim_t>(need, limit.rlim_max);
  if (raised.rlim_cur > limit.rlim_cur) ::setrlimit(RLIMIT_NOFILE, &raised);
}

std::vector<LoopbackSpec> parse_loopback_specs(const std::string& list) {
  std::vector<LoopbackSpec> specs;
  for (const std::string& entry : strings::split(list, ',')) {
    std::string_view trimmed = strings::trim(entry);
    if (trimmed.empty()) throw ConfigError("--loopback: empty node spec in '" + list + "'");

    // Count multiplier: sku[@FREQ]xCOUNT. The 'x' is searched after the
    // '@' (or in the bare sku) so SKU names themselves stay unrestricted.
    std::size_t count = 1;
    const auto at = trimmed.find('@');
    const auto x = trimmed.find('x', at == std::string_view::npos ? 0 : at);
    if (x != std::string_view::npos) {
      const std::string_view count_text = trimmed.substr(x + 1);
      count = static_cast<std::size_t>(
          strings::parse_u64(std::string(count_text), "--loopback count"));
      if (count == 0) throw ConfigError("--loopback: node count must be >= 1");
      trimmed = trimmed.substr(0, x);
    }

    LoopbackSpec spec;
    const auto freq_at = trimmed.find('@');
    const std::string sku = strings::to_lower(trimmed.substr(0, freq_at));
    if (sku == "host")
      throw ConfigError(
          "--loopback: host agents cannot share one process (run a real "
          "fs2 --agent per machine instead); use sim SKUs here");
    spec.target = parse_sim_target(sku);
    spec.name = sku;
    if (freq_at != std::string_view::npos) {
      spec.freq_mhz =
          strings::parse_double(trimmed.substr(freq_at + 1), "--loopback freq");
      if (!(spec.freq_mhz > 0.0)) throw ConfigError("--loopback: freq must be > 0 MHz");
    }
    for (std::size_t i = 0; i < count; ++i) specs.push_back(spec);
    if (specs.size() > kMaxLoopbackNodes)
      throw ConfigError(strings::format("--loopback: fleet larger than %zu nodes",
                                        kMaxLoopbackNodes));
  }
  if (specs.empty()) throw ConfigError("--loopback: no node specs given");
  return specs;
}

// ---- SimAgent ---------------------------------------------------------------

SimAgent::SimAgent(Config cfg, const std::string& endpoint, std::size_t index,
                   const cluster::FaultPlan* plan, std::optional<RejoinSpec> rejoin)
    : cfg_(std::move(cfg)),
      node_name_(cfg_.node_name ? *cfg_.node_name
                                : strings::format("n%zu", index)),
      // A first-incarnation agent may start well before the coordinator's
      // listener is up, so it retries long. A rejoiner dials a coordinator
      // that was provably listening moments ago — if the port now refuses,
      // the run is over (grace expired, listener closed) and a long retry
      // would only delay the fleet's own shutdown.
      conn_(cluster::Connection::connect(endpoint,
                                         /*retry_for_s=*/rejoin ? 5.0 : 30.0)),
      rejoin_(rejoin) {
  if (plan != nullptr) {
    if (plan->link_faults_enabled()) {
      faults_.emplace(plan->link(node_name_));
      conn_.set_faults(&*faults_);
    }
    // Cues fire once per run: a rejoined incarnation does not re-arm them
    // (its predecessor already consumed the kill).
    if (!rejoin_) {
      if (const cluster::KillCue* kill = plan->kill_for(node_name_))
        kill_cue_ = *kill;
      if (const cluster::StallCue* stall = plan->stall_for(node_name_))
        stall_cue_ = *stall;
    }
  }
  if (rejoin_) {
    cluster::RejoinMsg msg;
    msg.node_name = node_name_;
    msg.campaign_id = rejoin_->campaign_id;
    msg.phases_ended = rejoin_->phases_ended;
    conn_.send(msg.encode());
    await_rejoin_ack_ = true;
    // Bounded wait: the coordinator may have finished (or given this node
    // up and shut down) between the kill and this respawn, leaving the
    // handshake sitting in a backlog nobody serves.
    ack_deadline_ = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    phases_ended_ = rejoin_->phases_ended;
    return;
  }
  cluster::HelloMsg hello;
  hello.node_name = node_name_;
  std::string sku = to_string(cfg_.target);
  if (cfg_.target != TargetSystem::kHost && cfg_.sim_freq_mhz > 0.0)
    sku += strings::format("@%.0fMHz", cfg_.sim_freq_mhz);
  hello.sku = sku;
  conn_.send(hello.encode());
}

void SimAgent::die(const std::string& why) {
  log::warn() << "[" << node_name_ << "] chaos kill: " << why;
  // No ceremony — no flight record, no goodbye. The coordinator sees a dead
  // link mid-stream, exactly like a real crash.
  conn_.close();
  killed_ = true;
  state_ = State::kDone;
  wait_ = Wait::kDone;
}

bool SimAgent::kill_due() const {
  if (!kill_cue_ || killed_) return false;
  if (kill_cue_->phase) return *kill_cue_->phase == phase_index_;
  if (kill_cue_->t_s) return have_epoch_ && epoch_elapsed_s() >= *kill_cue_->t_s;
  return false;
}

bool SimAgent::maybe_stall() {
  if (stalled_) return true;
  if (!stall_cue_ || stall_fired_ || !have_epoch_) return false;
  if (epoch_elapsed_s() < stall_cue_->t_s) return false;
  stall_fired_ = true;
  stalled_ = true;
  stall_resume_ = wait_;
  wake_time_ = epoch_time_ + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     stall_cue_->t_s + stall_cue_->duration_s));
  wait_ = Wait::kUntil;
  log::warn() << "[" << node_name_ << "] chaos stall: frozen for "
              << stall_cue_->duration_s << "s";
  return true;
}

double SimAgent::flush_pending() {
  if (!conn_.valid() || !conn_.has_pending()) return 0.0;
  try {
    return conn_.flush_pending();
  } catch (const std::exception& e) {
    fail(e.what());
    return 0.0;
  }
}

void SimAgent::fail(const std::string& what) {
  failed_ = true;
  error_ = what;
  state_ = State::kDone;
  wait_ = Wait::kDone;
  // Best-effort black box: ship the flight record so the coordinator's
  // post-mortem has this node's last view even though the process lives on.
  if (conn_.valid()) {
    try {
      cluster::FlightRecordMsg record;
      record.reason = node_name_ + ": " + what;
      record.dump = trace::FlightRecorder::instance().serialize();
      conn_.send(record.encode());
    } catch (const std::exception&) {
      // The socket is the thing that broke; nothing more to do.
    }
  }
  conn_.close();
}

double SimAgent::epoch_elapsed_s() const {
  return std::chrono::duration<double>(Clock::now() - epoch_time_).count();
}

void SimAgent::maybe_ship_metrics(bool force) {
  if (campaign_.metrics_interval_s <= 0.0 || !have_epoch_ || !conn_.valid()) return;
  const double t = epoch_elapsed_s();
  if (!force && t < next_metrics_s_) return;
  // Re-arm on the fixed grid so a late ship doesn't drift the cadence.
  while (next_metrics_s_ <= t) next_metrics_s_ += campaign_.metrics_interval_s;
  trace::MetricDelta delta = metrics_tracker_.collect();
  if (delta.empty()) return;
  cluster::MetricUpdateMsg msg;
  msg.seq = metrics_seq_++;
  msg.t_agent_s = t;
  msg.delta = std::move(delta);
  conn_.send(msg.encode());
}

const payload::PayloadStats& SimAgent::stats_for(const payload::FunctionDef& fn,
                                                 const sched::CampaignPhase& spec) {
  const std::string groups_text =
      spec.groups ? *spec.groups
                  : (cfg_.instruction_groups ? *cfg_.instruction_groups
                                             : fn.default_groups);
  payload::CompileOptions options;
  if (spec.unroll)
    options.unroll = *spec.unroll;
  else if (cfg_.line_count)
    options.unroll = *cfg_.line_count;
  options.dump_registers = cfg_.dump_registers;
  const std::string key =
      fn.name + "|" + groups_text + strings::format("|u=%u", options.unroll);
  auto it = stats_cache_.find(key);
  if (it != stats_cache_.end()) return it->second;
  const payload::PayloadStats stats = payload::analyze_payload(
      fn.mix, payload::InstructionGroups::parse(groups_text), target_.caches, options);
  return stats_cache_.emplace(key, stats).first->second;
}

void SimAgent::prepare_campaign() {
  std::istringstream in(campaign_.campaign_text);
  phases_ = sched::Campaign::parse(in, "(from coordinator)");
  target_ = resolve_target(cfg_);
  system_ = std::make_unique<sim::SimulatedSystem>(target_.sim_config);

  const bool budget_mode = campaign_.has_budget != 0;
  bool any_target = budget_mode;
  bool any_temp = false;
  for (const sched::CampaignPhase& spec : phases_->phases()) any_temp |= spec.measure_temp;
  for (const sched::CampaignPhase& spec : phases_->phases()) {
    ResolvedPhase phase;
    phase.fn = spec.function ? &payload::find_function(*spec.function)
               : cfg_.function_id ? &payload::find_function(*cfg_.function_id)
               : cfg_.function_name ? &payload::find_function(*cfg_.function_name)
                                    : &payload::select_function(target_.cpu);
    phase.profile = sched::parse_profile(spec.profile_spec, cfg_.load, cfg_.period_s);
    if (budget_mode) {
      control::Setpoint sp;
      sp.variable = control::ControlVariable::kPower;
      sp.value = current_setpoint_w_;
      sp.interval_s = campaign_.ctl_interval_s;
      sp.band = campaign_.budget_band;
      sp.validate_duration(spec.duration_s, "campaign phase '" + spec.name + "'");
      phase.setpoint = sp;
    } else if (spec.target_spec) {
      phase.setpoint = control::Setpoint::parse(*spec.target_spec);
      phase.setpoint->validate_duration(spec.duration_s,
                                        "campaign phase '" + spec.name + "'");
      any_target = true;
    }
    resolved_.push_back(std::move(phase));
  }

  sink_ = std::make_unique<cluster::RemoteSink>(&conn_, epoch_time_);
  bus_.attach(sink_.get());
  channels_ = register_sim_channels(bus_, /*with_temp=*/any_target || any_temp,
                                    /*trimmed_aux=*/true, /*summarize_load=*/true);
  next_metrics_s_ = campaign_.metrics_interval_s;
  wake_time_ = epoch_time_;
  if (rejoin_) {
    // Resume where the previous incarnation died. The coordinator already
    // credited the completed phases — they are never re-run. The fresh
    // sink's phase counter must agree: its first begin bracket has to carry
    // the coordinator-assigned resume index, not 0.
    phase_index_ = resume_phase_;
    phases_ended_ = resume_phase_;
    sink_->rewind_phase(resume_phase_);
    if (phase_index_ >= phases_->size()) {
      send_verdict();  // everything already ran; only the verdict is owed
      return;
    }
    if (phase_index_ == 0) {
      state_ = State::kWaitStart;  // epoch may be in the past: fires at once
      wait_ = Wait::kUntil;
    } else {
      state_ = State::kAwaitGo;  // the phase-go replay (or release) is coming
      wait_ = Wait::kFrame;
    }
    return;
  }
  state_ = State::kWaitStart;
  wait_ = Wait::kUntil;
}

void SimAgent::close_wait_span(const char* name) {
  if (!tracing() || wait_open_s_ <= 0.0) return;
  spans_.push_back(trace::Span{name, wait_open_s_, trace::now_s()});
  wait_open_s_ = 0.0;
}

void SimAgent::begin_phase() {
  const sched::CampaignPhase& spec = phases_->phases()[phase_index_];
  close_wait_span("agent.barrier_wait");
  if (tracing()) phase_open_s_ = trace::now_s();
  // The budget setpoint value is re-read AFTER the barrier so the phase
  // starts from the latest apportionment.
  if (campaign_.has_budget != 0) resolved_[phase_index_].setpoint->value = current_setpoint_w_;
  const TrimDeltas deltas = phase_deltas(cfg_, spec.duration_s);
  // The begin bracket goes on the wire NOW; the phase's virtual-time work
  // waits for advance() so a barrier release reaches the whole fleet
  // before any node starts computing (tight begin spreads at 512 nodes).
  bus_.begin_phase(spec.name, spec.duration_s, deltas.start_s, deltas.stop_s);
  metrics_.gauge("agent.phase").set(static_cast<double>(phase_index_));
  next_budget_s_ = campaign_.budget_interval_s;
  state_ = State::kRunPhase;
  wait_ = Wait::kRun;
  // A phase-cued kill fires right after the begin bracket: the coordinator
  // has counted the node into the phase, then the link goes dark mid-phase.
  if (kill_cue_ && kill_cue_->phase && *kill_cue_->phase == phase_index_)
    die(strings::format("kill cue at phase %zu", phase_index_));
}

void SimAgent::send_budget_report() {
  if (tracing()) wait_open_s_ = trace::now_s();
  next_budget_s_ += campaign_.budget_interval_s;
  cluster::BudgetReportMsg report;
  report.seq = budget_seq_++;
  report.achieved_w = run_->loop().trailing_mean(campaign_.budget_interval_s);
  report.setpoint_w = run_->loop().setpoint().value;
  report.level = run_->loop().profile().level();
  metrics_.counter("agent.budget_exchanges").add();
  metrics_.gauge("agent.achieved_w").set(report.achieved_w);
  metrics_.gauge("agent.setpoint_w").set(report.setpoint_w);
  metrics_.gauge("agent.level").set(report.level);
  metrics_.histogram("agent.ctl_error_w")
      .record(std::abs(report.achieved_w - report.setpoint_w));
  conn_.send(report.encode());
  state_ = State::kAwaitAssign;
  wait_ = Wait::kFrame;
}

void SimAgent::advance() {
  if (state_ != State::kRunPhase) return;
  if (maybe_stall()) return;
  if (kill_due()) {
    die(strings::format("kill cue at t=%.1fs", epoch_elapsed_s()));
    return;
  }
  try {
    const sched::CampaignPhase& spec = phases_->phases()[phase_index_];
    const ResolvedPhase& res = resolved_[phase_index_];
    const double campaign_time_s = bus_.phase().time_offset_s;
    const std::uint64_t seed = cfg_.seed + phase_index_;

    if (res.setpoint) {
      if (!run_)
        run_ = std::make_unique<ControlledSimPhaseRun>(
            *system_, cfg_, stats_for(*res.fn, spec), *res.setpoint, spec.duration_s,
            seed, campaign_time_s, target_.gpu_stress, spec.freq_mhz, spec.threads,
            carry_temp_c_, bus_, channels_);
      const bool budget = campaign_.has_budget != 0;
      while (!run_->done()) {
        const double t = run_->step();
        maybe_ship_metrics();
        if (kill_due()) {
          die(strings::format("kill cue at t=%.1fs", epoch_elapsed_s()));
          return;
        }
        if (maybe_stall()) return;  // resume this step loop after the window
        if (budget && t >= next_budget_s_ - 1e-9) {
          send_budget_report();
          return;  // resume from the coordinator's reassignment
        }
      }
      all_converged_ &= report_convergence(run_->loop(), spec.duration_s,
                                           "phase '" + spec.name + "'", /*quiet=*/true);
      carry_temp_c_ = run_->final_temp_c();
      run_.reset();
    } else {
      Config phase_cfg = cfg_;
      if (spec.freq_mhz) phase_cfg.sim_freq_mhz = *spec.freq_mhz;
      if (spec.threads) phase_cfg.threads = *spec.threads;
      const SimPhaseResult result =
          run_sim_phase(*system_, phase_cfg, stats_for(*res.fn, spec), *res.profile,
                        spec.duration_s, seed, campaign_time_s, target_.gpu_stress,
                        bus_, channels_, carry_temp_c_);
      carry_temp_c_ = result.final_temp_c
                          ? result.final_temp_c
                          : std::make_optional(advance_thermal_carry(
                                *system_, spec.duration_s, result.mean_power_w,
                                carry_temp_c_));
    }
    maybe_ship_metrics();
    finish_phase();
  } catch (const std::exception& e) {
    fail(e.what());
  }
}

void SimAgent::finish_phase() {
  bus_.end_phase();
  ++phases_ended_;
  if (tracing()) {
    spans_.push_back(trace::Span{"phase:" + phases_->phases()[phase_index_].name,
                                 phase_open_s_, trace::now_s()});
  }
  ++phase_index_;
  if (phase_index_ < phases_->size()) {
    if (tracing()) wait_open_s_ = trace::now_s();
    state_ = State::kAwaitGo;
    wait_ = Wait::kFrame;
    return;
  }
  send_verdict();
}

void SimAgent::send_verdict() {
  bus_.finish();
  // The final metric delta ships before the verdict so the coordinator's
  // folded series equal this node's final registry totals.
  maybe_ship_metrics(/*force=*/true);
  // Span shipment precedes the verdict (the coordinator's "node done"
  // signal) so the merged timeline is complete when the run closes.
  if (tracing()) {
    cluster::TraceSpansMsg spans;
    spans.spans = std::move(spans_);
    conn_.send(spans.encode());
  }
  cluster::VerdictMsg verdict;
  verdict.converged = all_converged_ ? 1 : 0;
  verdict.detail = strings::format("%zu phases on %s", phases_->size(),
                                   target_.sim_config.name.c_str());
  conn_.send(verdict.encode());
  state_ = State::kAwaitShutdown;
  wait_ = Wait::kFrame;
}

void SimAgent::handle_frame(const cluster::Frame& frame) {
  cluster::WireReader reader(frame.payload);
  switch (frame.type) {
    case cluster::MessageType::kSyncProbe: {
      const cluster::SyncProbeMsg probe = cluster::SyncProbeMsg::decode(reader);
      cluster::SyncReplyMsg reply;
      reply.seq = probe.seq;
      reply.t_coord_s = probe.t_coord_s;
      reply.t_agent_s = cluster::local_clock_s();
      conn_.send(reply.encode());
      break;
    }
    case cluster::MessageType::kCampaign:
      campaign_ = cluster::CampaignMsg::decode(reader);
      current_setpoint_w_ = campaign_.initial_setpoint_w;
      have_campaign_ = true;
      if (have_campaign_ && have_epoch_) prepare_campaign();
      break;
    case cluster::MessageType::kEpoch: {
      const cluster::EpochMsg epoch = cluster::EpochMsg::decode(reader);
      epoch_time_ = cluster::to_time_point(epoch.t0_agent_s);
      have_epoch_ = true;
      if (have_campaign_ && have_epoch_) prepare_campaign();
      break;
    }
    case cluster::MessageType::kRejoinAck: {
      const cluster::RejoinAckMsg ack = cluster::RejoinAckMsg::decode(reader);
      if (!await_rejoin_ack_)
        throw cluster::WireError("agent " + node_name_ + ": unsolicited rejoin ack");
      await_rejoin_ack_ = false;
      ack_deadline_ = std::chrono::steady_clock::time_point::max();
      if (ack.accepted == 0)
        throw cluster::WireError("agent " + node_name_ +
                                 ": rejoin refused: " + ack.detail);
      resume_phase_ = ack.resume_phase;
      log::info() << "[" << node_name_ << "] rejoin accepted "
                  << log::kv("resume_phase", ack.resume_phase);
      break;
    }
    case cluster::MessageType::kPhaseGo: {
      const cluster::PhaseGoMsg go = cluster::PhaseGoMsg::decode(reader);
      if (state_ != State::kAwaitGo || go.phase_index != phase_index_)
        throw cluster::WireError(strings::format(
            "agent %s: phase-go for %u while at phase %zu", node_name_.c_str(),
            go.phase_index, phase_index_));
      begin_phase();
      break;
    }
    case cluster::MessageType::kBudgetAssign: {
      const cluster::BudgetAssignMsg assign = cluster::BudgetAssignMsg::decode(reader);
      if (state_ != State::kAwaitAssign || assign.seq + 1 != budget_seq_)
        throw cluster::WireError(
            strings::format("agent %s: unexpected budget assign seq %u",
                            node_name_.c_str(), assign.seq));
      close_wait_span("agent.budget_wait");
      current_setpoint_w_ = assign.setpoint_w;
      run_->loop().set_target(assign.setpoint_w);
      state_ = State::kRunPhase;
      wait_ = Wait::kRun;
      break;
    }
    case cluster::MessageType::kShutdown:
      if (state_ != State::kAwaitShutdown)
        throw cluster::WireError("agent " + node_name_ +
                                 ": coordinator shut the run down early");
      conn_.close();
      state_ = State::kDone;
      wait_ = Wait::kDone;
      break;
    default:
      throw cluster::WireError(std::string("agent ") + node_name_ + ": unexpected " +
                               cluster::to_string(frame.type));
  }
}

void SimAgent::on_readable() {
  if (state_ == State::kDone) return;
  if (maybe_stall()) return;  // frozen: stop reading; frames queue in the kernel
  try {
    cluster::Frame frame;
    // Drain everything available without blocking; each frame may flip the
    // state machine (including to kDone, which closes the socket).
    while (state_ != State::kDone && conn_.recv_into(frame, /*timeout_s=*/0.0))
      handle_frame(frame);
  } catch (const std::exception& e) {
    fail(e.what());
  }
}

void SimAgent::on_time() {
  if (stalled_) {
    // The stall window ended: thaw and pick up where the freeze hit.
    stalled_ = false;
    wait_ = stall_resume_;
    return;
  }
  if (await_rejoin_ack_ && std::chrono::steady_clock::now() >= ack_deadline_) {
    fail("rejoin handshake timed out (coordinator gone or unresponsive)");
    return;
  }
  if (state_ != State::kWaitStart) return;
  try {
    begin_phase();  // phase 0's barrier is the epoch itself
  } catch (const std::exception& e) {
    fail(e.what());
  }
}

// ---- SimFleet ---------------------------------------------------------------

SimFleet::SimFleet(const Config& base, const std::vector<LoopbackSpec>& specs,
                   std::uint16_t port, const cluster::FaultPlan* plan)
    : endpoint_(strings::format("127.0.0.1:%u", port)) {
  if (plan != nullptr) plan_ = *plan;
  agents_.reserve(specs.size());
  configs_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Config cfg = base;
    cfg.coordinator = false;
    cfg.loopback_nodes.reset();
    cfg.campaign_file.reset();
    cfg.target_spec.reset();
    cfg.record_trace.reset();
    cfg.control_log.reset();
    cfg.chaos_spec.reset();
    cfg.measurement = false;
    cfg.require_convergence = false;
    cfg.target = specs[i].target;
    cfg.sim_freq_mhz = specs[i].freq_mhz;
    cfg.node_name = strings::format("n%zu-%s", i, specs[i].name.c_str());
    cfg.seed = base.seed + i + 1;  // decorrelate the nodes' meter noise
    configs_.push_back(cfg);
    agents_.push_back(std::make_unique<SimAgent>(
        std::move(cfg), endpoint_, i, plan_ ? &*plan_ : nullptr));
  }
}

void SimFleet::run() {
  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_agents;
  fds.reserve(agents_.size());
  fd_agents.reserve(agents_.size());

  trace::Counter& iterations = trace::Registry::instance().counter("reactor.poll_iterations");
  trace::Histogram& poll_wait =
      trace::Registry::instance().histogram("reactor.poll_wait_s");
  for (;;) {
    iterations.add();
    TRACE_SPAN("reactor.iteration");

    // Chaos-killed agents respawn as rejoining replacements after a
    // deterministic backoff delay (seeded from the plan, not the clock).
    const Clock::time_point now = Clock::now();
    if (respawn_tries_.size() < agents_.size()) respawn_tries_.resize(agents_.size(), 0);
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      // One respawn per node: the replacement's connect already retries for
      // 30 s, so a second failure means the coordinator is gone for good.
      if (!agents_[i]->killed() || respawn_tries_[i] > 0) continue;
      ++respawn_tries_[i];
      cluster::Backoff::Options bopts;
      bopts.seed = (plan_ ? plan_->seed : 1) * 0x9E3779B97F4A7C15ull + i;
      cluster::Backoff backoff(bopts);
      Respawn rs;
      rs.index = i;
      rs.due = now + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(backoff.next_s()));
      rs.spec.campaign_id = agents_[i]->campaign_id();
      rs.spec.phases_ended = agents_[i]->phases_ended();
      respawns_.push_back(rs);
    }
    for (std::size_t r = 0; r < respawns_.size();) {
      if (now < respawns_[r].due) {
        ++r;
        continue;
      }
      const Respawn rs = respawns_[r];
      respawns_.erase(respawns_.begin() + r);
      try {
        agents_[rs.index] = std::make_unique<SimAgent>(
            configs_[rs.index], endpoint_, rs.index,
            plan_ ? &*plan_ : nullptr, rs.spec);
      } catch (const std::exception& e) {
        // Dial failed even after the connect retries: the dead incarnation
        // stays in the slot and the outcome reports the crash.
        log::warn() << "[fleet] respawn of " << configs_[rs.index].node_name.value_or("?")
                    << " failed: " << e.what();
      }
    }

    // Drain chaos-delayed frames that have come due, and learn how soon the
    // next one is due so the poll timeout never overshoots it.
    double pending_due_s = 0.0;
    for (auto& agent : agents_) {
      const double due = agent->flush_pending();
      if (due > 0.0)
        pending_due_s = pending_due_s == 0.0 ? due : std::min(pending_due_s, due);
    }

    fds.clear();
    fd_agents.clear();
    bool alive = !respawns_.empty();
    bool runnable = false;
    bool wake_pending = false;
    Clock::time_point next_wake = Clock::time_point::max();
    for (const Respawn& r : respawns_) {
      next_wake = std::min(next_wake, r.due);
      wake_pending = true;
    }
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      switch (agents_[i]->wait()) {
        case SimAgent::Wait::kDone:
          continue;
        case SimAgent::Wait::kFrame:
          fds.push_back(pollfd{agents_[i]->fd(), POLLIN, 0});
          fd_agents.push_back(i);
          if (agents_[i]->frame_deadline() != Clock::time_point::max()) {
            next_wake = std::min(next_wake, agents_[i]->frame_deadline());
            wake_pending = true;
          }
          break;
        case SimAgent::Wait::kUntil:
          next_wake = std::min(next_wake, agents_[i]->wake_time());
          wake_pending = true;
          break;
        case SimAgent::Wait::kRun:
          runnable = true;
          break;
      }
      alive = true;
    }
    if (!alive) break;

    int timeout_ms = 600000;  // the coordinator's stall guard, mirrored
    if (runnable) {
      timeout_ms = 0;
    } else if (wake_pending) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_wake - Clock::now());
      timeout_ms = static_cast<int>(std::clamp<long long>(until.count(), 0, 600000));
    }
    if (pending_due_s > 0.0)
      timeout_ms = std::min(timeout_ms,
                            static_cast<int>(pending_due_s * 1000.0) + 1);
    const Clock::time_point poll_begin = Clock::now();
    const int ready =
        ::poll(fds.empty() ? nullptr : fds.data(), fds.size(), timeout_ms);
    poll_wait.record(
        std::chrono::duration<double>(Clock::now() - poll_begin).count());
    if (ready < 0) {
      if (errno == EINTR) continue;
      for (auto& agent : agents_)
        if (agent->wait() != SimAgent::Wait::kDone) agent->on_readable();
      break;
    }
    if (ready == 0 && !runnable && !wake_pending && pending_due_s == 0.0) {
      // Nothing runnable, nothing due, and 600 s of silence: mirror the
      // coordinator's stall verdict instead of spinning forever.
      for (std::size_t i = 0; i < agents_.size(); ++i)
        if (agents_[i]->wait() == SimAgent::Wait::kFrame)
          agents_[i]->on_readable();  // surfaces the disconnect, if any
      break;
    }

    // Epoch wakes and barrier releases first — every agent's begin bracket
    // hits the wire before any agent starts its phase compute.
    if (wake_pending) {
      const Clock::time_point wake_now = Clock::now();
      for (auto& agent : agents_) {
        if (agent->wait() == SimAgent::Wait::kUntil && wake_now >= agent->wake_time())
          agent->on_time();
        else if (agent->wait() == SimAgent::Wait::kFrame &&
                 wake_now >= agent->frame_deadline())
          agent->on_time();  // rejoin-ack deadline expired
      }
    }
    if (ready > 0)
      for (std::size_t k = 0; k < fds.size(); ++k)
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
          agents_[fd_agents[k]]->on_readable();
    for (auto& agent : agents_)
      if (agent->wait() == SimAgent::Wait::kRun) agent->advance();
  }

  outcomes_.clear();
  for (const auto& agent : agents_) {
    Outcome outcome;
    outcome.name = agent->name();
    // A killed() final incarnation means the respawn never made it back —
    // the crash went unrecovered, which is a failure.
    outcome.ok = !agent->failed() && !agent->killed() &&
                 agent->wait() == SimAgent::Wait::kDone;
    outcome.error = agent->error();
    if (!outcome.ok && outcome.error.empty())
      outcome.error = agent->killed() ? "chaos-killed, never rejoined" : "fleet stalled";
    outcomes_.push_back(std::move(outcome));
  }
}

bool SimFleet::all_ok() const {
  for (const Outcome& outcome : outcomes_) {
    if (!outcome.ok) return false;
  }
  return true;
}

}  // namespace fs2::firestarter
