#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/messages.hpp"
#include "cluster/remote_sink.hpp"
#include "cluster/transport.hpp"
#include "firestarter/sim_phases.hpp"
#include "payload/compiler.hpp"
#include "sched/campaign.hpp"
#include "telemetry/sinks.hpp"
#include "trace/metric_delta.hpp"
#include "trace/registry.hpp"
#include "trace/trace_event.hpp"

namespace fs2::firestarter {

/// One entry of a --loopback fleet spec: "zen2@1500" = a simulated Zen 2
/// agent pinned to 1500 MHz; "zen2@1500x256" = 256 of them. Loopback
/// agents are sim-only — two host stress runs inside one process would
/// fight over the same CPUs and measure each other.
struct LoopbackSpec {
  TargetSystem target = TargetSystem::kSimZen2;
  double freq_mhz = 0.0;
  std::string name;
};

/// Parse a --loopback spec list, expanding count multipliers:
/// `sku[@FREQ][xCOUNT]`, comma-separated. Throws ConfigError on malformed
/// specs, host entries, or fleets larger than kMaxLoopbackNodes.
std::vector<LoopbackSpec> parse_loopback_specs(const std::string& list);

/// Upper bound on one process's loopback fleet (file descriptors: agent +
/// coordinator side per node).
inline constexpr std::size_t kMaxLoopbackNodes = 4096;

/// Best-effort bump of the open-file soft limit to at least `need` (large
/// loopback fleets hold two fds per node in one process). Never throws —
/// if the hard limit is lower, socket creation will fail with a precise
/// errno anyway.
void raise_fd_limit(std::size_t need);

/// One in-process simulated agent driven by the fleet's event loop instead
/// of a dedicated thread: a cooperative state machine that connects, says
/// hello, answers sync probes, takes the campaign and epoch, then runs the
/// campaign's phases in virtual time — yielding back to the loop wherever
/// the protocol would block (phase-go barriers, budget reassignments, the
/// shared epoch, shutdown).
class SimAgent {
 public:
  /// What the agent is blocked on.
  enum class Wait {
    kFrame,  ///< a coordinator frame (poll the socket)
    kUntil,  ///< a point in time (the shared epoch)
    kRun,    ///< nothing — runnable; the loop should advance the phase
    kDone,   ///< finished (cleanly or with error())
  };

  /// Connects and sends hello immediately (the coordinator's sequential
  /// handshake finds every agent already dialed in).
  SimAgent(Config cfg, const std::string& endpoint, std::size_t index);

  Wait wait() const { return wait_; }
  int fd() const { return conn_.fd(); }
  std::chrono::steady_clock::time_point wake_time() const { return epoch_time_; }
  const std::string& name() const { return node_name_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Drain and handle every frame the socket has ready. Cheap: protocol
  /// transitions only (sync replies, begin brackets on phase-go, budget
  /// retunes) — phase computation happens in advance(), so a broadcast
  /// reaches the whole fleet before any node starts burning virtual time
  /// (keeping begin-bracket spreads tight).
  void on_readable();

  /// The epoch arrived: open phase 0.
  void on_time();

  /// Run the current phase until it blocks (budget exchange pending) or
  /// completes (end bracket sent, next phase awaited / verdict sent).
  void advance();

 private:
  enum class State {
    kHandshake,
    kWaitStart,
    kRunPhase,
    kAwaitAssign,
    kAwaitGo,
    kAwaitShutdown,
    kDone,
  };

  struct ResolvedPhase {
    const payload::FunctionDef* fn = nullptr;
    sched::ProfilePtr profile;
    std::optional<control::Setpoint> setpoint;
  };

  void handle_frame(const cluster::Frame& frame);
  void prepare_campaign();
  void begin_phase();
  void finish_phase();
  void send_budget_report();
  void fail(const std::string& what);
  /// Ship one kMetricUpdate delta from this agent's PRIVATE registry when
  /// the wall-clock cadence is due (`force` flushes regardless — the final
  /// delta before the verdict). Hundreds of loopback agents share the
  /// process, so the global registry cannot carry per-node series.
  void maybe_ship_metrics(bool force = false);
  double epoch_elapsed_s() const;
  bool tracing() const { return campaign_.trace_enabled != 0; }
  /// Close the open barrier/budget wait span (no-op when none is open).
  void close_wait_span(const char* name);
  /// Analyzed stats for the phase's workload, cached by (function, groups,
  /// unroll) — fuzz campaigns give every phase its own pattern, so the
  /// cache key must cover the per-phase overrides, not just the function.
  const payload::PayloadStats& stats_for(const payload::FunctionDef& fn,
                                         const sched::CampaignPhase& spec);

  Config cfg_;
  std::string node_name_;
  cluster::Connection conn_;
  State state_ = State::kHandshake;
  Wait wait_ = Wait::kFrame;
  bool failed_ = false;
  std::string error_;

  // Handshake results.
  bool have_campaign_ = false;
  bool have_epoch_ = false;
  cluster::CampaignMsg campaign_;
  std::chrono::steady_clock::time_point epoch_time_;

  // Campaign state (valid after prepare_campaign()).
  Target target_;
  std::unique_ptr<sim::SimulatedSystem> system_;
  std::optional<sched::Campaign> phases_;
  std::vector<ResolvedPhase> resolved_;
  telemetry::TelemetryBus bus_;
  std::unique_ptr<cluster::RemoteSink> sink_;
  SimChannels channels_;
  std::map<std::string, payload::PayloadStats> stats_cache_;

  // Phase-run state.
  std::size_t phase_index_ = 0;
  std::unique_ptr<ControlledSimPhaseRun> run_;
  std::optional<double> carry_temp_c_;
  double current_setpoint_w_ = 0.0;
  double next_budget_s_ = 0.0;
  std::uint32_t budget_seq_ = 0;
  bool all_converged_ = true;

  // Live metrics plane: a per-agent registry (the process-global one is
  // shared by the whole loopback fleet and the coordinator) plus the delta
  // tracker that turns it into incremental kMetricUpdate frames.
  trace::Registry metrics_;
  trace::MetricDeltaTracker metrics_tracker_{metrics_};
  double next_metrics_s_ = 0.0;
  std::uint32_t metrics_seq_ = 0;

  // Observability (campaign_.trace_enabled): an EXPLICIT per-agent span
  // buffer. Hundreds of loopback agents share one reactor thread, so the
  // global thread-local tracer cannot attribute spans per node; phase and
  // wait boundaries are cold, so owned-string spans are fine here.
  std::vector<trace::Span> spans_;
  double phase_open_s_ = 0.0;  ///< begin of the running phase span
  double wait_open_s_ = 0.0;   ///< begin of the open barrier/budget wait (0 = none)
};

/// Drives a whole --loopback fleet of SimAgents from ONE thread: a poll(2)
/// loop over every agent's socket plus a run queue for agents with phase
/// work pending. Replaces the thread-per-agent design, whose per-node
/// stacks and context-switch storms capped fleets at a few dozen nodes —
/// 512 loopback agents fit in one process and one scheduler entity, which
/// is what lets CI exercise the coordinator at fleet scale.
class SimFleet {
 public:
  /// `base` is the coordinator's Config; per-agent copies are derived the
  /// same way the old thread-per-agent path derived them (target/freq from
  /// the spec, decorrelated seeds, cluster flags stripped).
  SimFleet(const Config& base, const std::vector<LoopbackSpec>& specs,
           std::uint16_t port);

  /// Run every agent to completion (call on a dedicated thread while the
  /// coordinator runs on the caller's). Never throws — per-agent failures
  /// are recorded.
  void run();

  struct Outcome {
    std::string name;
    bool ok = true;
    std::string error;
  };
  const std::vector<Outcome>& outcomes() const { return outcomes_; }
  bool all_ok() const;

 private:
  std::vector<std::unique_ptr<SimAgent>> agents_;
  std::vector<Outcome> outcomes_;
};

}  // namespace fs2::firestarter
