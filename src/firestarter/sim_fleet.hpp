#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/fault_injection.hpp"
#include "cluster/messages.hpp"
#include "cluster/remote_sink.hpp"
#include "cluster/transport.hpp"
#include "firestarter/sim_phases.hpp"
#include "payload/compiler.hpp"
#include "sched/campaign.hpp"
#include "telemetry/sinks.hpp"
#include "trace/metric_delta.hpp"
#include "trace/registry.hpp"
#include "trace/trace_event.hpp"

namespace fs2::firestarter {

/// One entry of a --loopback fleet spec: "zen2@1500" = a simulated Zen 2
/// agent pinned to 1500 MHz; "zen2@1500x256" = 256 of them. Loopback
/// agents are sim-only — two host stress runs inside one process would
/// fight over the same CPUs and measure each other.
struct LoopbackSpec {
  TargetSystem target = TargetSystem::kSimZen2;
  double freq_mhz = 0.0;
  std::string name;
};

/// Parse a --loopback spec list, expanding count multipliers:
/// `sku[@FREQ][xCOUNT]`, comma-separated. Throws ConfigError on malformed
/// specs, host entries, or fleets larger than kMaxLoopbackNodes.
std::vector<LoopbackSpec> parse_loopback_specs(const std::string& list);

/// Upper bound on one process's loopback fleet (file descriptors: agent +
/// coordinator side per node).
inline constexpr std::size_t kMaxLoopbackNodes = 4096;

/// Best-effort bump of the open-file soft limit to at least `need` (large
/// loopback fleets hold two fds per node in one process). Never throws —
/// if the hard limit is lower, socket creation will fail with a precise
/// errno anyway.
void raise_fd_limit(std::size_t need);

/// One in-process simulated agent driven by the fleet's event loop instead
/// of a dedicated thread: a cooperative state machine that connects, says
/// hello, answers sync probes, takes the campaign and epoch, then runs the
/// campaign's phases in virtual time — yielding back to the loop wherever
/// the protocol would block (phase-go barriers, budget reassignments, the
/// shared epoch, shutdown).
class SimAgent {
 public:
  /// What the agent is blocked on.
  enum class Wait {
    kFrame,  ///< a coordinator frame (poll the socket)
    kUntil,  ///< a point in time (the shared epoch)
    kRun,    ///< nothing — runnable; the loop should advance the phase
    kDone,   ///< finished (cleanly or with error())
  };

  /// A respawned agent's credentials: instead of hello it presents kRejoin
  /// with these and resumes the campaign where its predecessor died.
  struct RejoinSpec {
    std::uint64_t campaign_id = 0;
    std::uint32_t phases_ended = 0;
  };

  /// Connects and sends hello immediately (the coordinator's handshake
  /// finds every agent already dialed in) — or, when `rejoin` is set, sends
  /// the rejoin handshake of a crashed agent's replacement. `plan` (may be
  /// null) arms this agent's link faults; kill/stall cues fire once per run
  /// and are not re-armed on a rejoined incarnation.
  SimAgent(Config cfg, const std::string& endpoint, std::size_t index,
           const cluster::FaultPlan* plan = nullptr,
           std::optional<RejoinSpec> rejoin = std::nullopt);

  Wait wait() const { return wait_; }
  int fd() const { return conn_.fd(); }
  std::chrono::steady_clock::time_point wake_time() const { return wake_time_; }
  /// While a kFrame wait has a deadline (the rejoin-ack wait: a coordinator
  /// that finished or wedged would otherwise strand the replacement
  /// forever), the time at which the wait gives up; time_point::max()
  /// otherwise. The fleet folds this into its poll timeout and calls
  /// on_time() past it.
  std::chrono::steady_clock::time_point frame_deadline() const { return ack_deadline_; }
  const std::string& name() const { return node_name_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// A chaos kill cue fired: the agent dropped its socket without ceremony
  /// and the fleet should spawn a rejoining replacement.
  bool killed() const { return killed_; }
  std::uint64_t campaign_id() const { return campaign_.campaign_id; }
  std::uint32_t phases_ended() const { return phases_ended_; }

  /// Write any delay-held frames that have come due; returns seconds until
  /// the next held frame (0 = none pending). The fleet calls this every
  /// iteration and bounds its poll timeout by the result, so chaos-delayed
  /// frames drain even while the agent itself is blocked.
  double flush_pending();

  /// Drain and handle every frame the socket has ready. Cheap: protocol
  /// transitions only (sync replies, begin brackets on phase-go, budget
  /// retunes) — phase computation happens in advance(), so a broadcast
  /// reaches the whole fleet before any node starts burning virtual time
  /// (keeping begin-bracket spreads tight).
  void on_readable();

  /// The epoch arrived: open phase 0.
  void on_time();

  /// Run the current phase until it blocks (budget exchange pending) or
  /// completes (end bracket sent, next phase awaited / verdict sent).
  void advance();

 private:
  enum class State {
    kHandshake,
    kWaitStart,
    kRunPhase,
    kAwaitAssign,
    kAwaitGo,
    kAwaitShutdown,
    kDone,
  };

  struct ResolvedPhase {
    const payload::FunctionDef* fn = nullptr;
    sched::ProfilePtr profile;
    std::optional<control::Setpoint> setpoint;
  };

  void handle_frame(const cluster::Frame& frame);
  void prepare_campaign();
  void begin_phase();
  void finish_phase();
  /// Final metrics flush + span ship + convergence verdict; await shutdown.
  void send_verdict();
  void send_budget_report();
  void fail(const std::string& what);
  /// Chaos kill: drop the socket without ceremony (mid-stream, as a real
  /// crash would) and mark this incarnation dead so the fleet respawns a
  /// rejoining replacement.
  void die(const std::string& why);
  /// True when the kill cue is due at the current point (phase begin or
  /// epoch-elapsed time).
  bool kill_due() const;
  /// Arm the stall window if its cue time has passed: the agent stops
  /// reading and writing (socket stays open) until the window ends.
  bool maybe_stall();
  /// Ship one kMetricUpdate delta from this agent's PRIVATE registry when
  /// the wall-clock cadence is due (`force` flushes regardless — the final
  /// delta before the verdict). Hundreds of loopback agents share the
  /// process, so the global registry cannot carry per-node series.
  void maybe_ship_metrics(bool force = false);
  double epoch_elapsed_s() const;
  bool tracing() const { return campaign_.trace_enabled != 0; }
  /// Close the open barrier/budget wait span (no-op when none is open).
  void close_wait_span(const char* name);
  /// Analyzed stats for the phase's workload, cached by (function, groups,
  /// unroll) — fuzz campaigns give every phase its own pattern, so the
  /// cache key must cover the per-phase overrides, not just the function.
  const payload::PayloadStats& stats_for(const payload::FunctionDef& fn,
                                         const sched::CampaignPhase& spec);

  Config cfg_;
  std::string node_name_;
  cluster::Connection conn_;
  State state_ = State::kHandshake;
  Wait wait_ = Wait::kFrame;
  bool failed_ = false;
  std::string error_;

  // Chaos plumbing. The LinkFaults injector must outlive the connection
  // that points at it, so the agent owns it by value.
  std::optional<cluster::LinkFaults> faults_;
  std::optional<cluster::KillCue> kill_cue_;
  std::optional<cluster::StallCue> stall_cue_;
  bool killed_ = false;
  bool stall_fired_ = false;
  bool stalled_ = false;
  Wait stall_resume_ = Wait::kRun;  ///< wait to restore when the stall ends
  std::uint32_t phases_ended_ = 0;

  // Rejoin mode (replacement incarnation of a killed agent).
  std::optional<RejoinSpec> rejoin_;
  bool await_rejoin_ack_ = false;
  std::uint32_t resume_phase_ = 0;
  /// Deadline on the rejoin-ack wait; max() once the ack (or refusal) is in.
  std::chrono::steady_clock::time_point ack_deadline_ =
      std::chrono::steady_clock::time_point::max();

  // Handshake results.
  bool have_campaign_ = false;
  bool have_epoch_ = false;
  cluster::CampaignMsg campaign_;
  std::chrono::steady_clock::time_point epoch_time_;
  /// What a Wait::kUntil is waiting for: the shared epoch, or the end of a
  /// chaos stall window.
  std::chrono::steady_clock::time_point wake_time_;

  // Campaign state (valid after prepare_campaign()).
  Target target_;
  std::unique_ptr<sim::SimulatedSystem> system_;
  std::optional<sched::Campaign> phases_;
  std::vector<ResolvedPhase> resolved_;
  telemetry::TelemetryBus bus_;
  std::unique_ptr<cluster::RemoteSink> sink_;
  SimChannels channels_;
  std::map<std::string, payload::PayloadStats> stats_cache_;

  // Phase-run state.
  std::size_t phase_index_ = 0;
  std::unique_ptr<ControlledSimPhaseRun> run_;
  std::optional<double> carry_temp_c_;
  double current_setpoint_w_ = 0.0;
  double next_budget_s_ = 0.0;
  std::uint32_t budget_seq_ = 0;
  bool all_converged_ = true;

  // Live metrics plane: a per-agent registry (the process-global one is
  // shared by the whole loopback fleet and the coordinator) plus the delta
  // tracker that turns it into incremental kMetricUpdate frames.
  trace::Registry metrics_;
  trace::MetricDeltaTracker metrics_tracker_{metrics_};
  double next_metrics_s_ = 0.0;
  std::uint32_t metrics_seq_ = 0;

  // Observability (campaign_.trace_enabled): an EXPLICIT per-agent span
  // buffer. Hundreds of loopback agents share one reactor thread, so the
  // global thread-local tracer cannot attribute spans per node; phase and
  // wait boundaries are cold, so owned-string spans are fine here.
  std::vector<trace::Span> spans_;
  double phase_open_s_ = 0.0;  ///< begin of the running phase span
  double wait_open_s_ = 0.0;   ///< begin of the open barrier/budget wait (0 = none)
};

/// Drives a whole --loopback fleet of SimAgents from ONE thread: a poll(2)
/// loop over every agent's socket plus a run queue for agents with phase
/// work pending. Replaces the thread-per-agent design, whose per-node
/// stacks and context-switch storms capped fleets at a few dozen nodes —
/// 512 loopback agents fit in one process and one scheduler entity, which
/// is what lets CI exercise the coordinator at fleet scale.
class SimFleet {
 public:
  /// `base` is the coordinator's Config; per-agent copies are derived the
  /// same way the old thread-per-agent path derived them (target/freq from
  /// the spec, decorrelated seeds, cluster flags stripped). `plan` (may be
  /// null; copied) arms each agent's chaos faults and cues.
  SimFleet(const Config& base, const std::vector<LoopbackSpec>& specs,
           std::uint16_t port, const cluster::FaultPlan* plan = nullptr);

  /// Run every agent to completion (call on a dedicated thread while the
  /// coordinator runs on the caller's). Never throws — per-agent failures
  /// are recorded. Chaos-killed agents are respawned after a deterministic
  /// backoff delay as rejoining replacements; the outcome row reflects the
  /// final incarnation.
  void run();

  struct Outcome {
    std::string name;
    bool ok = true;
    std::string error;
  };
  const std::vector<Outcome>& outcomes() const { return outcomes_; }
  bool all_ok() const;

 private:
  /// A killed agent waiting for its replacement to dial back in.
  struct Respawn {
    std::size_t index = 0;
    std::chrono::steady_clock::time_point due;
    SimAgent::RejoinSpec spec;
  };

  std::string endpoint_;
  std::optional<cluster::FaultPlan> plan_;
  std::vector<Config> configs_;  ///< per-agent configs, kept for respawns
  std::vector<std::unique_ptr<SimAgent>> agents_;
  std::vector<Respawn> respawns_;
  std::vector<std::uint32_t> respawn_tries_;  ///< one respawn per node, ever
  std::vector<Outcome> outcomes_;
};

}  // namespace fs2::firestarter
