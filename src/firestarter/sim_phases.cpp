#include "firestarter/sim_phases.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::firestarter {

Target resolve_target(const Config& cfg) {
  Target target;
  switch (cfg.target) {
    case TargetSystem::kHost:
      target.cpu = arch::detect_host();
      target.caches = arch::CacheHierarchy::from_sysfs();
      break;
    case TargetSystem::kSimZen2:
      target.cpu = arch::epyc_7502_model();
      target.caches = arch::CacheHierarchy::zen2();
      target.sim_config = sim::MachineConfig::named("zen2");
      target.simulated = true;
      break;
    case TargetSystem::kSimHaswell:
    case TargetSystem::kSimHaswellGpu:
      target.cpu = arch::xeon_e5_2680v3_model();
      target.caches = arch::CacheHierarchy::haswell_ep();
      target.sim_config = sim::MachineConfig::named(
          cfg.target == TargetSystem::kSimHaswellGpu ? "haswell-gpu" : "haswell");
      target.simulated = true;
      target.gpu_stress = cfg.target == TargetSystem::kSimHaswellGpu;
      break;
  }
  return target;
}

payload::DataInitPolicy policy_of(const Config& cfg) {
  return cfg.v174_bug_mode ? payload::DataInitPolicy::kV174InfinityBug
                           : payload::DataInitPolicy::kSafe;
}

TrimDeltas phase_deltas(const Config& cfg, double duration_s) {
  return TrimDeltas{std::min(cfg.start_delta_s, 0.25 * duration_s),
                    std::min(cfg.stop_delta_s, 0.25 * duration_s)};
}

SimChannels register_sim_channels(telemetry::TelemetryBus& bus, bool with_temp,
                                  bool trimmed_aux, bool summarize_load) {
  const telemetry::TrimMode aux =
      trimmed_aux ? telemetry::TrimMode::kPhase : telemetry::TrimMode::kNone;
  SimChannels ch;
  ch.power = bus.channel("sim-wall-power", "W");
  ch.ipc = bus.channel("sim-perf-ipc", "instructions/cycle", aux);
  ch.load = bus.channel(kLoadChannel, "fraction", aux, summarize_load);
  if (with_temp) {
    ch.temp = bus.channel("sim-package-temp", "degC");
    ch.has_temp = true;
  }
  return ch;
}

SimPhaseResult run_sim_phase(const sim::SimulatedSystem& system, const Config& cfg,
                             const payload::PayloadStats& stats,
                             const sched::LoadProfile& profile, double duration_s,
                             std::uint64_t seed, double warm_start_s, bool gpu_stress,
                             telemetry::TelemetryBus& bus, const SimChannels& ch,
                             std::optional<double> initial_temp_c) {
  sim::RunConditions cond;
  cond.freq_mhz = cfg.sim_freq_mhz;
  cond.policy = policy_of(cfg);
  cond.gpu_stress = gpu_stress;
  if (cfg.threads) cond.threads = *cfg.threads;

  SimPhaseResult result;
  result.point = system.simulator().run(stats, cond);
  sim::PowerTraceStream trace(system.simulator(), result.point, cfg.sim_sample_hz, seed,
                              warm_start_s);
  const double idle_w = system.simulator().idle().power_w;
  result.samples = static_cast<std::size_t>(duration_s * cfg.sim_sample_hz);
  double power_sum = 0.0;
  // Chunked batch publish: one virtual dispatch per sink per ~1k samples
  // instead of per sample — memory stays O(chunk), and the per-channel
  // sample sequences (hence every summary) are identical to per-sample
  // publishing.
  constexpr std::size_t kChunk = 1024;
  std::vector<telemetry::Sample> power_chunk, ipc_chunk, load_chunk, temp_chunk;
  power_chunk.reserve(kChunk);
  ipc_chunk.reserve(kChunk);
  load_chunk.reserve(kChunk);
  if (ch.has_temp) temp_chunk.reserve(kChunk);
  // First-order thermal integration per sample when the temp channel is
  // on: each step settles toward the current (noisy) wall power's steady
  // state by the same RC law the PowerPlant uses, so the open-loop temp
  // trace matches what a controlled phase at the same power would show.
  const sim::ThermalParams& th = system.simulator().config().thermal;
  const double dt = cfg.sim_sample_hz > 0.0 ? 1.0 / cfg.sim_sample_hz : 0.0;
  const double settle = dt > 0.0 ? 1.0 - std::exp(-dt / th.tau_s) : 0.0;
  double temp_c = initial_temp_c.value_or(th.ambient_c + th.c_per_w * idle_w);
  for (std::size_t at = 0; at < result.samples; at += kChunk) {
    const std::size_t n = std::min(kChunk, result.samples - at);
    power_chunk.clear();
    ipc_chunk.clear();
    load_chunk.clear();
    temp_chunk.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const double t = trace.time_at(at + i);
      const double level = clamp01(profile.load_at(t));
      const double watts = idle_w + level * (trace.next() - idle_w);
      power_chunk.push_back(telemetry::Sample{t, watts});
      ipc_chunk.push_back(telemetry::Sample{t, result.point.ipc_per_core * level});
      load_chunk.push_back(telemetry::Sample{t, level});
      if (ch.has_temp) {
        temp_c += settle * (th.ambient_c + th.c_per_w * watts - temp_c);
        temp_chunk.push_back(telemetry::Sample{t, temp_c});
      }
      power_sum += watts;
    }
    bus.publish_batch(ch.power, power_chunk);
    bus.publish_batch(ch.ipc, ipc_chunk);
    bus.publish_batch(ch.load, load_chunk);
    if (ch.has_temp) bus.publish_batch(ch.temp, temp_chunk);
  }
  if (result.samples > 0)
    result.mean_power_w = power_sum / static_cast<double>(result.samples);
  if (ch.has_temp) result.final_temp_c = temp_c;
  return result;
}

ControlledSimPhaseRun::ControlledSimPhaseRun(
    const sim::SimulatedSystem& system, const Config& cfg,
    const payload::PayloadStats& stats, const control::Setpoint& sp, double duration_s,
    std::uint64_t seed, double warm_start_s, bool gpu_stress,
    std::optional<double> freq_override, std::optional<int> threads_override,
    std::optional<double> initial_temp_c, telemetry::TelemetryBus& bus,
    const SimChannels& ch)
    : cfg_(cfg),
      duration_s_(duration_s),
      dt_(sp.interval_s),
      point_([&] {
        sp.validate_duration(duration_s, "closed-loop phase");
        sim::RunConditions cond;
        cond.freq_mhz = freq_override ? *freq_override : cfg.sim_freq_mhz;
        cond.policy = policy_of(cfg);
        cond.gpu_stress = gpu_stress;
        if (threads_override) cond.threads = *threads_override;
        else if (cfg.threads) cond.threads = *cfg.threads;
        return system.simulator().run(stats, cond);
      }()),
      plant_(system.simulator(), point_, seed, warm_start_s, /*noise=*/true,
             initial_temp_c),
      bus_(bus),
      ch_(ch) {
  double scale, feed_forward;
  if (sp.variable == control::ControlVariable::kPower) {
    scale = plant_.power_span_w();
    feed_forward = (sp.value - plant_.idle_power_w()) / scale;
  } else {
    scale = plant_.temp_span_c();
    feed_forward = (sp.value - plant_.steady_temp_c(plant_.idle_power_w())) / scale;
  }
  profile_ = std::make_shared<control::ControlledProfile>(clamp01(feed_forward));
  loop_ = std::make_unique<control::FeedbackLoop>(sp, profile_, scale,
                                                  clamp01(feed_forward));
  loop_->attach_bus(&bus_);
}

bool ControlledSimPhaseRun::done() const {
  return plant_.state().time_s + dt_ > duration_s_ + 1e-9;
}

double ControlledSimPhaseRun::step() {
  const sim::PowerPlant::State& st = plant_.step(profile_->level(), dt_);
  const double measurement = loop_->setpoint().variable == control::ControlVariable::kPower
                                 ? st.power_w
                                 : st.temp_c;
  // Plant state first, controller tick second: summary rows come out in
  // first-sample order, measurements before the ctl block.
  bus_.publish(ch_.power, st.time_s, st.power_w);
  bus_.publish(ch_.ipc, st.time_s, point_.ipc_per_core * st.level);
  // The level was applied over [time_s - dt, time_s]; stamp it at the
  // interval *start* so a recorded trace replays each duty-cycle edge at
  // the moment it originally happened, not one tick late (and so the
  // feed-forward level of the first interval is part of the record).
  bus_.publish(ch_.load, st.time_s - dt_, st.level);
  if (ch_.has_temp) bus_.publish(ch_.temp, st.time_s, st.temp_c);
  loop_->tick(st.time_s, measurement);
  return st.time_s;
}

ControlledSimPhase run_sim_controlled_phase(
    const sim::SimulatedSystem& system, const Config& cfg,
    const payload::PayloadStats& stats, const control::Setpoint& sp, double duration_s,
    std::uint64_t seed, double warm_start_s, bool gpu_stress,
    std::optional<double> freq_override, std::optional<int> threads_override,
    std::optional<double> initial_temp_c, telemetry::TelemetryBus& bus,
    const SimChannels& ch, cluster::AgentSession* session) {
  ControlledSimPhaseRun run(system, cfg, stats, sp, duration_s, seed, warm_start_s,
                            gpu_stress, freq_override, threads_override, initial_temp_c,
                            bus, ch);
  while (!run.done()) {
    const double t = run.step();
    // Cluster budget round: report the trailing achieved watts and retune
    // the loop to the coordinator's reapportioned share. Virtual time
    // pauses for the round trip, so the exchange is deterministic.
    if (session != nullptr && session->budget_due(t))
      session->budget_exchange(t, run.loop());
    // Live metrics ride the same loop at wall-clock cadence — the plane
    // stays fresh even when virtual time outpaces real time.
    if (session != nullptr && session->metrics_due()) session->ship_metrics();
  }
  ControlledSimPhase phase;
  phase.point = run.point();
  phase.final_temp_c = run.final_temp_c();
  phase.profile = run.take_profile();
  phase.loop = run.take_loop();
  return phase;
}

double convergence_window_s(const control::FeedbackLoop& loop, double duration_s) {
  return std::min(std::max(4.0 * loop.setpoint().interval_s, 0.25 * duration_s),
                  control::FeedbackLoop::kMaxConvergenceWindowS);
}

bool report_convergence(const control::FeedbackLoop& loop, double duration_s,
                        const std::string& label, bool quiet) {
  const double window = convergence_window_s(loop, duration_s);
  const bool converged = loop.converged(window);
  if (quiet) return converged;
  const double achieved = loop.trailing_mean(window);
  const control::Setpoint& sp = loop.setpoint();
  if (converged)
    log::info() << label << ": converged to "
                << strings::format("%.1f %s (target %g +-%g %%)", achieved,
                                   control::unit_of(sp.variable), sp.value, sp.band * 100.0);
  else
    log::warn() << label << ": NOT converged — trailing mean "
                << strings::format("%.1f %s vs target %g +-%g %%", achieved,
                                   control::unit_of(sp.variable), sp.value, sp.band * 100.0);
  return converged;
}

double advance_thermal_carry(const sim::SimulatedSystem& system, double duration_s,
                             double mean_power_w, std::optional<double> carry_temp_c) {
  const sim::ThermalParams& th = system.simulator().config().thermal;
  const double steady = th.ambient_c + th.c_per_w * mean_power_w;
  const double prev = carry_temp_c.value_or(
      th.ambient_c + th.c_per_w * system.simulator().idle().power_w);
  return steady + (prev - steady) * std::exp(-duration_s / th.tau_s);
}

}  // namespace fs2::firestarter
