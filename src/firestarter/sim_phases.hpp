#pragma once

#include <memory>
#include <optional>

#include "arch/cache.hpp"
#include "arch/processor.hpp"
#include "cluster/agent.hpp"
#include "control/controlled_profile.hpp"
#include "control/feedback_loop.hpp"
#include "control/setpoint.hpp"
#include "firestarter/config.hpp"
#include "payload/data.hpp"
#include "payload/mix.hpp"
#include "sched/load_profile.hpp"
#include "sim/machine_config.hpp"
#include "sim/plant.hpp"
#include "sim/sim_system.hpp"
#include "telemetry/bus.hpp"

namespace fs2::firestarter {

/// Machine description for the selected target. Shared by every run mode
/// (single runs, campaigns, the loopback fleet's in-process sim agents).
struct Target {
  arch::ProcessorModel cpu;
  arch::CacheHierarchy caches;
  sim::MachineConfig sim_config;  // meaningful for simulator targets only
  bool simulated = false;
  bool gpu_stress = false;
};

Target resolve_target(const Config& cfg);

/// The achieved duty-cycle channel every run mode publishes; --record-trace
/// and the load-level summary rows both hang off it.
inline constexpr const char* kLoadChannel = "load-level";

payload::DataInitPolicy policy_of(const Config& cfg);

inline double clamp01(double value) { return std::min(std::max(value, 0.0), 1.0); }

/// Effective trim deltas for a phase of `duration_s`: honor the configured
/// --start/--stop deltas but never let them eat a short phase (campaign
/// phases are often a few seconds; the paper's 5 s/2 s defaults assume
/// multi-minute runs). An infinite duration disables the clamp — that case
/// is a single run where the user set the deltas deliberately.
struct TrimDeltas {
  double start_s = 0.0;
  double stop_s = 0.0;
};

TrimDeltas phase_deltas(const Config& cfg, double duration_s);

/// The channels a simulated phase publishes, registered once per run so
/// every phase's summary rows come out in the same stable order.
struct SimChannels {
  telemetry::ChannelId power = 0;
  telemetry::ChannelId ipc = 0;
  telemetry::ChannelId load = 0;
  telemetry::ChannelId temp = 0;
  bool has_temp = false;
};

/// `trimmed_aux` selects whether the IPC and load channels get the phase's
/// trim deltas (campaign/controlled summaries) or none (the open-loop
/// single-run mode reports them untrimmed); `summarize_load` drops the
/// load-level summary row while trace recording still sees the samples.
SimChannels register_sim_channels(telemetry::TelemetryBus& bus, bool with_temp,
                                  bool trimmed_aux, bool summarize_load);

/// Evaluate one simulated stress phase: steady-state operating point plus a
/// load-modulated power/IPC/load trace at the virtual meter's sampling
/// rate, published in chunked batches onto the bus (nothing materialized
/// beyond one chunk — a 10x longer run costs the same memory). The
/// modulation folds the duty cycle into the trace the same way the wall
/// meter would see it — idle floor plus load-weighted dynamic power.
struct SimPhaseResult {
  sim::WorkloadPoint point;
  double mean_power_w = 0.0;  ///< thermal-carry input for open-loop phases
  std::size_t samples = 0;
  /// Package temperature at phase end, set when the phase published the
  /// temp channel (`ch.has_temp`) — the exact thermal carry, replacing the
  /// mean-power settle approximation.
  std::optional<double> final_temp_c;
};

/// `initial_temp_c` seeds the first-order thermal integration when the
/// temp channel is on (campaign `measure=temp` phases); nullopt starts
/// from the idle-settled package.
SimPhaseResult run_sim_phase(const sim::SimulatedSystem& system, const Config& cfg,
                             const payload::PayloadStats& stats,
                             const sched::LoadProfile& profile, double duration_s,
                             std::uint64_t seed, double warm_start_s, bool gpu_stress,
                             telemetry::TelemetryBus& bus, const SimChannels& ch,
                             std::optional<double> initial_temp_c = std::nullopt);

/// One simulated closed-loop phase in resumable form: the controller and
/// the PowerPlant step together in virtual time, one tick per step(), so a
/// whole campaign of setpoint steps runs deterministically in milliseconds
/// — and so callers that must pause mid-phase (cluster agents waiting on a
/// budget reassignment, the loopback fleet's event loop) can stop between
/// ticks without a thread blocking inside the phase. The plant exposes its
/// exact span, so the loop starts from a feed-forward guess and the PID
/// only has to trim leakage warm-up, quantization, and meter noise.
class ControlledSimPhaseRun {
 public:
  ControlledSimPhaseRun(const sim::SimulatedSystem& system, const Config& cfg,
                        const payload::PayloadStats& stats, const control::Setpoint& sp,
                        double duration_s, std::uint64_t seed, double warm_start_s,
                        bool gpu_stress, std::optional<double> freq_override,
                        std::optional<int> threads_override,
                        std::optional<double> initial_temp_c, telemetry::TelemetryBus& bus,
                        const SimChannels& ch);

  /// True once virtual time has covered the phase duration.
  bool done() const;

  /// Advance one controller interval: the plant steps under the previously
  /// commanded level, the tick's telemetry is published, and the controller
  /// reacts to the fresh measurement — the same one-tick sensing lag a real
  /// RAPL poll has. Returns the tick's virtual time.
  double step();

  control::FeedbackLoop& loop() { return *loop_; }
  const control::ControlledProfile& profile() const { return *profile_; }
  const sim::WorkloadPoint& point() const { return point_; }
  /// Noise-free thermal state for the next phase (valid once done()).
  double final_temp_c() const { return plant_.true_temp_c(); }

  /// Transfer the loop/profile out for convergence reporting after the
  /// phase completes (the run object must not be stepped afterwards).
  std::unique_ptr<control::FeedbackLoop> take_loop() { return std::move(loop_); }
  std::shared_ptr<control::ControlledProfile> take_profile() { return std::move(profile_); }

 private:
  const Config& cfg_;
  double duration_s_;
  double dt_;
  sim::WorkloadPoint point_;
  sim::PowerPlant plant_;
  std::shared_ptr<control::ControlledProfile> profile_;
  std::unique_ptr<control::FeedbackLoop> loop_;
  telemetry::TelemetryBus& bus_;
  SimChannels ch_;
};

/// Blocking convenience over ControlledSimPhaseRun for callers with a
/// thread to park: runs the phase to completion, pausing for the cluster
/// budget exchange when `session` is regulating this node's power share
/// (virtual time pauses for the round trip, so the exchange is
/// deterministic).
struct ControlledSimPhase {
  sim::WorkloadPoint point;
  std::shared_ptr<control::ControlledProfile> profile;
  std::unique_ptr<control::FeedbackLoop> loop;
  double final_temp_c = 0.0;  ///< noise-free thermal state for the next phase
};

ControlledSimPhase run_sim_controlled_phase(
    const sim::SimulatedSystem& system, const Config& cfg,
    const payload::PayloadStats& stats, const control::Setpoint& sp, double duration_s,
    std::uint64_t seed, double warm_start_s, bool gpu_stress,
    std::optional<double> freq_override, std::optional<int> threads_override,
    std::optional<double> initial_temp_c, telemetry::TelemetryBus& bus,
    const SimChannels& ch, cluster::AgentSession* session = nullptr);

/// Convergence window for a phase of `duration_s`: the trailing quarter,
/// but at least a few controller ticks' worth — capped so that week-long
/// holds are judged on their trailing minutes (which is also all the
/// loop's bounded telemetry ring retains).
double convergence_window_s(const control::FeedbackLoop& loop, double duration_s);

/// Log whether the loop settled inside the band; returns the verdict so
/// callers can honor --require-convergence. `quiet` suppresses the log
/// lines (large loopback fleets would emit thousands).
bool report_convergence(const control::FeedbackLoop& loop, double duration_s,
                        const std::string& label, bool quiet = false);

/// Advance the open-loop thermal carry through a phase — a first-order
/// settle toward the phase's mean-power steady state — so a later
/// temp-target phase doesn't inherit a stale (or idle-cold) package.
double advance_thermal_carry(const sim::SimulatedSystem& system, double duration_s,
                             double mean_power_w, std::optional<double> carry_temp_c);

}  // namespace fs2::firestarter
