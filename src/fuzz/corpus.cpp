#include "fuzz/corpus.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fs2::fuzz {

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kPeakPower: return "peak-power";
    case Objective::kPowerSwing: return "power-swing";
    case Objective::kThermal: return "thermal";
  }
  return "?";
}

Objective parse_objective(const std::string& name) {
  for (Objective objective : kAllObjectives)
    if (name == to_string(objective)) return objective;
  throw ConfigError("unknown fuzz objective '" + name +
                    "' (peak-power, power-swing, thermal, all)");
}

double objective_score(const ResponseSignature& signature, Objective objective) {
  switch (objective) {
    case Objective::kPeakPower: return signature.max_power_w;
    case Objective::kPowerSwing: return signature.power_swing_w;
    case Objective::kThermal: return signature.thermal_slope_c_per_s;
  }
  return 0.0;
}

namespace {

/// Descending score; ties broken on the spec string so ranked order (and
/// with it the reproducibility guarantee) never depends on insertion order.
bool outranks(const CorpusEntry& a, const CorpusEntry& b, Objective objective) {
  const double sa = objective_score(a.signature, objective);
  const double sb = objective_score(b.signature, objective);
  if (sa != sb) return sa > sb;
  return a.spec.to_string() < b.spec.to_string();
}

}  // namespace

Corpus::Corpus(std::size_t per_objective_cap, std::vector<Objective> objectives)
    : cap_(per_objective_cap), objectives_(std::move(objectives)) {
  if (cap_ == 0) throw ConfigError("fuzz corpus: per-objective cap must be >= 1");
  if (objectives_.empty())
    objectives_.assign(std::begin(kAllObjectives), std::end(kAllObjectives));
}

Corpus::AddStatus Corpus::add(CorpusEntry entry) {
  if (!seen_specs_.insert(entry.spec.to_string()).second)
    return AddStatus::kDuplicateSpec;
  if (!seen_signals_.insert(dedupe_key(entry.signature)).second)
    return AddStatus::kDuplicateSignal;

  const std::string spec_text = entry.spec.to_string();
  entries_.push_back(std::move(entry));
  prune();
  for (const CorpusEntry& kept : entries_)
    if (kept.spec.to_string() == spec_text) return AddStatus::kAdded;
  return AddStatus::kCulled;
}

void Corpus::prune() {
  if (entries_.size() <= cap_) return;
  std::set<std::size_t> keep;
  std::vector<std::size_t> order(entries_.size());
  for (Objective objective : objectives_) {
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return outranks(entries_[a], entries_[b], objective);
    });
    for (std::size_t i = 0; i < std::min(cap_, order.size()); ++i)
      keep.insert(order[i]);
  }
  if (keep.size() == entries_.size()) return;
  std::vector<CorpusEntry> survivors;
  survivors.reserve(keep.size());
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (keep.count(i)) survivors.push_back(std::move(entries_[i]));
  entries_ = std::move(survivors);
}

std::vector<const CorpusEntry*> Corpus::ranked(Objective objective) const {
  std::vector<const CorpusEntry*> list;
  list.reserve(entries_.size());
  for (const CorpusEntry& entry : entries_) list.push_back(&entry);
  std::sort(list.begin(), list.end(), [&](const CorpusEntry* a, const CorpusEntry* b) {
    return outranks(*a, *b, objective);
  });
  if (list.size() > cap_) list.resize(cap_);
  return list;
}

std::size_t Corpus::rank_of(const PatternSpec& spec, Objective objective) const {
  const std::vector<const CorpusEntry*> list = ranked(objective);
  for (std::size_t i = 0; i < list.size(); ++i)
    if (list[i]->spec == spec) return i + 1;
  return 0;
}

}  // namespace fs2::fuzz
