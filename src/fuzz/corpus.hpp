#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "fuzz/pattern.hpp"
#include "fuzz/signature.hpp"

namespace fs2::fuzz {

/// The three outlier axes the corpus retains, mirroring the failure modes
/// the paper's hand-built payloads target: sustained peak draw, power
/// swing (the VR-stress objective of the oscillation experiments), and
/// thermal ramp rate.
enum class Objective { kPeakPower, kPowerSwing, kThermal };

inline constexpr Objective kAllObjectives[] = {Objective::kPeakPower,
                                               Objective::kPowerSwing,
                                               Objective::kThermal};

const char* to_string(Objective objective);

/// Parse "peak-power" / "power-swing" / "thermal". Throws fs2::ConfigError.
Objective parse_objective(const std::string& name);

/// Higher is worse (more stressful) — the fuzzer maximizes.
double objective_score(const ResponseSignature& signature, Objective objective);

/// One retained outlier: what ran, what it measured, and where.
struct CorpusEntry {
  PatternSpec spec;
  ResponseSignature signature;
  std::string node;        ///< node name (fleet runs) or "local"
  std::string sku;         ///< e.g. "sim-zen2@1500MHz" — responses are per-SKU
  std::size_t generation = 0;
  std::size_t index = 0;   ///< global evaluation index (report cross-reference)
};

/// Bounded ranked store of response outliers. Every unique response is
/// offered; the corpus keeps the union of the top `cap` entries along each
/// objective (so total size is bounded by 3*cap) and evicts the rest —
/// constant memory no matter how many candidates a long fuzz run burns
/// through. Specs and quantized signatures are both deduplicated: a spec
/// seen before is rejected outright, a new spec whose response collapses
/// into an existing signature bucket is recorded as a duplicate signal.
class Corpus {
 public:
  enum class AddStatus {
    kAdded,          ///< unique response, ranks in at least one top list
    kCulled,         ///< unique response, but outranked on every objective
    kDuplicateSpec,  ///< exact pattern already evaluated
    kDuplicateSignal ///< response indistinguishable from a retained one
  };

  /// `objectives` selects which axes retain outliers (--fuzz-objective);
  /// empty means all three. Ranked lists still answer for any objective —
  /// the subset only governs what survives pruning.
  explicit Corpus(std::size_t per_objective_cap, std::vector<Objective> objectives = {});

  AddStatus add(CorpusEntry entry);

  /// Entries sorted descending by the objective's score, at most `cap`.
  std::vector<const CorpusEntry*> ranked(Objective objective) const;

  /// 1-based rank of `spec` along `objective`, 0 when not in that list.
  std::size_t rank_of(const PatternSpec& spec, Objective objective) const;

  const std::vector<CorpusEntry>& entries() const { return entries_; }
  const std::vector<Objective>& objectives() const { return objectives_; }
  std::size_t cap() const { return cap_; }
  bool empty() const { return entries_.empty(); }

 private:
  void prune();

  std::size_t cap_;
  std::vector<Objective> objectives_;
  std::vector<CorpusEntry> entries_;
  std::set<std::string> seen_specs_;
  std::set<std::string> seen_signals_;
};

}  // namespace fs2::fuzz
