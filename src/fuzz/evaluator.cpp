#include "fuzz/evaluator.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "cluster/coordinator.hpp"
#include "firestarter/sim_fleet.hpp"
#include "firestarter/sim_phases.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sched/campaign.hpp"
#include "sched/load_profile.hpp"
#include "sim/sim_system.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/sinks.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::fuzz {

namespace {

/// Candidate phases all run the same square excursion profile — full idle
/// to full load — so the swing objective sees the pattern's entire dynamic
/// range and the peak objective its sustained draw, in one measurement.
std::string eval_profile_spec(double duration_s) {
  // A few full cycles per phase: enough low/high dwell for the trimmed
  // window to capture both extremes at the default 20 Sa/s meter.
  const double period_s = std::max(0.5, duration_s / 3.0);
  return strings::format("square:low=0,high=100,period=%g", period_s);
}

/// The function a node's campaign phases resolve without a function= key —
/// mirrors the single-run selection (CLI override, else tuned-for pick).
const payload::FunctionDef& resolve_fn(const firestarter::Config& cfg,
                                       const firestarter::Target& target) {
  if (cfg.function_id) return payload::find_function(*cfg.function_id);
  if (cfg.function_name) return payload::find_function(*cfg.function_name);
  return payload::select_function(target.cpu);
}

/// What a node runs when the phase carries no groups=/unroll= keys: the
/// CLI-level overrides when set, else the function's hand-tuned defaults.
PatternSpec default_spec(const firestarter::Config& cfg, const payload::FunctionDef& fn) {
  PatternSpec spec;
  spec.groups = payload::InstructionGroups::parse(
      cfg.instruction_groups ? *cfg.instruction_groups : fn.default_groups);
  spec.unroll = cfg.line_count ? *cfg.line_count : 0;
  return spec;
}

// ---- single-simulator evaluation --------------------------------------------

class LocalEvaluator final : public Evaluator {
 public:
  LocalEvaluator(firestarter::Config cfg, double duration_s)
      : cfg_(std::move(cfg)),
        duration_s_(duration_s),
        target_(firestarter::resolve_target(cfg_)),
        fn_(resolve_fn(cfg_, target_)) {
    if (!target_.simulated)
      throw ConfigError(
          "--fuzz needs --simulate or --loopback: a sweep is hundreds of "
          "stress phases, which only makes sense in virtual time");
  }

  std::size_t batch_multiple() const override { return 1; }

  std::vector<Evaluation> evaluate(const std::vector<PatternSpec>& batch) override {
    std::vector<Evaluation> out;
    out.reserve(batch.size());
    for (const PatternSpec& spec : batch) out.push_back(evaluate_one(spec));
    return out;
  }

  std::vector<Evaluation> baseline() override {
    return {evaluate_one(default_spec(cfg_, fn_))};
  }

 private:
  Evaluation evaluate_one(const PatternSpec& spec) {
    payload::CompileOptions options;
    if (spec.unroll) options.unroll = spec.unroll;
    const payload::PayloadStats stats =
        payload::analyze_payload(fn_.mix, spec.groups, target_.caches, options);

    // A fresh system and bus per candidate: no thermal or telemetry state
    // leaks between evaluations, so a candidate's signature depends only on
    // the pattern and the evaluation seed.
    sim::SimulatedSystem system(target_.sim_config);
    telemetry::TelemetryBus bus;
    telemetry::SummarySink summary;
    bus.attach(&summary);
    const firestarter::SimChannels ch = firestarter::register_sim_channels(
        bus, /*with_temp=*/true, /*trimmed_aux=*/true, /*summarize_load=*/false);
    const sched::ProfilePtr profile =
        sched::parse_profile(eval_profile_spec(duration_s_), cfg_.load, cfg_.period_s);
    const firestarter::TrimDeltas deltas = firestarter::phase_deltas(cfg_, duration_s_);
    bus.begin_phase(kPhase, duration_s_, deltas.start_s, deltas.stop_s);
    firestarter::run_sim_phase(system, cfg_, stats, *profile, duration_s_,
                               cfg_.seed + evaluated_++, /*warm_start_s=*/0.0,
                               target_.gpu_stress, bus, ch);
    bus.finish();

    Evaluation evaluation;
    evaluation.spec = spec;
    evaluation.signature = signature_from_rows(summary.rows(), kPhase, duration_s_);
    evaluation.node = "local";
    evaluation.sku = firestarter::to_string(cfg_.target);
    return evaluation;
  }

  static constexpr const char* kPhase = "fuzz";

  firestarter::Config cfg_;
  double duration_s_;
  firestarter::Target target_;
  const payload::FunctionDef& fn_;
  std::uint64_t evaluated_ = 0;
};

// ---- loopback-fleet evaluation ----------------------------------------------

class FleetEvaluator final : public Evaluator {
 public:
  FleetEvaluator(firestarter::Config cfg, double duration_s, std::ostream& log)
      : cfg_(std::move(cfg)),
        duration_s_(duration_s),
        log_(log),
        specs_(firestarter::parse_loopback_specs(*cfg_.loopback_nodes)) {}

  std::size_t batch_multiple() const override { return specs_.size(); }

  std::vector<Evaluation> evaluate(const std::vector<PatternSpec>& batch) override {
    TRACE_SPAN("fuzz.fleet_evaluate");
    if (batch.empty()) return {};
    const std::size_t nodes = specs_.size();
    const std::size_t rounds = (batch.size() + nodes - 1) / nodes;

    // Pad a partial last round by cycling the batch: node j's phase k runs
    // candidate k*N+j, names and durations identical across nodes so the
    // coordinator's barriers and sync verdicts work unchanged.
    auto padded = [&](std::size_t index) -> const PatternSpec& {
      return batch[index % batch.size()];
    };
    std::vector<std::string> texts(nodes);
    for (std::size_t j = 0; j < nodes; ++j) {
      std::ostringstream text;
      for (std::size_t k = 0; k < rounds; ++k) {
        const PatternSpec& spec = padded(k * nodes + j);
        text << strings::format("phase name=r%zu duration=%g profile=%s groups=%s",
                                k, duration_s_, eval_profile_spec(duration_s_).c_str(),
                                spec.groups.to_string().c_str());
        if (spec.unroll) text << strings::format(" unroll=%u", spec.unroll);
        text << " measure=temp\n";
      }
      texts[j] = text.str();
    }

    const cluster::Coordinator::Result result = run_cluster(texts, rounds);
    std::vector<Evaluation> out;
    out.reserve(batch.size());
    for (std::size_t index = 0; index < batch.size(); ++index) {
      const std::size_t j = index % nodes;
      const std::size_t k = index / nodes;
      Evaluation evaluation;
      evaluation.spec = batch[index];
      evaluation.node = result.nodes[j].name;
      evaluation.sku = result.nodes[j].sku;
      evaluation.signature = signature_from_rows(
          node_rows(result, result.nodes[j].name), strings::format("r%zu", k),
          duration_s_);
      out.push_back(std::move(evaluation));
    }
    return out;
  }

  std::vector<Evaluation> baseline() override {
    const std::string text =
        strings::format("phase name=base duration=%g profile=%s measure=temp\n",
                        duration_s_, eval_profile_spec(duration_s_).c_str());
    const cluster::Coordinator::Result result =
        run_cluster(std::vector<std::string>(specs_.size(), text), 1);

    std::vector<Evaluation> out;
    out.reserve(specs_.size());
    for (std::size_t j = 0; j < specs_.size(); ++j) {
      firestarter::Config node_cfg = cfg_;
      node_cfg.target = specs_[j].target;
      node_cfg.sim_freq_mhz = specs_[j].freq_mhz;
      const firestarter::Target target = firestarter::resolve_target(node_cfg);
      Evaluation evaluation;
      evaluation.spec = default_spec(node_cfg, resolve_fn(node_cfg, target));
      evaluation.node = result.nodes[j].name;
      evaluation.sku = result.nodes[j].sku;
      evaluation.signature =
          signature_from_rows(node_rows(result, result.nodes[j].name), "base",
                              duration_s_);
      out.push_back(std::move(evaluation));
    }
    return out;
  }

 private:
  static std::vector<metrics::Summary> node_rows(
      const cluster::Coordinator::Result& result, const std::string& node) {
    std::vector<metrics::Summary> rows;
    for (const cluster::ClusterBus::Row& row : result.rows)
      if (row.node == node) rows.push_back(row.summary);
    return rows;
  }

  /// One coordinator/agent round trip, mirroring the --coordinator wiring:
  /// ephemeral loopback port, the SimFleet on its own thread, the
  /// coordinator torn down on failure so agents error out of their waits.
  cluster::Coordinator::Result run_cluster(const std::vector<std::string>& texts,
                                           std::size_t phase_count) {
    TRACE_SPAN("fuzz.cluster_round");
    static trace::Counter& rounds =
        trace::Registry::instance().counter("fuzz.cluster_rounds");
    rounds.add();
    // Generated campaigns should always parse; catching authoring bugs here
    // beats decoding an agent-side protocol failure.
    std::istringstream probe(texts.front());
    sched::Campaign::parse(probe, "fuzz campaign");

    cluster::Coordinator::Options options;
    options.port = 0;
    options.loopback_only = true;
    options.nodes = specs_.size();
    options.campaign_text = texts.front();
    options.per_node_campaigns = texts;
    options.phase_count = phase_count;
    options.start_delay_s = cfg_.cluster_start_delay_s;
    options.sync_tolerance_s = cfg_.sync_tolerance_s;
    options.seed = cfg_.seed;
    firestarter::raise_fd_limit(4 * specs_.size() + 64);

    auto coordinator = std::make_unique<cluster::Coordinator>(options);
    const std::uint16_t port = coordinator->port();
    std::unique_ptr<firestarter::SimFleet> fleet;
    std::string fleet_error;
    std::thread fleet_thread([&, port] {
      try {
        fleet = std::make_unique<firestarter::SimFleet>(cfg_, specs_, port);
        fleet->run();
      } catch (const std::exception& e) {
        fleet_error = e.what();
      }
    });

    // Per-node clock-sync chatter is noise at fuzz scale (a line per node
    // per cluster run); buffer it and surface it only when the run fails.
    std::ostringstream chatter;
    cluster::Coordinator::Result result;
    std::string failure;
    try {
      result = coordinator->run(chatter);
    } catch (const std::exception& e) {
      failure = e.what();
      coordinator.reset();
    }
    if (fleet_thread.joinable()) fleet_thread.join();
    if (!fleet_error.empty()) failure = "loopback fleet failed: " + fleet_error;
    if (failure.empty() && fleet)
      for (const firestarter::SimFleet::Outcome& outcome : fleet->outcomes())
        if (!outcome.ok) {
          failure = "loopback agent " + outcome.name + ": " + outcome.error;
          break;
        }
    if (!failure.empty()) {
      log_ << chatter.str();
      throw Error("fuzz cluster round failed: " + failure);
    }
    return result;
  }

  firestarter::Config cfg_;
  double duration_s_;
  std::ostream& log_;
  std::vector<firestarter::LoopbackSpec> specs_;
};

}  // namespace

std::unique_ptr<Evaluator> make_local_evaluator(const firestarter::Config& cfg,
                                                double duration_s) {
  return std::make_unique<LocalEvaluator>(cfg, duration_s);
}

std::unique_ptr<Evaluator> make_fleet_evaluator(const firestarter::Config& cfg,
                                                double duration_s, std::ostream& log) {
  return std::make_unique<FleetEvaluator>(cfg, duration_s, log);
}

}  // namespace fs2::fuzz
