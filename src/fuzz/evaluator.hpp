#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "firestarter/config.hpp"
#include "fuzz/pattern.hpp"
#include "fuzz/signature.hpp"

namespace fs2::fuzz {

/// One measured candidate: the pattern, its distilled response, and where
/// it ran (a fleet node's name + SKU, or "local" for single-simulator runs).
struct Evaluation {
  PatternSpec spec;
  ResponseSignature signature;
  std::string node;
  std::string sku;
};

/// Measurement backend for the fuzzer: turns candidate patterns into
/// response signatures. Two implementations — a single simulated system
/// evaluated candidate-by-candidate, and a loopback fleet that fans a batch
/// across N nodes per cluster round (each node runs a different candidate
/// per campaign phase, so one cluster run measures rounds x N candidates).
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// The natural batch granularity: 1 for local evaluation, the fleet size
  /// for loopback fan-out. The fuzzer rounds its population up to a
  /// multiple of this so no node idles through a round.
  virtual std::size_t batch_multiple() const = 0;

  /// Measure every candidate in `batch`, returned in the same order.
  virtual std::vector<Evaluation> evaluate(const std::vector<PatternSpec>& batch) = 0;

  /// Measure the target's default payload — the reference the corpus's
  /// outliers must beat. One evaluation per node (fleet) or one ("local").
  virtual std::vector<Evaluation> baseline() = 0;
};

/// Candidate-at-a-time evaluation on one simulated system. Throws
/// fs2::ConfigError when `cfg` targets the host — a fuzz sweep is hundreds
/// of stress phases, which only makes sense in virtual time.
std::unique_ptr<Evaluator> make_local_evaluator(const firestarter::Config& cfg,
                                                double duration_s);

/// Fleet fan-out over `cfg.loopback_nodes`: each evaluate() call runs one
/// coordinator/agent campaign where node j's phase k carries candidate
/// k*N+j via the campaign's per-phase groups=/unroll= keys. Coordinator
/// chatter is buffered and surfaced through `log` only on failure.
std::unique_ptr<Evaluator> make_fleet_evaluator(const firestarter::Config& cfg,
                                                double duration_s, std::ostream& log);

}  // namespace fs2::fuzz
