#include "fuzz/fuzzer.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace fs2::fuzz {

namespace {

/// Elite pool for the next generation: the ranked lists of every retained
/// objective, interleaved rank-major so rank-1 patterns of all objectives
/// lead the pool (round-robin parenting then spreads mutations evenly).
std::vector<PatternSpec> elite_pool(const Corpus& corpus) {
  std::vector<const CorpusEntry*> lists[3];
  std::size_t longest = 0;
  std::size_t count = 0;
  for (Objective objective : corpus.objectives()) {
    lists[count] = corpus.ranked(objective);
    longest = std::max(longest, lists[count].size());
    ++count;
  }
  std::vector<PatternSpec> pool;
  for (std::size_t rank = 0; rank < longest; ++rank)
    for (std::size_t i = 0; i < count; ++i)
      if (rank < lists[i].size()) pool.push_back(lists[i][rank]->spec);
  return pool;
}

double best_score(const Corpus& corpus, Objective objective) {
  const auto list = corpus.ranked(objective);
  return list.empty() ? 0.0 : objective_score(list.front()->signature, objective);
}

}  // namespace

FuzzResult run_fuzz(Evaluator& evaluator, const FuzzOptions& options, std::ostream& log) {
  PatternGenerator generator(options.seed, options.limits);
  FuzzResult result{{}, Corpus(options.corpus_cap, options.objectives), {}};

  std::size_t index = 0;
  result.baseline = evaluator.baseline();
  for (const Evaluation& evaluation : result.baseline) {
    FuzzRecord record;
    record.entry = CorpusEntry{evaluation.spec, evaluation.signature, evaluation.node,
                               evaluation.sku, /*generation=*/0, index++};
    record.baseline = true;
    result.records.push_back(std::move(record));
  }
  log << strings::format("fuzz: baseline over %zu node%s, seed %llu\n",
                         result.baseline.size(),
                         result.baseline.size() == 1 ? "" : "s",
                         static_cast<unsigned long long>(options.seed));

  const std::size_t multiple = std::max<std::size_t>(1, evaluator.batch_multiple());
  std::size_t population = std::max<std::size_t>(1, options.population);
  if (population % multiple) {
    population = (population / multiple + 1) * multiple;
    log << strings::format(
        "fuzz: population rounded up to %zu (multiple of the %zu-node fleet)\n",
        population, multiple);
  }

  for (std::size_t generation = 1; generation <= options.generations; ++generation) {
    const std::vector<PatternSpec> elites = elite_pool(result.corpus);
    std::vector<PatternSpec> batch;
    batch.reserve(population);
    for (std::size_t i = 0; i < population; ++i) {
      // Exploit the corpus once it holds anything, but keep every fourth
      // slot uniform random so new basins stay reachable.
      if (elites.empty() || i % 4 == 3)
        batch.push_back(generator.random());
      else
        batch.push_back(generator.mutate(elites[i % elites.size()]));
    }

    const std::vector<Evaluation> evaluations = evaluator.evaluate(batch);
    std::size_t added = 0;
    for (const Evaluation& evaluation : evaluations) {
      FuzzRecord record;
      record.entry = CorpusEntry{evaluation.spec, evaluation.signature, evaluation.node,
                                 evaluation.sku, generation, index++};
      if (evaluation.signature.valid()) {
        record.status = result.corpus.add(record.entry);
        if (record.status == Corpus::AddStatus::kAdded) ++added;
      } else {
        // No summary rows came back for this candidate (e.g. a fleet node
        // dropped its phase) — never offer an empty signature to the corpus.
        record.status = Corpus::AddStatus::kCulled;
      }
      result.records.push_back(std::move(record));
    }
    log << strings::format(
        "fuzz: gen %zu: %zu evaluated, %zu new outliers, corpus %zu "
        "(peak %.1f W, swing %.1f W, thermal %.2f degC/s)\n",
        generation, evaluations.size(), added, result.corpus.entries().size(),
        best_score(result.corpus, Objective::kPeakPower),
        best_score(result.corpus, Objective::kPowerSwing),
        best_score(result.corpus, Objective::kThermal));
  }
  return result;
}

}  // namespace fs2::fuzz
