#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/evaluator.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/report.hpp"

namespace fs2::fuzz {

/// Knobs for one fuzz run. Everything random flows from `seed` (candidate
/// generation here, meter noise through the evaluator's Config), so a seed
/// plus the same evaluator spec reproduces the exact corpus.
struct FuzzOptions {
  std::uint64_t seed = 0;
  std::size_t population = 32;   ///< candidates per generation (rounded up
                                 ///< to the evaluator's batch multiple)
  std::size_t generations = 2;
  std::size_t corpus_cap = 8;    ///< retained outliers per objective
  /// Objectives the corpus retains outliers for; empty = all three.
  std::vector<Objective> objectives;
  GeneratorLimits limits;
};

/// Everything a run produced: the evaluation log in order (baseline rows
/// first), the surviving ranked corpus, and the per-node baselines the
/// outliers are compared against.
struct FuzzResult {
  std::vector<FuzzRecord> records;
  Corpus corpus;
  std::vector<Evaluation> baseline;
};

/// The discovery loop: measure the default payload as the reference, then
/// per generation compose a population (uniform random first, structural
/// mutations of corpus elites afterwards — with a random injection every
/// few slots so the search never collapses onto one basin), evaluate it
/// through `evaluator`, and offer every response to the corpus. `log` gets
/// one progress line per generation.
FuzzResult run_fuzz(Evaluator& evaluator, const FuzzOptions& options, std::ostream& log);

}  // namespace fs2::fuzz
