#include "fuzz/generator.hpp"

#include <algorithm>
#include <cmath>

#include "payload/access.hpp"

namespace fs2::fuzz {

namespace {

/// Position of `kind` in the canonical all_access_kinds() order.
std::size_t canonical_index(const payload::AccessKind& kind) {
  const std::vector<payload::AccessKind>& kinds = payload::all_access_kinds();
  for (std::size_t i = 0; i < kinds.size(); ++i)
    if (kinds[i] == kind) return i;
  return kinds.size();
}

}  // namespace

PatternGenerator::PatternGenerator(std::uint64_t seed, GeneratorLimits limits)
    : rng_(seed), limits_(limits) {}

std::uint32_t PatternGenerator::random_unroll() {
  // Powers of two up to the limit, plus 0 = the compiler's default (fill
  // 3/4 of L1-I): the unroll axis matters logarithmically (loop bytes
  // double per step), so uniform-in-exponent covers it evenly — and the
  // default's L1-I-resident footprint is itself a distinct operating point
  // (instruction-fetch energy) worth sampling.
  int max_shift = 0;
  while ((2u << max_shift) <= limits_.max_unroll) ++max_shift;
  const std::uint64_t pick = rng_.below(static_cast<std::uint64_t>(max_shift) + 2);
  return pick == 0 ? 0 : 1u << (pick - 1);
}

std::uint32_t PatternGenerator::random_count() {
  // Log-uniform in [1, max_count]: the interesting mixes pair single-digit
  // off-core counts with L1 blocks near the cap, so the draw must make a
  // count of 2 and a count of 90 comparably likely.
  const double exponent = rng_.uniform() * std::log2(static_cast<double>(limits_.max_count));
  const auto count = static_cast<std::uint32_t>(std::lround(std::exp2(exponent)));
  return std::min(std::max(count, 1u), limits_.max_count);
}

PatternSpec PatternGenerator::random() {
  const std::vector<payload::AccessKind>& kinds = payload::all_access_kinds();
  const std::size_t want = static_cast<std::size_t>(
      rng_.range(static_cast<std::int64_t>(limits_.min_kinds),
                 static_cast<std::int64_t>(std::min(limits_.max_kinds, kinds.size()))));

  // Draw a distinct subset of kind indices, kept in canonical (genome)
  // order so equal multisets serialize identically regardless of draw
  // order — the spec string itself is a dedupe key.
  std::vector<std::size_t> picked;
  while (picked.size() < want) {
    const std::size_t index = rng_.below(kinds.size());
    if (std::find(picked.begin(), picked.end(), index) == picked.end())
      picked.push_back(index);
  }
  std::sort(picked.begin(), picked.end());

  std::vector<payload::Group> groups;
  groups.reserve(picked.size());
  for (const std::size_t index : picked)
    groups.push_back(payload::Group{kinds[index], random_count()});

  PatternSpec spec;
  spec.groups = payload::InstructionGroups(std::move(groups));
  spec.unroll = random_unroll();
  return spec;
}

PatternSpec PatternGenerator::mutate(const PatternSpec& parent) {
  const std::vector<payload::AccessKind>& kinds = payload::all_access_kinds();
  for (;;) {
    std::vector<payload::Group> groups = parent.groups.groups();
    std::uint32_t unroll = parent.unroll;
    switch (rng_.below(4)) {
      case 0: {  // retune one occurrence count
        // Multiplicative steps plus +-1: ratios between counts are what the
        // plant responds to, so doubling/halving walks the ratio space while
        // +-1 fine-tunes around a knee (e.g. the bandwidth-stall boundary).
        payload::Group& group = groups[rng_.below(groups.size())];
        std::uint32_t fresh = group.count;
        switch (rng_.below(4)) {
          case 0: fresh = std::min(limits_.max_count, group.count * 2); break;
          case 1: fresh = std::max(1u, group.count / 2); break;
          case 2: fresh = std::min(limits_.max_count, group.count + 1); break;
          default: fresh = std::max(1u, group.count - 1); break;
        }
        if (fresh == group.count) continue;
        group.count = fresh;
        break;
      }
      case 1: {  // splice a new access kind in (canonical position)
        if (groups.size() >= std::min(limits_.max_kinds, kinds.size())) continue;
        const std::size_t index = rng_.below(kinds.size());
        if (parent.groups.count_of(kinds[index]) > 0) continue;
        groups.push_back(payload::Group{kinds[index], random_count()});
        std::sort(groups.begin(), groups.end(),
                  [](const payload::Group& a, const payload::Group& b) {
                    return canonical_index(a.kind) < canonical_index(b.kind);
                  });
        break;
      }
      case 2: {  // drop one kind
        if (groups.size() <= std::max<std::size_t>(limits_.min_kinds, 1)) continue;
        groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(rng_.below(groups.size())));
        break;
      }
      default: {  // rescale the unroll
        const std::uint32_t fresh = random_unroll();
        if (fresh == unroll) continue;
        unroll = fresh;
        break;
      }
    }
    PatternSpec child;
    child.groups = payload::InstructionGroups(std::move(groups));
    child.unroll = unroll;
    if (!(child == parent)) return child;
  }
}

}  // namespace fs2::fuzz
