#pragma once

#include <cstddef>
#include <cstdint>

#include "fuzz/pattern.hpp"
#include "util/rng.hpp"

namespace fs2::fuzz {

/// Bounds of the random pattern space. The defaults keep candidates inside
/// the region the payload compiler handles gracefully — a handful of access
/// kinds, power-of-two unrolls up to the L1-I budget — while reaching the
/// count ratios that matter: the hand-tuned mixes put ~2% of accesses in
/// RAM against an L1 block in the tens (e.g. L1_LS:77 vs RAM_L:3), so the
/// count axis must span two orders of magnitude. Counts are drawn
/// log-uniformly: small counts stay common, large blocks stay reachable.
struct GeneratorLimits {
  std::size_t min_kinds = 1;
  std::size_t max_kinds = 5;
  std::uint32_t max_count = 96;    ///< per-kind occurrence bound a_i
  std::uint32_t max_unroll = 64;   ///< unroll menu: {default, 1, 2, ..., max}
};

/// Seeded source of candidate payload patterns: uniform random specs for
/// the initial population, structural mutations (tweak a count, swap an
/// access kind in or out, rescale the unroll) for later generations.
/// Everything flows from the Xoshiro256 stream, so a seed reproduces the
/// exact candidate sequence — the property the corpus-reproducibility
/// guarantee rests on.
class PatternGenerator {
 public:
  explicit PatternGenerator(std::uint64_t seed, GeneratorLimits limits = {});

  /// A fresh uniform random pattern.
  PatternSpec random();

  /// A structural neighbor of `parent` — never identical to it (mutations
  /// retry until something changed, so elitist loops cannot stall on
  /// no-op children).
  PatternSpec mutate(const PatternSpec& parent);

 private:
  std::uint32_t random_unroll();
  std::uint32_t random_count();

  Xoshiro256 rng_;
  GeneratorLimits limits_;
};

}  // namespace fs2::fuzz
