#include "fuzz/pattern.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::fuzz {

std::string PatternSpec::to_string() const {
  std::string text = groups.to_string();
  if (unroll > 0) text += strings::format("|u=%u", unroll);
  return text;
}

PatternSpec PatternSpec::parse(const std::string& text) {
  PatternSpec spec;
  const auto bar = text.find('|');
  const std::string groups_text(strings::trim(text.substr(0, bar)));
  spec.groups = payload::InstructionGroups::parse(groups_text);
  if (bar == std::string::npos) return spec;

  const std::string_view rest = strings::trim(text.substr(bar + 1));
  if (!strings::starts_with(rest, "u="))
    throw ConfigError("pattern spec '" + text + "': expected '|u=N' after the groups");
  const std::uint64_t u =
      strings::parse_u64(std::string(rest.substr(2)), "pattern unroll");
  if (u == 0 || u > kMaxUnroll)
    throw ConfigError(strings::format("pattern spec unroll must be within [1, %u]",
                                      kMaxUnroll));
  spec.unroll = static_cast<std::uint32_t>(u);
  return spec;
}

}  // namespace fs2::fuzz
