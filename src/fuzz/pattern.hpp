#pragma once

#include <cstdint>
#include <string>

#include "payload/groups.hpp"

namespace fs2::fuzz {

/// One candidate workload the fuzzer evaluates: the memory-access multiset
/// M plus an explicit unroll factor u — the two degrees of freedom of the
/// paper's payload space omega = (I, u, M) that vary per candidate (the
/// instruction set I is fixed by the target's stress function). Serialized
/// as "REG:4,L1_L:2|u=32" so every corpus entry can be re-run standalone:
/// the groups part is the exact --run-instruction-groups grammar and the u
/// part the --set-line-count value (a campaign phase carries them as
/// groups= and unroll= keys).
struct PatternSpec {
  payload::InstructionGroups groups;
  std::uint32_t unroll = 0;  ///< u; always explicit (>= 1) in generated specs

  /// Canonical serialized form, e.g. "REG:4,L1_L:2|u=32". A zero unroll
  /// (payload-compiler default) serializes without the "|u=" suffix.
  std::string to_string() const;

  /// Parse the canonical form (with or without the "|u=" suffix). Throws
  /// fs2::ConfigError on malformed group lists or a zero/huge unroll.
  static PatternSpec parse(const std::string& text);

  bool operator==(const PatternSpec& other) const {
    return unroll == other.unroll && groups == other.groups;
  }
};

/// Upper bound on an explicit unroll factor — far beyond any loop that
/// still fits an instruction cache, so a typo fails instead of compiling a
/// gigabyte of kernel.
inline constexpr std::uint32_t kMaxUnroll = 4096;

}  // namespace fs2::fuzz
