#include "fuzz/report.hpp"

#include <fstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::fuzz {

const char* to_string(Corpus::AddStatus status) {
  switch (status) {
    case Corpus::AddStatus::kAdded: return "new";
    case Corpus::AddStatus::kCulled: return "culled";
    case Corpus::AddStatus::kDuplicateSpec: return "dup-spec";
    case Corpus::AddStatus::kDuplicateSignal: return "dup-signal";
  }
  return "?";
}

namespace {

struct Ranks {
  std::size_t peak = 0, swing = 0, thermal = 0;
};

Ranks ranks_of(const Corpus& corpus, const FuzzRecord& record) {
  Ranks ranks;
  if (record.baseline) return ranks;  // the baseline never enters the corpus
  ranks.peak = corpus.rank_of(record.entry.spec, Objective::kPeakPower);
  ranks.swing = corpus.rank_of(record.entry.spec, Objective::kPowerSwing);
  ranks.thermal = corpus.rank_of(record.entry.spec, Objective::kThermal);
  return ranks;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void FuzzReport::write_csv(std::ostream& out, std::uint64_t seed,
                           const std::vector<FuzzRecord>& records, const Corpus& corpus) {
  CsvWriter csv(out);
  csv.row({"index", "generation", "node", "sku", "spec", "status", "baseline",
           "mean_power_w", "max_power_w", "min_power_w", "power_swing_w", "ipc",
           "thermal_slope_c_per_s", "samples", "rank_peak_power", "rank_power_swing",
           "rank_thermal", "seed"});
  for (const FuzzRecord& record : records) {
    const ResponseSignature& s = record.entry.signature;
    const Ranks ranks = ranks_of(corpus, record);
    csv.row({std::to_string(record.entry.index), std::to_string(record.entry.generation),
             record.entry.node, record.entry.sku, record.entry.spec.to_string(),
             record.baseline ? "baseline" : to_string(record.status),
             record.baseline ? "1" : "0", strings::format("%.3f", s.mean_power_w),
             strings::format("%.3f", s.max_power_w),
             strings::format("%.3f", s.min_power_w),
             strings::format("%.3f", s.power_swing_w), strings::format("%.4f", s.ipc),
             strings::format("%.5f", s.thermal_slope_c_per_s),
             std::to_string(s.samples), std::to_string(ranks.peak),
             std::to_string(ranks.swing), std::to_string(ranks.thermal),
             std::to_string(seed)});
  }
}

void FuzzReport::write_json(std::ostream& out, std::uint64_t seed,
                            const std::vector<FuzzRecord>& records, const Corpus& corpus) {
  out << "{\n  \"seed\": " << seed << ",\n  \"corpus_cap\": " << corpus.cap()
      << ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FuzzRecord& record = records[i];
    const ResponseSignature& s = record.entry.signature;
    const Ranks ranks = ranks_of(corpus, record);
    out << strings::format(
        "    {\"index\": %zu, \"generation\": %zu, \"node\": \"%s\", \"sku\": \"%s\", "
        "\"spec\": \"%s\", \"status\": \"%s\", \"baseline\": %s, "
        "\"mean_power_w\": %.3f, \"max_power_w\": %.3f, \"min_power_w\": %.3f, "
        "\"power_swing_w\": %.3f, \"ipc\": %.4f, \"thermal_slope_c_per_s\": %.5f, "
        "\"samples\": %llu, \"rank_peak_power\": %zu, \"rank_power_swing\": %zu, "
        "\"rank_thermal\": %zu}%s\n",
        record.entry.index, record.entry.generation,
        json_escape(record.entry.node).c_str(), json_escape(record.entry.sku).c_str(),
        json_escape(record.entry.spec.to_string()).c_str(),
        record.baseline ? "baseline" : to_string(record.status),
        record.baseline ? "true" : "false", s.mean_power_w, s.max_power_w, s.min_power_w,
        s.power_swing_w, s.ipc, s.thermal_slope_c_per_s,
        static_cast<unsigned long long>(s.samples), ranks.peak, ranks.swing, ranks.thermal,
        i + 1 < records.size() ? "," : "");
  }
  out << "  ]\n}\n";
}

void FuzzReport::write_file(const std::string& path, std::uint64_t seed,
                            const std::vector<FuzzRecord>& records, const Corpus& corpus) {
  std::ofstream out(path);
  if (!out) throw Error("--fuzz-report: cannot open '" + path + "' for writing");
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json)
    write_json(out, seed, records, corpus);
  else
    write_csv(out, seed, records, corpus);
}

}  // namespace fs2::fuzz
