#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"

namespace fs2::fuzz {

/// One evaluated candidate as the report sees it: the corpus bookkeeping
/// plus how the corpus judged it. Baseline rows (the target's default
/// payload, evaluated first for the exceeds-default comparison) are
/// flagged so downstream tooling can separate discovery from reference.
struct FuzzRecord {
  CorpusEntry entry;
  Corpus::AddStatus status = Corpus::AddStatus::kCulled;
  bool baseline = false;
};

const char* to_string(Corpus::AddStatus status);

/// Exporter for the evaluation log: one row per evaluated pattern with the
/// spec string (round-trips through PatternSpec::parse, so any row can be
/// re-run standalone), the full response signature, the dedupe status, and
/// the entry's final per-objective corpus ranks (0 = not retained). The
/// fuzz seed is echoed into every row — a report is a reproduction recipe.
class FuzzReport {
 public:
  /// CSV to `out`.
  static void write_csv(std::ostream& out, std::uint64_t seed,
                        const std::vector<FuzzRecord>& records, const Corpus& corpus);

  /// JSON to `out` (an object with the seed and a records array).
  static void write_json(std::ostream& out, std::uint64_t seed,
                         const std::vector<FuzzRecord>& records, const Corpus& corpus);

  /// Write to `path`; the format follows the extension (.json selects
  /// JSON, anything else CSV). Throws fs2::Error when the file cannot be
  /// opened.
  static void write_file(const std::string& path, std::uint64_t seed,
                         const std::vector<FuzzRecord>& records, const Corpus& corpus);
};

}  // namespace fs2::fuzz
