#include "fuzz/signature.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace fs2::fuzz {

ResponseSignature signature_from_rows(const std::vector<metrics::Summary>& rows,
                                      const std::string& phase, double duration_s) {
  ResponseSignature signature;
  for (const metrics::Summary& row : rows) {
    if (row.phase != phase) continue;
    if (row.name == "sim-wall-power") {
      signature.mean_power_w = row.mean;
      signature.max_power_w = row.max;
      signature.min_power_w = row.min;
      signature.power_swing_w = row.max - row.min;
      signature.samples = row.samples;
    } else if (row.name == "sim-perf-ipc") {
      signature.ipc = row.max;
    } else if (row.name == "sim-package-temp") {
      if (duration_s > 0.0)
        signature.thermal_slope_c_per_s = (row.max - row.min) / duration_s;
    }
  }
  return signature;
}

std::string dedupe_key(const ResponseSignature& signature) {
  // Bucket widths sit just above the seeded meter noise (0.4 % of ~300 W)
  // so reruns of the same pattern land in the same bucket while genuinely
  // different responses do not.
  const auto bucket = [](double value, double width) {
    return static_cast<long long>(std::llround(value / width));
  };
  return strings::format("p%lld:x%lld:s%lld:i%lld:t%lld",
                         bucket(signature.mean_power_w, 2.0),
                         bucket(signature.max_power_w, 2.0),
                         bucket(signature.power_swing_w, 2.0),
                         bucket(signature.ipc, 0.05),
                         bucket(signature.thermal_slope_c_per_s, 0.01));
}

}  // namespace fs2::fuzz
