#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/measurement.hpp"

namespace fs2::fuzz {

/// The measured response of one evaluated pattern — the fuzzer's fitness
/// record, distilled from the same summary rows a campaign phase prints.
/// Power fields come from the wall-power channel (mean/max/min over the
/// trimmed phase window), IPC is the peak per-core rate while the square
/// evaluation profile is in its high half, and the thermal slope is the
/// package temperature excursion normalized by the phase length.
struct ResponseSignature {
  double mean_power_w = 0.0;
  double max_power_w = 0.0;
  double min_power_w = 0.0;
  double power_swing_w = 0.0;          ///< max - min: the VR-stress objective
  double ipc = 0.0;                    ///< peak instructions/cycle per core
  double thermal_slope_c_per_s = 0.0;  ///< (temp max - temp min) / duration
  std::uint64_t samples = 0;           ///< wall-power samples in the window

  bool valid() const { return samples > 0; }
};

/// Distill a signature from summary rows: the rows whose phase matches
/// `phase` feed the signature (channel names are the sim telemetry set:
/// sim-wall-power, sim-perf-ipc, sim-package-temp). Rows from other phases
/// are ignored, so a whole campaign's rows can be passed per phase.
ResponseSignature signature_from_rows(const std::vector<metrics::Summary>& rows,
                                      const std::string& phase, double duration_s);

/// Quantized dedupe key: two patterns whose responses agree within the
/// plant's noise floor (~1 W power, 0.05 IPC, 0.01 degC/s) map to the same
/// key, so near-identical responses collapse to one corpus entry instead
/// of crowding the ranked lists with clones.
std::string dedupe_key(const ResponseSignature& signature);

}  // namespace fs2::fuzz
