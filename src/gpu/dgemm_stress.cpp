#include "gpu/dgemm_stress.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace fs2::gpu {

void blocked_dgemm(std::size_t n, double alpha, const double* a, const double* b, double beta,
                   double* c) {
  constexpr std::size_t kBlock = 64;
  for (std::size_t i = 0; i < n * n; ++i) c[i] *= beta;
  for (std::size_t ii = 0; ii < n; ii += kBlock) {
    const std::size_t i_end = std::min(ii + kBlock, n);
    for (std::size_t kk = 0; kk < n; kk += kBlock) {
      const std::size_t k_end = std::min(kk + kBlock, n);
      for (std::size_t jj = 0; jj < n; jj += kBlock) {
        const std::size_t j_end = std::min(jj + kBlock, n);
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aik = alpha * a[i * n + k];
            const double* b_row = &b[k * n];
            double* c_row = &c[i * n];
            for (std::size_t j = jj; j < j_end; ++j) c_row[j] += aik * b_row[j];
          }
        }
      }
    }
  }
}

struct DgemmStressor::Device {
  std::thread thread;
  std::vector<double> a, b, c;
  std::atomic<std::uint64_t> gemms{0};
  std::uint64_t seed = 0;
};

DgemmStressor::DgemmStressor(GpuStressOptions options)
    : options_(std::move(options)), profile_(options_.profile) {
  for (int d = 0; d < options_.devices; ++d) {
    auto device = std::make_unique<Device>();
    device->seed = options_.seed + static_cast<std::uint64_t>(d) * 0x9e3779b97f4a7c15ULL;
    devices_.push_back(std::move(device));
  }
  for (auto& device : devices_)
    device->thread = std::thread(&DgemmStressor::device_main, this, std::ref(*device));
}

DgemmStressor::~DgemmStressor() { stop(); }

void DgemmStressor::anchor_epoch() {
  epoch_ticks_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_release);
}

double DgemmStressor::elapsed_s() const {
  const std::chrono::steady_clock::duration since_boot(
      epoch_ticks_.load(std::memory_order_acquire));
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch() - since_boot)
      .count();
}

void DgemmStressor::start() {
  // Anchor the modulation epoch right before release, like
  // ThreadManager::start(): all devices count windows from the same instant.
  anchor_epoch();
  start_flag_.store(true, std::memory_order_release);
}

void DgemmStressor::set_profile(sched::ProfilePtr profile) {
  {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    profile_ = std::move(profile);
  }
  // Re-anchor the epoch: a campaign phase's profile (ramp, trace, ...) is
  // authored in phase-local time, so its clock must start with the swap —
  // the same way each phase's ThreadManager restarts its own PhaseClock.
  anchor_epoch();
}

sched::ProfilePtr DgemmStressor::current_profile() const {
  std::lock_guard<std::mutex> lock(profile_mutex_);
  return profile_;
}

void DgemmStressor::stop() {
  if (joined_) return;
  joined_ = true;
  stop_flag_.store(true, std::memory_order_release);
  start_flag_.store(true, std::memory_order_release);
  for (auto& device : devices_)
    if (device->thread.joinable()) device->thread.join();
}

std::uint64_t DgemmStressor::total_gemms() const {
  std::uint64_t total = 0;
  for (const auto& device : devices_) total += device->gemms.load(std::memory_order_relaxed);
  return total;
}

double DgemmStressor::total_flops() const {
  const double n = static_cast<double>(options_.matrix_n);
  return static_cast<double>(total_gemms()) * 2.0 * n * n * n;
}

double DgemmStressor::checksum(int device) const {
  const auto& c = devices_.at(static_cast<std::size_t>(device))->c;
  double sum = 0.0;
  for (double v : c) sum += v;
  return sum;
}

void DgemmStressor::device_main(Device& device) {
  const std::size_t n = options_.matrix_n;
  // Device-side initialization: allocated and filled in the device context,
  // never touched by the "host" thread (the FIRESTARTER 2 cuBLAS fix).
  Xoshiro256 rng(device.seed);
  device.a.resize(n * n);
  device.b.resize(n * n);
  device.c.assign(n * n, 0.0);
  for (double& v : device.a) v = 0.5 + rng.uniform();   // in [0.5, 1.5): no trivial operands
  for (double& v : device.b) v = 0.5 + rng.uniform();

  while (!start_flag_.load(std::memory_order_acquire)) std::this_thread::yield();

  auto run_gemm = [&] {
    // beta < 1 keeps C bounded: fixed point of |C| is alpha*E[A*B]*n/(1-beta).
    blocked_dgemm(n, 1e-3, device.a.data(), device.b.data(), 0.5, device.c.data());
    device.gemms.fetch_add(1, std::memory_order_relaxed);
  };

  const double period = options_.period_s;
  while (!stop_flag_.load(std::memory_order_acquire)) {
    // Re-read per window: campaign phases swap the schedule mid-run.
    const sched::ProfilePtr profile = current_profile();
    if (!profile || (profile->constant() && profile->load_at(0.0) >= 1.0)) {
      run_gemm();  // flat out: no windowing arithmetic on the hot path
      continue;
    }
    // Same lockstep windowing as kernel::ThreadManager::worker_main: window
    // k spans [k*period, (k+1)*period) relative to the epoch and is busy
    // for its first load_at(window start) fraction. Granularity here is one
    // DGEMM call rather than a ~5 ms kernel chunk.
    const bool live = profile->live();
    auto sampled_load = [&profile](double w) {
      return std::clamp(profile->load_at(w), 0.0, 1.0);
    };
    const auto epoch_before = epoch_ticks_.load(std::memory_order_acquire);
    const double t = elapsed_s();
    const double window = sched::PhaseClock::window_start(t, period);
    const double idle_until = window + period;
    double busy_until = window + sampled_load(window) * period;
    if (t < busy_until) {
      run_gemm();
      continue;
    }
    while (!stop_flag_.load(std::memory_order_acquire) && elapsed_s() < idle_until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      // A set_profile() epoch re-anchor snaps elapsed_s() back toward zero,
      // which would leave this loop sleeping out the STALE window's
      // idle_until against the new clock — bail so the outer loop re-reads
      // the swapped schedule within ~1 ms.
      if (epoch_ticks_.load(std::memory_order_acquire) != epoch_before) break;
      // Live profiles (the closed-loop controller) can raise the command
      // mid-window; cut the idle span short so actuation latency stays at
      // ~1 ms instead of a whole window.
      if (live && elapsed_s() < window + sampled_load(window) * period) break;
    }
  }
}

}  // namespace fs2::gpu
