#include "gpu/dgemm_stress.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace fs2::gpu {

void blocked_dgemm(std::size_t n, double alpha, const double* a, const double* b, double beta,
                   double* c) {
  constexpr std::size_t kBlock = 64;
  for (std::size_t i = 0; i < n * n; ++i) c[i] *= beta;
  for (std::size_t ii = 0; ii < n; ii += kBlock) {
    const std::size_t i_end = std::min(ii + kBlock, n);
    for (std::size_t kk = 0; kk < n; kk += kBlock) {
      const std::size_t k_end = std::min(kk + kBlock, n);
      for (std::size_t jj = 0; jj < n; jj += kBlock) {
        const std::size_t j_end = std::min(jj + kBlock, n);
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aik = alpha * a[i * n + k];
            const double* b_row = &b[k * n];
            double* c_row = &c[i * n];
            for (std::size_t j = jj; j < j_end; ++j) c_row[j] += aik * b_row[j];
          }
        }
      }
    }
  }
}

struct DgemmStressor::Device {
  std::thread thread;
  std::vector<double> a, b, c;
  std::atomic<std::uint64_t> gemms{0};
  std::uint64_t seed = 0;
};

DgemmStressor::DgemmStressor(GpuStressOptions options) : options_(options) {
  for (int d = 0; d < options_.devices; ++d) {
    auto device = std::make_unique<Device>();
    device->seed = options_.seed + static_cast<std::uint64_t>(d) * 0x9e3779b97f4a7c15ULL;
    devices_.push_back(std::move(device));
  }
  for (auto& device : devices_)
    device->thread = std::thread(&DgemmStressor::device_main, this, std::ref(*device));
}

DgemmStressor::~DgemmStressor() { stop(); }

void DgemmStressor::start() { start_flag_.store(true, std::memory_order_release); }

void DgemmStressor::stop() {
  if (joined_) return;
  joined_ = true;
  stop_flag_.store(true, std::memory_order_release);
  start_flag_.store(true, std::memory_order_release);
  for (auto& device : devices_)
    if (device->thread.joinable()) device->thread.join();
}

std::uint64_t DgemmStressor::total_gemms() const {
  std::uint64_t total = 0;
  for (const auto& device : devices_) total += device->gemms.load(std::memory_order_relaxed);
  return total;
}

double DgemmStressor::total_flops() const {
  const double n = static_cast<double>(options_.matrix_n);
  return static_cast<double>(total_gemms()) * 2.0 * n * n * n;
}

double DgemmStressor::checksum(int device) const {
  const auto& c = devices_.at(static_cast<std::size_t>(device))->c;
  double sum = 0.0;
  for (double v : c) sum += v;
  return sum;
}

void DgemmStressor::device_main(Device& device) {
  const std::size_t n = options_.matrix_n;
  // Device-side initialization: allocated and filled in the device context,
  // never touched by the "host" thread (the FIRESTARTER 2 cuBLAS fix).
  Xoshiro256 rng(device.seed);
  device.a.resize(n * n);
  device.b.resize(n * n);
  device.c.assign(n * n, 0.0);
  for (double& v : device.a) v = 0.5 + rng.uniform();   // in [0.5, 1.5): no trivial operands
  for (double& v : device.b) v = 0.5 + rng.uniform();

  while (!start_flag_.load(std::memory_order_acquire)) std::this_thread::yield();

  while (!stop_flag_.load(std::memory_order_acquire)) {
    // beta < 1 keeps C bounded: fixed point of |C| is alpha*E[A*B]*n/(1-beta).
    blocked_dgemm(n, 1e-3, device.a.data(), device.b.data(), 0.5, device.c.data());
    device.gemms.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace fs2::gpu
