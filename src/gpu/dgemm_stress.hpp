#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace fs2::gpu {

/// Configuration of the GPU-style DGEMM stressor.
struct GpuStressOptions {
  int devices = 1;           ///< simulated GPUs (worker contexts)
  std::size_t matrix_n = 256;  ///< square matrix dimension per DGEMM
  std::uint64_t seed = 0xD6E3;
};

/// Stand-in for FIRESTARTER's cuBLAS DGEMM GPU stress: each simulated
/// device runs C = alpha*A*B + beta*C in a loop on its own buffers
/// ("device memory"), using a cache-blocked kernel. Matrices are
/// initialized *inside the device worker* — mirroring the FIRESTARTER 2
/// improvement where data is initialized directly on the GPU instead of
/// being filled on the host and copied (Sec. III-D).
class DgemmStressor {
 public:
  explicit DgemmStressor(GpuStressOptions options);
  ~DgemmStressor();
  DgemmStressor(const DgemmStressor&) = delete;
  DgemmStressor& operator=(const DgemmStressor&) = delete;

  void start();
  void stop();

  /// DGEMM iterations completed across all devices.
  std::uint64_t total_gemms() const;

  /// FLOPs executed so far (2*n^3 per DGEMM).
  double total_flops() const;

  /// Checksum of device 0's C matrix — result verification across runs
  /// (bit-flips alter it; same seed must reproduce it).
  double checksum(int device = 0) const;

  const GpuStressOptions& options() const { return options_; }

 private:
  struct Device;
  void device_main(Device& device);

  GpuStressOptions options_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::atomic<bool> start_flag_{false};
  std::atomic<bool> stop_flag_{false};
  bool joined_ = false;
};

/// Single blocked DGEMM: C = alpha*A*B + beta*C, row-major n x n.
/// Exposed for direct testing against a naive reference implementation.
void blocked_dgemm(std::size_t n, double alpha, const double* a, const double* b, double beta,
                   double* c);

}  // namespace fs2::gpu
