#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/load_profile.hpp"
#include "sched/phase_clock.hpp"

namespace fs2::gpu {

/// Configuration of the GPU-style DGEMM stressor.
struct GpuStressOptions {
  int devices = 1;           ///< simulated GPUs (worker contexts)
  std::size_t matrix_n = 256;  ///< square matrix dimension per DGEMM
  std::uint64_t seed = 0xD6E3;
  /// Load schedule the devices duty-cycle against (null = flat out, the
  /// pre-scheduler behaviour). Swappable mid-run via set_profile() so
  /// campaign phases and the closed-loop controller steer the GPU stand-in
  /// the same way they steer the CPU workers.
  sched::ProfilePtr profile;
  /// Modulation window the schedule is quantized to. DGEMM granularity is
  /// one kernel call (tens of ms at the default matrix size), so periods
  /// far below that degrade to on/off windows.
  double period_s = 0.1;
};

/// Stand-in for FIRESTARTER's cuBLAS DGEMM GPU stress: each simulated
/// device runs C = alpha*A*B + beta*C in a loop on its own buffers
/// ("device memory"), using a cache-blocked kernel. Matrices are
/// initialized *inside the device worker* — mirroring the FIRESTARTER 2
/// improvement where data is initialized directly on the GPU instead of
/// being filled on the host and copied (Sec. III-D).
///
/// Devices follow the load schedule: each modulation window starting at w
/// is busy for its first load_at(w) fraction, idle for the rest — the same
/// lockstep duty-cycling as kernel::ThreadManager, with the device's own
/// epoch anchored at start(). Live profiles (the feedback loop's
/// ControlledProfile) are re-sampled every DGEMM so controller commands act
/// within one kernel call.
class DgemmStressor {
 public:
  explicit DgemmStressor(GpuStressOptions options);
  ~DgemmStressor();
  DgemmStressor(const DgemmStressor&) = delete;
  DgemmStressor& operator=(const DgemmStressor&) = delete;

  void start();
  void stop();

  /// Swap the load schedule the devices follow (null = flat out). Safe
  /// while running — campaign phases retarget the GPU backdrop without
  /// restarting the device threads. Re-anchors the modulation epoch, so
  /// the new profile is evaluated in phase-local time from the swap.
  void set_profile(sched::ProfilePtr profile);

  /// DGEMM iterations completed across all devices.
  std::uint64_t total_gemms() const;

  /// FLOPs executed so far (2*n^3 per DGEMM).
  double total_flops() const;

  /// Checksum of device 0's C matrix — result verification across runs
  /// (bit-flips alter it; same seed must reproduce it).
  double checksum(int device = 0) const;

  const GpuStressOptions& options() const { return options_; }

 private:
  struct Device;
  void device_main(Device& device);
  sched::ProfilePtr current_profile() const;
  void anchor_epoch();
  double elapsed_s() const;

  GpuStressOptions options_;
  std::vector<std::unique_ptr<Device>> devices_;
  mutable std::mutex profile_mutex_;
  sched::ProfilePtr profile_;  ///< guarded by profile_mutex_
  /// Modulation epoch as a steady_clock tick count — atomic because
  /// set_profile() re-anchors it while device threads keep reading
  /// (PhaseClock::restart is not safe against concurrent readers).
  std::atomic<std::int64_t> epoch_ticks_{0};
  std::atomic<bool> start_flag_{false};
  std::atomic<bool> stop_flag_{false};
  bool joined_ = false;
};

/// Single blocked DGEMM: C = alpha*A*B + beta*C, row-major n x n.
/// Exposed for direct testing against a naive reference implementation.
void blocked_dgemm(std::size_t n, double alpha, const double* a, const double* b, double beta,
                   double* c);

}  // namespace fs2::gpu
