#include "jit/assembler.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::jit {

namespace {
constexpr std::uint8_t kModIndirect = 0;      // [reg]
constexpr std::uint8_t kModDisp8 = 1;         // [reg+disp8]
constexpr std::uint8_t kModDisp32 = 2;        // [reg+disp32]
constexpr std::uint8_t kModRegister = 3;      // reg

bool needs_sib(std::uint8_t base_low3) { return base_low3 == 4; }       // rsp/r12
bool disp_required(std::uint8_t base_low3) { return base_low3 == 5; }   // rbp/r13
}  // namespace

void Assembler::dword(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Assembler::qword(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Assembler::rex(bool w, std::uint8_t reg, std::uint8_t rm, bool force, std::uint8_t index) {
  std::uint8_t prefix = 0x40;
  if (w) prefix |= 0x08;
  if (reg & 8) prefix |= 0x04;
  if (index & 8) prefix |= 0x02;
  if (rm & 8) prefix |= 0x01;
  if (prefix != 0x40 || force) byte(prefix);
}

void Assembler::modrm_reg(std::uint8_t reg, std::uint8_t rm) {
  byte(static_cast<std::uint8_t>((kModRegister << 6) | ((reg & 7) << 3) | (rm & 7)));
}

void Assembler::modrm_mem(std::uint8_t reg, const Mem& mem) {
  const std::uint8_t base = id(mem.base);
  const std::uint8_t base_low = base & 7;
  std::uint8_t mod;
  if (mem.disp == 0 && !disp_required(base_low)) {
    mod = kModIndirect;
  } else if (mem.disp >= -128 && mem.disp <= 127) {
    mod = kModDisp8;
  } else {
    mod = kModDisp32;
  }
  byte(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (needs_sib(base_low) ? 4 : base_low)));
  if (needs_sib(base_low)) {
    // SIB with no index: scale=0, index=100 (none), base=base.
    byte(static_cast<std::uint8_t>((4 << 3) | base_low));
  }
  if (mod == kModDisp8) {
    byte(static_cast<std::uint8_t>(mem.disp));
  } else if (mod == kModDisp32) {
    dword(static_cast<std::uint32_t>(mem.disp));
  }
}

void Assembler::vex(std::uint8_t reg, std::uint8_t vvvv, std::uint8_t rm_or_base, bool w,
                    bool l256, std::uint8_t mmmmm, std::uint8_t pp) {
  const bool r = (reg & 8) != 0;
  const bool b = (rm_or_base & 8) != 0;
  // Two-byte form is legal when B=0, X=0 (we never use an index register),
  // W=0, and the opcode map is 0F.
  if (!b && !w && mmmmm == 1) {
    byte(0xC5);
    byte(static_cast<std::uint8_t>(((r ? 0 : 1) << 7) | ((~vvvv & 0xf) << 3) |
                                   ((l256 ? 1 : 0) << 2) | pp));
    return;
  }
  byte(0xC4);
  byte(static_cast<std::uint8_t>(((r ? 0 : 1) << 7) | (1 << 6) /* ~X */ |
                                 ((b ? 0 : 1) << 5) | mmmmm));
  byte(static_cast<std::uint8_t>(((w ? 1 : 0) << 7) | ((~vvvv & 0xf) << 3) |
                                 ((l256 ? 1 : 0) << 2) | pp));
}

void Assembler::vex_rr(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv, std::uint8_t src,
                       bool w, bool l256, std::uint8_t mmmmm, std::uint8_t pp) {
  vex(dst, vvvv, src, w, l256, mmmmm, pp);
  byte(opcode);
  modrm_reg(dst, src);
}

void Assembler::vex_rm(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv, const Mem& mem,
                       bool w, bool l256, std::uint8_t mmmmm, std::uint8_t pp) {
  vex(dst, vvvv, id(mem.base), w, l256, mmmmm, pp);
  byte(opcode);
  modrm_mem(dst, mem);
}

void Assembler::sse_rr(std::uint8_t opcode, std::uint8_t dst, std::uint8_t src) {
  byte(0x66);
  rex(false, dst, src);
  byte(0x0F);
  byte(opcode);
  modrm_reg(dst, src);
}

void Assembler::sse_rm(std::uint8_t opcode, std::uint8_t reg, const Mem& mem) {
  byte(0x66);
  rex(false, reg, id(mem.base));
  byte(0x0F);
  byte(opcode);
  modrm_mem(reg, mem);
}

// ---- labels & control flow --------------------------------------------------

Label Assembler::new_label() {
  label_offsets_.push_back(-1);
  return Label{static_cast<std::uint32_t>(label_offsets_.size() - 1)};
}

void Assembler::bind(Label label) {
  if (label.index >= label_offsets_.size()) throw Error("Assembler::bind: invalid label");
  if (label_offsets_[label.index] >= 0) throw Error("Assembler::bind: label bound twice");
  label_offsets_[label.index] = static_cast<std::int64_t>(code_.size());
}

void Assembler::jcc(std::uint8_t opcode2, Label target) {
  byte(0x0F);
  byte(opcode2);
  fixups_.push_back(Fixup{code_.size(), target.index});
  dword(0);
}

void Assembler::jmp(Label target) {
  byte(0xE9);
  fixups_.push_back(Fixup{code_.size(), target.index});
  dword(0);
}

void Assembler::jnz(Label target) { jcc(0x85, target); }
void Assembler::jz(Label target) { jcc(0x84, target); }

void Assembler::ret() { byte(0xC3); }

// ---- integer ALU --------------------------------------------------------------

void Assembler::mov(Gp dst, std::uint64_t imm) {
  rex(true, 0, id(dst));
  byte(static_cast<std::uint8_t>(0xB8 | (id(dst) & 7)));
  qword(imm);
}

void Assembler::mov(Gp dst, Gp src) {
  rex(true, id(src), id(dst));
  byte(0x89);
  modrm_reg(id(src), id(dst));
}

void Assembler::mov(Gp dst, Mem src) {
  rex(true, id(dst), id(src.base));
  byte(0x8B);
  modrm_mem(id(dst), src);
}

void Assembler::mov(Mem dst, Gp src) {
  rex(true, id(src), id(dst.base));
  byte(0x89);
  modrm_mem(id(src), dst);
}

void Assembler::add(Gp dst, std::int32_t imm) {
  rex(true, 0, id(dst));
  byte(0x81);
  modrm_reg(0, id(dst));
  dword(static_cast<std::uint32_t>(imm));
}

void Assembler::sub(Gp dst, std::int32_t imm) {
  rex(true, 0, id(dst));
  byte(0x81);
  modrm_reg(5, id(dst));
  dword(static_cast<std::uint32_t>(imm));
}

void Assembler::add(Gp dst, Gp src) {
  rex(true, id(src), id(dst));
  byte(0x01);
  modrm_reg(id(src), id(dst));
}

void Assembler::and_(Gp dst, std::int32_t imm) {
  rex(true, 0, id(dst));
  byte(0x81);
  modrm_reg(4, id(dst));
  dword(static_cast<std::uint32_t>(imm));
}

void Assembler::xor_(Gp dst, Gp src) {
  rex(true, id(src), id(dst));
  byte(0x31);
  modrm_reg(id(src), id(dst));
}

void Assembler::shl(Gp dst, std::uint8_t imm) {
  rex(true, 0, id(dst));
  byte(0xC1);
  modrm_reg(4, id(dst));
  byte(imm);
}

void Assembler::shr(Gp dst, std::uint8_t imm) {
  rex(true, 0, id(dst));
  byte(0xC1);
  modrm_reg(5, id(dst));
  byte(imm);
}

void Assembler::dec(Gp dst) {
  rex(true, 0, id(dst));
  byte(0xFF);
  modrm_reg(1, id(dst));
}

void Assembler::inc(Gp dst) {
  rex(true, 0, id(dst));
  byte(0xFF);
  modrm_reg(0, id(dst));
}

void Assembler::test(Gp a, Gp b) {
  rex(true, id(b), id(a));
  byte(0x85);
  modrm_reg(id(b), id(a));
}

void Assembler::cmp(Gp a, std::int32_t imm) {
  rex(true, 0, id(a));
  byte(0x81);
  modrm_reg(7, id(a));
  dword(static_cast<std::uint32_t>(imm));
}

void Assembler::cmp(Gp a, Gp b) {
  rex(true, id(b), id(a));
  byte(0x39);
  modrm_reg(id(b), id(a));
}

void Assembler::push(Gp reg) {
  rex(false, 0, id(reg));
  byte(static_cast<std::uint8_t>(0x50 | (id(reg) & 7)));
}

void Assembler::pop(Gp reg) {
  rex(false, 0, id(reg));
  byte(static_cast<std::uint8_t>(0x58 | (id(reg) & 7)));
}

// ---- AVX / FMA -----------------------------------------------------------------

void Assembler::vmovapd(Ymm dst, Ymm src) { vex_rr(0x28, id(dst), 0, id(src), false, true, 1, 1); }
void Assembler::vmovapd(Ymm dst, Mem src) { vex_rm(0x28, id(dst), 0, src, false, true, 1, 1); }
void Assembler::vmovapd(Mem dst, Ymm src) { vex_rm(0x29, id(src), 0, dst, false, true, 1, 1); }
void Assembler::vmovupd(Mem dst, Ymm src) { vex_rm(0x11, id(src), 0, dst, false, true, 1, 1); }

void Assembler::vaddpd(Ymm dst, Ymm lhs, Ymm rhs) {
  vex_rr(0x58, id(dst), id(lhs), id(rhs), false, true, 1, 1);
}
void Assembler::vaddpd(Ymm dst, Ymm lhs, Mem rhs) {
  vex_rm(0x58, id(dst), id(lhs), rhs, false, true, 1, 1);
}
void Assembler::vmulpd(Ymm dst, Ymm lhs, Ymm rhs) {
  vex_rr(0x59, id(dst), id(lhs), id(rhs), false, true, 1, 1);
}
void Assembler::vmulpd(Ymm dst, Ymm lhs, Mem rhs) {
  vex_rm(0x59, id(dst), id(lhs), rhs, false, true, 1, 1);
}
void Assembler::vxorpd(Ymm dst, Ymm lhs, Ymm rhs) {
  vex_rr(0x57, id(dst), id(lhs), id(rhs), false, true, 1, 1);
}

void Assembler::vfmadd231pd(Ymm dst, Ymm a, Ymm b) {
  // VEX.DDS.256.66.0F38.W1 B8 /r
  vex_rr(0xB8, id(dst), id(a), id(b), true, true, 2, 1);
}
void Assembler::vfmadd231pd(Ymm dst, Ymm a, Mem b) {
  vex_rm(0xB8, id(dst), id(a), b, true, true, 2, 1);
}

void Assembler::vzeroupper() {
  byte(0xC5);
  byte(0xF8);
  byte(0x77);
}

// ---- EVEX / AVX-512 -----------------------------------------------------------

void Assembler::evex(std::uint8_t reg, std::uint8_t vvvv, std::uint8_t rm_or_base, bool w,
                     std::uint8_t mm, std::uint8_t pp) {
  byte(0x62);
  // P0: ~R ~X ~B ~R' 0 0 m m   (X is never used: no index registers)
  byte(static_cast<std::uint8_t>(((reg & 8) ? 0 : 1) << 7 | (1 << 6) |
                                 ((rm_or_base & 8) ? 0 : 1) << 5 | (1 << 4) | mm));
  // P1: W ~v ~v ~v ~v 1 p p
  byte(static_cast<std::uint8_t>(((w ? 1 : 0) << 7) | ((~vvvv & 0xf) << 3) | (1 << 2) | pp));
  // P2: z L'L b ~V' aaa = 0 10 0 1 000 -> 512-bit, merge, no mask.
  byte(0x48);
}

void Assembler::modrm_mem_disp32(std::uint8_t reg, const Mem& mem) {
  const std::uint8_t base_low = id(mem.base) & 7;
  byte(static_cast<std::uint8_t>((kModDisp32 << 6) | ((reg & 7) << 3) |
                                 (needs_sib(base_low) ? 4 : base_low)));
  if (needs_sib(base_low)) byte(static_cast<std::uint8_t>((4 << 3) | base_low));
  dword(static_cast<std::uint32_t>(mem.disp));
}

void Assembler::evex_rr(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv,
                        std::uint8_t src, bool w, std::uint8_t mm, std::uint8_t pp) {
  evex(dst, vvvv, src, w, mm, pp);
  byte(opcode);
  modrm_reg(dst, src);
}

void Assembler::evex_rm(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv,
                        const Mem& mem, bool w, std::uint8_t mm, std::uint8_t pp) {
  evex(dst, vvvv, id(mem.base), w, mm, pp);
  byte(opcode);
  modrm_mem_disp32(dst, mem);
}

void Assembler::vmovapd(Zmm dst, Zmm src) { evex_rr(0x28, id(dst), 0, id(src), true, 1, 1); }
void Assembler::vmovapd(Zmm dst, Mem src) { evex_rm(0x28, id(dst), 0, src, true, 1, 1); }
void Assembler::vmovapd(Mem dst, Zmm src) { evex_rm(0x29, id(src), 0, dst, true, 1, 1); }
void Assembler::vaddpd(Zmm dst, Zmm lhs, Zmm rhs) {
  evex_rr(0x58, id(dst), id(lhs), id(rhs), true, 1, 1);
}
void Assembler::vmulpd(Zmm dst, Zmm lhs, Zmm rhs) {
  evex_rr(0x59, id(dst), id(lhs), id(rhs), true, 1, 1);
}
void Assembler::vfmadd231pd(Zmm dst, Zmm a, Zmm b) {
  evex_rr(0xB8, id(dst), id(a), id(b), true, 2, 1);
}
void Assembler::vfmadd231pd(Zmm dst, Zmm a, Mem b) {
  evex_rm(0xB8, id(dst), id(a), b, true, 2, 1);
}

// ---- SSE2 ------------------------------------------------------------------------

void Assembler::movapd(Xmm dst, Mem src) { sse_rm(0x28, id(dst), src); }
void Assembler::movapd(Mem dst, Xmm src) { sse_rm(0x29, id(src), dst); }
void Assembler::movapd(Xmm dst, Xmm src) { sse_rr(0x28, id(dst), id(src)); }
void Assembler::addpd(Xmm dst, Xmm src) { sse_rr(0x58, id(dst), id(src)); }
void Assembler::addpd(Xmm dst, Mem src) { sse_rm(0x58, id(dst), src); }
void Assembler::mulpd(Xmm dst, Xmm src) { sse_rr(0x59, id(dst), id(src)); }
void Assembler::mulpd(Xmm dst, Mem src) { sse_rm(0x59, id(dst), src); }

// ---- hints & padding ----------------------------------------------------------------

void Assembler::prefetch(Mem addr, PrefetchHint hint) {
  rex(false, static_cast<std::uint8_t>(hint), id(addr.base));
  byte(0x0F);
  byte(0x18);
  modrm_mem(static_cast<std::uint8_t>(hint), addr);
}

void Assembler::nop(std::size_t bytes) {
  // Recommended multi-byte NOP sequences (Intel SDM Table 4-12).
  static constexpr std::uint8_t seqs[9][9] = {
      {0x90},
      {0x66, 0x90},
      {0x0F, 0x1F, 0x00},
      {0x0F, 0x1F, 0x40, 0x00},
      {0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
      {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
  };
  while (bytes > 0) {
    const std::size_t chunk = bytes > 9 ? 9 : bytes;
    for (std::size_t i = 0; i < chunk; ++i) byte(seqs[chunk - 1][i]);
    bytes -= chunk;
  }
}

void Assembler::align(std::size_t boundary) {
  if (boundary == 0) return;
  const std::size_t rem = code_.size() % boundary;
  if (rem != 0) nop(boundary - rem);
}

// ---- finalize -------------------------------------------------------------------------

std::vector<std::uint8_t> Assembler::finalize() {
  for (const Fixup& fixup : fixups_) {
    const std::int64_t target = label_offsets_.at(fixup.label);
    if (target < 0)
      throw Error(strings::format("Assembler::finalize: label %u never bound", fixup.label));
    const std::int64_t rel = target - static_cast<std::int64_t>(fixup.patch_pos) - 4;
    const auto rel32 = static_cast<std::uint32_t>(static_cast<std::int32_t>(rel));
    for (int i = 0; i < 4; ++i)
      code_[fixup.patch_pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rel32 >> (8 * i));
  }
  fixups_.clear();
  return code_;
}

}  // namespace fs2::jit
