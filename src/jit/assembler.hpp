#pragma once

#include <cstdint>
#include <vector>

#include "jit/registers.hpp"

namespace fs2::jit {

/// Forward-referenceable code position. Obtained from Assembler::new_label,
/// bound with Assembler::bind, usable as a branch target before binding.
struct Label {
  std::uint32_t index;
};

/// x86-64 instruction encoder with label management — the subset of AsmJit
/// that FIRESTARTER 2's payload generator needs, implemented from scratch.
///
/// Supported instruction classes:
///  * integer: mov/add/sub/xor/shl/shr/dec/test/cmp, push/pop, jcc/jmp, ret
///  * AVX (VEX): vmovapd/vmovupd, vaddpd/vmulpd/vxorpd, vfmadd231pd (FMA3),
///    register and [base+disp] memory forms
///  * SSE2: movapd/addpd/mulpd for the pre-AVX fallback payload
///  * prefetch with locality hints, multi-byte NOP alignment
///
/// Encoding is deliberately conservative: memory operands are always
/// base+disp (auto-selecting disp0/disp8/disp32 and inserting SIB bytes for
/// rsp/r12 bases), which keeps the encoder small enough to be verified
/// byte-for-byte in tests.
class Assembler {
 public:
  // ---- labels & control flow -------------------------------------------
  Label new_label();
  void bind(Label label);
  void jmp(Label target);   ///< jmp rel32
  void jnz(Label target);   ///< jnz/jne rel32
  void jz(Label target);    ///< jz/je rel32
  void ret();

  // ---- integer ALU -------------------------------------------------------
  void mov(Gp dst, std::uint64_t imm);      ///< mov r64, imm64
  void mov(Gp dst, Gp src);                 ///< mov r64, r64
  void mov(Gp dst, Mem src);                ///< mov r64, [mem]
  void mov(Mem dst, Gp src);                ///< mov [mem], r64
  void add(Gp dst, std::int32_t imm);       ///< add r64, imm32 (sign-extended)
  void sub(Gp dst, std::int32_t imm);
  void add(Gp dst, Gp src);
  void and_(Gp dst, std::int32_t imm);      ///< and r64, imm32 (sign-extended)
  void xor_(Gp dst, Gp src);
  void shl(Gp dst, std::uint8_t imm);
  void shr(Gp dst, std::uint8_t imm);
  void dec(Gp dst);
  void inc(Gp dst);
  void test(Gp a, Gp b);
  void cmp(Gp a, std::int32_t imm);
  void cmp(Gp a, Gp b);
  void push(Gp reg);
  void pop(Gp reg);

  // ---- AVX / FMA (VEX-encoded, 256-bit) ----------------------------------
  void vmovapd(Ymm dst, Ymm src);
  void vmovapd(Ymm dst, Mem src);
  void vmovapd(Mem dst, Ymm src);
  void vmovupd(Mem dst, Ymm src);
  void vaddpd(Ymm dst, Ymm lhs, Ymm rhs);
  void vaddpd(Ymm dst, Ymm lhs, Mem rhs);
  void vmulpd(Ymm dst, Ymm lhs, Ymm rhs);
  void vmulpd(Ymm dst, Ymm lhs, Mem rhs);
  void vxorpd(Ymm dst, Ymm lhs, Ymm rhs);
  void vfmadd231pd(Ymm dst, Ymm a, Ymm b);  ///< dst += a * b
  void vfmadd231pd(Ymm dst, Ymm a, Mem b);
  void vzeroupper();  ///< avoid AVX->SSE transition stalls before returning

  // ---- AVX-512F (EVEX-encoded, 512-bit, zmm0-15, no masking) --------------
  void vmovapd(Zmm dst, Zmm src);
  void vmovapd(Zmm dst, Mem src);
  void vmovapd(Mem dst, Zmm src);
  void vaddpd(Zmm dst, Zmm lhs, Zmm rhs);
  void vmulpd(Zmm dst, Zmm lhs, Zmm rhs);
  void vfmadd231pd(Zmm dst, Zmm a, Zmm b);
  void vfmadd231pd(Zmm dst, Zmm a, Mem b);

  // ---- SSE2 fallback (128-bit, legacy encoding) ---------------------------
  void movapd(Xmm dst, Mem src);
  void movapd(Mem dst, Xmm src);
  void movapd(Xmm dst, Xmm src);
  void addpd(Xmm dst, Xmm src);
  void addpd(Xmm dst, Mem src);
  void mulpd(Xmm dst, Xmm src);
  void mulpd(Xmm dst, Mem src);

  // ---- memory hints & padding ---------------------------------------------
  void prefetch(Mem addr, PrefetchHint hint);
  void nop(std::size_t bytes = 1);   ///< multi-byte NOP sequence
  void align(std::size_t boundary);  ///< pad with NOPs to `boundary` bytes

  // ---- finalization --------------------------------------------------------
  /// Current emitted size in bytes (before fixups; fixup patching does not
  /// change the size).
  std::size_t size() const { return code_.size(); }

  /// Patch all label fixups and return the finished machine code. Throws
  /// fs2::Error if any referenced label was never bound.
  std::vector<std::uint8_t> finalize();

 private:
  // Raw emission helpers.
  void byte(std::uint8_t b) { code_.push_back(b); }
  void dword(std::uint32_t v);
  void qword(std::uint64_t v);

  /// Emit a REX prefix. `w` selects 64-bit operands; reg/rm/index supply the
  /// extension bits. The prefix is omitted when it would be 0x40 and not
  /// required.
  void rex(bool w, std::uint8_t reg, std::uint8_t rm, bool force = false,
           std::uint8_t index = 0);

  /// Emit ModRM (+SIB +disp) addressing `mem` with `reg` in the reg field.
  void modrm_mem(std::uint8_t reg, const Mem& mem);
  void modrm_reg(std::uint8_t reg, std::uint8_t rm);

  /// Emit a VEX prefix (2-byte form when legal, else 3-byte).
  /// mmmmm: 1=0F, 2=0F38, 3=0F3A; pp: 0=none, 1=66, 2=F3, 3=F2.
  void vex(std::uint8_t reg, std::uint8_t vvvv, std::uint8_t rm_or_base, bool w,
           bool l256, std::uint8_t mmmmm, std::uint8_t pp);

  /// VEX op with register rm operand.
  void vex_rr(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv, std::uint8_t src,
              bool w, bool l256, std::uint8_t mmmmm, std::uint8_t pp);
  /// VEX op with memory rm operand.
  void vex_rm(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv, const Mem& mem,
              bool w, bool l256, std::uint8_t mmmmm, std::uint8_t pp);

  /// Emit a 4-byte EVEX prefix (512-bit vector length, no masking, no
  /// broadcast; registers restricted to 0-15 so R'/V' stay clear).
  /// mm: 1=0F, 2=0F38, 3=0F3A; pp as for VEX.
  void evex(std::uint8_t reg, std::uint8_t vvvv, std::uint8_t rm_or_base, bool w,
            std::uint8_t mm, std::uint8_t pp);
  /// EVEX op with register rm operand.
  void evex_rr(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv, std::uint8_t src,
               bool w, std::uint8_t mm, std::uint8_t pp);
  /// EVEX op with memory rm operand. Always uses disp32 addressing to
  /// sidestep EVEX's compressed-disp8 scaling rules.
  void evex_rm(std::uint8_t opcode, std::uint8_t dst, std::uint8_t vvvv, const Mem& mem,
               bool w, std::uint8_t mm, std::uint8_t pp);
  void modrm_mem_disp32(std::uint8_t reg, const Mem& mem);

  /// SSE op: 66 0F <opcode> /r forms.
  void sse_rr(std::uint8_t opcode, std::uint8_t dst, std::uint8_t src);
  void sse_rm(std::uint8_t opcode, std::uint8_t reg, const Mem& mem);

  void jcc(std::uint8_t opcode2, Label target);

  struct Fixup {
    std::size_t patch_pos;  ///< byte offset of the rel32 field
    std::uint32_t label;
  };

  std::vector<std::uint8_t> code_;
  std::vector<std::int64_t> label_offsets_;  ///< -1 while unbound
  std::vector<Fixup> fixups_;
};

}  // namespace fs2::jit
