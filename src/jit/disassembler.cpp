#include "jit/disassembler.hpp"

#include "util/strings.hpp"

namespace fs2::jit {

namespace {

const char* kGpNames[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
                            "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};

std::string vec_name(unsigned reg, int width_doubles) {
  const char* prefix = width_doubles == 8 ? "zmm" : width_doubles == 4 ? "ymm" : "xmm";
  return strings::format("%s%u", prefix, reg);
}

/// Streaming byte reader with bounds checking.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> code, std::size_t pos) : code_(code), pos_(pos) {}
  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }

  std::uint8_t u8() {
    if (pos_ >= code_.size()) {
      ok_ = false;
      return 0;
    }
    return code_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return value;
  }
  std::uint64_t u64() {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) value |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return value;
  }

 private:
  std::span<const std::uint8_t> code_;
  std::size_t pos_;
  bool ok_ = true;
};

/// Decoded ModRM with our addressing subset (base+disp or register).
struct Operand {
  bool is_memory = false;
  unsigned reg = 0;     // reg field (with REX.R/VEX.R extension applied)
  unsigned rm = 0;      // register or base
  std::int32_t disp = 0;

  std::string memory_text() const {
    if (disp == 0) return strings::format("[%s]", kGpNames[rm]);
    return strings::format("[%s%+d]", kGpNames[rm], disp);
  }
};

/// Parse ModRM (+SIB +disp). rex_r/rex_b extend reg/rm.
bool parse_modrm(Reader& r, bool rex_r, bool rex_b, Operand& out) {
  const std::uint8_t modrm = r.u8();
  const unsigned mod = modrm >> 6;
  out.reg = ((modrm >> 3) & 7) | (rex_r ? 8 : 0);
  unsigned rm_low = modrm & 7;
  if (mod == 3) {
    out.is_memory = false;
    out.rm = rm_low | (rex_b ? 8 : 0);
    return r.ok();
  }
  out.is_memory = true;
  if (rm_low == 4) {
    // SIB; we only emit no-index SIBs (index = 100).
    const std::uint8_t sib = r.u8();
    if (((sib >> 3) & 7) != 4) return false;
    rm_low = sib & 7;
  }
  out.rm = rm_low | (rex_b ? 8 : 0);
  if (mod == 0) {
    if (rm_low == 5) return false;  // RIP-relative: never emitted
    out.disp = 0;
  } else if (mod == 1) {
    out.disp = static_cast<std::int8_t>(r.u8());
  } else {
    out.disp = static_cast<std::int32_t>(r.u32());
  }
  return r.ok();
}

std::string two_op(const char* mnemonic, const Operand& op, bool reg_is_dest,
                   int width_doubles) {
  const std::string reg = width_doubles == 0 ? kGpNames[op.reg] : vec_name(op.reg, width_doubles);
  const std::string rm = op.is_memory
                             ? op.memory_text()
                             : (width_doubles == 0 ? kGpNames[op.rm] : vec_name(op.rm, width_doubles));
  if (reg_is_dest) return strings::format("%s %s, %s", mnemonic, reg.c_str(), rm.c_str());
  return strings::format("%s %s, %s", mnemonic, rm.c_str(), reg.c_str());
}

/// Decode the 0F-escape legacy opcodes (jcc, prefetch, nop, SSE with 66).
bool decode_0f(Reader& r, bool has_66, bool rex_r, bool rex_b, std::size_t start,
               std::string& text) {
  const std::uint8_t opcode = r.u8();
  Operand op;
  switch (opcode) {
    case 0x84:
    case 0x85: {
      const auto rel = static_cast<std::int32_t>(r.u32());
      const std::size_t target = r.pos() + static_cast<std::size_t>(rel);
      text = strings::format("%s 0x%zx", opcode == 0x85 ? "jnz" : "jz", target);
      (void)start;
      return r.ok();
    }
    case 0x18: {
      if (!parse_modrm(r, rex_r, rex_b, op) || !op.is_memory) return false;
      static const char* hints[] = {"prefetchnta", "prefetcht0", "prefetcht1", "prefetcht2"};
      if ((op.reg & 7) > 3) return false;
      text = strings::format("%s %s", hints[op.reg & 7], op.memory_text().c_str());
      return true;
    }
    case 0x1F: {
      // Multi-byte NOP: skip the ModRM permissively (NOP encodings use SIB
      // forms with index=000 that the strict parser rejects).
      const std::uint8_t modrm = r.u8();
      const unsigned mod = modrm >> 6;
      if ((modrm & 7) == 4) r.u8();  // SIB
      if (mod == 1) r.u8();
      else if (mod == 2) r.u32();
      text = "nop (multi-byte)";
      return r.ok();
    }
    case 0x28:
    case 0x29:
      if (!has_66 || !parse_modrm(r, rex_r, rex_b, op)) return false;
      text = two_op("movapd", op, opcode == 0x28, 2);
      return true;
    case 0x58:
      if (!has_66 || !parse_modrm(r, rex_r, rex_b, op)) return false;
      text = two_op("addpd", op, true, 2);
      return true;
    case 0x59:
      if (!has_66 || !parse_modrm(r, rex_r, rex_b, op)) return false;
      text = two_op("mulpd", op, true, 2);
      return true;
    default:
      return false;
  }
}

/// Decode a VEX- or EVEX-prefixed vector instruction.
bool decode_vector(Reader& r, std::uint8_t map, std::uint8_t pp, unsigned vvvv,
                   int width_doubles, bool vex_r, bool vex_b, std::string& text) {
  if (pp != 1) return false;  // everything we emit is 66-prefixed
  const std::uint8_t opcode = r.u8();
  Operand op;
  auto three_op = [&](const char* mnemonic) {
    const std::string dst = vec_name(op.reg, width_doubles);
    const std::string src1 = vec_name(vvvv, width_doubles);
    const std::string src2 =
        op.is_memory ? op.memory_text() : vec_name(op.rm, width_doubles);
    return strings::format("%s %s, %s, %s", mnemonic, dst.c_str(), src1.c_str(), src2.c_str());
  };
  if (map == 1) {
    switch (opcode) {
      case 0x28:
      case 0x29:
        if (!parse_modrm(r, vex_r, vex_b, op)) return false;
        text = two_op("vmovapd", op, opcode == 0x28, width_doubles);
        return true;
      case 0x10:
      case 0x11:
        if (!parse_modrm(r, vex_r, vex_b, op)) return false;
        text = two_op("vmovupd", op, opcode == 0x10, width_doubles);
        return true;
      case 0x57:
        if (!parse_modrm(r, vex_r, vex_b, op)) return false;
        text = three_op("vxorpd");
        return true;
      case 0x58:
        if (!parse_modrm(r, vex_r, vex_b, op)) return false;
        text = three_op("vaddpd");
        return true;
      case 0x59:
        if (!parse_modrm(r, vex_r, vex_b, op)) return false;
        text = three_op("vmulpd");
        return true;
      default:
        return false;
    }
  }
  if (map == 2 && opcode == 0xB8) {
    if (!parse_modrm(r, vex_r, vex_b, op)) return false;
    text = three_op("vfmadd231pd");
    return true;
  }
  return false;
}

DecodedInstruction decode_one(std::span<const std::uint8_t> code, std::size_t start) {
  DecodedInstruction out;
  out.offset = start;
  Reader r(code, start);
  std::uint8_t byte = r.u8();
  if (!r.ok()) return out;

  bool has_66 = false;
  if (byte == 0x66) {
    // 66 90 is the 2-byte NOP; otherwise an SSE prefix.
    has_66 = true;
    byte = r.u8();
    if (byte == 0x90) {
      out.text = "nop (2-byte)";
      out.valid = r.ok();
      out.length = r.pos() - start;
      return out;
    }
  }

  // VEX prefixes.
  if (!has_66 && (byte == 0xC5 || byte == 0xC4)) {
    bool vex_r, vex_b = false;
    std::uint8_t map = 1, pp;
    unsigned vvvv;
    int width;
    if (byte == 0xC5) {
      const std::uint8_t p = r.u8();
      if (p == 0xF8 && r.u8() == 0x77) {  // vzeroupper
        out.text = "vzeroupper";
        out.valid = r.ok();
        out.length = r.pos() - start;
        return out;
      }
      // Re-read: the simple path above consumed one byte too many on
      // non-vzeroupper; rebuild the reader.
      r = Reader(code, start + 2);
      vex_r = (p & 0x80) == 0;
      vvvv = (~(p >> 3)) & 0xf;
      width = (p & 0x04) ? 4 : 2;
      pp = p & 3;
    } else {
      const std::uint8_t p0 = r.u8();
      const std::uint8_t p1 = r.u8();
      vex_r = (p0 & 0x80) == 0;
      vex_b = (p0 & 0x20) == 0;
      map = p0 & 0x1f;
      vvvv = (~(p1 >> 3)) & 0xf;
      width = (p1 & 0x04) ? 4 : 2;
      pp = p1 & 3;
    }
    if (decode_vector(r, map, pp, vvvv, width, vex_r, vex_b, out.text)) {
      out.valid = r.ok();
      out.length = r.pos() - start;
    }
    return out;
  }

  // EVEX prefix.
  if (!has_66 && byte == 0x62) {
    const std::uint8_t p0 = r.u8();
    const std::uint8_t p1 = r.u8();
    const std::uint8_t p2 = r.u8();
    const bool evex_r = (p0 & 0x80) == 0;
    const bool evex_b = (p0 & 0x20) == 0;
    const std::uint8_t map = p0 & 3;
    const unsigned vvvv = (~(p1 >> 3)) & 0xf;
    const std::uint8_t pp = p1 & 3;
    const int width = ((p2 >> 5) & 3) == 2 ? 8 : ((p2 >> 5) & 3) == 1 ? 4 : 2;
    if (decode_vector(r, map, pp, vvvv, width, evex_r, evex_b, out.text)) {
      out.valid = r.ok();
      out.length = r.pos() - start;
    }
    return out;
  }

  // REX prefix.
  bool rex_w = false, rex_r = false, rex_b = false;
  if (!has_66 && byte >= 0x40 && byte <= 0x4F) {
    rex_w = byte & 8;
    rex_r = byte & 4;
    rex_b = byte & 1;
    byte = r.u8();
  }
  if (has_66) {
    // 66 [REX] 0F ...: SSE2 path.
    if (byte >= 0x40 && byte <= 0x4F) {
      rex_r = byte & 4;
      rex_b = byte & 1;
      byte = r.u8();
    }
    if (byte != 0x0F) return out;
    if (decode_0f(r, true, rex_r, rex_b, start, out.text)) {
      out.valid = r.ok();
      out.length = r.pos() - start;
    }
    return out;
  }

  Operand op;
  switch (byte) {
    case 0x0F:
      if (decode_0f(r, false, rex_r, rex_b, start, out.text)) break;
      return out;
    case 0x90:
      out.text = "nop";
      break;
    case 0xC3:
      out.text = "ret";
      break;
    case 0xE9: {
      const auto rel = static_cast<std::int32_t>(r.u32());
      out.text = strings::format("jmp 0x%zx", r.pos() + static_cast<std::size_t>(rel));
      break;
    }
    case 0x01:
    case 0x89:
    case 0x8B:
    case 0x31:
    case 0x39:
    case 0x85: {
      if (!parse_modrm(r, rex_r, rex_b, op)) return out;
      const char* mnemonic = byte == 0x01   ? "add"
                             : byte == 0x31 ? "xor"
                             : byte == 0x39 ? "cmp"
                             : byte == 0x85 ? "test"
                                            : "mov";
      out.text = two_op(mnemonic, op, byte == 0x8B, 0);
      break;
    }
    case 0x81: {
      if (!parse_modrm(r, rex_r, rex_b, op) || op.is_memory) return out;
      const auto imm = static_cast<std::int32_t>(r.u32());
      static const char* group1[] = {"add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"};
      out.text = strings::format("%s %s, 0x%x", group1[op.reg & 7], kGpNames[op.rm], imm);
      break;
    }
    case 0xC1: {
      if (!parse_modrm(r, rex_r, rex_b, op) || op.is_memory) return out;
      const std::uint8_t imm = r.u8();
      if ((op.reg & 7) != 4 && (op.reg & 7) != 5) return out;
      out.text = strings::format("%s %s, %u", (op.reg & 7) == 4 ? "shl" : "shr",
                                 kGpNames[op.rm], imm);
      break;
    }
    case 0xFF: {
      if (!parse_modrm(r, rex_r, rex_b, op) || op.is_memory) return out;
      if ((op.reg & 7) > 1) return out;
      out.text = strings::format("%s %s", (op.reg & 7) == 0 ? "inc" : "dec", kGpNames[op.rm]);
      break;
    }
    default:
      if (byte >= 0xB8 && byte <= 0xBF && rex_w) {
        const std::uint64_t imm = r.u64();
        out.text = strings::format("mov %s, 0x%llx", kGpNames[(byte - 0xB8) | (rex_b ? 8 : 0)],
                                   static_cast<unsigned long long>(imm));
        break;
      }
      if (byte >= 0x50 && byte <= 0x57) {
        out.text = strings::format("push %s", kGpNames[(byte - 0x50) | (rex_b ? 8 : 0)]);
        break;
      }
      if (byte >= 0x58 && byte <= 0x5F) {
        out.text = strings::format("pop %s", kGpNames[(byte - 0x58) | (rex_b ? 8 : 0)]);
        break;
      }
      return out;  // unrecognized
  }
  out.valid = r.ok();
  out.length = r.pos() - start;
  return out;
}

}  // namespace

std::vector<DecodedInstruction> disassemble(std::span<const std::uint8_t> code) {
  std::vector<DecodedInstruction> instructions;
  std::size_t pos = 0;
  while (pos < code.size()) {
    // Mapped code buffers are zero-padded to page size; a zero byte is
    // never the start of an emitted instruction and terminates the listing.
    if (code[pos] == 0x00) break;
    DecodedInstruction instruction = decode_one(code, pos);
    if (!instruction.valid) {
      instruction.offset = pos;
      instruction.length = 1;
      instruction.text = strings::format("(byte 0x%02x)", code[pos]);
      instructions.push_back(instruction);
      break;
    }
    pos += instruction.length;
    instructions.push_back(std::move(instruction));
  }
  return instructions;
}

std::string format_listing(std::span<const std::uint8_t> code) {
  std::string out;
  for (const DecodedInstruction& instruction : disassemble(code)) {
    out += strings::format("%6zx:  ", instruction.offset);
    std::string hex;
    for (std::size_t i = 0; i < instruction.length && i < 12; ++i)
      hex += strings::format("%02x ", code[instruction.offset + i]);
    out += strings::format("%-37s %s\n", hex.c_str(), instruction.text.c_str());
  }
  return out;
}

}  // namespace fs2::jit
