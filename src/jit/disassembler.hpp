#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fs2::jit {

/// One decoded instruction.
struct DecodedInstruction {
  std::size_t offset = 0;   ///< byte offset in the code buffer
  std::size_t length = 0;   ///< encoded length in bytes
  std::string text;         ///< AT&T-free Intel-ish mnemonic rendering
  bool valid = false;       ///< false: byte not recognized (decoding stops)
};

/// Disassembler for exactly the instruction subset the fs2 assembler emits
/// (REX/VEX/EVEX forms of the stress-kernel instructions, the integer ALU
/// ops, branches, NOP padding). Not a general x86 decoder: its purpose is
///  * inspecting generated kernels (`fs2 --dump-asm`), and
///  * property-testing the encoder by round-tripping
///    encode -> decode -> compare.
///
/// Decoding stops at the first unrecognized byte (valid=false entry).
std::vector<DecodedInstruction> disassemble(std::span<const std::uint8_t> code);

/// Render a full listing with offsets and hex bytes, one line per
/// instruction.
std::string format_listing(std::span<const std::uint8_t> code);

}  // namespace fs2::jit
