#include "jit/exec_memory.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::jit {

ExecutableBuffer::ExecutableBuffer(std::span<const std::uint8_t> code) {
  if (code.empty()) throw Error("ExecutableBuffer: refusing to map empty code");
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  size_ = (code.size() + page - 1) / page * page;
  void* mem = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED)
    throw Error(strings::format("ExecutableBuffer: mmap of %zu bytes failed", size_));
  std::memcpy(mem, code.data(), code.size());
  if (::mprotect(mem, size_, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(mem, size_);
    throw Error("ExecutableBuffer: mprotect(PROT_READ|PROT_EXEC) failed");
  }
  base_ = mem;
}

ExecutableBuffer::ExecutableBuffer(ExecutableBuffer&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)), size_(std::exchange(other.size_, 0)) {}

ExecutableBuffer& ExecutableBuffer::operator=(ExecutableBuffer&& other) noexcept {
  if (this != &other) {
    this->~ExecutableBuffer();
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

ExecutableBuffer::~ExecutableBuffer() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

}  // namespace fs2::jit
