#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fs2::jit {

/// Owner of a page-aligned executable code region with W^X discipline:
/// the buffer is mapped writable, filled once, then flipped to read+execute.
/// Never writable and executable at the same time.
class ExecutableBuffer {
 public:
  /// Map `code.size()` bytes (rounded up to pages), copy `code` in, and
  /// remap read+execute. Throws fs2::Error when mmap/mprotect fail.
  explicit ExecutableBuffer(std::span<const std::uint8_t> code);

  ExecutableBuffer(const ExecutableBuffer&) = delete;
  ExecutableBuffer& operator=(const ExecutableBuffer&) = delete;
  ExecutableBuffer(ExecutableBuffer&& other) noexcept;
  ExecutableBuffer& operator=(ExecutableBuffer&& other) noexcept;
  ~ExecutableBuffer();

  const void* entry() const { return base_; }
  std::size_t size() const { return size_; }

  /// Reinterpret the entry point as a function pointer of type Fn.
  template <typename Fn>
  Fn as() const {
    return reinterpret_cast<Fn>(const_cast<void*>(entry()));
  }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace fs2::jit
