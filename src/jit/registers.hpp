#pragma once

#include <cstdint>

namespace fs2::jit {

/// 64-bit general-purpose registers, encoded with their hardware numbers.
/// Values 8-15 require a REX.B/REX.R prefix bit, handled by the encoder.
enum class Gp : std::uint8_t {
  rax = 0, rcx, rdx, rbx, rsp, rbp, rsi, rdi,
  r8, r9, r10, r11, r12, r13, r14, r15,
};

/// 256-bit AVX registers. The same numbering is used for XMM views.
enum class Ymm : std::uint8_t {
  ymm0 = 0, ymm1, ymm2, ymm3, ymm4, ymm5, ymm6, ymm7,
  ymm8, ymm9, ymm10, ymm11, ymm12, ymm13, ymm14, ymm15,
};

/// 128-bit SSE registers (used for the SSE2 fallback payload).
enum class Xmm : std::uint8_t {
  xmm0 = 0, xmm1, xmm2, xmm3, xmm4, xmm5, xmm6, xmm7,
  xmm8, xmm9, xmm10, xmm11, xmm12, xmm13, xmm14, xmm15,
};

/// 512-bit AVX-512 registers (EVEX-encoded). Only zmm0-15 are used so the
/// encoder never needs the R'/V' extension bits.
enum class Zmm : std::uint8_t {
  zmm0 = 0, zmm1, zmm2, zmm3, zmm4, zmm5, zmm6, zmm7,
  zmm8, zmm9, zmm10, zmm11, zmm12, zmm13, zmm14, zmm15,
};

constexpr std::uint8_t id(Gp r) { return static_cast<std::uint8_t>(r); }
constexpr std::uint8_t id(Ymm r) { return static_cast<std::uint8_t>(r); }
constexpr std::uint8_t id(Xmm r) { return static_cast<std::uint8_t>(r); }
constexpr std::uint8_t id(Zmm r) { return static_cast<std::uint8_t>(r); }

constexpr Gp gp(unsigned n) { return static_cast<Gp>(n & 15); }
constexpr Ymm ymm(unsigned n) { return static_cast<Ymm>(n & 15); }
constexpr Xmm xmm(unsigned n) { return static_cast<Xmm>(n & 15); }
constexpr Zmm zmm(unsigned n) { return static_cast<Zmm>(n & 15); }

/// True for registers the System V AMD64 ABI requires callees to preserve.
constexpr bool is_callee_saved(Gp r) {
  switch (r) {
    case Gp::rbx: case Gp::rbp: case Gp::r12: case Gp::r13: case Gp::r14: case Gp::r15:
      return true;
    default:
      return false;
  }
}

/// Simple base+displacement memory operand. The stress kernels only ever
/// address [pointer_register + constant offset], so no index/scale support
/// is needed; keeping the operand minimal keeps the encoder verifiable.
struct Mem {
  Gp base;
  std::int32_t disp = 0;
};

inline Mem ptr(Gp base, std::int32_t disp = 0) { return Mem{base, disp}; }

/// Prefetch locality hints, mapping to prefetchnta/t0/t1/t2.
enum class PrefetchHint : std::uint8_t { nta = 0, t0 = 1, t1 = 2, t2 = 3 };

}  // namespace fs2::jit
