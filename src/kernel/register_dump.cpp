#include "kernel/register_dump.hpp"

#include <cmath>
#include <cstring>

#include "util/strings.hpp"

namespace fs2::kernel {

namespace {
constexpr std::size_t kAccumulators = 11;
/// The kernel dump area is laid out as 16 vector slots of 64 B each,
/// regardless of the payload's SIMD width.
constexpr std::size_t kSlotDoubles = 8;
}  // namespace

RegisterSnapshot capture_registers(const ThreadManager& manager) {
  RegisterSnapshot snapshot;
  snapshot.lanes =
      static_cast<std::size_t>(manager.payload().mix().vector_doubles);
  snapshot.values.reserve(manager.num_workers());
  for (std::size_t w = 0; w < manager.num_workers(); ++w) {
    const double* dump = manager.buffer(w).dump();
    std::vector<double> values;
    values.reserve(kAccumulators * snapshot.lanes);
    for (std::size_t reg = 0; reg < kAccumulators; ++reg)
      for (std::size_t lane = 0; lane < snapshot.lanes; ++lane)
        values.push_back(dump[reg * kSlotDoubles + lane]);
    snapshot.values.push_back(std::move(values));
  }
  return snapshot;
}

void write_dump(std::ostream& out, const RegisterSnapshot& snapshot) {
  const char* reg_prefix = snapshot.lanes == 8 ? "zmm" : snapshot.lanes == 4 ? "ymm" : "xmm";
  for (std::size_t w = 0; w < snapshot.values.size(); ++w) {
    out << "worker " << w << ":\n";
    for (std::size_t reg = 0; reg < kAccumulators; ++reg) {
      out << strings::format("  %s%-2zu", reg_prefix, reg);
      for (std::size_t lane = 0; lane < snapshot.lanes; ++lane) {
        const double value = snapshot.values[w][reg * snapshot.lanes + lane];
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        out << strings::format(" %016llx(%.6e)", static_cast<unsigned long long>(bits), value);
      }
      out << '\n';
    }
  }
}

std::vector<std::size_t> diverging_values(const RegisterSnapshot& a, const RegisterSnapshot& b) {
  std::vector<std::size_t> diverging;
  const std::size_t workers = std::min(a.values.size(), b.values.size());
  std::size_t flat = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t n = std::min(a.values[w].size(), b.values[w].size());
    for (std::size_t i = 0; i < n; ++i, ++flat) {
      std::uint64_t bits_a, bits_b;
      std::memcpy(&bits_a, &a.values[w][i], sizeof bits_a);
      std::memcpy(&bits_b, &b.values[w][i], sizeof bits_b);
      if (bits_a != bits_b) diverging.push_back(flat);
    }
  }
  return diverging;
}

bool has_invalid_values(const RegisterSnapshot& snapshot) {
  for (const auto& worker : snapshot.values)
    for (double value : worker) {
      if (!std::isfinite(value)) return true;
      if (value != 0.0 && std::fpclassify(value) == FP_SUBNORMAL) return true;
    }
  return false;
}

}  // namespace fs2::kernel
