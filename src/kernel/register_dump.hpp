#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "kernel/thread_manager.hpp"

namespace fs2::kernel {

/// Snapshot of all workers' SIMD accumulator registers. Sec. III-D: the
/// register flush "enables users to check whether their SIMD units still
/// work correctly when processors are used out of their regular
/// specifications" and lets developers spot diverging numbers after code
/// changes.
struct RegisterSnapshot {
  /// Lanes per accumulator register: 2 (SSE2), 4 (AVX/FMA) or 8 (AVX-512).
  std::size_t lanes = 4;
  /// [worker][value]: 11 accumulators x `lanes` doubles per worker.
  std::vector<std::vector<double>> values;

  bool operator==(const RegisterSnapshot& other) const { return values == other.values; }
};

/// Capture the current dump areas of all workers (valid after the kernel
/// returned from a chunk; the dump stores are part of the kernel epilogue).
RegisterSnapshot capture_registers(const ThreadManager& manager);

/// Write a snapshot in the FIRESTARTER dump format: one line per register
/// with hex bit patterns and decimal values.
void write_dump(std::ostream& out, const RegisterSnapshot& snapshot);

/// Compare two snapshots; returns the flat indices of mismatching values
/// (empty = bit-identical SIMD results).
std::vector<std::size_t> diverging_values(const RegisterSnapshot& a, const RegisterSnapshot& b);

/// True if any captured value is non-finite or denormal — the failure modes
/// Sec. III-D's operand rules exist to prevent.
bool has_invalid_values(const RegisterSnapshot& snapshot);

}  // namespace fs2::kernel
