#include "kernel/selftest.hpp"

#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::kernel {

std::string SelftestResult::describe() const {
  if (passed)
    return strings::format("PASS: %zu workers bit-identical after %llu iterations", workers,
                           static_cast<unsigned long long>(iterations));
  std::string out = "FAIL:";
  if (!diverging_workers.empty()) {
    out += strings::format(" %zu/%zu workers diverged from worker 0 (",
                           diverging_workers.size(), workers);
    for (std::size_t i = 0; i < diverging_workers.size(); ++i)
      out += (i ? "," : "") + std::to_string(diverging_workers[i]);
    out += ")";
  }
  if (invalid_values) out += " non-finite or denormal register values detected";
  return out;
}

SelftestResult run_selftest(const payload::CompiledPayload& payload,
                            const std::vector<int>& cpus, std::uint64_t iterations,
                            std::uint64_t seed) {
  if (cpus.empty()) throw Error("run_selftest: no CPUs given");
  if (iterations == 0) throw Error("run_selftest: iteration count must be positive");

  const std::size_t n = cpus.size();
  std::vector<std::unique_ptr<payload::WorkBuffer>> buffers;
  buffers.reserve(n);
  // Identical seed on purpose: unlike a stress run (where per-worker data
  // maximizes toggling), the self-test needs every worker to compute the
  // same function.
  for (std::size_t i = 0; i < n; ++i) {
    buffers.push_back(payload.make_buffer());
    buffers.back()->init(payload::DataInitPolicy::kSafe, seed);
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      if (cpus[i] >= 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(cpus[i]), &set);
        ::pthread_setaffinity_np(::pthread_self(), sizeof set, &set);
      }
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      payload.fn()(&buffers[i]->args(), iterations);
    });
  }
  while (ready.load(std::memory_order_acquire) < static_cast<int>(n))
    std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  // Compare register dumps bit-exactly against worker 0 and screen for
  // invalid values. The dump area holds 16 x 8 doubles; only the first 11
  // slots (the accumulators) are written.
  const auto lanes = static_cast<std::size_t>(payload.mix().vector_doubles);
  if (buffers[0]->dump()[0] == 0.0 && buffers[0]->dump()[1] == 0.0)
    throw Error("run_selftest: payload was not compiled with dump_registers");

  SelftestResult result;
  result.workers = n;
  result.iterations = iterations;
  for (std::size_t w = 0; w < n; ++w) {
    bool diverged = false;
    for (std::size_t reg = 0; reg < 11; ++reg) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const double value = buffers[w]->dump()[reg * 8 + lane];
        if (!std::isfinite(value) ||
            (value != 0.0 && std::fpclassify(value) == FP_SUBNORMAL))
          result.invalid_values = true;
        if (w > 0) {
          std::uint64_t bits_w, bits_0;
          std::memcpy(&bits_w, &buffers[w]->dump()[reg * 8 + lane], sizeof bits_w);
          std::memcpy(&bits_0, &buffers[0]->dump()[reg * 8 + lane], sizeof bits_0);
          if (bits_w != bits_0) diverged = true;
        }
      }
    }
    if (diverged) result.diverging_workers.push_back(w);
  }
  result.passed = result.diverging_workers.empty() && !result.invalid_values;
  return result;
}

}  // namespace fs2::kernel
