#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "payload/compiler.hpp"

namespace fs2::kernel {

/// Result of one synchronized SIMD self-test round.
struct SelftestResult {
  bool passed = false;
  std::size_t workers = 0;
  std::uint64_t iterations = 0;
  /// Workers whose register state diverged from worker 0 (bit-exact
  /// comparison). Non-empty => some execution unit computed a different
  /// result — on an overclocked machine, the signal to back off.
  std::vector<std::size_t> diverging_workers;
  /// True if any worker produced non-finite or denormal values.
  bool invalid_values = false;

  std::string describe() const;
};

/// Synchronized SIMD error detection (the check Sec. III-D's register
/// flushing enables, and the cross-core variant FIRESTARTER later shipped
/// as --error-detection): every worker runs *exactly* `iterations` loop
/// iterations over identically-seeded operands, so all register states are
/// a pure function of the workload — any pairwise difference is a hardware
/// (or codegen) error, not scheduling noise.
///
/// The payload must be compiled with dump_registers enabled; throws
/// fs2::Error otherwise. `cpus` selects the logical CPUs to test
/// (use -1 entries for unpinned workers).
SelftestResult run_selftest(const payload::CompiledPayload& payload,
                            const std::vector<int>& cpus, std::uint64_t iterations,
                            std::uint64_t seed);

}  // namespace fs2::kernel
