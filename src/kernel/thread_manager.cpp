#include "kernel/thread_manager.hpp"

#include <pthread.h>
#include <sched.h>

#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fs2::kernel {

namespace {

void pin_to_cpu(int cpu) {
  if (cpu < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  if (::pthread_setaffinity_np(::pthread_self(), sizeof set, &set) != 0)
    log::warn() << "failed to pin worker to CPU " << cpu << " (continuing unpinned)";
}

}  // namespace

ThreadManager::ThreadManager(const payload::CompiledPayload& payload, RunOptions options)
    : payload_(payload), options_(std::move(options)) {
  if (options_.cpus.empty()) throw Error("ThreadManager: no CPUs to run on");
  if (!(options_.load >= 0.0 && options_.load <= 1.0))
    throw Error("ThreadManager: load must be within [0, 1]");
  if (!(options_.period_s > 0.0)) throw Error("ThreadManager: period must be > 0");
  if (!(options_.phase_offset_s >= 0.0))
    throw Error("ThreadManager: phase offset must be >= 0");
  profile_ = options_.profile ? options_.profile
                              : std::make_shared<sched::ConstantProfile>(options_.load);
  buffers_.reserve(options_.cpus.size());
  workers_.reserve(options_.cpus.size());
  for (std::size_t i = 0; i < options_.cpus.size(); ++i) {
    buffers_.push_back(payload_.make_buffer());
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < options_.cpus.size(); ++i)
    workers_[i]->thread = std::thread(&ThreadManager::worker_main, this, i, options_.cpus[i]);
  // Wait until every worker initialized its operand buffer so start() hits
  // all of them simultaneously (no staggered power ramp).
  while (ready_count_.load(std::memory_order_acquire) <
         static_cast<int>(options_.cpus.size()))
    std::this_thread::yield();
}

ThreadManager::~ThreadManager() { stop(); }

void ThreadManager::start() {
  // Anchor the shared epoch immediately before release: the release-store /
  // acquire-load pair on started_ publishes the fresh epoch to every worker,
  // so all modulation windows are counted from the same instant. A cluster
  // run injects the coordinator-agreed epoch instead, aligning windows
  // across machines as well as across workers.
  if (options_.epoch) clock_.restart_at(*options_.epoch);
  else clock_.restart();
  started_.store(true, std::memory_order_release);
}

void ThreadManager::stop() {
  if (stopped_.exchange(true)) return;
  stop_flag_.store(true, std::memory_order_release);
  started_.store(true, std::memory_order_release);  // unblock workers never started
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
}

std::uint64_t ThreadManager::total_iterations() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->iterations.load(std::memory_order_relaxed);
  return total;
}

void ThreadManager::worker_main(std::size_t index, int cpu) {
  pin_to_cpu(cpu);
  payload::WorkBuffer& buffer = *buffers_[index];
  // Distinct seed per worker: identical operand streams across cores would
  // underestimate data-toggle power on a real machine.
  buffer.init(options_.policy, options_.seed + index * 0x9e3779b97f4a7c15ULL);
  ready_count_.fetch_add(1, std::memory_order_release);

  while (!started_.load(std::memory_order_acquire)) std::this_thread::yield();

  const payload::KernelFn kernel = payload_.fn();
  Worker& self = *workers_[index];
  const sched::LoadProfile& profile = *profile_;
  const double period = options_.period_s;
  // Rotating-load shift: worker i samples the profile `i * offset` into the
  // future, staggering the pattern across workers.
  const double offset = options_.phase_offset_s * static_cast<double>(index);
  const bool full_load = profile.constant() && profile.load_at(0.0) >= 1.0;
  const bool live = profile.live();

  // Clamped profile sample for the window starting at `w`.
  auto sampled_load = [&profile](double w) {
    return std::min(std::max(profile.load_at(w), 0.0), 1.0);
  };

  // Chunk size adapts so one kernel call lasts roughly 5 ms: long enough to
  // amortize the call, short enough for responsive stop and load control.
  std::uint64_t chunk = 64;
  constexpr double kTargetChunkSeconds = 0.005;

  auto run_chunk = [&] {
    const double t0 = clock_.elapsed();
    const std::uint64_t done = kernel(&buffer.args(), chunk);
    self.iterations.fetch_add(done, std::memory_order_relaxed);
    const double elapsed = clock_.elapsed() - t0;
    if (elapsed > 0.0) {
      const double scale = kTargetChunkSeconds / elapsed;
      if (scale > 2.0 && chunk < (1ull << 24)) chunk *= 2;
      else if (scale < 0.5 && chunk > 16) chunk /= 2;
    }
  };

  while (!stop_flag_.load(std::memory_order_acquire)) {
    if (full_load) {  // hot path: no windowing arithmetic at 100 % load
      run_chunk();
      continue;
    }
    // All workers carve time into the same windows relative to the shared
    // epoch: window k spans [k*period, (k+1)*period) and is busy for its
    // first load_at(window start) fraction. Deriving both boundaries from
    // the epoch (not from per-worker clock reads) keeps the workers'
    // low/high phases aligned no matter how long the run lasts.
    const double t = clock_.elapsed() + offset;
    const double window = sched::PhaseClock::window_start(t, period);
    const double load = sampled_load(window);
    double busy_until = window + load * period;
    const double idle_until = window + period;
    if (load > 0.0) {
      do {
        run_chunk();
        if (stop_flag_.load(std::memory_order_acquire)) return;
        // Live profiles (the closed-loop controller) can lower the command
        // mid-window; shrink the busy span so the actuation latency is one
        // kernel chunk (~5 ms), not a whole modulation window.
        if (live) busy_until = window + sampled_load(window) * period;
      } while (clock_.elapsed() + offset < busy_until);
    }
    while (!stop_flag_.load(std::memory_order_acquire) &&
           clock_.elapsed() + offset < idle_until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      // Symmetric live actuation: a raised command must cut the idle span
      // short the same way a lowered one shrinks the busy span — otherwise
      // raising the level would wait out the window (up to a full period)
      // and the controller would see direction-dependent lag.
      if (live &&
          clock_.elapsed() + offset < window + sampled_load(window) * period)
        break;
    }
  }
}

}  // namespace fs2::kernel
