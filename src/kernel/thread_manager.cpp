#include "kernel/thread_manager.hpp"

#include <pthread.h>
#include <sched.h>

#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace fs2::kernel {

namespace {

void pin_to_cpu(int cpu) {
  if (cpu < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  if (::pthread_setaffinity_np(::pthread_self(), sizeof set, &set) != 0)
    log::warn() << "failed to pin worker to CPU " << cpu << " (continuing unpinned)";
}

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadManager::ThreadManager(const payload::CompiledPayload& payload, RunOptions options)
    : payload_(payload), options_(std::move(options)) {
  if (options_.cpus.empty()) throw Error("ThreadManager: no CPUs to run on");
  if (options_.load < 0.0 || options_.load > 1.0)
    throw Error("ThreadManager: load must be within [0, 1]");
  buffers_.reserve(options_.cpus.size());
  workers_.reserve(options_.cpus.size());
  for (std::size_t i = 0; i < options_.cpus.size(); ++i) {
    buffers_.push_back(payload_.make_buffer());
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < options_.cpus.size(); ++i)
    workers_[i]->thread = std::thread(&ThreadManager::worker_main, this, i, options_.cpus[i]);
  // Wait until every worker initialized its operand buffer so start() hits
  // all of them simultaneously (no staggered power ramp).
  while (ready_count_.load(std::memory_order_acquire) <
         static_cast<int>(options_.cpus.size()))
    std::this_thread::yield();
}

ThreadManager::~ThreadManager() { stop(); }

void ThreadManager::start() { started_.store(true, std::memory_order_release); }

void ThreadManager::stop() {
  if (stopped_.exchange(true)) return;
  stop_flag_.store(true, std::memory_order_release);
  started_.store(true, std::memory_order_release);  // unblock workers never started
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
}

std::uint64_t ThreadManager::total_iterations() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->iterations.load(std::memory_order_relaxed);
  return total;
}

void ThreadManager::worker_main(std::size_t index, int cpu) {
  pin_to_cpu(cpu);
  payload::WorkBuffer& buffer = *buffers_[index];
  // Distinct seed per worker: identical operand streams across cores would
  // underestimate data-toggle power on a real machine.
  buffer.init(options_.policy, options_.seed + index * 0x9e3779b97f4a7c15ULL);
  ready_count_.fetch_add(1, std::memory_order_release);

  while (!started_.load(std::memory_order_acquire)) std::this_thread::yield();

  const payload::KernelFn kernel = payload_.fn();
  Worker& self = *workers_[index];

  // Chunk size adapts so one kernel call lasts roughly 5 ms: long enough to
  // amortize the call, short enough for responsive stop and load control.
  std::uint64_t chunk = 64;
  constexpr double kTargetChunkSeconds = 0.005;

  while (!stop_flag_.load(std::memory_order_acquire)) {
    const double busy_until =
        options_.load < 1.0 ? now_s() + options_.load * options_.period_s : 0.0;
    // Busy phase.
    do {
      const double t0 = now_s();
      const std::uint64_t done = kernel(&buffer.args(), chunk);
      self.iterations.fetch_add(done, std::memory_order_relaxed);
      const double elapsed = now_s() - t0;
      if (elapsed > 0.0) {
        const double scale = kTargetChunkSeconds / elapsed;
        if (scale > 2.0 && chunk < (1ull << 24)) chunk *= 2;
        else if (scale < 0.5 && chunk > 16) chunk /= 2;
      }
      if (stop_flag_.load(std::memory_order_acquire)) return;
    } while (options_.load >= 1.0 || now_s() < busy_until);
    // Idle phase of the duty cycle (--load < 1).
    if (options_.load < 1.0) {
      const double idle_s = (1.0 - options_.load) * options_.period_s;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(idle_s));
      while (!stop_flag_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace fs2::kernel
