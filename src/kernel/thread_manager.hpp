#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "arch/cache.hpp"
#include "payload/compiler.hpp"
#include "payload/data.hpp"
#include "sched/load_profile.hpp"
#include "sched/phase_clock.hpp"

namespace fs2::kernel {

/// Runtime options for the worker threads.
struct RunOptions {
  std::vector<int> cpus;          ///< logical CPUs to pin to (one worker each)
  payload::DataInitPolicy policy = payload::DataInitPolicy::kSafe;
  std::uint64_t seed = 0x5eed;
  double load = 1.0;              ///< busy fraction per period (--load)
  double period_s = 0.1;          ///< load/idle modulation period (-p, seconds)
  /// Dynamic load schedule. When set it overrides `load`: each modulation
  /// window's duty fraction is profile->load_at(window start). When null the
  /// manager behaves like the classic --load square duty cycle (a
  /// ConstantProfile of `load`). Live profiles (control::ControlledProfile,
  /// where a feedback loop rewrites the level while the run executes) are
  /// additionally re-sampled mid-window so commands act within one chunk.
  sched::ProfilePtr profile;
  /// Per-worker time shift: worker i evaluates the profile at t + i * offset.
  /// Non-zero offsets rotate the load pattern across workers (e.g. a square
  /// wave with offset = period/workers keeps exactly one worker busy at a
  /// time); zero keeps all workers in lockstep.
  double phase_offset_s = 0.0;
  /// Cluster epoch injection: anchor the modulation clock to this instant
  /// instead of start()'s call time, so every node of a coordinated run
  /// duty-cycles against the SAME (clock-offset-corrected) epoch and the
  /// fleet's busy/idle windows align across machines — the in-lockstep
  /// load swings the paper's PSU/facility experiments need. Unset keeps
  /// the classic per-run epoch.
  std::optional<sched::PhaseClock::Clock::time_point> epoch;
};

/// Spawns one worker per target CPU, each running the compiled stress
/// kernel in chunks over its own WorkBuffer. This is the "management code"
/// of Fig. 4/5: pinning, synchronized start, responsive stop, load/idle
/// duty-cycling, and loop accounting for the IPC-estimate metric.
class ThreadManager {
 public:
  /// Workers are created suspended; call start() to begin stressing.
  /// The payload must outlive the manager.
  ThreadManager(const payload::CompiledPayload& payload, RunOptions options);
  ~ThreadManager();
  ThreadManager(const ThreadManager&) = delete;
  ThreadManager& operator=(const ThreadManager&) = delete;

  /// Release all workers (they spin-wait after initializing their buffers).
  void start();

  /// Signal stop and join all workers. Idempotent.
  void stop();

  bool running() const { return started_.load() && !stopped_.load(); }
  std::size_t num_workers() const { return workers_.size(); }

  /// Total kernel-loop iterations executed across all workers — the counter
  /// behind the estimated-IPC metric (Sec. III-C).
  std::uint64_t total_iterations() const;

  /// Per-worker buffer (register dump area, operand regions).
  const payload::WorkBuffer& buffer(std::size_t worker) const { return *buffers_.at(worker); }

  /// The load schedule the workers follow (never null; defaults to a
  /// constant profile built from RunOptions::load).
  const sched::LoadProfile& profile() const { return *profile_; }

  /// Clamped schedule level at elapsed time `t_s` — what the orchestrator
  /// publishes on the telemetry bus as the achieved load-level channel.
  double load_at(double t_s) const {
    return std::clamp(profile_->load_at(t_s), 0.0, 1.0);
  }

  /// The shared epoch all workers anchor their modulation windows to.
  const sched::PhaseClock& phase_clock() const { return clock_; }

  /// The payload these workers execute (register-dump readers need its
  /// vector width).
  const payload::CompiledPayload& payload() const { return payload_; }

 private:
  struct Worker {
    std::thread thread;
    std::atomic<std::uint64_t> iterations{0};
  };

  void worker_main(std::size_t index, int cpu);

  const payload::CompiledPayload& payload_;
  RunOptions options_;
  sched::ProfilePtr profile_;  ///< options_.profile or ConstantProfile(load)
  sched::PhaseClock clock_;    ///< re-anchored by start()
  std::vector<std::unique_ptr<payload::WorkBuffer>> buffers_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> ready_count_{0};
};

}  // namespace fs2::kernel
