#include "kernel/watchdog.hpp"

namespace fs2::kernel {

void Watchdog::arm(std::chrono::duration<double> timeout, std::function<void()> on_timeout) {
  cancel();  // tear down any previous timer
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = false;
    fired_ = false;
  }
  thread_ = std::thread([this, timeout, callback = std::move(on_timeout)] {
    std::unique_lock<std::mutex> lock(mutex_);
    if (cv_.wait_for(lock, timeout, [this] { return cancelled_; })) return;
    fired_ = true;
    lock.unlock();
    callback();
  });
}

void Watchdog::cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Watchdog::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

}  // namespace fs2::kernel
