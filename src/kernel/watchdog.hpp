#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace fs2::kernel {

/// Runs a callback after a timeout unless cancelled first — implements the
/// -t/--timeout behaviour (stop stressing after N seconds) without the
/// workers having to watch the clock themselves.
class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog() { cancel(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Arm the watchdog. Replaces any previously armed timer.
  void arm(std::chrono::duration<double> timeout, std::function<void()> on_timeout);

  /// Cancel without firing. Safe to call from any thread, idempotent.
  void cancel();

  bool fired() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool cancelled_ = false;
  bool fired_ = false;

  void join_locked_thread();
};

}  // namespace fs2::kernel
