#include "metrics/coretemp.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "metrics/sysfs.hpp"
#include "util/logging.hpp"

namespace fs2::metrics {

namespace fs = std::filesystem;

namespace {

bool is_cpu_temp_chip(const std::string& chip_name) {
  // Intel package/core sensors, AMD SMU sensors (k10temp covers Zen), and
  // the out-of-tree zenpower variant.
  return chip_name == "coretemp" || chip_name == "k10temp" || chip_name == "zenpower";
}

}  // namespace

CoretempMetric::CoretempMetric(const std::string& sysfs_root) {
  const fs::path base = fs::path(sysfs_root) / "class" / "hwmon";
  std::error_code ec;
  for (const auto& chip : fs::directory_iterator(base, ec)) {
    if (!is_cpu_temp_chip(read_sysfs_line(chip.path() / "name"))) continue;
    std::error_code chip_ec;
    for (const auto& entry : fs::directory_iterator(chip.path(), chip_ec)) {
      const std::string file = entry.path().filename().string();
      if (file.rfind("temp", 0) == 0 && file.size() > 6 &&
          file.compare(file.size() - 6, 6, "_input") == 0)
        sensor_paths_.push_back(entry.path().string());
    }
  }
  std::sort(sensor_paths_.begin(), sensor_paths_.end());
  if (sensor_paths_.empty()) {
    log::debug() << "coretemp: no coretemp/k10temp hwmon chips under " << base.string()
                 << " (metric unavailable)";
    return;
  }
  // Prime the hold-last-good fallback so sensors dying between construction
  // and the first poll still yield a real temperature. If not a single
  // sensor is readable even now (restricted sysfs, containers), the metric
  // is blind from birth — report unavailable rather than a frozen 0 degC
  // that a thermal loop would chase with full load.
  if (!primed()) {
    log::debug() << "coretemp: " << sensor_paths_.size()
                 << " temp inputs found but none readable (metric unavailable)";
    sensor_paths_.clear();
  }
}

bool CoretempMetric::primed() {
  sample();
  return has_reading_;
}

double CoretempMetric::sample() {
  // Accumulate from lowest(), not 0: sub-ambient rigs (chillers, LN2 —
  // plausible users of a VR-stress tool) legitimately report negative
  // degC, and clamping them to 0 would blind a thermal loop.
  double hottest = std::numeric_limits<double>::lowest();
  for (const std::string& path : sensor_paths_) {
    try {
      const std::string text = read_sysfs_line(path);
      if (text.empty()) continue;
      hottest = std::max(hottest, std::stod(text) / 1000.0);
    } catch (...) {
      // Sensors can vanish on hotplug; skip and keep the rest.
    }
  }
  // All sensors gone mid-run: hold the last good reading (primed at
  // construction) instead of inventing a temperature — a thermal feedback
  // loop fed "ice cold" would answer with full load exactly when its eyes
  // went dark.
  if (hottest == std::numeric_limits<double>::lowest()) return last_good_c_;
  last_good_c_ = hottest;
  has_reading_ = true;
  return hottest;
}

}  // namespace fs2::metrics
