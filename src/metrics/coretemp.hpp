#pragma once

#include <string>
#include <vector>

#include "metrics/metric.hpp"

namespace fs2::metrics {

/// Package-temperature metric backed by the hwmon sysfs tree (coretemp on
/// Intel, k10temp on AMD). Reports the hottest sensor of the matching chips
/// in degrees Celsius — the conservative choice for a thermal control loop,
/// which must regulate the worst spot, not the average.
///
/// The sysfs root is injectable so tests run against fixture trees;
/// production uses "/sys".
class CoretempMetric : public Metric {
 public:
  explicit CoretempMetric(const std::string& sysfs_root = "/sys");

  std::string name() const override { return "hwmon-coretemp"; }
  std::string unit() const override { return "degC"; }
  bool available() const override { return !sensor_paths_.empty(); }
  void begin() override {}

  /// Hottest sensor in degC (sysfs reports millidegrees). When every sensor
  /// read fails (hotplug, suspend/resume) the last good reading is held so
  /// a feedback loop does not mistake a dead sensor for a cold package.
  double sample() override;

  /// Sensor files found (temp*_input) — exposed for diagnostics and tests.
  const std::vector<std::string>& sensor_paths() const { return sensor_paths_; }

 private:
  /// First read of all sensors; true when at least one was readable.
  bool primed();

  std::vector<std::string> sensor_paths_;
  double last_good_c_ = 0.0;
  bool has_reading_ = false;
};

}  // namespace fs2::metrics
