#include "metrics/external.hpp"

#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>

#include "util/logging.hpp"

namespace fs2::metrics {

PluginMetric::PluginMetric(const std::string& library_path) : path_(library_path) {
  handle_ = ::dlopen(library_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    log::warn() << "metric plugin '" << library_path << "' failed to load: " << ::dlerror();
    return;
  }
  auto resolve = [this](const char* symbol) -> void* {
    void* fn = ::dlsym(handle_, symbol);
    if (fn == nullptr)
      log::warn() << "metric plugin '" << path_ << "' is missing symbol " << symbol;
    return fn;
  };
  name_fn_ = reinterpret_cast<const char* (*)()>(resolve(ExternalMetricAbi::kName));
  unit_fn_ = reinterpret_cast<const char* (*)()>(resolve(ExternalMetricAbi::kUnit));
  read_fn_ = reinterpret_cast<double (*)()>(resolve(ExternalMetricAbi::kRead));
  fini_fn_ = reinterpret_cast<void (*)()>(resolve(ExternalMetricAbi::kFini));
  auto init_fn = reinterpret_cast<int (*)()>(resolve(ExternalMetricAbi::kInit));
  if (name_fn_ == nullptr || unit_fn_ == nullptr || read_fn_ == nullptr || init_fn == nullptr)
    return;
  if (init_fn() != 0) {
    log::warn() << "metric plugin '" << path_ << "' init failed";
    return;
  }
  ready_ = true;
}

PluginMetric::~PluginMetric() {
  if (ready_ && fini_fn_ != nullptr) fini_fn_();
  if (handle_ != nullptr) ::dlclose(handle_);
}

std::string PluginMetric::name() const {
  return ready_ ? std::string(name_fn_()) : "plugin(" + path_ + ")";
}

std::string PluginMetric::unit() const { return ready_ ? std::string(unit_fn_()) : "?"; }

double PluginMetric::sample() { return ready_ ? read_fn_() : 0.0; }

CommandMetric::CommandMetric(std::string command, std::string metric_name,
                             std::string metric_unit)
    : command_(std::move(command)), name_(std::move(metric_name)), unit_(std::move(metric_unit)) {}

double CommandMetric::sample() {
  if (!available_) return 0.0;
  FILE* pipe = ::popen(command_.c_str(), "r");
  if (pipe == nullptr) {
    log::warn() << "command metric '" << name_ << "': failed to run '" << command_ << "'";
    available_ = false;
    return 0.0;
  }
  char buffer[256] = {};
  const bool got = std::fgets(buffer, sizeof buffer, pipe) != nullptr;
  const int status = ::pclose(pipe);
  if (!got || status != 0) {
    log::warn() << "command metric '" << name_ << "': no parsable output from '" << command_
                << "'";
    available_ = false;
    return 0.0;
  }
  return std::strtod(buffer, nullptr);
}

}  // namespace fs2::metrics
