#pragma once

#include <string>

#include "metrics/metric.hpp"

namespace fs2::metrics {

/// C ABI an external metric shared library must export (--metric-path,
/// Sec. III-C: "libraries written in C/C++ can provide the same
/// functionality with less overhead" than script metrics):
///
///   extern "C" {
///     const char* fs2_metric_name(void);
///     const char* fs2_metric_unit(void);
///     int         fs2_metric_init(void);   // 0 on success
///     double      fs2_metric_read(void);   // current value (gauge)
///     void        fs2_metric_fini(void);
///   }
struct ExternalMetricAbi {
  static constexpr const char* kName = "fs2_metric_name";
  static constexpr const char* kUnit = "fs2_metric_unit";
  static constexpr const char* kInit = "fs2_metric_init";
  static constexpr const char* kRead = "fs2_metric_read";
  static constexpr const char* kFini = "fs2_metric_fini";
};

/// Metric loaded from a shared library via dlopen (the libmetric-metricq.so
/// role in Fig. 10). Unavailable when the library or a symbol is missing or
/// init fails; the error is logged, never thrown, so a broken plugin cannot
/// take down a stress run.
class PluginMetric : public Metric {
 public:
  explicit PluginMetric(const std::string& library_path);
  ~PluginMetric() override;
  PluginMetric(const PluginMetric&) = delete;
  PluginMetric& operator=(const PluginMetric&) = delete;

  std::string name() const override;
  std::string unit() const override;
  bool available() const override { return ready_; }
  void begin() override {}
  double sample() override;

 private:
  void* handle_ = nullptr;
  bool ready_ = false;
  const char* (*name_fn_)() = nullptr;
  const char* (*unit_fn_)() = nullptr;
  double (*read_fn_)() = nullptr;
  void (*fini_fn_)() = nullptr;
  std::string path_;
};

/// Metric that runs an external command for every sample and parses the
/// first line of stdout as a double ("a simple Python script could forward
/// power measurement values from an external power meter", Sec. III-C).
class CommandMetric : public Metric {
 public:
  CommandMetric(std::string command, std::string metric_name, std::string metric_unit);

  std::string name() const override { return name_; }
  std::string unit() const override { return unit_; }
  bool available() const override { return available_; }
  void begin() override {}
  double sample() override;

 private:
  std::string command_;
  std::string name_;
  std::string unit_;
  bool available_ = true;  // degraded to false after the first failure
};

}  // namespace fs2::metrics
