#include "metrics/hw_events.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

#include "util/logging.hpp"

namespace fs2::metrics {

HwEvent HwEvent::instructions() {
  return HwEvent{"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
}
HwEvent HwEvent::cycles() {
  return HwEvent{"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
}
HwEvent HwEvent::zen2_uops_from_decoder() {
  // PPR for AMD Family 17h: PMCx0AA DeDisUopsFromDecoder, umask 0x01.
  return HwEvent{"zen2-uops-from-decoder", PERF_TYPE_RAW, 0x01AA};
}
HwEvent HwEvent::zen2_uops_from_opcache() {
  return HwEvent{"zen2-uops-from-opcache", PERF_TYPE_RAW, 0x02AA};
}
HwEvent HwEvent::zen2_cycles_not_in_halt() {
  return HwEvent{"zen2-cycles-not-in-halt", PERF_TYPE_RAW, 0x76};
}

namespace {
int perf_open(const HwEvent& event, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = event.type;
  attr.size = sizeof attr;
  attr.config = event.config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(::syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}
}  // namespace

HwEventGroup::HwEventGroup(std::vector<HwEvent> events) : events_(std::move(events)) {
  int leader = -1;
  for (const HwEvent& event : events_) {
    const int fd = perf_open(event, leader);
    if (fd < 0) {
      log::debug() << "hw event '" << event.name << "' unavailable on this host";
      for (int open_fd : fds_) ::close(open_fd);
      fds_.clear();
      return;
    }
    if (leader == -1) leader = fd;
    fds_.push_back(fd);
  }
}

HwEventGroup::~HwEventGroup() {
  for (int fd : fds_) ::close(fd);
}

void HwEventGroup::begin() {
  if (!available()) return;
  ::ioctl(fds_.front(), PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(fds_.front(), PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

std::vector<std::uint64_t> HwEventGroup::read() const {
  std::vector<std::uint64_t> values(events_.size(), 0);
  if (!available()) return values;
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    std::uint64_t value = 0;
    if (::read(fds_[i], &value, sizeof value) == static_cast<ssize_t>(sizeof value))
      values[i] = value;
  }
  return values;
}

HwRatioMetric::HwRatioMetric(std::string name, HwEvent numerator, HwEvent denominator)
    : name_(std::move(name)), group_({std::move(numerator), std::move(denominator)}) {}

void HwRatioMetric::begin() {
  group_.begin();
  last_num_ = 0;
  last_den_ = 0;
}

double HwRatioMetric::sample() {
  if (!available()) return 0.0;
  const auto values = group_.read();
  const std::uint64_t d_num = values[0] - last_num_;
  const std::uint64_t d_den = values[1] - last_den_;
  last_num_ = values[0];
  last_den_ = values[1];
  if (d_den == 0) return 0.0;
  return static_cast<double>(d_num) / static_cast<double>(d_den);
}

}  // namespace fs2::metrics
