#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metric.hpp"

namespace fs2::metrics {

/// A hardware performance event by PMU encoding. The paper validates its
/// front-end claims with exactly this mechanism: AMD Zen 2 event 0xAA
/// ("UOps Dispatched From Decoder", PPR 2.1.15.4.4) to confirm op-cache
/// residency and 0x76 ("Cycles not in Halt", 2.1.15.4.2) to detect the
/// 2.5 -> 2.4 GHz throttle of Fig. 8.
struct HwEvent {
  std::string name;
  std::uint32_t type = 4;      ///< perf_event attr.type (4 = PERF_TYPE_RAW)
  std::uint64_t config = 0;    ///< raw event encoding (event | umask << 8)

  /// Generalized cross-vendor events.
  static HwEvent instructions();
  static HwEvent cycles();
  /// AMD family 17h raw events used in Sec. IV-C (only meaningful on Zen).
  static HwEvent zen2_uops_from_decoder();   ///< PMC 0xAA, umask 0x01
  static HwEvent zen2_uops_from_opcache();   ///< PMC 0xAA, umask 0x02
  static HwEvent zen2_cycles_not_in_halt();  ///< PMC 0x76
};

/// A group of hardware counters attached to the calling process, read as
/// per-second rates. Gracefully unavailable when perf_event_open is denied
/// or the PMU lacks the raw event.
class HwEventGroup {
 public:
  explicit HwEventGroup(std::vector<HwEvent> events);
  ~HwEventGroup();
  HwEventGroup(const HwEventGroup&) = delete;
  HwEventGroup& operator=(const HwEventGroup&) = delete;

  bool available() const { return !fds_.empty(); }
  std::size_t size() const { return events_.size(); }
  const HwEvent& event(std::size_t i) const { return events_.at(i); }

  /// Reset and enable all counters.
  void begin();

  /// Raw counter values since begin(), one per event (0 when unavailable).
  std::vector<std::uint64_t> read() const;

 private:
  std::vector<HwEvent> events_;
  std::vector<int> fds_;
};

/// Ratio metric over two hardware events (e.g. op-cache uops / total
/// uops): plugs PMU validation into the normal measurement pipeline.
class HwRatioMetric : public Metric {
 public:
  HwRatioMetric(std::string name, HwEvent numerator, HwEvent denominator);

  std::string name() const override { return name_; }
  std::string unit() const override { return "ratio"; }
  bool available() const override { return group_.available(); }
  void begin() override;
  double sample() override;

 private:
  std::string name_;
  HwEventGroup group_;
  std::uint64_t last_num_ = 0;
  std::uint64_t last_den_ = 0;
};

}  // namespace fs2::metrics
