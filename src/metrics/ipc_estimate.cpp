#include "metrics/ipc_estimate.hpp"

#include <chrono>

namespace fs2::metrics {

IpcEstimateMetric::IpcEstimateMetric(std::function<std::uint64_t()> iteration_counter,
                                     double instructions_per_iteration, double assumed_mhz,
                                     int cores)
    : counter_(std::move(iteration_counter)),
      instr_per_iter_(instructions_per_iteration),
      assumed_mhz_(assumed_mhz),
      cores_(cores) {}

void IpcEstimateMetric::reconfigure(double instructions_per_iteration, double assumed_mhz,
                                    int cores) {
  instr_per_iter_ = instructions_per_iteration;
  assumed_mhz_ = assumed_mhz;
  cores_ = cores;
}

double IpcEstimateMetric::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void IpcEstimateMetric::begin() {
  last_count_ = counter_ ? counter_() : 0;
  last_time_s_ = now_s();
}

double IpcEstimateMetric::sample() {
  if (!counter_) return 0.0;
  const std::uint64_t count = counter_();
  const double t = now_s();
  const double dt = t - last_time_s_;
  const std::uint64_t d_iters = count - last_count_;
  last_count_ = count;
  last_time_s_ = t;
  if (dt <= 0.0 || cores_ <= 0 || assumed_mhz_ <= 0.0) return 0.0;
  const double instructions = static_cast<double>(d_iters) * instr_per_iter_;
  const double cycles = dt * assumed_mhz_ * 1e6 * cores_;
  return instructions / cycles;
}

}  // namespace fs2::metrics
