#pragma once

#include <functional>

#include "metrics/metric.hpp"

namespace fs2::metrics {

/// The paper's fallback IPC metric (Sec. III-C): when perf_event_open is
/// unavailable, IPC is *estimated* from the number of executed inner loops
/// (reported by the workload threads), the statically known instruction
/// count per loop, and an assumed constant core frequency. As the paper
/// notes, the estimate is distorted if the actual frequency changes during
/// the run — which is exactly why the real counter is preferred.
class IpcEstimateMetric : public Metric {
 public:
  /// @param iteration_counter returns total loop iterations executed so far
  ///        (summed over all worker threads); monotonically increasing.
  /// @param instructions_per_iteration from PayloadStats.
  /// @param assumed_mhz the frequency assumed constant during the run.
  /// @param cores number of physical cores the workers occupy.
  IpcEstimateMetric(std::function<std::uint64_t()> iteration_counter,
                    double instructions_per_iteration, double assumed_mhz, int cores);

  std::string name() const override { return "ipc-estimate"; }
  std::string unit() const override { return "instructions/cycle"; }
  bool available() const override { return static_cast<bool>(counter_); }
  void begin() override;
  double sample() override;

  /// Re-parameterize when the workload changes (new payload, new P-state).
  void reconfigure(double instructions_per_iteration, double assumed_mhz, int cores);

 private:
  std::function<std::uint64_t()> counter_;
  double instr_per_iter_;
  double assumed_mhz_;
  int cores_;
  std::uint64_t last_count_ = 0;
  double last_time_s_ = 0.0;

  double now_s() const;
};

}  // namespace fs2::metrics
