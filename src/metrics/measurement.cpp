#include "metrics/measurement.hpp"

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fs2::metrics {

Summary TimeSeries::summarize() const {
  if (aggregator_.total_samples() == 0)
    throw Error("TimeSeries::summarize: metric '" + name_ + "' recorded no samples");
  const telemetry::StreamingSummary stats = aggregator_.summarize();
  if (stats.trim_fallback)
    log::warn() << "metric '" << name_ << "': start/stop deltas ("
                << aggregator_.start_delta_s() << " s / " << aggregator_.stop_delta_s()
                << " s) trimmed away every sample; reporting the untrimmed aggregate";
  Summary summary;
  summary.name = name_;
  summary.unit = unit_;
  summary.mean = stats.mean;
  summary.stddev = stats.stddev;
  summary.min = stats.min;
  summary.max = stats.max;
  summary.p50 = stats.p50;
  summary.p95 = stats.p95;
  summary.p99 = stats.p99;
  summary.samples = stats.samples;
  return summary;
}

void print_csv(std::ostream& out, const std::vector<Summary>& summaries) {
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"metric", "unit", "samples", "mean", "stddev", "min", "max",
                                   "p50", "p95", "p99", "phase"});
  for (const Summary& s : summaries)
    csv.row(std::vector<std::string>{s.name, s.unit, std::to_string(s.samples),
                                     strings::format("%.4f", s.mean),
                                     strings::format("%.4f", s.stddev),
                                     strings::format("%.4f", s.min),
                                     strings::format("%.4f", s.max),
                                     strings::format("%.4f", s.p50),
                                     strings::format("%.4f", s.p95),
                                     strings::format("%.4f", s.p99), s.phase});
}

}  // namespace fs2::metrics
