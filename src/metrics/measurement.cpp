#include "metrics/measurement.hpp"

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace fs2::metrics {

std::vector<double> TimeSeries::trimmed_values(double start_delta_s, double stop_delta_s) const {
  if (samples_.empty()) return {};
  const double end = samples_.back().time_s;
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const Sample& s : samples_)
    if (s.time_s >= start_delta_s && s.time_s <= end - stop_delta_s) values.push_back(s.value);
  return values;
}

Summary TimeSeries::summarize(double start_delta_s, double stop_delta_s) const {
  const std::vector<double> values = trimmed_values(start_delta_s, stop_delta_s);
  if (values.empty())
    throw Error("TimeSeries::summarize: no samples left for metric '" + name_ +
                "' after trimming (start-delta " + std::to_string(start_delta_s) +
                " s, stop-delta " + std::to_string(stop_delta_s) + " s)");
  Summary summary;
  summary.name = name_;
  summary.unit = unit_;
  summary.mean = stats::mean(values);
  summary.stddev = stats::stddev(values);
  summary.min = stats::min(values);
  summary.max = stats::max(values);
  summary.samples = values.size();
  return summary;
}

void print_csv(std::ostream& out, const std::vector<Summary>& summaries) {
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"metric", "unit", "samples", "mean", "stddev", "min", "max",
                                   "phase"});
  for (const Summary& s : summaries)
    csv.row(std::vector<std::string>{s.name, s.unit, std::to_string(s.samples),
                                     strings::format("%.4f", s.mean),
                                     strings::format("%.4f", s.stddev),
                                     strings::format("%.4f", s.min),
                                     strings::format("%.4f", s.max), s.phase});
}

}  // namespace fs2::metrics
