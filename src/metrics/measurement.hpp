#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/metric.hpp"

namespace fs2::metrics {

/// Aggregate of one metric over a measurement window.
struct Summary {
  std::string name;
  std::string unit;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t samples = 0;
  /// Campaign phase this window belongs to (empty outside campaign runs).
  /// Rendered as the trailing "phase" CSV column so every phase of a
  /// multi-phase run gets its own attributed summary rows.
  std::string phase;
};

/// A recorded time series for one metric, with the paper's start/stop-delta
/// trimming semantics (Sec. III-D: "values are averaged over the whole
/// runtime, excluding an arbitrary time during the start and end of the
/// measurement run, with a default of 5 s and 2 s").
class TimeSeries {
 public:
  TimeSeries(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  void add(double time_s, double value) { samples_.push_back(Sample{time_s, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }

  /// Samples with time in [start_delta, duration - stop_delta].
  std::vector<double> trimmed_values(double start_delta_s, double stop_delta_s) const;

  /// Aggregate over the trimmed window. Throws fs2::Error when trimming
  /// removes every sample (misconfigured deltas).
  Summary summarize(double start_delta_s = 5.0, double stop_delta_s = 2.0) const;

 private:
  std::string name_;
  std::string unit_;
  std::vector<Sample> samples_;
};

/// Print summaries as the comma-separated lines FIRESTARTER's --measurement
/// mode emits: "name,unit,samples,mean,stddev,min,max".
void print_csv(std::ostream& out, const std::vector<Summary>& summaries);

}  // namespace fs2::metrics
