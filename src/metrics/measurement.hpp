#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/metric.hpp"
#include "telemetry/ring_buffer.hpp"
#include "telemetry/streaming_aggregator.hpp"

namespace fs2::metrics {

/// Aggregate of one metric over a measurement window.
struct Summary {
  std::string name;
  std::string unit;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Streaming P² quantile estimates (exact for tiny windows): the tail
  /// behaviour the whole-run mean hides — a p99 power excursion is what
  /// trips breakers, not the average.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::size_t samples = 0;
  /// Campaign phase this window belongs to (empty outside campaign runs).
  /// Rendered as the trailing "phase" CSV column so every phase of a
  /// multi-phase run gets its own attributed summary rows.
  std::string phase;
};

/// A measurement window for one metric, with the paper's start/stop-delta
/// trimming semantics (Sec. III-D: "values are averaged over the whole
/// runtime, excluding an arbitrary time during the start and end of the
/// measurement run, with a default of 5 s and 2 s").
///
/// Thin adapter over telemetry::StreamingAggregator: samples are folded
/// into running moments on arrival and are NOT retained (a bounded ring
/// keeps the most recent `tail_capacity` for trace/debug), so a window's
/// memory is O(stop-delta x sample rate + tail), not O(run length). The
/// trim deltas therefore bind at construction, when the window opens — not
/// at summarize time as in the batch implementation this replaces.
class TimeSeries {
 public:
  static constexpr std::size_t kDefaultTailCapacity = 1024;

  TimeSeries(std::string name, std::string unit, double start_delta_s = 5.0,
             double stop_delta_s = 2.0, std::size_t tail_capacity = kDefaultTailCapacity)
      : name_(std::move(name)),
        unit_(std::move(unit)),
        aggregator_(start_delta_s, stop_delta_s),
        tail_(tail_capacity) {}

  void add(double time_s, double value) {
    aggregator_.add(time_s, value);
    tail_.push(Sample{time_s, value});
  }

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  /// Samples observed so far (before trimming).
  std::size_t total_samples() const { return aggregator_.total_samples(); }
  /// Bounded most-recent-samples window (oldest first).
  const telemetry::RingBuffer<Sample>& tail() const { return tail_; }

  /// Aggregate over the trimmed window. Throws fs2::Error when the window
  /// never saw a sample; degrades to the untrimmed aggregate (with a
  /// logged warning) when the deltas trimmed every sample away — short
  /// smoke runs must not abort just because they are shorter than the
  /// paper's 5 s + 2 s defaults.
  Summary summarize() const;

 private:
  std::string name_;
  std::string unit_;
  telemetry::StreamingAggregator aggregator_;
  telemetry::RingBuffer<Sample> tail_;
};

/// Print summaries as the comma-separated lines FIRESTARTER's --measurement
/// mode emits, extended with the streaming quantile estimates:
/// "name,unit,samples,mean,stddev,min,max,p50,p95,p99,phase".
void print_csv(std::ostream& out, const std::vector<Summary>& summaries);

}  // namespace fs2::metrics
