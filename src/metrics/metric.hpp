#pragma once

#include <memory>
#include <string>
#include <vector>

#include "telemetry/sample.hpp"

namespace fs2::metrics {

/// One timestamped metric reading (shared with the telemetry bus the
/// readings travel over).
using Sample = telemetry::Sample;

/// A measurable quantity of the system under stress (paper Sec. III-C).
/// Implementations: RAPL package power, perf_event IPC, estimated IPC,
/// external plugin metrics, and the simulated power meter.
///
/// Protocol: `begin()` arms the metric (resets counters); `sample()` is
/// polled periodically and returns the metric's value over the interval
/// since the previous sample (rate metrics) or the instantaneous value
/// (gauge metrics). Implementations must be safe to begin() repeatedly.
class Metric {
 public:
  virtual ~Metric() = default;

  virtual std::string name() const = 0;
  virtual std::string unit() const = 0;

  /// False when the host lacks the interface (no RAPL sysfs, perf_event
  /// denied, plugin failed to load). Unavailable metrics must not be
  /// polled; callers choose fallbacks (Sec. III-C's estimated IPC).
  virtual bool available() const = 0;

  /// Arm/reset at the start of a measurement window.
  virtual void begin() = 0;

  /// Poll the current value. Called at the window's sampling rate.
  virtual double sample() = 0;
};

using MetricPtr = std::unique_ptr<Metric>;

}  // namespace fs2::metrics
