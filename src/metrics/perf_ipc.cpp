#include "metrics/perf_ipc.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

#include "util/logging.hpp"

namespace fs2::metrics {

namespace {

int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) {
  return static_cast<int>(::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

int open_counter(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.inherit = 1;  // count worker threads spawned after the fact
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return perf_event_open(&attr, 0, -1, group_fd, 0);
}

}  // namespace

PerfIpcMetric::PerfIpcMetric() {
  instructions_fd_ = open_counter(PERF_COUNT_HW_INSTRUCTIONS, -1);
  if (instructions_fd_ >= 0) {
    cycles_fd_ = open_counter(PERF_COUNT_HW_CPU_CYCLES, instructions_fd_);
    if (cycles_fd_ < 0) {
      ::close(instructions_fd_);
      instructions_fd_ = -1;
    }
  }
  if (!available())
    log::debug() << "perf-ipc: perf_event_open unavailable (paranoid setting or no PMU); "
                    "use the IPC estimate instead";
}

PerfIpcMetric::~PerfIpcMetric() {
  if (cycles_fd_ >= 0) ::close(cycles_fd_);
  if (instructions_fd_ >= 0) ::close(instructions_fd_);
}

std::uint64_t PerfIpcMetric::read_counter(int fd) const {
  std::uint64_t value = 0;
  if (::read(fd, &value, sizeof value) != static_cast<ssize_t>(sizeof value)) return 0;
  return value;
}

void PerfIpcMetric::begin() {
  if (!available()) return;
  ::ioctl(instructions_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(instructions_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  last_instructions_ = 0;
  last_cycles_ = 0;
}

double PerfIpcMetric::sample() {
  if (!available()) return 0.0;
  const std::uint64_t instructions = read_counter(instructions_fd_);
  const std::uint64_t cycles = read_counter(cycles_fd_);
  const std::uint64_t d_instr = instructions - last_instructions_;
  const std::uint64_t d_cycles = cycles - last_cycles_;
  last_instructions_ = instructions;
  last_cycles_ = cycles;
  if (d_cycles == 0) return 0.0;
  return static_cast<double>(d_instr) / static_cast<double>(d_cycles);
}

}  // namespace fs2::metrics
