#pragma once

#include <cstdint>

#include "metrics/metric.hpp"

namespace fs2::metrics {

/// IPC via perf_event_open (Sec. III-C): a group of two hardware counters
/// (instructions retired, CPU cycles) attached to the calling process
/// across all CPUs it runs on. Unavailable when the kernel denies the
/// syscall (perf_event_paranoid, seccomp, missing PMU) — callers fall back
/// to IpcEstimateMetric.
class PerfIpcMetric : public Metric {
 public:
  PerfIpcMetric();
  ~PerfIpcMetric() override;
  PerfIpcMetric(const PerfIpcMetric&) = delete;
  PerfIpcMetric& operator=(const PerfIpcMetric&) = delete;

  std::string name() const override { return "perf-ipc"; }
  std::string unit() const override { return "instructions/cycle"; }
  bool available() const override { return instructions_fd_ >= 0 && cycles_fd_ >= 0; }
  void begin() override;
  double sample() override;

 private:
  int instructions_fd_ = -1;
  int cycles_fd_ = -1;
  std::uint64_t last_instructions_ = 0;
  std::uint64_t last_cycles_ = 0;

  std::uint64_t read_counter(int fd) const;
};

}  // namespace fs2::metrics
