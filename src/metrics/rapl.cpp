#include "metrics/rapl.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "metrics/sysfs.hpp"
#include "util/logging.hpp"

namespace fs2::metrics {

namespace fs = std::filesystem;

namespace {

std::uint64_t read_u64(const fs::path& path, std::uint64_t fallback = 0) {
  try {
    const std::string text = read_sysfs_line(path);
    return text.empty() ? fallback : std::stoull(text);
  } catch (...) {
    return fallback;
  }
}

}  // namespace

RaplReader::RaplReader(const std::string& sysfs_root) {
  const fs::path base = fs::path(sysfs_root) / "class" / "powercap";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(base, ec)) {
    const std::string dir_name = entry.path().filename().string();
    if (dir_name.rfind("intel-rapl:", 0) != 0) continue;
    const std::string domain_name = read_sysfs_line(entry.path() / "name");
    // Package domains only: dram/core/uncore subdomains double-count.
    if (domain_name.rfind("package", 0) != 0) continue;
    if (!fs::exists(entry.path() / "energy_uj")) continue;
    RaplDomain domain;
    domain.name = domain_name;
    domain.energy_path = (entry.path() / "energy_uj").string();
    domain.max_range_uj = read_u64(entry.path() / "max_energy_range_uj");
    domains_.push_back(domain);
  }
  if (domains_.empty())
    log::debug() << "RAPL: no package domains under " << base.string()
                 << " (metric unavailable)";
}

std::uint64_t RaplReader::read_total_uj() const {
  std::uint64_t total = 0;
  for (const RaplDomain& domain : domains_) total += read_u64(domain.energy_path);
  return total;
}

RaplPowerMetric::RaplPowerMetric(const std::string& sysfs_root) : reader_(sysfs_root) {}

double RaplPowerMetric::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RaplPowerMetric::begin() {
  last_uj_ = reader_.read_total_uj();
  epoch_s_ = now_s();
  last_time_s_ = epoch_s_;
}

double RaplPowerMetric::sample() {
  const std::uint64_t now_uj = reader_.read_total_uj();
  const double t = now_s();
  const double dt = t - last_time_s_;
  if (dt <= 0.0) return 0.0;
  std::uint64_t delta;
  if (now_uj >= last_uj_) {
    delta = now_uj - last_uj_;
  } else {
    // Counter wrapped: add the combined range of all domains.
    std::uint64_t range = 0;
    for (const RaplDomain& domain : reader_.domains()) range += domain.max_range_uj;
    delta = now_uj + range - last_uj_;
  }
  last_uj_ = now_uj;
  last_time_s_ = t;
  return static_cast<double>(delta) * 1e-6 / dt;  // microjoules -> watts
}

}  // namespace fs2::metrics
