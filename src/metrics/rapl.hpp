#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/metric.hpp"

namespace fs2::metrics {

/// One powercap RAPL domain (package-N or dram) found in sysfs.
struct RaplDomain {
  std::string name;          ///< e.g. "package-0", "dram"
  std::string energy_path;   ///< .../energy_uj
  std::uint64_t max_range_uj = 0;  ///< wraparound point (max_energy_range_uj)
};

/// Scanner for the Intel RAPL powercap sysfs tree. The root is injectable
/// so tests can run against fixture trees; production uses "/sys".
class RaplReader {
 public:
  explicit RaplReader(const std::string& sysfs_root = "/sys");

  bool available() const { return !domains_.empty(); }
  const std::vector<RaplDomain>& domains() const { return domains_; }

  /// Sum the current energy counters of all package domains, handling
  /// counter wraparound relative to `previous` (pass 0 for the first read).
  std::uint64_t read_total_uj() const;

 private:
  std::vector<RaplDomain> domains_;
};

/// Power metric backed by RAPL package counters: the most convenient way
/// for users to measure power on Intel systems (Sec. III-C). Reports watts
/// as delta(energy)/delta(time) between polls, with wraparound correction.
class RaplPowerMetric : public Metric {
 public:
  explicit RaplPowerMetric(const std::string& sysfs_root = "/sys");

  std::string name() const override { return "sysfs-powercap-rapl"; }
  std::string unit() const override { return "W"; }
  bool available() const override { return reader_.available(); }
  void begin() override;
  double sample() override;

 private:
  RaplReader reader_;
  std::uint64_t last_uj_ = 0;
  double last_time_s_ = 0.0;
  double epoch_s_ = 0.0;

  double now_s() const;
};

}  // namespace fs2::metrics
