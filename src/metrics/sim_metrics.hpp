#pragma once

#include "metrics/metric.hpp"
#include "sim/sim_system.hpp"
#include "util/rng.hpp"

namespace fs2::metrics {

/// Simulated wall-power meter: reads the SimulatedSystem's current
/// operating point and adds LMG95-like measurement noise. This stands in
/// for the external power meter + MetricQ pipeline of Fig. 10 and exercises
/// the exact code path an external metric plugin would.
class SimPowerMetric : public Metric {
 public:
  SimPowerMetric(const sim::SimulatedSystem* system, std::uint64_t seed = 0x1349)
      : system_(system), rng_(seed) {}

  std::string name() const override { return "sim-wall-power"; }
  std::string unit() const override { return "W"; }
  bool available() const override { return system_ != nullptr; }
  void begin() override {}
  double sample() override {
    const double power = system_->point().power_w;
    return power * (1.0 + 0.004 * rng_.normal());
  }

 private:
  const sim::SimulatedSystem* system_;
  Xoshiro256 rng_;
};

/// Simulated per-core IPC counter (the perf-ipc analogue for
/// simulator-backed runs).
class SimIpcMetric : public Metric {
 public:
  explicit SimIpcMetric(const sim::SimulatedSystem* system) : system_(system) {}

  std::string name() const override { return "sim-perf-ipc"; }
  std::string unit() const override { return "instructions/cycle"; }
  bool available() const override { return system_ != nullptr; }
  void begin() override {}
  double sample() override { return system_->point().ipc_per_core; }

 private:
  const sim::SimulatedSystem* system_;
};

}  // namespace fs2::metrics
