#pragma once

#include <filesystem>
#include <fstream>
#include <string>

namespace fs2::metrics {

/// First line of a sysfs attribute file, or "" when the file is missing or
/// unreadable — sysfs attributes are one value per file, so this is the
/// whole read protocol shared by the RAPL and hwmon scanners.
inline std::string read_sysfs_line(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}

}  // namespace fs2::metrics
