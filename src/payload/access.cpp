#include "payload/access.hpp"

#include "util/strings.hpp"

namespace fs2::payload {

const char* to_string(MemoryLevel level) {
  switch (level) {
    case MemoryLevel::kReg: return "REG";
    case MemoryLevel::kL1: return "L1";
    case MemoryLevel::kL2: return "L2";
    case MemoryLevel::kL3: return "L3";
    case MemoryLevel::kRam: return "RAM";
  }
  return "?";
}

const char* to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kLoad: return "L";
    case AccessPattern::kStore: return "S";
    case AccessPattern::kLoadStore: return "LS";
    case AccessPattern::kTwoLoadsStore: return "2LS";
    case AccessPattern::kPrefetch: return "P";
  }
  return "?";
}

std::string AccessKind::to_string() const {
  if (level == MemoryLevel::kReg) return "REG";
  return std::string(payload::to_string(level)) + "_" + payload::to_string(pattern);
}

int AccessKind::loads() const {
  if (level == MemoryLevel::kReg) return 0;
  switch (pattern) {
    case AccessPattern::kLoad: return 1;
    case AccessPattern::kStore: return 0;
    case AccessPattern::kLoadStore: return 1;
    case AccessPattern::kTwoLoadsStore: return 2;
    case AccessPattern::kPrefetch: return 0;
  }
  return 0;
}

int AccessKind::stores() const {
  if (level == MemoryLevel::kReg) return 0;
  switch (pattern) {
    case AccessPattern::kStore:
    case AccessPattern::kLoadStore:
    case AccessPattern::kTwoLoadsStore:
      return 1;
    default:
      return 0;
  }
}

int AccessKind::prefetches() const {
  return level != MemoryLevel::kReg && pattern == AccessPattern::kPrefetch ? 1 : 0;
}

int AccessKind::memory_ops() const { return loads() + stores() + prefetches(); }

bool is_valid(MemoryLevel level, AccessPattern pattern) {
  switch (level) {
    case MemoryLevel::kReg:
      return true;  // pattern is ignored
    case MemoryLevel::kL1:
      // L1 is close enough that prefetching it is pointless.
      return pattern != AccessPattern::kPrefetch;
    case MemoryLevel::kL2:
      // 2LS at L2 would exceed the per-cycle L2 bandwidth on every target
      // microarchitecture; FIRESTARTER defines L, S, LS.
      return pattern == AccessPattern::kLoad || pattern == AccessPattern::kStore ||
             pattern == AccessPattern::kLoadStore;
    case MemoryLevel::kL3:
    case MemoryLevel::kRam:
      // Distant levels support prefetch (non-blocking warm-up) but not 2LS.
      return pattern != AccessPattern::kTwoLoadsStore;
  }
  return false;
}

std::optional<AccessKind> parse_access_kind(const std::string& text) {
  const std::string upper = strings::to_upper(strings::trim(text));
  if (upper == "REG") return AccessKind{MemoryLevel::kReg, AccessPattern::kLoad};

  const auto underscore = upper.find('_');
  if (underscore == std::string::npos) return std::nullopt;
  const std::string level_text = upper.substr(0, underscore);
  const std::string pattern_text = upper.substr(underscore + 1);

  MemoryLevel level;
  if (level_text == "L1") level = MemoryLevel::kL1;
  else if (level_text == "L2") level = MemoryLevel::kL2;
  else if (level_text == "L3") level = MemoryLevel::kL3;
  else if (level_text == "RAM") level = MemoryLevel::kRam;
  else return std::nullopt;

  AccessPattern pattern;
  if (pattern_text == "L") pattern = AccessPattern::kLoad;
  else if (pattern_text == "S") pattern = AccessPattern::kStore;
  else if (pattern_text == "LS") pattern = AccessPattern::kLoadStore;
  else if (pattern_text == "2LS") pattern = AccessPattern::kTwoLoadsStore;
  else if (pattern_text == "P") pattern = AccessPattern::kPrefetch;
  else return std::nullopt;

  if (!is_valid(level, pattern)) return std::nullopt;
  return AccessKind{level, pattern};
}

const std::vector<AccessKind>& all_access_kinds() {
  static const std::vector<AccessKind> kinds = [] {
    std::vector<AccessKind> out;
    out.push_back(AccessKind{MemoryLevel::kReg, AccessPattern::kLoad});
    for (MemoryLevel level : {MemoryLevel::kL1, MemoryLevel::kL2, MemoryLevel::kL3, MemoryLevel::kRam})
      for (AccessPattern pattern :
           {AccessPattern::kLoad, AccessPattern::kStore, AccessPattern::kLoadStore,
            AccessPattern::kTwoLoadsStore, AccessPattern::kPrefetch})
        if (is_valid(level, pattern)) out.push_back(AccessKind{level, pattern});
    return out;
  }();
  return kinds;
}

}  // namespace fs2::payload
