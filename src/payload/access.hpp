#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fs2::payload {

/// Memory hierarchy level an instruction group targets (Eq. 1 of the
/// paper): registers, one of the three cache levels, or main memory.
enum class MemoryLevel { kReg = 0, kL1, kL2, kL3, kRam };

/// Access pattern for non-register levels (Eq. 1): Load, Store,
/// Load+Store, 2 Loads+Store, Prefetch.
enum class AccessPattern { kLoad, kStore, kLoadStore, kTwoLoadsStore, kPrefetch };

constexpr int kNumMemoryLevels = 5;

const char* to_string(MemoryLevel level);
const char* to_string(AccessPattern pattern);

/// One access definition: a level plus (for non-register levels) a pattern.
/// Serialized in the FIRESTARTER grammar: "REG", "L1_L", "L2_LS", "RAM_P".
struct AccessKind {
  MemoryLevel level = MemoryLevel::kReg;
  AccessPattern pattern = AccessPattern::kLoad;  ///< ignored for kReg

  bool operator==(const AccessKind& other) const {
    if (level != other.level) return false;
    return level == MemoryLevel::kReg || pattern == other.pattern;
  }

  std::string to_string() const;

  /// Number of cache lines touched per occurrence (loads + stores + prefetches).
  int memory_ops() const;
  int loads() const;
  int stores() const;
  int prefetches() const;
};

/// "Not all patterns are defined for all levels" (paper footnote 2).
/// This predicate is the single source of truth for the grammar validator,
/// the payload compiler, and the NSGA-II genome layout.
bool is_valid(MemoryLevel level, AccessPattern pattern);

/// Parse "REG" / "<LEVEL>_<PATTERN>". Returns nullopt on malformed input.
std::optional<AccessKind> parse_access_kind(const std::string& text);

/// Every valid AccessKind, in canonical order (REG, L1_*, L2_*, L3_*, RAM_*).
/// This is the NSGA-II genome layout.
const std::vector<AccessKind>& all_access_kinds();

}  // namespace fs2::payload
