#include "payload/compiler.hpp"

#include <algorithm>
#include <array>

#include "jit/assembler.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace fs2::payload {

namespace {

using jit::Assembler;
using jit::Gp;
using jit::Mem;
using jit::PrefetchHint;
using jit::Xmm;
using jit::Ymm;
using jit::Zmm;

/// Byte offsets of KernelArgs fields, fixed by the struct definition.
constexpr std::int32_t kArgConsts = 0;
constexpr std::int32_t kArgL1 = 8;
constexpr std::int32_t kArgL2 = 16;
constexpr std::int32_t kArgL3 = 24;
constexpr std::int32_t kArgRam = 32;
constexpr std::int32_t kArgDump = 40;

/// Byte offsets inside the constants block.
constexpr std::int32_t kConstMultPos = ConstLayout::kMultPos * sizeof(double);
constexpr std::int32_t kConstMultNeg = ConstLayout::kMultNeg * sizeof(double);
constexpr std::int32_t kConstOnes = ConstLayout::kOnes * sizeof(double);
constexpr std::int32_t kConstMulUp = ConstLayout::kMulUp * sizeof(double);
constexpr std::int32_t kConstMulDown = ConstLayout::kMulDown * sizeof(double);
constexpr std::int32_t kConstAccSeeds = ConstLayout::kAccSeeds * sizeof(double);

/// Number of SIMD accumulator registers. Odd on purpose: instruction sets
/// alternate the sign of the FMA contribution with set-index parity, and an
/// odd rotation length guarantees every accumulator receives both signs
/// equally often, keeping register values bounded (Sec. III-D).
constexpr unsigned kAccumulators = 11;

/// Integer toggle patterns for the ALU filler instructions (Sec. IV-B,
/// footnote 9: shifts toggle between 0b0101... and 0b1010...).
constexpr std::uint64_t kPattern01 = 0x5555555555555555ULL;
constexpr std::uint64_t kPattern10 = 0xAAAAAAAAAAAAAAAAULL;

/// Code generator for one workload. Tracks instruction counts while
/// emitting so PayloadStats is exact by construction.
class KernelBuilder {
 public:
  KernelBuilder(const InstructionMix& mix, const InstructionGroups& groups,
                const arch::CacheHierarchy& caches, const CompileOptions& options)
      : mix_(mix), groups_(groups), caches_(caches), options_(options) {}

  /// Emit the full kernel; returns finished machine code and fills stats().
  std::vector<std::uint8_t> build() {
    const std::vector<AccessKind> base = base_sequence(groups_);
    const std::uint32_t unroll = options_.unroll != 0 ? options_.unroll : default_unroll(base);
    prepare(unroll_sequence(base, unroll));
    emit_prologue();
    emit_loop();
    emit_epilogue();
    return asm_.finalize();
  }

  const PayloadStats& stats() const { return stats_; }

 private:
  // ---- register conventions (see compiler.hpp for the ABI) -----------------
  //   rdi: KernelArgs*, later the constants base
  //   rsi: loop count arg, later the 0b1010 xor source pattern
  //   rax: return value (iterations executed)
  //   rcx: loop countdown
  //   rdx: xor target register,  r11: shift register
  //   r8/r9/r10/rbx: L1/L2/L3/RAM streaming cursors
  //   r12: register-dump pointer (only when enabled)
  static constexpr Gp kCursor[kNumMemoryLevels] = {Gp::rax /*unused for REG*/, Gp::r8, Gp::r9,
                                                   Gp::r10, Gp::rbx};

  /// Derive all static per-sequence state the emitters depend on.
  void prepare(std::vector<AccessKind> sequence) {
    stats_.vector_doubles = mix_.vector_doubles;
    sequence_ = std::move(sequence);
    stats_.sequence = analyze_sequence(sequence_);
    stats_.unroll = static_cast<std::uint32_t>(sequence_.size());
    for (int level = 0; level < kNumMemoryLevels; ++level)
      stats_.bytes_per_iteration[level] =
          static_cast<std::uint64_t>(stats_.sequence.lines(static_cast<MemoryLevel>(level))) * 64;
    stats_.regions = RegionSizes::from_hierarchy(caches_, options_.ram_region_bytes)
                         .finalized(stats_.sequence);
    // Per-level addressing mode. Streaming: every access in an iteration
    // hits a distinct line and the cursor advances by the full span, so
    // consecutive iterations never overlap (forces misses in the levels
    // above). Resident: the per-iteration span would exceed the region, so
    // displacements wrap inside the region and the cursor stays put — the
    // accesses are intended to *hit* this level (the L1 case).
    for (int level = 1; level < kNumMemoryLevels; ++level) {
      const std::uint64_t span =
          static_cast<std::uint64_t>(stats_.sequence.lines(static_cast<MemoryLevel>(level))) * 64;
      streaming_[static_cast<std::size_t>(level)] =
          span > 0 && span < stats_.regions.bytes[level];
    }
  }

  std::uint32_t default_unroll(const std::vector<AccessKind>& base) {
    // Trial-encode one pass over the base sequence to learn the real bytes
    // per instruction set, then size u so the loop fills ~3/4 of L1-I:
    // large enough to spill the micro-op/loop buffers, small enough to
    // avoid instruction fetches from L2 (Sec. IV-C).
    KernelBuilder trial(mix_, groups_, caches_, CompileOptions{.unroll = 1, .dump_registers = false});
    trial.prepare(base);
    const std::size_t before = trial.asm_.size();
    for (std::size_t i = 0; i < base.size(); ++i) trial.emit_set(base[i], i);
    const std::size_t bytes = trial.asm_.size() - before;
    const double per_set = static_cast<double>(bytes) / static_cast<double>(base.size());
    std::size_t l1i = caches_.l1i_size();
    if (l1i == 0) l1i = 32 * 1024;
    const auto u = static_cast<std::uint32_t>(static_cast<double>(l1i) * 0.75 / per_set);
    return std::max<std::uint32_t>(u, static_cast<std::uint32_t>(base.size()));
  }

  void emit_prologue() {
    asm_.push(Gp::rbx);
    if (options_.dump_registers) asm_.push(Gp::r12);

    asm_.mov(Gp::rax, Gp::rsi);                   // return value
    asm_.mov(Gp::rcx, Gp::rsi);                   // countdown
    asm_.mov(Gp::r8, jit::ptr(Gp::rdi, kArgL1));
    asm_.mov(Gp::r9, jit::ptr(Gp::rdi, kArgL2));
    asm_.mov(Gp::r10, jit::ptr(Gp::rdi, kArgL3));
    asm_.mov(Gp::rbx, jit::ptr(Gp::rdi, kArgRam));
    if (options_.dump_registers) asm_.mov(Gp::r12, jit::ptr(Gp::rdi, kArgDump));
    asm_.mov(Gp::rdi, jit::ptr(Gp::rdi, kArgConsts));  // rdi now = constants base

    exit_label_ = asm_.new_label();
    asm_.test(Gp::rcx, Gp::rcx);
    asm_.jz(exit_label_);  // loops == 0: skip body and dump

    asm_.mov(Gp::rdx, kPattern01);
    asm_.mov(Gp::rsi, kPattern10);
    asm_.mov(Gp::r11, kPattern01);

    if (mix_.isa == IsaClass::kSse2) {
      // xmm12/13 = +x/-x additive toggles, xmm14/15 = m and 1/m
      // multiplicative toggles (never the trivial 1.0, Sec. III-D).
      asm_.movapd(Xmm::xmm12, jit::ptr(Gp::rdi, kConstMultPos));
      asm_.movapd(Xmm::xmm13, jit::ptr(Gp::rdi, kConstMultNeg));
      asm_.movapd(Xmm::xmm14, jit::ptr(Gp::rdi, kConstMulUp));
      asm_.movapd(Xmm::xmm15, jit::ptr(Gp::rdi, kConstMulDown));
      for (unsigned i = 0; i < kAccumulators; ++i)
        asm_.movapd(jit::xmm(i), jit::ptr(Gp::rdi, acc_seed_offset(i)));
    } else if (mix_.isa == IsaClass::kAvx) {
      asm_.vmovapd(Ymm::ymm12, jit::ptr(Gp::rdi, kConstMultPos));
      asm_.vmovapd(Ymm::ymm13, jit::ptr(Gp::rdi, kConstMultNeg));
      asm_.vmovapd(Ymm::ymm14, jit::ptr(Gp::rdi, kConstMulUp));
      asm_.vmovapd(Ymm::ymm15, jit::ptr(Gp::rdi, kConstMulDown));
      for (unsigned i = 0; i < kAccumulators; ++i)
        asm_.vmovapd(jit::ymm(i), jit::ptr(Gp::rdi, acc_seed_offset(i)));
    } else if (mix_.isa == IsaClass::kAvx512) {
      // 512-bit variant of the FMA register plan, on zmm.
      asm_.vmovapd(Zmm::zmm12, jit::ptr(Gp::rdi, kConstMultPos));
      asm_.vmovapd(Zmm::zmm13, jit::ptr(Gp::rdi, kConstMultNeg));
      asm_.vmovapd(Zmm::zmm14, jit::ptr(Gp::rdi, kConstOnes));
      for (unsigned i = 0; i < kAccumulators; ++i)
        asm_.vmovapd(jit::zmm(i), jit::ptr(Gp::rdi, acc_seed_offset_wide(i)));
    } else {
      // FMA mix: ymm12/13 = +x/-x multiplier toggles, ymm14 = 1.0 operand
      // for the multiplicand slot (the *multiplier* is never trivial).
      asm_.vmovapd(Ymm::ymm12, jit::ptr(Gp::rdi, kConstMultPos));
      asm_.vmovapd(Ymm::ymm13, jit::ptr(Gp::rdi, kConstMultNeg));
      asm_.vmovapd(Ymm::ymm14, jit::ptr(Gp::rdi, kConstOnes));
      for (unsigned i = 0; i < kAccumulators; ++i)
        asm_.vmovapd(jit::ymm(i), jit::ptr(Gp::rdi, acc_seed_offset(i)));
    }

    // Align the loop entry to a cache line so the measured loop size is
    // exactly the distance between the label and the backward branch.
    asm_.align(64);
  }

  static std::int32_t acc_seed_offset(unsigned i) {
    return kConstAccSeeds + static_cast<std::int32_t>(i) * 32;
  }
  /// 64 B stride for zmm seeds (the seed area holds 16 x 64 B).
  static std::int32_t acc_seed_offset_wide(unsigned i) {
    return kConstAccSeeds + static_cast<std::int32_t>(i) * 64;
  }

  void emit_loop() {
    loop_label_ = asm_.new_label();
    asm_.bind(loop_label_);
    const std::size_t loop_start = asm_.size();

    line_cursor_.fill(0);
    for (std::size_t i = 0; i < sequence_.size(); ++i) emit_set(sequence_[i], i);

    // Advance and wrap each streaming-mode cursor. Regions are aligned to
    // twice their (power-of-two) size, so wrapping is a single AND that
    // clears the region-size address bit. Resident-mode levels keep their
    // cursor at the region base and need no update.
    for (int level = 1; level < kNumMemoryLevels; ++level) {
      if (!streaming_[static_cast<std::size_t>(level)]) continue;
      const auto lines = stats_.sequence.lines(static_cast<MemoryLevel>(level));
      const Gp cursor = kCursor[level];
      asm_.add(cursor, static_cast<std::int32_t>(lines) * 64);
      asm_.and_(cursor, ~static_cast<std::int32_t>(stats_.regions.bytes[level]));
      stats_.overhead_per_iteration += 2;
    }

    asm_.dec(Gp::rcx);
    asm_.jnz(loop_label_);
    stats_.overhead_per_iteration += 2;
    stats_.loop_bytes = static_cast<std::uint32_t>(asm_.size() - loop_start);
    stats_.instructions_per_iteration =
        stats_.simd_per_iteration + stats_.alu_per_iteration + stats_.overhead_per_iteration;
  }

  void emit_epilogue() {
    if (options_.dump_registers) {
      // Flush accumulator registers so the harness can check SIMD unit
      // correctness across runs (--dump-registers, Sec. III-D). The dump
      // area is laid out as 16 x 64 B vector slots regardless of width.
      for (unsigned i = 0; i < kAccumulators; ++i) {
        const auto offset = static_cast<std::int32_t>(i) * 64;
        switch (mix_.isa) {
          case IsaClass::kSse2: asm_.movapd(jit::ptr(Gp::r12, offset), jit::xmm(i)); break;
          case IsaClass::kAvx:
          case IsaClass::kFma: asm_.vmovapd(jit::ptr(Gp::r12, offset), jit::ymm(i)); break;
          case IsaClass::kAvx512: asm_.vmovapd(jit::ptr(Gp::r12, offset), jit::zmm(i)); break;
        }
      }
    }
    asm_.bind(exit_label_);
    if (mix_.isa != IsaClass::kSse2) asm_.vzeroupper();
    if (options_.dump_registers) asm_.pop(Gp::r12);
    asm_.pop(Gp::rbx);
    asm_.ret();
  }

  // ---- per-set emission ------------------------------------------------------

  /// Memory operand for the next cache line of `level`. In streaming mode
  /// consecutive accesses within one iteration hit distinct lines; in
  /// resident mode the displacement wraps inside the region so the working
  /// set stays exactly region-sized.
  Mem next_line(MemoryLevel level) {
    const auto idx = static_cast<std::size_t>(level);
    std::uint64_t disp = static_cast<std::uint64_t>(line_cursor_[idx]++) * 64;
    if (!streaming_[idx]) disp %= stats_.regions.bytes[idx];
    return jit::ptr(kCursor[idx], static_cast<std::int32_t>(disp));
  }

  void emit_set(const AccessKind& kind, std::size_t set_index) {
    switch (mix_.isa) {
      case IsaClass::kFma: emit_set_fma(kind, set_index); break;
      case IsaClass::kAvx: emit_set_avx(kind, set_index); break;
      case IsaClass::kSse2: emit_set_sse2(kind, set_index); break;
      case IsaClass::kAvx512: emit_set_avx512(kind, set_index); break;
    }
    emit_alu(set_index);
  }

  /// Integer filler: xor toggles rdx between the 0101/1010 patterns, the
  /// shift alternates shl/shr to toggle r11 the same way (Sec. IV-B).
  void emit_alu(std::size_t set_index) {
    asm_.xor_(Gp::rdx, Gp::rsi);
    if (set_index % 2 == 0)
      asm_.shl(Gp::r11, 1);
    else
      asm_.shr(Gp::r11, 1);
    stats_.alu_per_iteration += 2;
  }

  Ymm acc_y(std::size_t n) const { return jit::ymm(static_cast<unsigned>(n % kAccumulators)); }
  Xmm acc_x(std::size_t n) const { return jit::xmm(static_cast<unsigned>(n % kAccumulators)); }

  void count_fma(unsigned n = 1) {
    stats_.simd_per_iteration += n;
    stats_.fma_per_iteration += n;
    stats_.fp_compute_per_iteration += n;
    stats_.flops_per_iteration += n * 2u * static_cast<unsigned>(mix_.vector_doubles);
  }
  void count_muladd(unsigned n = 1) {
    stats_.simd_per_iteration += n;
    stats_.fp_compute_per_iteration += n;
    stats_.flops_per_iteration += n * static_cast<unsigned>(mix_.vector_doubles);
  }
  void count_simd_move(unsigned n = 1) { stats_.simd_per_iteration += n; }

  void emit_set_fma(const AccessKind& kind, std::size_t s) {
    const Ymm a1 = acc_y(s);
    const Ymm a2 = acc_y(s + 5);   // 5 and 7 are coprime to 11: even spread
    const Ymm a3 = acc_y(s + 7);
    const Ymm mult = s % 2 == 0 ? Ymm::ymm12 : Ymm::ymm13;      // +x / -x
    const Ymm mult_opp = s % 2 == 0 ? Ymm::ymm13 : Ymm::ymm12;  // opposite sign
    const Ymm ones = Ymm::ymm14;

    if (kind.level == MemoryLevel::kReg) {
      asm_.vfmadd231pd(a1, ones, mult);
      asm_.vfmadd231pd(a2, ones, mult_opp);
      count_fma(2);
      return;
    }
    switch (kind.pattern) {
      case AccessPattern::kLoad:
        asm_.vfmadd231pd(a1, mult, next_line(kind.level));
        asm_.vfmadd231pd(a2, ones, mult_opp);
        count_fma(2);
        break;
      case AccessPattern::kStore:
        asm_.vfmadd231pd(a1, ones, mult);
        asm_.vmovapd(next_line(kind.level), a2);
        count_fma(1);
        count_simd_move(1);
        break;
      case AccessPattern::kLoadStore:
        asm_.vfmadd231pd(a1, mult, next_line(kind.level));
        asm_.vmovapd(next_line(kind.level), a2);
        count_fma(1);
        count_simd_move(1);
        break;
      case AccessPattern::kTwoLoadsStore:
        asm_.vfmadd231pd(a1, mult, next_line(kind.level));
        asm_.vfmadd231pd(a2, mult_opp, next_line(kind.level));
        asm_.vmovapd(next_line(kind.level), a3);
        count_fma(2);
        count_simd_move(1);
        break;
      case AccessPattern::kPrefetch:
        asm_.prefetch(next_line(kind.level), PrefetchHint::t2);
        asm_.vfmadd231pd(a1, ones, mult);
        count_fma(1);
        count_simd_move(1);  // prefetch occupies an AGU slot; count as SIMD-adjacent op
        break;
    }
  }

  /// 512-bit mirror of emit_set_fma: same accumulator rotation and sign
  /// alternation, zmm registers, EVEX encodings. One memory operand covers
  /// a full 64 B cache line.
  void emit_set_avx512(const AccessKind& kind, std::size_t s) {
    const Zmm a1 = jit::zmm(static_cast<unsigned>(s % kAccumulators));
    const Zmm a2 = jit::zmm(static_cast<unsigned>((s + 5) % kAccumulators));
    const Zmm a3 = jit::zmm(static_cast<unsigned>((s + 7) % kAccumulators));
    const Zmm mult = s % 2 == 0 ? Zmm::zmm12 : Zmm::zmm13;
    const Zmm mult_opp = s % 2 == 0 ? Zmm::zmm13 : Zmm::zmm12;
    const Zmm ones = Zmm::zmm14;

    if (kind.level == MemoryLevel::kReg) {
      asm_.vfmadd231pd(a1, ones, mult);
      asm_.vfmadd231pd(a2, ones, mult_opp);
      count_fma(2);
      return;
    }
    switch (kind.pattern) {
      case AccessPattern::kLoad:
        asm_.vfmadd231pd(a1, mult, next_line(kind.level));
        asm_.vfmadd231pd(a2, ones, mult_opp);
        count_fma(2);
        break;
      case AccessPattern::kStore:
        asm_.vfmadd231pd(a1, ones, mult);
        asm_.vmovapd(next_line(kind.level), a2);
        count_fma(1);
        count_simd_move(1);
        break;
      case AccessPattern::kLoadStore:
        asm_.vfmadd231pd(a1, mult, next_line(kind.level));
        asm_.vmovapd(next_line(kind.level), a2);
        count_fma(1);
        count_simd_move(1);
        break;
      case AccessPattern::kTwoLoadsStore:
        asm_.vfmadd231pd(a1, mult, next_line(kind.level));
        asm_.vfmadd231pd(a2, mult_opp, next_line(kind.level));
        asm_.vmovapd(next_line(kind.level), a3);
        count_fma(2);
        count_simd_move(1);
        break;
      case AccessPattern::kPrefetch:
        asm_.prefetch(next_line(kind.level), PrefetchHint::t2);
        asm_.vfmadd231pd(a1, ones, mult);
        count_fma(1);
        count_simd_move(1);
        break;
    }
  }

  void emit_set_avx(const AccessKind& kind, std::size_t s) {
    const Ymm a1 = acc_y(s);
    const Ymm a2 = acc_y(s + 5);
    const Ymm scratch = Ymm::ymm11;
    const Ymm add_const = s % 2 == 0 ? Ymm::ymm12 : Ymm::ymm13;  // +x / -x
    const Ymm mul_const = s % 2 == 0 ? Ymm::ymm14 : Ymm::ymm15;  // m / 1-per-m

    // Multiplicative path alternates *m and *(1/m) (bounded, never the
    // trivial operand 1.0); additive path toggles +-x. Loads go to a
    // scratch register so accumulators stay bounded.
    if (kind.level == MemoryLevel::kReg) {
      asm_.vmulpd(a1, a1, mul_const);
      asm_.vaddpd(a2, a2, add_const);
      count_muladd(2);
      return;
    }
    switch (kind.pattern) {
      case AccessPattern::kLoad:
        asm_.vmovapd(scratch, next_line(kind.level));
        asm_.vaddpd(a2, a2, add_const);
        count_simd_move(1);
        count_muladd(1);
        break;
      case AccessPattern::kStore:
        asm_.vaddpd(a1, a1, add_const);
        asm_.vmovapd(next_line(kind.level), a2);
        count_muladd(1);
        count_simd_move(1);
        break;
      case AccessPattern::kLoadStore:
        asm_.vmovapd(scratch, next_line(kind.level));
        asm_.vmovapd(next_line(kind.level), a2);
        count_simd_move(2);
        break;
      case AccessPattern::kTwoLoadsStore:
        asm_.vmovapd(scratch, next_line(kind.level));
        asm_.vaddpd(a1, a1, next_line(kind.level));
        asm_.vmovapd(next_line(kind.level), a2);
        count_simd_move(2);
        count_muladd(1);
        break;
      case AccessPattern::kPrefetch:
        asm_.prefetch(next_line(kind.level), PrefetchHint::t2);
        asm_.vaddpd(a1, a1, add_const);
        count_simd_move(1);
        count_muladd(1);
        break;
    }
  }

  void emit_set_sse2(const AccessKind& kind, std::size_t s) {
    const Xmm a1 = acc_x(s);
    const Xmm a2 = acc_x(s + 5);
    const Xmm scratch = Xmm::xmm11;
    const Xmm add_const = s % 2 == 0 ? Xmm::xmm12 : Xmm::xmm13;  // +x / -x
    const Xmm mul_const = s % 2 == 0 ? Xmm::xmm14 : Xmm::xmm15;  // m / 1-per-m

    if (kind.level == MemoryLevel::kReg) {
      asm_.mulpd(a1, mul_const);
      asm_.addpd(a2, add_const);
      count_muladd(2);
      return;
    }
    switch (kind.pattern) {
      case AccessPattern::kLoad:
        asm_.movapd(scratch, next_line(kind.level));
        asm_.addpd(a2, add_const);
        count_simd_move(1);
        count_muladd(1);
        break;
      case AccessPattern::kStore:
        asm_.addpd(a1, add_const);
        asm_.movapd(next_line(kind.level), a2);
        count_muladd(1);
        count_simd_move(1);
        break;
      case AccessPattern::kLoadStore:
        asm_.movapd(scratch, next_line(kind.level));
        asm_.movapd(next_line(kind.level), a2);
        count_simd_move(2);
        break;
      case AccessPattern::kTwoLoadsStore:
        asm_.movapd(scratch, next_line(kind.level));
        asm_.addpd(a1, next_line(kind.level));
        asm_.movapd(next_line(kind.level), a2);
        count_simd_move(2);
        count_muladd(1);
        break;
      case AccessPattern::kPrefetch:
        asm_.prefetch(next_line(kind.level), PrefetchHint::t2);
        asm_.addpd(a1, add_const);
        count_simd_move(1);
        count_muladd(1);
        break;
    }
  }

  const InstructionMix& mix_;
  const InstructionGroups& groups_;
  const arch::CacheHierarchy& caches_;
  const CompileOptions options_;  // by value: the trial builder owns a temporary

  Assembler asm_;
  std::vector<AccessKind> sequence_;
  PayloadStats stats_;
  jit::Label loop_label_{};
  jit::Label exit_label_{};
  std::array<std::uint32_t, kNumMemoryLevels> line_cursor_{};
  std::array<bool, kNumMemoryLevels> streaming_{};
};

}  // namespace

std::unique_ptr<WorkBuffer> CompiledPayload::make_buffer() const {
  return std::make_unique<WorkBuffer>(stats_.regions, stats_.sequence);
}

CompiledPayload compile_payload(const InstructionMix& mix, const InstructionGroups& groups,
                                const arch::CacheHierarchy& caches,
                                const CompileOptions& options) {
  KernelBuilder builder(mix, groups, caches, options);
  std::vector<std::uint8_t> code = builder.build();
  log::debug() << "compiled payload " << mix.name << " M=" << groups.to_string()
               << " u=" << builder.stats().unroll << " loop=" << builder.stats().loop_bytes
               << "B instr/iter=" << builder.stats().instructions_per_iteration;
  return CompiledPayload(jit::ExecutableBuffer(code), builder.stats(), mix, groups);
}

PayloadStats analyze_payload(const InstructionMix& mix, const InstructionGroups& groups,
                             const arch::CacheHierarchy& caches, const CompileOptions& options) {
  KernelBuilder builder(mix, groups, caches, options);
  (void)builder.build();  // emits into a byte vector only; nothing is mapped
  return builder.stats();
}

}  // namespace fs2::payload
