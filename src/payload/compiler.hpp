#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/cache.hpp"
#include "jit/exec_memory.hpp"
#include "payload/data.hpp"
#include "payload/groups.hpp"
#include "payload/mix.hpp"
#include "payload/sequence.hpp"

namespace fs2::payload {

/// ABI of a compiled stress kernel: executes `loops` iterations of the
/// unrolled workload loop over the buffers in `args` and returns the number
/// of iterations executed (== loops). System V AMD64 calling convention.
using KernelFn = std::uint64_t (*)(const KernelArgs* args, std::uint64_t loops);

/// Static properties of a compiled payload, consumed by the IPC-estimate
/// metric and by the microarchitecture simulator. Everything here is known
/// at compile time — no execution needed.
struct PayloadStats {
  SequenceStats sequence;                    ///< per-iteration access counts
  std::uint32_t unroll = 0;                  ///< u actually used
  std::uint32_t instructions_per_iteration = 0;
  std::uint32_t simd_per_iteration = 0;      ///< FMA/mul/add/mov SIMD ops
  std::uint32_t fma_per_iteration = 0;
  std::uint32_t fp_compute_per_iteration = 0;  ///< FMA + mul/add (FP-pipe pressure)
  int vector_doubles = 4;  ///< SIMD width of the mix (2/4/8 doubles)
  std::uint32_t alu_per_iteration = 0;       ///< integer xor/shift filler
  std::uint32_t overhead_per_iteration = 0;  ///< cursor updates + loop control
  std::uint32_t flops_per_iteration = 0;
  std::uint32_t loop_bytes = 0;              ///< code bytes of the inner loop
  std::uint64_t bytes_per_iteration[kNumMemoryLevels] = {};  ///< traffic per level
  RegionSizes regions;  ///< finalized streaming-region sizes baked into the code

  double flops_per_instruction() const {
    return instructions_per_iteration == 0
               ? 0.0
               : static_cast<double>(flops_per_iteration) / instructions_per_iteration;
  }
};

/// Compilation knobs (the runtime parameters of Fig. 5).
struct CompileOptions {
  /// Unroll factor u (--set-line-count). 0 selects the default: the largest
  /// u whose loop body still fits in 3/4 of the L1 instruction cache, so
  /// instructions stream from L1-I but not from L2 (paper Sec. III-B/IV-C).
  std::uint32_t unroll = 0;
  /// Emit accumulator-register dump stores before returning
  /// (--dump-registers support).
  bool dump_registers = false;
  /// Per-thread main-memory streaming region size (power of two). The wrap
  /// masks are baked into the generated code, so this is a compile-time
  /// parameter, not a buffer-allocation one.
  std::size_t ram_region_bytes = 16ull << 20;
};

/// A ready-to-run stress workload omega = (I, u, M): machine code plus its
/// static statistics. Create per process, share across threads (the code is
/// immutable); each thread gets its own WorkBuffer.
class CompiledPayload {
 public:
  CompiledPayload(jit::ExecutableBuffer code, PayloadStats stats, InstructionMix mix,
                  InstructionGroups groups)
      : code_(std::move(code)), stats_(stats), mix_(std::move(mix)), groups_(std::move(groups)) {}

  KernelFn fn() const { return code_.as<KernelFn>(); }

  /// Read-only view of the mapped machine code (for disassembly listings).
  std::span<const std::uint8_t> code_bytes() const {
    return {static_cast<const std::uint8_t*>(code_.entry()), code_.size()};
  }
  const PayloadStats& stats() const { return stats_; }
  const InstructionMix& mix() const { return mix_; }
  const InstructionGroups& groups() const { return groups_; }

  /// Allocate a per-thread work buffer matching the region sizes baked
  /// into this payload's code.
  std::unique_ptr<WorkBuffer> make_buffer() const;

 private:
  jit::ExecutableBuffer code_;
  PayloadStats stats_;
  InstructionMix mix_;
  InstructionGroups groups_;
};

/// JIT-compile the workload defined by (mix, groups, options) for the given
/// cache hierarchy (which determines the default u and buffer sizing).
/// Throws fs2::ConfigError for invalid group lists and fs2::Error on
/// code-generation failure.
CompiledPayload compile_payload(const InstructionMix& mix, const InstructionGroups& groups,
                                const arch::CacheHierarchy& caches, const CompileOptions& options = {});

/// Compute the static stats of a workload without generating executable
/// memory (used by the simulator substrate, which never runs the code).
PayloadStats analyze_payload(const InstructionMix& mix, const InstructionGroups& groups,
                             const arch::CacheHierarchy& caches, const CompileOptions& options = {});

}  // namespace fs2::payload
