#include "payload/data.hpp"

#include <cstdlib>
#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fs2::payload {

namespace {

std::size_t ceil_pow2(std::size_t value) {
  std::size_t p = 1;
  while (p < value) p <<= 1;
  return p;
}

void* aligned_allocate(std::size_t alignment, std::size_t bytes) {
  void* mem = nullptr;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (::posix_memalign(&mem, alignment, bytes) != 0)
    throw Error(strings::format("WorkBuffer: allocation of %zu bytes (align %zu) failed", bytes,
                                alignment));
  std::memset(mem, 0, bytes);
  return mem;
}

}  // namespace

RegionSizes RegionSizes::from_hierarchy(const arch::CacheHierarchy& caches,
                                        std::size_t ram_bytes) {
  RegionSizes sizes;
  const std::size_t page = 4096;

  const std::size_t l1d = caches.data_cache_size(1);
  const std::size_t l2 = caches.data_cache_size(2);
  const std::size_t l3 = caches.data_cache_size(3);

  sizes.bytes[static_cast<int>(MemoryLevel::kL1)] =
      l1d != 0 ? ceil_pow2(l1d / 2) : page * 4;
  sizes.bytes[static_cast<int>(MemoryLevel::kL2)] =
      l2 != 0 ? ceil_pow2(l2 / 2) : page * 64;

  std::size_t l3_region = page * 512;  // 2 MiB default
  if (l3 != 0) {
    int sharing = 1;
    for (const auto& level : caches.levels())
      if (level.level == 3) sharing = level.sharing;
    const std::size_t share = l3 / static_cast<std::size_t>(sharing > 0 ? sharing : 1);
    l3_region = ceil_pow2(share * 2);
    if (l3_region > l3) l3_region = ceil_pow2(l3) / 2;
  }
  sizes.bytes[static_cast<int>(MemoryLevel::kL3)] = l3_region;
  sizes.bytes[static_cast<int>(MemoryLevel::kRam)] = ceil_pow2(ram_bytes);
  sizes.bytes[static_cast<int>(MemoryLevel::kReg)] = 0;
  return sizes;
}

RegionSizes RegionSizes::finalized(const SequenceStats& stats) const {
  (void)stats;  // sizing no longer depends on the sequence; kept for ABI stability
  RegionSizes out = *this;
  for (int level = 1; level < kNumMemoryLevels; ++level) {
    std::size_t size = ceil_pow2(out.bytes[level]);
    if (size < 4096) size = 4096;
    out.bytes[level] = size;
  }
  return out;
}

WorkBuffer::WorkBuffer(const RegionSizes& sizes, const SequenceStats& stats)
    : sizes_(sizes.finalized(stats)) {
  // Constants + dump blocks (cache-line aligned).
  const std::size_t consts_bytes = ConstLayout::kDoubles * sizeof(double);
  allocations_[0] = aligned_allocate(64, consts_bytes);
  args_.consts = static_cast<double*>(allocations_[0]);
  allocated_ += consts_bytes;

  const std::size_t dump_bytes = 16 * 8 * sizeof(double);
  allocations_[1] = aligned_allocate(64, dump_bytes);
  args_.dump = static_cast<double*>(allocations_[1]);
  allocated_ += dump_bytes;

  double** region_ptrs[kNumMemoryLevels] = {nullptr, &args_.l1, &args_.l2, &args_.l3, &args_.ram};
  for (int level = 1; level < kNumMemoryLevels; ++level) {
    const std::size_t size = sizes_.bytes[level];
    const std::size_t span =
        static_cast<std::size_t>(stats.lines(static_cast<MemoryLevel>(level))) * 64;
    // Streaming mode reaches past the cursor by the full line span;
    // resident mode wraps displacements inside the region. Either way the
    // furthest access is cursor + min(span, size) + one vector width.
    pad_bytes_[level] = std::min(span, size) + 64;
    allocations_[level + 1] = aligned_allocate(2 * size, size + pad_bytes_[level]);
    *region_ptrs[level] = static_cast<double*>(allocations_[level + 1]);
    allocated_ += size + pad_bytes_[level];
  }
}

WorkBuffer::~WorkBuffer() {
  for (void* mem : allocations_) std::free(mem);
}

void WorkBuffer::init(DataInitPolicy policy, std::uint64_t seed) {
  Xoshiro256 rng(seed);

  // Small magnitude keeps the accumulator random walk bounded over billions
  // of iterations while still toggling mantissa bits every FMA.
  const double x = 0x1.0p-20 * (1.0 + rng.uniform());
  double* consts = args_.consts;
  for (int i = 0; i < 8; ++i) {
    consts[ConstLayout::kMultPos + static_cast<std::size_t>(i)] = x;
    consts[ConstLayout::kMultNeg + static_cast<std::size_t>(i)] =
        policy == DataInitPolicy::kSafe ? -x
                                        // v1.7.4 bug: the sign flip is missing and the
                                        // magnitude is near DBL_MAX, so accumulators hit
                                        // +inf within a couple of additions.
                                        : 0x1.0p+1020;
    consts[ConstLayout::kOnes + static_cast<std::size_t>(i)] = 1.0;
  }
  if (policy == DataInitPolicy::kV174InfinityBug)
    for (int i = 0; i < 8; ++i)
      consts[ConstLayout::kMultPos + static_cast<std::size_t>(i)] = 0x1.0p+1020;

  // Multiplicative toggle pair for the non-FMA mixes: alternating *m and
  // *(1/m) keeps accumulators bounded while never presenting the trivial
  // operand 1.0 to the multiplier.
  const double m = 1.0 + 0x1.0p-30;
  for (int i = 0; i < 8; ++i) {
    consts[ConstLayout::kMulUp + static_cast<std::size_t>(i)] =
        policy == DataInitPolicy::kSafe ? m : 2.0;
    consts[ConstLayout::kMulDown + static_cast<std::size_t>(i)] =
        policy == DataInitPolicy::kSafe ? 1.0 / m : 2.0;
  }

  for (std::size_t i = 0; i < 16 * 8; ++i)
    consts[ConstLayout::kAccSeeds + i] = 1.0 + rng.uniform();

  double* regions[] = {args_.l1, args_.l2, args_.l3, args_.ram};
  for (int level = 1; level < kNumMemoryLevels; ++level) {
    double* region = regions[level - 1];
    const std::size_t doubles = (sizes_.bytes[level] + pad_bytes_[level]) / sizeof(double);
    // Alternate the sign line-by-line so memory-sourced FMA contributions
    // cancel statistically instead of drifting.
    for (std::size_t i = 0; i < doubles; ++i) {
      const double sign = ((i / 8) % 2 == 0) ? 1.0 : -1.0;
      region[i] = sign * (1.0 + rng.uniform());
    }
  }
}

}  // namespace fs2::payload
