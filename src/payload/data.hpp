#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "arch/cache.hpp"
#include "payload/sequence.hpp"

namespace fs2::payload {

/// How SIMD operands are initialized (paper Sec. III-D).
enum class DataInitPolicy {
  /// FIRESTARTER 2 behaviour: operands are random non-trivial doubles and
  /// the FMA multiplier alternates sign so accumulators stay bounded —
  /// never 0, never +/-inf, never denormal. Keeps the FMA unit out of the
  /// clock-gated trivial-operand fast path (Hickmann patent, US 9,323,500).
  kSafe,
  /// Reproduction of the v1.7.4 bug: the "negative" multiplier constant is
  /// positive too, so register contents accumulate monotonically and reach
  /// +inf within a few hundred loop iterations, dropping FMA power draw.
  kV174InfinityBug,
};

/// Offsets (in doubles) inside the constants block of a work buffer. Every
/// constant occupies one full 512-bit slot so the same block serves the
/// SSE2 (reads 16 B), AVX (32 B), and AVX-512 (64 B) kernels.
struct ConstLayout {
  static constexpr std::size_t kSlotDoubles = 8;  ///< one 512-bit vector
  static constexpr std::size_t kMultPos = 0;      ///< +x
  static constexpr std::size_t kMultNeg = 8;      ///< -x (or +x in bug mode)
  static constexpr std::size_t kOnes = 16;        ///< 1.0
  static constexpr std::size_t kMulUp = 24;       ///< m = 1 + 2^-30
  static constexpr std::size_t kMulDown = 32;     ///< 1/m (to machine precision)
  static constexpr std::size_t kAccSeeds = 40;    ///< 16 x 8 doubles: accumulator seeds
  static constexpr std::size_t kDoubles = 40 + 16 * 8;
};

/// Argument block handed to a JIT-compiled kernel (see PayloadCompiler for
/// the ABI). Field order is fixed: the generated code addresses these
/// fields by byte offset.
struct KernelArgs {
  double* consts = nullptr;  ///< ConstLayout block
  double* l1 = nullptr;      ///< L1 streaming region (aligned to 2x its size)
  double* l2 = nullptr;
  double* l3 = nullptr;
  double* ram = nullptr;
  double* dump = nullptr;    ///< 16x8 doubles register dump area (may be null)
};

/// Sizes for the four streaming regions. All sizes are powers of two so the
/// generated wrap-around code can mask the cursor with a single AND.
struct RegionSizes {
  std::size_t bytes[kNumMemoryLevels] = {};  ///< indexed by MemoryLevel; [kReg] unused

  /// Derive region sizes from the cache hierarchy:
  ///  - L1 region: half the L1-D cache (stays resident),
  ///  - L2 region: half of L2 (forces L1 misses, stays in L2),
  ///  - L3 region: twice the per-thread L3 share, capped to L3 (forces L2
  ///    misses, mostly L3-resident),
  ///  - RAM region: `ram_bytes` per thread (streams through memory).
  /// Regions a workload does not touch are still given one page so the
  /// kernel ABI stays uniform.
  static RegionSizes from_hierarchy(const arch::CacheHierarchy& caches,
                                    std::size_t ram_bytes = 16ull << 20);

  /// Grow regions so the per-iteration cursor advance of `stats` never
  /// exceeds the region size (required for single-AND wrap-around), and
  /// clamp to a one-page minimum. Idempotent. Both the payload compiler
  /// (emitting the wrap masks) and WorkBuffer (allocating) apply this, so
  /// generated code and buffers always agree.
  RegionSizes finalized(const SequenceStats& stats) const;
};

/// Per-thread working memory of a compiled payload: one constants block,
/// four streaming regions (each aligned to twice its size so the kernel can
/// wrap cursors by masking a single address bit), and a register-dump area.
class WorkBuffer {
 public:
  /// Allocate regions of `sizes`, with enough padding for `stats`' maximum
  /// per-iteration line span. Throws fs2::Error on allocation failure.
  WorkBuffer(const RegionSizes& sizes, const SequenceStats& stats);
  ~WorkBuffer();
  WorkBuffer(const WorkBuffer&) = delete;
  WorkBuffer& operator=(const WorkBuffer&) = delete;
  WorkBuffer(WorkBuffer&&) = delete;
  WorkBuffer& operator=(WorkBuffer&&) = delete;

  /// (Re-)initialize all operand data under `policy` with deterministic
  /// values derived from `seed`.
  void init(DataInitPolicy policy, std::uint64_t seed);

  KernelArgs& args() { return args_; }
  const KernelArgs& args() const { return args_; }
  const RegionSizes& sizes() const { return sizes_; }

  /// The register dump area (16 vectors x 8 doubles), written by kernels
  /// compiled with dump support. Narrower kernels fill the first 2 (SSE2)
  /// or 4 (AVX) doubles of each vector slot.
  const double* dump() const { return args_.dump; }

  /// Total allocated bytes (diagnostics).
  std::size_t allocated_bytes() const { return allocated_; }

 private:
  RegionSizes sizes_;
  std::size_t pad_bytes_[kNumMemoryLevels] = {};
  KernelArgs args_;
  void* allocations_[6] = {};
  std::size_t allocated_ = 0;
};

}  // namespace fs2::payload
