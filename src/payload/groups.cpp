#include "payload/groups.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::payload {

InstructionGroups::InstructionGroups(std::vector<Group> groups) : groups_(std::move(groups)) {
  for (const Group& g : groups_) {
    if (g.count == 0)
      throw ConfigError("instruction group " + g.kind.to_string() + " has zero count");
    if (!is_valid(g.kind.level, g.kind.pattern))
      throw ConfigError("instruction group " + g.kind.to_string() + " is not a defined pattern");
  }
  for (std::size_t i = 0; i < groups_.size(); ++i)
    for (std::size_t j = i + 1; j < groups_.size(); ++j)
      if (groups_[i].kind == groups_[j].kind)
        throw ConfigError("duplicate instruction group " + groups_[i].kind.to_string());
}

InstructionGroups InstructionGroups::parse(const std::string& text) {
  std::vector<Group> groups;
  for (const std::string& item : strings::split(text, ',')) {
    const std::string trimmed(strings::trim(item));
    if (trimmed.empty())
      throw ConfigError("empty entry in instruction groups '" + text + "'");
    const auto colon = trimmed.find(':');
    if (colon == std::string::npos)
      throw ConfigError("instruction group '" + trimmed + "' is missing ':<count>'");
    const auto kind = parse_access_kind(trimmed.substr(0, colon));
    if (!kind)
      throw ConfigError("unknown access kind '" + trimmed.substr(0, colon) + "'");
    const std::uint64_t count =
        strings::parse_u64(trimmed.substr(colon + 1), "instruction group count");
    if (count == 0 || count > UINT32_MAX)
      throw ConfigError("instruction group '" + trimmed + "' count out of range");
    groups.push_back(Group{*kind, static_cast<std::uint32_t>(count)});
  }
  return InstructionGroups(std::move(groups));
}

std::string InstructionGroups::to_string() const {
  std::string out;
  for (const Group& g : groups_) {
    if (!out.empty()) out += ',';
    out += g.kind.to_string() + ":" + std::to_string(g.count);
  }
  return out;
}

std::uint32_t InstructionGroups::total() const {
  std::uint32_t sum = 0;
  for (const Group& g : groups_) sum += g.count;
  return sum;
}

std::uint32_t InstructionGroups::count_of(const AccessKind& kind) const {
  for (const Group& g : groups_)
    if (g.kind == kind) return g.count;
  return 0;
}

bool InstructionGroups::touches(MemoryLevel level) const {
  for (const Group& g : groups_)
    if (g.kind.level == level) return true;
  return false;
}

bool InstructionGroups::operator==(const InstructionGroups& other) const {
  if (groups_.size() != other.groups_.size()) return false;
  for (std::size_t i = 0; i < groups_.size(); ++i)
    if (!(groups_[i].kind == other.groups_[i].kind) || groups_[i].count != other.groups_[i].count)
      return false;
  return true;
}

}  // namespace fs2::payload
