#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "payload/access.hpp"

namespace fs2::payload {

/// One entry of the memory-access multiset M: an access kind and its
/// occurrence count a (Eq. 1).
struct Group {
  AccessKind kind;
  std::uint32_t count = 0;  ///< a_i, must be >= 1 in a valid group list
};

/// Ordered list of instruction groups, i.e. the full M of a workload —
/// the value of the --run-instruction-groups argument.
class InstructionGroups {
 public:
  InstructionGroups() = default;
  explicit InstructionGroups(std::vector<Group> groups);

  /// Parse the FIRESTARTER grammar "REG:4,L1_L:2,L2_L:1". Throws
  /// fs2::ConfigError on malformed text, unknown kinds, zero counts, or
  /// duplicate kinds.
  static InstructionGroups parse(const std::string& text);

  /// Serialize back to the canonical grammar string.
  std::string to_string() const;

  const std::vector<Group>& groups() const { return groups_; }
  bool empty() const { return groups_.empty(); }

  /// Sum of all occurrence counts (denominator of the a_i fractions).
  std::uint32_t total() const;

  /// Occurrences of a specific kind (0 if absent).
  std::uint32_t count_of(const AccessKind& kind) const;

  /// True if any group accesses memory at `level` or beyond — used by the
  /// buffer allocator to size only the regions a workload touches.
  bool touches(MemoryLevel level) const;

  bool operator==(const InstructionGroups& other) const;

 private:
  std::vector<Group> groups_;
};

}  // namespace fs2::payload
