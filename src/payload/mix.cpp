#include "payload/mix.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::payload {

const char* to_string(IsaClass isa) {
  switch (isa) {
    case IsaClass::kSse2: return "sse2";
    case IsaClass::kAvx: return "avx";
    case IsaClass::kFma: return "fma";
    case IsaClass::kAvx512: return "avx512";
  }
  return "?";
}

namespace {

InstructionMix sse2_mix() {
  InstructionMix mix;
  mix.name = "MIX_SSE2_128";
  mix.isa = IsaClass::kSse2;
  mix.required = arch::FeatureSet{.sse2 = true};
  mix.simd_per_set = 2;  // mulpd + addpd
  mix.alu_per_set = 2;
  mix.vector_doubles = 2;
  mix.description = "128-bit SSE2 mul/add pair with integer xor+shift filler";
  return mix;
}

InstructionMix avx_mix() {
  InstructionMix mix;
  mix.name = "MIX_AVX_256";
  mix.isa = IsaClass::kAvx;
  mix.required = arch::FeatureSet{.sse2 = true, .avx = true};
  mix.simd_per_set = 2;  // vmulpd + vaddpd
  mix.alu_per_set = 2;
  mix.vector_doubles = 4;
  mix.description = "256-bit AVX mul/add pair with integer xor+shift filler";
  return mix;
}

InstructionMix fma_mix() {
  InstructionMix mix;
  mix.name = "MIX_FMA_256";
  mix.isa = IsaClass::kFma;
  mix.required = arch::FeatureSet{.sse2 = true, .avx = true, .fma = true};
  mix.simd_per_set = 2;  // 2x vfmadd231pd
  mix.alu_per_set = 2;   // xor + alternating shl/shr
  mix.vector_doubles = 4;
  mix.description =
      "Haswell mix (paper Sec. IV-B): 2x vfmadd231pd + 2 ALU ops, 4 instructions/cycle target";
  return mix;
}

InstructionMix avx512_mix() {
  InstructionMix mix;
  mix.name = "MIX_AVX512_512";
  mix.isa = IsaClass::kAvx512;
  mix.required = arch::FeatureSet{.sse2 = true, .avx = true, .fma = true, .avx2 = true,
                                  .avx512f = true};
  mix.simd_per_set = 2;  // 2x 512-bit vfmadd231pd
  mix.alu_per_set = 2;
  mix.vector_doubles = 8;
  mix.description =
      "512-bit EVEX variant of the FMA mix (2x zmm vfmadd231pd + 2 ALU ops)";
  return mix;
}

std::vector<FunctionDef> build_functions() {
  using arch::Microarch;
  std::vector<FunctionDef> fns;

  // Default M values below are this reproduction's tuned approximations of
  // the per-SKU omega_k definitions FIRESTARTER 1.x shipped: register-heavy
  // with a thin tail into the deeper levels, per Sec. III.
  fns.push_back(FunctionDef{
      1, "FUNC_SSE2_128", sse2_mix(),
      "RAM_L:2,L3_LS:1,L2_LS:6,L1_LS:36,REG:27",
      {Microarch::kIntelNehalem}});
  fns.push_back(FunctionDef{
      2, "FUNC_AVX_256", avx_mix(),
      "RAM_L:1,L3_L:1,L2_LS:4,L1_LS:30,REG:24",
      {Microarch::kIntelSandyBridge, Microarch::kAmdBulldozer}});
  fns.push_back(FunctionDef{
      3, "FUNC_FMA_256_HASWELL", fma_mix(),
      "RAM_L:2,L3_LS:3,L2_LS:9,L1_LS:90,REG:40",
      {Microarch::kIntelHaswell}});
  fns.push_back(FunctionDef{
      4, "FUNC_FMA_256_ZEN2", fma_mix(),
      "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37",
      {Microarch::kAmdZen, Microarch::kAmdZen2}});
  // Generic fallbacks: one per ISA class, no microarch binding.
  fns.push_back(FunctionDef{5, "FUNC_FMA_256_GENERIC", fma_mix(),
                            "RAM_L:2,L3_LS:2,L2_LS:8,L1_LS:60,REG:30", {}});
  fns.push_back(FunctionDef{6, "FUNC_AVX_256_GENERIC", avx_mix(),
                            "RAM_L:1,L3_L:1,L2_LS:4,L1_LS:30,REG:24", {}});
  fns.push_back(FunctionDef{7, "FUNC_SSE2_128_GENERIC", sse2_mix(),
                            "RAM_L:1,L3_LS:1,L2_LS:4,L1_LS:24,REG:18", {}});
  // AVX-512 (the paper's future-work direction; Skylake-SP defaults here).
  fns.push_back(FunctionDef{8, "FUNC_AVX512_512_SKX", avx512_mix(),
                            "RAM_L:2,L3_LS:2,L2_LS:6,L1_LS:45,REG:25",
                            {Microarch::kIntelSkylakeSp}});
  fns.push_back(FunctionDef{9, "FUNC_AVX512_512_GENERIC", avx512_mix(),
                            "RAM_L:2,L3_LS:2,L2_LS:6,L1_LS:45,REG:25", {}});
  return fns;
}

}  // namespace

const std::vector<FunctionDef>& available_functions() {
  static const std::vector<FunctionDef> fns = build_functions();
  return fns;
}

const FunctionDef& find_function(int id) {
  for (const FunctionDef& fn : available_functions())
    if (fn.id == id) return fn;
  throw ConfigError(strings::format("no stress function with id %d (see --avail)", id));
}

const FunctionDef& find_function(const std::string& name) {
  const std::string upper = strings::to_upper(name);
  for (const FunctionDef& fn : available_functions())
    if (fn.name == upper) return fn;
  throw ConfigError("no stress function named '" + name + "' (see --avail)");
}

const FunctionDef& select_function(const arch::ProcessorModel& cpu) {
  // Pass 1: function explicitly tuned for this microarchitecture whose ISA
  // requirements the host satisfies.
  for (const FunctionDef& fn : available_functions())
    for (arch::Microarch target : fn.tuned_for)
      if (target == cpu.microarch && cpu.features.covers(fn.mix.required)) return fn;
  // Pass 2: the widest generic mix the feature set supports.
  const FunctionDef* best = nullptr;
  for (const FunctionDef& fn : available_functions()) {
    if (!fn.tuned_for.empty()) continue;
    if (!cpu.features.covers(fn.mix.required)) continue;
    if (best == nullptr || fn.mix.vector_doubles * fn.mix.flops_per_set() >
                               best->mix.vector_doubles * best->mix.flops_per_set())
      best = &fn;
  }
  if (best == nullptr)
    throw UnsupportedError("host supports none of the built-in instruction mixes (needs SSE2)");
  return *best;
}

}  // namespace fs2::payload
