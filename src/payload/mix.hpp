#pragma once

#include <string>
#include <vector>

#include "arch/processor.hpp"
#include "payload/groups.hpp"

namespace fs2::payload {

/// Execution-unit class a mix is built from. Decides both the encoder path
/// (SSE legacy / VEX) and the per-set instruction template.
enum class IsaClass {
  kSse2,    ///< movapd/mulpd/addpd on xmm (baseline x86_64)
  kAvx,     ///< vmulpd/vaddpd on ymm (AVX without FMA)
  kFma,     ///< vfmadd231pd on ymm (the Haswell mix of the paper, Sec. IV-B)
  kAvx512,  ///< vfmadd231pd on zmm (EVEX; the paper's future-work direction)
};

const char* to_string(IsaClass isa);

/// An instruction mix definition — the set of instructions I of a workload.
/// FIRESTARTER 2 explicitly excludes I from auto-tuning (Sec. III-B); the
/// mixes here are the curated, per-architecture definitions the binary
/// carries.
struct InstructionMix {
  std::string name;         ///< e.g. "FUNC_FMA_256"
  IsaClass isa = IsaClass::kFma;
  arch::FeatureSet required;  ///< ISA features the host must provide
  int simd_per_set = 2;     ///< SIMD (FMA or mul/add) instructions per set
  int alu_per_set = 2;      ///< integer instructions per set (xor + shift)
  int vector_doubles = 4;   ///< elements per SIMD register (4 = ymm, 2 = xmm)
  std::string description;

  /// FLOPs contributed by one instruction set (FMA counts x2 per element).
  int flops_per_set() const {
    const int per_instr = isa == IsaClass::kFma ? 2 * vector_doubles : vector_doubles;
    return simd_per_set * per_instr;
  }
};

/// One selectable stress function (what `-a/--avail` lists and
/// `-i/--function` selects): a mix plus the tuned default M and the target
/// microarchitectures it was tuned for.
struct FunctionDef {
  int id = 0;                          ///< 1-based id, as printed by --avail
  std::string name;                    ///< e.g. "FUNC_FMA_256_ZEN2"
  InstructionMix mix;
  std::string default_groups;          ///< tuned default --run-instruction-groups
  std::vector<arch::Microarch> tuned_for;
};

/// All built-in functions, ordered by id.
const std::vector<FunctionDef>& available_functions();

/// Find a function by id or (case-insensitive) name; throws fs2::ConfigError
/// if not found.
const FunctionDef& find_function(int id);
const FunctionDef& find_function(const std::string& name);

/// Pick the best-fitting function for a processor: first the function tuned
/// for its microarchitecture, else the widest mix its features support
/// (the FIRESTARTER fallback behaviour). Throws fs2::UnsupportedError when
/// not even SSE2 is available.
const FunctionDef& select_function(const arch::ProcessorModel& cpu);

}  // namespace fs2::payload
