#include "payload/sequence.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fs2::payload {

std::vector<AccessKind> base_sequence(const InstructionGroups& groups) {
  if (groups.empty()) throw ConfigError("base_sequence: empty instruction groups");
  const std::uint64_t total = groups.total();

  // Ideal-position scheduling: occurrence j of kind i wants the slot at
  // (j + 1/2) * total / a_i. Sorting all occurrences by ideal position (a
  // stable sort, comparing the cross-multiplied fractions exactly in
  // integers) assigns each its rank as the real slot. Consecutive ideal
  // positions of one kind are exactly total/a_i apart, so the real gap is
  // the ideal gap plus at most one boundary slip per other group — a tight,
  // provable spacing guarantee.
  struct Occurrence {
    AccessKind kind;
    std::uint64_t numerator;  // (2j+1) * total
    std::uint64_t rate;       // a_i (position = numerator / (2*rate))
  };
  std::vector<Occurrence> occurrences;
  occurrences.reserve(total);
  for (const Group& g : groups.groups())
    for (std::uint32_t j = 0; j < g.count; ++j)
      occurrences.push_back(Occurrence{g.kind, (2ull * j + 1) * total, g.count});

  std::stable_sort(occurrences.begin(), occurrences.end(),
                   [](const Occurrence& a, const Occurrence& b) {
                     // a.num/a.rate < b.num/b.rate, exact in 128-bit.
                     const auto lhs = static_cast<unsigned __int128>(a.numerator) * b.rate;
                     const auto rhs = static_cast<unsigned __int128>(b.numerator) * a.rate;
                     if (lhs != rhs) return lhs < rhs;
                     // Ties: higher-rate kinds first, keeping their own
                     // spacing tight; the rarer kind can absorb the slip.
                     return a.rate > b.rate;
                   });

  std::vector<AccessKind> sequence;
  sequence.reserve(total);
  for (const Occurrence& occ : occurrences) sequence.push_back(occ.kind);
  return sequence;
}

std::vector<AccessKind> unroll_sequence(const std::vector<AccessKind>& base, std::uint32_t u) {
  if (base.empty()) throw ConfigError("unroll_sequence: empty base sequence");
  if (u == 0) throw ConfigError("unroll_sequence: unroll factor must be >= 1");
  std::vector<AccessKind> out;
  out.reserve(u);
  for (std::uint32_t i = 0; i < u; ++i) out.push_back(base[i % base.size()]);
  return out;
}

std::vector<AccessKind> build_sequence(const InstructionGroups& groups, std::uint32_t u) {
  return unroll_sequence(base_sequence(groups), u);
}

std::uint32_t SequenceStats::total_loads() const {
  std::uint32_t sum = 0;
  for (std::uint32_t v : loads) sum += v;
  return sum;
}

std::uint32_t SequenceStats::total_stores() const {
  std::uint32_t sum = 0;
  for (std::uint32_t v : stores) sum += v;
  return sum;
}

std::uint32_t SequenceStats::total_memory_ops() const {
  std::uint32_t sum = total_loads() + total_stores();
  for (std::uint32_t v : prefetches) sum += v;
  return sum;
}

std::uint32_t SequenceStats::lines(MemoryLevel level) const {
  const auto i = static_cast<std::size_t>(level);
  return loads[i] + stores[i] + prefetches[i];
}

SequenceStats analyze_sequence(const std::vector<AccessKind>& sequence) {
  SequenceStats stats;
  stats.sets = static_cast<std::uint32_t>(sequence.size());
  for (const AccessKind& kind : sequence) {
    const auto level = static_cast<std::size_t>(kind.level);
    stats.loads[level] += static_cast<std::uint32_t>(kind.loads());
    stats.stores[level] += static_cast<std::uint32_t>(kind.stores());
    stats.prefetches[level] += static_cast<std::uint32_t>(kind.prefetches());
  }
  return stats;
}

}  // namespace fs2::payload
