#pragma once

#include <cstdint>
#include <vector>

#include "payload/groups.hpp"

namespace fs2::payload {

/// Build the base access sequence for one pass over M (paper Sec. III):
/// a sequence of length `groups.total()` in which each access kind appears
/// exactly its a_i times, distributed as evenly as possible so that, e.g.,
/// with REG:4,L1_L:2,L2_L:1 the L1 accesses sit at least three instruction
/// sets apart.
///
/// The distribution uses Bresenham-style credit scheduling: every kind
/// accumulates credit proportional to a_i/total each slot and the kind with
/// the highest credit claims the slot. This is deterministic, exact in the
/// counts, and bounds every gap between consecutive occurrences of kind i
/// by ceil(total/a_i) + 1.
std::vector<AccessKind> base_sequence(const InstructionGroups& groups);

/// Unroll `base` cyclically so that the result holds exactly `u` entries
/// (paper: "the consecutive accesses are then unrolled so that the total
/// number of instruction sets equals u").
std::vector<AccessKind> unroll_sequence(const std::vector<AccessKind>& base, std::uint32_t u);

/// Convenience: base_sequence + unroll_sequence.
std::vector<AccessKind> build_sequence(const InstructionGroups& groups, std::uint32_t u);

/// Statistics of a built sequence, consumed by the simulator and by the
/// IPC-estimate metric without executing any code.
struct SequenceStats {
  std::uint32_t sets = 0;              ///< number of instruction sets (== u)
  std::uint32_t loads[kNumMemoryLevels] = {};      ///< per-level loads per loop iteration
  std::uint32_t stores[kNumMemoryLevels] = {};     ///< per-level stores per loop iteration
  std::uint32_t prefetches[kNumMemoryLevels] = {}; ///< per-level prefetches per loop iteration

  std::uint32_t total_loads() const;
  std::uint32_t total_stores() const;
  std::uint32_t total_memory_ops() const;

  /// Cache lines advanced per iteration at `level` (streaming rate).
  std::uint32_t lines(MemoryLevel level) const;
};

SequenceStats analyze_sequence(const std::vector<AccessKind>& sequence);

}  // namespace fs2::payload
