#include "sched/campaign.hpp"

#include <fstream>
#include <sstream>

#include "payload/groups.hpp"
#include "sched/load_profile.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace fs2::sched {

namespace {

/// Split on any run of spaces/tabs, dropping empty tokens (profile specs
/// contain commas, so whitespace is the field separator here).
std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < line.size()) {
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t')) ++start;
    std::size_t end = start;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > start) tokens.emplace_back(line.substr(start, end - start));
    start = end;
  }
  return tokens;
}

}  // namespace

Campaign Campaign::parse(std::istream& in, const std::string& origin) {
  Campaign campaign;
  std::string line;
  int line_no = 0;
  auto fail = [&origin, &line_no](const std::string& message) -> ConfigError {
    return ConfigError(strings::format("campaign %s line %d: %s", origin.c_str(), line_no,
                                       message.c_str()));
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = strings::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    const std::vector<std::string> tokens = split_tokens(trimmed);
    if (tokens.front() != "phase")
      throw fail("expected 'phase key=value ...', got '" + tokens.front() + "'");

    CampaignPhase phase;
    phase.name = strings::format("phase%zu", campaign.phases_.size() + 1);
    bool have_duration = false;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos)
        throw fail("token '" + tokens[i] + "' is not key=value");
      const std::string key = strings::to_lower(tokens[i].substr(0, eq));
      const std::string value = tokens[i].substr(eq + 1);
      if (value.empty()) throw fail("key '" + key + "' has an empty value");
      if (key == "name") {
        phase.name = value;
      } else if (key == "duration") {
        try {
          phase.duration_s = strings::parse_double(value, "duration");
        } catch (const Error& e) {
          throw fail(e.what());
        }
        if (phase.duration_s <= 0.0) throw fail("duration must be > 0 seconds");
        have_duration = true;
      } else if (key == "profile") {
        phase.profile_spec = value;
        phase.profile_explicit = true;
      } else if (key == "function") {
        phase.function = value;
      } else if (key == "target") {
        phase.target_spec = value;
      } else if (key == "threads") {
        std::uint64_t raw = 0;
        try {
          raw = strings::parse_u64(value, "threads");
        } catch (const Error& e) {
          throw fail(e.what());
        }
        if (raw == 0) throw fail("threads must be > 0");
        // Guard the int cast: a value past any real machine would silently
        // wrap into a small positive count.
        if (raw > 1u << 20) throw fail("threads value is implausibly large");
        phase.threads = static_cast<int>(raw);
      } else if (key == "freq") {
        try {
          phase.freq_mhz = strings::parse_double(value, "freq");
        } catch (const Error& e) {
          throw fail(e.what());
        }
        if (!(*phase.freq_mhz > 0.0)) throw fail("freq must be > 0 MHz");
      } else if (key == "groups") {
        // Validate the multiset now, like profiles: a fuzz-replay campaign
        // with a typoed group list must fail before any stress starts.
        try {
          payload::InstructionGroups::parse(value);
        } catch (const Error& e) {
          throw fail(e.what());
        }
        phase.groups = value;
      } else if (key == "unroll") {
        std::uint64_t raw = 0;
        try {
          raw = strings::parse_u64(value, "unroll");
        } catch (const Error& e) {
          throw fail(e.what());
        }
        if (raw == 0 || raw > 4096) throw fail("unroll must be within [1, 4096]");
        phase.unroll = static_cast<unsigned>(raw);
      } else if (key == "measure") {
        if (value != "temp")
          throw fail("measure= supports only 'temp' (other channels are always on)");
        phase.measure_temp = true;
      } else {
        throw fail(
            "unknown key '" + key +
            "' (name, duration, profile, function, target, threads, freq, "
            "groups, unroll, measure)");
      }
    }
    if (!have_duration) throw fail("phase '" + phase.name + "' is missing duration=SEC");

    // Phase names key everything downstream — summary-row attribution, the
    // cluster layer's phase-major CSV merge, log lines. A duplicate would
    // silently fold two phases' rows together, so reject it here.
    for (const CampaignPhase& existing : campaign.phases_)
      if (existing.name == phase.name)
        throw fail("duplicate phase name '" + phase.name + "'");

    // Validate the profile spec now (defaults stand in for the CLI values);
    // a campaign should fail before the first phase starts stressing, not in
    // the middle of a multi-hour run. Target specs belong to the control
    // layer above sched — the campaign *runner* validates them in its own
    // up-front resolve pass, preserving the same fail-fast guarantee.
    try {
      parse_profile(phase.profile_spec, /*default_load=*/1.0, /*default_period_s=*/0.1);
    } catch (const Error& e) {
      throw fail("phase '" + phase.name + "': " + e.what());
    }

    campaign.phases_.push_back(std::move(phase));
  }

  if (campaign.phases_.empty())
    throw ConfigError("campaign " + origin + ": no phases defined");
  return campaign;
}

Campaign Campaign::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("campaign: cannot open '" + path + "'");
  return parse(in, "'" + path + "'");
}

double Campaign::total_duration_s() const {
  double total = 0.0;
  for (const CampaignPhase& phase : phases_) total += phase.duration_s;
  return total;
}

}  // namespace fs2::sched
