#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace fs2::sched {

/// One phase of a stress campaign: run `function` (or the target's default)
/// under `profile_spec` for `duration_s` seconds. Phases execute in file
/// order within a single process, so back-to-back transitions happen without
/// the cooldown a process restart would cause — the multi-phase equivalent of
/// the paper's scripted measurement campaigns.
struct CampaignPhase {
  std::string name;                      ///< label for per-phase metric rows
  double duration_s = 0.0;
  std::string profile_spec = "constant"; ///< --load-profile grammar
  bool profile_explicit = false;         ///< profile= appeared in the file
  std::optional<std::string> function;   ///< stress function override (-i name)
  /// Closed-loop setpoint spec (`--target` grammar, e.g. "power=150W").
  /// When set, the controller drives the duty cycle and `profile` is ignored.
  std::optional<std::string> target_spec;
  std::optional<int> threads;            ///< worker-thread override for this phase
  std::optional<double> freq_mhz;        ///< simulated P-state override for this phase
  /// Per-phase workload overrides (the fuzzer's replay hooks — any corpus
  /// entry re-runs as a normal campaign phase): the memory-access multiset
  /// M in --run-instruction-groups grammar and the unroll factor u.
  std::optional<std::string> groups;
  std::optional<unsigned> unroll;
  /// measure=temp: publish the package-temperature channel for this
  /// campaign (open-loop simulated phases integrate the first-order
  /// thermal model; implied anyway when any phase holds a target=).
  bool measure_temp = false;
};

/// An ordered list of campaign phases parsed from a campaign file:
///
///   # comments and blank lines are ignored
///   phase name=warmup duration=10 profile=constant:30
///   phase name=swing  duration=30 profile=sine:low=10,high=90,period=5 threads=32
///   phase name=peak   duration=20 profile=constant:100 function=FUNC_FMA_256_ZEN2
///   phase name=hold   duration=30 target=power=150W freq=2200
///
/// Each line is whitespace-separated `key=value` tokens after the `phase`
/// keyword; `duration` is required and must be > 0, `name` defaults to
/// "phaseN", `profile` defaults to constant full load. `target` switches the
/// phase to closed-loop control (setpoint stepping: consecutive phases with
/// different targets produce e.g. the 80 W -> 160 W square waves of VR-stress
/// campaigns). `threads` and `freq` override the worker count and the
/// simulated P-state for that phase only; `groups` and `unroll` override
/// the workload's memory-access multiset and unroll factor (how a
/// fuzz-discovered pattern replays as a normal phase), and `measure=temp`
/// adds the package-temperature channel. Profile specs are validated at
/// parse time (including trace file reads); target specs — which belong to
/// the control layer above sched — are validated by the campaign runner's
/// up-front resolve pass. Either way a malformed campaign fails before any
/// stress starts.
class Campaign {
 public:
  /// Parse campaign text. `origin` names the source in error messages.
  static Campaign parse(std::istream& in, const std::string& origin);

  /// Read and parse a campaign file. Throws fs2::ConfigError when the file
  /// cannot be opened or is malformed.
  static Campaign load(const std::string& path);

  const std::vector<CampaignPhase>& phases() const { return phases_; }
  std::size_t size() const { return phases_.size(); }
  double total_duration_s() const;

 private:
  std::vector<CampaignPhase> phases_;
};

}  // namespace fs2::sched
