#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace fs2::sched {

/// One phase of a stress campaign: run `function` (or the target's default)
/// under `profile_spec` for `duration_s` seconds. Phases execute in file
/// order within a single process, so back-to-back transitions happen without
/// the cooldown a process restart would cause — the multi-phase equivalent of
/// the paper's scripted measurement campaigns.
struct CampaignPhase {
  std::string name;                      ///< label for per-phase metric rows
  double duration_s = 0.0;
  std::string profile_spec = "constant"; ///< --load-profile grammar
  std::optional<std::string> function;   ///< stress function override (-i name)
};

/// An ordered list of campaign phases parsed from a campaign file:
///
///   # comments and blank lines are ignored
///   phase name=warmup duration=10 profile=constant:30
///   phase name=swing  duration=30 profile=sine:low=10,high=90,period=5
///   phase name=peak   duration=20 profile=constant:100 function=FUNC_FMA_256_ZEN2
///
/// Each line is whitespace-separated `key=value` tokens after the `phase`
/// keyword; `duration` is required and must be > 0, `name` defaults to
/// "phaseN", `profile` defaults to constant full load. Profile specs are
/// validated at parse time (including trace file reads) so a malformed
/// campaign fails before any stress starts.
class Campaign {
 public:
  /// Parse campaign text. `origin` names the source in error messages.
  static Campaign parse(std::istream& in, const std::string& origin);

  /// Read and parse a campaign file. Throws fs2::ConfigError when the file
  /// cannot be opened or is malformed.
  static Campaign load(const std::string& path);

  const std::vector<CampaignPhase>& phases() const { return phases_; }
  std::size_t size() const { return phases_.size(); }
  double total_duration_s() const;

 private:
  std::vector<CampaignPhase> phases_;
};

}  // namespace fs2::sched
