#include "sched/load_profile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fs2::sched {

namespace {

constexpr double kPi = 3.14159265358979323846;

double clamp01(double value) { return std::clamp(value, 0.0, 1.0); }

/// Percentages on the CLI, fractions internally (same convention as --load).
/// The inverted comparison also rejects NaN.
double percent_to_fraction(double pct, const std::string& context) {
  if (!(pct >= 0.0 && pct <= 100.0))
    throw ConfigError(context + " must be within [0, 100] (a load percentage)");
  return pct / 100.0;
}

std::string percent(double fraction) {
  return strings::format("%.0f %%", fraction * 100.0);
}

}  // namespace

// ---- constant ---------------------------------------------------------------

ConstantProfile::ConstantProfile(double load) : load_(clamp01(load)) {}

std::string ConstantProfile::describe() const {
  return "constant: " + percent(load_);
}

// ---- square -----------------------------------------------------------------

SquareProfile::SquareProfile(double low, double high, double period_s, double duty)
    : low_(clamp01(low)), high_(clamp01(high)), period_s_(period_s), duty_(duty) {
  if (!(period_s_ > 0.0)) throw ConfigError("square profile: period must be > 0");
  if (!(duty_ > 0.0 && duty_ < 1.0))
    throw ConfigError("square profile: duty must be within (0, 1)");
}

double SquareProfile::load_at(double t_s) const {
  const double phase = t_s - std::floor(t_s / period_s_) * period_s_;
  return phase < duty_ * period_s_ ? high_ : low_;
}

std::string SquareProfile::describe() const {
  return strings::format("square: %s/%s, period %g s, duty %.2f", percent(high_).c_str(),
                         percent(low_).c_str(), period_s_, duty_);
}

// ---- sine -------------------------------------------------------------------

SineProfile::SineProfile(double low, double high, double period_s)
    : low_(clamp01(low)), high_(clamp01(high)), period_s_(period_s) {
  if (!(period_s_ > 0.0)) throw ConfigError("sine profile: period must be > 0");
  if (low_ > high_) std::swap(low_, high_);
}

double SineProfile::load_at(double t_s) const {
  // 1-cos form: starts at `low` (t=0), peaks at period/2.
  const double swing = 0.5 * (1.0 - std::cos(2.0 * kPi * t_s / period_s_));
  return low_ + (high_ - low_) * swing;
}

std::string SineProfile::describe() const {
  return strings::format("sine: %s .. %s over %g s", percent(low_).c_str(),
                         percent(high_).c_str(), period_s_);
}

// ---- ramp -------------------------------------------------------------------

RampProfile::RampProfile(double from, double to, double duration_s)
    : from_(clamp01(from)), to_(clamp01(to)), duration_s_(duration_s) {
  if (!(duration_s_ > 0.0)) throw ConfigError("ramp profile: duration must be > 0");
}

double RampProfile::load_at(double t_s) const {
  if (t_s >= duration_s_) return to_;
  return from_ + (to_ - from_) * (t_s / duration_s_);
}

std::string RampProfile::describe() const {
  return strings::format("ramp: %s -> %s over %g s, then hold", percent(from_).c_str(),
                         percent(to_).c_str(), duration_s_);
}

// ---- bursts -----------------------------------------------------------------

BurstProfile::BurstProfile(double base, double peak, double window_s, double prob,
                           std::uint64_t seed)
    : base_(clamp01(base)), peak_(clamp01(peak)), window_s_(window_s),
      prob_(prob), seed_(seed) {
  if (!(window_s_ > 0.0)) throw ConfigError("bursts profile: window must be > 0");
  if (!(prob_ >= 0.0 && prob_ <= 1.0))
    throw ConfigError("bursts profile: prob must be a fraction within [0, 1]");
}

double BurstProfile::load_at(double t_s) const {
  const auto window = static_cast<std::uint64_t>(std::floor(t_s / window_s_));
  // Stateless per-window coin flip: hash (seed, window) so all workers agree
  // on the pattern without sharing mutable PRNG state.
  std::uint64_t state = seed_ ^ (window * 0x9e3779b97f4a7c15ULL);
  const double draw =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return draw < prob_ ? peak_ : base_;
}

std::string BurstProfile::describe() const {
  return strings::format("bursts: %s base, %s peaks, %g s windows, p=%.2f",
                         percent(base_).c_str(), percent(peak_).c_str(), window_s_, prob_);
}

// ---- trace ------------------------------------------------------------------

TraceProfile::TraceProfile(std::vector<Breakpoint> points, bool loop, double span_s)
    : points_(std::move(points)), loop_(loop), span_s_(span_s) {
  if (points_.empty()) throw ConfigError("trace profile: no breakpoints");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!(points_[i].time_s >= 0.0))
      throw ConfigError("trace profile: breakpoint times must be non-negative numbers");
    if (i > 0 && !(points_[i].time_s > points_[i - 1].time_s))
      throw ConfigError("trace profile: breakpoint times must be strictly increasing");
    points_[i].load = clamp01(points_[i].load);
  }
  if (!(span_s_ > 0.0)) {
    // Natural span: the last segment lasts as long as the one before it.
    const double last = points_.back().time_s;
    const double prev_step =
        points_.size() > 1 ? last - points_[points_.size() - 2].time_s : last;
    span_s_ = last + (prev_step > 0.0 ? prev_step : 1.0);
  } else if (!(span_s_ > points_.back().time_s)) {
    // Strictly past the last breakpoint: with loop, t wraps into [0, span),
    // so span == last time would make the final level unreachable.
    throw ConfigError("trace profile: span must extend past the last breakpoint");
  }
}

TraceProfile TraceProfile::from_csv(const std::string& path, bool loop, double span_s) {
  std::ifstream in(path);
  if (!in) throw ConfigError("trace profile: cannot open '" + path + "'");
  std::vector<Breakpoint> points;
  std::string line;
  int line_no = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = strings::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = strings::split(trimmed, ',');
    if (fields.size() != 2)
      throw ConfigError(strings::format("trace '%s' line %d: expected 'time_s,load_pct'",
                                        path.c_str(), line_no));
    // Tolerate exactly one header row ("time_s,load_pct" or similar) as the
    // first data row, no matter how many comment lines precede it
    // (--record-trace writes comments, then the header). Only a row whose
    // first field does not even *start* numerically counts as a header — a
    // typo'd data row like "0s,20" must error, not silently vanish.
    const std::string_view first_field = strings::trim(fields[0]);
    if (points.empty() && !header_skipped && !first_field.empty() &&
        first_field.find_first_of("0123456789") != 0 &&
        first_field.find_first_of("+-.") != 0) {
      header_skipped = true;
      continue;
    }
    Breakpoint bp;
    bp.time_s = strings::parse_double(strings::trim(fields[0]),
                                      strings::format("trace line %d time", line_no));
    bp.load = percent_to_fraction(
        strings::parse_double(strings::trim(fields[1]),
                              strings::format("trace line %d load", line_no)),
        strings::format("trace '%s' line %d: load", path.c_str(), line_no));
    points.push_back(bp);
  }
  if (points.empty())
    throw ConfigError("trace profile: '" + path + "' contains no breakpoints");
  return TraceProfile(std::move(points), loop, span_s);
}

double TraceProfile::load_at(double t_s) const {
  double t = t_s;
  if (loop_ && t >= span_s_) t -= std::floor(t / span_s_) * span_s_;
  // Last breakpoint at or before t; before the first, the first level applies.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double value, const Breakpoint& bp) {
                               return value < bp.time_s;
                             });
  if (it == points_.begin()) return points_.front().load;
  return std::prev(it)->load;
}

std::string TraceProfile::describe() const {
  return strings::format("trace: %zu breakpoints over %g s%s", points_.size(), span_s_,
                         loop_ ? ", looping" : ", hold last");
}

// ---- spec parser ------------------------------------------------------------

namespace {

/// "low=10,high=90,period=2" -> ordered key/value list; a bare first token
/// is mapped to `primary`.
std::map<std::string, std::string> parse_params(const std::string& text,
                                                const std::string& kind,
                                                const std::string& primary) {
  std::map<std::string, std::string> params;
  if (text.empty()) return params;
  bool first = true;
  for (const std::string& token : strings::split(text, ',')) {
    const std::string_view trimmed = strings::trim(token);
    if (trimmed.empty())
      throw ConfigError("--load-profile " + kind + ": empty parameter");
    const auto eq = trimmed.find('=');
    std::string key, value;
    if (eq == std::string_view::npos) {
      if (!first)
        throw ConfigError("--load-profile " + kind + ": parameter '" +
                          std::string(trimmed) + "' is missing '='");
      key = primary;
      value = std::string(trimmed);
    } else {
      key = strings::to_lower(strings::trim(trimmed.substr(0, eq)));
      value = std::string(strings::trim(trimmed.substr(eq + 1)));
    }
    if (!params.emplace(key, value).second)
      throw ConfigError("--load-profile " + kind + ": duplicate parameter '" + key + "'");
    first = false;
  }
  return params;
}

class ParamReader {
 public:
  ParamReader(std::map<std::string, std::string> params, std::string kind)
      : params_(std::move(params)), kind_(std::move(kind)) {}

  double number(const std::string& key, double fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    const double value = strings::parse_double(it->second, kind_ + " " + key);
    params_.erase(it);
    return value;
  }

  double load(const std::string& key, double fallback_fraction) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback_fraction;
    const double pct = strings::parse_double(it->second, kind_ + " " + key);
    params_.erase(it);
    return percent_to_fraction(pct, "--load-profile " + kind_ + ": " + key);
  }

  std::uint64_t integer(const std::string& key, std::uint64_t fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    const std::uint64_t value = strings::parse_u64(it->second, kind_ + " " + key);
    params_.erase(it);
    return value;
  }

  std::optional<std::string> text(const std::string& key) {
    const auto it = params_.find(key);
    if (it == params_.end()) return std::nullopt;
    std::string value = it->second;
    params_.erase(it);
    return value;
  }

  /// Every recognized key has been consumed; anything left is a typo.
  void finish() const {
    if (params_.empty()) return;
    throw ConfigError("--load-profile " + kind_ + ": unknown parameter '" +
                      params_.begin()->first + "'");
  }

 private:
  std::map<std::string, std::string> params_;
  std::string kind_;
};

}  // namespace

ProfilePtr parse_profile(const std::string& spec, double default_load,
                         double default_period_s) {
  const std::string_view trimmed = strings::trim(spec);
  if (trimmed.empty()) throw ConfigError("--load-profile: empty spec");
  const auto colon = trimmed.find(':');
  const std::string kind = strings::to_lower(
      colon == std::string_view::npos ? trimmed : trimmed.substr(0, colon));
  const std::string param_text(colon == std::string_view::npos
                                   ? std::string_view{}
                                   : strings::trim(trimmed.substr(colon + 1)));

  // The modulation window (--period) also anchors profile-period defaults:
  // ten windows per profile cycle gives visible oscillation out of the box.
  const double default_profile_period = 10.0 * default_period_s;

  if (kind == "constant") {
    ParamReader params(parse_params(param_text, kind, "load"), kind);
    const double load = params.load("load", default_load);
    params.finish();
    return std::make_shared<ConstantProfile>(load);
  }
  if (kind == "square") {
    ParamReader params(parse_params(param_text, kind, "high"), kind);
    const double low = params.load("low", 0.0);
    const double high = params.load("high", 1.0);
    const double period = params.number("period", default_profile_period);
    const double duty = params.number("duty", 0.5);
    params.finish();
    return std::make_shared<SquareProfile>(low, high, period, duty);
  }
  if (kind == "sine") {
    ParamReader params(parse_params(param_text, kind, "high"), kind);
    const double low = params.load("low", 0.0);
    const double high = params.load("high", 1.0);
    const double period = params.number("period", default_profile_period);
    params.finish();
    return std::make_shared<SineProfile>(low, high, period);
  }
  if (kind == "ramp") {
    ParamReader params(parse_params(param_text, kind, "to"), kind);
    const double from = params.load("from", 0.0);
    const double to = params.load("to", 1.0);
    const double duration = params.number("duration", 60.0);
    params.finish();
    return std::make_shared<RampProfile>(from, to, duration);
  }
  if (kind == "bursts") {
    ParamReader params(parse_params(param_text, kind, "peak"), kind);
    const double base = params.load("base", 0.2);
    const double peak = params.load("peak", 1.0);
    const double window = params.number("window", 1.0);
    const double prob = percent_to_fraction(params.number("prob", 25.0),
                                            "--load-profile bursts: prob");
    const std::uint64_t seed = params.integer("seed", 0x5eed);
    params.finish();
    return std::make_shared<BurstProfile>(base, peak, window, prob, seed);
  }
  if (kind == "trace") {
    ParamReader params(parse_params(param_text, kind, "file"), kind);
    const auto file = params.text("file");
    if (!file) throw ConfigError("--load-profile trace: 'file' parameter is required");
    const bool loop = params.integer("loop", 0) != 0;
    const double span = params.number("span", 0.0);
    params.finish();
    return std::make_shared<TraceProfile>(TraceProfile::from_csv(*file, loop, span));
  }
  throw ConfigError("--load-profile: unknown profile kind '" + kind +
                    "' (constant, square, sine, ramp, bursts, trace)");
}

}  // namespace fs2::sched
